// Command contention fits the paper's analytical model from a handful of
// measurement runs (the paper's input plans) and predicts the degree of
// memory contention ω(n) across all core counts, optionally validating the
// prediction against a full measured sweep.
//
// Usage:
//
//	contention -machine IntelNUMA24 -program CG -class C
//	contention -machine AMDNUMA48 -program SP -class C -validate -step 4
//	contention -machine AMDNUMA48 -program CG -class C -homogeneous
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/viz"
)

func main() {
	var common cli.Common
	var (
		validate    = flag.Bool("validate", false, "also measure a full sweep and report model error")
		step        = flag.Int("step", 2, "core-count step for the validation sweep")
		homogeneous = flag.Bool("homogeneous", false, "fit with the reduced homogeneous-interconnect plan")
		plot        = flag.Bool("plot", false, "render an ASCII chart of the curves")
	)
	common.RegisterMachine("IntelNUMA24")
	common.RegisterWorkload("CG", "C")
	common.RegisterScale()
	common.RegisterJobs()
	common.RegisterVerbose()
	common.RegisterResume()
	flag.Parse()

	spec, err := common.Spec()
	if err != nil {
		fatal(err)
	}
	ctx, stopSignals := cli.SignalContext(context.Background())
	defer stopSignals()
	r, cleanup, err := common.NewRunner()
	if err != nil {
		fatal(err)
	}
	defer cleanup()
	program, class := common.Program, common.WorkloadClass()
	opts := core.Options{Homogeneous: *homogeneous}
	model, plan, err := r.FitFromPlan(ctx, spec, program, class, opts)
	if err != nil {
		cleanup()
		fatal(err)
	}

	fmt.Printf("# %s %s.%s — %s model fitted from C(n) at n=%v\n",
		spec.Name, program, class, model.Kind, plan)
	fmt.Printf("# single-processor fit: mu/r=%.4g L/r=%.4g R2=%.3f saturation at %.1f cores\n",
		model.Single.MuOverR, model.Single.LOverR, model.Single.R2, model.Single.SaturationCores())
	if model.Kind == core.UMA {
		fmt.Printf("# UMA dC/core = %.4g cycles\n", model.DeltaCPerCore)
	} else if len(model.Rho) > 0 {
		fmt.Printf("# NUMA rho = %.4g stall cycles per remote core per miss\n", model.Rho[0])
	}

	if *validate {
		counts := experiments.CoarseSweepCounts(spec, *step)
		fig, err := r.ModelVsMeasurement(ctx, spec, program, class, counts, opts)
		if err != nil {
			cleanup()
			fatal(err)
		}
		experiments.RenderModelFig(os.Stdout, fig, "Validation")
		if *plot {
			var ch viz.Chart
			ch.Title = fmt.Sprintf("%s %s.%s: degree of contention", spec.Name, program, class)
			ch.XLabel = "cores"
			ch.YLabel = "omega"
			xs := make([]float64, len(fig.Validation.Cores))
			for i, n := range fig.Validation.Cores {
				xs[i] = float64(n)
			}
			ch.Add(viz.Series{Name: "measured", X: xs, Y: fig.Validation.Measured})
			ch.Add(viz.Series{Name: "model", X: xs, Y: fig.Validation.Modeled})
			ch.Render(os.Stdout)
		}
		return
	}
	fmt.Printf("%6s %12s\n", "cores", "model ω")
	var xs, ys []float64
	for n := 1; n <= spec.TotalCores(); n++ {
		fmt.Printf("%6d %12.3f\n", n, model.Omega(n))
		xs = append(xs, float64(n))
		ys = append(ys, model.Omega(n))
	}
	if *plot {
		var ch viz.Chart
		ch.Title = "predicted degree of contention"
		ch.XLabel = "cores"
		ch.YLabel = "omega"
		ch.Add(viz.Series{Name: "model", X: xs, Y: ys})
		ch.Render(os.Stdout)
	}
}

func fatal(err error) {
	cli.Fatal("contention", err)
}
