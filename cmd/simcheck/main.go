// Command simcheck runs the repository's go/analysis lint suite
// (internal/analysis: detlint, hotpath, ctxfirst, tracelint, errlint).
//
// It speaks the go vet unitchecker protocol, so the canonical invocation
// is:
//
//	go build -o bin/simcheck ./cmd/simcheck
//	go vet -vettool=$(pwd)/bin/simcheck ./...
//
// Invoked standalone with package patterns it re-execs itself through
// `go vet -vettool`, so `simcheck ./...` works too (and is what `make
// lint` uses). docs/ARCHITECTURE.md §8 documents each analyzer and the
// runtime test it backstops.
package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	simcheck "repro/internal/analysis"
)

func main() {
	args := os.Args[1:]
	if vetProtocol(args) {
		unitchecker.Main(simcheck.Analyzers()...) // never returns
	}
	os.Exit(standalone(args))
}

// vetProtocol reports whether the process was invoked by the go vet
// driver: version/flag interrogation or a unit-check config file.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// standalone re-execs through `go vet -vettool=<self>` so the suite can
// be run directly on package patterns.
func standalone(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simcheck: cannot locate own binary: %v\n", err)
		return 2
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "simcheck: %v\n", err)
		return 2
	}
	return 0
}
