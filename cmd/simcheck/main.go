// Command simcheck runs the repository's go/analysis lint suite
// (internal/analysis: detlint, hotpath, ctxfirst, tracelint, errlint,
// apilint, leaklint, locklint, chanlint).
//
// It speaks the go vet unitchecker protocol, so the canonical invocation
// is:
//
//	go build -o bin/simcheck ./cmd/simcheck
//	go vet -vettool=$(pwd)/bin/simcheck ./...
//
// Invoked standalone with package patterns it re-execs itself through
// `go vet -vettool`, so `simcheck ./...` works too (and is what `make
// lint` uses). With -findings=<path> it additionally writes every
// diagnostic as one NDJSON record per line —
//
//	{"pkg":"repro/internal/server","analyzer":"locklint","pos":"internal/server/x.go:12:2","message":"..."}
//
// — which CI uploads as an artifact when the lint gate fails.
// docs/ARCHITECTURE.md §8 documents each analyzer and the runtime test
// it backstops.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	simcheck "repro/internal/analysis"
)

func main() {
	args := os.Args[1:]
	if vetProtocol(args) {
		unitchecker.Main(simcheck.Analyzers()...) // never returns
	}
	findingsPath, rest := splitFindingsFlag(args)
	if findingsPath != "" {
		os.Exit(findingsMode(findingsPath, rest))
	}
	os.Exit(standalone(rest))
}

// vetProtocol reports whether the process was invoked by the go vet
// driver: version/flag interrogation or a unit-check config file.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// splitFindingsFlag extracts -findings=<path> (or -findings <path>) from
// the standalone argument list.
func splitFindingsFlag(args []string) (string, []string) {
	var path string
	var rest []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case strings.HasPrefix(a, "-findings="):
			path = strings.TrimPrefix(a, "-findings=")
		case a == "-findings" && i+1 < len(args):
			path = args[i+1]
			i++
		default:
			rest = append(rest, a)
		}
	}
	return path, rest
}

// standalone re-execs through `go vet -vettool=<self>` so the suite can
// be run directly on package patterns.
func standalone(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simcheck: cannot locate own binary: %v\n", err)
		return 2
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "simcheck: %v\n", err)
		return 2
	}
	return 0
}

// finding is one NDJSON record in the -findings output.
type finding struct {
	Pkg      string `json:"pkg"`
	Analyzer string `json:"analyzer"`
	Pos      string `json:"pos"`
	Message  string `json:"message"`
}

// findingsMode runs the suite through `go vet -json`, mirrors the
// human-readable diagnostics to stderr, writes them as NDJSON to path,
// and exits nonzero iff any diagnostic (or a vet failure) occurred.
// `go vet -json` itself exits zero even when analyzers report, so the
// exit code here is derived from the parsed findings.
func findingsMode(path string, patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simcheck: cannot locate own binary: %v\n", err)
		return 2
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe, "-json"}, patterns...)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	runErr := cmd.Run()

	findings, parseErr := parseVetJSON(out.Bytes())
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simcheck: cannot create findings file: %v\n", err)
		return 2
	}
	enc := json.NewEncoder(f)
	for _, rec := range findings {
		if err := enc.Encode(rec); err != nil {
			fmt.Fprintf(os.Stderr, "simcheck: writing findings: %v\n", err)
			f.Close()
			return 2
		}
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "simcheck: closing findings file: %v\n", err)
		return 2
	}

	for _, rec := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", rec.Pos, rec.Analyzer, rec.Message)
	}
	if parseErr != nil || (runErr != nil && len(findings) == 0) {
		// A vet failure with nothing parsed is a build or driver error:
		// surface the raw transcript rather than pretend the tree is clean.
		os.Stderr.Write(out.Bytes())
		if parseErr != nil {
			fmt.Fprintf(os.Stderr, "simcheck: parsing vet -json output: %v\n", parseErr)
		}
		return 2
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simcheck: %d finding(s), NDJSON written to %s\n", len(findings), path)
		return 1
	}
	return 0
}

// parseVetJSON decodes the `go vet -json` stream: `#` comment lines
// interleaved with JSON objects mapping package path → analyzer name →
// diagnostics.
func parseVetJSON(raw []byte) ([]finding, error) {
	var jsonOnly bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.HasPrefix(bytes.TrimSpace(line), []byte("#")) {
			continue
		}
		jsonOnly.Write(line)
		jsonOnly.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	type diag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	var findings []finding
	dec := json.NewDecoder(bytes.NewReader(jsonOnly.Bytes()))
	for dec.More() {
		var obj map[string]map[string][]diag
		if err := dec.Decode(&obj); err != nil {
			return findings, err
		}
		for pkg, byAnalyzer := range obj {
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					findings = append(findings, finding{
						Pkg: pkg, Analyzer: analyzer, Pos: d.Posn, Message: d.Message,
					})
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos != findings[j].Pos {
			return findings[i].Pos < findings[j].Pos
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
