// Command memsim runs one workload on one simulated machine and prints the
// PAPI-style hardware counters plus memory-controller statistics — the
// equivalent of the paper's papiex measurement runs.
//
// Usage:
//
//	memsim -machine IntelNUMA24 -program CG -class C -cores 12
//	memsim -machine AMDNUMA48 -program SP -class C -cores 48 -placement interleave
//	memsim -machine IntelUMA8 -program CG -class W -telemetry out/
//
// With -telemetry DIR the run is observed by the in-simulator sampler and
// three artifacts land in DIR: memsim.trace.ndjson (structured run
// events), memsim.timeline.dat (sampled utilization/occupancy time
// series, gnuplot-ready) and memsim.metrics.prom (Prometheus text
// snapshot); an ASCII utilization chart is printed after the counters.
//
// Ctrl-C cancels the simulation within a bounded number of events and
// exits 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cli"
	"repro/internal/counters"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var common cli.Common
	var (
		cores     = flag.Int("cores", 0, "active cores, fill-processor-first (0 = all)")
		threads   = flag.Int("threads", 0, "program threads (0 = machine cores, the paper's protocol)")
		placement = flag.String("placement", "first-touch", "NUMA page placement: first-touch|interleave")
		perThread = flag.Bool("per-thread", false, "also print per-thread counters")
		coherence = flag.Bool("coherence", false, "enable the MESI-style invalidation directory")
		telemDir  = flag.String("telemetry", "", "observe the run and write trace/timeline/metrics artifacts into this directory")
		interval  = flag.Uint64("sample-interval", 0, "telemetry sampling period in cycles (0 = 5us at the machine clock)")
	)
	common.RegisterMachine("IntelNUMA24")
	common.RegisterWorkload("CG", "C")
	common.RegisterScale()
	flag.Parse()

	spec, err := common.Spec()
	if err != nil {
		fatal(err)
	}
	wl, err := workload.NewTuned(common.Program, common.WorkloadClass(), common.Tuning())
	if err != nil {
		fatal(err)
	}
	var place sim.Placement
	switch *placement {
	case "first-touch":
		place = sim.FirstTouch
	case "interleave":
		place = sim.Interleave
	default:
		fatal(fmt.Errorf("unknown placement %q", *placement))
	}

	nThreads := *threads
	if nThreads == 0 {
		nThreads = spec.TotalCores()
	}
	nCores := *cores
	if nCores == 0 {
		nCores = spec.TotalCores()
	}
	opts := []sim.Option{
		sim.WithThreads(nThreads),
		sim.WithCores(nCores),
		sim.WithPlacement(place),
		sim.WithCoherence(*coherence),
	}

	var reg *telemetry.Registry
	if *telemDir != "" {
		if err := os.MkdirAll(*telemDir, 0o755); err != nil {
			fatal(err)
		}
		traceFile, err := os.Create(filepath.Join(*telemDir, "memsim.trace.ndjson"))
		if err != nil {
			fatal(err)
		}
		defer traceFile.Close()
		reg = telemetry.NewRegistry()
		opts = append(opts, sim.WithObserve(&sim.ObserveConfig{
			Interval: *interval,
			Tracer:   telemetry.NewTracer(traceFile),
			Registry: reg,
		}))
	}

	cfg, err := sim.NewConfig(spec, opts...)
	if err != nil {
		fatal(err)
	}

	ctx, stopSignals := cli.SignalContext(context.Background())
	defer stopSignals()
	res, err := sim.Run(ctx, cfg, wl.Streams(nThreads))
	if err != nil {
		fatal(err)
	}

	fmt.Printf("# %s %s.%s: %d threads on %d cores (%s placement)\n",
		spec.Name, wl.Name(), wl.Class(), res.Threads, res.Cores, place)
	fmt.Printf("# footprint %.1f MB, makespan %d cycles\n",
		float64(wl.FootprintBytes())/(1<<20), res.Makespan)
	fmt.Print(counters.FromResult(res))
	fmt.Printf("%-16s %d\n", "OFFCHIP_REQ", res.OffChipRequests)
	if *coherence {
		fmt.Printf("%-16s %d\n", "INVALIDATIONS", res.Invalidations)
	}

	fmt.Println("\n# memory controllers")
	for i, mc := range res.MCStats {
		fmt.Printf("MC%-2d requests %10d  rowhit %5.1f%%  avg wait %7.1f  avg svc %6.1f  util %5.1f%%\n",
			i, mc.Requests, 100*mc.RowHitRatio(), mc.AvgWait(), mc.AvgService(),
			100*mc.Utilization(res.Makespan, spec.MC.Channels))
	}
	for i, b := range res.BusStats {
		fmt.Printf("bus%-1d requests %10d  avg wait %7.1f\n", i, b.Requests, b.AvgWait())
	}

	if *telemDir != "" {
		files, err := experiments.WriteTelemetryArtifacts(*telemDir, "memsim", res.Telemetry, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n# telemetry: %d samples every %d cycles\n",
			res.Telemetry.InFlight.Len(), res.Telemetry.Interval)
		for _, f := range files {
			fmt.Printf("# wrote %s\n", f)
		}
		experiments.UtilizationChart(res.Telemetry, "off-chip utilization").Render(os.Stdout)
	}

	if *perThread {
		fmt.Println("\n# per-thread")
		var acc counters.Accumulator
		for i, th := range res.PerThread {
			acc.AddThread(th)
			fmt.Printf("thread %-3d work %12d stall %12d memstall %12d offchip %9d remote %9d\n",
				i, th.Work, th.Stall, th.MemStall, th.OffChip, th.Remote)
		}
		fmt.Printf("\n# per-thread totals (papiex-style, %d threads)\n", acc.Runs())
		fmt.Print(acc.Set())
	}
}

func fatal(err error) {
	cli.Fatal("memsim", err)
}
