// Command burstiness profiles the off-chip memory traffic of one workload
// with the paper's 5 µs sampler and reports the burst-size distribution:
// CCDF points (the paper's Fig. 4 log-log plot data), the power-law tail
// fit, and the bursty/non-bursty classification.
//
// Usage:
//
//	burstiness -machine IntelNUMA24 -program CG -class S
//	burstiness -machine IntelNUMA24 -program x264 -class native -ccdf
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/burst"
	"repro/internal/cli"
	"repro/internal/machine"
	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/viz"
	"repro/internal/workload"
)

func main() {
	var common cli.Common
	var (
		micros = flag.Float64("window", 0, "sampling window in microseconds (0 = paper's 5us divided by machine.CacheScale)")
		ccdf   = flag.Bool("ccdf", false, "print the full CCDF points")
		hurst  = flag.Bool("hurst", false, "also estimate the Hurst exponent of the window series")
		plot   = flag.Bool("plot", false, "render the CCDF as an ASCII log-log chart")
	)
	common.RegisterMachine("IntelNUMA24")
	common.RegisterWorkload("CG", "C")
	common.RegisterScale()
	flag.Parse()

	spec, err := common.Spec()
	if err != nil {
		fatal(err)
	}
	wl, err := workload.NewTuned(common.Program, common.WorkloadClass(), common.Tuning())
	if err != nil {
		fatal(err)
	}
	if *micros == 0 {
		*micros = float64(sampler.DefaultWindowMicros) / machine.CacheScale
	}
	s, err := sampler.NewMicros(*micros, spec.ClockGHz)
	if err != nil {
		fatal(err)
	}
	threads := spec.TotalCores()
	cfg, err := sim.NewConfig(spec,
		sim.WithThreads(threads),
		sim.WithCores(threads),
		sim.WithMissHook(s.Hook()))
	if err != nil {
		fatal(err)
	}
	ctx, stopSignals := cli.SignalContext(context.Background())
	defer stopSignals()
	res, err := sim.Run(ctx, cfg, wl.Streams(threads))
	if err != nil {
		fatal(err)
	}
	s.PadTo(res.Makespan)

	fmt.Printf("# %s %s.%s: %d threads, %d cores, %gus windows (%d cycles)\n",
		spec.Name, wl.Name(), wl.Class(), threads, threads, *micros, s.WindowCycles())
	fmt.Printf("# %d off-chip requests over %d windows\n", s.Total(), len(s.Windows()))

	a, err := burst.Analyze(s.Windows())
	if errors.Is(err, burst.ErrNoTraffic) {
		fmt.Println("no off-chip traffic: working set fully cached")
		return
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("bursts           %d\n", a.Bursts)
	fmt.Printf("total lines      %d\n", a.TotalLines)
	fmt.Printf("max burst        %d lines\n", a.MaxLines)
	fmt.Printf("mean burst       %.1f lines\n", a.MeanLines)
	fmt.Printf("busy windows     %.1f%%\n", 100*a.NonEmptyFraction)
	fmt.Printf("tail fit         alpha=%.2f R2=%.2f (x >= %.0f, %d points)\n",
		a.Tail.Alpha, a.Tail.R2, a.TailXmin, a.Tail.N)
	fmt.Printf("verdict          %s\n", a.Classify())
	_ = res

	if *hurst {
		series := make([]float64, len(s.Windows()))
		for i, c := range s.Windows() {
			series[i] = float64(c)
		}
		if h, err := stats.Hurst(series); err == nil {
			fmt.Printf("hurst            %.2f\n", h)
		} else {
			fmt.Printf("hurst            n/a (%v)\n", err)
		}
	}
	if *ccdf {
		fmt.Println("\n# x P(burst>x)")
		for _, pt := range a.CCDF {
			fmt.Printf("%12.0f %12.6g\n", pt.X, pt.P)
		}
	}
	if *plot {
		var ch viz.Chart
		ch.Title = fmt.Sprintf("P(burst > x), %s.%s (log-log)", wl.Name(), wl.Class())
		ch.XLabel = "burst size [cache lines]"
		ch.YLabel = "P"
		ch.LogX = true
		ch.LogY = true
		var xs, ys []float64
		for _, pt := range a.CCDF {
			xs = append(xs, pt.X)
			ys = append(ys, pt.P)
		}
		ch.Add(viz.Series{Name: "ccdf", X: xs, Y: ys})
		ch.Render(os.Stdout)
	}
}

func fatal(err error) {
	cli.Fatal("burstiness", err)
}
