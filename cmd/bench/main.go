// Command bench runs the repo's tracked performance benchmarks and writes
// BENCH.json: end-to-end full-sweep simulations per machine preset plus the
// event-queue micro-benchmarks, each reporting ns/op, allocs/op, B/op and —
// for the simulations — simulated events per second.
//
// With -baseline pointing at a previous BENCH.json, the run becomes a
// regression gate: any benchmark more than -tolerance slower (ns/op) than
// its baseline entry fails the run. On failure the fresh numbers are
// written next to -out with a .new suffix so they can be inspected (or
// promoted deliberately) without clobbering the baseline.
//
// Usage:
//
//	bench -out BENCH.json                       # (re)establish a baseline
//	bench -baseline BENCH.json -out BENCH.json  # gate + refresh (make bench)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/cli"
	"repro/internal/eventq"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Entry is one benchmark's results.
type Entry struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// Report is the BENCH.json schema. Timestamp and GitRev are provenance
// passed in by the caller (see the Makefile bench target) — never sampled
// inside the tool, so a re-run of identical code produces an identical
// report modulo timings; the regression gate compares Benchmarks only and
// ignores provenance.
type Report struct {
	GoVersion  string  `json:"go_version"`
	GoOS       string  `json:"goos"`
	GoArch     string  `json:"goarch"`
	MaxProcs   int     `json:"maxprocs"`
	Timestamp  string  `json:"timestamp,omitempty"`
	GitRev     string  `json:"git_rev,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	var common cli.Common
	var (
		out       = flag.String("out", "BENCH.json", "where to write results")
		baseline  = flag.String("baseline", "", "previous BENCH.json to gate against (empty = no gate)")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression vs baseline")
		repeat    = flag.Int("repeat", 3, "runs per benchmark; the fastest is kept (noise only adds time)")
		timestamp = flag.String("timestamp", "", "provenance: when this run happened (recorded verbatim)")
		gitRev    = flag.String("git-rev", "", "provenance: source revision benchmarked (recorded verbatim)")
	)
	common.RegisterTelemetry()
	flag.Parse()
	if *repeat < 1 {
		*repeat = 1
	}
	if common.TraceOut != "" {
		f, err := os.Create(common.TraceOut)
		if err != nil {
			cli.Fatal("bench", err)
		}
		defer f.Close()
		benchTracer = telemetry.NewTracer(f)
	}
	if common.DebugAddr != "" {
		benchMetrics = telemetry.NewRegistry()
		addr, stop, err := telemetry.StartDebugServer(common.DebugAddr, benchMetrics)
		if err != nil {
			cli.Fatal("bench", err)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "bench: debug server listening on %s\n", addr)
	}
	ctx, stopSignals := cli.SignalContext(context.Background())
	defer stopSignals()

	rep := Report{
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
		Timestamp: *timestamp,
		GitRev:    *gitRev,
	}
	for _, bm := range benchmarks(ctx) {
		fmt.Fprintf(os.Stderr, "bench: running %s...\n", bm.name)
		var e Entry
		for rep := 0; rep < *repeat; rep++ {
			res := testing.Benchmark(bm.fn)
			cand := Entry{
				Name:         bm.name,
				Iterations:   res.N,
				NsPerOp:      float64(res.T.Nanoseconds()) / float64(res.N),
				AllocsPerOp:  res.AllocsPerOp(),
				BytesPerOp:   res.AllocedBytesPerOp(),
				EventsPerSec: res.Extra["events/sec"],
			}
			if rep == 0 || cand.NsPerOp < e.NsPerOp {
				e = cand
			}
		}
		fmt.Fprintf(os.Stderr, "bench:   %d iter, %.3g ns/op, %d allocs/op\n",
			e.Iterations, e.NsPerOp, e.AllocsPerOp)
		rep.Benchmarks = append(rep.Benchmarks, e)
	}

	if *baseline != "" {
		if regressions := gate(rep, *baseline, *tolerance); len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "bench: REGRESSION:", r)
			}
			if err := write(*out+".new", rep); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
			} else {
				fmt.Fprintf(os.Stderr, "bench: fresh results left in %s.new (baseline untouched)\n", *out)
			}
			os.Exit(1)
		}
	}
	if err := write(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *out)
}

// gate compares rep against the baseline file and returns one message per
// benchmark whose ns/op regressed beyond tolerance. Benchmarks missing from
// the baseline (new ones) pass; benchmarks present only in the baseline are
// reported so silent deletions fail too.
func gate(rep Report, path string, tolerance float64) []string {
	raw, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("cannot read baseline %s: %v", path, err)}
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return []string{fmt.Sprintf("cannot parse baseline %s: %v", path, err)}
	}
	byName := make(map[string]Entry, len(rep.Benchmarks))
	for _, e := range rep.Benchmarks {
		byName[e.Name] = e
	}
	var bad []string
	for _, old := range base.Benchmarks {
		now, ok := byName[old.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: present in baseline but not run", old.Name))
			continue
		}
		if limit := old.NsPerOp * (1 + tolerance); now.NsPerOp > limit {
			bad = append(bad, fmt.Sprintf("%s: %.3g ns/op vs baseline %.3g (+%.0f%%, limit +%.0f%%)",
				old.Name, now.NsPerOp, old.NsPerOp,
				100*(now.NsPerOp/old.NsPerOp-1), 100*tolerance))
		}
	}
	return bad
}

func write(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// benchTracer and benchMetrics, when set by -trace-out / -debug-addr, are
// attached to every Runner the sweep benchmarks create.
var (
	benchTracer  *telemetry.Tracer
	benchMetrics *telemetry.Registry
)

// benchmarks lists the tracked set: one end-to-end sweep per machine
// preset (the larger NUMA machines at reduced scale and coarse core
// counts so the whole suite stays under a minute per preset) plus the
// event-queue micro-benchmarks in both backends.
func benchmarks(ctx context.Context) []namedBench {
	return []namedBench{
		{"FullRun/IntelUMA8@0.25", fullRun(ctx, machine.IntelUMA8(), 0.25, 1)},
		{"FullRun/IntelNUMA24@0.05", fullRun(ctx, machine.IntelNUMA24(), 0.05, 8)},
		{"FullRun/AMDNUMA48@0.02", fullRun(ctx, machine.AMDNUMA48(), 0.02, 16)},
		{"EventQueue/Calendar", queueBench(eventq.Calendar)},
		{"EventQueue/Heap", queueBench(eventq.Heap)},
	}
}

// fullRun benchmarks the complete Fig. 3 sweep (CG.C over a core sweep) on
// one machine, cold-cache per iteration, reporting simulated events/sec.
// step 1 sweeps every core count; larger steps use the coarse sweep.
// Ctrl-C propagates through ctx and fails the in-flight benchmark.
func fullRun(ctx context.Context, spec machine.Spec, scale float64, step int) func(b *testing.B) {
	return func(b *testing.B) {
		counts := experiments.FullSweepCounts(spec)
		if step > 1 {
			counts = experiments.CoarseSweepCounts(spec, step)
		}
		var events uint64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := experiments.NewRunner(workload.Tuning{RefScale: scale})
			r.Tracer = benchTracer
			r.Metrics = benchMetrics
			if _, err := r.Fig3(ctx, spec, counts); err != nil {
				b.Fatal(err)
			}
			for _, n := range counts {
				res, err := r.Run(ctx, spec, "CG", workload.C, n)
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	}
}

// queueBench benchmarks steady-state schedule+dispatch through one event
// queue backend, the simulator's innermost loop.
func queueBench(kind eventq.Kind) func(b *testing.B) {
	return func(b *testing.B) {
		q := eventq.New(kind)
		fn := func() {}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.After(uint64(i%449), fn)
			if q.Len() >= 64 {
				for q.Len() > 0 {
					q.Step()
				}
			}
		}
		for q.Len() > 0 {
			q.Step()
		}
	}
}
