// Command tracedump records workload reference streams to the binary trace
// format and inspects recorded traces — useful for archiving the exact
// traffic a paper experiment replayed, diffing workload-generator versions,
// and feeding external tools.
//
// Usage:
//
//	tracedump -program CG -class W -threads 4 -out /tmp/cg.w      # record
//	tracedump -in /tmp/cg.w.t0 -stats                             # inspect
//	tracedump -in /tmp/cg.w.t0 -print -limit 20                   # dump refs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var common cli.Common
	var (
		threads = flag.Int("threads", 1, "thread count (one trace file per thread)")
		out     = flag.String("out", "", "output path prefix; writes <out>.t<i> per thread")
		in      = flag.String("in", "", "input trace to inspect instead of recording")
		stats   = flag.Bool("stats", false, "print summary statistics of the input trace")
		dump    = flag.Bool("print", false, "print references from the input trace")
		limit   = flag.Int("limit", 50, "max references to print with -print")
	)
	common.RegisterWorkload("CG", "W")
	common.RegisterScale()
	flag.Parse()

	switch {
	case *in != "":
		if err := inspect(*in, *stats || !*dump, *dump, *limit); err != nil {
			fatal(err)
		}
	case *out != "":
		if err := record(common.Program, common.WorkloadClass(), *threads, common.Scale, *out); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -out (record) or -in (inspect)"))
	}
}

func record(program string, class workload.Class, threads int, scale float64, out string) error {
	wl, err := workload.NewTuned(program, class, workload.Tuning{RefScale: scale})
	if err != nil {
		return err
	}
	streams := wl.Streams(threads)
	for i, s := range streams {
		path := fmt.Sprintf("%s.t%d", out, i)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		n, err := trace.Write(f, s)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d refs\n", path, n)
	}
	return nil
}

func inspect(path string, wantStats, wantDump bool, limit int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var refs, loads, stores, deps, syncs, work uint64
	printed := 0
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		refs++
		work += uint64(r.Work)
		switch {
		case r.Sync:
			syncs++
		case r.Kind == trace.Store:
			stores++
		default:
			loads++
		}
		if r.Dep {
			deps++
		}
		if wantDump && printed < limit {
			kind := "load "
			if r.Sync {
				kind = "sync "
			} else if r.Kind == trace.Store {
				kind = "store"
			}
			dep := ""
			if r.Dep {
				dep = " dep"
			}
			fmt.Printf("%-6s addr=%#014x work=%d%s\n", kind, r.Addr, r.Work, dep)
			printed++
		}
	}
	if er, ok := s.(trace.ErrorReporter); ok && er.Err() != nil {
		return er.Err()
	}
	if wantStats {
		fmt.Printf("refs   %d\n", refs)
		fmt.Printf("loads  %d\n", loads)
		fmt.Printf("stores %d\n", stores)
		fmt.Printf("syncs  %d\n", syncs)
		fmt.Printf("deps   %d (%.1f%%)\n", deps, pct(deps, refs))
		fmt.Printf("work   %d cycles (%.1f/ref)\n", work, float64(work)/float64(maxU(refs, 1)))
	}
	return nil
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	cli.Fatal("tracedump", err)
}
