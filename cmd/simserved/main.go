// Command simserved serves contention predictions over HTTP/JSON:
// capacity-planning queries ("what is ω(n) for this machine × workload ×
// scale?") answered in microseconds by the fitted analytical model when
// it is trustworthy, and by full simulation — cached, deduplicated,
// journaled — when it is not. docs/API.md is the wire reference,
// docs/SERVER.md the operations guide; docs/MODEL.md derives the
// analytical tier.
//
// Usage:
//
//	simserved -addr localhost:8080 -scale 0.25 -jobs 4
//	simserved -warm IntelUMA8/CG.C,IntelNUMA24/CG.C -journal simserved.ndjson
//
// Endpoints: POST /v1/predict, POST /v1/curve (whole ω(n) sweeps,
// batched JSON or streaming NDJSON), GET /v1/catalog, GET /healthz,
// GET /metrics (Prometheus), /debug/pprof. The X-Simserved-Tier response
// header reports which tier answered.
//
// -warm pre-fits pairs before the listener opens, so their whole ω(n)
// curve serves from the fast path immediately. -journal persists every
// simulation result as NDJSON (the experiments resume-journal format):
// on restart the journal replays into the cache and warm-up costs
// nothing. Ctrl-C / SIGTERM drains in-flight requests and exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var common cli.Common
	var (
		addr        = flag.String("addr", "localhost:8080", "listen address (host:port; port 0 picks a free port)")
		queue       = flag.Int("queue", server.DefaultMaxQueue, "max simulation-tier requests admitted at once (queued + running); excess gets 429")
		warm        = flag.String("warm", "", "comma-separated MACHINE/PROGRAM.CLASS pairs to fit before serving, e.g. IntelUMA8/CG.C,AMDNUMA48/SP.C")
		journal     = flag.String("journal", "", "NDJSON result journal: every simulation is appended and replayed on restart, so fits re-warm from disk")
		minR2       = flag.Float64("min-r2", model.DefaultMinR2, "minimum 1/C(n) regression R-squared for the analytical tier to answer")
		maxResidual = flag.Float64("max-residual", model.DefaultMaxResidual, "maximum relative error of a fit over its own anchors before it declines")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window for in-flight requests")
	)
	common.RegisterScale()
	common.RegisterJobs()
	common.RegisterVerbose()
	common.RegisterTelemetry()
	flag.Parse()

	ctx, stopSignals := cli.SignalContext(context.Background())
	defer stopSignals()

	// The journal rides the shared -resume plumbing: replay on attach,
	// append per completed simulation, identical NDJSON format.
	common.Resume = *journal
	r, cleanup, err := common.NewRunner()
	if err != nil {
		fatal(err)
	}
	defer cleanup()

	metrics := r.Metrics
	if metrics == nil {
		metrics = telemetry.NewRegistry()
		r.Metrics = metrics
	}
	pred := model.New(r)
	pred.MinR2 = *minR2
	pred.MaxResidual = *maxResidual
	pred.Tracer = r.Tracer
	pred.Metrics = metrics

	if err := warmPairs(ctx, pred, *warm); err != nil {
		cleanup()
		fatal(err)
	}

	srv := server.New(server.Config{
		Predictor: pred,
		MaxQueue:  *queue,
		Metrics:   metrics,
		Tracer:    r.Tracer,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cleanup()
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "simserved listening on %s (scale %g, queue %d, %d fits warm)\n",
		ln.Addr(), pred.Scale(), *queue, pred.FitCount())

	select {
	case err := <-done:
		cleanup()
		fatal(err)
	case <-ctx.Done():
	}
	// Signal received: stop accepting, drain in-flight requests, then
	// flush the journal via cleanup. In-flight simulations whose clients
	// are still connected get the drain window to finish.
	fmt.Fprintf(os.Stderr, "simserved: shutting down (drain %s)\n", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "simserved: drain incomplete: %v\n", err)
	}
}

// warmPairs parses -warm ("MACHINE/PROGRAM.CLASS,...") and fits each pair.
func warmPairs(ctx context.Context, pred *model.Predictor, list string) error {
	if list == "" {
		return nil
	}
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		mach, prog, class, err := parsePair(item)
		if err != nil {
			return err
		}
		spec, err := machine.ByName(mach)
		if err != nil {
			return err
		}
		info, err := pred.Warm(ctx, spec, prog, workload.Class(class))
		if err != nil {
			return fmt.Errorf("warm %s: %w", item, err)
		}
		fmt.Fprintf(os.Stderr, "simserved: warmed %s: anchors=%v r2=%.3f residual=%.3f saturation=%.1f cores\n",
			item, info.Anchors, info.R2, info.Residual, info.SaturationCores)
	}
	return nil
}

// parsePair splits "MACHINE/PROGRAM.CLASS".
func parsePair(item string) (mach, prog, class string, err error) {
	slash := strings.IndexByte(item, '/')
	dot := strings.LastIndexByte(item, '.')
	if slash < 1 || dot <= slash+1 || dot == len(item)-1 {
		return "", "", "", errors.New("simserved: -warm items must look like MACHINE/PROGRAM.CLASS, e.g. IntelUMA8/CG.C")
	}
	return item[:slash], item[slash+1 : dot], item[dot+1:], nil
}

func fatal(err error) {
	cli.Fatal("simserved", err)
}
