// Command experiments regenerates the paper's evaluation artifacts (Table
// II, Fig. 3, Table III, Fig. 4, Fig. 5, Fig. 6, Table IV and the ablation
// studies) on the simulated testbed.
//
// Usage:
//
//	experiments -run all                 # everything at full fidelity
//	experiments -run fig5 -machine AMDNUMA48 -step 3
//	experiments -run tableII -scale 0.25 # quarter-length workloads
//	experiments -run all -scale 0.25 -jobs 8 -v  # fast path: parallel runs
//	experiments -run fig3 -resume fig3.journal   # survive kills: re-run to finish
//
// Simulations execute on a bounded worker pool (-jobs, default
// GOMAXPROCS) with singleflight deduplication, so runs shared between
// artifacts execute once and output is byte-identical at any -jobs value.
//
// Ctrl-C (or SIGTERM) cancels the sweep promptly: in-flight simulations
// abort within a bounded number of events and the process exits 130.
// With -resume FILE every completed run is journaled as it finishes;
// re-running the same command after a kill replays the journal and
// simulates only the remainder, producing byte-identical output.
//
// Output is the textual form of each table/figure: the same rows and
// series the paper reports.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/workload"
)

func main() {
	var common cli.Common
	var (
		runWhat  = flag.String("run", "all", "experiment: tableII|fig3|tableIII|fig4|fig5|fig6|tableIV|ablations|oversub|sensitivity|speedup|whitebox|all")
		datDir   = flag.String("dat", "", "also write gnuplot-ready .dat files for the figures into this directory")
		jsonDir  = flag.String("json", "", "also write machine-readable .json results into this directory")
		cacheArg = flag.String("cache", "", "persistent run-cache file: loaded at start, saved at exit")
		step     = flag.Int("step", 1, "core-count step for figure sweeps (1 = every count)")
	)
	common.RegisterMachineAll("all")
	common.RegisterScale()
	common.RegisterJobs()
	common.RegisterVerbose()
	common.RegisterTelemetry()
	common.RegisterResume()
	flag.Parse()

	specs, err := common.Machines()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ctx, stopSignals := cli.SignalContext(context.Background())
	defer stopSignals()

	r, cleanup, err := common.NewRunner()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer cleanup()
	if *cacheArg != "" {
		n, err := r.LoadCache(*cacheArg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cache: %v\n", err)
		} else if n > 0 {
			fmt.Fprintf(os.Stderr, "cache: loaded %d runs from %s\n", n, *cacheArg)
		}
		defer func() {
			if err := r.SaveCache(*cacheArg); err != nil {
				fmt.Fprintf(os.Stderr, "cache: save failed: %v\n", err)
			}
		}()
	}

	run := func(name string, fn func() error) {
		if *runWhat != "all" && *runWhat != name {
			return
		}
		if err := fn(); err != nil {
			// Run the deferred cleanups (journal close, cache save,
			// tracer flush) before exiting; cli.Fatal maps cancellation
			// to exit 130 so wrappers can distinguish kill from failure.
			cleanup()
			cli.Fatal(name, err)
		}
		fmt.Println()
	}

	run("tableII", func() error {
		d, err := r.TableII(ctx, specs)
		if err != nil {
			return err
		}
		experiments.RenderTableII(os.Stdout, d, specs)
		if *jsonDir != "" {
			return experiments.WriteJSON(*jsonDir, "tableII", d)
		}
		return nil
	})
	run("fig3", func() error {
		for _, spec := range specs {
			d, err := r.Fig3(ctx, spec, experiments.CoarseSweepCounts(spec, *step))
			if err != nil {
				return err
			}
			experiments.RenderFig3(os.Stdout, d)
			if *datDir != "" {
				if err := experiments.WriteFig3Dat(*datDir, d); err != nil {
					return err
				}
			}
			fmt.Println()
		}
		return nil
	})
	run("tableIII", func() error {
		rows, err := experiments.TableIII()
		if err != nil {
			return err
		}
		experiments.RenderTableIII(os.Stdout, rows)
		return nil
	})
	run("fig4", func() error {
		// The paper's burstiness study runs on the Intel NUMA machine.
		spec := machine.IntelNUMA24()
		series, err := r.Fig4(ctx, spec)
		if err != nil {
			return err
		}
		experiments.RenderFig4(os.Stdout, series)
		if *datDir != "" {
			if err := experiments.WriteFig4Dat(*datDir, series); err != nil {
				return err
			}
		}
		if *jsonDir != "" {
			return experiments.WriteJSON(*jsonDir, "fig4", series)
		}
		return nil
	})
	run("fig5", func() error {
		for _, spec := range specs {
			fig, err := r.Fig5(ctx, spec, experiments.CoarseSweepCounts(spec, *step))
			if err != nil {
				return err
			}
			experiments.RenderModelFig(os.Stdout, fig, "Fig. 5")
			if *datDir != "" {
				if err := experiments.WriteModelFigDat(*datDir, "fig5", fig); err != nil {
					return err
				}
			}
			if *jsonDir != "" {
				if err := experiments.WriteJSON(*jsonDir, "fig5_"+spec.Name, fig); err != nil {
					return err
				}
			}
			fmt.Println()
		}
		return nil
	})
	run("fig6", func() error {
		for _, spec := range specs {
			fig, err := r.Fig6(ctx, spec, experiments.CoarseSweepCounts(spec, *step))
			if err != nil {
				return err
			}
			experiments.RenderModelFig(os.Stdout, fig, "Fig. 6")
			if *datDir != "" {
				if err := experiments.WriteModelFigDat(*datDir, "fig6", fig); err != nil {
					return err
				}
			}
			fmt.Println()
		}
		return nil
	})
	run("tableIV", func() error {
		cells, err := r.TableIV(ctx, specs)
		if err != nil {
			return err
		}
		experiments.RenderTableIV(os.Stdout, cells, specs)
		return nil
	})
	run("oversub", func() error {
		for _, spec := range specs {
			points, err := r.Oversubscription(ctx, spec, "CG", workload.C)
			if err != nil {
				return err
			}
			experiments.RenderOversubscription(os.Stdout, spec, "CG", workload.C, points)
			fmt.Println()
		}
		return nil
	})
	run("sensitivity", func() error {
		for _, spec := range specs {
			points, err := r.Sensitivity(ctx, spec, "CG", workload.C)
			if err != nil {
				return err
			}
			experiments.RenderSensitivity(os.Stdout, spec, "CG", workload.C, points)
			fmt.Println()
		}
		return nil
	})
	run("speedup", func() error {
		for _, spec := range specs {
			d, err := r.SpeedupStudy(ctx, spec, "CG", workload.C, experiments.CoarseSweepCounts(spec, *step))
			if err != nil {
				return err
			}
			experiments.RenderSpeedup(os.Stdout, d)
			fmt.Println()
		}
		return nil
	})
	run("whitebox", func() error {
		for _, spec := range specs {
			d, err := r.WhiteBoxStudy(ctx, spec, "CG", workload.C, experiments.CoarseSweepCounts(spec, *step))
			if err != nil {
				return err
			}
			experiments.RenderWhiteBox(os.Stdout, d)
			fmt.Println()
		}
		return nil
	})
	run("ablations", func() error {
		for _, spec := range specs {
			if !spec.UMA() && spec.Sockets > 2 {
				a, err := r.AblationInputs(ctx, spec, experiments.CoarseSweepCounts(spec, *step))
				if err != nil {
					return err
				}
				experiments.RenderAblationInputs(os.Stdout, a)
			}
			ctrl, err := r.AblationController(ctx, spec)
			if err != nil {
				return err
			}
			experiments.RenderAblationController(os.Stdout, ctrl)
			closed, err := r.AblationClosedModel(ctx, spec, "CG", workload.C)
			if err != nil {
				return err
			}
			experiments.RenderAblationClosed(os.Stdout, closed)
		}
		return nil
	})
}
