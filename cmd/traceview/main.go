// Command traceview reconstructs per-request waterfalls from span NDJSON
// logs (internal/telemetry span.end records) and gates CI on them.
//
// It reads one or more span files — typically the server's -trace-out and,
// in loadgen -self runs, the combined client+server file — rebuilds each
// trace's span tree, classifies the server phases into the paper's
// queue-wait vs service decomposition (admission/queue-wait, model, sim
// execute, serve), and optionally joins the trees against a loadgen NDJSON
// request log by trace ID to compare the server's accounting with the
// client-observed latency.
//
// Offsets inside one file share that file's tracer epoch; offsets from
// different files (e.g. loadgen's clock vs simserved's) are NOT comparable,
// so every cross-file statement traceview makes is about durations, never
// about absolute offsets.
//
// Gates (all exit non-zero on failure, for CI):
//
//	-assert-complete   every trace must form a well-formed tree (and, with
//	                   -load, every 2xx record must join a server tree)
//	-assert-join F     joined traces must have unaccounted client time
//	                   <= F*total + -join-slack, for >= -join-pass of them
//	-slo-p99 D         p99 (client latency with -load, else server span
//	                   duration) must be <= D; reports the burn rate
//	-require-tiers T   comma list; each tier must appear among passing traces
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/load"
	"repro/internal/telemetry"
)

// span is one span.end record.
type span struct {
	Name    string
	Trace   string
	SpanID  string
	Parent  string
	StartUs float64
	EndUs   float64
	File    int // index of the input file (one timebase per file)
	Status  int
	Tier    string
}

func (s *span) durUs() float64 { return s.EndUs - s.StartUs }

// trace is every span sharing one trace ID, across files.
type trace struct {
	id    string
	spans []*span
	byID  map[string]*span
	// client is the load.request root span (when the client's span file
	// was given); server is the server root: server.request for one
	// predict, server.curve for a whole sweep.
	client *span
	server *span
}

// children returns p's child spans from the same file, by start offset.
func (t *trace) children(p *span) []*span {
	var out []*span
	for _, s := range t.spans {
		if s.Parent == p.SpanID && s.File == p.File && s != p {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartUs < out[j].StartUs })
	return out
}

// parseSpans reads span.end records from one NDJSON stream, ignoring every
// other event type (the span log is interleaved with fit/decline/request
// events when the server shares one -trace-out).
func parseSpans(r io.Reader, file int) ([]*span, error) {
	var spans []*span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec struct {
			Event   string  `json:"event"`
			Name    string  `json:"name"`
			Trace   string  `json:"trace"`
			Span    string  `json:"span"`
			Parent  string  `json:"parent"`
			StartUs float64 `json:"start_us"`
			EndUs   float64 `json:"end_us"`
			Status  int     `json:"status"`
			Tier    string  `json:"tier"`
		}
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		if rec.Event != "span.end" {
			continue
		}
		if rec.Name == "" || rec.Trace == "" || rec.Span == "" {
			return nil, fmt.Errorf("line %d: span.end missing name/trace/span", line)
		}
		spans = append(spans, &span{
			Name: rec.Name, Trace: rec.Trace, SpanID: rec.Span, Parent: rec.Parent,
			StartUs: rec.StartUs, EndUs: rec.EndUs, File: file,
			Status: rec.Status, Tier: rec.Tier,
		})
	}
	return spans, sc.Err()
}

// buildTraces groups spans by trace ID and locates each trace's roots.
func buildTraces(spans []*span) map[string]*trace {
	traces := make(map[string]*trace)
	for _, s := range spans {
		t := traces[s.Trace]
		if t == nil {
			t = &trace{id: s.Trace, byID: make(map[string]*span)}
			traces[s.Trace] = t
		}
		t.spans = append(t.spans, s)
		t.byID[s.SpanID] = s
		switch s.Name {
		case "load.request":
			t.client = s
		case "server.request", "server.curve":
			t.server = s
		}
	}
	return traces
}

// problems returns everything structurally wrong with the trace tree;
// empty means complete. Parents are allowed to be missing only for root
// spans (load.request, and server.request whose parent lives in the
// client's file or was generated client-side).
func (t *trace) problems() []string {
	var out []string
	if t.server == nil {
		out = append(out, "no server.request span")
	}
	serverCount, clientCount := 0, 0
	for _, s := range t.spans {
		if s.Name == "server.request" || s.Name == "server.curve" {
			serverCount++
		}
		if s.Name == "load.request" {
			clientCount++
		}
		if s.EndUs < s.StartUs {
			out = append(out, fmt.Sprintf("%s ends before it starts", s.Name))
		}
		if s.Parent == "" || s.Name == "server.request" || s.Name == "server.curve" || s.Name == "load.request" {
			continue
		}
		p, ok := t.byID[s.Parent]
		if !ok {
			out = append(out, fmt.Sprintf("%s has dangling parent %s", s.Name, s.Parent))
			continue
		}
		if p.File == s.File && (s.StartUs < p.StartUs || s.EndUs > p.EndUs) {
			out = append(out, fmt.Sprintf("%s extends outside its parent %s", s.Name, p.Name))
		}
	}
	if serverCount > 1 {
		out = append(out, fmt.Sprintf("%d server root spans", serverCount))
	}
	if clientCount > 1 {
		out = append(out, fmt.Sprintf("%d load.request spans", clientCount))
	}
	return out
}

// breakdown is one request's critical-path decomposition in microseconds,
// the serving-layer analogue of the paper's queueing vs service split.
type breakdown struct {
	rootUs    float64 // server.request duration
	queueUs   float64 // server.admit + runner.queue_wait + runner.dedup_wait
	modelUs   float64 // server.model + model.refit
	simUs     float64 // runner.execute (the simulation itself)
	serveUs   float64 // server.parse + server.respond + rest of server.sim
	otherUs   float64 // root time outside every phase span
	coveredUs float64 // sum of the sequential phase spans
}

// analyze decomposes one trace's server tree. The handler phases
// (parse/model/admit/sim/respond) tile the root without overlapping, so
// coveredUs is their plain sum; the runner spans and model.refit overlap
// server.sim and are reported as its inner decomposition rather than
// re-added.
func analyze(t *trace) breakdown {
	var bd breakdown
	if t.server == nil {
		return bd
	}
	bd.rootUs = t.server.durUs()
	var simPhaseUs float64
	var simInnerUs float64
	for _, s := range t.spans {
		if s.File != t.server.File {
			continue
		}
		switch s.Name {
		case "server.parse", "server.respond":
			bd.serveUs += s.durUs()
			bd.coveredUs += s.durUs()
		case "server.model":
			bd.modelUs += s.durUs()
			bd.coveredUs += s.durUs()
		case "server.admit":
			bd.queueUs += s.durUs()
			bd.coveredUs += s.durUs()
		case "server.sim":
			simPhaseUs += s.durUs()
			bd.coveredUs += s.durUs()
		case "runner.queue_wait", "runner.dedup_wait":
			bd.queueUs += s.durUs()
			simInnerUs += s.durUs()
		case "runner.execute":
			bd.simUs += s.durUs()
			simInnerUs += s.durUs()
		case "model.refit":
			bd.modelUs += s.durUs()
			simInnerUs += s.durUs()
		}
	}
	// The part of server.sim not inside a runner/refit span is serving
	// overhead (cache lookups, result assembly).
	if rest := simPhaseUs - simInnerUs; rest > 0 {
		bd.serveUs += rest
	}
	bd.otherUs = bd.rootUs - bd.coveredUs
	return bd
}

// joined is one loadgen record matched to its server trace.
type joined struct {
	rec           load.Record
	tr            *trace
	bd            breakdown
	clientUs      float64
	unaccountedUs float64
	pass          bool
}

// msBounds is the histogram grid for RED quantiles: roughly logarithmic
// from the analytical tier's microseconds to multi-minute simulations, so
// Quantile's within-bucket interpolation stays tight at every tier.
var msBounds = []float64{
	0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500,
	1000, 2000, 5000, 10000, 20000, 60000, 120000, 300000,
}

func quantiles(values []float64) (p50, p90, p99 float64) {
	h := telemetry.NewHistogram(msBounds...)
	for _, v := range values {
		h.Observe(v)
	}
	return h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		loadPath       = fs.String("load", "", "loadgen NDJSON request log to join by trace ID")
		sloP99         = fs.Duration("slo-p99", 0, "p99 latency SLO to gate on (0 disables)")
		sloTier        = fs.String("slo-tier", "", "restrict the -slo-p99 gate to this tier (empty = all)")
		assertComplete = fs.Bool("assert-complete", false, "fail unless every trace tree is complete (and joins, with -load)")
		assertJoin     = fs.Float64("assert-join", 0, "fail unless server segments cover client latency within this fraction (0 disables)")
		joinSlack      = fs.Duration("join-slack", time.Millisecond, "absolute slack added to the -assert-join bound (network/HTTP floor)")
		joinPass       = fs.Float64("join-pass", 0.9, "fraction of joined traces that must pass -assert-join")
		requireTiers   = fs.String("require-tiers", "", "comma-separated tiers that must appear among complete traces")
		waterfalls     = fs.Int("waterfall", 1, "print waterfalls for the N slowest traces (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "traceview: at least one span NDJSON file required")
		fs.Usage()
		return 2
	}

	var spans []*span
	for i, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "traceview: %v\n", err)
			return 2
		}
		fileSpans, err := parseSpans(f, i)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "traceview: %s: %v\n", path, err)
			return 2
		}
		spans = append(spans, fileSpans...)
	}
	traces := buildTraces(spans)
	fmt.Fprintf(stdout, "traceview: %d spans, %d traces from %d file(s)\n",
		len(spans), len(traces), fs.NArg())

	failed := false

	// Completeness over every trace that has any server-side presence.
	complete := make(map[string]*trace, len(traces))
	var incomplete int
	for id, t := range traces {
		if probs := t.problems(); len(probs) > 0 {
			incomplete++
			if *assertComplete {
				fmt.Fprintf(stdout, "INCOMPLETE %s: %s\n", id, strings.Join(probs, "; "))
			}
			continue
		}
		complete[id] = t
	}
	fmt.Fprintf(stdout, "complete traces: %d/%d\n", len(complete), len(traces))
	if *assertComplete && incomplete > 0 {
		fmt.Fprintf(stdout, "FAIL assert-complete: %d incomplete trace(s)\n", incomplete)
		failed = true
	}

	// Join against the loadgen log.
	var joins []joined
	var records []load.Record
	if *loadPath != "" {
		var err error
		records, err = readRecords(*loadPath)
		if err != nil {
			fmt.Fprintf(stderr, "traceview: %v\n", err)
			return 2
		}
		var unjoined int
		slackUs := float64(joinSlack.Microseconds())
		for _, rec := range records {
			if rec.Status < 200 || rec.Status >= 300 || rec.TraceID == "" {
				continue
			}
			t, ok := complete[rec.TraceID]
			if !ok {
				unjoined++
				continue
			}
			bd := analyze(t)
			j := joined{rec: rec, tr: t, bd: bd, clientUs: rec.TotalMs * 1000}
			j.unaccountedUs = j.clientUs - bd.coveredUs
			tol := *assertJoin
			if tol == 0 {
				tol = 0.05 // reporting tolerance when the gate is off
			}
			j.pass = j.unaccountedUs <= tol*j.clientUs+slackUs
			joins = append(joins, j)
		}
		passCount := 0
		for _, j := range joins {
			if j.pass {
				passCount++
			}
		}
		fmt.Fprintf(stdout, "joined %d/%d 2xx records to complete server traces (%d unjoined)\n",
			len(joins), len(joins)+unjoined, unjoined)
		if len(joins) > 0 {
			var unacc []float64
			for _, j := range joins {
				unacc = append(unacc, j.unaccountedUs/1000)
			}
			u50, _, u99 := quantiles(unacc)
			fmt.Fprintf(stdout, "unaccounted client time: p50 %.2fms p99 %.2fms; %d/%d within bound\n",
				u50, u99, passCount, len(joins))
		}
		if *assertComplete && unjoined > 0 {
			fmt.Fprintf(stdout, "FAIL assert-complete: %d 2xx record(s) did not join a server trace\n", unjoined)
			failed = true
		}
		if *assertJoin > 0 {
			if len(joins) == 0 {
				fmt.Fprintln(stdout, "FAIL assert-join: no joined traces")
				failed = true
			} else if rate := float64(passCount) / float64(len(joins)); rate < *joinPass {
				fmt.Fprintf(stdout, "FAIL assert-join: only %.0f%% of joined traces within %.0f%%+%s of client latency (need %.0f%%)\n",
					rate*100, *assertJoin*100, joinSlack, *joinPass*100)
				failed = true
			}
		}
	}

	// RED summary + SLO gate.
	type redRow struct {
		tier   string
		count  int       // requests seen (errors included)
		values []float64 // latency ms (transport failures have none)
		errs   int
	}
	rows := map[string]*redRow{}
	rowFor := func(tier string) *redRow {
		r := rows[tier]
		if r == nil {
			r = &redRow{tier: tier}
			rows[tier] = r
		}
		return r
	}
	var window float64 // seconds
	if records != nil {
		for _, rec := range records {
			tier := rec.Tier
			if tier == "" {
				tier = "(none)"
			}
			r := rowFor(tier)
			r.count++
			if rec.Status < 200 || rec.Status >= 300 {
				r.errs++
			}
			if rec.Status != 0 {
				r.values = append(r.values, rec.TotalMs)
			}
			if end := (rec.SendMs + rec.TotalMs) / 1000; end > window {
				window = end
			}
		}
	} else {
		// No client log: RED over server.request spans. Rate needs a shared
		// clock, so the window comes from the file with the most roots.
		perFile := map[int][2]float64{}
		counts := map[int]int{}
		for _, t := range complete {
			s := t.server
			r := rowFor(tierOf(s))
			r.count++
			if s.Status < 200 || s.Status >= 300 {
				r.errs++
			}
			r.values = append(r.values, s.durUs()/1000)
			lohi, ok := perFile[s.File]
			if !ok {
				lohi = [2]float64{s.StartUs, s.EndUs}
			}
			lohi[0] = math.Min(lohi[0], s.StartUs)
			lohi[1] = math.Max(lohi[1], s.EndUs)
			perFile[s.File] = lohi
			counts[s.File]++
		}
		best := -1
		for f, n := range counts {
			if best == -1 || n > counts[best] {
				best = f
			}
		}
		if best >= 0 {
			window = (perFile[best][1] - perFile[best][0]) / 1e6
		}
	}
	source := "server spans"
	if records != nil {
		source = "client records"
	}
	fmt.Fprintf(stdout, "\n== RED summary (%s) ==\n", source)
	fmt.Fprintf(stdout, "%-12s %7s %5s %9s %9s %9s %9s\n", "tier", "count", "err", "rate_rps", "p50_ms", "p90_ms", "p99_ms")
	var tierNames []string
	for tier := range rows {
		tierNames = append(tierNames, tier)
	}
	sort.Strings(tierNames)
	for _, tier := range tierNames {
		r := rows[tier]
		rate := 0.0
		if window > 0 {
			rate = float64(r.count) / window
		}
		p50, p90, p99 := quantiles(r.values)
		fmt.Fprintf(stdout, "%-12s %7d %5d %9.1f %9.3f %9.3f %9.3f\n",
			tier, r.count, r.errs, rate, p50, p90, p99)
	}

	if *sloP99 > 0 {
		target := float64(sloP99.Microseconds()) / 1000
		var pop []float64
		for tier, r := range rows {
			if *sloTier != "" && tier != *sloTier {
				continue
			}
			pop = append(pop, r.values...)
		}
		scope := "all tiers"
		if *sloTier != "" {
			scope = "tier " + *sloTier
		}
		if len(pop) == 0 {
			fmt.Fprintf(stdout, "FAIL slo-p99: no observations for %s\n", scope)
			failed = true
		} else {
			h := telemetry.NewHistogram(msBounds...)
			violations := 0
			for _, v := range pop {
				h.Observe(v)
				if v > target {
					violations++
				}
			}
			p99 := h.Quantile(0.99)
			// Burn rate: observed violation mass over the 1% an SLO at p99
			// budgets; 1.0 means exactly on budget.
			burn := float64(violations) / (0.01 * float64(len(pop)))
			fmt.Fprintf(stdout, "\nSLO p99 <= %s over %s: p99 %.3fms, %d/%d over target, burn rate %.2fx\n",
				sloP99, scope, p99, violations, len(pop), burn)
			if p99 > target {
				fmt.Fprintf(stdout, "FAIL slo-p99: p99 %.3fms > %s\n", p99, sloP99)
				failed = true
			}
		}
	}

	if *requireTiers != "" {
		have := map[string]bool{}
		if len(joins) > 0 {
			for _, j := range joins {
				if j.pass {
					have[j.rec.Tier] = true
				}
			}
		} else {
			for _, t := range complete {
				have[tierOf(t.server)] = true
			}
		}
		for _, tier := range strings.Split(*requireTiers, ",") {
			tier = strings.TrimSpace(tier)
			if tier != "" && !have[tier] {
				fmt.Fprintf(stdout, "FAIL require-tiers: no passing %s-tier trace\n", tier)
				failed = true
			}
		}
	}

	if *waterfalls > 0 {
		printWaterfalls(stdout, complete, joins, *waterfalls)
	}

	if failed {
		fmt.Fprintln(stdout, "\ntraceview: FAIL")
		return 1
	}
	fmt.Fprintln(stdout, "\ntraceview: ok")
	return 0
}

func tierOf(s *span) string {
	if s == nil || s.Tier == "" {
		return "(none)"
	}
	return s.Tier
}

// readRecords loads a loadgen NDJSON request log.
func readRecords(path string) ([]load.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var records []load.Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var rec load.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		records = append(records, rec)
	}
	return records, sc.Err()
}

// printWaterfalls renders the N slowest traces (by client latency when
// joined, else by server root duration) as indented span trees with
// duration bars scaled to the root.
func printWaterfalls(w io.Writer, complete map[string]*trace, joins []joined, n int) {
	type item struct {
		t        *trace
		clientMs float64 // 0 when not joined
		sortMs   float64
	}
	var items []item
	if len(joins) > 0 {
		for _, j := range joins {
			items = append(items, item{t: j.tr, clientMs: j.rec.TotalMs, sortMs: j.rec.TotalMs})
		}
	} else {
		for _, t := range complete {
			items = append(items, item{t: t, sortMs: t.server.durUs() / 1000})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].sortMs > items[j].sortMs })
	if len(items) > n {
		items = items[:n]
	}
	for _, it := range items {
		t := it.t
		fmt.Fprintf(w, "\ntrace %s  status=%d tier=%s", t.id, t.server.Status, tierOf(t.server))
		if it.clientMs > 0 {
			bd := analyze(t)
			fmt.Fprintf(w, "  client=%.3fms server=%.3fms unaccounted=%.3fms",
				it.clientMs, bd.rootUs/1000, it.clientMs-bd.coveredUs/1000)
		}
		fmt.Fprintln(w)
		if t.client != nil {
			printSpanTree(w, t, t.client, t.client, 1)
		}
		// When client and server spans share one tracer (loadgen -self) the
		// server tree already rendered nested under load.request. Otherwise
		// it renders standalone, in its own timebase: cross-file offsets are
		// not comparable, so its bars are relative to server.request itself.
		nested := t.client != nil && t.server.Parent == t.client.SpanID && t.server.File == t.client.File
		if !nested {
			printSpanTree(w, t, t.server, t.server, 1)
		}
	}
}

const barWidth = 40

func printSpanTree(w io.Writer, t *trace, s, base *span, depth int) {
	bar := strings.Repeat(" ", barWidth)
	if base.durUs() > 0 && s.File == base.File {
		lo := int(float64(barWidth) * (s.StartUs - base.StartUs) / base.durUs())
		hi := int(math.Ceil(float64(barWidth) * (s.EndUs - base.StartUs) / base.durUs()))
		lo = clamp(lo, 0, barWidth)
		hi = clamp(hi, lo+1, barWidth)
		bar = strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) + strings.Repeat(" ", barWidth-hi)
	}
	fmt.Fprintf(w, "%-34s %10.3fms |%s|\n",
		strings.Repeat("  ", depth)+s.Name, s.durUs()/1000, bar)
	for _, c := range t.children(s) {
		printSpanTree(w, t, c, base, depth+1)
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
