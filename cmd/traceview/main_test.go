package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// line renders one span.end NDJSON record the way telemetry.Span.End does.
func line(name, trace, span, parent string, startUs, endUs float64, attrs map[string]any) string {
	rec := map[string]any{
		"event": "span.end", "name": name, "trace": trace, "span": span,
		"start_us": startUs, "end_us": endUs,
	}
	if parent != "" {
		rec["parent"] = parent
	}
	for k, v := range attrs {
		rec[k] = v
	}
	b, err := json.Marshal(rec)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// serverTrace renders a complete simulation-tier server tree: request from
// startUs to endUs with the bulk spent inside server.sim/runner.execute.
func serverTrace(trace string, startUs, endUs float64, tier string) []string {
	root := "00000000000000aa"
	dur := endUs - startUs
	simStart := startUs + 0.10*dur
	simEnd := endUs - 0.05*dur
	return []string{
		line("server.request", trace, root, "", startUs, endUs,
			map[string]any{"status": 200, "tier": tier}),
		line("server.parse", trace, "00000000000000ab", root, startUs, startUs+0.02*dur, nil),
		line("server.model", trace, "00000000000000ac", root, startUs+0.02*dur, startUs+0.05*dur, nil),
		line("server.admit", trace, "00000000000000ad", root, startUs+0.05*dur, startUs+0.10*dur, nil),
		line("server.sim", trace, "00000000000000ae", root, simStart, simEnd, nil),
		line("runner.queue_wait", trace, "00000000000000af", root, simStart, simStart+0.10*dur, nil),
		line("runner.execute", trace, "00000000000000b0", root, simStart+0.10*dur, simEnd-0.05*dur, nil),
		line("server.respond", trace, "00000000000000b1", root, simEnd, endUs, nil),
	}
}

func writeFile(t *testing.T, name string, lines []string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runMain(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	t.Logf("exit %d\n%s%s", code, out.String(), errb.String())
	return code, out.String() + errb.String()
}

func TestParseSpansSkipsOtherEvents(t *testing.T) {
	input := strings.Join([]string{
		`{"event":"load.start","url":"x"}`,
		line("server.request", "t1", "s1", "", 0, 100, map[string]any{"status": 200, "tier": "analytical"}),
		``,
		`{"event":"model.fit","r2":0.99}`,
		line("server.parse", "t1", "s2", "s1", 0, 10, nil),
	}, "\n")
	spans, err := parseSpans(strings.NewReader(input), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Status != 200 || spans[0].Tier != "analytical" {
		t.Errorf("root attrs not captured: %+v", spans[0])
	}
	if spans[1].Parent != "s1" || spans[1].durUs() != 10 {
		t.Errorf("child span wrong: %+v", spans[1])
	}
}

func TestParseSpansRejectsMalformed(t *testing.T) {
	if _, err := parseSpans(strings.NewReader("{not json"), 0); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := parseSpans(strings.NewReader(`{"event":"span.end","name":"x"}`), 0); err == nil {
		t.Error("span.end without trace/span accepted")
	}
}

func TestProblems(t *testing.T) {
	good := buildTraces(mustParse(t, serverTrace("t1", 0, 1000, "simulation")))["t1"]
	if probs := good.problems(); len(probs) != 0 {
		t.Errorf("complete trace reported problems: %v", probs)
	}

	dangling := mustParse(t, []string{
		line("server.request", "t2", "r", "", 0, 100, nil),
		line("server.parse", "t2", "p", "nosuch", 0, 10, nil),
	})
	if probs := buildTraces(dangling)["t2"].problems(); len(probs) == 0 {
		t.Error("dangling parent not reported")
	}

	noRoot := mustParse(t, []string{line("server.parse", "t3", "p", "", 0, 10, nil)})
	if probs := buildTraces(noRoot)["t3"].problems(); len(probs) == 0 {
		t.Error("missing server.request not reported")
	}

	outside := mustParse(t, []string{
		line("server.request", "t4", "r", "", 0, 100, nil),
		line("server.parse", "t4", "p", "r", 50, 150, nil),
	})
	if probs := buildTraces(outside)["t4"].problems(); len(probs) == 0 {
		t.Error("child extending outside parent not reported")
	}
}

func mustParse(t *testing.T, lines []string) []*span {
	t.Helper()
	spans, err := parseSpans(strings.NewReader(strings.Join(lines, "\n")), 0)
	if err != nil {
		t.Fatal(err)
	}
	return spans
}

// TestAnalyze checks the critical-path decomposition: the phase spans tile
// into covered time, the runner spans land in queue/sim, and the slice of
// server.sim outside them counts as serving overhead.
func TestAnalyze(t *testing.T) {
	tr := buildTraces(mustParse(t, serverTrace("t1", 0, 1000, "simulation")))["t1"]
	bd := analyze(tr)
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-6 }
	if !approx(bd.rootUs, 1000) {
		t.Errorf("rootUs = %g", bd.rootUs)
	}
	// parse 20 + model 30 + admit 50 + sim 850 + respond 50 = 1000
	if !approx(bd.coveredUs, 1000) {
		t.Errorf("coveredUs = %g, want 1000", bd.coveredUs)
	}
	if !approx(bd.queueUs, 50+100) { // admit + runner.queue_wait
		t.Errorf("queueUs = %g, want 150", bd.queueUs)
	}
	if !approx(bd.simUs, 700) { // runner.execute
		t.Errorf("simUs = %g, want 700", bd.simUs)
	}
	// serve = parse 20 + respond 50 + (sim 850 − queue_wait 100 − execute 700)
	if !approx(bd.serveUs, 20+50+50) {
		t.Errorf("serveUs = %g, want 120", bd.serveUs)
	}
	if !approx(bd.otherUs, 0) {
		t.Errorf("otherUs = %g, want 0", bd.otherUs)
	}
}

func loadLine(seq int, trace string, totalMs float64, status int, tier string) string {
	return fmt.Sprintf(`{"seq":%d,"scheduled_ms":0,"send_ms":%d,"first_byte_ms":%g,"total_ms":%g,"status":%d,"tier":%q,"trace_id":%q}`,
		seq, seq*10, totalMs, totalMs, status, tier, trace)
}

// TestRunJoinPass: server accounts for nearly all of the client latency, so
// the join and completeness gates pass and the exit code is 0.
func TestRunJoinPass(t *testing.T) {
	var spans []string
	var recs []string
	for i := 0; i < 5; i++ {
		trace := fmt.Sprintf("%032d", i+1)
		spans = append(spans, serverTrace(trace, 0, 2000, "simulation")...) // 2ms server
		recs = append(recs, loadLine(i, trace, 2.1, 200, "simulation"))     // 2.1ms client
	}
	spanPath := writeFile(t, "spans.ndjson", spans)
	loadPath := writeFile(t, "load.ndjson", recs)
	code, out := runMain(t, "-load", loadPath, "-assert-complete", "-assert-join", "0.05",
		"-join-slack", "1ms", "-require-tiers", "simulation", spanPath)
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "joined 5/5") {
		t.Errorf("join summary missing:\n%s", out)
	}
	if !strings.Contains(out, "traceview: ok") {
		t.Errorf("ok line missing:\n%s", out)
	}
}

// TestRunJoinFail: client latency far exceeds what the server accounts for
// (e.g. the span log belongs to a different run), so -assert-join trips.
func TestRunJoinFail(t *testing.T) {
	var spans []string
	var recs []string
	for i := 0; i < 5; i++ {
		trace := fmt.Sprintf("%032d", i+1)
		spans = append(spans, serverTrace(trace, 0, 2000, "simulation")...) // 2ms server
		recs = append(recs, loadLine(i, trace, 50, 200, "simulation"))      // 50ms client
	}
	spanPath := writeFile(t, "spans.ndjson", spans)
	loadPath := writeFile(t, "load.ndjson", recs)
	code, out := runMain(t, "-load", loadPath, "-assert-join", "0.05", "-join-slack", "1ms", spanPath)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL assert-join") {
		t.Errorf("assert-join failure missing:\n%s", out)
	}
}

// TestRunAssertCompleteUnjoined: a 2xx record whose trace has no server
// spans fails -assert-complete.
func TestRunAssertCompleteUnjoined(t *testing.T) {
	spans := serverTrace(strings.Repeat("1", 32), 0, 1000, "analytical")
	recs := []string{
		loadLine(0, strings.Repeat("1", 32), 1.1, 200, "analytical"),
		loadLine(1, strings.Repeat("2", 32), 1.1, 200, "analytical"), // no spans
	}
	spanPath := writeFile(t, "spans.ndjson", spans)
	loadPath := writeFile(t, "load.ndjson", recs)
	code, out := runMain(t, "-load", loadPath, "-assert-complete", spanPath)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "did not join") {
		t.Errorf("unjoined failure missing:\n%s", out)
	}
}

// TestRunSLOGate: the p99 gate fails on slow observations, passes under a
// generous target, and -slo-tier filters the population.
func TestRunSLOGate(t *testing.T) {
	var spans []string
	var recs []string
	for i := 0; i < 20; i++ {
		trace := fmt.Sprintf("%032d", i+1)
		tier, totalMs := "analytical", 1.0
		if i == 0 { // one slow simulation-tier outlier
			tier, totalMs = "simulation", 400.0
		}
		spans = append(spans, serverTrace(trace, 0, totalMs*1000, tier)...)
		recs = append(recs, loadLine(i, trace, totalMs, 200, tier))
	}
	spanPath := writeFile(t, "spans.ndjson", spans)
	loadPath := writeFile(t, "load.ndjson", recs)

	// Unfiltered: the 400ms outlier lands inside the top 1% and trips 50ms.
	code, out := runMain(t, "-load", loadPath, "-slo-p99", "50ms", spanPath)
	if code != 1 || !strings.Contains(out, "FAIL slo-p99") {
		t.Fatalf("unfiltered gate: exit %d\n%s", code, out)
	}
	// Filtered to the analytical tier it passes.
	code, out = runMain(t, "-load", loadPath, "-slo-p99", "50ms", "-slo-tier", "analytical", spanPath)
	if code != 0 {
		t.Fatalf("filtered gate: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "burn rate") {
		t.Errorf("burn-rate line missing:\n%s", out)
	}
}

// TestRunServerOnly: no -load file — RED comes from server.request spans
// and the SLO gate runs over span durations.
func TestRunServerOnly(t *testing.T) {
	var spans []string
	for i := 0; i < 10; i++ {
		trace := fmt.Sprintf("%032d", i+1)
		spans = append(spans, serverTrace(trace, float64(i)*2000, float64(i)*2000+1500, "analytical")...)
	}
	// One 400: a bare root (parse failed), tier-less, counted once as an error.
	spans = append(spans, line("server.request", strings.Repeat("e", 32), "ee00000000000000", "",
		0, 500, map[string]any{"status": 400}))
	spanPath := writeFile(t, "spans.ndjson", spans)
	code, out := runMain(t, "-assert-complete", "-slo-p99", "10ms", "-waterfall", "1", spanPath)
	if code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "complete traces: 11/11") {
		t.Errorf("completeness summary missing:\n%s", out)
	}
	if !strings.Contains(out, "server spans") || !strings.Contains(out, "analytical") {
		t.Errorf("RED summary missing:\n%s", out)
	}
	// The 400 counts once (count 1, err 1), not twice.
	if !regexp.MustCompile(`\(none\)\s+1\s+1\s`).MatchString(out) {
		t.Errorf("tier-less 400 row wrong (want count 1 err 1):\n%s", out)
	}
	// Waterfall renders the tree with bars.
	if !strings.Contains(out, "server.request") || !strings.Contains(out, "runner.execute") || !strings.Contains(out, "#") {
		t.Errorf("waterfall missing:\n%s", out)
	}
}

// TestRunRequireTiersFail: requiring a tier that never appears trips the gate.
func TestRunRequireTiersFail(t *testing.T) {
	spanPath := writeFile(t, "spans.ndjson", serverTrace(strings.Repeat("a", 32), 0, 1000, "analytical"))
	code, out := runMain(t, "-require-tiers", "analytical,simulation", spanPath)
	if code != 1 || !strings.Contains(out, "no passing simulation-tier trace") {
		t.Fatalf("exit %d\n%s", code, out)
	}
}

// TestRunUsageErrors: missing inputs exit 2, not 1.
func TestRunUsageErrors(t *testing.T) {
	if code, _ := runMain(t); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code, _ := runMain(t, filepath.Join(t.TempDir(), "nosuch.ndjson")); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}

// TestCurveRootRecognized: a server.curve root with overlapping
// server.point children is a complete trace, same as server.request.
func TestCurveRootRecognized(t *testing.T) {
	spans := mustParse(t, []string{
		line("server.curve", "t9", "r", "", 0, 1000, map[string]any{"status": 200}),
		line("server.parse", "t9", "p", "r", 0, 10, nil),
		line("server.model", "t9", "m", "r", 10, 20, nil),
		line("server.admit", "t9", "a", "r", 20, 25, nil),
		line("server.point", "t9", "p1", "r", 25, 30, nil),
		line("server.point", "t9", "p2", "r", 25, 900, nil),
		line("server.point", "t9", "p3", "r", 25, 950, nil),
	})
	tr := buildTraces(spans)["t9"]
	if tr.server == nil || tr.server.Name != "server.curve" {
		t.Fatalf("server.curve root not recognized: %+v", tr.server)
	}
	if probs := tr.problems(); len(probs) != 0 {
		t.Errorf("curve trace reported problems: %v", probs)
	}
}
