// Command loadgen drives a simserved instance with open-loop load and
// validates what it observes against the paper's own queueing assumptions:
// the achieved arrival stream is characterized with the simulator's
// CV²/index-of-dispersion machinery, and per-tier latency is fitted
// against the M/M/1 response-time curve T = 1/(μ−λ). docs/LOADGEN.md is
// the user guide.
//
// Usage:
//
//	loadgen -url http://localhost:8080 -mode poisson -rps 100 -duration 30s -out run.ndjson
//	loadgen -self -warm -mode burst -rps 50 -burst 8 -duration 20s
//
// The generator is open-loop: requests fire at their scheduled offsets no
// matter how many are in flight, so a saturated server faces the full
// offered load (the regime where the 429 admission path matters) instead
// of silently throttling the experiment. Schedules are seeded: the same
// -seed reproduces the same arrival offsets byte-for-byte.
//
// -self boots an in-process simserved over -scale instead of targeting
// -url, so one command gives a self-contained experiment; -warm pre-fits
// the target pair so the analytical tier answers.
//
// The -assert-* flags turn the end-of-run report into a test: any
// violated bound prints and exits 1. CI's load-smoke job is four loadgen
// invocations and nothing else.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/load"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var common cli.Common
	var (
		url      = flag.String("url", "", "target base URL, e.g. http://localhost:8080 (mutually exclusive with -self)")
		self     = flag.Bool("self", false, "boot an in-process simserved at -scale and drive it")
		warm     = flag.Bool("warm", false, "with -self: pre-fit machine/program.class so the analytical tier answers")
		queue    = flag.Int("queue", server.DefaultMaxQueue, "with -self: simulation-tier admission bound")
		mode     = flag.String("mode", "poisson", "arrival process: const, poisson or burst")
		rps      = flag.Float64("rps", 10, "mean offered load in requests per second")
		burst    = flag.Float64("burst", 8, "burst factor for -mode burst: hi/lo rate ratio of the MMPP phases")
		phase    = flag.Duration("phase", 0, "mean MMPP phase length for -mode burst (0 = duration/8)")
		duration = flag.Duration("duration", 10*time.Second, "schedule horizon")
		conns    = flag.Int("conns", 16, "keep-alive connection pool size")
		cores    = flag.Int("cores", 2, "cores field of the predict body (0 = whole machine); with -curve, sweep 1..cores")
		curve    = flag.Bool("curve", false, "drive the streaming curve endpoint instead of predict: one NDJSON-streamed ω(n) sweep per request")
		tenant   = flag.String("tenant", "", "X-Simserved-Tenant header value")
		window   = flag.Duration("window", time.Second, "binning window for arrival characterization and the M/M/1 fit")
		out      = flag.String("out", "", "write the per-request NDJSON log here ('-' = stdout)")

		expectTier   = flag.String("expect-tier", "", "assert >= 90% of 2xx responses were served by this tier")
		assertP99    = flag.Duration("assert-p99", 0, "assert the expected tier's p99 latency is below this (0 = off)")
		assertCV2    = flag.Float64("assert-cv2-tol", 0, "assert |achieved − configured| CV² is within this tolerance (0 = off)")
		assertFit    = flag.Float64("assert-fit-err", 0, "assert the expected tier's mean M/M/1 fit error is below this fraction (0 = off)")
		assertRPSTol = flag.Float64("assert-rps-tol", 0, "assert achieved RPS is within this fraction of offered (0 = off)")
	)
	common.RegisterMachine("IntelUMA8")
	common.RegisterWorkload("CG", "W")
	common.RegisterScale()
	common.RegisterJobs()
	common.RegisterSeed()
	common.RegisterTrace()
	flag.Parse()

	if (*url == "") == !*self {
		fatal(errors.New("exactly one of -url or -self is required"))
	}

	m, err := load.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	spec, err := common.Spec()
	if err != nil {
		fatal(err)
	}
	if *cores < 0 || *cores > spec.TotalCores() {
		fatal(fmt.Errorf("cores %d out of range for %s (0..%d)", *cores, spec.Name, spec.TotalCores()))
	}
	fields := map[string]any{
		"machine": spec.Name,
		"program": common.Program,
		"class":   common.Class,
	}
	if *curve {
		// The curve body's cores is a sweep; 1..N for -cores N, whole
		// machine when omitted.
		if *cores > 0 {
			sweep := make([]int, *cores)
			for i := range sweep {
				sweep[i] = i + 1
			}
			fields["cores"] = sweep
		}
	} else {
		fields["cores"] = *cores
	}
	body, err := json.Marshal(fields)
	if err != nil {
		fatal(err)
	}

	ctx, stopSignals := cli.SignalContext(context.Background())
	defer stopSignals()

	tracer, closeTracer, err := common.OpenTracer()
	if err != nil {
		fatal(err)
	}
	defer closeTracer()

	base := *url
	if *self {
		shutdown, addr, err := selfServe(ctx, &common, tracer, *queue, *warm)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		base = "http://" + addr
		fmt.Fprintf(os.Stderr, "loadgen: self-serving on %s (scale %g)\n", base, common.Scale)
	}

	sched, err := load.Schedule(load.ScheduleConfig{
		Mode: m, RPS: *rps, Duration: *duration, Seed: common.Seed,
		Burst: *burst, Phase: *phase,
	})
	if err != nil {
		fatal(err)
	}
	schedCV2, _ := load.ScheduleCV2(sched)
	fmt.Fprintf(os.Stderr, "loadgen: %d requests over %s (%s at %g rps, CV² %.3f, seed %d) -> %s\n",
		len(sched), *duration, m, *rps, schedCV2, common.Seed, base)

	records, runErr := load.Run(ctx, load.Config{
		BaseURL:  base,
		Body:     body,
		Schedule: sched,
		Tenant:   *tenant,
		Conns:    *conns,
		Seed:     common.Seed,
		Tracer:   tracer,
		Curve:    *curve,
	})
	if runErr != nil && len(records) == 0 {
		fatal(runErr)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "loadgen: run interrupted (%v); analyzing the %d dispatched requests\n", runErr, len(records))
	}

	if err := writeLog(*out, records); err != nil {
		fatal(err)
	}

	// Curve mode logs per-point records, not per-request latencies; the
	// M/M/1 report machinery does not apply. Summarize the sweeps instead.
	if *curve {
		curveSummary(os.Stderr, records)
		if runErr != nil {
			fatal(runErr)
		}
		return
	}

	rep, err := load.BuildReport(records, load.Options{
		Window: *window, OfferedRPS: *rps, ScheduleCV2: schedCV2,
	})
	if err != nil {
		fatal(err)
	}
	rep.WriteText(os.Stderr)

	if fails := check(rep, checks{
		expectTier: *expectTier,
		p99:        *assertP99,
		cv2Tol:     *assertCV2,
		fitErr:     *assertFit,
		rpsTol:     *assertRPSTol,
	}); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "loadgen: ASSERT FAILED: %s\n", f)
		}
		os.Exit(1)
	}
	if runErr != nil {
		fatal(runErr)
	}
}

// selfServe boots an in-process simserved on a loopback port and returns
// its shutdown function and address.
func selfServe(ctx context.Context, common *cli.Common, tracer *telemetry.Tracer, queue int, warm bool) (func(), string, error) {
	r := experiments.NewRunner(common.Tuning())
	r.Jobs = common.Jobs
	r.Tracer = tracer
	metrics := telemetry.NewRegistry()
	r.Metrics = metrics
	pred := model.New(r)
	pred.Tracer = tracer
	pred.Metrics = metrics

	if warm {
		spec, err := machine.ByName(common.Machine)
		if err != nil {
			return nil, "", err
		}
		info, err := pred.Warm(ctx, spec, common.Program, workload.Class(common.Class))
		if err != nil {
			return nil, "", fmt.Errorf("warm %s/%s.%s: %w", common.Machine, common.Program, common.Class, err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: warmed %s/%s.%s: r2=%.3f residual=%.3f\n",
			common.Machine, common.Program, common.Class, info.R2, info.Residual)
	}

	srv := server.New(server.Config{Predictor: pred, MaxQueue: queue, Metrics: metrics, Tracer: tracer})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	shutdown := func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}
	return shutdown, ln.Addr().String(), nil
}

// curveSummary prints the curve-mode end-of-run digest: how many sweeps
// ran, how their points split across tiers, and the mean arrival offset
// per tier — the number that shows analytical points landing ahead of
// simulated ones on a shared stream.
func curveSummary(w *os.File, records []load.Record) {
	var curves, failed int
	pointCount := map[string]int{}
	pointMs := map[string]float64{}
	var errs int
	for _, rec := range records {
		switch rec.Kind {
		case "curve":
			curves++
			if rec.Error != "" {
				failed++
			}
		case "point":
			if rec.Error != "" {
				errs++
				continue
			}
			pointCount[rec.Tier]++
			pointMs[rec.Tier] += rec.PointMs
		}
	}
	fmt.Fprintf(w, "loadgen: %d curve requests (%d failed)\n", curves, failed)
	for _, tier := range []string{"analytical", "simulation"} {
		if n := pointCount[tier]; n > 0 {
			fmt.Fprintf(w, "loadgen:   %-10s %5d points, mean arrival %+8.3fms\n", tier, n, pointMs[tier]/float64(n))
		}
	}
	if errs > 0 {
		fmt.Fprintf(w, "loadgen:   %-10s %5d points\n", "errored", errs)
	}
}

// writeLog writes the NDJSON request log to path ("" = skip, "-" = stdout).
func writeLog(path string, records []load.Record) error {
	switch path {
	case "":
		return nil
	case "-":
		return load.WriteNDJSON(os.Stdout, records)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := load.WriteNDJSON(f, records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// checks holds the -assert-* bounds; zero values disable each check.
type checks struct {
	expectTier string
	p99        time.Duration
	cv2Tol     float64
	fitErr     float64
	rpsTol     float64
}

// check evaluates the report against the configured bounds and returns
// one message per violation.
func check(rep load.Report, c checks) []string {
	var fails []string

	if c.expectTier != "" {
		got := rep.Tiers[c.expectTier].Count
		if rep.OK == 0 || float64(got) < 0.9*float64(rep.OK) {
			fails = append(fails, fmt.Sprintf("expected tier %q on >= 90%% of 2xx responses, got %d of %d", c.expectTier, got, rep.OK))
		}
	}
	if c.p99 > 0 {
		tier, p99 := worstP99(rep, c.expectTier)
		if p99 <= 0 {
			fails = append(fails, "p99 bound configured but no successful responses to measure")
		} else if want := float64(c.p99) / float64(time.Millisecond); p99 > want {
			fails = append(fails, fmt.Sprintf("tier %q p99 = %.3fms, bound %.3fms", tier, p99, want))
		}
	}
	if c.cv2Tol > 0 {
		if diff := rep.ArrivalCV2 - rep.ScheduleCV2; diff < -c.cv2Tol || diff > c.cv2Tol {
			fails = append(fails, fmt.Sprintf("achieved CV² %.3f vs configured %.3f exceeds tolerance %.3f", rep.ArrivalCV2, rep.ScheduleCV2, c.cv2Tol))
		}
	}
	if c.fitErr > 0 {
		tier := c.expectTier
		if tier == "" {
			tier = "analytical"
		}
		fit := rep.Tiers[tier].MM1
		if fit == nil {
			fails = append(fails, fmt.Sprintf("M/M/1 fit bound configured but tier %q produced no fit (too few windows?)", tier))
		} else if fit.MeanRelErr > c.fitErr {
			fails = append(fails, fmt.Sprintf("tier %q M/M/1 mean fit error %.1f%% exceeds %.1f%%", tier, 100*fit.MeanRelErr, 100*c.fitErr))
		}
	}
	if c.rpsTol > 0 && rep.OfferedRPS > 0 {
		frac := (rep.AchievedRPS - rep.OfferedRPS) / rep.OfferedRPS
		if frac < -c.rpsTol || frac > c.rpsTol {
			fails = append(fails, fmt.Sprintf("achieved %.1f rps vs offered %.1f exceeds tolerance %.0f%%", rep.AchievedRPS, rep.OfferedRPS, 100*c.rpsTol))
		}
	}
	return fails
}

// worstP99 returns the p99 of the named tier, or the worst across tiers
// when tier is empty.
func worstP99(rep load.Report, tier string) (string, float64) {
	if tier != "" {
		return tier, rep.Tiers[tier].P99Ms
	}
	var worst float64
	var name string
	for t, ts := range rep.Tiers {
		if ts.P99Ms > worst {
			worst, name = ts.P99Ms, t
		}
	}
	return name, worst
}

func fatal(err error) {
	cli.Fatal("loadgen", err)
}
