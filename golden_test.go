package repro

// Golden-file regression tests: the rendered Fig. 3 and Table II artifacts
// at -scale 0.1 are committed under testdata/golden and must reproduce
// byte-for-byte. The simulator is fully deterministic (seeded workloads,
// discrete-event execution, total event order), so any diff here is a
// behavior change — intended ones are re-baselined with `go test -run
// TestGolden -update .` and reviewed like any other diff.

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden fixtures")

// checkGolden compares got against the named fixture (or rewrites it under
// -update).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run `go test -run TestGolden -update .`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from fixture.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// goldenTune is the fixture scale. 0.1 keeps the two sweeps affordable
// while leaving every counter large enough that real regressions move it.
var goldenTune = workload.Tuning{RefScale: 0.1}

func TestGoldenFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("golden artifacts skipped in -short mode")
	}
	r := experiments.NewRunner(goldenTune)
	d, err := r.Fig3(context.Background(), machine.IntelUMA8(), []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	experiments.RenderFig3(&buf, d)
	checkGolden(t, "fig3_IntelUMA8.txt", buf.Bytes())

	// The gnuplot dat writer is a second, independent serialization of the
	// same data; pin it too.
	dir := t.TempDir()
	if err := experiments.WriteFig3Dat(dir, d); err != nil {
		t.Fatal(err)
	}
	dat, err := os.ReadFile(filepath.Join(dir, "fig3_IntelUMA8.dat"))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig3_IntelUMA8.dat", dat)
}

func TestGoldenTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("golden artifacts skipped in -short mode")
	}
	r := experiments.NewRunner(goldenTune)
	specs := []machine.Spec{machine.IntelUMA8()}
	d, err := r.TableII(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	experiments.RenderTableII(&buf, d, specs)
	checkGolden(t, "tableII_IntelUMA8.txt", buf.Bytes())
}
