# Tier-1 gate: everything a PR must keep green. `make check` is what CI
# and reviewers run; docs/ARCHITECTURE.md documents it as the gate.

GO ?= go

# External linter pins: CI runs these via `go run pkg@version` so a
# failure reproduces locally with the exact same tool version.
STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: check build vet lint lint-allows lint-extra test short race bench microbench artifacts-fast serve serve-smoke load-smoke trace-smoke docs-check clean

## check: the tier-1 gate — vet, lint (simcheck), the allow-directive
## audit, build, race-enabled tests.
check: vet lint lint-allows build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: the simcheck suite (internal/analysis) over the whole tree.
## detlint/hotpath/ctxfirst/tracelint/errlint/apilint enforce the
## determinism, alloc-discipline, context-first, telemetry-naming,
## error-hygiene and wire-type invariants; leaklint/locklint/chanlint
## (the conccheck pack) enforce goroutine-lifecycle, mutex and channel
## discipline in the concurrent layers. docs/ARCHITECTURE.md §8
## documents each one and the runtime test it backstops.
SIMCHECK := bin/simcheck
SIMCHECK_SRC := $(shell find internal/analysis cmd/simcheck -name '*.go' -not -name '*_test.go' 2>/dev/null) go.mod

$(SIMCHECK): $(SIMCHECK_SRC)
	$(GO) build -o $(SIMCHECK) ./cmd/simcheck

lint: $(SIMCHECK)
	$(GO) vet -vettool=$(CURDIR)/$(SIMCHECK) ./...

## lint-allows: audit every //simcheck:allow directive in shipped code —
## one table row per exemption, nonzero exit if any justification is
## empty. The table in docs/ARCHITECTURE.md §8 snapshots this output.
lint-allows:
	scripts/lint_allows.sh

## lint-extra: third-party linters, version-pinned above. Needs network
## access to fetch the tools (CI runs this; offline dev boxes can skip).
lint-extra:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

## test: plain test run (no race detector), faster on small machines.
test:
	$(GO) test ./...

## short: the -short subset (includes the end-to-end smoke claim), what CI
## runs in addition to the race suite.
short:
	$(GO) test -short ./...

## race: full test suite under the race detector (the Runner is concurrent).
## The golden sweeps in the root package exceed go test's default 10m
## timeout under -race on a single-core box, so raise it explicitly.
race:
	$(GO) test -race -timeout 30m ./...

## bench: the tracked benchmark suite. Regenerates BENCH.json and fails if
## any benchmark regressed >20% ns/op against the committed baseline (fresh
## numbers land in BENCH.json.new for inspection). Run on an otherwise idle
## machine; re-baseline deliberately with `go run ./cmd/bench -out BENCH.json`.
## Provenance stamped into BENCH.json (the gate ignores these fields).
GIT_REV   ?= $(shell git rev-parse --short HEAD 2>/dev/null)
TIMESTAMP ?= $(shell date -u +%Y-%m-%dT%H:%M:%SZ)

bench:
	$(GO) run ./cmd/bench -baseline BENCH.json -out BENCH.json \
		-git-rev "$(GIT_REV)" -timestamp "$(TIMESTAMP)"

## microbench: every go-test benchmark (per-artifact experiments, eventq,
## memctrl, runner scaling) with allocation stats.
microbench:
	$(GO) test -bench=. -benchmem ./...

## artifacts-fast: CI-grade regeneration of every paper artifact — quarter
## -scale workloads, parallel runs. See EXPERIMENTS.md "fast path".
artifacts-fast:
	$(GO) run ./cmd/experiments -run all -scale 0.25 -step 4 -jobs 0 -v

## serve: the contention service with one pair pre-fitted, so the first
## query already hits the analytical fast path. docs/SERVER.md is the
## API reference and runbook.
serve:
	$(GO) run ./cmd/simserved -addr localhost:8080 -scale 0.1 -warm IntelUMA8/CG.W

## serve-smoke: build simserved, start it, and drive the SERVER.md recipe
## end to end — health, analytical hit, simulation fallback, analytical
## latency bound, graceful shutdown. CI runs this in the serve job.
serve-smoke:
	scripts/serve_smoke.sh

## load-smoke: boot simserved and validate it under open-loop load with
## cmd/loadgen — sustained RPS, achieved CV² vs configured, an analytical
## p99 bound and the M/M/1 latency-vs-load fit. CI runs this in the load
## job; docs/LOADGEN.md explains how to read the report.
load-smoke:
	scripts/load_smoke.sh

## trace-smoke: two self-served load points with tracing on, then
## cmd/traceview rebuilds the client+server waterfalls and gates trace
## completeness, client/server join coverage and the analytical p99 SLO.
## CI runs this in the trace job; docs/TRACING.md explains the output.
trace-smoke:
	scripts/trace_smoke.sh

## docs-check: grep fenced sh blocks in README/EXPERIMENTS/docs for
## commands, flags and make targets that no longer exist, so the docs
## cannot silently go stale.
docs-check:
	scripts/docs_check.sh

clean:
	$(GO) clean ./...
