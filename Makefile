# Tier-1 gate: everything a PR must keep green. `make check` is what CI
# and reviewers run; docs/ARCHITECTURE.md documents it as the gate.

GO ?= go

.PHONY: check build vet test race bench artifacts-fast clean

## check: the tier-1 gate — vet, build, race-enabled tests.
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## test: plain test run (no race detector), faster on small machines.
test:
	$(GO) test ./...

## race: full test suite under the race detector (the Runner is concurrent).
race:
	$(GO) test -race ./...

## bench: the per-artifact benchmarks plus the runner scaling benchmark.
bench:
	$(GO) test -bench=. -benchmem ./...

## artifacts-fast: CI-grade regeneration of every paper artifact — quarter
## -scale workloads, parallel runs. See EXPERIMENTS.md "fast path".
artifacts-fast:
	$(GO) run ./cmd/experiments -run all -scale 0.25 -step 4 -jobs 0 -v

clean:
	$(GO) clean ./...
