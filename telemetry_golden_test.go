package repro

// Golden fixtures for the telemetry artifacts: one observed CG.W run on
// the UMA machine pins the NDJSON trace, the sampled timeline table and
// the Prometheus metrics snapshot byte-for-byte, through the same writer
// the memsim -telemetry flag uses. The simulator's determinism contract
// extends to telemetry (sampling reads engine state without perturbing
// it), so any diff here is a behavior change.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func TestGoldenTelemetryArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("golden artifacts skipped in -short mode")
	}
	r := experiments.NewRunner(goldenTune)
	reg := telemetry.NewRegistry()
	var trace bytes.Buffer
	cfg := sim.Config{
		Spec:  machine.IntelUMA8(),
		Cores: 8,
		Observe: &sim.ObserveConfig{
			Interval: 5000,
			Tracer:   telemetry.NewTracer(&trace),
			Registry: reg,
		},
	}
	res, err := r.RunConfig(context.Background(), cfg, "CG", workload.W)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "telemetry_trace.ndjson", trace.Bytes())

	dir := t.TempDir()
	if _, err := experiments.WriteTelemetryArtifacts(dir, "run", res.Telemetry, reg); err != nil {
		t.Fatal(err)
	}
	for fixture, file := range map[string]string{
		"telemetry_timeline.dat": "run.timeline.dat",
		"telemetry_metrics.prom": "run.metrics.prom",
	} {
		got, err := os.ReadFile(filepath.Join(dir, file))
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, fixture, got)
	}
}
