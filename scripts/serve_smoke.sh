#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test for cmd/simserved.
#
# Drives the docs/SERVER.md recipe against a real server process: wait
# for health, assert the warmed pair answers on the analytical tier and
# a cold pair on the simulation tier (X-Simserved-Tier header), bound
# the analytical p99 latency, then shut down gracefully with SIGINT.
#
# Environment:
#   SIMSERVED  path to a prebuilt binary (default: build ./cmd/simserved)
#   ADDR       listen address (default localhost:18088)
#   P99_MAX_S  analytical p99 bound in seconds (default 0.050)
# Extra arguments are passed through to simserved (e.g. -trace-out).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${ADDR:-localhost:18088}
P99_MAX_S=${P99_MAX_S:-0.050}
BIN=${SIMSERVED:-}
if [ -z "$BIN" ]; then
  BIN=$(mktemp -d)/simserved
  go build -o "$BIN" ./cmd/simserved
fi

"$BIN" -addr "$ADDR" -scale 0.1 -warm IntelUMA8/CG.W "$@" &
SERVER_PID=$!
STATUS=1
cleanup() {
  kill -9 "$SERVER_PID" 2>/dev/null || true
  exit "$STATUS"
}
trap cleanup EXIT

echo "== waiting for /healthz on $ADDR (warm-up simulates 3 anchors)"
for _ in $(seq 1 120); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server exited during warm-up" >&2
    exit 1
  fi
  sleep 1
done
HEALTH=$(curl -sf "http://$ADDR/healthz")
echo "healthz: $HEALTH"
echo "$HEALTH" | grep -q '"status":"ok"'
echo "$HEALTH" | grep -q '"fits":1'

predict() {
  curl -si -X POST "http://$ADDR/v1/predict" -d "$1"
}

echo "== warmed pair (CG.W) must answer on the analytical tier"
OUT=$(predict '{"machine":"IntelUMA8","program":"CG","class":"W","cores":6}')
echo "$OUT" | grep -i '^X-Simserved-Tier:' | grep -q analytical || {
  echo "FAIL: expected analytical tier, got:" >&2; echo "$OUT" >&2; exit 1; }
echo "$OUT" | tail -1 | grep -q '"fit":{"anchors":\[1,4,5\]'

echo "== cold pair (EP.W) must fall back to the simulation tier"
OUT=$(predict '{"machine":"IntelUMA8","program":"EP","class":"W","cores":4}')
echo "$OUT" | grep -i '^X-Simserved-Tier:' | grep -q simulation || {
  echo "FAIL: expected simulation tier, got:" >&2; echo "$OUT" >&2; exit 1; }

echo "== invalid request must 400"
predict '{"machine":"IntelUMA8","program":"CG","class":"W","cores":99}' \
  | head -1 | grep -q ' 400 '

echo "== analytical p99 over 200 requests must stay under ${P99_MAX_S}s"
TIMES=$(mktemp)
for _ in $(seq 1 200); do
  curl -s -o /dev/null -w '%{time_total}\n' -X POST "http://$ADDR/v1/predict" \
    -d '{"machine":"IntelUMA8","program":"CG","class":"W","cores":3}'
done > "$TIMES"
P99=$(sort -g "$TIMES" | awk 'BEGIN{n=0} {v[n++]=$1} END{print v[int(n*0.99)-1]}')
rm -f "$TIMES"
echo "analytical p99: ${P99}s"
awk -v p="$P99" -v max="$P99_MAX_S" 'BEGIN{exit !(p < max)}' || {
  echo "FAIL: p99 ${P99}s exceeds ${P99_MAX_S}s" >&2; exit 1; }

echo "== metrics must show both tiers served"
METRICS=$(curl -sf "http://$ADDR/metrics")
echo "$METRICS" | grep -q '^simserved_analytical_total 20[1-9]'
echo "$METRICS" | grep -q '^simserved_simulation_total 1'

echo "== streamed curve on the warmed pair: 8 analytical points, then the summary"
CURVE=$(curl -sN -X POST "http://$ADDR/v1/curve" -H 'Accept: application/x-ndjson' \
  -d '{"machine":"IntelUMA8","program":"CG","class":"W"}')
LINES=$(echo "$CURVE" | grep -c .)
[ "$LINES" -eq 9 ] || { echo "FAIL: expected 9 NDJSON frames, got $LINES:" >&2; echo "$CURVE" >&2; exit 1; }
POINTS=$(echo "$CURVE" | head -8)
echo "$POINTS" | grep -vq '"summary"' || { echo "FAIL: summary before the points:" >&2; echo "$CURVE" >&2; exit 1; }
[ "$(echo "$POINTS" | grep -c '"tier":"analytical"')" -eq 8 ] || {
  echo "FAIL: expected 8 analytical points, got:" >&2; echo "$CURVE" >&2; exit 1; }
LAST=$(echo "$CURVE" | tail -1)
echo "$LAST" | grep -q '"summary":{"points":8,"analytical":8' || {
  echo "FAIL: bad terminal summary: $LAST" >&2; exit 1; }

echo "== batched curve on the cold pair (EP.W) simulates its points"
CURVE=$(curl -s -X POST "http://$ADDR/v1/curve" \
  -d '{"machine":"IntelUMA8","program":"EP","class":"W","cores":[1,2]}')
echo "$CURVE" | grep -q '"summary":{"points":2,"analytical":0,"simulation":2' || {
  echo "FAIL: expected 2 simulated points: $CURVE" >&2; exit 1; }

echo "== curve metrics must account for both requests"
METRICS=$(curl -sf "http://$ADDR/metrics")
echo "$METRICS" | grep -q '^simserved_curve_requests_total 2'
echo "$METRICS" | grep -q '^simserved_curve_analytical_points_total 8'
echo "$METRICS" | grep -q '^simserved_curve_simulation_points_total 2'

echo "== SIGINT must drain and exit 0"
kill -INT "$SERVER_PID"
WAIT_STATUS=0
wait "$SERVER_PID" || WAIT_STATUS=$?
if [ "$WAIT_STATUS" -ne 0 ]; then
  echo "FAIL: server exited $WAIT_STATUS after SIGINT" >&2
  exit 1
fi

echo "PASS: serve smoke"
STATUS=0
