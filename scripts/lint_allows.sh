#!/usr/bin/env bash
# lint_allows.sh — audit every //simcheck:allow directive in shipped code.
#
# Prints one table row per directive (file:line, analyzer list,
# justification) so reviewers can scan the complete set of deliberate
# analyzer exemptions in one place, and exits nonzero if any directive
# has an empty justification. Analyzer fixture trees
# (internal/analysis/*/testdata) and _test.go files are excluded: those
# exercise the directive machinery rather than exempting real code.
#
# `make lint-allows` runs this; `make check` includes it. The table in
# docs/ARCHITECTURE.md §8 is a snapshot of this output.
set -euo pipefail
cd "$(dirname "$0")/.."

rows=$(grep -rn --include='*.go' -E '^[[:space:]]*//simcheck:allow\(' internal cmd 2>/dev/null \
	| grep -v '/testdata/' | grep -v '_test\.go:' || true)

if [ -z "$rows" ]; then
	echo "lint-allows: no //simcheck:allow directives in shipped code"
	exit 0
fi

echo "$rows" | LC_ALL=C sort | awk '
BEGIN {
	FS = ":"
	printf "%-36s %-20s %s\n", "SITE", "ANALYZER(S)", "JUSTIFICATION"
	bad = 0
	n = 0
}
{
	site = $1 ":" $2
	text = $0
	sub(/^[^:]+:[0-9]+:/, "", text)
	sub(/^[[:space:]]*\/\/simcheck:allow\(/, "", text)
	paren = index(text, ")")
	analyzers = substr(text, 1, paren - 1)
	gsub(/[[:space:]]/, "", analyzers)
	just = substr(text, paren + 1)
	sub(/^[[:space:]]+/, "", just)
	sub(/[[:space:]]+$/, "", just)
	n++
	if (just == "") {
		bad++
		just = "<<< MISSING JUSTIFICATION >>>"
	}
	printf "%-36s %-20s %s\n", site, analyzers, just
}
END {
	printf "\n%d directive(s)", n
	if (bad > 0) {
		printf ", %d without a justification\n", bad
		exit 1
	}
	printf ", all justified\n"
}'
