#!/usr/bin/env bash
# docs_check.sh — keep the docs' shell examples honest.
#
# Scans fenced ```sh blocks in the markdown docs and verifies, by grep:
#   1. every `./cmd/NAME` or `go run ./cmd/NAME` names a directory that
#      exists;
#   2. every -flag on such a command line is registered somewhere in that
#      command's sources or the shared flag set (internal/cli/cli.go);
#   3. every `make TARGET` names a target defined in the Makefile.
#
# This is deliberately a textual check: it cannot prove an example is
# correct, but it catches the common staleness — a renamed flag, a
# removed command, a dropped make target — the moment it happens.
set -euo pipefail
cd "$(dirname "$0")/.."

DOCS=(README.md EXPERIMENTS.md DESIGN.md docs/*.md)
FAIL=0

# extract_sh FILE: print the contents of ```sh fenced blocks, with
# backslash-continued lines joined so flags stay on their command line.
extract_sh() {
  awk '
    /^```sh[[:space:]]*$/ { in_block = 1; next }
    /^```/ { in_block = 0 }
    in_block { print }
  ' "$1" | sed -e ':a' -e '/\\$/N; s/\\\n/ /; ta'
}

flag_registered() { # flag_registered FLAG CMD
  local flag=$1 cmd=$2
  grep -l "\"$flag\"" cmd/"$cmd"/*.go internal/cli/cli.go >/dev/null 2>&1
}

for doc in "${DOCS[@]}"; do
  [ -f "$doc" ] || continue
  while IFS= read -r line; do
    # Rule 1+2: command lines referring to ./cmd/NAME.
    for cmd in $(grep -oE '\./cmd/[a-z0-9_-]+' <<<"$line" | sed 's|\./cmd/||' | sort -u); do
      if [ ! -d "cmd/$cmd" ]; then
        echo "$doc: stale command ./cmd/$cmd in: $line" >&2
        FAIL=1
        continue
      fi
      for flag in $(grep -oE '(^| )-[a-z][a-z0-9-]*' <<<"$line" | tr -d ' ' | sed 's/^-//' | sort -u); do
        if ! flag_registered "$flag" "$cmd"; then
          echo "$doc: flag -$flag not registered by cmd/$cmd (or internal/cli): $line" >&2
          FAIL=1
        fi
      done
    done
    # Rule 3: make targets.
    for target in $(grep -oE '(^|[;&(] *)make +[a-z][a-z0-9_-]*' <<<"$line" | awk '{print $NF}' | sort -u); do
      if ! grep -qE "^$target:" Makefile; then
        echo "$doc: make target '$target' not in Makefile: $line" >&2
        FAIL=1
      fi
    done
  done < <(extract_sh "$doc")
done

if [ "$FAIL" -ne 0 ]; then
  echo "docs-check: FAIL — examples above reference things that no longer exist" >&2
  exit 1
fi
echo "docs-check: OK — every ./cmd reference, flag and make target in the docs' sh blocks exists"
