#!/usr/bin/env bash
# load_smoke.sh — end-to-end validation of simserved under open-loop load.
#
# Boots simserved with one warmed pair, then drives it with cmd/loadgen at
# one operating point per serving tier and lets loadgen's own -assert-*
# flags close the loop against the paper's queueing assumptions:
#
#   analytical point  poisson arrivals; asserts the offered rate was
#                     sustained, the achieved CV² matches the configured
#                     process (Poisson ⇒ CV² ≈ 1), the p99 stays under the
#                     fast-path bound, and the latency-vs-load fit against
#                     T = 1/(μ−λ) holds below saturation.
#   simulation point  constant low rate at a cold pair; asserts the tier
#                     header says "simulation" and latency stays sane
#                     (first request simulates, the rest are cache hits
#                     that still report the slow tier).
#
# Tracing runs end to end: the server writes its span log, each loadgen
# point writes a client span log (different seeds — trace IDs derive from
# (seed, seq), identical seeds would collide across points), and
# cmd/traceview joins client records to server trees by trace ID, gating
# completeness and server-side latency coverage (docs/TRACING.md).
#
# The per-request NDJSON logs and span logs land in $OUT_DIR for
# artifact upload.
#
# Environment:
#   SIMSERVED  path to a prebuilt simserved (default: build ./cmd/simserved)
#   LOADGEN    path to a prebuilt loadgen   (default: build ./cmd/loadgen)
#   TRACEVIEW  path to a prebuilt traceview (default: build ./cmd/traceview)
#   ADDR       listen address (default localhost:18089)
#   OUT_DIR    NDJSON log directory (default ./load-smoke-artifacts)
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${ADDR:-localhost:18089}
OUT_DIR=${OUT_DIR:-load-smoke-artifacts}
mkdir -p "$OUT_DIR"

SERVER_BIN=${SIMSERVED:-}
if [ -z "$SERVER_BIN" ]; then
  SERVER_BIN=$(mktemp -d)/simserved
  go build -o "$SERVER_BIN" ./cmd/simserved
fi
LOADGEN_BIN=${LOADGEN:-}
if [ -z "$LOADGEN_BIN" ]; then
  LOADGEN_BIN=$(mktemp -d)/loadgen
  go build -o "$LOADGEN_BIN" ./cmd/loadgen
fi
TRACEVIEW_BIN=${TRACEVIEW:-}
if [ -z "$TRACEVIEW_BIN" ]; then
  TRACEVIEW_BIN=$(mktemp -d)/traceview
  go build -o "$TRACEVIEW_BIN" ./cmd/traceview
fi

"$SERVER_BIN" -addr "$ADDR" -scale 0.1 -warm IntelUMA8/CG.W \
  -trace-out "$OUT_DIR/server-spans.ndjson" &
SERVER_PID=$!
STATUS=1
cleanup() {
  kill -9 "$SERVER_PID" 2>/dev/null || true
  exit "$STATUS"
}
trap cleanup EXIT

echo "== waiting for /healthz on $ADDR (warm-up simulates 3 anchors)"
for _ in $(seq 1 120); do
  if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server exited during warm-up" >&2
    exit 1
  fi
  sleep 1
done

echo "== analytical point: poisson 80 rps for 15s against the warmed pair"
"$LOADGEN_BIN" -url "http://$ADDR" \
  -machine IntelUMA8 -program CG -class W -cores 3 \
  -mode poisson -rps 80 -duration 15s -seed 7 -conns 16 \
  -tenant load-smoke \
  -expect-tier analytical \
  -assert-rps-tol 0.10 \
  -assert-cv2-tol 0.20 \
  -assert-p99 50ms \
  -assert-fit-err 0.25 \
  -out "$OUT_DIR/analytical.ndjson" \
  -trace-out "$OUT_DIR/analytical-client-spans.ndjson"

echo "== curve point: streamed ω(n) sweeps of the warmed pair at 4 rps"
"$LOADGEN_BIN" -url "http://$ADDR" \
  -machine IntelUMA8 -program CG -class W -cores 0 -curve \
  -mode const -rps 4 -duration 5s -seed 9 \
  -tenant load-smoke \
  -out "$OUT_DIR/curve.ndjson" \
  -trace-out "$OUT_DIR/curve-client-spans.ndjson"
grep -q '"kind":"curve"' "$OUT_DIR/curve.ndjson"
POINTS=$(grep -c '"tier":"analytical".*"kind":"point"' "$OUT_DIR/curve.ndjson")
CURVES=$(grep -c '"kind":"curve"' "$OUT_DIR/curve.ndjson")
echo "curve.ndjson: $CURVES sweeps, $POINTS analytical points"
test "$POINTS" -eq $((CURVES * 8))

echo "== simulation point: const 4 rps for 10s against a cold pair"
"$LOADGEN_BIN" -url "http://$ADDR" \
  -machine IntelUMA8 -program EP -class W -cores 4 \
  -mode const -rps 4 -duration 10s -seed 8 \
  -tenant load-smoke \
  -expect-tier simulation \
  -assert-rps-tol 0.15 \
  -assert-p99 5s \
  -out "$OUT_DIR/simulation.ndjson" \
  -trace-out "$OUT_DIR/simulation-client-spans.ndjson"

echo "== NDJSON logs are well-formed and complete"
for f in analytical simulation; do
  lines=$(wc -l < "$OUT_DIR/$f.ndjson")
  echo "$f.ndjson: $lines records"
  test "$lines" -ge 10
  head -1 "$OUT_DIR/$f.ndjson" | grep -q '"seq":0'
  head -1 "$OUT_DIR/$f.ndjson" | grep -q '"tier":'
done

echo "== server survived the load: healthz still ok, queue drained"
HEALTH=$(curl -sf "http://$ADDR/healthz")
echo "healthz: $HEALTH"
echo "$HEALTH" | grep -q '"status":"ok"'
echo "$HEALTH" | grep -q '"queue_depth":0'

kill -INT "$SERVER_PID"
wait "$SERVER_PID" || true

echo "== traceview: analytical point joins the server span log (5% + 2ms)"
"$TRACEVIEW_BIN" -load "$OUT_DIR/analytical.ndjson" \
  -assert-complete -assert-join 0.05 -join-slack 2ms \
  -slo-p99 50ms -slo-tier analytical -require-tiers analytical \
  -waterfall 0 \
  "$OUT_DIR/server-spans.ndjson" "$OUT_DIR/analytical-client-spans.ndjson"

echo "== traceview: simulation point joins too (cold simulation request)"
"$TRACEVIEW_BIN" -load "$OUT_DIR/simulation.ndjson" \
  -assert-complete -assert-join 0.05 -join-slack 2ms \
  -require-tiers simulation \
  -waterfall 1 \
  "$OUT_DIR/server-spans.ndjson" "$OUT_DIR/simulation-client-spans.ndjson"

echo "PASS: load smoke"
STATUS=0
