#!/usr/bin/env bash
# trace_smoke.sh — end-to-end validation of request-scoped tracing
# (docs/TRACING.md).
#
# Runs two self-served load points — loadgen -self shares ONE tracer
# between the client, server and runner layers, so each point's span file
# holds the whole conversation in a single timebase — then cmd/traceview
# rebuilds the waterfalls and gates:
#
#   analytical point  warmed pair, poisson arrivals; every trace tree is
#                     complete, every 2xx record joins its server tree
#                     with the server segments covering the client latency
#                     (5% + 2ms HTTP floor), and the analytical p99 meets
#                     a 50ms SLO with its burn rate reported.
#   simulation point  cold pair, so the first request runs a real
#                     simulation; same completeness/join gates prove the
#                     runner's queue_wait/execute spans account for a
#                     simulation-tier request too.
#
# The two points use different seeds: trace IDs are derived from
# (seed, seq), so identical seeds would collide across points.
#
# Environment:
#   LOADGEN    path to a prebuilt loadgen   (default: build ./cmd/loadgen)
#   TRACEVIEW  path to a prebuilt traceview (default: build ./cmd/traceview)
#   OUT_DIR    artifact directory (default ./trace-smoke-artifacts)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR=${OUT_DIR:-trace-smoke-artifacts}
mkdir -p "$OUT_DIR"

LOADGEN_BIN=${LOADGEN:-}
if [ -z "$LOADGEN_BIN" ]; then
  LOADGEN_BIN=$(mktemp -d)/loadgen
  go build -o "$LOADGEN_BIN" ./cmd/loadgen
fi
TRACEVIEW_BIN=${TRACEVIEW:-}
if [ -z "$TRACEVIEW_BIN" ]; then
  TRACEVIEW_BIN=$(mktemp -d)/traceview
  go build -o "$TRACEVIEW_BIN" ./cmd/traceview
fi

echo "== analytical point: warmed CG.W, poisson 200 rps for 5s (seed 11)"
"$LOADGEN_BIN" -self -warm -scale 0.1 -mode poisson -rps 200 -duration 5s \
  -seed 11 -expect-tier analytical \
  -out "$OUT_DIR/analytical.ndjson" \
  -trace-out "$OUT_DIR/analytical-spans.ndjson"

echo "== simulation point: cold EP.W, const 4 rps for 2s (seed 12)"
"$LOADGEN_BIN" -self -scale 0.1 -program EP -mode const -rps 4 -duration 2s \
  -seed 12 -expect-tier simulation \
  -out "$OUT_DIR/simulation.ndjson" \
  -trace-out "$OUT_DIR/simulation-spans.ndjson"

echo "== traceview: analytical point — join + SLO burn rate"
"$TRACEVIEW_BIN" -load "$OUT_DIR/analytical.ndjson" \
  -assert-complete -assert-join 0.05 -join-slack 2ms \
  -slo-p99 50ms -slo-tier analytical -require-tiers analytical \
  -waterfall 1 "$OUT_DIR/analytical-spans.ndjson"

echo "== traceview: simulation point — join on a cold simulation request"
"$TRACEVIEW_BIN" -load "$OUT_DIR/simulation.ndjson" \
  -assert-complete -assert-join 0.05 -join-slack 2ms \
  -require-tiers simulation \
  -waterfall 1 "$OUT_DIR/simulation-spans.ndjson"

echo "PASS: trace smoke"
