// Burstiness study: the paper's second key observation (section III-B2) is
// that the burstiness of off-chip memory traffic depends on the problem
// size — small problems are cache-resident and touch memory in rare,
// long-tailed bursts, while large problems saturate the memory system and
// produce non-bursty traffic. That observation is what licenses the M/M/1
// model for large problems.
//
// This example attaches the 5 µs sampler to CG runs across all five NPB
// problem classes and prints each class's burst profile and verdict.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/burst"
	"repro/internal/machine"
	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	spec := machine.IntelNUMA24() // the paper's Fig. 4 machine
	threads := spec.TotalCores()

	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "class\tfootprint\toff-chip lines\tbusy windows\tmax burst\ttail slope\tverdict")

	for _, class := range []workload.Class{workload.S, workload.W, workload.A, workload.B, workload.C} {
		// The cache-resident classes need their full iteration counts for
		// meaningful burst statistics and are cheap anyway; only the
		// thrashing classes are shortened.
		scale := 1.0
		if class == workload.B || class == workload.C {
			scale = 0.5
		}
		wl, err := workload.NewTuned("CG", class, workload.Tuning{RefScale: scale})
		if err != nil {
			log.Fatal(err)
		}
		// 5 us of real-machine time, scaled with the machine's capacity scale.
		s, err := sampler.NewMicros(float64(sampler.DefaultWindowMicros)/machine.CacheScale, spec.ClockGHz)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(context.Background(), sim.Config{
			Spec:     spec,
			Threads:  threads,
			Cores:    threads,
			MissHook: s.Hook(),
		}, wl.Streams(threads))
		if err != nil {
			log.Fatal(err)
		}
		s.PadTo(res.Makespan)

		a, err := burst.Analyze(s.Windows())
		if errors.Is(err, burst.ErrNoTraffic) {
			fmt.Fprintf(tw, "CG.%s\t%.1f MB\t0\t0%%\t-\t-\tfully cached\n",
				class, float64(wl.FootprintBytes())/(1<<20))
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "CG.%s\t%.1f MB\t%d\t%.1f%%\t%d\t%.2f\t%s\n",
			class, float64(wl.FootprintBytes())/(1<<20),
			a.TotalLines, 100*a.NonEmptyFraction, a.MaxLines, a.Tail.Alpha, a.Classify())
	}
	tw.Flush()

	fmt.Println("\nReading: as the problem size grows, the fraction of busy 5 µs windows")
	fmt.Println("rises toward 100% — traffic stops being bursty exactly when contention")
	fmt.Println("becomes large, which is why the M/M/1 model applies to large problems.")
}
