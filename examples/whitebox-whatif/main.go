// White-box what-if: the paper's conclusions sketch an extended model that
// factors in bus speed, memory bandwidth, channel counts and controller
// service discipline. This example uses that extension (core.WhiteBox) to
// answer design questions with NO simulation sweeps at all: one 1-core
// profiling run characterizes the workload, and every machine variant is
// then evaluated analytically.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	baseSpec := machine.IntelNUMA24()

	// One profiling run at a single core characterizes the workload.
	wl, err := workload.NewTuned("CG", workload.C, workload.Tuning{RefScale: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	threads := baseSpec.TotalCores()
	base, err := sim.Run(context.Background(), sim.Config{Spec: baseSpec, Threads: threads, Cores: 1}, wl.Streams(threads))
	if err != nil {
		log.Fatal(err)
	}
	// CG's dependent fraction is a property of its construction: one gather
	// per sparse matrix element out of three accesses (~1/3), diluted by the
	// streaming vector phase.
	profile := core.ProfileFromCounters(base.WorkCycles, base.LLCMisses, 0.3)

	fmt.Printf("profile from one run: W=%d, r=%d misses\n\n", base.WorkCycles, base.LLCMisses)

	variants := []struct {
		label  string
		mutate func(*machine.Spec)
	}{
		{"baseline X5650", func(*machine.Spec) {}},
		{"4 DDR3 channels", func(s *machine.Spec) { s.MC.Channels = 4 }},
		{"2x MSHRs", func(s *machine.Spec) { s.MSHRs *= 2 }},
		{"faster DRAM (-25%)", func(s *machine.Spec) {
			s.MC.HitLatency = s.MC.HitLatency * 3 / 4
			s.MC.MissLatency = s.MC.MissLatency * 3 / 4
		}},
		{"slower QPI (2x hop)", func(s *machine.Spec) { s.HopLatency *= 2 }},
	}

	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tω(12)\tω(24)\tpredicted best cores")
	for _, v := range variants {
		spec := baseSpec
		v.mutate(&spec)
		wb, err := core.NewWhiteBox(spec, profile)
		if err != nil {
			log.Fatal(err)
		}
		// Best core count by predicted speedup n/(1+ω(n)).
		best, bestS := 1, 1.0
		for n := 1; n <= spec.TotalCores(); n++ {
			if s := float64(n) / (1 + wb.Omega(n)); s > bestS {
				best, bestS = n, s
			}
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%d (S=%.1f)\n",
			v.label, wb.Omega(12), wb.Omega(24), best, bestS)
	}
	tw.Flush()
	fmt.Println("\nEvery row above is pure analysis — no additional simulation runs.")
}
