// Custom machine: the machine description is fully parametric, so the
// library answers "what if" questions the paper raises in its conclusions —
// here, how much does DOUBLING the memory channels per controller reduce
// contention on a hypothetical future 32-core part? ("adding additional
// memory controllers reduces the memory contention".)
//
// The example defines a 2-socket, 32-core NUMA machine from scratch, runs
// SP.C on a narrow and a wide memory configuration, and compares the
// measured degree of contention.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/workload"
)

// future32 is a hypothetical 32-core NUMA machine.
func future32(channels int) machine.Spec {
	return machine.Spec{
		Name:           fmt.Sprintf("Future32x%dch", channels),
		Sockets:        2,
		CoresPerSocket: 16,
		ClockGHz:       3.0,
		Levels: []machine.CacheLevel{
			{Config: cache.Config{Name: "L1", Size: 4 << 10, Line: 64, Ways: 8, Latency: 4}, Scope: machine.PerCore},
			{Config: cache.Config{Name: "L2", Size: 32 << 10, Line: 64, Ways: 8, Latency: 12}, Scope: machine.PerCore},
			{Config: cache.Config{Name: "L3", Size: 1 << 20, Line: 64, Ways: 16, Latency: 40}, Scope: machine.PerSocket},
		},
		MCsPerSocket: 1,
		MC: memctrl.Config{
			Channels:    channels,
			Banks:       8,
			RowBytes:    2048,
			LineBytes:   64,
			HitLatency:  24,
			MissLatency: 78,
			Discipline:  memctrl.FRFCFS,
		},
		HopLatency: 200,
		Links:      [][2]int{{0, 1}},
		MSHRs:      12,
	}
}

func main() {
	wl := func() workload.Workload {
		w, err := workload.NewTuned("SP", workload.C, workload.Tuning{RefScale: 0.25})
		if err != nil {
			log.Fatal(err)
		}
		return w
	}

	fmt.Println("SP.C on a hypothetical 32-core NUMA machine:")
	fmt.Printf("%-16s %14s %14s %10s\n", "memory config", "C(1) cycles", "C(32) cycles", "ω(32)")
	for _, channels := range []int{2, 4} {
		spec := future32(channels)
		threads := spec.TotalCores()
		measure := func(cores int) sim.Result {
			res, err := sim.Run(context.Background(), sim.Config{Spec: spec, Threads: threads, Cores: cores},
				wl().Streams(threads))
			if err != nil {
				log.Fatal(err)
			}
			return res
		}
		base := measure(1)
		full := measure(threads)
		omega := core.Omega(float64(full.TotalCycles), float64(base.TotalCycles))
		fmt.Printf("%-16s %14d %14d %10.2f\n",
			fmt.Sprintf("%d channels/MC", channels), base.TotalCycles, full.TotalCycles, omega)
	}
	fmt.Println("\nReading: widening each controller shrinks the queueing delay that")
	fmt.Println("dominates SP's stall cycles — the contention factor drops accordingly.")
}
