// Capacity planning with the analytical model: the paper's model needs only
// a handful of profiling runs (three to five), after which it predicts the
// degree of memory contention at EVERY core count — so it can answer
// questions like "how many cores can this workload use before memory
// contention doubles its cycle cost?" without measuring each configuration.
//
// This example fits the model for CG.C on all three testbed machines from
// the paper's input plans and reports, per machine, the largest core count
// whose predicted contention stays under a budget.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/workload"
)

func main() {
	const contentionBudget = 1.0 // tolerate at most +100% cycles

	runner := experiments.NewRunner(workload.Tuning{RefScale: 0.25})
	tw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "machine\tfit inputs\tsaturation\tmax cores with ω <= 1.0\tω at full machine")

	for _, spec := range machine.All() {
		model, plan, err := runner.FitFromPlan(context.Background(), spec, "CG", workload.C, core.Options{})
		if err != nil {
			log.Fatal(err)
		}

		// Walk the predicted curve to find the largest acceptable count.
		best := 1
		for n := 1; n <= spec.TotalCores(); n++ {
			if model.Omega(n) <= contentionBudget {
				best = n
			}
		}
		fmt.Fprintf(tw, "%s\t%v\t%.1f cores\t%d of %d\t%.2f\n",
			spec.Name, plan, model.Single.SaturationCores(),
			best, spec.TotalCores(), model.Omega(spec.TotalCores()))
	}
	tw.Flush()

	fmt.Println("\nReading: the model was fitted from 3-5 measurement runs per machine;")
	fmt.Println("every other prediction above required no simulation at all.")
}
