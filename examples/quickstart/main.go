// Quickstart: measure memory contention of one parallel program on a
// simulated multicore machine, the way the paper does it — run the program
// with 1 active core and with all cores, read the PAPI-style counters, and
// compute the degree of memory contention ω(n) = (C(n) - C(1)) / C(1).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// The paper's 24-core Intel NUMA testbed (dual Xeon X5650).
	spec := machine.IntelNUMA24()

	// CG class C: the paper's representative high-contention program.
	// RefScale shortens the run; access patterns are unchanged.
	wl, err := workload.NewTuned("CG", workload.C, workload.Tuning{RefScale: 0.25})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's protocol: the thread count is fixed at the machine's
	// core count; only the number of ACTIVE cores varies
	// (fill-processor-first, threads pinned).
	threads := spec.TotalCores()
	measure := func(cores int) sim.Result {
		// Configs are built with functional options; NewConfig validates
		// every field and reports all problems at once.
		cfg, err := sim.NewConfig(spec,
			sim.WithThreads(threads),
			sim.WithCores(cores),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(context.Background(), cfg, wl.Streams(threads))
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := measure(1)
	full := measure(spec.TotalCores())

	fmt.Printf("%s.%s on %s (%d threads)\n\n", wl.Name(), wl.Class(), spec.Name, threads)
	fmt.Println("1 active core (no off-chip contention):")
	fmt.Print(counters.FromResult(base))
	fmt.Printf("\n%d active cores:\n", spec.TotalCores())
	fmt.Print(counters.FromResult(full))

	omega := core.Omega(float64(full.TotalCycles), float64(base.TotalCycles))
	fmt.Printf("\ndegree of memory contention ω(%d) = %.2f\n", spec.TotalCores(), omega)
	fmt.Printf("(the program needs %.0f%% more total cycles purely from memory contention)\n", 100*omega)
}
