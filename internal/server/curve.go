package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// The curve endpoint answers a whole ω(n) sweep in one request.
//
// The analytical sweep is evaluated first — one fit lookup, microseconds
// for the whole curve — and admission is charged one token per
// simulation-tier point before any response byte is written, so a curve
// that needs nothing the instance can give gets its 429 as cheaply as a
// single predict would. In streaming mode (Accept:
// application/x-ndjson) the analytical points flush immediately and the
// simulation points stream in completion order; batched mode gathers
// everything and responds in request order. Either way each simulation
// point releases its token the moment it settles, so a long curve does
// not hold the queue hostage while its slowest point simulates.

// curveParams is one parsed and validated curve request.
type curveParams struct {
	spec   machine.Spec
	req    api.CurveRequest
	class  workload.Class
	cores  []int
	tenant string
}

// parseCurve decodes and validates a curve request body. An empty or
// omitted cores list means the full sweep 1..TotalCores; an explicit
// list must be in range and duplicate-free (a duplicate would silently
// double-charge admission).
func (s *Server) parseCurve(r *http.Request) (curveParams, *httpError) {
	var p curveParams
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p.req); err != nil {
		return p, &httpError{http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err)}
	}
	spec, err := machine.ByName(p.req.Machine)
	if err != nil {
		return p, &httpError{http.StatusBadRequest, err.Error()}
	}
	p.spec = spec
	if err := validateWorkload(p.req.Program, p.req.Class); err != nil {
		return p, &httpError{http.StatusBadRequest, err.Error()}
	}
	if herr := s.checkScale(p.req.Scale); herr != nil {
		return p, herr
	}
	if len(p.req.Cores) == 0 {
		p.cores = make([]int, spec.TotalCores())
		for i := range p.cores {
			p.cores[i] = i + 1
		}
	} else {
		seen := make(map[int]bool, len(p.req.Cores))
		for _, n := range p.req.Cores {
			if n < 1 || n > spec.TotalCores() {
				return p, &httpError{http.StatusBadRequest, fmt.Sprintf(
					"cores %d out of range for %s (1..%d)", n, spec.Name, spec.TotalCores())}
			}
			if seen[n] {
				return p, &httpError{http.StatusBadRequest, fmt.Sprintf(
					"duplicate cores %d in curve request", n)}
			}
			seen[n] = true
		}
		p.cores = p.req.Cores
	}
	p.class = workload.Class(p.req.Class)
	p.tenant = r.Header.Get(api.HeaderTenant)
	return p, nil
}

// wantsNDJSON reports whether the client asked for the streaming curve
// mode.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), api.ContentTypeNDJSON)
}

// curvePoint converts one model answer to its wire form. The numeric
// fields mirror api.PredictResponse exactly (the equivalence test pins
// them); the fit summary is hoisted into the curve summary instead of
// repeating per point.
func curvePoint(pred model.Prediction) api.CurvePoint {
	return api.CurvePoint{
		Cores:          pred.Cores,
		Omega:          pred.Omega,
		Cycles:         pred.Cycles,
		BaselineCycles: pred.BaselineCycles,
		MakespanCycles: pred.MakespanCycles,
		MCUtilization:  pred.MCUtilization,
		Tier:           string(pred.Tier),
		ConfigHash:     pred.ConfigHash,
	}
}

func (s *Server) handleCurve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	rt := s.startCurveTrace(w, r)
	rt.beginParse()
	p, herr := s.parseCurve(r)
	rt.endParse(herr == nil)
	if herr != nil {
		s.fail(w, herr.status, herr.msg)
		rt.finishCurve(herr.status, 0, 0, 0, 0)
		return
	}
	s.metrics.Counter("simserved_curve_requests_total").Inc()
	start := time.Now()

	// Analytical sweep: one fit lookup answers every point it can, in
	// microseconds.
	rt.beginModel()
	preds, reasons := s.pred.AnalyticalCurve(p.spec, p.req.Program, p.class, p.cores)
	var simIdx []int
	for i, reason := range reasons {
		if reason != "" {
			simIdx = append(simIdx, i)
		}
	}
	analytical := len(p.cores) - len(simIdx)
	rt.endModelCurve(analytical, len(simIdx))

	// Charge admission one token per simulation point before any byte is
	// written: the whole grant/shed verdict must precede the streaming
	// header, which commits the status code.
	granted := make([]bool, len(p.cores))
	shedScope := make([]string, len(p.cores))
	grantedCount := 0
	rt.beginAdmit()
	for _, i := range simIdx {
		ok, scope := s.adm.Acquire(p.tenant)
		if ok {
			granted[i] = true
			grantedCount++
		} else {
			shedScope[i] = scope
			s.metrics.Counter("simserved_curve_shed_points_total").Inc()
		}
	}
	rt.endAdmitCurve(p.tenant, grantedCount, len(simIdx)-grantedCount)
	if grantedCount > 0 {
		s.metrics.Gauge("simserved_queue_depth").Set(float64(s.adm.Depth()))
	}
	shed := len(simIdx) - grantedCount

	// A curve the instance can say nothing about — no fit, every point
	// needs a simulation, every token denied — is one whole-request 429,
	// same as a shed predict.
	if analytical == 0 && grantedCount == 0 && len(simIdx) > 0 {
		scope := shedScope[simIdx[0]]
		s.metrics.Counter("simserved_rejected_total").Inc()
		if scope == api.ScopeTenant {
			s.metrics.Counter("simserved_tenant_rejected_total").Inc()
		}
		if s.tracer.Enabled() {
			s.tracer.Emit("server.rejected", "machine", p.spec.Name, "program", p.req.Program,
				"class", p.req.Class, "points", len(p.cores), "decline", string(reasons[simIdx[0]]),
				"tenant", p.tenant, "scope", scope, "queue", s.adm.Cap())
		}
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterS()))
		w.Header().Set(api.HeaderAdmissionScope, scope)
		s.fail(w, http.StatusTooManyRequests, s.shedMessage(reasons[simIdx[0]], scope))
		rt.finishCurve(http.StatusTooManyRequests, 0, 0, shed, 0)
		return
	}

	// Resolve the analytical and shed points now; simulation slots fill
	// as the runner completes them.
	points := make([]*api.CurvePoint, len(p.cores))
	var fit *api.Fit
	for i := range p.cores {
		switch {
		case reasons[i] == "":
			pt := curvePoint(preds[i])
			points[i] = &pt
			if fit == nil {
				fit = fitBody(preds[i].Fit)
			}
			sp := rt.startPoint()
			sp.End("cores", pt.Cores, "tier", pt.Tier)
			s.metrics.Counter("simserved_curve_analytical_points_total").Inc()
		case !granted[i]:
			points[i] = &api.CurvePoint{
				Cores: p.cores[i],
				Error: fmt.Sprintf("shed (%s): %s", shedScope[i], s.shedMessage(reasons[i], shedScope[i])),
			}
			sp := rt.startPoint()
			sp.End("cores", p.cores[i], "error", "shed")
		}
	}

	streaming := wantsNDJSON(r)
	var enc *json.Encoder
	var flusher http.Flusher
	emit := func(pt *api.CurvePoint) {}
	if streaming {
		w.Header().Set("Content-Type", api.ContentTypeNDJSON)
		w.WriteHeader(http.StatusOK)
		enc = json.NewEncoder(w)
		flusher, _ = w.(http.Flusher)
		emit = func(pt *api.CurvePoint) {
			_ = enc.Encode(api.CurveFrame{Point: pt})
			if flusher != nil {
				flusher.Flush()
			}
		}
		// Everything already known — the analytical sweep and the shed
		// verdicts — flushes before the first simulation is dispatched:
		// the cheap points never wait on the expensive ones.
		for i := range points {
			if points[i] != nil {
				emit(points[i])
			}
		}
	}

	// Dispatch the granted simulation points through the runner's pool.
	// PredictStream invokes the callback on this goroutine, one point at
	// a time, in completion order.
	simulation, failed := 0, 0
	if grantedCount > 0 {
		simCores := make([]int, 0, grantedCount)
		simMap := make([]int, 0, grantedCount)
		for _, i := range simIdx {
			if granted[i] {
				simCores = append(simCores, p.cores[i])
				simMap = append(simMap, i)
			}
		}
		simSpans := make([]telemetry.Span, len(simCores))
		simStart := make([]time.Time, len(simCores))
		for j := range simCores {
			simSpans[j] = rt.startPoint()
			simStart[j] = time.Now()
		}
		s.pred.PredictStream(rt.context(r.Context()), p.spec, p.req.Program, p.class, simCores,
			func(j int, pred model.Prediction, err error) {
				i := simMap[j]
				s.release(p.tenant)
				if err != nil {
					failed++
					s.metrics.Counter("simserved_curve_failed_points_total").Inc()
					msg := err.Error()
					if isCanceled(err) {
						msg = "canceled before the simulation finished"
					}
					simSpans[j].End("cores", simCores[j], "error", msg)
					points[i] = &api.CurvePoint{Cores: simCores[j], Error: msg}
				} else {
					simulation++
					s.metrics.Counter("simserved_curve_simulation_points_total").Inc()
					s.observeSimLatency(time.Since(simStart[j]))
					simSpans[j].End("cores", pred.Cores, "tier", string(pred.Tier))
					pt := curvePoint(pred)
					points[i] = &pt
				}
				emit(points[i])
			})
	}

	summary := api.CurveSummary{
		Points:     len(p.cores),
		Analytical: analytical,
		Simulation: simulation,
		Shed:       shed,
		Failed:     failed,
		Fit:        fit,
	}
	ms := float64(time.Since(start).Microseconds()) / 1000
	s.metrics.Histogram("simserved_curve_ms", predictBounds...).ObserveExemplar(ms, rt.traceID())
	if s.tracer.Enabled() {
		s.tracer.Emit("server.curve_served",
			"machine", p.spec.Name, "program", p.req.Program, "class", p.req.Class,
			"points", len(p.cores), "analytical", analytical, "simulation", simulation,
			"shed", shed, "failed", failed, "elapsed_ms", ms)
	}

	if streaming {
		_ = enc.Encode(api.CurveFrame{Summary: &summary})
		if flusher != nil {
			flusher.Flush()
		}
		rt.finishCurve(http.StatusOK, analytical, simulation, shed, failed)
		return
	}

	// Batched mode: a client that vanished mid-curve gets the predict
	// handler's 499; an intact client gets every point in request order.
	if r.Context().Err() != nil && failed > 0 {
		s.metrics.Counter("simserved_canceled_total").Inc()
		s.fail(w, StatusClientClosedRequest, "request canceled before the curve finished")
		rt.finishCurve(StatusClientClosedRequest, analytical, simulation, shed, failed)
		return
	}
	resp := api.CurveResponse{
		Machine: p.spec.Name,
		Program: p.req.Program,
		Class:   p.req.Class,
		Scale:   s.pred.Scale(),
		Points:  make([]api.CurvePoint, len(points)),
		Summary: summary,
	}
	for i, pt := range points {
		resp.Points[i] = *pt
	}
	s.writeJSON(w, http.StatusOK, resp)
	rt.finishCurve(http.StatusOK, analytical, simulation, shed, failed)
}
