package server

import (
	"context"
	"net/http"

	"repro/internal/api"
	"repro/internal/telemetry"
)

// requestTrace carries one request's span tree through the handlers
// (predict and curve). A nil *requestTrace (tracing off) makes every
// method a no-op, keeping the fast path free of span work: the typed
// begin/end methods below take no variadic arguments, so a disabled
// handler allocates no span objects and no boxed attribute slices (the
// zero-cost-when-off contract; TestPredictTracingOffAllocations pins it).
//
// The handler phases are strictly sequential, so one child slot
// suffices: each begin* opens the next phase span and the matching end*
// closes it. Curve per-point spans overlap (simulation points complete
// concurrently with dispatch), so they bypass the slot — startPoint
// hands the span to the caller.
type requestTrace struct {
	tracer *telemetry.Tracer
	root   telemetry.Span
	child  telemetry.Span
}

// startTrace opens the request's root span ("server.request"), joined to
// the client's traceparent when present, and echoes the trace ID in the
// response headers. It returns nil when tracing is off.
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request) *requestTrace {
	if !s.tracer.Enabled() {
		return nil
	}
	parent, _ := telemetry.ParseTraceparent(r.Header.Get(api.HeaderTraceparent))
	rt := &requestTrace{tracer: s.tracer}
	rt.root = s.tracer.StartSpan(parent, "server.request")
	w.Header().Set(api.HeaderTrace, rt.root.Context().Trace.String())
	return rt
}

// startCurveTrace is startTrace for the curve handler: same join and
// echo semantics, but the root span is "server.curve" so traceview can
// tell a one-point request from a whole-curve request.
func (s *Server) startCurveTrace(w http.ResponseWriter, r *http.Request) *requestTrace {
	if !s.tracer.Enabled() {
		return nil
	}
	parent, _ := telemetry.ParseTraceparent(r.Header.Get(api.HeaderTraceparent))
	rt := &requestTrace{tracer: s.tracer}
	rt.root = s.tracer.StartSpan(parent, "server.curve")
	w.Header().Set(api.HeaderTrace, rt.root.Context().Trace.String())
	return rt
}

// context returns ctx carrying the root span, so the runner and the sim
// cancellation checkpoints can parent their spans under this request.
func (rt *requestTrace) context(ctx context.Context) context.Context {
	if rt == nil {
		return ctx
	}
	return telemetry.ContextWithSpan(ctx, rt.root.Context())
}

// traceID returns the request's trace ID in hex, or "" when tracing is
// off — the exemplar key for the latency histograms.
func (rt *requestTrace) traceID() string {
	if rt == nil {
		return ""
	}
	return rt.root.Context().Trace.String()
}

// beginParse opens the decode+validate phase span.
func (rt *requestTrace) beginParse() {
	if rt == nil {
		return
	}
	rt.child = rt.tracer.StartSpan(rt.root.Context(), "server.parse")
}

// endParse closes the parse span with the validation outcome.
func (rt *requestTrace) endParse(ok bool) {
	if rt == nil {
		return
	}
	rt.child.End("ok", ok)
}

// beginModel opens the tier-decision span (the analytical attempt).
func (rt *requestTrace) beginModel() {
	if rt == nil {
		return
	}
	rt.child = rt.tracer.StartSpan(rt.root.Context(), "server.model")
}

// endModel closes the model span; decline is empty when the fast path
// answered, else the decline reason that routed us to simulation.
func (rt *requestTrace) endModel(decline string) {
	if rt == nil {
		return
	}
	if decline == "" {
		rt.child.End("decision", "answered")
		return
	}
	rt.child.End("decision", "declined", "decline", decline)
}

// beginAdmit opens the admission-wait span. The admitter never blocks —
// the span times the decision itself and records which bucket (global or
// per-tenant) the verdict came from, completing the paper-style
// queue-vs-service decomposition per request.
func (rt *requestTrace) beginAdmit() {
	if rt == nil {
		return
	}
	rt.child = rt.tracer.StartSpan(rt.root.Context(), "server.admit")
}

// endAdmit closes the admission span with the verdict and the deciding
// scope (ScopeGlobal or ScopeTenant).
func (rt *requestTrace) endAdmit(tenant string, ok bool, scope string) {
	if rt == nil {
		return
	}
	rt.child.End("ok", ok, "tenant", tenant, "scope", scope)
}

// beginSim opens the simulation-fallback span; the runner's
// queue_wait/execute spans nest under the request root via context.
func (rt *requestTrace) beginSim() {
	if rt == nil {
		return
	}
	rt.child = rt.tracer.StartSpan(rt.root.Context(), "server.sim")
}

// endSim closes the simulation span, recording the error if any.
func (rt *requestTrace) endSim(err error) {
	if rt == nil {
		return
	}
	if err == nil {
		rt.child.End()
		return
	}
	rt.child.End("error", err.Error())
}

// beginRespond opens the response-marshal span.
func (rt *requestTrace) beginRespond() {
	if rt == nil {
		return
	}
	rt.child = rt.tracer.StartSpan(rt.root.Context(), "server.respond")
}

// endRespond closes the response span.
func (rt *requestTrace) endRespond() {
	if rt == nil {
		return
	}
	rt.child.End()
}

// finish closes the root span with the final status and answering tier
// ("" when the request failed before a tier answered). Every handler exit
// path calls it exactly once.
func (rt *requestTrace) finish(status int, tier string) {
	if rt == nil {
		return
	}
	if tier == "" {
		rt.root.End("status", status)
		return
	}
	rt.root.End("status", status, "tier", tier)
}

// endModelCurve closes the model span of a curve request with the sweep
// verdict: how many points the fit answered and how many it declined to
// the simulation tier.
func (rt *requestTrace) endModelCurve(answered, declined int) {
	if rt == nil {
		return
	}
	rt.child.End("answered", answered, "declined", declined)
}

// endAdmitCurve closes the admission span of a curve request: how many
// simulation points were granted tokens and how many were shed.
func (rt *requestTrace) endAdmitCurve(tenant string, granted, shed int) {
	if rt == nil {
		return
	}
	rt.child.End("tenant", tenant, "granted", granted, "shed", shed)
}

// startPoint opens one per-point child span under the curve root and
// hands it to the caller (zero Span when tracing is off — End on it is
// a no-op). Points overlap in time, so they cannot use the sequential
// child slot.
func (rt *requestTrace) startPoint() telemetry.Span {
	if rt == nil {
		return telemetry.Span{}
	}
	return rt.tracer.StartSpan(rt.root.Context(), "server.point")
}

// finishCurve closes the curve root span with the final status and the
// per-tier point counts.
func (rt *requestTrace) finishCurve(status, analytical, simulation, shed, failed int) {
	if rt == nil {
		return
	}
	rt.root.End("status", status, "analytical", analytical,
		"simulation", simulation, "shed", shed, "failed", failed)
}
