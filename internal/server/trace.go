package server

import (
	"context"
	"net/http"

	"repro/internal/telemetry"
)

// Trace propagation headers.
const (
	// HeaderTraceparent is the W3C trace-context request header
	// ("00-<trace>-<span>-01"); when a client (cmd/loadgen) sends one, the
	// server's request span joins the client's trace instead of starting
	// a fresh one.
	HeaderTraceparent = "traceparent"
	// HeaderTrace reports the request's trace ID back to the client (set
	// only when tracing is enabled), so any response — including 4xx/5xx —
	// is joinable to the server's span log.
	HeaderTrace = "X-Simserved-Trace"
)

// requestTrace carries one predict request's span tree through the
// handler. A nil *requestTrace (tracing off) makes every method a no-op,
// keeping the fast path free of span work: the typed begin/end methods
// below take no variadic arguments, so a disabled handler allocates no
// span objects and no boxed attribute slices (the tentpole's
// zero-cost-when-off contract; TestPredictTracingOffAllocations pins it).
//
// The handler is strictly sequential, so one child slot suffices: each
// begin* opens the next phase span and the matching end* closes it.
type requestTrace struct {
	tracer *telemetry.Tracer
	root   telemetry.Span
	child  telemetry.Span
}

// startTrace opens the request's root span ("server.request"), joined to
// the client's traceparent when present, and echoes the trace ID in the
// response headers. It returns nil when tracing is off.
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request) *requestTrace {
	if !s.tracer.Enabled() {
		return nil
	}
	parent, _ := telemetry.ParseTraceparent(r.Header.Get(HeaderTraceparent))
	rt := &requestTrace{tracer: s.tracer}
	rt.root = s.tracer.StartSpan(parent, "server.request")
	w.Header().Set(HeaderTrace, rt.root.Context().Trace.String())
	return rt
}

// context returns ctx carrying the root span, so the runner and the sim
// cancellation checkpoints can parent their spans under this request.
func (rt *requestTrace) context(ctx context.Context) context.Context {
	if rt == nil {
		return ctx
	}
	return telemetry.ContextWithSpan(ctx, rt.root.Context())
}

// traceID returns the request's trace ID in hex, or "" when tracing is
// off — the exemplar key for the latency histograms.
func (rt *requestTrace) traceID() string {
	if rt == nil {
		return ""
	}
	return rt.root.Context().Trace.String()
}

// beginParse opens the decode+validate phase span.
func (rt *requestTrace) beginParse() {
	if rt == nil {
		return
	}
	rt.child = rt.tracer.StartSpan(rt.root.Context(), "server.parse")
}

// endParse closes the parse span with the validation outcome.
func (rt *requestTrace) endParse(ok bool) {
	if rt == nil {
		return
	}
	rt.child.End("ok", ok)
}

// beginModel opens the tier-decision span (the analytical attempt).
func (rt *requestTrace) beginModel() {
	if rt == nil {
		return
	}
	rt.child = rt.tracer.StartSpan(rt.root.Context(), "server.model")
}

// endModel closes the model span; decline is empty when the fast path
// answered, else the decline reason that routed us to simulation.
func (rt *requestTrace) endModel(decline string) {
	if rt == nil {
		return
	}
	if decline == "" {
		rt.child.End("decision", "answered")
		return
	}
	rt.child.End("decision", "declined", "decline", decline)
}

// beginAdmit opens the admission-wait span. The admitter never blocks —
// the span times the decision itself and records which bucket (global or
// per-tenant) the verdict came from, completing the paper-style
// queue-vs-service decomposition per request.
func (rt *requestTrace) beginAdmit() {
	if rt == nil {
		return
	}
	rt.child = rt.tracer.StartSpan(rt.root.Context(), "server.admit")
}

// endAdmit closes the admission span with the verdict and the deciding
// scope (ScopeGlobal or ScopeTenant).
func (rt *requestTrace) endAdmit(tenant string, ok bool, scope string) {
	if rt == nil {
		return
	}
	rt.child.End("ok", ok, "tenant", tenant, "scope", scope)
}

// beginSim opens the simulation-fallback span; the runner's
// queue_wait/execute spans nest under the request root via context.
func (rt *requestTrace) beginSim() {
	if rt == nil {
		return
	}
	rt.child = rt.tracer.StartSpan(rt.root.Context(), "server.sim")
}

// endSim closes the simulation span, recording the error if any.
func (rt *requestTrace) endSim(err error) {
	if rt == nil {
		return
	}
	if err == nil {
		rt.child.End()
		return
	}
	rt.child.End("error", err.Error())
}

// beginRespond opens the response-marshal span.
func (rt *requestTrace) beginRespond() {
	if rt == nil {
		return
	}
	rt.child = rt.tracer.StartSpan(rt.root.Context(), "server.respond")
}

// endRespond closes the response span.
func (rt *requestTrace) endRespond() {
	if rt == nil {
		return
	}
	rt.child.End()
}

// finish closes the root span with the final status and answering tier
// ("" when the request failed before a tier answered). Every handler exit
// path calls it exactly once.
func (rt *requestTrace) finish(status int, tier string) {
	if rt == nil {
		return
	}
	if tier == "" {
		rt.root.End("status", status)
		return
	}
	rt.root.End("status", status, "tier", tier)
}
