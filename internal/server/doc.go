// Package server implements the HTTP/JSON serving layer of cmd/simserved:
// contention-as-a-service over the tiered backend of internal/model.
//
// The handler surface (wire contract in internal/api and docs/API.md,
// operations in docs/SERVER.md):
//
//	POST /v1/predict   one contention query → ω(n), per-MC utilization,
//	                   predicted makespan; X-Simserved-Tier names the
//	                   backend that answered (analytical | simulation)
//	POST /v1/curve     a whole ω(n) sweep in one request: batched JSON,
//	                   or streaming NDJSON (Accept: application/x-ndjson)
//	                   where analytical points flush immediately and
//	                   simulation points stream in completion order
//	GET  /v1/catalog   the machines, programs and classes this instance
//	                   can answer for, plus its workload scale
//	GET  /healthz      liveness + fit/cache occupancy
//	GET  /metrics      Prometheus text exposition of the request,
//	                   admission-queue and backend metrics
//	/debug/pprof/*     the standard pprof handlers
//
// # Admission and backpressure
//
// Analytical-tier answers cost microseconds and are never queued: every
// request first tries the closed form. Only queries that must simulate
// enter the bounded admission queue (Config.MaxQueue tokens covering
// queued plus running simulation requests). When the queue is full the
// server sheds load immediately — 429 with Retry-After — rather than
// stacking goroutines behind a pool that is minutes deep; the client can
// retry, and by then the singleflight cache often answers for free.
// Queue depth is exported live (simserved_queue_depth) next to per-tier
// latency histograms, so saturation is visible before it pages anyone.
//
// # Concurrency contract
//
// A Server is safe for any number of concurrent requests: handlers are
// stateless, admission is a buffered-channel semaphore, the predictor
// serializes only its fit-table writes, and all counters are
// telemetry.Registry atomics. Request cancellation is context-first end
// to end: a client disconnect propagates through the predictor into the
// runner and the simulator's own event loop, freeing the admission token
// and the worker slot within a bounded number of simulated events.
package server
