package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// newTracedServer builds a server whose tracer, runner and predictor all
// share one span sink, mirroring how cmd/simserved wires -trace-out.
func newTracedServer(t testing.TB, scale float64) (*Server, *model.Predictor, *bytes.Buffer) {
	t.Helper()
	buf := &bytes.Buffer{}
	tr := telemetry.NewTracer(buf)
	r := experiments.NewRunner(workload.Tuning{RefScale: scale})
	r.Tracer = tr
	p := model.New(r)
	p.MinR2 = -1
	p.MaxResidual = 1e9
	p.Tracer = tr
	s := New(Config{Predictor: p, Metrics: telemetry.NewRegistry(), Tracer: tr})
	return s, p, buf
}

// spanRecord is one span.end NDJSON line.
type spanRecord struct {
	Event   string  `json:"event"`
	Name    string  `json:"name"`
	Trace   string  `json:"trace"`
	Span    string  `json:"span"`
	Parent  string  `json:"parent"`
	StartUs float64 `json:"start_us"`
	EndUs   float64 `json:"end_us"`
	Status  int     `json:"status"`
	Tier    string  `json:"tier"`
}

func parseSpans(t *testing.T, buf *bytes.Buffer) map[string]spanRecord {
	t.Helper()
	spans := map[string]spanRecord{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec spanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if rec.Event == "span.end" {
			spans[rec.Name] = rec
		}
	}
	return spans
}

// TestPredictSpanTreeAnalytical drives a fast-path request carrying a
// client traceparent and checks the server emits a complete span tree
// joined to the client's trace, echoing the trace ID in the response.
func TestPredictSpanTreeAnalytical(t *testing.T) {
	if testing.Short() {
		t.Skip("warms by simulation")
	}
	s, p, buf := newTracedServer(t, 0.05)
	spec, _ := machine.ByName("IntelUMA8")
	if _, err := p.Warm(context.Background(), spec, "CG", "W"); err != nil {
		t.Fatal(err)
	}
	buf.Reset() // drop warm-time events; only the request matters
	h := s.Handler()

	client := telemetry.DeriveSpanContext(7, 0)
	req := httptest.NewRequest(http.MethodPost, "/v1/predict",
		strings.NewReader(`{"machine":"IntelUMA8","program":"CG","class":"W","cores":3}`))
	req.Header.Set(api.HeaderTraceparent, client.Traceparent())
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get(api.HeaderTrace); got != client.Trace.String() {
		t.Errorf("%s = %q, want client trace %s", api.HeaderTrace, got, client.Trace)
	}

	spans := parseSpans(t, buf)
	root, ok := spans["server.request"]
	if !ok {
		t.Fatalf("no server.request span:\n%s", buf.String())
	}
	if root.Trace != client.Trace.String() || root.Parent != client.Span.String() {
		t.Errorf("root trace/parent = %s/%s, want %s/%s",
			root.Trace, root.Parent, client.Trace, client.Span)
	}
	if root.Status != 200 || root.Tier != "analytical" {
		t.Errorf("root status=%d tier=%q, want 200/analytical", root.Status, root.Tier)
	}
	for _, name := range []string{"server.parse", "server.model", "server.respond"} {
		child, ok := spans[name]
		if !ok {
			t.Fatalf("missing %s span:\n%s", name, buf.String())
		}
		if child.Parent != root.Span || child.Trace != root.Trace {
			t.Errorf("%s parent/trace = %s/%s, want %s/%s",
				name, child.Parent, child.Trace, root.Span, root.Trace)
		}
		if child.StartUs < root.StartUs || child.EndUs > root.EndUs {
			t.Errorf("%s [%v,%v] outside root [%v,%v]",
				name, child.StartUs, child.EndUs, root.StartUs, root.EndUs)
		}
	}
	if _, ok := spans["server.admit"]; ok {
		t.Error("analytical hit should not open an admission span")
	}
	if _, ok := spans["server.sim"]; ok {
		t.Error("analytical hit should not open a simulation span")
	}
}

// TestPredictSpanTreeSimulation drives a cold pair into the simulation
// fallback and checks the admission, sim, runner and refit spans all hang
// off the request trace.
func TestPredictSpanTreeSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s, _, buf := newTracedServer(t, 0.05)
	h := s.Handler()

	req := httptest.NewRequest(http.MethodPost, "/v1/predict",
		strings.NewReader(`{"machine":"IntelUMA8","program":"EP","class":"W","cores":2}`))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}

	spans := parseSpans(t, buf)
	root, ok := spans["server.request"]
	if !ok {
		t.Fatalf("no server.request span:\n%s", buf.String())
	}
	if root.Parent != "" {
		t.Errorf("root has parent %q; no traceparent was sent", root.Parent)
	}
	if root.Tier != "simulation" {
		t.Errorf("root tier = %q, want simulation", root.Tier)
	}
	for _, name := range []string{
		"server.parse", "server.model", "server.admit", "server.sim",
		"server.respond", "runner.queue_wait", "runner.execute", "model.refit",
	} {
		rec, ok := spans[name]
		if !ok {
			t.Fatalf("missing %s span:\n%s", name, buf.String())
		}
		if rec.Trace != root.Trace {
			t.Errorf("%s trace = %s, want %s", name, rec.Trace, root.Trace)
		}
	}
	// Runner spans parent under the request root (propagated via ctx).
	if got := spans["runner.execute"].Parent; got != root.Span {
		t.Errorf("runner.execute parent = %s, want root %s", got, root.Span)
	}
	// The sim span must dominate the root: this is the waterfall's
	// critical path for a fallback request.
	simSpan := spans["server.sim"]
	if dur, rootDur := simSpan.EndUs-simSpan.StartUs, root.EndUs-root.StartUs; dur < 0.5*rootDur {
		t.Errorf("server.sim %.0fus is under half of root %.0fus", dur, rootDur)
	}
}

// TestPredictTraceHeaderOn4xx checks failed requests still echo a trace
// ID and close the root span with the error status.
func TestPredictTraceHeaderOn4xx(t *testing.T) {
	s, _, buf := newTracedServer(t, 0.05)
	w := postPredict(t, s.Handler(), `{"machine":"NoSuchMachine","program":"CG","class":"W"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	trace := w.Header().Get(api.HeaderTrace)
	if len(trace) != 32 {
		t.Fatalf("%s = %q, want 32-hex trace ID", api.HeaderTrace, trace)
	}
	spans := parseSpans(t, buf)
	root := spans["server.request"]
	if root.Trace != trace || root.Status != 400 {
		t.Errorf("root trace=%q status=%d, want %q/400", root.Trace, root.Status, trace)
	}
	if _, ok := spans["server.parse"]; !ok {
		t.Error("missing server.parse span on a validation failure")
	}
}

// TestTracingOffNoHeaderNoSpans pins the off state: no X-Simserved-Trace
// header and (trivially) no span output.
func TestTracingOffNoHeaderNoSpans(t *testing.T) {
	s, _ := newTestServer(t, 0.05, 0)
	w := postPredict(t, s.Handler(), `{"machine":"NoSuchMachine","program":"CG","class":"W"}`)
	if got := w.Header().Get(api.HeaderTrace); got != "" {
		t.Errorf("%s = %q with tracing off, want empty", api.HeaderTrace, got)
	}
}

// TestRequestTraceNilSafe pins the zero-cost-when-off contract at the
// wrapper level: every method of a nil *requestTrace is a no-op and the
// whole per-request span choreography allocates nothing.
func TestRequestTraceNilSafe(t *testing.T) {
	var rt *requestTrace
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		rt.beginParse()
		rt.endParse(true)
		rt.beginModel()
		rt.endModel("no_fit")
		rt.beginAdmit()
		rt.endAdmit("tenant", true, api.ScopeGlobal)
		rt.beginSim()
		rt.endSim(nil)
		rt.beginRespond()
		rt.endRespond()
		rt.finish(200, "analytical")
		if rt.context(ctx) != ctx {
			t.Fatal("nil requestTrace must return ctx unchanged")
		}
		if rt.traceID() != "" {
			t.Fatal("nil requestTrace must have no trace ID")
		}
	})
	if allocs != 0 {
		t.Errorf("nil requestTrace choreography allocates %.1f/op, want 0", allocs)
	}
}

// TestPredictTracingOffAllocations compares whole-handler allocations
// with tracing off vs on for the same warmed analytical request: tracing
// on must cost extra allocations (the spans exist), and that entire cost
// must vanish when tracing is off.
func TestPredictTracingOffAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("warms by simulation")
	}
	spec, _ := machine.ByName("IntelUMA8")
	body := `{"machine":"IntelUMA8","program":"CG","class":"W","cores":3}`

	measure := func(h http.Handler) float64 {
		return testing.AllocsPerRun(200, func() {
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				t.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		})
	}

	off, p := newTestServer(t, 0.05, 0)
	if _, err := p.Warm(context.Background(), spec, "CG", "W"); err != nil {
		t.Fatal(err)
	}
	on, pOn, _ := newTracedServer(t, 0.05)
	if _, err := pOn.Warm(context.Background(), spec, "CG", "W"); err != nil {
		t.Fatal(err)
	}

	offAllocs, onAllocs := measure(off.Handler()), measure(on.Handler())
	if onAllocs <= offAllocs {
		t.Logf("tracing on %.1f allocs/req, off %.1f — spans unexpectedly free", onAllocs, offAllocs)
	}
	// The off path must not pay for span plumbing: allow only the
	// baseline handler cost (recorder, decoder, response encoding).
	if offAllocs >= onAllocs && onAllocs > 0 {
		t.Errorf("tracing off (%.1f allocs/req) costs as much as on (%.1f)", offAllocs, onAllocs)
	}
}
