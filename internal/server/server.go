package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// DefaultMaxQueue bounds simulation-tier admission when Config.MaxQueue
// is zero: enough to keep a worker pool busy with headroom, small enough
// that shed load gets a 429 in microseconds instead of a timeout in
// minutes.
const DefaultMaxQueue = 64

// StatusClientClosedRequest is reported when the client vanished before
// its simulation finished (nginx's 499 convention; Go has no name for it).
const StatusClientClosedRequest = 499

// Retry-After bounds: the hint is derived from a latency estimate, never
// below one second and never an hour-long lie.
const (
	minRetryAfterS = 1
	maxRetryAfterS = 60
)

// Predictor is the narrow surface the serving layer needs from the
// tiered backend. *model.Predictor implements it; tests substitute
// stubs to pin serving contracts — like mixed-tier streaming order —
// that the real physics only produces past a fitted saturation point.
type Predictor interface {
	// Scale is the workload fidelity of this instance; every answer and
	// config hash is at this scale.
	Scale() float64
	// FitCount and CachedRuns feed /healthz occupancy.
	FitCount() int
	CachedRuns() int
	// Analytical answers from the fitted closed form or declines with a
	// reason; it must never block.
	Analytical(spec machine.Spec, program string, class workload.Class, cores int) (model.Prediction, model.DeclineReason)
	// AnalyticalCurve is Analytical over a core sweep with one fit
	// lookup: point i of the parallel slices is answered iff reasons[i]
	// is empty.
	AnalyticalCurve(spec machine.Spec, program string, class workload.Class, cores []int) ([]model.Prediction, []model.DeclineReason)
	// Predict answers one query, falling back to simulation.
	Predict(ctx context.Context, spec machine.Spec, program string, class workload.Class, cores int) (model.Prediction, error)
	// PredictStream simulates many core counts of one pair, invoking fn
	// exactly once per index in completion order from a single
	// goroutine; failed or canceled points carry the error.
	PredictStream(ctx context.Context, spec machine.Spec, program string, class workload.Class, cores []int, fn func(i int, pred model.Prediction, err error))
}

// Config wires a Server. Predictor is required; everything else has
// serviceable defaults.
type Config struct {
	// Predictor is the tiered backend answering queries (normally a
	// *model.Predictor).
	Predictor Predictor
	// MaxQueue bounds simulation-tier admission (queued + running)
	// instance-wide. Zero means DefaultMaxQueue.
	MaxQueue int
	// MaxPerTenant bounds the admission tokens any one tenant
	// (api.HeaderTenant) may hold at once. Zero means half of MaxQueue
	// (rounded up), so no single tenant can starve the simulation tier;
	// values are clamped into [1, MaxQueue].
	MaxPerTenant int
	// Metrics receives request/queue/tier metrics and is served at
	// /metrics. Nil creates a private registry (still served).
	Metrics *telemetry.Registry
	// Tracer, when non-nil, receives one server.request event per
	// answered query plus server.rejected / server.error events, and a
	// span.end record for every request-phase span (server.request or
	// server.curve root, server.parse/model/admit/sim/respond/point
	// children; see docs/TRACING.md). Requests echo their trace ID in
	// the X-Simserved-Trace header and join a client trace sent via the
	// W3C traceparent header.
	Tracer *telemetry.Tracer
}

// Server is the HTTP serving layer. Build with New, mount Handler.
type Server struct {
	pred    Predictor
	metrics *telemetry.Registry
	tracer  *telemetry.Tracer
	// adm is the simulation tier's two-level (global + per-tenant) token
	// bucket: a request holds its tokens from admission decision to
	// response write — one token per simulation point for curves.
	adm *admitter

	// latMu guards simLatencyS, an EWMA of simulation-tier response time
	// in seconds that prices the Retry-After hint on 429s. Seeded at 1s
	// so a cold server neither promises instant retry nor stalls clients.
	latMu       sync.Mutex
	simLatencyS float64
}

// New returns a Server over the given backend.
func New(cfg Config) *Server {
	if cfg.Predictor == nil {
		panic("server: Config.Predictor is required")
	}
	maxQueue := cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = DefaultMaxQueue
	}
	perTenant := cfg.MaxPerTenant
	if perTenant <= 0 {
		perTenant = (maxQueue + 1) / 2
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Server{
		pred:        cfg.Predictor,
		metrics:     reg,
		tracer:      cfg.Tracer,
		adm:         newAdmitter(maxQueue, perTenant),
		simLatencyS: 1,
	}
}

// Handler returns the server's routing table on a private mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathPredict, s.handlePredict)
	mux.HandleFunc(api.PathCurve, s.handleCurve)
	mux.HandleFunc(api.PathCatalog, s.handleCatalog)
	mux.HandleFunc(api.PathHealthz, s.handleHealthz)
	mux.HandleFunc(api.PathMetrics, s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// maxBodyBytes bounds request bodies; the largest schema is a few
// scalars and a core list, so anything past a few KB is a client bug.
const maxBodyBytes = 1 << 20

// predictParams is one parsed and validated predict request.
type predictParams struct {
	spec   machine.Spec
	req    api.PredictRequest
	class  workload.Class
	cores  int
	tenant string
}

// httpError is a failure that maps to one HTTP status.
type httpError struct {
	status int
	msg    string
}

// parsePredict decodes and validates a predict request body. It performs
// no I/O beyond reading the body and writes nothing, so the handler can
// bracket it in a span and route the error itself.
func (s *Server) parsePredict(r *http.Request) (predictParams, *httpError) {
	var p predictParams
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p.req); err != nil {
		return p, &httpError{http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err)}
	}
	spec, err := machine.ByName(p.req.Machine)
	if err != nil {
		return p, &httpError{http.StatusBadRequest, err.Error()}
	}
	p.spec = spec
	if err := validateWorkload(p.req.Program, p.req.Class); err != nil {
		return p, &httpError{http.StatusBadRequest, err.Error()}
	}
	if herr := s.checkScale(p.req.Scale); herr != nil {
		return p, herr
	}
	p.cores = p.req.Cores
	if p.cores == 0 {
		p.cores = spec.TotalCores()
	}
	if p.cores < 1 || p.cores > spec.TotalCores() {
		return p, &httpError{http.StatusBadRequest, fmt.Sprintf(
			"cores %d out of range for %s (1..%d)", p.cores, spec.Name, spec.TotalCores())}
	}
	p.class = workload.Class(p.req.Class)
	p.tenant = r.Header.Get(api.HeaderTenant)
	return p, nil
}

// checkScale rejects a request naming a different fidelity than this
// instance simulates at (zero means "whatever the server runs").
func (s *Server) checkScale(scale float64) *httpError {
	if scale != 0 && scale != s.pred.Scale() {
		return &httpError{http.StatusBadRequest, fmt.Sprintf(
			"this instance simulates at scale %g, not %g; run one simserved per fidelity (see docs/SERVER.md)",
			s.pred.Scale(), scale)}
	}
	return nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	rt := s.startTrace(w, r)
	rt.beginParse()
	p, herr := s.parsePredict(r)
	rt.endParse(herr == nil)
	if herr != nil {
		s.fail(w, herr.status, herr.msg)
		rt.finish(herr.status, "")
		return
	}
	s.metrics.Counter("simserved_requests_total").Inc()

	// Fast path first: microseconds, no admission, no queueing.
	start := time.Now()
	rt.beginModel()
	pred, reason := s.pred.Analytical(p.spec, p.req.Program, p.class, p.cores)
	rt.endModel(string(reason))
	if reason == "" {
		rt.beginRespond()
		s.respond(w, rt, pred, time.Since(start))
		rt.endRespond()
		rt.finish(http.StatusOK, string(pred.Tier))
		return
	}

	rt.beginAdmit()
	ok, scope := s.adm.Acquire(p.tenant)
	rt.endAdmit(p.tenant, ok, scope)
	if !ok {
		s.shed(w, p, reason, scope)
		rt.finish(http.StatusTooManyRequests, "")
		return
	}
	s.metrics.Gauge("simserved_queue_depth").Set(float64(s.adm.Depth()))
	defer s.release(p.tenant)

	rt.beginSim()
	pred, err := s.pred.Predict(rt.context(r.Context()), p.spec, p.req.Program, p.class, p.cores)
	rt.endSim(err)
	switch {
	case err == nil:
		rt.beginRespond()
		s.respond(w, rt, pred, time.Since(start))
		rt.endRespond()
		rt.finish(http.StatusOK, string(pred.Tier))
	case isCanceled(err):
		s.metrics.Counter("simserved_canceled_total").Inc()
		s.fail(w, StatusClientClosedRequest, "request canceled before the simulation finished")
		rt.finish(StatusClientClosedRequest, "")
	case errors.Is(err, model.ErrBadCores):
		s.fail(w, http.StatusBadRequest, err.Error())
		rt.finish(http.StatusBadRequest, "")
	default:
		s.metrics.Counter("simserved_errors_total").Inc()
		if s.tracer.Enabled() {
			s.tracer.Emit("server.error", "machine", p.spec.Name, "program", p.req.Program,
				"class", p.req.Class, "cores", p.cores, "error", err.Error())
		}
		s.fail(w, http.StatusInternalServerError, err.Error())
		rt.finish(http.StatusInternalServerError, "")
	}
}

// isCanceled reports whether a predict error means the client vanished
// (or its deadline passed) before the simulation finished.
func isCanceled(err error) bool {
	return errors.Is(err, sim.ErrCanceled) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// shed writes the 429 for a request that failed admission: Retry-After
// priced off the simulation-latency EWMA, the rejecting scope, and a
// message naming the full bucket. reason is the analytical tier's decline
// that routed the request here.
func (s *Server) shed(w http.ResponseWriter, p predictParams, reason model.DeclineReason, scope string) {
	s.metrics.Counter("simserved_rejected_total").Inc()
	if scope == api.ScopeTenant {
		s.metrics.Counter("simserved_tenant_rejected_total").Inc()
	}
	if s.tracer.Enabled() {
		s.tracer.Emit("server.rejected", "machine", p.spec.Name, "program", p.req.Program,
			"class", p.req.Class, "cores", p.cores, "decline", string(reason),
			"tenant", p.tenant, "scope", scope, "queue", s.adm.Cap())
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterS()))
	w.Header().Set(api.HeaderAdmissionScope, scope)
	s.fail(w, http.StatusTooManyRequests, s.shedMessage(reason, scope))
}

// shedMessage names the bucket that rejected a simulation and the
// decline that routed the work there.
func (s *Server) shedMessage(reason model.DeclineReason, scope string) string {
	if scope == api.ScopeTenant {
		return fmt.Sprintf(
			"tenant admission bucket full (cap %d simulations per tenant); the analytical tier declined (%s) — retry after the hint or warm this pair",
			s.adm.TenantCap(), reason)
	}
	return fmt.Sprintf(
		"simulation admission queue full (%d in flight); the analytical tier declined (%s) — retry after the hint or warm this pair",
		s.adm.Cap(), reason)
}

// release returns the tenant's admission token.
func (s *Server) release(tenant string) {
	s.adm.Release(tenant)
	s.metrics.Gauge("simserved_queue_depth").Set(float64(s.adm.Depth()))
}

// retryAfterS prices the Retry-After hint from the simulation-latency
// EWMA: roughly one service time, clamped into
// [minRetryAfterS, maxRetryAfterS] so the hint is always a positive
// integer bounded by a minute.
func (s *Server) retryAfterS() int {
	s.latMu.Lock()
	est := s.simLatencyS
	s.latMu.Unlock()
	v := int(math.Ceil(est))
	if v < minRetryAfterS {
		v = minRetryAfterS
	}
	if v > maxRetryAfterS {
		v = maxRetryAfterS
	}
	return v
}

// observeSimLatency folds one simulation-tier response time into the
// Retry-After estimate (EWMA, 20% new sample).
func (s *Server) observeSimLatency(elapsed time.Duration) {
	s.latMu.Lock()
	s.simLatencyS = 0.8*s.simLatencyS + 0.2*elapsed.Seconds()
	s.latMu.Unlock()
}

// Latency histogram bucket bounds (milliseconds), shared by respond (which
// feeds them) and handleHealthz (which reads quantiles off them).
var (
	analyticalBounds = []float64{0.01, 0.1, 1, 10, 100}
	simulateBounds   = []float64{10, 100, 1000, 10000, 100000}
	predictBounds    = []float64{0.01, 0.1, 1, 10, 100, 1000, 10000, 100000}
)

// respond writes one successful prediction with the tier headers and
// records the per-tier latency metrics and the request trace event. The
// request's trace ID (empty when tracing is off) becomes the exemplar on
// each latency histogram bucket, so a /metrics scrape names the slowest
// request per bucket.
func (s *Server) respond(w http.ResponseWriter, rt *requestTrace, pred model.Prediction, elapsed time.Duration) {
	ms := float64(elapsed.Microseconds()) / 1000
	trace := rt.traceID()
	switch pred.Tier {
	case model.TierAnalytical:
		s.metrics.Counter("simserved_analytical_total").Inc()
		s.metrics.Histogram("simserved_analytical_ms", analyticalBounds...).ObserveExemplar(ms, trace)
	case model.TierSimulation:
		s.metrics.Counter("simserved_simulation_total").Inc()
		s.metrics.Histogram("simserved_simulate_ms", simulateBounds...).ObserveExemplar(ms, trace)
		s.observeSimLatency(elapsed)
	}
	s.metrics.Histogram("simserved_predict_ms", predictBounds...).ObserveExemplar(ms, trace)
	if s.tracer.Enabled() {
		s.tracer.Emit("server.request",
			"machine", pred.Machine, "program", pred.Program, "class", string(pred.Class),
			"cores", pred.Cores, "tier", string(pred.Tier), "omega", pred.Omega,
			"elapsed_ms", ms)
	}
	resp := api.PredictResponse{
		Machine:        pred.Machine,
		Program:        pred.Program,
		Class:          string(pred.Class),
		Cores:          pred.Cores,
		Scale:          pred.Scale,
		Omega:          pred.Omega,
		Cycles:         pred.Cycles,
		BaselineCycles: pred.BaselineCycles,
		MakespanCycles: pred.MakespanCycles,
		MCUtilization:  pred.MCUtilization,
		Tier:           string(pred.Tier),
		ConfigHash:     pred.ConfigHash,
		Fit:            fitBody(pred.Fit),
	}
	w.Header().Set(api.HeaderTier, string(pred.Tier))
	w.Header().Set(api.HeaderConfigHash, pred.ConfigHash)
	s.writeJSON(w, http.StatusOK, resp)
}

// fitBody converts a model fit summary to its wire form (nil for nil).
func fitBody(fi *model.FitInfo) *api.Fit {
	if fi == nil {
		return nil
	}
	return &api.Fit{
		Anchors:         fi.Anchors,
		R2:              fi.R2,
		Residual:        fi.Residual,
		SaturationCores: fi.SaturationCores,
	}
}

// validateWorkload checks program and class against the registry without
// constructing the (potentially large) workload.
func validateWorkload(program, class string) error {
	found := false
	for _, name := range workload.Names() {
		if name == program {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown program %q (have %v)", program, workload.Names())
	}
	for _, cl := range workload.ClassesFor(program) {
		if string(cl) == class {
			return nil
		}
	}
	return fmt.Errorf("program %s has no class %q (have %v)", program, class, workload.ClassesFor(program))
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := api.CatalogResponse{Scale: s.pred.Scale()}
	for _, spec := range machine.All() {
		kind := "NUMA"
		if spec.UMA() {
			kind = "UMA"
		}
		resp.Machines = append(resp.Machines, api.CatalogMachine{
			Name:           spec.Name,
			Kind:           kind,
			Sockets:        spec.Sockets,
			CoresPerSocket: spec.CoresPerSocket,
			TotalCores:     spec.TotalCores(),
		})
	}
	for _, name := range workload.Names() {
		classes := workload.ClassesFor(name)
		cp := api.CatalogProgram{Name: name, Description: workload.Describe(name)}
		for _, cl := range classes {
			cp.Classes = append(cp.Classes, string(cl))
		}
		resp.Programs = append(resp.Programs, cp)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.metrics.Histogram("simserved_predict_ms", predictBounds...)
	s.writeJSON(w, http.StatusOK, api.HealthzResponse{
		Status:       "ok",
		Scale:        s.pred.Scale(),
		Fits:         s.pred.FitCount(),
		CachedRuns:   s.pred.CachedRuns(),
		QueueDepth:   s.adm.Depth(),
		QueueCap:     s.adm.Cap(),
		TenantCap:    s.adm.TenantCap(),
		Tenants:      s.adm.Tenants(),
		PredictP50Ms: quantileOrZero(h, 0.50),
		PredictP99Ms: quantileOrZero(h, 0.99),
	})
}

// quantileOrZero is Histogram.Quantile with the empty-histogram NaN mapped
// to 0, since NaN is not representable in JSON.
func quantileOrZero(h *telemetry.Histogram, q float64) float64 {
	v := h.Quantile(q)
	if math.IsNaN(v) {
		return 0
	}
	return v
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.metrics.WritePrometheus(w)
}

// fail writes one JSON error body with the given status.
func (s *Server) fail(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, api.Error{Error: msg})
}

// writeJSON writes any body as JSON with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", api.ContentTypeJSON)
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}
