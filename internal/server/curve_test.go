package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// stubPredictor is a hand-wired Predictor for curve-handler tests. The
// fill-first activation order of the presets makes per-point saturation
// unreachable (the per-socket occupancy never exceeds the fitted range),
// so a mixed analytical/simulation curve cannot be provoked through the
// real model; the stub declines exactly the cores in declineSet and
// gates its simulation tier on a channel so tests can observe what was
// flushed before any simulation completed.
type stubPredictor struct {
	declineSet map[int]bool
	gate       chan struct{}         // PredictStream blocks here when non-nil
	simErr     func(cores int) error // per-point simulation failure when non-nil
}

func (s *stubPredictor) Scale() float64  { return 1 }
func (s *stubPredictor) FitCount() int   { return 1 }
func (s *stubPredictor) CachedRuns() int { return 0 }

func (s *stubPredictor) pred(spec machine.Spec, program string, class workload.Class, cores int, tier model.Tier) model.Prediction {
	return model.Prediction{
		Machine: spec.Name, Program: program, Class: class, Cores: cores, Scale: 1,
		Omega: float64(cores) / 10, Cycles: float64(1000 + cores), BaselineCycles: 1000,
		MakespanCycles: float64(1000+cores) / float64(cores),
		Tier:           tier, ConfigHash: "stubhash",
	}
}

func (s *stubPredictor) Analytical(spec machine.Spec, program string, class workload.Class, cores int) (model.Prediction, model.DeclineReason) {
	if s.declineSet[cores] {
		return model.Prediction{}, model.DeclineNoFit
	}
	return s.pred(spec, program, class, cores, model.TierAnalytical), ""
}

func (s *stubPredictor) AnalyticalCurve(spec machine.Spec, program string, class workload.Class, cores []int) ([]model.Prediction, []model.DeclineReason) {
	preds := make([]model.Prediction, len(cores))
	reasons := make([]model.DeclineReason, len(cores))
	for i, n := range cores {
		preds[i], reasons[i] = s.Analytical(spec, program, class, n)
	}
	return preds, reasons
}

func (s *stubPredictor) Predict(ctx context.Context, spec machine.Spec, program string, class workload.Class, cores int) (model.Prediction, error) {
	if err := ctx.Err(); err != nil {
		return model.Prediction{}, err
	}
	return s.pred(spec, program, class, cores, model.TierSimulation), nil
}

func (s *stubPredictor) PredictStream(ctx context.Context, spec machine.Spec, program string, class workload.Class, cores []int, fn func(i int, pred model.Prediction, err error)) {
	if s.gate != nil {
		<-s.gate
	}
	for i, n := range cores {
		if err := ctx.Err(); err != nil {
			fn(i, model.Prediction{}, err)
			continue
		}
		if s.simErr != nil {
			if err := s.simErr(n); err != nil {
				fn(i, model.Prediction{}, err)
				continue
			}
		}
		fn(i, s.pred(spec, program, class, n, model.TierSimulation), nil)
	}
}

func newStubServer(stub *stubPredictor, maxQueue int) *Server {
	return New(Config{Predictor: stub, MaxQueue: maxQueue, Metrics: telemetry.NewRegistry()})
}

func postCurve(t testing.TB, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, api.PathCurve, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeCurve(t *testing.T, w *httptest.ResponseRecorder) api.CurveResponse {
	t.Helper()
	var resp api.CurveResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad curve body %q: %v", w.Body.String(), err)
	}
	return resp
}

// TestCurveBatchedMixedTiers drives a mixed curve through the batched
// mode: odd cores answer analytically, even cores fall to the stub's
// simulation tier, and the response holds every point in request order.
func TestCurveBatchedMixedTiers(t *testing.T) {
	stub := &stubPredictor{declineSet: map[int]bool{2: true, 4: true, 6: true, 8: true}}
	s := newStubServer(stub, 8)
	h := s.Handler()

	w := postCurve(t, h, `{"machine":"IntelUMA8","program":"CG","class":"W"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != api.ContentTypeJSON {
		t.Errorf("Content-Type = %q, want %q", ct, api.ContentTypeJSON)
	}
	resp := decodeCurve(t, w)
	if len(resp.Points) != 8 {
		t.Fatalf("points = %d, want the full 1..8 sweep", len(resp.Points))
	}
	for i, pt := range resp.Points {
		if pt.Cores != i+1 {
			t.Errorf("point %d cores = %d, want request order %d", i, pt.Cores, i+1)
		}
		wantTier := api.TierAnalytical
		if stub.declineSet[pt.Cores] {
			wantTier = api.TierSimulation
		}
		if pt.Tier != wantTier {
			t.Errorf("cores %d tier = %q, want %q", pt.Cores, pt.Tier, wantTier)
		}
		if pt.Error != "" {
			t.Errorf("cores %d error = %q, want none", pt.Cores, pt.Error)
		}
	}
	sum := resp.Summary
	if sum.Points != 8 || sum.Analytical != 4 || sum.Simulation != 4 || sum.Shed != 0 || sum.Failed != 0 {
		t.Errorf("summary = %+v, want 8 points split 4/4", sum)
	}
	if s.adm.Depth() != 0 {
		t.Errorf("admission depth = %d after curve, want 0 (tokens released)", s.adm.Depth())
	}
}

// TestCurveStreamingAnalyticalFirst pins the tentpole ordering contract:
// with the stub's simulation tier gated shut, every analytical point is
// already flushed to the client; the simulation points and the summary
// arrive only after the gate opens.
func TestCurveStreamingAnalyticalFirst(t *testing.T) {
	stub := &stubPredictor{
		declineSet: map[int]bool{2: true, 4: true, 6: true, 8: true},
		gate:       make(chan struct{}),
	}
	s := newStubServer(stub, 8)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL+api.PathCurve,
		strings.NewReader(`{"machine":"IntelUMA8","program":"CG","class":"W"}`))
	req.Header.Set("Accept", api.ContentTypeNDJSON)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != api.ContentTypeNDJSON {
		t.Fatalf("Content-Type = %q, want %q", ct, api.ContentTypeNDJSON)
	}

	// With the gate closed, exactly the four analytical frames are
	// readable; a blocked Read here would mean the handler buffered the
	// cheap points behind the expensive ones.
	sc := bufio.NewScanner(resp.Body)
	var analytical []api.CurveFrame
	done := make(chan error, 1)
	go func() {
		for len(analytical) < 4 {
			if !sc.Scan() {
				done <- fmt.Errorf("stream ended after %d frames: %v", len(analytical), sc.Err())
				return
			}
			var fr api.CurveFrame
			if err := json.Unmarshal(sc.Bytes(), &fr); err != nil {
				done <- fmt.Errorf("bad frame %q: %v", sc.Text(), err)
				return
			}
			analytical = append(analytical, fr)
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("analytical frames not flushed while simulation tier blocked")
	}
	for _, fr := range analytical {
		if fr.Point == nil || fr.Point.Tier != api.TierAnalytical {
			t.Fatalf("pre-gate frame %+v, want analytical point", fr)
		}
	}

	close(stub.gate)
	var simFrames, summaries int
	for sc.Scan() {
		var fr api.CurveFrame
		if err := json.Unmarshal(sc.Bytes(), &fr); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		switch {
		case fr.Point != nil:
			if fr.Point.Tier != api.TierSimulation {
				t.Errorf("post-gate point tier = %q, want simulation", fr.Point.Tier)
			}
			simFrames++
		case fr.Summary != nil:
			summaries++
			if fr.Summary.Points != 8 || fr.Summary.Analytical != 4 || fr.Summary.Simulation != 4 {
				t.Errorf("summary = %+v, want 8 points split 4/4", fr.Summary)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if simFrames != 4 || summaries != 1 {
		t.Errorf("post-gate frames: %d sim + %d summaries, want 4 + 1 terminal summary", simFrames, summaries)
	}
}

// TestCurveValidation sweeps the 400 family plus the 405.
func TestCurveValidation(t *testing.T) {
	s := newStubServer(&stubPredictor{}, 4)
	h := s.Handler()
	cases := []struct {
		name, body string
		wantIn     string
	}{
		{"bad json", `{`, "invalid request body"},
		{"unknown field", `{"machine":"IntelUMA8","program":"CG","class":"W","corez":[1]}`, "unknown field"},
		{"bad machine", `{"machine":"Cray1","program":"CG","class":"W"}`, "unknown preset"},
		{"bad program", `{"machine":"IntelUMA8","program":"QQ","class":"W"}`, "unknown program"},
		{"cores out of range", `{"machine":"IntelUMA8","program":"CG","class":"W","cores":[1,9]}`, "out of range"},
		{"cores below one", `{"machine":"IntelUMA8","program":"CG","class":"W","cores":[0]}`, "out of range"},
		{"duplicate cores", `{"machine":"IntelUMA8","program":"CG","class":"W","cores":[2,3,2]}`, "duplicate cores"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postCurve(t, h, tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", w.Code)
			}
			var e api.Error
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
				t.Fatalf("non-JSON error body %q", w.Body.String())
			}
			if !strings.Contains(e.Error, tc.wantIn) {
				t.Errorf("error %q, want substring %q", e.Error, tc.wantIn)
			}
		})
	}

	req := httptest.NewRequest(http.MethodGet, api.PathCurve, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", w.Code)
	}
}

// TestCurveWholeRequestShed: every point needs simulation and no token
// is available — the whole curve is one 429, same as a shed predict.
func TestCurveWholeRequestShed(t *testing.T) {
	stub := &stubPredictor{declineSet: map[int]bool{1: true, 2: true, 3: true, 4: true, 5: true, 6: true, 7: true, 8: true}}
	s := newStubServer(stub, 1)
	ok, _ := s.adm.Acquire("hog")
	if !ok {
		t.Fatal("setup: could not occupy the queue")
	}
	defer s.adm.Release("hog")

	w := postCurve(t, s.Handler(), `{"machine":"IntelUMA8","program":"CG","class":"W"}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := w.Header().Get(api.HeaderAdmissionScope); got != api.ScopeGlobal {
		t.Errorf("scope header %q, want %q", got, api.ScopeGlobal)
	}
}

// TestCurvePartialShed: one token for four simulation points — the
// curve still answers 200, carrying the analytical points, one
// simulated point and per-point shed errors for the rest.
func TestCurvePartialShed(t *testing.T) {
	stub := &stubPredictor{declineSet: map[int]bool{2: true, 4: true, 6: true, 8: true}}
	s := newStubServer(stub, 1)
	w := postCurve(t, s.Handler(), `{"machine":"IntelUMA8","program":"CG","class":"W"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeCurve(t, w)
	sum := resp.Summary
	if sum.Analytical != 4 || sum.Simulation != 1 || sum.Shed != 3 || sum.Failed != 0 {
		t.Fatalf("summary = %+v, want 4 analytical / 1 simulated / 3 shed", sum)
	}
	var shedErrs int
	for _, pt := range resp.Points {
		if strings.HasPrefix(pt.Error, "shed (") {
			shedErrs++
		}
	}
	if shedErrs != 3 {
		t.Errorf("shed point errors = %d, want 3", shedErrs)
	}
	if s.adm.Depth() != 0 {
		t.Errorf("admission depth = %d after curve, want 0", s.adm.Depth())
	}
}

// TestCurveCanceled: a batched client that vanished before its
// simulation points settled gets the 499.
func TestCurveCanceled(t *testing.T) {
	stub := &stubPredictor{declineSet: map[int]bool{1: true, 2: true}}
	s := newStubServer(stub, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, api.PathCurve,
		strings.NewReader(`{"machine":"IntelUMA8","program":"CG","class":"W","cores":[1,2]}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != StatusClientClosedRequest {
		t.Fatalf("status %d: %s, want %d", w.Code, w.Body.String(), StatusClientClosedRequest)
	}
	if s.adm.Depth() != 0 {
		t.Errorf("admission depth = %d after cancel, want 0", s.adm.Depth())
	}
}

// TestCurveFailedPoint: a simulation failure that is not a cancellation
// stays a per-point error; the rest of the curve answers.
func TestCurveFailedPoint(t *testing.T) {
	stub := &stubPredictor{
		declineSet: map[int]bool{2: true, 3: true},
		simErr: func(cores int) error {
			if cores == 3 {
				return fmt.Errorf("injected failure")
			}
			return nil
		},
	}
	s := newStubServer(stub, 4)
	w := postCurve(t, s.Handler(), `{"machine":"IntelUMA8","program":"CG","class":"W","cores":[1,2,3]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeCurve(t, w)
	if resp.Summary.Failed != 1 || resp.Summary.Simulation != 1 || resp.Summary.Analytical != 1 {
		t.Fatalf("summary = %+v, want 1 analytical / 1 simulated / 1 failed", resp.Summary)
	}
	if got := resp.Points[2].Error; got != "injected failure" {
		t.Errorf("failed point error = %q", got)
	}
}

// TestCurveEquivalenceAnalytical pins the wire contract: a warmed
// curve's points carry exactly the numbers N individual predicts would,
// point for point.
func TestCurveEquivalenceAnalytical(t *testing.T) {
	if testing.Short() {
		t.Skip("warms by simulation")
	}
	s, p := newTestServer(t, 0.05, 0)
	spec, _ := machine.ByName("IntelUMA8")
	if _, err := p.Warm(context.Background(), spec, "CG", "W"); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	w := postCurve(t, h, `{"machine":"IntelUMA8","program":"CG","class":"W"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("curve status %d: %s", w.Code, w.Body.String())
	}
	curve := decodeCurve(t, w)
	if curve.Summary.Analytical != spec.TotalCores() {
		t.Fatalf("summary = %+v, want all %d points analytical", curve.Summary, spec.TotalCores())
	}
	if curve.Summary.Fit == nil {
		t.Error("analytical curve summary without fit")
	}
	for _, pt := range curve.Points {
		pw := postPredict(t, h, fmt.Sprintf(`{"machine":"IntelUMA8","program":"CG","class":"W","cores":%d}`, pt.Cores))
		if pw.Code != http.StatusOK {
			t.Fatalf("predict cores=%d status %d: %s", pt.Cores, pw.Code, pw.Body.String())
		}
		single := decodePredict(t, pw)
		want := api.CurvePoint{
			Cores:          single.Cores,
			Omega:          single.Omega,
			Cycles:         single.Cycles,
			BaselineCycles: single.BaselineCycles,
			MakespanCycles: single.MakespanCycles,
			MCUtilization:  single.MCUtilization,
			Tier:           single.Tier,
			ConfigHash:     single.ConfigHash,
		}
		got, wantJSON := mustJSON(t, pt), mustJSON(t, want)
		if got != wantJSON {
			t.Errorf("cores %d: curve point %s != single predict %s", pt.Cores, got, wantJSON)
		}
	}
}

// TestCurveEquivalenceSimulation is the same contract for the
// simulation tier: with the confidence gate pinned shut (MinR2 = 2 is
// unsatisfiable) every point simulates, and the curve's numbers match N
// individual predicts, which replay from the run cache.
func TestCurveEquivalenceSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates")
	}
	r := experiments.NewRunner(workload.Tuning{RefScale: 0.05})
	p := model.New(r)
	p.MinR2 = 2
	s := New(Config{Predictor: p, Metrics: telemetry.NewRegistry()})
	h := s.Handler()

	w := postCurve(t, h, `{"machine":"IntelUMA8","program":"EP","class":"W","cores":[1,2,3]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("curve status %d: %s", w.Code, w.Body.String())
	}
	curve := decodeCurve(t, w)
	if curve.Summary.Simulation != 3 {
		t.Fatalf("summary = %+v, want all 3 points simulated", curve.Summary)
	}
	for _, pt := range curve.Points {
		pw := postPredict(t, h, fmt.Sprintf(`{"machine":"IntelUMA8","program":"EP","class":"W","cores":%d}`, pt.Cores))
		if pw.Code != http.StatusOK {
			t.Fatalf("predict cores=%d status %d: %s", pt.Cores, pw.Code, pw.Body.String())
		}
		single := decodePredict(t, pw)
		if single.Tier != api.TierSimulation {
			t.Fatalf("cores %d predict tier = %q, want simulation", pt.Cores, single.Tier)
		}
		if pt.Omega != single.Omega || pt.Cycles != single.Cycles ||
			pt.MakespanCycles != single.MakespanCycles || pt.ConfigHash != single.ConfigHash {
			t.Errorf("cores %d: curve %+v != predict %+v", pt.Cores, pt, single)
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
