package server

import (
	"sync"

	"repro/internal/api"
)

// admitter is the simulation tier's two-level token bucket. A request
// holds one global token and one token of its tenant's bucket from
// admission decision to response write. The per-tenant cap is the
// fairness mechanism: a tenant that floods the simulation tier exhausts
// its own bucket and starts shedding with 429s while the global bucket —
// and so every other tenant's share — still has room. Tenants are
// identified by the X-Simserved-Tenant request header; the empty tenant
// is a tenant like any other, so anonymous traffic cannot starve named
// tenants either.
//
// The global bucket is a channel (its length is the exported queue
// depth); per-tenant holds are plain counters under a mutex, deleted at
// zero so the tenant map stays bounded by the number of tenants actually
// in flight.
type admitter struct {
	global    chan struct{}
	perTenant int

	mu    sync.Mutex
	inUse map[string]int
}

// newAdmitter builds an admitter with the given global and per-tenant
// caps. perTenant is clamped into [1, global].
func newAdmitter(global, perTenant int) *admitter {
	if perTenant < 1 {
		perTenant = 1
	}
	if perTenant > global {
		perTenant = global
	}
	return &admitter{
		global:    make(chan struct{}, global),
		perTenant: perTenant,
		inUse:     make(map[string]int),
	}
}

// Acquire takes one token for tenant, or reports which scope is full.
// It never blocks: admission control sheds instead of queueing.
func (a *admitter) Acquire(tenant string) (ok bool, scope string) {
	if !a.reserveTenant(tenant) {
		return false, api.ScopeTenant
	}
	select {
	case a.global <- struct{}{}:
		return true, ""
	default:
		a.releaseTenant(tenant)
		return false, api.ScopeGlobal
	}
}

// Release returns tenant's token.
func (a *admitter) Release(tenant string) {
	<-a.global
	a.releaseTenant(tenant)
}

// reserveTenant takes one slot of tenant's bucket, or reports it full.
func (a *admitter) reserveTenant(tenant string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inUse[tenant] >= a.perTenant {
		return false
	}
	a.inUse[tenant]++
	return true
}

// releaseTenant returns one slot of tenant's bucket.
func (a *admitter) releaseTenant(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.dec(tenant)
}

// dec decrements a tenant's hold count, deleting the entry at zero.
// Callers hold a.mu.
func (a *admitter) dec(tenant string) {
	if a.inUse[tenant] <= 1 {
		delete(a.inUse, tenant)
	} else {
		a.inUse[tenant]--
	}
}

// Depth is the number of tokens currently held instance-wide.
func (a *admitter) Depth() int { return len(a.global) }

// Cap is the global bucket capacity.
func (a *admitter) Cap() int { return cap(a.global) }

// TenantCap is the per-tenant bucket capacity.
func (a *admitter) TenantCap() int { return a.perTenant }

// Tenants is the number of tenants currently holding at least one token.
func (a *admitter) Tenants() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.inUse)
}

// Held reports how many tokens tenant currently holds (tests and
// /healthz diagnostics).
func (a *admitter) Held(tenant string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse[tenant]
}
