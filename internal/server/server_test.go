package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/api"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// newTestServer builds a predictor over a fresh runner at the given scale
// and mounts the handler. Confidence checks are disabled so any stored
// fit serves analytically.
func newTestServer(t testing.TB, scale float64, maxQueue int) (*Server, *model.Predictor) {
	t.Helper()
	r := experiments.NewRunner(workload.Tuning{RefScale: scale})
	p := model.New(r)
	p.MinR2 = -1
	p.MaxResidual = 1e9
	return New(Config{Predictor: p, MaxQueue: maxQueue, Metrics: telemetry.NewRegistry()}), p
}

// postPredict round-trips one predict request through the handler.
func postPredict(t testing.TB, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodePredict(t *testing.T, w *httptest.ResponseRecorder) api.PredictResponse {
	t.Helper()
	var resp api.PredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response body %q: %v", w.Body.String(), err)
	}
	return resp
}

// TestPredictAnalyticalHit warms one pair and checks a non-anchor query
// is answered from the fast path with the tier header and fit summary.
func TestPredictAnalyticalHit(t *testing.T) {
	if testing.Short() {
		t.Skip("warms by simulation")
	}
	s, p := newTestServer(t, 0.05, 0)
	spec, _ := machine.ByName("IntelUMA8")
	if _, err := p.Warm(context.Background(), spec, "CG", "W"); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	w := postPredict(t, h, `{"machine":"IntelUMA8","program":"CG","class":"W","cores":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Simserved-Tier"); got != "analytical" {
		t.Errorf("X-Simserved-Tier = %q, want analytical", got)
	}
	resp := decodePredict(t, w)
	if resp.Tier != "analytical" || resp.Fit == nil {
		t.Errorf("body tier=%q fit=%v, want analytical with fit", resp.Tier, resp.Fit)
	}
	if len(resp.ConfigHash) != 64 {
		t.Errorf("config_hash %q is not a SHA-256 hex", resp.ConfigHash)
	}
	if got := w.Header().Get("X-Simserved-Config-Hash"); got != resp.ConfigHash {
		t.Errorf("header hash %q != body hash %q", got, resp.ConfigHash)
	}
	if resp.Omega < 0 {
		t.Errorf("omega = %g, want >= 0", resp.Omega)
	}

	// cores omitted means the whole machine.
	w = postPredict(t, h, `{"machine":"IntelUMA8","program":"CG","class":"W"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("default-cores status %d: %s", w.Code, w.Body.String())
	}
	if resp := decodePredict(t, w); resp.Cores != spec.TotalCores() {
		t.Errorf("default cores = %d, want %d", resp.Cores, spec.TotalCores())
	}
}

// TestPredictSimulationFallback checks a cold pair falls through to the
// simulation tier and reports it in header and body.
func TestPredictSimulationFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s, _ := newTestServer(t, 0.05, 0)
	w := postPredict(t, s.Handler(), `{"machine":"IntelUMA8","program":"EP","class":"W","cores":2}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Simserved-Tier"); got != "simulation" {
		t.Errorf("X-Simserved-Tier = %q, want simulation", got)
	}
	resp := decodePredict(t, w)
	if resp.Tier != "simulation" || resp.Fit != nil {
		t.Errorf("body tier=%q fit=%v, want simulation without fit", resp.Tier, resp.Fit)
	}
	if resp.MakespanCycles <= 0 || resp.Cycles <= 0 {
		t.Errorf("non-positive measurements: cycles=%g makespan=%g", resp.Cycles, resp.MakespanCycles)
	}
}

// TestPredictValidation drives every 4xx path of the predict handler.
func TestPredictValidation(t *testing.T) {
	s, _ := newTestServer(t, 0.05, 0)
	h := s.Handler()

	cases := []struct {
		name string
		body string
		want int
		frag string
	}{
		{"bad json", `{`, http.StatusBadRequest, "invalid request body"},
		{"unknown field", `{"machine":"IntelUMA8","program":"CG","class":"W","core":3}`, http.StatusBadRequest, "unknown field"},
		{"unknown machine", `{"machine":"Cray1","program":"CG","class":"W"}`, http.StatusBadRequest, "Cray1"},
		{"unknown program", `{"machine":"IntelUMA8","program":"LU","class":"W"}`, http.StatusBadRequest, "unknown program"},
		{"unknown class", `{"machine":"IntelUMA8","program":"CG","class":"Z"}`, http.StatusBadRequest, "no class"},
		{"cores too high", `{"machine":"IntelUMA8","program":"CG","class":"W","cores":99}`, http.StatusBadRequest, "out of range"},
		{"cores negative", `{"machine":"IntelUMA8","program":"CG","class":"W","cores":-1}`, http.StatusBadRequest, "out of range"},
		{"scale mismatch", `{"machine":"IntelUMA8","program":"CG","class":"W","cores":2,"scale":0.5}`, http.StatusBadRequest, "scale"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postPredict(t, h, tc.body)
			if w.Code != tc.want {
				t.Fatalf("status %d, want %d: %s", w.Code, tc.want, w.Body.String())
			}
			var e api.Error
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
				t.Fatalf("error body is not JSON: %q", w.Body.String())
			}
			if !strings.Contains(e.Error, tc.frag) {
				t.Errorf("error %q does not mention %q", e.Error, tc.frag)
			}
		})
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/predict", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", w.Code)
	}
	if got := w.Header().Get("Allow"); got != http.MethodPost {
		t.Errorf("Allow = %q, want POST", got)
	}
}

// TestPredictCanceled checks a client that is already gone gets the 499
// without the server burning a simulation.
func TestPredictCanceled(t *testing.T) {
	s, _ := newTestServer(t, 0.05, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/predict",
		strings.NewReader(`{"machine":"IntelUMA8","program":"CG","class":"W","cores":2}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != StatusClientClosedRequest {
		t.Fatalf("status %d, want %d: %s", w.Code, StatusClientClosedRequest, w.Body.String())
	}
}

// TestAdmissionFull fills the simulation-tier admission queue and checks
// the next cold request is shed with 429 + Retry-After instead of queuing.
func TestAdmissionFull(t *testing.T) {
	s, _ := newTestServer(t, 0.05, 1)
	ok, _ := s.adm.Acquire("other") // occupy the only global token
	if !ok {
		t.Fatal("could not occupy the admission token")
	}
	defer s.adm.Release("other")

	w := postPredict(t, s.Handler(), `{"machine":"IntelUMA8","program":"CG","class":"W","cores":2}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := w.Header().Get(api.HeaderAdmissionScope); got != api.ScopeGlobal {
		t.Errorf("scope header = %q, want %q", got, api.ScopeGlobal)
	}
	var e api.Error
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body is not JSON: %q", w.Body.String())
	}
	if !strings.Contains(e.Error, "no_fit") {
		t.Errorf("shed response %q does not carry the decline reason", e.Error)
	}
}

// TestCatalogAndHealthz checks the two GET surfaces.
func TestCatalogAndHealthz(t *testing.T) {
	s, _ := newTestServer(t, 0.05, 0)
	h := s.Handler()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/catalog", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("catalog status %d", w.Code)
	}
	var cat api.CatalogResponse
	if err := json.Unmarshal(w.Body.Bytes(), &cat); err != nil {
		t.Fatal(err)
	}
	if cat.Scale != 0.05 || len(cat.Machines) == 0 || len(cat.Programs) == 0 {
		t.Errorf("catalog scale=%g machines=%d programs=%d", cat.Scale, len(cat.Machines), len(cat.Programs))
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/catalog", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST catalog status %d, want 405", w.Code)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("healthz status %d", w.Code)
	}
	var hz api.HealthzResponse
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.QueueCap != DefaultMaxQueue {
		t.Errorf("healthz = %+v", hz)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
}

// TestConcurrentClients hammers the handler from many goroutines mixing
// analytical hits, catalog reads and health checks; run under -race this
// is the server's data-race certificate.
func TestConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("warms by simulation")
	}
	s, p := newTestServer(t, 0.05, 4)
	spec, _ := machine.ByName("IntelUMA8")
	if _, err := p.Warm(context.Background(), spec, "CG", "W"); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				switch j % 3 {
				case 0:
					body := fmt.Sprintf(`{"machine":"IntelUMA8","program":"CG","class":"W","cores":%d}`, 1+(i+j)%spec.TotalCores())
					w := postPredict(t, h, body)
					if w.Code != http.StatusOK {
						errs <- fmt.Errorf("predict status %d: %s", w.Code, w.Body.String())
						return
					}
				case 1:
					w := httptest.NewRecorder()
					h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
					if w.Code != http.StatusOK {
						errs <- fmt.Errorf("healthz status %d", w.Code)
						return
					}
				default:
					w := httptest.NewRecorder()
					h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
					if w.Code != http.StatusOK {
						errs <- fmt.Errorf("metrics status %d", w.Code)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
