package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// postAs round-trips one predict request under a tenant header.
func postAs(t testing.TB, h http.Handler, tenant, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
	if tenant != "" {
		req.Header.Set(api.HeaderTenant, tenant)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestAdmitterSemantics is the white-box contract of the two-level token
// bucket: per-tenant caps bind before the global one, releases restore
// both levels, and the tenant map stays bounded (entries vanish at zero).
func TestAdmitterSemantics(t *testing.T) {
	a := newAdmitter(3, 2)
	if a.Cap() != 3 || a.TenantCap() != 2 {
		t.Fatalf("caps = %d/%d, want 3/2", a.Cap(), a.TenantCap())
	}

	mustAcquire := func(tenant string) {
		t.Helper()
		if ok, scope := a.Acquire(tenant); !ok {
			t.Fatalf("Acquire(%q) refused with scope %q", tenant, scope)
		}
	}
	mustAcquire("a")
	mustAcquire("a")
	if ok, scope := a.Acquire("a"); ok || scope != api.ScopeTenant {
		t.Fatalf("third a-token: ok=%v scope=%q, want tenant-scope refusal", ok, scope)
	}
	// The tenant refusal must not have consumed global capacity.
	mustAcquire("b")
	if ok, scope := a.Acquire("b"); ok || scope != api.ScopeGlobal {
		t.Fatalf("fourth token: ok=%v scope=%q, want global-scope refusal", ok, scope)
	}
	if a.Depth() != 3 || a.Held("a") != 2 || a.Held("b") != 1 || a.Tenants() != 2 {
		t.Fatalf("depth=%d a=%d b=%d tenants=%d", a.Depth(), a.Held("a"), a.Held("b"), a.Tenants())
	}

	a.Release("a")
	mustAcquire("b") // freed global token is available to any tenant
	a.Release("a")
	a.Release("b")
	a.Release("b")
	if a.Depth() != 0 || a.Tenants() != 0 {
		t.Fatalf("after draining: depth=%d tenants=%d, want 0/0", a.Depth(), a.Tenants())
	}

	// perTenant clamps into [1, global].
	if a := newAdmitter(4, 99); a.TenantCap() != 4 {
		t.Errorf("oversized per-tenant cap = %d, want clamped to 4", a.TenantCap())
	}
	if a := newAdmitter(4, -1); a.TenantCap() != 1 {
		t.Errorf("negative per-tenant cap = %d, want clamped to 1", a.TenantCap())
	}
}

// TestTenantFairness is the ISSUE's fairness proof: with a global queue of
// 4 and a per-tenant cap of 2, a tenant flooding 8 concurrent simulations
// holds exactly its bucket's share while a second tenant still gets both
// of its requests admitted; overflow is shed with the correct scope header.
func TestTenantFairness(t *testing.T) {
	r := experiments.NewRunner(workload.Tuning{RefScale: 0.05})
	r.Jobs = 8
	gate := make(chan struct{})
	r.FaultFn = func(p experiments.FaultPoint, _ experiments.RunKey) error {
		if p != experiments.FaultBeforeSim {
			return nil
		}
		<-gate // hold the admission token until the test releases it
		return fmt.Errorf("fairness gate: %w", context.Canceled)
	}
	p := model.New(r)
	p.MinR2 = -1
	p.MaxResidual = 1e9
	s := New(Config{Predictor: p, MaxQueue: 4, MaxPerTenant: 2, Metrics: telemetry.NewRegistry()})
	h := s.Handler()

	type result struct {
		tenant string
		code   int
		scope  string
	}
	results := make(chan result, 16)
	fire := func(tenant, body string) {
		go func() {
			w := postAs(t, h, tenant, body)
			results <- result{tenant, w.Code, w.Header().Get(api.HeaderAdmissionScope)}
		}()
	}

	// Tenant A floods: 8 cold simulations with distinct core counts (so no
	// two coalesce in the runner). Only 2 may hold tokens at once.
	for cores := 1; cores <= 8; cores++ {
		fire("team-a", fmt.Sprintf(`{"machine":"IntelUMA8","program":"EP","class":"W","cores":%d}`, cores))
	}
	waitFor(t, "tenant A at its cap", func() bool { return s.adm.Held("team-a") == 2 })

	// Six of A's requests must already have been shed at tenant scope.
	sheddedA := 0
	for i := 0; i < 6; i++ {
		res := <-results
		if res.code != http.StatusTooManyRequests {
			t.Fatalf("flood response %d: status %d, want 429", i, res.code)
		}
		if res.scope != api.ScopeTenant {
			t.Errorf("flood response %d: scope %q, want %q", i, res.scope, api.ScopeTenant)
		}
		sheddedA++
	}

	// Tenant B's fair share is still free: both of its requests admit.
	fire("team-b", `{"machine":"IntelUMA8","program":"CG","class":"W","cores":1}`)
	fire("team-b", `{"machine":"IntelUMA8","program":"CG","class":"W","cores":2}`)
	waitFor(t, "tenant B admitted both", func() bool { return s.adm.Held("team-b") == 2 })
	if depth := s.adm.Depth(); depth != 4 {
		t.Fatalf("queue depth = %d, want 4 (2 per tenant)", depth)
	}

	// Now both scopes are exhausted, and the refusal names the right one:
	// B hits its own bucket, a third tenant hits the global queue.
	if w := postAs(t, h, "team-b", `{"machine":"IntelUMA8","program":"CG","class":"W","cores":3}`); w.Code != http.StatusTooManyRequests || w.Header().Get(api.HeaderAdmissionScope) != api.ScopeTenant {
		t.Errorf("B overflow: status %d scope %q, want 429/%s", w.Code, w.Header().Get(api.HeaderAdmissionScope), api.ScopeTenant)
	}
	if w := postAs(t, h, "team-c", `{"machine":"IntelUMA8","program":"CG","class":"W","cores":4}`); w.Code != http.StatusTooManyRequests || w.Header().Get(api.HeaderAdmissionScope) != api.ScopeGlobal {
		t.Errorf("C arrival: status %d scope %q, want 429/%s", w.Code, w.Header().Get(api.HeaderAdmissionScope), api.ScopeGlobal)
	}

	// Release the gate: the four admitted requests resolve as 499s (their
	// injected fault is a cancellation) and return every token.
	close(gate)
	for i := 0; i < 4; i++ {
		res := <-results
		if res.code != StatusClientClosedRequest {
			t.Errorf("admitted request (%s): status %d, want %d", res.tenant, res.code, StatusClientClosedRequest)
		}
	}
	if sheddedA != 6 {
		t.Errorf("tenant A shed %d, want 6", sheddedA)
	}
	if s.adm.Depth() != 0 || s.adm.Tenants() != 0 {
		t.Errorf("after drain: depth=%d tenants=%d, want 0/0", s.adm.Depth(), s.adm.Tenants())
	}
}

// TestRetryAfterSemantics pins the 429 hint contract: the header is an
// integer number of seconds inside [minRetryAfterS, maxRetryAfterS],
// tracking the simulation-latency EWMA.
func TestRetryAfterSemantics(t *testing.T) {
	s, _ := newTestServer(t, 0.05, 1)
	ok, _ := s.adm.Acquire("hog")
	if !ok {
		t.Fatal("could not occupy the admission token")
	}
	defer s.adm.Release("hog")
	h := s.Handler()

	shed := func() int {
		t.Helper()
		w := postAs(t, h, "", `{"machine":"IntelUMA8","program":"CG","class":"W","cores":2}`)
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429: %s", w.Code, w.Body.String())
		}
		ra := w.Header().Get("Retry-After")
		v, err := strconv.Atoi(ra)
		if err != nil {
			t.Fatalf("Retry-After %q is not an integer: %v", ra, err)
		}
		if v < minRetryAfterS || v > maxRetryAfterS {
			t.Fatalf("Retry-After %d outside [%d, %d]", v, minRetryAfterS, maxRetryAfterS)
		}
		return v
	}

	// Cold server: the seed estimate is 1s.
	if got := shed(); got != 1 {
		t.Errorf("cold Retry-After = %d, want 1", got)
	}
	// Fast simulations must never drive the hint below the floor...
	for i := 0; i < 50; i++ {
		s.observeSimLatency(time.Millisecond)
	}
	if got := shed(); got != minRetryAfterS {
		t.Errorf("fast-sim Retry-After = %d, want floor %d", got, minRetryAfterS)
	}
	// ...slow ones track the EWMA upward...
	for i := 0; i < 50; i++ {
		s.observeSimLatency(5 * time.Second)
	}
	if got := shed(); got != 5 {
		t.Errorf("slow-sim Retry-After = %d, want 5", got)
	}
	// ...and pathological ones are capped at the ceiling.
	for i := 0; i < 50; i++ {
		s.observeSimLatency(time.Hour)
	}
	if got := shed(); got != maxRetryAfterS {
		t.Errorf("pathological Retry-After = %d, want cap %d", got, maxRetryAfterS)
	}
}

// TestAdmissionNoLeakAfterCancel hammers an overloaded server with
// already-canceled clients and checks every admission token comes back:
// a 499 must release exactly like a 200 would. The runner injects a
// cancellation at the sim boundary so no request can outrun its own
// cancellation and sneak out a 200 (tiny scaled sims can finish between
// context checks). Run under -race -count=5 this is the admission path's
// leak-and-race certificate.
func TestAdmissionNoLeakAfterCancel(t *testing.T) {
	r := experiments.NewRunner(workload.Tuning{RefScale: 0.05})
	r.FaultFn = func(p experiments.FaultPoint, _ experiments.RunKey) error {
		if p != experiments.FaultBeforeSim {
			return nil
		}
		return fmt.Errorf("client gone: %w", context.Canceled)
	}
	p := model.New(r)
	p.MinR2 = -1
	p.MaxResidual = 1e9
	s := New(Config{Predictor: p, MaxQueue: 2, Metrics: telemetry.NewRegistry()})
	h := s.Handler()

	const clients = 32
	var wg sync.WaitGroup
	codes := make(chan int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			cancel() // the client is gone before the request lands
			body := fmt.Sprintf(`{"machine":"IntelUMA8","program":"EP","class":"W","cores":%d}`, 1+i%8)
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body)).WithContext(ctx)
			req.Header.Set(api.HeaderTenant, fmt.Sprintf("t%d", i%4))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			codes <- w.Code
		}(i)
	}
	wg.Wait()
	close(codes)

	for code := range codes {
		if code != StatusClientClosedRequest && code != http.StatusTooManyRequests {
			t.Errorf("status %d, want 499 or 429", code)
		}
	}
	if s.adm.Depth() != 0 {
		t.Errorf("leaked %d admission tokens after cancellations", s.adm.Depth())
	}
	if s.adm.Tenants() != 0 {
		t.Errorf("tenant map retains %d entries after drain", s.adm.Tenants())
	}

	// The server still serves: healthz agrees the queue is empty.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var hz api.HealthzResponse
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.QueueDepth != 0 {
		t.Errorf("healthz queue_depth = %d, want 0", hz.QueueDepth)
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
