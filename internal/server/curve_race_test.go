package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
)

// TestCurveAdmissionReleaseUnderCancel stresses the curve handler's
// per-point admission accounting on the 499 path: a crowd of clients
// posts streaming curves whose every point needs a simulation token,
// then vanishes mid-request with jittered timeouts while the simulation
// tier is gated shut. When the gate opens, each granted point settles
// through the PredictStream callback with a canceled context — and the
// callback must release exactly one token per point regardless, so the
// bucket drains back to zero and no tenant stays charged for a client
// that is long gone.
//
// Run it under the race detector and repetition to shake interleavings:
//
//	go test -race -count=3 ./internal/server -run TestCurveAdmissionReleaseUnderCancel
//
// (the iterations below multiply with -count; `make race` covers it in
// the tier-1 gate).
func TestCurveAdmissionReleaseUnderCancel(t *testing.T) {
	const (
		clients    = 8
		iterations = 3
	)
	// Every core count declines analytically, so all four points of each
	// request charge the admission bucket.
	decline := map[int]bool{2: true, 4: true, 6: true, 8: true}
	body := `{"machine":"IntelUMA8","program":"CG","class":"W","cores":[2,4,6,8]}`

	for iter := 0; iter < iterations; iter++ {
		gate := make(chan struct{})
		stub := &stubPredictor{declineSet: decline, gate: gate}
		srv := newStubServer(stub, clients*4)
		ts := httptest.NewServer(srv.Handler())

		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				// Jittered deadlines cancel clients at different phases:
				// pre-admission, parked at the simulation gate, or already
				// disconnected before the server wrote a byte.
				timeout := time.Duration(1+c%5) * time.Millisecond
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				defer cancel()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					ts.URL+api.PathCurve, strings.NewReader(body))
				if err != nil {
					t.Errorf("building request: %v", err)
					return
				}
				req.Header.Set("Accept", api.ContentTypeNDJSON)
				req.Header.Set(api.HeaderTenant, fmt.Sprintf("tenant-%d", c%3))
				resp, err := ts.Client().Do(req)
				if err != nil {
					return // canceled before headers: the point of the test
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}(c)
		}

		// Let the timeouts fire while every handler is still parked at the
		// gate, then open the simulation tier and let the canceled points
		// settle.
		time.Sleep(20 * time.Millisecond)
		close(gate)
		wg.Wait()

		// Clients are gone but handlers may still be walking their
		// callbacks; the tokens must all come home promptly.
		deadline := time.Now().Add(5 * time.Second)
		for srv.adm.Depth() != 0 || srv.adm.Tenants() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("iteration %d: admission tokens leaked after cancel storm: depth=%d tenants=%d",
					iter, srv.adm.Depth(), srv.adm.Tenants())
			}
			time.Sleep(2 * time.Millisecond)
		}
		ts.Close()
	}
}
