package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzPredictHandler throws arbitrary bytes at POST /v1/predict and pins
// the error envelope: every response is one of 200/400/429/499 with a JSON
// body — never a panic, never a 5xx. The admission queue is pre-filled so
// structurally valid bodies shed with 429 instead of running a simulation
// per input; decode and validation failures 400 before admission anyway.
func FuzzPredictHandler(f *testing.F) {
	s, _ := newTestServer(f, 0.05, 1)
	ok, _ := s.adm.Acquire("fuzz-hog")
	if !ok {
		f.Fatal("could not occupy the admission token")
	}
	h := s.Handler()

	seeds := []string{
		`{"machine":"IntelUMA8","program":"CG","class":"W","cores":2}`,
		`{"machine":"IntelUMA8","program":"EP","class":"W"}`,
		`{}`,
		`{`,
		``,
		`null`,
		`[]`,
		`"machine"`,
		`{"machine":"IntelUMA8","program":"CG","class":"W","cores":-1}`,
		`{"machine":"IntelUMA8","program":"CG","class":"W","cores":999999999}`,
		`{"machine":"IntelUMA8","program":"CG","class":"W","core":2}`,
		`{"machine":"IntelUMA8","program":"CG","class":"W","scale":0.5}`,
		`{"machine":"x","program":"CG","class":"W"}`,
		`{"machine":"IntelUMA8","program":"CG","class":"W","cores":1e30}`,
		`{"machine":"IntelUMA8","program":"CG","class":"W","cores":2}` + strings.Repeat(" ", 4096),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	allowed := map[int]bool{
		http.StatusOK:              true,
		http.StatusBadRequest:      true,
		http.StatusTooManyRequests: true,
		StatusClientClosedRequest:  true,
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(string(body)))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)

		if !allowed[w.Code] {
			t.Fatalf("body %q: status %d, want one of 200/400/429/499", body, w.Code)
		}
		if !json.Valid(w.Body.Bytes()) {
			t.Fatalf("body %q: response is not JSON: %q", body, w.Body.String())
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("body %q: Content-Type %q", body, ct)
		}
	})
}

// FuzzCurveHandler is the same envelope pin for POST /v1/curve, in both
// response modes: arbitrary bodies only ever produce 200/400/429/499,
// batched responses are valid JSON, and streamed responses are valid
// NDJSON — every non-empty line its own JSON document. The queue is
// pre-filled so grantable simulation points shed instead of running.
func FuzzCurveHandler(f *testing.F) {
	s, _ := newTestServer(f, 0.05, 1)
	ok, _ := s.adm.Acquire("fuzz-hog")
	if !ok {
		f.Fatal("could not occupy the admission token")
	}
	h := s.Handler()

	seeds := []string{
		`{"machine":"IntelUMA8","program":"CG","class":"W"}`,
		`{"machine":"IntelUMA8","program":"CG","class":"W","cores":[1,2,3]}`,
		`{"machine":"IntelUMA8","program":"EP","class":"W","cores":[1,1]}`,
		`{"machine":"IntelUMA8","program":"CG","class":"W","cores":[0]}`,
		`{"machine":"IntelUMA8","program":"CG","class":"W","cores":[9]}`,
		`{"machine":"IntelUMA8","program":"CG","class":"W","cores":[]}`,
		`{}`,
		`{`,
		``,
		`null`,
		`[]`,
		`{"machine":"IntelUMA8","program":"CG","class":"W","cores":2}`,
		`{"machine":"IntelUMA8","program":"CG","class":"W","scale":0.5}`,
	}
	for _, sd := range seeds {
		f.Add([]byte(sd), false)
		f.Add([]byte(sd), true)
	}

	allowed := map[int]bool{
		http.StatusOK:              true,
		http.StatusBadRequest:      true,
		http.StatusTooManyRequests: true,
		StatusClientClosedRequest:  true,
	}
	f.Fuzz(func(t *testing.T, body []byte, ndjson bool) {
		req := httptest.NewRequest(http.MethodPost, "/v1/curve", strings.NewReader(string(body)))
		if ndjson {
			req.Header.Set("Accept", "application/x-ndjson")
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)

		if !allowed[w.Code] {
			t.Fatalf("body %q: status %d, want one of 200/400/429/499", body, w.Code)
		}
		if ct := w.Header().Get("Content-Type"); ct == "application/x-ndjson" {
			for _, line := range strings.Split(w.Body.String(), "\n") {
				if line != "" && !json.Valid([]byte(line)) {
					t.Fatalf("body %q: NDJSON line is not JSON: %q", body, line)
				}
			}
		} else if !json.Valid(w.Body.Bytes()) {
			t.Fatalf("body %q: response is not JSON: %q", body, w.Body.String())
		}
	})
}
