// Package counters provides a PAPI-style hardware-counter facade over
// simulation results, mirroring the events the paper measures (section
// III-A): PAPI_TOT_CYC, PAPI_TOT_INS, PAPI_RES_STL, PAPI_L2_TCM and the
// native LLC_MISSES/L3_CACHE_MISSES events. Work cycles are derived exactly
// as in the paper: total cycles minus stall cycles.
package counters

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Event names a hardware counter.
type Event string

// The counter set used throughout the paper.
const (
	// TotCyc is PAPI_TOT_CYC: total cycles.
	TotCyc Event = "PAPI_TOT_CYC"
	// TotIns is PAPI_TOT_INS: retired instructions.
	TotIns Event = "PAPI_TOT_INS"
	// ResStl is PAPI_RES_STL: resource stall cycles.
	ResStl Event = "PAPI_RES_STL"
	// LLCMisses is the native last-level cache miss event (LLC_MISSES on
	// Intel, L3_CACHE_MISSES on AMD).
	LLCMisses Event = "LLC_MISSES"
	// WorkCyc is the derived work-cycle count (TOT_CYC - RES_STL).
	WorkCyc Event = "WORK_CYC"
	// MemStl is the contention-relevant subset of stalls: cycles waiting on
	// off-chip requests.
	MemStl Event = "MEM_STL"
	// RemoteReq counts off-chip requests served by a remote NUMA node.
	RemoteReq Event = "REMOTE_REQ"
)

// Set is a snapshot of counter values, as papiex would report per run.
type Set map[Event]uint64

// FromResult converts a simulation result into the paper's counter set.
func FromResult(r sim.Result) Set {
	return Set{
		TotCyc:    r.TotalCycles,
		TotIns:    r.Instructions,
		ResStl:    r.StallCycles,
		LLCMisses: r.LLCMisses,
		WorkCyc:   r.WorkCycles,
		MemStl:    r.MemStallCycles,
		RemoteReq: r.RemoteRequests,
	}
}

// Read returns the value of an event (0 if absent).
func (s Set) Read(e Event) uint64 { return s[e] }

// Events lists the events present, sorted by name.
func (s Set) Events() []Event {
	var evs []Event
	for e := range s {
		evs = append(evs, e)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i] < evs[j] })
	return evs
}

// String renders the set in papiex-like "EVENT value" lines.
func (s Set) String() string {
	out := ""
	for _, e := range s.Events() {
		out += fmt.Sprintf("%-16s %d\n", e, s[e])
	}
	return out
}

// Diff returns s - other per event, for before/after measurements.
func (s Set) Diff(other Set) Set {
	d := Set{}
	for e, v := range s {
		d[e] = v - other[e]
	}
	return d
}

// index assigns each paper event a dense slot for array-backed accumulation.
var index = map[Event]int{
	TotCyc: 0, TotIns: 1, ResStl: 2, LLCMisses: 3, WorkCyc: 4, MemStl: 5, RemoteReq: 6,
}

// byIndex is the inverse of index, in slot order.
var byIndex = [...]Event{TotCyc, TotIns, ResStl, LLCMisses, WorkCyc, MemStl, RemoteReq}

// Accumulator batches counter updates over many runs (or many per-thread
// snapshots) without the per-update map hashing and allocation a Set would
// cost: the values live in a fixed array indexed by event slot. Aggregation
// loops — summing a sweep, totaling per-thread counters — add into an
// Accumulator and materialize a Set once at the end.
//
// The zero value is an empty accumulator.
type Accumulator struct {
	v [len(byIndex)]uint64
	n uint64
}

// AddResult folds one simulation result into the accumulator.
//
//simcheck:hotpath
func (a *Accumulator) AddResult(r sim.Result) {
	a.v[0] += r.TotalCycles
	a.v[1] += r.Instructions
	a.v[2] += r.StallCycles
	a.v[3] += r.LLCMisses
	a.v[4] += r.WorkCycles
	a.v[5] += r.MemStallCycles
	a.v[6] += r.RemoteRequests
	a.n++
}

// AddThread folds one per-thread counter snapshot into the accumulator.
//
//simcheck:hotpath
func (a *Accumulator) AddThread(t sim.ThreadStats) {
	a.v[0] += t.Cycles()
	a.v[1] += t.Instructions
	a.v[2] += t.Stall
	a.v[3] += t.OffChip
	a.v[4] += t.Work
	a.v[5] += t.MemStall
	a.v[6] += t.Remote
	a.n++
}

// Add increments a single event (no-op for events outside the paper's set).
//
//simcheck:hotpath
func (a *Accumulator) Add(e Event, delta uint64) {
	if i, ok := index[e]; ok {
		a.v[i] += delta
	}
}

// Read returns the accumulated value of an event (0 if absent).
func (a *Accumulator) Read(e Event) uint64 {
	if i, ok := index[e]; ok {
		return a.v[i]
	}
	return 0
}

// Merge folds another accumulator's totals and run count into a, so
// per-worker accumulators built concurrently can be combined after a
// parallel sweep. Merging the zero value is a no-op; merge order never
// changes the totals (uint64 addition is commutative and associative).
func (a *Accumulator) Merge(b *Accumulator) {
	for i := range a.v {
		a.v[i] += b.v[i]
	}
	a.n += b.n
}

// Runs returns how many results/snapshots were folded in.
func (a *Accumulator) Runs() uint64 { return a.n }

// Set materializes the accumulated totals as a Set.
func (a *Accumulator) Set() Set {
	s := make(Set, len(byIndex))
	for i, e := range byIndex {
		s[e] = a.v[i]
	}
	return s
}
