// Package counters provides a PAPI-style hardware-counter facade over
// simulation results, mirroring the events the paper measures (section
// III-A): PAPI_TOT_CYC, PAPI_TOT_INS, PAPI_RES_STL, PAPI_L2_TCM and the
// native LLC_MISSES/L3_CACHE_MISSES events. Work cycles are derived exactly
// as in the paper: total cycles minus stall cycles.
package counters

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Event names a hardware counter.
type Event string

// The counter set used throughout the paper.
const (
	// TotCyc is PAPI_TOT_CYC: total cycles.
	TotCyc Event = "PAPI_TOT_CYC"
	// TotIns is PAPI_TOT_INS: retired instructions.
	TotIns Event = "PAPI_TOT_INS"
	// ResStl is PAPI_RES_STL: resource stall cycles.
	ResStl Event = "PAPI_RES_STL"
	// LLCMisses is the native last-level cache miss event (LLC_MISSES on
	// Intel, L3_CACHE_MISSES on AMD).
	LLCMisses Event = "LLC_MISSES"
	// WorkCyc is the derived work-cycle count (TOT_CYC - RES_STL).
	WorkCyc Event = "WORK_CYC"
	// MemStl is the contention-relevant subset of stalls: cycles waiting on
	// off-chip requests.
	MemStl Event = "MEM_STL"
	// RemoteReq counts off-chip requests served by a remote NUMA node.
	RemoteReq Event = "REMOTE_REQ"
)

// Set is a snapshot of counter values, as papiex would report per run.
type Set map[Event]uint64

// FromResult converts a simulation result into the paper's counter set.
func FromResult(r sim.Result) Set {
	return Set{
		TotCyc:    r.TotalCycles,
		TotIns:    r.Instructions,
		ResStl:    r.StallCycles,
		LLCMisses: r.LLCMisses,
		WorkCyc:   r.WorkCycles,
		MemStl:    r.MemStallCycles,
		RemoteReq: r.RemoteRequests,
	}
}

// Read returns the value of an event (0 if absent).
func (s Set) Read(e Event) uint64 { return s[e] }

// Events lists the events present, sorted by name.
func (s Set) Events() []Event {
	var evs []Event
	for e := range s {
		evs = append(evs, e)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i] < evs[j] })
	return evs
}

// String renders the set in papiex-like "EVENT value" lines.
func (s Set) String() string {
	out := ""
	for _, e := range s.Events() {
		out += fmt.Sprintf("%-16s %d\n", e, s[e])
	}
	return out
}

// Diff returns s - other per event, for before/after measurements.
func (s Set) Diff(other Set) Set {
	d := Set{}
	for e, v := range s {
		d[e] = v - other[e]
	}
	return d
}
