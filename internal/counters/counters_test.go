package counters

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestFromResult(t *testing.T) {
	r := sim.Result{
		TotalCycles:     1000,
		WorkCycles:      600,
		StallCycles:     400,
		MemStallCycles:  300,
		Instructions:    900,
		LLCMisses:       42,
		RemoteRequests:  7,
		OffChipRequests: 42,
	}
	s := FromResult(r)
	if s.Read(TotCyc) != 1000 || s.Read(ResStl) != 400 || s.Read(LLCMisses) != 42 {
		t.Errorf("set = %v", s)
	}
	// The paper's derivation: work = total - stall.
	if s.Read(WorkCyc) != s.Read(TotCyc)-s.Read(ResStl) {
		t.Error("work-cycle identity violated")
	}
	if s.Read(RemoteReq) != 7 || s.Read(MemStl) != 300 || s.Read(TotIns) != 900 {
		t.Errorf("set = %v", s)
	}
}

func TestReadAbsent(t *testing.T) {
	s := Set{}
	if s.Read(TotCyc) != 0 {
		t.Error("absent event should read 0")
	}
}

func TestEventsSorted(t *testing.T) {
	s := FromResult(sim.Result{})
	evs := s.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i] < evs[i-1] {
			t.Fatalf("events unsorted: %v", evs)
		}
	}
	if len(evs) != 7 {
		t.Errorf("events = %v", evs)
	}
}

func TestStringFormat(t *testing.T) {
	s := Set{TotCyc: 5}
	out := s.String()
	if !strings.Contains(out, "PAPI_TOT_CYC") || !strings.Contains(out, "5") {
		t.Errorf("output = %q", out)
	}
}

func TestAccumulatorMatchesSet(t *testing.T) {
	r1 := sim.Result{TotalCycles: 1000, WorkCycles: 600, StallCycles: 400,
		MemStallCycles: 300, Instructions: 900, LLCMisses: 42, RemoteRequests: 7}
	r2 := sim.Result{TotalCycles: 500, WorkCycles: 200, StallCycles: 300,
		MemStallCycles: 100, Instructions: 450, LLCMisses: 11, RemoteRequests: 3}
	var acc Accumulator
	acc.AddResult(r1)
	acc.AddResult(r2)
	if acc.Runs() != 2 {
		t.Errorf("runs = %d", acc.Runs())
	}
	// The batched totals must equal event-wise summation of the two Sets.
	want := Set{}
	for _, s := range []Set{FromResult(r1), FromResult(r2)} {
		for e, v := range s {
			want[e] += v
		}
	}
	got := acc.Set()
	for e, v := range want {
		if got[e] != v {
			t.Errorf("%s = %d, want %d", e, got[e], v)
		}
	}
	if len(got) != len(want) {
		t.Errorf("events: got %d, want %d", len(got), len(want))
	}
}

func TestAccumulatorThreads(t *testing.T) {
	var acc Accumulator
	acc.AddThread(sim.ThreadStats{Work: 60, Stall: 40, MemStall: 30,
		Instructions: 90, OffChip: 4, Remote: 1})
	acc.AddThread(sim.ThreadStats{Work: 20, Stall: 30, MemStall: 10,
		Instructions: 45, OffChip: 1, Remote: 0})
	if acc.Read(TotCyc) != 150 || acc.Read(WorkCyc) != 80 || acc.Read(LLCMisses) != 5 {
		t.Errorf("set = %v", acc.Set())
	}
	acc.Add(RemoteReq, 10)
	if acc.Read(RemoteReq) != 11 {
		t.Errorf("remote = %d", acc.Read(RemoteReq))
	}
	acc.Add(Event("NOT_A_COUNTER"), 5)
	if acc.Read(Event("NOT_A_COUNTER")) != 0 {
		t.Error("unknown events must be ignored")
	}
}

// TestAccumulatorMerge pins the merge semantics: splitting a workload
// across accumulators and merging equals accumulating serially, merge
// order does not matter, and merging the zero value is a no-op.
func TestAccumulatorMerge(t *testing.T) {
	results := []sim.Result{
		{TotalCycles: 1000, WorkCycles: 600, StallCycles: 400, MemStallCycles: 300,
			Instructions: 900, LLCMisses: 42, RemoteRequests: 7},
		{TotalCycles: 500, WorkCycles: 200, StallCycles: 300, MemStallCycles: 100,
			Instructions: 450, LLCMisses: 11, RemoteRequests: 3},
		{TotalCycles: 250, WorkCycles: 100, StallCycles: 150, MemStallCycles: 50,
			Instructions: 225, LLCMisses: 5, RemoteRequests: 1},
	}
	var serial Accumulator
	for _, r := range results {
		serial.AddResult(r)
	}

	// Workers 0 and 1 split the results; merge in both orders.
	var w0, w1 Accumulator
	w0.AddResult(results[0])
	w1.AddResult(results[1])
	w1.AddResult(results[2])
	forward, backward := w0, w1
	forward.Merge(&w1)
	backward.Merge(&w0)
	for _, m := range []*Accumulator{&forward, &backward} {
		if m.Runs() != serial.Runs() {
			t.Errorf("merged runs = %d, want %d", m.Runs(), serial.Runs())
		}
		for _, e := range byIndex {
			if m.Read(e) != serial.Read(e) {
				t.Errorf("merged %s = %d, want %d", e, m.Read(e), serial.Read(e))
			}
		}
	}

	// Merging an empty accumulator changes nothing, in either direction.
	var zero Accumulator
	merged := serial
	merged.Merge(&zero)
	if merged != serial {
		t.Error("merging the zero value changed the accumulator")
	}
	zero.Merge(&serial)
	if zero != serial {
		t.Error("merging into the zero value should copy the totals")
	}
}

// TestAccumulatorZeroAlloc pins the batching contract: folding results in
// does not allocate (the Set materialization at the end is the only map).
func TestAccumulatorZeroAlloc(t *testing.T) {
	r := sim.Result{TotalCycles: 1000, WorkCycles: 600}
	th := sim.ThreadStats{Work: 60, Stall: 40}
	var acc Accumulator
	avg := testing.AllocsPerRun(100, func() {
		acc.AddResult(r)
		acc.AddThread(th)
		acc.Add(TotCyc, 1)
	})
	if avg != 0 {
		t.Errorf("allocs per batched update = %v, want 0", avg)
	}
}

func TestDiff(t *testing.T) {
	after := Set{TotCyc: 100, LLCMisses: 10}
	before := Set{TotCyc: 60, LLCMisses: 4}
	d := after.Diff(before)
	if d.Read(TotCyc) != 40 || d.Read(LLCMisses) != 6 {
		t.Errorf("diff = %v", d)
	}
}
