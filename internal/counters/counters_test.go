package counters

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestFromResult(t *testing.T) {
	r := sim.Result{
		TotalCycles:     1000,
		WorkCycles:      600,
		StallCycles:     400,
		MemStallCycles:  300,
		Instructions:    900,
		LLCMisses:       42,
		RemoteRequests:  7,
		OffChipRequests: 42,
	}
	s := FromResult(r)
	if s.Read(TotCyc) != 1000 || s.Read(ResStl) != 400 || s.Read(LLCMisses) != 42 {
		t.Errorf("set = %v", s)
	}
	// The paper's derivation: work = total - stall.
	if s.Read(WorkCyc) != s.Read(TotCyc)-s.Read(ResStl) {
		t.Error("work-cycle identity violated")
	}
	if s.Read(RemoteReq) != 7 || s.Read(MemStl) != 300 || s.Read(TotIns) != 900 {
		t.Errorf("set = %v", s)
	}
}

func TestReadAbsent(t *testing.T) {
	s := Set{}
	if s.Read(TotCyc) != 0 {
		t.Error("absent event should read 0")
	}
}

func TestEventsSorted(t *testing.T) {
	s := FromResult(sim.Result{})
	evs := s.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i] < evs[i-1] {
			t.Fatalf("events unsorted: %v", evs)
		}
	}
	if len(evs) != 7 {
		t.Errorf("events = %v", evs)
	}
}

func TestStringFormat(t *testing.T) {
	s := Set{TotCyc: 5}
	out := s.String()
	if !strings.Contains(out, "PAPI_TOT_CYC") || !strings.Contains(out, "5") {
		t.Errorf("output = %q", out)
	}
}

func TestDiff(t *testing.T) {
	after := Set{TotCyc: 100, LLCMisses: 10}
	before := Set{TotCyc: 60, LLCMisses: 4}
	d := after.Diff(before)
	if d.Read(TotCyc) != 40 || d.Read(LLCMisses) != 6 {
		t.Errorf("diff = %v", d)
	}
}
