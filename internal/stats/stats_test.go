package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestDescribeBasic(t *testing.T) {
	s, err := Describe([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatalf("Describe: %v", err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Sum != 15 {
		t.Errorf("unexpected summary: %+v", s)
	}
	if !almostEqual(s.Mean, 3, 1e-12) {
		t.Errorf("mean = %v, want 3", s.Mean)
	}
	if !almostEqual(s.Median, 3, 1e-12) {
		t.Errorf("median = %v, want 3", s.Median)
	}
	if !almostEqual(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Errorf("std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestDescribeEmpty(t *testing.T) {
	if _, err := Describe(nil); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("Describe(nil) err = %v, want ErrInsufficientData", err)
	}
}

func TestDescribeSingle(t *testing.T) {
	s, err := Describe([]float64{7})
	if err != nil {
		t.Fatalf("Describe: %v", err)
	}
	if s.Mean != 7 || s.Median != 7 || s.Std != 0 {
		t.Errorf("unexpected single-sample summary: %+v", s)
	}
}

func TestMeanVarianceStd(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of one sample should be NaN")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEqual(Mean(xs), 5, 1e-12) {
		t.Errorf("mean = %v", Mean(xs))
	}
	// Sample variance with n-1 denominator: sum sq dev = 32, /7.
	if !almostEqual(Variance(xs), 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v", Variance(xs))
	}
	if !almostEqual(Std(xs), math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("std = %v", Std(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{75, 40},
	}
	for _, c := range cases {
		got := Percentile(xs, c.p)
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
	if !math.IsNaN(Percentile(xs, -1)) || !math.IsNaN(Percentile(xs, 101)) {
		t.Error("out-of-range p should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestFitLinearExact(t *testing.T) {
	// y = 2x + 1 exactly.
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9}
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatalf("FitLinear: %v", err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if !almostEqual(fit.Predict(10), 21, 1e-12) {
		t.Errorf("Predict(10) = %v", fit.Predict(10))
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x, y []float64
	for i := 0; i < 200; i++ {
		xv := float64(i)
		x = append(x, xv)
		y = append(y, 3*xv-5+rng.NormFloat64()*0.5)
	}
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatalf("FitLinear: %v", err)
	}
	if !almostEqual(fit.Slope, 3, 0.05) {
		t.Errorf("slope = %v, want ~3", fit.Slope)
	}
	if !almostEqual(fit.Intercept, -5, 0.5) {
		t.Errorf("intercept = %v, want ~-5", fit.Intercept)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R2 = %v, want > 0.999", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrMismatchedLengths) {
		t.Errorf("mismatched: err = %v", err)
	}
	if _, err := FitLinear([]float64{1}, []float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("short: err = %v", err)
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x should error")
	}
}

func TestFitLinearThroughOrigin(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{2, 4, 6}
	fit, err := FitLinearThroughOrigin(x, y)
	if err != nil {
		t.Fatalf("FitLinearThroughOrigin: %v", err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || fit.Intercept != 0 {
		t.Errorf("fit = %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v", fit.R2)
	}
	if _, err := FitLinearThroughOrigin([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("all-zero x should error")
	}
}

func TestRSquaredPerfectAndBaseline(t *testing.T) {
	x := []float64{0, 1, 2}
	y := []float64{1, 3, 5}
	r2, err := RSquared(x, y, 2, 1)
	if err != nil {
		t.Fatalf("RSquared: %v", err)
	}
	if !almostEqual(r2, 1, 1e-12) {
		t.Errorf("perfect R2 = %v", r2)
	}
	// Constant y, correct constant prediction: R2 = 1 by convention.
	r2, _ = RSquared([]float64{1, 2}, []float64{4, 4}, 0, 4)
	if r2 != 1 {
		t.Errorf("constant-correct R2 = %v, want 1", r2)
	}
	// Constant y, wrong prediction: R2 = 0 by convention.
	r2, _ = RSquared([]float64{1, 2}, []float64{4, 4}, 0, 5)
	if r2 != 0 {
		t.Errorf("constant-wrong R2 = %v, want 0", r2)
	}
}

func TestRelativeErrorMetrics(t *testing.T) {
	pred := []float64{110, 90, 100}
	meas := []float64{100, 100, 100}
	mre, err := MeanRelativeError(pred, meas)
	if err != nil {
		t.Fatalf("MeanRelativeError: %v", err)
	}
	if !almostEqual(mre, (0.1+0.1+0)/3, 1e-12) {
		t.Errorf("MRE = %v", mre)
	}
	maxre, err := MaxRelativeError(pred, meas)
	if err != nil {
		t.Fatalf("MaxRelativeError: %v", err)
	}
	if !almostEqual(maxre, 0.1, 1e-12) {
		t.Errorf("MaxRE = %v", maxre)
	}
}

func TestRelativeErrorsZeroMeasurement(t *testing.T) {
	re, err := RelativeErrors([]float64{0, 1}, []float64{0, 0})
	if err != nil {
		t.Fatalf("RelativeErrors: %v", err)
	}
	if re[0] != 0 {
		t.Errorf("0/0 relative error = %v, want 0", re[0])
	}
	if !math.IsInf(re[1], 1) {
		t.Errorf("1/0 relative error = %v, want +Inf", re[1])
	}
}

func TestRelativeErrorsMismatch(t *testing.T) {
	if _, err := RelativeErrors([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrMismatchedLengths) {
		t.Errorf("err = %v", err)
	}
}

// Property: for any line y = a*x+b evaluated without noise, FitLinear
// recovers a and b with R2 == 1.
func TestFitLinearRecoversLineProperty(t *testing.T) {
	f := func(a, b float64, seed int64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		// Keep coefficients in a numerically sane range.
		a = math.Mod(a, 1e3)
		b = math.Mod(b, 1e3)
		rng := rand.New(rand.NewSource(seed))
		var x, y []float64
		for i := 0; i < 10; i++ {
			xv := rng.Float64()*100 - 50
			x = append(x, xv)
			y = append(y, a*xv+b)
		}
		fit, err := FitLinear(x, y)
		if err != nil {
			// Degenerate draw (all x equal) is acceptable.
			return true
		}
		return almostEqual(fit.Slope, a, 1e-6+1e-6*math.Abs(a)) &&
			almostEqual(fit.Intercept, b, 1e-6+1e-6*math.Abs(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: MeanRelativeError(x, x) == 0 for nonzero x.
func TestMRESelfProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if v != 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		mre, err := MeanRelativeError(xs, xs)
		return err == nil && mre == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
