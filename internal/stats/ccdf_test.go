package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCCDFBasic(t *testing.T) {
	// Samples: 1,1,2,3 -> P(>1)=0.5, P(>2)=0.25, P(>3)=0.
	pts := CCDF([]float64{1, 1, 2, 3})
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	want := []CCDFPoint{{1, 0.5}, {2, 0.25}, {3, 0}}
	for i, w := range want {
		if pts[i].X != w.X || !almostEqual(pts[i].P, w.P, 1e-12) {
			t.Errorf("point %d = %+v, want %+v", i, pts[i], w)
		}
	}
}

func TestCCDFEmpty(t *testing.T) {
	if pts := CCDF(nil); pts != nil {
		t.Errorf("CCDF(nil) = %v, want nil", pts)
	}
}

func TestCCDFAt(t *testing.T) {
	pts := CCDF([]float64{1, 2, 3, 4})
	if p := CCDFAt(pts, 0.5); p != 1 {
		t.Errorf("CCDFAt(0.5) = %v, want 1", p)
	}
	if p := CCDFAt(pts, 1); !almostEqual(p, 0.75, 1e-12) {
		t.Errorf("CCDFAt(1) = %v, want 0.75", p)
	}
	if p := CCDFAt(pts, 2.5); !almostEqual(p, 0.5, 1e-12) {
		t.Errorf("CCDFAt(2.5) = %v, want 0.5", p)
	}
	if p := CCDFAt(pts, 100); p != 0 {
		t.Errorf("CCDFAt(100) = %v, want 0", p)
	}
	if p := CCDFAt(nil, 1); p != 0 {
		t.Errorf("CCDFAt(nil) = %v, want 0", p)
	}
}

// Property: CCDF probabilities are non-increasing in X, within [0,1), and the
// final point has probability 0.
func TestCCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pts := CCDF(xs)
		if len(pts) == 0 {
			return false
		}
		if pts[len(pts)-1].P != 0 {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X {
				return false
			}
			if pts[i].P > pts[i-1].P {
				return false
			}
		}
		for _, p := range pts {
			if p.P < 0 || p.P >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFitTailParetoRecovery(t *testing.T) {
	// Draw from a Pareto distribution with alpha = 1.5; the CCDF tail slope
	// in log-log space should be about -1.5.
	rng := rand.New(rand.NewSource(42))
	alpha := 1.5
	samples := make([]float64, 20000)
	for i := range samples {
		u := rng.Float64()
		samples[i] = math.Pow(1-u, -1/alpha)
	}
	ccdf := CCDF(samples)
	fit, err := FitTail(ccdf, 2)
	if err != nil {
		t.Fatalf("FitTail: %v", err)
	}
	if !almostEqual(fit.Alpha, alpha, 0.2) {
		t.Errorf("alpha = %v, want ~%v", fit.Alpha, alpha)
	}
	if fit.R2 < 0.98 {
		t.Errorf("R2 = %v, want > 0.98 for a true power law", fit.R2)
	}
}

func TestFitTailExponentialIsNotPowerLaw(t *testing.T) {
	// An exponential distribution has a short tail: the log-log CCDF bends
	// downward, so the linear fit is poorer and the fitted slope steeper over
	// the deep tail than a Pareto with matching body.
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = rng.ExpFloat64() + 1
	}
	ccdf := CCDF(samples)
	fit, err := FitTail(ccdf, 2)
	if err != nil {
		t.Fatalf("FitTail: %v", err)
	}
	if fit.Alpha < 2 {
		t.Errorf("exponential tail fitted alpha = %v, expected steep (>2)", fit.Alpha)
	}
}

func TestFitTailInsufficient(t *testing.T) {
	ccdf := CCDF([]float64{1, 2})
	if _, err := FitTail(ccdf, 10); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("err = %v, want ErrInsufficientData", err)
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(edges) != 5 || len(counts) != 5 {
		t.Fatalf("lens = %d,%d", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("total count = %d, want 10", total)
	}
	for _, c := range counts {
		if c != 2 {
			t.Errorf("uniform data should fill bins evenly, got %v", counts)
			break
		}
	}
}

func TestHistogramDegenerate(t *testing.T) {
	edges, counts := Histogram([]float64{5, 5, 5}, 4)
	if counts[0] != 3 {
		t.Errorf("all-equal samples should land in first bin: %v", counts)
	}
	if edges[0] != 5 {
		t.Errorf("edge = %v", edges[0])
	}
	if e, c := Histogram(nil, 3); e != nil || c != nil {
		t.Error("empty input should return nil")
	}
}

func TestHurstWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	series := make([]float64, 4096)
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	h, err := Hurst(series)
	if err != nil {
		t.Fatalf("Hurst: %v", err)
	}
	if h < 0.35 || h > 0.68 {
		t.Errorf("white-noise Hurst = %v, want ~0.5", h)
	}
}

func TestHurstPersistentSeries(t *testing.T) {
	// A long-memory series built from aggregated heavy-tailed on/off periods
	// should have H well above the white-noise estimate.
	rng := rand.New(rand.NewSource(9))
	var series []float64
	state := 0.0
	for len(series) < 4096 {
		// Pareto-distributed run lengths produce long-range dependence.
		runLen := int(math.Pow(1-rng.Float64(), -1/1.2))
		if runLen > 512 {
			runLen = 512
		}
		if runLen < 1 {
			runLen = 1
		}
		for i := 0; i < runLen && len(series) < 4096; i++ {
			series = append(series, state)
		}
		if state == 0 {
			state = 1
		} else {
			state = 0
		}
	}
	h, err := Hurst(series)
	if err != nil {
		t.Fatalf("Hurst: %v", err)
	}
	if h < 0.6 {
		t.Errorf("persistent series Hurst = %v, want > 0.6", h)
	}
}

func TestHurstInsufficient(t *testing.T) {
	if _, err := Hurst(make([]float64, 4)); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("err = %v", err)
	}
}

// Property: CCDFAt agrees with a direct count of exceeding samples.
func TestCCDFAtMatchesDirectCount(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 || math.IsNaN(probe) || math.IsInf(probe, 0) {
			return true
		}
		pts := CCDF(xs)
		got := CCDFAt(pts, probe)
		count := 0
		for _, v := range xs {
			if v > probe {
				count++
			}
		}
		want := float64(count) / float64(len(xs))
		return almostEqual(got, want, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: CCDF X values are exactly the distinct sample values.
func TestCCDFDistinctValues(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		uniq := map[float64]bool{}
		for i, v := range raw {
			xs[i] = float64(v)
			uniq[float64(v)] = true
		}
		pts := CCDF(xs)
		if len(pts) != len(uniq) {
			return false
		}
		var keys []float64
		for k := range uniq {
			keys = append(keys, k)
		}
		sort.Float64s(keys)
		for i, k := range keys {
			if pts[i].X != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
