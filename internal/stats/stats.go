// Package stats provides the small statistical toolkit used throughout the
// memory-contention study: descriptive summaries, linear regression with
// goodness-of-fit, relative-error metrics for model validation, empirical
// distributions (CCDF), heavy-tail fitting for burstiness analysis, and a
// rescaled-range (Hurst) estimator.
//
// The package is dependency-free and operates on plain float64 slices so it
// can be reused by the simulator, the analytical model and the experiment
// harness alike.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an estimator is given fewer samples
// than it mathematically requires.
var ErrInsufficientData = errors.New("stats: insufficient data")

// ErrMismatchedLengths is returned when paired-sample functions receive
// slices of different lengths.
var ErrMismatchedLengths = errors.New("stats: mismatched slice lengths")

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Sum    float64
}

// Describe computes descriptive statistics for xs. It returns
// ErrInsufficientData for an empty sample.
func Describe(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrInsufficientData
	}
	s := Summary{
		N:   len(xs),
		Min: xs[0],
		Max: xs[0],
	}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Percentile(xs, 50)
	return s, nil
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the sample variance (n-1 denominator) of xs, or NaN when
// fewer than two samples are provided.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// Std returns the sample standard deviation of xs.
func Std(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies and sorts internally and
// returns NaN for an empty sample or out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 100 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LinearFit is the result of an ordinary least-squares fit y = Slope*x +
// Intercept, with its coefficient of determination R2.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 {
	return f.Slope*x + f.Intercept
}

// FitLinear performs an ordinary least-squares regression of y on x. It
// requires at least two points with distinct x values.
func FitLinear(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, ErrMismatchedLengths
	}
	if len(x) < 2 {
		return LinearFit{}, ErrInsufficientData
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, errors.New("stats: degenerate regression (all x equal)")
	}
	fit := LinearFit{N: len(x)}
	fit.Slope = (n*sxy - sx*sy) / den
	fit.Intercept = (sy - fit.Slope*sx) / n
	fit.R2 = rSquared(x, y, fit.Slope, fit.Intercept)
	return fit, nil
}

// FitLinearThroughOrigin performs least squares for the model y = Slope*x
// with zero intercept. R2 is computed against the mean-of-y baseline so it
// remains comparable with FitLinear.
func FitLinearThroughOrigin(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, ErrMismatchedLengths
	}
	if len(x) < 1 {
		return LinearFit{}, ErrInsufficientData
	}
	var sxx, sxy float64
	for i := range x {
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate regression (all x zero)")
	}
	fit := LinearFit{N: len(x), Slope: sxy / sxx}
	fit.R2 = rSquared(x, y, fit.Slope, 0)
	return fit, nil
}

// rSquared computes the coefficient of determination for the line
// y = slope*x + intercept against the observations. A perfect fit yields 1;
// a fit no better than predicting mean(y) yields 0. Values can be negative
// for fits worse than the mean baseline.
func rSquared(x, y []float64, slope, intercept float64) float64 {
	my := Mean(y)
	var ssRes, ssTot float64
	for i := range x {
		r := y[i] - (slope*x[i] + intercept)
		ssRes += r * r
		d := y[i] - my
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// RSquared exposes the coefficient of determination for an arbitrary
// prediction line over paired observations.
func RSquared(x, y []float64, slope, intercept float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrMismatchedLengths
	}
	if len(x) == 0 {
		return 0, ErrInsufficientData
	}
	return rSquared(x, y, slope, intercept), nil
}

// RelativeErrors returns |pred-meas|/|meas| element-wise. Measurements equal
// to zero yield an error of 0 when the prediction is also zero, and +Inf
// otherwise.
func RelativeErrors(pred, meas []float64) ([]float64, error) {
	if len(pred) != len(meas) {
		return nil, ErrMismatchedLengths
	}
	out := make([]float64, len(pred))
	for i := range pred {
		if meas[i] == 0 {
			if pred[i] == 0 {
				out[i] = 0
			} else {
				out[i] = math.Inf(1)
			}
			continue
		}
		out[i] = math.Abs(pred[i]-meas[i]) / math.Abs(meas[i])
	}
	return out, nil
}

// MeanRelativeError returns the average of RelativeErrors — the validation
// metric the paper reports (5–14% across machines).
func MeanRelativeError(pred, meas []float64) (float64, error) {
	re, err := RelativeErrors(pred, meas)
	if err != nil {
		return 0, err
	}
	if len(re) == 0 {
		return 0, ErrInsufficientData
	}
	return Mean(re), nil
}

// MaxRelativeError returns the largest element of RelativeErrors.
func MaxRelativeError(pred, meas []float64) (float64, error) {
	re, err := RelativeErrors(pred, meas)
	if err != nil {
		return 0, err
	}
	if len(re) == 0 {
		return 0, ErrInsufficientData
	}
	max := re[0]
	for _, e := range re[1:] {
		if e > max {
			max = e
		}
	}
	return max, nil
}
