package stats

import (
	"math/rand"
	"testing"
)

func BenchmarkFitLinear(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 1000)
	y := make([]float64, 1000)
	for i := range x {
		x[i] = float64(i)
		y[i] = 2*float64(i) + rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitLinear(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCCDF(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 10000)
	for i := range samples {
		samples[i] = float64(rng.Intn(1000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CCDF(samples)
	}
}

func BenchmarkHurst(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	series := make([]float64, 4096)
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hurst(series); err != nil {
			b.Fatal(err)
		}
	}
}
