package stats

import (
	"math"
	"sort"
)

// CCDFPoint is one point of an empirical complementary cumulative
// distribution function: the probability that a sample strictly exceeds X.
type CCDFPoint struct {
	X float64
	P float64
}

// CCDF computes the empirical complementary CDF P(sample > x) at each
// distinct sample value, sorted by increasing X. This is the quantity the
// paper plots in Fig. 4 (P(#requested cache lines > x)).
func CCDF(samples []float64) []CCDFPoint {
	if len(samples) == 0 {
		return nil
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var pts []CCDFPoint
	i := 0
	for i < len(sorted) {
		x := sorted[i]
		j := i
		for j < len(sorted) && sorted[j] == x {
			j++
		}
		// Number of samples strictly greater than x.
		greater := len(sorted) - j
		pts = append(pts, CCDFPoint{X: x, P: float64(greater) / n})
		i = j
	}
	return pts
}

// CCDFAt evaluates an empirical CCDF (as returned by CCDF) at an arbitrary
// x using step interpolation: the probability that a sample exceeds x.
func CCDFAt(ccdf []CCDFPoint, x float64) float64 {
	if len(ccdf) == 0 {
		return 0
	}
	if x < ccdf[0].X {
		return 1
	}
	// Find the last point with X <= x.
	idx := sort.Search(len(ccdf), func(i int) bool { return ccdf[i].X > x })
	return ccdf[idx-1].P
}

// TailFit is a least-squares power-law fit of the distribution tail:
// log P(X > x) = -Alpha*log(x) + C for x >= Xmin. A heavy (long) tail shows
// up as a straight line on the log-log CCDF; R2 close to 1 over a long x
// range indicates strong burstiness.
type TailFit struct {
	Alpha float64 // magnitude of the log-log slope (positive for a decaying tail)
	C     float64 // intercept in log10 space
	R2    float64
	Xmin  float64
	N     int // number of CCDF points used
}

// FitTail fits a power law to the CCDF tail for x >= xmin. Points with zero
// probability (the final sample) are skipped since log(0) is undefined.
// It returns ErrInsufficientData when fewer than two usable points remain.
func FitTail(ccdf []CCDFPoint, xmin float64) (TailFit, error) {
	var lx, lp []float64
	for _, pt := range ccdf {
		if pt.X < xmin || pt.X <= 0 || pt.P <= 0 {
			continue
		}
		lx = append(lx, math.Log10(pt.X))
		lp = append(lp, math.Log10(pt.P))
	}
	if len(lx) < 2 {
		return TailFit{}, ErrInsufficientData
	}
	fit, err := FitLinear(lx, lp)
	if err != nil {
		return TailFit{}, err
	}
	return TailFit{
		Alpha: -fit.Slope,
		C:     fit.Intercept,
		R2:    fit.R2,
		Xmin:  xmin,
		N:     len(lx),
	}, nil
}

// Histogram bins samples into nbins equal-width bins over [min, max] of the
// data and returns bin left edges and counts. Useful for inspecting the
// burst-size distribution before fitting.
func Histogram(samples []float64, nbins int) (edges []float64, counts []int) {
	if len(samples) == 0 || nbins <= 0 {
		return nil, nil
	}
	min, max := samples[0], samples[0]
	for _, s := range samples {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	edges = make([]float64, nbins)
	counts = make([]int, nbins)
	width := (max - min) / float64(nbins)
	if width == 0 {
		edges[0] = min
		counts[0] = len(samples)
		return edges, counts
	}
	for i := range edges {
		edges[i] = min + float64(i)*width
	}
	for _, s := range samples {
		b := int((s - min) / width)
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return edges, counts
}

// Hurst estimates the Hurst exponent of a time series using the classical
// rescaled-range (R/S) method: the series is cut into windows of increasing
// size, the average R/S statistic per size is computed, and the exponent is
// the slope of log(R/S) vs log(size). Values near 0.5 indicate no long-range
// dependence; values approaching 1 indicate strong self-similarity (bursty,
// long-tailed traffic in the sense of Leland et al.).
func Hurst(series []float64) (float64, error) {
	if len(series) < 16 {
		return 0, ErrInsufficientData
	}
	var logSize, logRS []float64
	for size := 8; size <= len(series)/2; size *= 2 {
		var rsSum float64
		var windows int
		for start := 0; start+size <= len(series); start += size {
			rs := rescaledRange(series[start : start+size])
			if !math.IsNaN(rs) && rs > 0 {
				rsSum += rs
				windows++
			}
		}
		if windows == 0 {
			continue
		}
		logSize = append(logSize, math.Log(float64(size)))
		logRS = append(logRS, math.Log(rsSum/float64(windows)))
	}
	if len(logSize) < 2 {
		return 0, ErrInsufficientData
	}
	fit, err := FitLinear(logSize, logRS)
	if err != nil {
		return 0, err
	}
	return fit.Slope, nil
}

// rescaledRange computes the R/S statistic of one window.
func rescaledRange(w []float64) float64 {
	m := Mean(w)
	var cum, minC, maxC, ss float64
	for _, x := range w {
		cum += x - m
		if cum < minC {
			minC = cum
		}
		if cum > maxC {
			maxC = cum
		}
		d := x - m
		ss += d * d
	}
	s := math.Sqrt(ss / float64(len(w)))
	if s == 0 {
		return math.NaN()
	}
	return (maxC - minC) / s
}
