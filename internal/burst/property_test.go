package burst

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// poissonOffsets generates arrival offsets of a Poisson process with the
// given rate over [0, horizon) from a seeded source.
func poissonOffsets(seed int64, rate, horizon float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	var offsets []float64
	t := rng.ExpFloat64() / rate
	for t < horizon {
		offsets = append(offsets, t)
		t += rng.ExpFloat64() / rate
	}
	return offsets
}

// mmppOffsets generates an MMPP-2 (burst-modulated Poisson) arrival
// stream: phases of exponential mean length alternate between a high rate
// and a low rate. The rate ratio is the burst factor.
func mmppOffsets(seed int64, baseRate, factor, phaseMean, horizon float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	hi := baseRate * 2 * factor / (factor + 1)
	lo := baseRate * 2 / (factor + 1)
	var offsets []float64
	t, on := 0.0, true
	phaseEnd := rng.ExpFloat64() * phaseMean
	for t < horizon {
		rate := lo
		if on {
			rate = hi
		}
		t += rng.ExpFloat64() / rate
		for t >= phaseEnd {
			on = !on
			phaseEnd += rng.ExpFloat64() * phaseMean
		}
		if t < horizon {
			offsets = append(offsets, t)
		}
	}
	return offsets
}

// TestPoissonClassifiesNonBursty is the property the loadgen harness
// leans on: seeded Poisson arrivals dense enough to occupy most windows
// score CV² ≈ 1 in the gap domain and dispersion ≈ 1 in the count
// domain, across window sizes, and Classify calls them non-bursty.
func TestPoissonClassifiesNonBursty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		offsets := poissonOffsets(seed, 200, 50) // ~10k arrivals
		cv2, err := CV2(Interarrivals(offsets))
		if err != nil {
			t.Fatalf("seed %d: CV2: %v", seed, err)
		}
		if math.Abs(cv2-1) > 0.2 {
			t.Errorf("seed %d: Poisson CV² = %.3f, want 1±0.2", seed, cv2)
		}
		// Window sizes spanning ~2 to ~50 expected arrivals per window.
		for _, window := range []float64{0.01, 0.05, 0.25} {
			bins := Bin(offsets, window)
			iod, err := IndexOfDispersion(bins)
			if err != nil {
				t.Fatalf("seed %d window %g: %v", seed, window, err)
			}
			if math.Abs(iod-1) > 0.35 {
				t.Errorf("seed %d window %g: dispersion = %.3f, want 1±0.35", seed, window, iod)
			}
			a, err := Analyze(bins)
			if err != nil {
				t.Fatalf("seed %d window %g: Analyze: %v", seed, window, err)
			}
			if v := a.Classify(); v != NonBursty {
				t.Errorf("seed %d window %g: verdict = %v, want non-bursty (non-empty fraction %.2f)",
					seed, window, v, a.NonEmptyFraction)
			}
		}
	}
}

// TestMMPPClassifiesBursty checks the complementary property: a strongly
// burst-modulated stream at a sparse mean rate scores dispersion well
// above 1 and classifies bursty across window sizes.
func TestMMPPClassifiesBursty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		// Mean rate 20/s with a 50x on/off ratio: the on-phases are dense
		// spikes, the off-phases near-silent — sparse windows overall.
		offsets := mmppOffsets(seed, 20, 50, 0.5, 50)
		cv2, err := CV2(Interarrivals(offsets))
		if err != nil {
			t.Fatalf("seed %d: CV2: %v", seed, err)
		}
		if cv2 < 1.5 {
			t.Errorf("seed %d: MMPP CV² = %.3f, want > 1.5", seed, cv2)
		}
		for _, window := range []float64{0.05, 0.25} {
			bins := Bin(offsets, window)
			iod, err := IndexOfDispersion(bins)
			if err != nil {
				t.Fatalf("seed %d window %g: %v", seed, window, err)
			}
			if iod < 2 {
				t.Errorf("seed %d window %g: dispersion = %.3f, want > 2", seed, window, iod)
			}
			a, err := Analyze(bins)
			if err != nil {
				t.Fatalf("seed %d window %g: Analyze: %v", seed, window, err)
			}
			if v := a.Classify(); v != Bursty {
				t.Errorf("seed %d window %g: verdict = %v, want bursty (non-empty fraction %.2f)",
					seed, window, v, a.NonEmptyFraction)
			}
		}
	}
}

// TestBinProperties pins Bin's contract: counts are conserved, negative
// offsets and non-positive windows are dropped, and unsorted input bins
// identically to sorted input.
func TestBinProperties(t *testing.T) {
	if got := Bin(nil, 1); got != nil {
		t.Errorf("Bin(nil) = %v, want nil", got)
	}
	if got := Bin([]float64{1, 2}, 0); got != nil {
		t.Errorf("Bin(window=0) = %v, want nil", got)
	}
	if got := Bin([]float64{-3, -0.1}, 1); got != nil {
		t.Errorf("Bin(all negative) = %v, want nil", got)
	}
	offsets := []float64{3.2, 0.1, 0.9, 3.9, -1, 2.0}
	bins := Bin(offsets, 1)
	want := []uint64{2, 0, 1, 2}
	if len(bins) != len(want) {
		t.Fatalf("bins = %v, want %v", bins, want)
	}
	var total uint64
	for i, b := range bins {
		if b != want[i] {
			t.Errorf("bins = %v, want %v", bins, want)
			break
		}
		total += b
	}
	if total != 5 {
		t.Errorf("binned %d events, want 5 (negative offset dropped)", total)
	}
}

// TestEstimatorEdges pins the small-sample contracts: the estimators
// refuse samples they cannot support instead of returning NaN, and the
// empty/single-window inputs flow through Extract/Analyze untrapped.
func TestEstimatorEdges(t *testing.T) {
	if _, err := CV2(nil); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("CV2(nil) err = %v, want ErrTooFewSamples", err)
	}
	if _, err := CV2([]float64{1}); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("CV2(1 sample) err = %v, want ErrTooFewSamples", err)
	}
	if _, err := CV2([]float64{0, 0, 0}); err == nil {
		t.Error("CV2(zero-mean) must error, got nil")
	}
	if cv2, err := CV2([]float64{2, 2, 2, 2}); err != nil || cv2 != 0 {
		t.Errorf("CV2(constant) = %v, %v, want 0, nil", cv2, err)
	}
	if _, err := IndexOfDispersion(nil); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("IndexOfDispersion(nil) err = %v, want ErrTooFewSamples", err)
	}
	if _, err := IndexOfDispersion([]uint64{7}); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("IndexOfDispersion(1 window) err = %v, want ErrTooFewSamples", err)
	}
	if _, err := IndexOfDispersion([]uint64{0, 0}); !errors.Is(err, ErrNoTraffic) {
		t.Errorf("IndexOfDispersion(empty windows) err = %v, want ErrNoTraffic", err)
	}
	if gaps := Interarrivals([]float64{5}); gaps != nil {
		t.Errorf("Interarrivals(1 offset) = %v, want nil", gaps)
	}

	// Single-window Analyze: one burst, no tail fit, classified non-bursty.
	a, err := Analyze([]uint64{4})
	if err != nil {
		t.Fatalf("Analyze single window: %v", err)
	}
	if a.Bursts != 1 || a.TotalLines != 4 || a.Classify() != NonBursty {
		t.Errorf("single-window analysis = %+v", a)
	}
}
