package burst

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExtractBasic(t *testing.T) {
	windows := []uint64{0, 3, 5, 0, 0, 2, 0, 7, 1, 1}
	bursts := Extract(windows)
	if len(bursts) != 3 {
		t.Fatalf("bursts = %+v", bursts)
	}
	want := []Burst{
		{StartWindow: 1, Windows: 2, Lines: 8},
		{StartWindow: 5, Windows: 1, Lines: 2},
		{StartWindow: 7, Windows: 3, Lines: 9},
	}
	for i, w := range want {
		if bursts[i] != w {
			t.Errorf("burst %d = %+v, want %+v", i, bursts[i], w)
		}
	}
}

func TestExtractEdges(t *testing.T) {
	if got := Extract(nil); len(got) != 0 {
		t.Errorf("nil windows -> %v", got)
	}
	if got := Extract([]uint64{0, 0, 0}); len(got) != 0 {
		t.Errorf("all-empty -> %v", got)
	}
	got := Extract([]uint64{4})
	if len(got) != 1 || got[0].Lines != 4 {
		t.Errorf("single window -> %v", got)
	}
}

func TestSizes(t *testing.T) {
	sizes := Sizes([]Burst{{Lines: 3}, {Lines: 9}})
	if len(sizes) != 2 || sizes[0] != 3 || sizes[1] != 9 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestAnalyzeNoTraffic(t *testing.T) {
	if _, err := Analyze([]uint64{0, 0}); !errors.Is(err, ErrNoTraffic) {
		t.Errorf("err = %v", err)
	}
}

func TestAnalyzeCounts(t *testing.T) {
	a, err := Analyze([]uint64{5, 0, 3, 3, 0, 0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.Bursts != 3 || a.TotalLines != 21 || a.MaxLines != 10 {
		t.Errorf("analysis = %+v", a)
	}
	if math.Abs(a.MeanLines-7) > 1e-12 {
		t.Errorf("mean = %v", a.MeanLines)
	}
	if math.Abs(a.NonEmptyFraction-4.0/7.0) > 1e-12 {
		t.Errorf("non-empty = %v", a.NonEmptyFraction)
	}
}

// Synthetic bursty traffic: rare bursts with Pareto sizes in a long quiet
// trace must classify as Bursty with a heavy tail.
func TestClassifyBursty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	windows := make([]uint64, 200000)
	for i := 0; i < 800; i++ {
		pos := rng.Intn(len(windows))
		size := uint64(math.Pow(1-rng.Float64(), -1/1.1))
		if size > 5000 {
			size = 5000
		}
		windows[pos] += size
	}
	a, err := Analyze(windows)
	if err != nil {
		t.Fatal(err)
	}
	if a.Classify() != Bursty {
		t.Errorf("verdict = %v, non-empty = %v", a.Classify(), a.NonEmptyFraction)
	}
	if a.Tail.N >= 5 && a.Tail.R2 > 0 && a.Tail.Alpha > 4 {
		t.Errorf("Pareto bursts should have a shallow tail, alpha = %v", a.Tail.Alpha)
	}
}

// Saturated traffic: every window busy must classify as NonBursty.
func TestClassifyNonBursty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	windows := make([]uint64, 5000)
	for i := range windows {
		windows[i] = uint64(20 + rng.Intn(10))
	}
	a, err := Analyze(windows)
	if err != nil {
		t.Fatal(err)
	}
	if a.Classify() != NonBursty {
		t.Errorf("verdict = %v", a.Classify())
	}
	if a.NonEmptyFraction != 1 {
		t.Errorf("non-empty = %v", a.NonEmptyFraction)
	}
	// One giant burst spanning the run.
	if a.Bursts != 1 {
		t.Errorf("bursts = %d", a.Bursts)
	}
}

func TestVerdictString(t *testing.T) {
	if Bursty.String() != "bursty" || NonBursty.String() != "non-bursty" {
		t.Error("verdict strings wrong")
	}
}

// Property: total lines are conserved between windows and bursts, and burst
// windows never overlap.
func TestExtractConservationProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		windows := make([]uint64, len(raw))
		var want uint64
		for i, v := range raw {
			windows[i] = uint64(v % 4) // frequent zeros
			want += windows[i]
		}
		bursts := Extract(windows)
		var got uint64
		prevEnd := -1
		for _, b := range bursts {
			if b.StartWindow <= prevEnd {
				return false
			}
			if b.Windows < 1 || b.Lines == 0 {
				return false
			}
			// Boundaries must be zero-delimited.
			if b.StartWindow > 0 && windows[b.StartWindow-1] != 0 {
				return false
			}
			end := b.StartWindow + b.Windows
			if end < len(windows) && windows[end] != 0 {
				return false
			}
			prevEnd = end
			got += b.Lines
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
