// Package burst analyzes the burstiness of off-chip memory traffic from
// windowed miss counts (internal/sampler), reproducing the paper's Fig. 4
// methodology: the distribution of burst sizes (number of requested cache
// lines) is plotted as a log-log CCDF, and a long (power-law-like) tail
// marks bursty traffic while its absence marks the saturated, non-bursty
// traffic of large problem sizes.
//
// The same machinery characterizes any arrival process, not just miss
// streams: Bin folds raw event offsets into the windowed form, and CV2 /
// IndexOfDispersion quantify burstiness in the gap and count domains
// (both 1 for Poisson arrivals). internal/load uses these to verify that
// the traffic it offers to a server has the burstiness it was configured
// to generate.
package burst

import (
	"errors"
	"sort"

	"repro/internal/stats"
)

// Burst is a maximal run of consecutive non-empty sampling windows.
type Burst struct {
	// StartWindow is the index of the first window of the run.
	StartWindow int
	// Windows is the run length.
	Windows int
	// Lines is the total number of cache lines requested during the run —
	// the paper's burst size.
	Lines uint64
}

// Extract segments windowed miss counts into bursts.
func Extract(windows []uint64) []Burst {
	var bursts []Burst
	var cur *Burst
	for i, c := range windows {
		if c == 0 {
			cur = nil
			continue
		}
		if cur == nil {
			bursts = append(bursts, Burst{StartWindow: i})
			cur = &bursts[len(bursts)-1]
		}
		cur.Windows++
		cur.Lines += c
	}
	return bursts
}

// Sizes returns the burst sizes in cache lines as float64s, ready for CCDF
// analysis.
func Sizes(bursts []Burst) []float64 {
	out := make([]float64, len(bursts))
	for i, b := range bursts {
		out[i] = float64(b.Lines)
	}
	return out
}

// Analysis summarizes the burstiness of one run's traffic.
type Analysis struct {
	// CCDF is P(BurstSize > x) over burst sizes in cache lines (Fig. 4's
	// y-axis over its x-axis).
	CCDF []stats.CCDFPoint
	// Tail is the power-law fit of the CCDF for x >= TailXmin.
	Tail stats.TailFit
	// TailXmin is the tail cutoff used (the paper eyeballs linearity beyond
	// ~50 lines; we fit from the 10th size percentile or 10 lines,
	// whichever is larger).
	TailXmin float64
	// Bursts is the number of bursts.
	Bursts int
	// MaxLines is the largest burst.
	MaxLines uint64
	// TotalLines is the total traffic.
	TotalLines uint64
	// NonEmptyFraction is the fraction of windows with at least one miss.
	NonEmptyFraction float64
	// MeanLines is the mean burst size.
	MeanLines float64
}

// ErrNoTraffic is returned when there are no misses to analyze.
var ErrNoTraffic = errors.New("burst: no off-chip traffic recorded")

// Analyze computes the burstiness profile of windowed miss counts.
func Analyze(windows []uint64) (Analysis, error) {
	bursts := Extract(windows)
	if len(bursts) == 0 {
		return Analysis{}, ErrNoTraffic
	}
	sizes := Sizes(bursts)
	a := Analysis{
		CCDF:   stats.CCDF(sizes),
		Bursts: len(bursts),
	}
	nonEmpty := 0
	for _, c := range windows {
		if c > 0 {
			nonEmpty++
		}
		a.TotalLines += c
	}
	if len(windows) > 0 {
		a.NonEmptyFraction = float64(nonEmpty) / float64(len(windows))
	}
	for _, b := range bursts {
		if b.Lines > a.MaxLines {
			a.MaxLines = b.Lines
		}
	}
	a.MeanLines = float64(a.TotalLines) / float64(len(bursts))

	a.TailXmin = stats.Percentile(sizes, 10)
	if a.TailXmin < 10 {
		a.TailXmin = 10
	}
	if tail, err := stats.FitTail(a.CCDF, a.TailXmin); err == nil {
		a.Tail = tail
	}
	return a, nil
}

// Verdict classifies traffic as bursty or non-bursty.
type Verdict uint8

const (
	// NonBursty traffic saturates the memory system: almost every sampling
	// window carries requests (large problem sizes in the paper).
	NonBursty Verdict = iota
	// Bursty traffic is sparse with a long-tailed burst-size distribution
	// (small problem sizes).
	Bursty
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	if v == Bursty {
		return "bursty"
	}
	return "non-bursty"
}

// Classify applies the paper's observation as a decision rule: traffic is
// non-bursty when the memory system is busy in most sampling windows
// ("there are no significant time intervals without memory requests"), and
// bursty otherwise.
func (a Analysis) Classify() Verdict {
	if a.NonEmptyFraction >= 0.5 {
		return NonBursty
	}
	return Bursty
}

// ErrTooFewSamples is returned by the arrival-process estimators when the
// sample cannot support the statistic (CV² needs at least two
// inter-arrival gaps; dispersion needs at least two windows).
var ErrTooFewSamples = errors.New("burst: too few samples for estimator")

// Bin counts event offsets into fixed-width windows, the same windowed
// representation Extract and Analyze consume. Offsets and window share a
// unit (the caller's choice — seconds for wall-clock arrivals, cycles for
// simulated miss streams); offsets need not be sorted. Negative offsets
// and a non-positive window yield no bins. The last bin is the one
// containing the largest offset, so trailing silence is not represented —
// callers that care about it append empty bins themselves.
func Bin(offsets []float64, window float64) []uint64 {
	if window <= 0 {
		return nil
	}
	maxIdx := -1
	for _, off := range offsets {
		if off < 0 {
			continue
		}
		if i := int(off / window); i > maxIdx {
			maxIdx = i
		}
	}
	if maxIdx < 0 {
		return nil
	}
	bins := make([]uint64, maxIdx+1)
	for _, off := range offsets {
		if off < 0 {
			continue
		}
		bins[int(off/window)]++
	}
	return bins
}

// Interarrivals returns the gaps between consecutive sorted offsets. The
// input is copied and sorted, so unsorted arrival logs are accepted; n
// offsets yield n-1 gaps.
func Interarrivals(offsets []float64) []float64 {
	if len(offsets) < 2 {
		return nil
	}
	sorted := make([]float64, len(offsets))
	copy(sorted, offsets)
	sort.Float64s(sorted)
	gaps := make([]float64, len(sorted)-1)
	for i := 1; i < len(sorted); i++ {
		gaps[i-1] = sorted[i] - sorted[i-1]
	}
	return gaps
}

// CV2 returns the squared coefficient of variation Var(x)/Mean(x)² of a
// sample — the burstiness statistic of an arrival process applied to its
// inter-arrival gaps. A Poisson process has CV² = 1, a deterministic
// (constant-rate) process 0, and burst-modulated (MMPP-style) processes
// exceed 1. It returns ErrTooFewSamples below two samples and an error
// for a zero-mean sample (no time elapses between any arrivals).
func CV2(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrTooFewSamples
	}
	m := stats.Mean(xs)
	if m == 0 {
		return 0, errors.New("burst: zero-mean sample has no coefficient of variation")
	}
	return stats.Variance(xs) / (m * m), nil
}

// IndexOfDispersion returns Var(N)/Mean(N) over windowed event counts —
// the count-domain companion of CV2. A Poisson process scores 1 at every
// window size; values well above 1 mark bursty, correlated arrivals. It
// returns ErrTooFewSamples below two windows and for all-empty windows.
func IndexOfDispersion(windows []uint64) (float64, error) {
	if len(windows) < 2 {
		return 0, ErrTooFewSamples
	}
	xs := make([]float64, len(windows))
	total := uint64(0)
	for i, c := range windows {
		xs[i] = float64(c)
		total += c
	}
	if total == 0 {
		return 0, ErrNoTraffic
	}
	return stats.Variance(xs) / stats.Mean(xs), nil
}
