// Package burst analyzes the burstiness of off-chip memory traffic from
// windowed miss counts (internal/sampler), reproducing the paper's Fig. 4
// methodology: the distribution of burst sizes (number of requested cache
// lines) is plotted as a log-log CCDF, and a long (power-law-like) tail
// marks bursty traffic while its absence marks the saturated, non-bursty
// traffic of large problem sizes.
package burst

import (
	"errors"

	"repro/internal/stats"
)

// Burst is a maximal run of consecutive non-empty sampling windows.
type Burst struct {
	// StartWindow is the index of the first window of the run.
	StartWindow int
	// Windows is the run length.
	Windows int
	// Lines is the total number of cache lines requested during the run —
	// the paper's burst size.
	Lines uint64
}

// Extract segments windowed miss counts into bursts.
func Extract(windows []uint64) []Burst {
	var bursts []Burst
	var cur *Burst
	for i, c := range windows {
		if c == 0 {
			cur = nil
			continue
		}
		if cur == nil {
			bursts = append(bursts, Burst{StartWindow: i})
			cur = &bursts[len(bursts)-1]
		}
		cur.Windows++
		cur.Lines += c
	}
	return bursts
}

// Sizes returns the burst sizes in cache lines as float64s, ready for CCDF
// analysis.
func Sizes(bursts []Burst) []float64 {
	out := make([]float64, len(bursts))
	for i, b := range bursts {
		out[i] = float64(b.Lines)
	}
	return out
}

// Analysis summarizes the burstiness of one run's traffic.
type Analysis struct {
	// CCDF is P(BurstSize > x) over burst sizes in cache lines (Fig. 4's
	// y-axis over its x-axis).
	CCDF []stats.CCDFPoint
	// Tail is the power-law fit of the CCDF for x >= TailXmin.
	Tail stats.TailFit
	// TailXmin is the tail cutoff used (the paper eyeballs linearity beyond
	// ~50 lines; we fit from the 10th size percentile or 10 lines,
	// whichever is larger).
	TailXmin float64
	// Bursts is the number of bursts.
	Bursts int
	// MaxLines is the largest burst.
	MaxLines uint64
	// TotalLines is the total traffic.
	TotalLines uint64
	// NonEmptyFraction is the fraction of windows with at least one miss.
	NonEmptyFraction float64
	// MeanLines is the mean burst size.
	MeanLines float64
}

// ErrNoTraffic is returned when there are no misses to analyze.
var ErrNoTraffic = errors.New("burst: no off-chip traffic recorded")

// Analyze computes the burstiness profile of windowed miss counts.
func Analyze(windows []uint64) (Analysis, error) {
	bursts := Extract(windows)
	if len(bursts) == 0 {
		return Analysis{}, ErrNoTraffic
	}
	sizes := Sizes(bursts)
	a := Analysis{
		CCDF:   stats.CCDF(sizes),
		Bursts: len(bursts),
	}
	nonEmpty := 0
	for _, c := range windows {
		if c > 0 {
			nonEmpty++
		}
		a.TotalLines += c
	}
	if len(windows) > 0 {
		a.NonEmptyFraction = float64(nonEmpty) / float64(len(windows))
	}
	for _, b := range bursts {
		if b.Lines > a.MaxLines {
			a.MaxLines = b.Lines
		}
	}
	a.MeanLines = float64(a.TotalLines) / float64(len(bursts))

	a.TailXmin = stats.Percentile(sizes, 10)
	if a.TailXmin < 10 {
		a.TailXmin = 10
	}
	if tail, err := stats.FitTail(a.CCDF, a.TailXmin); err == nil {
		a.Tail = tail
	}
	return a, nil
}

// Verdict classifies traffic as bursty or non-bursty.
type Verdict uint8

const (
	// NonBursty traffic saturates the memory system: almost every sampling
	// window carries requests (large problem sizes in the paper).
	NonBursty Verdict = iota
	// Bursty traffic is sparse with a long-tailed burst-size distribution
	// (small problem sizes).
	Bursty
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	if v == Bursty {
		return "bursty"
	}
	return "non-bursty"
}

// Classify applies the paper's observation as a decision rule: traffic is
// non-bursty when the memory system is busy in most sampling windows
// ("there are no significant time intervals without memory requests"), and
// bursty otherwise.
func (a Analysis) Classify() Verdict {
	if a.NonEmptyFraction >= 0.5 {
		return NonBursty
	}
	return Bursty
}
