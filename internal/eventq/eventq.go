// Package eventq provides the discrete-event simulation kernel shared by
// the memory-controller model and the multicore simulator: a time-ordered
// queue of callbacks with a monotonic simulated clock measured in cycles.
//
// Events scheduled for the same time run in FIFO order of scheduling, which
// keeps whole-system simulations deterministic. Every implementation orders
// events by the total key (time, schedule sequence), so the pop order is
// identical across implementations — the determinism contract the
// differential tests pin.
//
// Two implementations share the Interface:
//
//   - Queue, a calendar (bucket) queue tuned for the simulator's
//     near-monotonic timestamps. Insert and pop are amortized O(1) and the
//     steady state allocates nothing.
//   - HeapQueue, a classic binary heap: O(log n) operations, simple and
//     distribution-independent. It is the fallback and the differential-test
//     oracle for the calendar queue.
package eventq

// event is one scheduled callback. seq breaks same-time ties in FIFO
// scheduling order.
type event struct {
	t   uint64
	seq uint64
	fn  func()
}

// before reports whether e runs before other: earlier time first, earlier
// scheduling order among equal times.
func (e event) before(other event) bool {
	if e.t != other.t {
		return e.t < other.t
	}
	return e.seq < other.seq
}

// Interface is the event-queue contract shared by Queue and HeapQueue. The
// simulator programs against it so the backend can be swapped (and
// differentially tested) without touching the engine.
type Interface interface {
	// Now returns the current simulated time in cycles.
	Now() uint64
	// Len returns the number of pending events.
	Len() int
	// Dispatched returns the number of events executed so far (the
	// simulated-events/sec numerator for benchmark reporting).
	Dispatched() uint64
	// At schedules fn at absolute time t; scheduling in the past is clamped
	// to Now.
	At(t uint64, fn func())
	// After schedules fn d cycles from now.
	After(d uint64, fn func())
	// Step pops and runs the earliest event, advancing the clock to its
	// time. It reports whether an event was run.
	Step() bool
	// Run executes events until the queue is empty.
	Run()
	// RunUntil executes events with time <= t, then advances the clock to t.
	RunUntil(t uint64)
	// RunWhile executes events while cond() returns true and events remain.
	RunWhile(cond func() bool)
	// RunChecked executes events until the queue is empty, invoking cont
	// after every `every` dispatched events and stopping early when it
	// returns false. It is the cancellation-aware run loop: the caller's
	// check latency is bounded by `every` events while the steady-state
	// dispatch stays inside the concrete implementation (and therefore
	// allocation-free). every == 0 behaves like Run (no checks).
	RunChecked(every uint64, cont func() bool)
	// Drain discards every pending event without running it and returns
	// the number dropped. A canceled simulation drains its queue so pooled
	// callbacks (and anything they capture) are released immediately; the
	// queue remains usable afterwards.
	Drain() int
}

// Kind selects an event-queue implementation.
type Kind uint8

const (
	// Calendar is the bucket queue (the default).
	Calendar Kind = iota
	// Heap is the binary-heap fallback and differential-test oracle.
	Heap
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Calendar:
		return "calendar"
	case Heap:
		return "heap"
	default:
		return "unknown"
	}
}

// New returns an empty queue of the given kind.
func New(k Kind) Interface {
	if k == Heap {
		return new(HeapQueue)
	}
	return new(Queue)
}
