// Package eventq provides the discrete-event simulation kernel shared by
// the memory-controller model and the multicore simulator: a time-ordered
// queue of callbacks with a monotonic simulated clock measured in cycles.
//
// Events scheduled for the same time run in FIFO order of scheduling, which
// keeps whole-system simulations deterministic.
package eventq

import "container/heap"

// Queue is a discrete-event queue. The zero value is ready to use.
type Queue struct {
	now   uint64
	seq   uint64
	items eventHeap
}

type event struct {
	t   uint64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return it
}

// Now returns the current simulated time in cycles.
func (q *Queue) Now() uint64 { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.items) }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) is clamped to Now, which keeps zero-latency interactions safe.
func (q *Queue) At(t uint64, fn func()) {
	if t < q.now {
		t = q.now
	}
	q.seq++
	heap.Push(&q.items, event{t: t, seq: q.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (q *Queue) After(d uint64, fn func()) {
	q.At(q.now+d, fn)
}

// Step pops and runs the earliest event, advancing the clock to its time.
// It reports whether an event was run.
func (q *Queue) Step() bool {
	if len(q.items) == 0 {
		return false
	}
	ev := heap.Pop(&q.items).(event)
	q.now = ev.t
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (q *Queue) Run() {
	for q.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
// Events scheduled during execution are honored if they fall within t.
func (q *Queue) RunUntil(t uint64) {
	for len(q.items) > 0 && q.items[0].t <= t {
		q.Step()
	}
	if q.now < t {
		q.now = t
	}
}

// RunWhile executes events while cond() returns true and events remain.
func (q *Queue) RunWhile(cond func() bool) {
	for cond() && q.Step() {
	}
}
