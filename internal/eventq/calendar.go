package eventq

// Queue is the calendar (bucket) event queue: pending events are hashed by
// time into an array of buckets whose combined span — the "year" — covers
// the currently scheduled horizon. The simulator's schedules are
// near-monotonic (most events land within a few hundred cycles of the
// clock), so an event is almost always pushed into a bucket at or just
// ahead of the one being drained, and both insert and pop are amortized
// O(1) with zero steady-state allocations.
//
// The zero value is ready to use.
//
// Invariants and tuning:
//
//   - Every pending event satisfies t >= now (At clamps), so the pop scan
//     can always start at now's bucket.
//   - Buckets keep events sorted by (t, seq); an insert walks back from the
//     tail, which is O(1) for monotonic schedules because new events carry
//     the largest seq.
//   - The bucket count tracks the population (grow at 2x buckets, shrink at
//     1/4) and the bucket width tracks the event-time spread, so the year
//     usually covers every pending event and the rare event beyond the
//     year is found by a direct scan of bucket heads.
type Queue struct {
	now        uint64
	seq        uint64
	dispatched uint64
	n          int
	width      uint64
	buckets    []bucket
	mask       uint64
	scratch    []event // resize staging, reused across resizes
	// store is the high-water bucket array; buckets is store[:size]. Keeping
	// the larger backing (and each bucket's event capacity) makes grow/shrink
	// cycles allocation-free once the queue has seen its peak population.
	store []bucket
	// OnResize, when non-nil, is invoked after every calendar resize with
	// the new bucket count, the re-derived bucket width and the pending
	// population. Resizes are rare (they track the population high-water
	// mark), so the hook costs one nil check on a cold path; the telemetry
	// tracer uses it to log queue reshapes during long sweeps.
	OnResize func(buckets int, width uint64, pending int)
}

// bucket is one calendar day: a sorted slice with a consumed-head index so
// popping the front is O(1) without losing the slice's capacity.
type bucket struct {
	ev   []event
	head int
}

func (b *bucket) len() int { return len(b.ev) - b.head }

func (b *bucket) front() *event { return &b.ev[b.head] }

//simcheck:hotpath
func (b *bucket) popFront() event {
	e := b.ev[b.head]
	b.ev[b.head] = event{}
	b.head++
	if b.head == len(b.ev) {
		b.ev = b.ev[:0]
		b.head = 0
	}
	return e
}

// insert places ev in sorted (t, seq) position, walking back from the tail.
//
//simcheck:hotpath
func (b *bucket) insert(ev event) {
	//simcheck:allow(hotpath) high-water bucket store: the backing array is retained across pops (popFront resets to ev[:0]), so append stops allocating once the run reaches steady state — TestZeroAllocSteadyState pins this
	b.ev = append(b.ev, ev)
	for i := len(b.ev) - 1; i > b.head && b.ev[i].before(b.ev[i-1]); i-- {
		b.ev[i], b.ev[i-1] = b.ev[i-1], b.ev[i]
	}
}

const (
	minBuckets = 8
	maxBuckets = 1 << 20
)

// Now returns the current simulated time in cycles.
func (q *Queue) Now() uint64 { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return q.n }

// Dispatched returns the number of events executed so far.
func (q *Queue) Dispatched() uint64 { return q.dispatched }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) is clamped to Now, which keeps zero-latency interactions safe.
//
//simcheck:hotpath
func (q *Queue) At(t uint64, fn func()) {
	if t < q.now {
		t = q.now
	}
	q.seq++
	if q.buckets == nil {
		q.init()
	} else if q.n >= 2*len(q.buckets) && len(q.buckets) < maxBuckets {
		q.resize(2 * len(q.buckets))
	}
	q.buckets[(t/q.width)&q.mask].insert(event{t: t, seq: q.seq, fn: fn})
	q.n++
}

// After schedules fn to run d cycles from now.
//
//simcheck:hotpath
func (q *Queue) After(d uint64, fn func()) {
	q.At(q.now+d, fn)
}

func (q *Queue) init() {
	q.store = make([]bucket, minBuckets)
	q.buckets = q.store
	q.mask = minBuckets - 1
	q.width = 64 // refined by the first resize
}

// resize redistributes every pending event over newSize buckets, re-deriving
// the bucket width from the current event-time spread so that one "year"
// (width * buckets) keeps covering the scheduled horizon.
func (q *Queue) resize(newSize int) {
	all := q.scratch[:0]
	for i := range q.buckets {
		b := &q.buckets[i]
		all = append(all, b.ev[b.head:]...)
		b.ev = b.ev[:0]
		b.head = 0
	}
	q.scratch = all[:0] // keep the staging capacity for next time

	if newSize <= cap(q.store) {
		// Every bucket in the store outside the old window is empty (events
		// only ever live in the current window, and the gather above just
		// drained it), so re-slicing is enough and reuses event capacity.
		q.buckets = q.store[:newSize]
	} else {
		grown := make([]bucket, newSize)
		copy(grown, q.store)
		q.store = grown
		q.buckets = grown
	}
	q.mask = uint64(newSize) - 1
	q.width = spreadWidth(all)
	for _, ev := range all {
		q.buckets[(ev.t/q.width)&q.mask].insert(ev)
	}
	// Drop callback references left in the staging slice.
	for i := range all {
		all[i] = event{}
	}
	if q.OnResize != nil {
		q.OnResize(newSize, q.width, q.n)
	}
}

// spreadWidth picks a bucket width ~2x the mean gap between pending events,
// so a year of len(buckets) >= n/2 buckets spans the whole horizon.
func spreadWidth(all []event) uint64 {
	if len(all) == 0 {
		return 64
	}
	lo, hi := all[0].t, all[0].t
	for _, ev := range all[1:] {
		if ev.t < lo {
			lo = ev.t
		}
		if ev.t > hi {
			hi = ev.t
		}
	}
	w := 2 * (hi - lo + 1) / uint64(len(all))
	if w == 0 {
		w = 1
	}
	return w
}

// pop removes and returns the earliest event. It scans buckets starting at
// now's calendar day; a bucket's head is consumed only when it belongs to
// the day under scan, which defers far-future events to their own year. If
// a whole year holds nothing current, the queue is sparse and the minimum
// is found directly over bucket heads.
//
//simcheck:hotpath
func (q *Queue) pop() (event, bool) {
	if q.n == 0 {
		return event{}, false
	}
	day := q.now / q.width
	for i := 0; i < len(q.buckets); i++ {
		b := &q.buckets[(day+uint64(i))&q.mask]
		if b.len() > 0 && b.front().t/q.width == day+uint64(i) {
			return q.take(b), true
		}
	}
	// Sparse queue: direct search over bucket heads (each is its bucket's
	// minimum, so the global minimum is among them).
	best := -1
	for i := range q.buckets {
		b := &q.buckets[i]
		if b.len() == 0 {
			continue
		}
		if best < 0 || b.front().before(*q.buckets[best].front()) {
			best = i
		}
	}
	return q.take(&q.buckets[best]), true
}

//simcheck:hotpath
func (q *Queue) take(b *bucket) event {
	ev := b.popFront()
	q.n--
	if q.n < len(q.buckets)/4 && len(q.buckets) > minBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return ev
}

// peekTime returns the earliest pending event time (valid only when Len>0).
func (q *Queue) peekTime() (uint64, bool) {
	if q.n == 0 {
		return 0, false
	}
	day := q.now / q.width
	for i := 0; i < len(q.buckets); i++ {
		b := &q.buckets[(day+uint64(i))&q.mask]
		if b.len() > 0 && b.front().t/q.width == day+uint64(i) {
			return b.front().t, true
		}
	}
	best := -1
	for i := range q.buckets {
		b := &q.buckets[i]
		if b.len() == 0 {
			continue
		}
		if best < 0 || b.front().before(*q.buckets[best].front()) {
			best = i
		}
	}
	return q.buckets[best].front().t, true
}

// Step pops and runs the earliest event, advancing the clock to its time.
// It reports whether an event was run.
//
//simcheck:hotpath
func (q *Queue) Step() bool {
	ev, ok := q.pop()
	if !ok {
		return false
	}
	q.now = ev.t
	q.dispatched++
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (q *Queue) Run() {
	for q.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
// Events scheduled during execution are honored if they fall within t.
func (q *Queue) RunUntil(t uint64) {
	for {
		next, ok := q.peekTime()
		if !ok || next > t {
			break
		}
		q.Step()
	}
	if q.now < t {
		q.now = t
	}
}

// RunWhile executes events while cond() returns true and events remain.
func (q *Queue) RunWhile(cond func() bool) {
	for cond() && q.Step() {
	}
}

// RunChecked executes events until the queue is empty, consulting cont
// every `every` dispatched events and stopping when it returns false.
func (q *Queue) RunChecked(every uint64, cont func() bool) {
	if every == 0 {
		q.Run()
		return
	}
	for {
		for i := uint64(0); i < every; i++ {
			if !q.Step() {
				return
			}
		}
		if !cont() {
			return
		}
	}
}

// Drain discards every pending event and returns the number dropped. The
// bucket storage (and its high-water capacity) is retained for reuse.
func (q *Queue) Drain() int {
	n := q.n
	for i := range q.buckets {
		b := &q.buckets[i]
		for j := b.head; j < len(b.ev); j++ {
			b.ev[j] = event{}
		}
		b.ev = b.ev[:0]
		b.head = 0
	}
	q.n = 0
	return n
}
