package eventq

import (
	"math/rand"
	"testing"
)

// The differential suite drives the calendar queue and the heap queue with
// identical randomized (seeded) schedules and requires the exact same
// dispatch order. Because both implementations order events by the total
// key (time, scheduling sequence), equal-timestamp ties MUST pop in FIFO
// scheduling order — that is the pinned determinism contract; any
// divergence is a bug in one of the queues.

// script is one randomized workload: a mix of up-front scheduling, nested
// rescheduling from inside callbacks, and occasional bursts of equal
// timestamps.
func runScript(q Interface, rng *rand.Rand, n int) []uint64 {
	var order []uint64
	id := uint64(0)
	var record func()
	schedule := func(delay uint64) {
		id++
		myID := id
		q.After(delay, func() {
			order = append(order, myID, q.Now())
			record()
		})
	}
	nested := n / 2
	record = func() {
		if nested > 0 {
			nested--
			// Nested events: mostly short hops (the simulator's common
			// case), sometimes a large jump, sometimes a same-time event.
			switch rng.Intn(10) {
			case 0:
				schedule(0) // same-timestamp tie
			case 1:
				schedule(uint64(rng.Intn(1 << 16))) // far jump
			default:
				schedule(uint64(rng.Intn(700)))
			}
		}
	}
	for i := 0; i < n-n/2; i++ {
		switch rng.Intn(8) {
		case 0:
			// Burst of ties at one timestamp.
			t := q.Now() + uint64(rng.Intn(1000))
			for j := 0; j < 3 && i < n-n/2; j++ {
				id++
				myID := id
				q.At(t, func() { order = append(order, myID, q.Now()) })
				i++
			}
		default:
			schedule(uint64(rng.Intn(5000)))
		}
	}
	q.Run()
	return order
}

func TestDifferentialCalendarVsHeap(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		cal := runScript(new(Queue), rand.New(rand.NewSource(seed)), 2000)
		heap := runScript(new(HeapQueue), rand.New(rand.NewSource(seed)), 2000)
		if len(cal) != len(heap) {
			t.Fatalf("seed %d: calendar dispatched %d records, heap %d", seed, len(cal)/2, len(heap)/2)
		}
		for i := range cal {
			if cal[i] != heap[i] {
				t.Fatalf("seed %d: dispatch record %d differs: calendar (id,now)=(%d,%d) heap (%d,%d)",
					seed, i/2, cal[i&^1], cal[i|1], heap[i&^1], heap[i|1])
			}
		}
	}
}

// TestDifferentialTieOrderPinned documents the tie contract explicitly:
// a block of events scheduled for one timestamp pops in scheduling order on
// both implementations, even when interleaved with earlier and later times.
func TestDifferentialTieOrderPinned(t *testing.T) {
	kinds(t, func(t *testing.T, newQ func() Interface) {
		q := newQ()
		var order []int
		q.At(50, func() { order = append(order, -1) })
		for i := 0; i < 100; i++ {
			i := i
			q.At(100, func() { order = append(order, i) })
		}
		q.At(70, func() { order = append(order, -2) })
		q.Run()
		want := append([]int{-1, -2}, make([]int, 0, 100)...)
		for i := 0; i < 100; i++ {
			want = append(want, i)
		}
		if len(order) != len(want) {
			t.Fatalf("got %d events, want %d", len(order), len(want))
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("position %d: got %d, want %d (ties must pop in FIFO scheduling order)", i, order[i], want[i])
			}
		}
	})
}
