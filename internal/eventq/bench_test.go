package eventq

import "testing"

func benchKinds(b *testing.B, f func(b *testing.B, q Interface)) {
	b.Helper()
	for _, k := range []Kind{Calendar, Heap} {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			f(b, New(k))
		})
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	benchKinds(b, func(b *testing.B, q Interface) {
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.At(uint64(i), fn)
			if q.Len() > 1024 {
				for q.Len() > 0 {
					q.Step()
				}
			}
		}
	})
}

func BenchmarkNestedChain(b *testing.B) {
	// Each event schedules the next: the simulator's common pattern.
	benchKinds(b, func(b *testing.B, q Interface) {
		n := 0
		var next func()
		next = func() {
			if n < b.N {
				n++
				q.After(3, next)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		q.After(1, next)
		q.Run()
	})
}

// BenchmarkMixedHorizon mimics the engine's event mix: many short-latency
// events plus an occasional long quantum-scale jump, against a standing
// population.
func BenchmarkMixedHorizon(b *testing.B) {
	benchKinds(b, func(b *testing.B, q Interface) {
		fn := func() {}
		for i := 0; i < 512; i++ {
			q.After(uint64(i%311), fn)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := uint64(i % 449)
			if i%64 == 0 {
				d = 50000 // quantum-scale outlier
			}
			q.After(d, fn)
			q.Step()
		}
	})
}
