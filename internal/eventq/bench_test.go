package eventq

import "testing"

func BenchmarkScheduleAndRun(b *testing.B) {
	var q Queue
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.At(uint64(i), fn)
		if q.Len() > 1024 {
			for q.Len() > 0 {
				q.Step()
			}
		}
	}
}

func BenchmarkNestedChain(b *testing.B) {
	// Each event schedules the next: the simulator's common pattern.
	var q Queue
	n := 0
	var next func()
	next = func() {
		if n < b.N {
			n++
			q.After(3, next)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	q.After(1, next)
	q.Run()
}
