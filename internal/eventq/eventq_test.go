package eventq

import (
	"testing"
	"testing/quick"
)

// kinds runs a subtest against every queue implementation.
func kinds(t *testing.T, f func(t *testing.T, newQ func() Interface)) {
	t.Helper()
	for _, k := range []Kind{Calendar, Heap} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			f(t, func() Interface { return New(k) })
		})
	}
}

func TestOrderingByTime(t *testing.T) {
	kinds(t, func(t *testing.T, newQ func() Interface) {
		q := newQ()
		var order []int
		q.At(30, func() { order = append(order, 3) })
		q.At(10, func() { order = append(order, 1) })
		q.At(20, func() { order = append(order, 2) })
		q.Run()
		if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
			t.Errorf("order = %v", order)
		}
		if q.Now() != 30 {
			t.Errorf("now = %d", q.Now())
		}
		if q.Dispatched() != 3 {
			t.Errorf("dispatched = %d", q.Dispatched())
		}
	})
}

func TestFIFOTieBreak(t *testing.T) {
	kinds(t, func(t *testing.T, newQ func() Interface) {
		q := newQ()
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			q.At(5, func() { order = append(order, i) })
		}
		q.Run()
		for i, v := range order {
			if v != i {
				t.Fatalf("same-time events ran out of order: %v", order)
			}
		}
	})
}

func TestAfterAndNestedScheduling(t *testing.T) {
	kinds(t, func(t *testing.T, newQ func() Interface) {
		q := newQ()
		var times []uint64
		q.After(10, func() {
			times = append(times, q.Now())
			q.After(5, func() {
				times = append(times, q.Now())
			})
		})
		q.Run()
		if len(times) != 2 || times[0] != 10 || times[1] != 15 {
			t.Errorf("times = %v", times)
		}
	})
}

func TestPastSchedulingClamped(t *testing.T) {
	kinds(t, func(t *testing.T, newQ func() Interface) {
		q := newQ()
		ran := false
		q.At(100, func() {
			q.At(50, func() { ran = true }) // in the past: clamp to now
			if q.Len() != 1 {
				t.Errorf("len = %d", q.Len())
			}
		})
		q.Run()
		if !ran {
			t.Error("clamped event did not run")
		}
		if q.Now() != 100 {
			t.Errorf("now = %d", q.Now())
		}
	})
}

func TestStepEmpty(t *testing.T) {
	kinds(t, func(t *testing.T, newQ func() Interface) {
		if newQ().Step() {
			t.Error("Step on empty queue returned true")
		}
	})
}

func TestRunUntil(t *testing.T) {
	kinds(t, func(t *testing.T, newQ func() Interface) {
		q := newQ()
		var ran []uint64
		for _, tm := range []uint64{5, 10, 15, 20} {
			tm := tm
			q.At(tm, func() { ran = append(ran, tm) })
		}
		q.RunUntil(12)
		if len(ran) != 2 {
			t.Errorf("ran = %v", ran)
		}
		if q.Now() != 12 {
			t.Errorf("now = %d, want 12", q.Now())
		}
		q.RunUntil(100)
		if len(ran) != 4 || q.Now() != 100 {
			t.Errorf("ran = %v now = %d", ran, q.Now())
		}
	})
}

func TestRunUntilHonorsNestedWithinBound(t *testing.T) {
	kinds(t, func(t *testing.T, newQ func() Interface) {
		q := newQ()
		var ran []uint64
		q.At(5, func() {
			q.After(3, func() { ran = append(ran, q.Now()) }) // t=8, within bound
		})
		q.RunUntil(10)
		if len(ran) != 1 || ran[0] != 8 {
			t.Errorf("ran = %v", ran)
		}
	})
}

func TestRunWhile(t *testing.T) {
	kinds(t, func(t *testing.T, newQ func() Interface) {
		q := newQ()
		count := 0
		for i := 0; i < 10; i++ {
			q.At(uint64(i), func() { count++ })
		}
		q.RunWhile(func() bool { return count < 3 })
		if count != 3 {
			t.Errorf("count = %d", count)
		}
	})
}

// Property: events always run in non-decreasing time order regardless of
// scheduling order.
func TestMonotoneClockProperty(t *testing.T) {
	kinds(t, func(t *testing.T, newQ func() Interface) {
		f := func(times []uint16) bool {
			q := newQ()
			var ran []uint64
			for _, tm := range times {
				tm := uint64(tm)
				q.At(tm, func() { ran = append(ran, q.Now()) })
			}
			q.Run()
			for i := 1; i < len(ran); i++ {
				if ran[i] < ran[i-1] {
					return false
				}
			}
			return len(ran) == len(times)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Error(err)
		}
	})
}

// TestCalendarSparseFarFuture exercises the direct-search path: a few
// events separated by gaps much larger than the calendar year.
func TestCalendarSparseFarFuture(t *testing.T) {
	var q Queue
	var ran []uint64
	for _, tm := range []uint64{1, 1 << 20, 1 << 30, 1 << 40} {
		tm := tm
		q.At(tm, func() { ran = append(ran, tm) })
	}
	q.Run()
	if len(ran) != 4 {
		t.Fatalf("ran %d events", len(ran))
	}
	for i := 1; i < len(ran); i++ {
		if ran[i] < ran[i-1] {
			t.Fatalf("out of order: %v", ran)
		}
	}
}

// TestCalendarResizeKeepsOrder drives the population through grow and
// shrink cycles while checking pop order.
func TestCalendarResizeKeepsOrder(t *testing.T) {
	var q Queue
	var last uint64
	popped := 0
	// Grow: thousands of pending events force multiple doublings.
	for i := 0; i < 5000; i++ {
		tm := uint64((i * 7919) % 100000)
		q.At(tm, func() {
			if q.Now() < last {
				t.Fatalf("clock went backwards: %d < %d", q.Now(), last)
			}
			last = q.Now()
			popped++
		})
	}
	// Shrink: drain fully (resize-down happens as n falls).
	q.Run()
	if popped != 5000 {
		t.Fatalf("popped %d/5000", popped)
	}
}

// TestZeroAllocSteadyState pins the tentpole's zero-allocation contract:
// once warmed up, scheduling and dispatching events allocates nothing, for
// both implementations — including when the dispatch loop runs with
// cancellation checks enabled (RunChecked with a non-blocking Done-channel
// probe, exactly what a context-carrying sim.Run does).
func TestZeroAllocSteadyState(t *testing.T) {
	kinds(t, func(t *testing.T, newQ func() Interface) {
		q := newQ()
		fn := func() {}
		// Warm up: grow internal storage to steady-state size.
		for i := 0; i < 4096; i++ {
			q.After(uint64(i%257), fn)
		}
		q.Run()
		// The check closure mirrors sim.Run's cancellation probe: a
		// non-blocking receive on a Done channel. Built once, outside the
		// measured region.
		done := make(chan struct{})
		cont := func() bool {
			select {
			case <-done:
				return false
			default:
				return true
			}
		}
		for name, drive := range map[string]func(){
			"Run":        func() { q.Run() },
			"RunChecked": func() { q.RunChecked(8, cont) },
		} {
			avg := testing.AllocsPerRun(100, func() {
				for i := 0; i < 64; i++ {
					q.After(uint64(i%257), fn)
				}
				drive()
			})
			if avg != 0 {
				t.Errorf("%s: steady-state allocs per 64-event batch = %v, want 0", name, avg)
			}
		}
	})
}

// TestRunChecked verifies the bounded-latency contract: cont is consulted
// every `every` events, and a false return stops dispatch within that
// window, leaving the remaining events pending.
func TestRunChecked(t *testing.T) {
	kinds(t, func(t *testing.T, newQ func() Interface) {
		q := newQ()
		ran := 0
		for i := 0; i < 100; i++ {
			q.At(uint64(i), func() { ran++ })
		}
		checks := 0
		q.RunChecked(10, func() bool {
			checks++
			return checks < 3 // stop at the third check
		})
		if ran != 30 {
			t.Errorf("dispatched %d events before stop, want 30", ran)
		}
		if q.Len() != 70 {
			t.Errorf("pending after stop = %d, want 70", q.Len())
		}
		// every == 0 falls back to an uncheckable full run.
		q.RunChecked(0, func() bool { t.Fatal("cont called with every=0"); return false })
		if ran != 100 || q.Len() != 0 {
			t.Errorf("full run after stop: ran=%d pending=%d", ran, q.Len())
		}
	})
}

// TestDrain verifies drain-on-cancel: pending events are discarded without
// running, the count is reported, and the queue remains usable.
func TestDrain(t *testing.T) {
	kinds(t, func(t *testing.T, newQ func() Interface) {
		q := newQ()
		ran := 0
		for i := 0; i < 50; i++ {
			q.At(uint64(i*3), func() { ran++ })
		}
		q.RunChecked(10, func() bool { return false })
		if ran != 10 {
			t.Fatalf("ran %d before cancel, want 10", ran)
		}
		if n := q.Drain(); n != 40 {
			t.Errorf("Drain() = %d, want 40", n)
		}
		if q.Len() != 0 {
			t.Errorf("Len after drain = %d, want 0", q.Len())
		}
		if ran != 10 {
			t.Errorf("drain ran events: ran = %d, want 10", ran)
		}
		// The queue is reusable after a drain.
		q.After(5, func() { ran++ })
		q.Run()
		if ran != 11 {
			t.Errorf("post-drain event did not run: ran = %d", ran)
		}
		if n := q.Drain(); n != 0 {
			t.Errorf("Drain of empty queue = %d, want 0", n)
		}
	})
}
