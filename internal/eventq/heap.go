package eventq

// HeapQueue is the binary-heap event queue: O(log n) insert and pop with no
// assumptions about the time distribution. It is kept as the fallback
// implementation and as the oracle the calendar queue is differentially
// tested against. The sift operations are hand-written over the event slice
// (rather than container/heap) so scheduling does not box events into
// interfaces — the steady state allocates nothing.
//
// The zero value is ready to use.
type HeapQueue struct {
	now        uint64
	seq        uint64
	dispatched uint64
	items      []event
}

// Now returns the current simulated time in cycles.
func (q *HeapQueue) Now() uint64 { return q.now }

// Len returns the number of pending events.
func (q *HeapQueue) Len() int { return len(q.items) }

// Dispatched returns the number of events executed so far.
func (q *HeapQueue) Dispatched() uint64 { return q.dispatched }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) is clamped to Now, which keeps zero-latency interactions safe.
func (q *HeapQueue) At(t uint64, fn func()) {
	if t < q.now {
		t = q.now
	}
	q.seq++
	q.items = append(q.items, event{t: t, seq: q.seq, fn: fn})
	q.siftUp(len(q.items) - 1)
}

// After schedules fn to run d cycles from now.
func (q *HeapQueue) After(d uint64, fn func()) {
	q.At(q.now+d, fn)
}

func (q *HeapQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.items[i].before(q.items[parent]) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *HeapQueue) siftDown(i int) {
	n := len(q.items)
	for {
		least := i
		if l := 2*i + 1; l < n && q.items[l].before(q.items[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && q.items[r].before(q.items[least]) {
			least = r
		}
		if least == i {
			return
		}
		q.items[i], q.items[least] = q.items[least], q.items[i]
		i = least
	}
}

// pop removes and returns the root (earliest) event.
func (q *HeapQueue) pop() event {
	ev := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = event{}
	q.items = q.items[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return ev
}

// Step pops and runs the earliest event, advancing the clock to its time.
// It reports whether an event was run.
func (q *HeapQueue) Step() bool {
	if len(q.items) == 0 {
		return false
	}
	ev := q.pop()
	q.now = ev.t
	q.dispatched++
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (q *HeapQueue) Run() {
	for q.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
// Events scheduled during execution are honored if they fall within t.
func (q *HeapQueue) RunUntil(t uint64) {
	for len(q.items) > 0 && q.items[0].t <= t {
		q.Step()
	}
	if q.now < t {
		q.now = t
	}
}

// RunWhile executes events while cond() returns true and events remain.
func (q *HeapQueue) RunWhile(cond func() bool) {
	for cond() && q.Step() {
	}
}

// RunChecked executes events until the queue is empty, consulting cont
// every `every` dispatched events and stopping when it returns false.
func (q *HeapQueue) RunChecked(every uint64, cont func() bool) {
	if every == 0 {
		q.Run()
		return
	}
	for {
		for i := uint64(0); i < every; i++ {
			if !q.Step() {
				return
			}
		}
		if !cont() {
			return
		}
	}
}

// Drain discards every pending event and returns the number dropped. The
// item storage is retained for reuse.
func (q *HeapQueue) Drain() int {
	n := len(q.items)
	for i := range q.items {
		q.items[i] = event{}
	}
	q.items = q.items[:0]
	return n
}
