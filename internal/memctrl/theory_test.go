package memctrl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/eventq"
	"repro/internal/mmq"
)

// The paper's premise is that a memory controller under non-bursty traffic
// behaves like an M/M/1 queue. These tests drive the simulated controller
// with Poisson arrivals and exponential-ish service and compare the
// measured waits against queueing theory — bridging the analytical model
// (internal/mmq) and the discrete-event substrate.

// poissonDrive submits n requests with Exp(lambda) inter-arrival times and
// returns the measured mean response time (wait + service).
func poissonDrive(t *testing.T, cfg Config, lambda float64, n int, seed int64) float64 {
	t.Helper()
	var q eventq.Queue
	c, err := New(cfg, &q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	submitted := 0
	var submit func()
	submit = func() {
		if submitted >= n {
			return
		}
		submitted++
		// Uniformly random addresses: effectively no row hits with a large
		// address space, so service ~= MissLatency deterministically.
		addr := uint64(rng.Int63n(1<<40)) &^ 63
		if err := c.Submit(addr, func(bool) {}); err != nil {
			t.Errorf("submit: %v", err)
		}
		gap := rng.ExpFloat64() / lambda
		if gap < 1 {
			gap = 1
		}
		q.After(uint64(gap), submit)
	}
	submit()
	q.Run()
	return c.Stats().AvgResponse()
}

// TestMD1MatchesTheory: deterministic service (row misses only), Poisson
// arrivals -> M/D/1. The measured response must match Pollaczek–Khinchine
// within simulation noise.
func TestMD1MatchesTheory(t *testing.T) {
	cfg := Config{
		Name: "t", Channels: 1, Banks: 1, RowBytes: 64, LineBytes: 64,
		// RowBytes == LineBytes: every random access opens a new row.
		HitLatency: 50, MissLatency: 50, Discipline: FCFS,
	}
	s := 50.0
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		lambda := rho / s
		got := poissonDrive(t, cfg, lambda, 30000, 42)
		md1 := mmq.Deterministic(lambda, s)
		want, err := md1.ResponseTime()
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-want) / want; rel > 0.08 {
			t.Errorf("rho=%.1f: measured W=%.1f vs M/D/1 W=%.1f (%.1f%% off)",
				rho, got, want, 100*rel)
		}
	}
}

// TestTwoChannelsMatchSplitTheory: the controller interleaves requests
// across channels by address, so with uniformly random addresses each
// channel is an independent M/D/1 queue at half the arrival rate — not a
// shared-queue M/D/2. The measurement must match the split-queue formula.
func TestTwoChannelsMatchSplitTheory(t *testing.T) {
	cfg := Config{
		Name: "t", Channels: 2, Banks: 1, RowBytes: 64, LineBytes: 64,
		HitLatency: 50, MissLatency: 50, Discipline: FCFS,
	}
	s := 50.0
	lambda := 0.8 / s * 2 // rho = 0.8 per channel after the split
	got := poissonDrive(t, cfg, lambda, 30000, 7)
	perChannel := mmq.Deterministic(lambda/2, s)
	want, err := perChannel.ResponseTime()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got-want) / want; rel > 0.08 {
		t.Errorf("2-channel W=%.1f vs split M/D/1 W=%.1f (%.1f%% off)",
			got, want, 100*rel)
	}
}

// TestRowBufferLocalityImprovesService: sequential addresses within DRAM
// rows must yield a lower average service time than random rows, matching
// the hit/miss latency mix.
func TestRowBufferLocalityImprovesService(t *testing.T) {
	cfg := Config{
		Name: "t", Channels: 1, Banks: 1, RowBytes: 4096, LineBytes: 64,
		HitLatency: 20, MissLatency: 80, Discipline: FCFS,
	}
	var q eventq.Queue
	c, err := New(cfg, &q)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential: 64 lines per 4 KB row -> 63/64 row hits.
	for i := 0; i < 6400; i++ {
		c.Submit(uint64(i)*64, func(bool) {})
		q.RunUntil(q.Now() + 100)
	}
	q.Run()
	seqSvc := c.Stats().AvgService()
	wantSeq := (1.0*80 + 63.0*20) / 64
	if math.Abs(seqSvc-wantSeq) > 2 {
		t.Errorf("sequential avg service = %.1f, want ~%.1f", seqSvc, wantSeq)
	}
}
