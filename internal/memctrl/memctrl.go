// Package memctrl simulates off-chip memory controllers: the shared
// resource whose queueing produces the memory contention studied in the
// paper. A controller owns one or more DRAM channels, each with a set of
// banks and a row-buffer; requests are address-interleaved across channels
// and serviced FCFS or FR-FCFS (row hits first), with distinct service
// times for row-buffer hits and misses.
//
// The controller is driven by the discrete-event clock from
// internal/eventq: Submit enqueues a request at the current time and the
// completion callback fires when service finishes. Queueing delay — the
// quantity that grows with the number of active cores and saturates the
// M/M/1 model — emerges from channel occupancy rather than being assumed.
package memctrl

import (
	"errors"
	"fmt"
)

// Clock is the subset of the event queue the controller needs. It is
// satisfied by *eventq.Queue.
type Clock interface {
	Now() uint64
	After(d uint64, fn func())
}

// Discipline selects the scheduling policy of each channel.
type Discipline uint8

const (
	// FCFS services requests strictly in arrival order.
	FCFS Discipline = iota
	// FRFCFS (first-ready, first-come-first-served) prefers requests that
	// hit the currently open row, falling back to the oldest request.
	FRFCFS
)

// String implements fmt.Stringer.
func (d Discipline) String() string {
	switch d {
	case FCFS:
		return "fcfs"
	case FRFCFS:
		return "fr-fcfs"
	default:
		return "unknown"
	}
}

// Config describes a memory controller.
type Config struct {
	// Name identifies the controller in stats output ("MC0").
	Name string
	// Channels is the number of parallel DRAM channels (dual-channel = 2).
	Channels int
	// Banks is the number of DRAM banks per channel.
	Banks int
	// RowBytes is the DRAM row (page) size used for row-buffer hit
	// detection.
	RowBytes uint64
	// LineBytes is the request granularity used for channel interleaving.
	LineBytes uint64
	// HitLatency is the service time (cycles) of a row-buffer hit.
	HitLatency uint64
	// MissLatency is the service time (cycles) of a row-buffer miss
	// (precharge + activate + CAS).
	MissLatency uint64
	// Discipline selects FCFS or FRFCFS.
	Discipline Discipline
	// MaxQueue bounds the number of queued (not yet in service) requests
	// per channel; 0 means unbounded. Submissions beyond the bound are
	// rejected so callers can model back-pressure.
	MaxQueue int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Channels < 1 {
		return fmt.Errorf("memctrl %s: channels %d < 1", c.Name, c.Channels)
	}
	if c.Banks < 1 {
		return fmt.Errorf("memctrl %s: banks %d < 1", c.Name, c.Banks)
	}
	if c.RowBytes == 0 || c.LineBytes == 0 {
		return fmt.Errorf("memctrl %s: row/line bytes must be positive", c.Name)
	}
	if c.HitLatency == 0 || c.MissLatency == 0 {
		return fmt.Errorf("memctrl %s: service latencies must be positive", c.Name)
	}
	if c.MissLatency < c.HitLatency {
		return fmt.Errorf("memctrl %s: miss latency %d < hit latency %d", c.Name, c.MissLatency, c.HitLatency)
	}
	return nil
}

// Stats aggregates controller activity.
type Stats struct {
	// Requests is the number of completed requests.
	Requests uint64
	// RowHits counts completed requests serviced from an open row.
	RowHits uint64
	// TotalWait is the sum of queueing delays (arrival to service start).
	TotalWait uint64
	// TotalService is the sum of service times.
	TotalService uint64
	// BusyCycles accumulates channel busy time (summed over channels).
	BusyCycles uint64
	// MaxQueueLen is the high-water mark of any single channel queue.
	MaxQueueLen int
	// Rejected counts submissions refused due to MaxQueue.
	Rejected uint64
}

// AvgWait returns the mean queueing delay per completed request.
func (s Stats) AvgWait() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.TotalWait) / float64(s.Requests)
}

// AvgService returns the mean service time per completed request.
func (s Stats) AvgService() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.TotalService) / float64(s.Requests)
}

// AvgResponse returns the mean total response time (wait + service).
func (s Stats) AvgResponse() float64 { return s.AvgWait() + s.AvgService() }

// RowHitRatio returns the fraction of requests that hit an open row.
func (s Stats) RowHitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Requests)
}

// Utilization returns channel utilization over elapsed cycles.
func (s Stats) Utilization(elapsed uint64, channels int) float64 {
	if elapsed == 0 || channels == 0 {
		return 0
	}
	return float64(s.BusyCycles) / (float64(elapsed) * float64(channels))
}

// ErrQueueFull is returned by Submit when the channel queue is bounded and
// full.
var ErrQueueFull = errors.New("memctrl: channel queue full")

type request struct {
	addr    uint64
	arrival uint64
	done    func(rowHit bool)
}

// reqRing is a growable power-of-two ring buffer of requests. Popping the
// head is O(1); the FR-FCFS mid-queue removal shifts only the entries ahead
// of the picked one. Once grown to the channel's high-water depth it never
// allocates again — the controller's part of the zero-alloc hot path.
type reqRing struct {
	buf  []request
	head int
	n    int
}

func (r *reqRing) len() int { return r.n }

func (r *reqRing) at(i int) *request {
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

//simcheck:hotpath
func (r *reqRing) push(req request) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = req
	r.n++
}

func (r *reqRing) grow() {
	size := 2 * len(r.buf)
	if size == 0 {
		size = 8
	}
	buf := make([]request, size)
	for i := 0; i < r.n; i++ {
		buf[i] = *r.at(i)
	}
	r.buf, r.head = buf, 0
}

// popAt removes and returns the i-th queued request, preserving the order
// of the rest. Entries before i shift one slot toward the tail so the
// common i==0 case is O(1).
//
//simcheck:hotpath
func (r *reqRing) popAt(i int) request {
	req := *r.at(i)
	for ; i > 0; i-- {
		*r.at(i) = *r.at(i - 1)
	}
	r.buf[r.head] = request{} // drop the callback reference
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return req
}

type channel struct {
	busy bool
	q    reqRing
	rows []int64 // open row per bank; -1 = closed
	// inService is the request currently occupying the channel, kept here
	// (with its row-hit flag) so the prebuilt finish callback needs no
	// per-service closure.
	inService  request
	serviceHit bool
	finishFn   func()
}

// Controller is one memory controller instance.
type Controller struct {
	cfg   Config
	clock Clock
	chans []channel
	stats Stats
}

// New builds a controller bound to the given clock.
func New(cfg Config, clock Clock) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		return nil, errors.New("memctrl: nil clock")
	}
	c := &Controller{cfg: cfg, clock: clock, chans: make([]channel, cfg.Channels)}
	for i := range c.chans {
		rows := make([]int64, cfg.Banks)
		for b := range rows {
			rows[b] = -1
		}
		c.chans[i].rows = rows
		i := i
		c.chans[i].finishFn = func() { c.finish(i) }
	}
	return c, nil
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without disturbing in-flight requests.
func (c *Controller) ResetStats() { c.stats = Stats{} }

// QueueLen returns the current number of queued (not in-service) requests
// across all channels.
func (c *Controller) QueueLen() int {
	n := 0
	for i := range c.chans {
		n += c.chans[i].q.len()
	}
	return n
}

// BusyChannels returns the number of channels currently serving a request.
func (c *Controller) BusyChannels() int {
	n := 0
	for i := range c.chans {
		if c.chans[i].busy {
			n++
		}
	}
	return n
}

// Occupancy returns the instantaneous number of requests in the system —
// queued plus in service — the quantity the telemetry sampler records and
// the M/M/1 model predicts as rho/(1-rho) in steady state.
func (c *Controller) Occupancy() int { return c.QueueLen() + c.BusyChannels() }

// ChannelQueueLen returns the queued (not in-service) request count of one
// channel, for per-channel queue-depth telemetry.
func (c *Controller) ChannelQueueLen(ch int) int { return c.chans[ch].q.len() }

// route returns the channel index for addr.
func (c *Controller) route(addr uint64) int {
	return int((addr / c.cfg.LineBytes) % uint64(c.cfg.Channels))
}

// rowOf returns the DRAM row number of addr.
func (c *Controller) rowOf(addr uint64) int64 {
	return int64(addr / c.cfg.RowBytes)
}

// bankOf returns the bank index of addr within its channel.
func (c *Controller) bankOf(addr uint64) int {
	return int(uint64(c.rowOf(addr)) % uint64(c.cfg.Banks))
}

// Submit enqueues a request for addr at the current simulated time. done is
// invoked exactly once, at the simulated completion time, with whether the
// request was serviced from an open row. Submit returns ErrQueueFull when a
// bounded queue is full.
//
//simcheck:hotpath
func (c *Controller) Submit(addr uint64, done func(rowHit bool)) error {
	chIdx := c.route(addr)
	ch := &c.chans[chIdx]
	if c.cfg.MaxQueue > 0 && ch.q.len() >= c.cfg.MaxQueue {
		c.stats.Rejected++
		return ErrQueueFull
	}
	ch.q.push(request{addr: addr, arrival: c.clock.Now(), done: done})
	if ch.q.len() > c.stats.MaxQueueLen {
		c.stats.MaxQueueLen = ch.q.len()
	}
	if !ch.busy {
		c.startNext(chIdx)
	}
	return nil
}

// startNext picks the next request on channel chIdx per the discipline and
// schedules its completion. It is a no-op while the channel is already
// serving a request (a completion callback may submit new work, which must
// queue rather than overlap).
func (c *Controller) startNext(chIdx int) {
	ch := &c.chans[chIdx]
	if ch.busy || ch.q.len() == 0 {
		return
	}
	pick := 0
	if c.cfg.Discipline == FRFCFS {
		for i := 0; i < ch.q.len(); i++ {
			r := ch.q.at(i)
			if ch.rows[c.bankOf(r.addr)] == c.rowOf(r.addr) {
				pick = i
				break
			}
		}
	}
	req := ch.q.popAt(pick)

	bank := c.bankOf(req.addr)
	row := c.rowOf(req.addr)
	rowHit := ch.rows[bank] == row
	ch.rows[bank] = row

	service := c.cfg.MissLatency
	if rowHit {
		service = c.cfg.HitLatency
	}
	now := c.clock.Now()
	c.stats.TotalWait += now - req.arrival
	c.stats.TotalService += service
	c.stats.BusyCycles += service
	if rowHit {
		c.stats.RowHits++
	}
	ch.busy = true
	ch.inService = req
	ch.serviceHit = rowHit
	c.clock.After(service, ch.finishFn)
}

// finish completes the in-service request on channel chIdx and pulls the
// next one. It runs from the channel's prebuilt clock callback.
func (c *Controller) finish(chIdx int) {
	ch := &c.chans[chIdx]
	c.stats.Requests++
	ch.busy = false
	req, rowHit := ch.inService, ch.serviceHit
	ch.inService = request{} // drop the callback reference while idle
	req.done(rowHit)
	c.startNext(chIdx)
}
