package memctrl

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/eventq"
)

func cfg1() Config {
	return Config{
		Name:        "MC0",
		Channels:    1,
		Banks:       4,
		RowBytes:    4096,
		LineBytes:   64,
		HitLatency:  20,
		MissLatency: 60,
		Discipline:  FCFS,
	}
}

func mustNew(t *testing.T, cfg Config, q *eventq.Queue) *Controller {
	t.Helper()
	c, err := New(cfg, q)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestValidate(t *testing.T) {
	good := cfg1()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.Banks = 0 },
		func(c *Config) { c.RowBytes = 0 },
		func(c *Config) { c.LineBytes = 0 },
		func(c *Config) { c.HitLatency = 0 },
		func(c *Config) { c.MissLatency = 0 },
		func(c *Config) { c.MissLatency = 10; c.HitLatency = 20 },
	}
	for i, mutate := range cases {
		c := cfg1()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	var q eventq.Queue
	if _, err := New(cfg1(), nil); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := New(Config{}, &q); err == nil {
		t.Error("zero config accepted")
	}
}

func TestSingleRequestTiming(t *testing.T) {
	var q eventq.Queue
	c := mustNew(t, cfg1(), &q)
	var doneAt uint64
	var hit bool
	if err := c.Submit(0, func(rowHit bool) { doneAt, hit = q.Now(), rowHit }); err != nil {
		t.Fatal(err)
	}
	q.Run()
	if doneAt != 60 {
		t.Errorf("done at %d, want 60 (cold row miss)", doneAt)
	}
	if hit {
		t.Error("cold access reported row hit")
	}
	s := c.Stats()
	if s.Requests != 1 || s.TotalWait != 0 || s.TotalService != 60 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRowBufferHit(t *testing.T) {
	var q eventq.Queue
	c := mustNew(t, cfg1(), &q)
	var times []uint64
	cb := func(rowHit bool) { times = append(times, q.Now()) }
	c.Submit(0, cb)   // row 0, miss, 60
	c.Submit(128, cb) // same row, hit, +20
	q.Run()
	if len(times) != 2 || times[0] != 60 || times[1] != 80 {
		t.Errorf("times = %v", times)
	}
	if rh := c.Stats().RowHits; rh != 1 {
		t.Errorf("row hits = %d", rh)
	}
}

func TestFCFSQueueing(t *testing.T) {
	var q eventq.Queue
	c := mustNew(t, cfg1(), &q)
	var order []uint64
	for i := 0; i < 3; i++ {
		addr := uint64(i) * 8192 // distinct rows -> all misses, same channel? no: route by line
		// Force same channel by using addresses that are multiples of
		// LineBytes*Channels; with Channels=1 every address shares channel 0.
		c.Submit(addr, func(addr uint64) func(bool) {
			return func(bool) { order = append(order, addr) }
		}(addr))
	}
	q.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 8192 || order[2] != 16384 {
		t.Errorf("completion order = %v", order)
	}
	s := c.Stats()
	// Waits: 0, 60, 120 => total 180.
	if s.TotalWait != 180 {
		t.Errorf("total wait = %d, want 180", s.TotalWait)
	}
	if s.AvgWait() != 60 {
		t.Errorf("avg wait = %v", s.AvgWait())
	}
	if s.AvgResponse() != 120 {
		t.Errorf("avg response = %v", s.AvgResponse())
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := cfg1()
	cfg.Discipline = FRFCFS
	var q eventq.Queue
	c := mustNew(t, cfg, &q)
	var order []string
	// First request opens row 0. While it is in service, enqueue a
	// different-row request then a same-row request; FR-FCFS should service
	// the row hit first.
	c.Submit(0, func(bool) { order = append(order, "first") })
	c.Submit(8192, func(bool) { order = append(order, "other-row") })
	c.Submit(64, func(bool) { order = append(order, "same-row") })
	q.Run()
	if len(order) != 3 || order[1] != "same-row" || order[2] != "other-row" {
		t.Errorf("order = %v", order)
	}
	// Under FCFS the other-row request would finish first.
	var q2 eventq.Queue
	c2 := mustNew(t, cfg1(), &q2)
	order = order[:0]
	c2.Submit(0, func(bool) { order = append(order, "first") })
	c2.Submit(8192, func(bool) { order = append(order, "other-row") })
	c2.Submit(64, func(bool) { order = append(order, "same-row") })
	q2.Run()
	if order[1] != "other-row" {
		t.Errorf("FCFS order = %v", order)
	}
}

func TestChannelInterleaving(t *testing.T) {
	cfg := cfg1()
	cfg.Channels = 2
	var q eventq.Queue
	c := mustNew(t, cfg, &q)
	var times []uint64
	// Lines 0 and 1 go to different channels: serviced in parallel.
	c.Submit(0, func(bool) { times = append(times, q.Now()) })
	c.Submit(64, func(bool) { times = append(times, q.Now()) })
	q.Run()
	if len(times) != 2 || times[0] != 60 || times[1] != 60 {
		t.Errorf("parallel channels times = %v", times)
	}
	if c.Stats().TotalWait != 0 {
		t.Errorf("wait = %d, want 0", c.Stats().TotalWait)
	}
}

func TestMaxQueueRejection(t *testing.T) {
	cfg := cfg1()
	cfg.MaxQueue = 1
	var q eventq.Queue
	c := mustNew(t, cfg, &q)
	noop := func(bool) {}
	if err := c.Submit(0, noop); err != nil { // goes straight to service
		t.Fatal(err)
	}
	if err := c.Submit(8192, noop); err != nil { // queued (1 <= max)
		t.Fatal(err)
	}
	if err := c.Submit(16384, noop); !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
	if c.Stats().Rejected != 1 {
		t.Errorf("rejected = %d", c.Stats().Rejected)
	}
	q.Run()
}

func TestQueueLenAndHighWater(t *testing.T) {
	var q eventq.Queue
	c := mustNew(t, cfg1(), &q)
	noop := func(bool) {}
	for i := 0; i < 5; i++ {
		c.Submit(uint64(i)*8192, noop)
	}
	// One in service, four queued.
	if got := c.QueueLen(); got != 4 {
		t.Errorf("QueueLen = %d, want 4", got)
	}
	q.Run()
	if c.Stats().MaxQueueLen != 4 {
		t.Errorf("MaxQueueLen = %d, want 4", c.Stats().MaxQueueLen)
	}
	if c.QueueLen() != 0 {
		t.Errorf("queue should drain")
	}
}

func TestUtilization(t *testing.T) {
	var q eventq.Queue
	c := mustNew(t, cfg1(), &q)
	c.Submit(0, func(bool) {})
	c.Submit(8192, func(bool) {})
	q.Run()
	// 2 misses back-to-back: busy 120 cycles, elapsed 120 -> utilization 1.
	u := c.Stats().Utilization(q.Now(), 1)
	if math.Abs(u-1) > 1e-12 {
		t.Errorf("utilization = %v, want 1", u)
	}
	if (Stats{}).Utilization(0, 1) != 0 {
		t.Error("zero elapsed utilization should be 0")
	}
}

func TestResetStats(t *testing.T) {
	var q eventq.Queue
	c := mustNew(t, cfg1(), &q)
	c.Submit(0, func(bool) {})
	q.Run()
	c.ResetStats()
	if s := c.Stats(); s.Requests != 0 || s.BusyCycles != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
}

func TestStatsZeroDivision(t *testing.T) {
	var s Stats
	if s.AvgWait() != 0 || s.AvgService() != 0 || s.RowHitRatio() != 0 {
		t.Error("zero stats should yield zero averages")
	}
}

func TestDisciplineString(t *testing.T) {
	if FCFS.String() != "fcfs" || FRFCFS.String() != "fr-fcfs" || Discipline(9).String() != "unknown" {
		t.Error("discipline strings wrong")
	}
}

// Under heavy random load the controller must conserve requests (every
// submission completes exactly once) and waits must grow with load.
func TestConservationUnderLoad(t *testing.T) {
	var q eventq.Queue
	cfg := cfg1()
	cfg.Channels = 2
	cfg.Discipline = FRFCFS
	c := mustNew(t, cfg, &q)
	rng := rand.New(rand.NewSource(2))
	const n = 2000
	completed := 0
	submitted := 0
	var submit func()
	submit = func() {
		if submitted >= n {
			return
		}
		submitted++
		addr := uint64(rng.Intn(1 << 24))
		if err := c.Submit(addr, func(bool) { completed++ }); err != nil {
			t.Errorf("submit: %v", err)
		}
		// Next arrival after a small random gap.
		q.After(uint64(rng.Intn(30)), submit)
	}
	submit()
	q.Run()
	if completed != n {
		t.Errorf("completed %d of %d", completed, n)
	}
	if got := c.Stats().Requests; got != n {
		t.Errorf("stats requests = %d", got)
	}
}

// A completion callback that immediately submits new work must not start a
// second request on the still-busy channel: channel busy time can never
// exceed elapsed time (regression test for an overlap bug that inflated
// effective bandwidth).
func TestNoServiceOverlapFromCallbackSubmit(t *testing.T) {
	var q eventq.Queue
	c := mustNew(t, cfg1(), &q)
	// Seed the queue with several requests, then have every completion
	// submit a fresh one, up to a bound.
	remaining := 50
	var onDone func(bool)
	onDone = func(bool) {
		if remaining > 0 {
			remaining--
			c.Submit(uint64(remaining)*8192, onDone)
		}
	}
	for i := 0; i < 5; i++ {
		c.Submit(uint64(1000+i)*8192, onDone)
	}
	q.Run()
	s := c.Stats()
	if s.BusyCycles > q.Now() {
		t.Errorf("busy %d cycles exceeds elapsed %d: overlapping service", s.BusyCycles, q.Now())
	}
	if s.Requests != 55 {
		t.Errorf("requests = %d, want 55", s.Requests)
	}
}

// An M/M/1-like arrival pattern at increasing rates should show increasing
// average wait — the contention mechanism the paper models.
func TestWaitGrowsWithLoad(t *testing.T) {
	runLoad := func(gap uint64) float64 {
		var q eventq.Queue
		c := mustNew(t, cfg1(), &q)
		rng := rand.New(rand.NewSource(5))
		const n = 3000
		submitted := 0
		var submit func()
		submit = func() {
			if submitted >= n {
				return
			}
			submitted++
			addr := uint64(rng.Intn(1<<28)) &^ 63
			c.Submit(addr, func(bool) {})
			q.After(gap, submit)
		}
		submit()
		q.Run()
		return c.Stats().AvgWait()
	}
	wSlow := runLoad(200) // light load: ~no waiting
	wFast := runLoad(55)  // beyond saturation (service ~60)
	if wSlow > 5 {
		t.Errorf("light-load wait = %v, want ~0", wSlow)
	}
	if wFast < 4*wSlow+10 {
		t.Errorf("heavy-load wait %v not much larger than light-load %v", wFast, wSlow)
	}
}
