package memctrl

import (
	"testing"

	"repro/internal/eventq"
)

func benchController(b *testing.B, disc Discipline) {
	var q eventq.Queue
	c, err := New(Config{
		Name: "b", Channels: 3, Banks: 8, RowBytes: 2048, LineBytes: 64,
		HitLatency: 26, MissLatency: 80, Discipline: disc,
	}, &q)
	if err != nil {
		b.Fatal(err)
	}
	noop := func(bool) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Submit(uint64(i)*64, noop)
		if c.QueueLen() > 256 {
			q.RunUntil(q.Now() + 10000)
		}
	}
	q.Run()
}

func BenchmarkSubmitFCFS(b *testing.B)   { benchController(b, FCFS) }
func BenchmarkSubmitFRFCFS(b *testing.B) { benchController(b, FRFCFS) }
