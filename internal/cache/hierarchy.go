package cache

// Hierarchy is an ordered list of cache levels searched from fastest to
// slowest. Levels may be shared between several Hierarchy values (e.g. a
// per-core L1 in front of a socket-shared L3): sharing is expressed simply
// by placing the same *Cache pointer in several hierarchies.
type Hierarchy struct {
	levels []*Cache
	// MemLatency is the flat latency charged on a full miss in addition to
	// the per-level hit latencies; the memory-controller queueing delay is
	// modeled separately by internal/memctrl.
	stats HierarchyStats
}

// HierarchyStats aggregates per-hierarchy outcomes (the per-level counters
// live on the individual caches, which may be shared).
type HierarchyStats struct {
	Accesses uint64
	// LLCMisses counts accesses that missed every level — the off-chip
	// requests.
	LLCMisses uint64
}

// Result describes the outcome of one hierarchy access.
type Result struct {
	// HitLevel is the index of the level that hit, or -1 on a full miss.
	HitLevel int
	// Latency is the sum of hit latencies of all levels probed. On a full
	// miss it includes every level's latency; DRAM time is added by the
	// memory-controller model.
	Latency uint64
	// Miss reports a full miss (off-chip request required).
	Miss bool
}

// NewHierarchy builds a hierarchy over the given levels (fastest first).
func NewHierarchy(levels ...*Cache) *Hierarchy {
	return &Hierarchy{levels: append([]*Cache(nil), levels...)}
}

// Levels returns the cache levels (fastest first).
func (h *Hierarchy) Levels() []*Cache { return h.levels }

// Stats returns a copy of the per-hierarchy counters.
func (h *Hierarchy) Stats() HierarchyStats { return h.stats }

// LLC returns the last (slowest, largest) level, or nil for an empty
// hierarchy.
func (h *Hierarchy) LLC() *Cache {
	if len(h.levels) == 0 {
		return nil
	}
	return h.levels[len(h.levels)-1]
}

// Access walks the hierarchy for addr: each level is probed in order and,
// on a miss, the line is allocated there (inclusive fill) before probing the
// next level. The returned Result carries the accumulated latency and
// whether the access must go off-chip.
func (h *Hierarchy) Access(addr uint64) Result {
	h.stats.Accesses++
	res := Result{HitLevel: -1}
	for i, lvl := range h.levels {
		res.Latency += lvl.cfg.Latency
		if lvl.Access(addr) {
			res.HitLevel = i
			return res
		}
	}
	res.Miss = true
	h.stats.LLCMisses++
	return res
}

// Invalidate removes addr's line from every level, returning whether any
// level held a copy.
func (h *Hierarchy) Invalidate(addr uint64) bool {
	dropped := false
	for _, lvl := range h.levels {
		if lvl.Invalidate(addr) {
			dropped = true
		}
	}
	return dropped
}

// Flush invalidates every level.
func (h *Hierarchy) Flush() {
	for _, lvl := range h.levels {
		lvl.Flush()
	}
}

// ResetStats zeroes the hierarchy counters and every level's counters.
// Note that shared levels are reset once per call even if referenced by
// several hierarchies; callers resetting a machine should reset each
// distinct cache exactly once (see internal/machine).
func (h *Hierarchy) ResetStats() {
	h.stats = HierarchyStats{}
	for _, lvl := range h.levels {
		lvl.ResetStats()
	}
}
