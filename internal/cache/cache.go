// Package cache simulates set-associative cache memories and multi-level
// cache hierarchies. It filters the memory-reference streams produced by
// workloads so that only last-level misses become off-chip requests — the
// quantity whose contention behaviour the paper studies.
//
// The simulator is single-threaded (discrete-event), so caches are not
// safe for concurrent use and require no locking. Coherence traffic is not
// modeled: the paper's workloads partition their data between threads, and
// the observations of interest (LLC miss counts roughly independent of the
// number of active cores) hold without invalidation effects.
package cache

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Policy selects a replacement policy.
type Policy uint8

const (
	// LRU evicts the least-recently-used way (exact, per-set timestamps).
	LRU Policy = iota
	// PLRU evicts following a tree-based pseudo-LRU (requires power-of-two
	// associativity).
	PLRU
	// Random evicts a uniformly random way (deterministic per seed).
	Random
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case PLRU:
		return "plru"
	case Random:
		return "random"
	default:
		return "unknown"
	}
}

// Config describes one cache level.
type Config struct {
	// Name identifies the level in stats output ("L1", "L2", "L3").
	Name string
	// Size is the total capacity in bytes.
	Size uint64
	// Line is the cache-line size in bytes (power of two).
	Line uint64
	// Ways is the associativity. Size/(Line*Ways) must be a power of two.
	Ways int
	// Latency is the hit latency in cycles.
	Latency uint64
	// Policy selects the replacement policy (default LRU).
	Policy Policy
	// Seed seeds the Random policy.
	Seed int64
	// NextLinePrefetch, when set, inserts line+1 on every demand miss,
	// modeling a simple hardware prefetcher.
	NextLinePrefetch bool
}

// Stats counts the accesses observed by one cache.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Evictions  uint64
	Prefetches uint64
}

// MissRatio returns Misses/Accesses, or 0 for an untouched cache.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg      Config
	sets     int
	setMask  uint64
	lineBits uint
	tags     []uint64 // sets*ways entries
	valid    []bool
	lastUse  []uint64 // LRU timestamps
	plru     []uint64 // per-set PLRU tree bits
	tick     uint64
	rng      *rand.Rand
	stats    Stats
}

// New validates cfg and constructs the cache.
func New(cfg Config) (*Cache, error) {
	if cfg.Line == 0 || bits.OnesCount64(cfg.Line) != 1 {
		return nil, fmt.Errorf("cache %s: line size %d must be a power of two", cfg.Name, cfg.Line)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache %s: ways %d must be positive", cfg.Name, cfg.Ways)
	}
	if cfg.Size == 0 || cfg.Size%(cfg.Line*uint64(cfg.Ways)) != 0 {
		return nil, fmt.Errorf("cache %s: size %d not divisible by line*ways", cfg.Name, cfg.Size)
	}
	sets := cfg.Size / (cfg.Line * uint64(cfg.Ways))
	if bits.OnesCount64(sets) != 1 {
		return nil, fmt.Errorf("cache %s: set count %d must be a power of two", cfg.Name, sets)
	}
	if cfg.Policy == PLRU && bits.OnesCount(uint(cfg.Ways)) != 1 {
		return nil, fmt.Errorf("cache %s: PLRU requires power-of-two ways, got %d", cfg.Name, cfg.Ways)
	}
	c := &Cache{
		cfg:      cfg,
		sets:     int(sets),
		setMask:  sets - 1,
		lineBits: uint(bits.TrailingZeros64(cfg.Line)),
		tags:     make([]uint64, int(sets)*cfg.Ways),
		valid:    make([]bool, int(sets)*cfg.Ways),
	}
	switch cfg.Policy {
	case LRU:
		c.lastUse = make([]uint64, len(c.tags))
	case PLRU:
		c.plru = make([]uint64, sets)
	case Random:
		c.rng = rand.New(rand.NewSource(cfg.Seed))
	default:
		return nil, fmt.Errorf("cache %s: unknown policy %d", cfg.Name, cfg.Policy)
	}
	return c, nil
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Stats returns a copy of the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// lineOf returns the line-granular tag of an address.
func (c *Cache) lineOf(addr uint64) uint64 { return addr >> c.lineBits }

// Access looks up addr, allocating on miss, and reports whether it hit.
// Stores allocate like loads (write-allocate); dirty-line writeback traffic
// is not modeled separately.
func (c *Cache) Access(addr uint64) bool {
	hit := c.touch(addr, false)
	if !hit && c.cfg.NextLinePrefetch {
		line := c.lineOf(addr)
		c.touch((line+1)<<c.lineBits, true)
	}
	return hit
}

// touch performs the lookup/fill. prefetch suppresses demand counters.
func (c *Cache) touch(addr uint64, prefetch bool) bool {
	line := c.lineOf(addr)
	set := int(line & c.setMask)
	base := set * c.cfg.Ways
	if !prefetch {
		c.stats.Accesses++
	} else {
		c.stats.Prefetches++
	}
	c.tick++

	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.noteUse(set, w)
			return true
		}
	}
	if !prefetch {
		c.stats.Misses++
	}
	// Fill: pick an invalid way first, else evict per policy.
	victim := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = c.victim(set)
		c.stats.Evictions++
	}
	i := base + victim
	c.tags[i] = line
	c.valid[i] = true
	c.noteUse(set, victim)
	return false
}

// Contains reports whether addr's line is resident without updating
// replacement state or counters.
func (c *Cache) Contains(addr uint64) bool {
	line := c.lineOf(addr)
	base := int(line&c.setMask) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// Invalidate removes addr's line from the cache if present, returning
// whether a copy was dropped. Used by the coherence directory to model
// cross-socket invalidations; counters are not affected.
func (c *Cache) Invalidate(addr uint64) bool {
	line := c.lineOf(addr)
	base := int(line&c.setMask) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			c.valid[base+w] = false
			return true
		}
	}
	return false
}

// Flush invalidates the whole cache, leaving counters intact.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// ResetStats zeroes the access counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// noteUse updates replacement metadata after way w of set was referenced.
func (c *Cache) noteUse(set, w int) {
	switch c.cfg.Policy {
	case LRU:
		c.lastUse[set*c.cfg.Ways+w] = c.tick
	case PLRU:
		c.plruTouch(set, w)
	}
}

// victim selects the way to evict from a full set.
func (c *Cache) victim(set int) int {
	switch c.cfg.Policy {
	case LRU:
		base := set * c.cfg.Ways
		best, bestUse := 0, c.lastUse[base]
		for w := 1; w < c.cfg.Ways; w++ {
			if u := c.lastUse[base+w]; u < bestUse {
				best, bestUse = w, u
			}
		}
		return best
	case PLRU:
		return c.plruVictim(set)
	case Random:
		return c.rng.Intn(c.cfg.Ways)
	}
	return 0
}

// plruTouch flips the tree bits on the path to way w to point away from it.
func (c *Cache) plruTouch(set, w int) {
	ways := c.cfg.Ways
	bitsState := c.plru[set]
	node := 0 // root of implicit binary tree over ways
	lo, hi := 0, ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if w < mid {
			// Went left: point the bit right (away from w).
			bitsState |= 1 << uint(node)
			node = 2*node + 1
			hi = mid
		} else {
			bitsState &^= 1 << uint(node)
			node = 2*node + 2
			lo = mid
		}
	}
	c.plru[set] = bitsState
}

// plruVictim follows the tree bits to the pseudo-LRU way.
func (c *Cache) plruVictim(set int) int {
	ways := c.cfg.Ways
	bitsState := c.plru[set]
	node := 0
	lo, hi := 0, ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if bitsState&(1<<uint(node)) != 0 {
			// Bit points right.
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}
