package cache

import "testing"

func benchCache(b *testing.B, policy Policy) {
	c, err := New(Config{Name: "b", Size: 256 << 10, Line: 64, Ways: 8, Latency: 10, Policy: policy})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Mixed pattern: stride with periodic reuse.
		c.Access(uint64(i%100000) * 64)
	}
}

func BenchmarkAccessLRU(b *testing.B)    { benchCache(b, LRU) }
func BenchmarkAccessPLRU(b *testing.B)   { benchCache(b, PLRU) }
func BenchmarkAccessRandom(b *testing.B) { benchCache(b, Random) }

func BenchmarkHierarchyAccess(b *testing.B) {
	l1, _ := New(Config{Name: "L1", Size: 2 << 10, Line: 64, Ways: 8, Latency: 4})
	l2, _ := New(Config{Name: "L2", Size: 16 << 10, Line: 64, Ways: 8, Latency: 10})
	l3, _ := New(Config{Name: "L3", Size: 768 << 10, Line: 64, Ways: 12, Latency: 38})
	h := NewHierarchy(l1, l2, l3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i%200000) * 64)
	}
}
