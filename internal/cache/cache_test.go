package cache

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func small(t *testing.T, policy Policy) *Cache {
	// 4 sets x 2 ways x 64B lines = 512B.
	return mustNew(t, Config{Name: "t", Size: 512, Line: 64, Ways: 2, Latency: 1, Policy: policy})
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Size: 512, Line: 0, Ways: 2},                       // zero line
		{Size: 512, Line: 48, Ways: 2},                      // non-pow2 line
		{Size: 512, Line: 64, Ways: 0},                      // zero ways
		{Size: 500, Line: 64, Ways: 2},                      // size not divisible
		{Size: 64 * 3 * 2, Line: 64, Ways: 2},               // 3 sets, not pow2
		{Size: 64 * 4 * 3, Line: 64, Ways: 3, Policy: PLRU}, // PLRU non-pow2 ways
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
	// 3-way LRU is fine (only PLRU needs pow2 ways).
	if _, err := New(Config{Size: 64 * 4 * 3, Line: 64, Ways: 3}); err != nil {
		t.Errorf("3-way LRU rejected: %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := small(t, LRU)
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("second access missed")
	}
	if !c.Access(63) {
		t.Error("same-line access missed")
	}
	if c.Access(64) {
		t.Error("next line should cold-miss")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t, LRU) // 4 sets, 2 ways; addresses mapping to set 0: multiples of 4*64=256.
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Access(a) // miss, fill
	c.Access(b) // miss, fill -> set full
	c.Access(a) // hit, a most recent
	c.Access(d) // miss, evicts b (LRU)
	if !c.Contains(a) {
		t.Error("a should survive")
	}
	if c.Contains(b) {
		t.Error("b should be evicted")
	}
	if !c.Contains(d) {
		t.Error("d should be resident")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := small(t, LRU)
	c.Access(0)
	c.Access(256)
	before := c.Stats()
	c.Contains(0)
	c.Contains(999999)
	if c.Stats() != before {
		t.Error("Contains changed stats")
	}
	// Contains must not refresh LRU: touch b, then query a via Contains,
	// then fill; a must still be the LRU victim.
	c2 := small(t, LRU)
	c2.Access(0)   // a
	c2.Access(256) // b  (a is LRU)
	c2.Contains(0) // must NOT refresh a
	c2.Access(512) // evict LRU = a
	if c2.Contains(0) {
		t.Error("Contains refreshed LRU state")
	}
}

func TestFlush(t *testing.T) {
	c := small(t, LRU)
	c.Access(0)
	c.Flush()
	if c.Contains(0) {
		t.Error("line survived flush")
	}
	if c.Access(0) {
		t.Error("post-flush access should miss")
	}
}

func TestResetStats(t *testing.T) {
	c := small(t, LRU)
	c.Access(0)
	c.ResetStats()
	if s := c.Stats(); s.Accesses != 0 || s.Misses != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
	if !c.Contains(0) {
		t.Error("ResetStats should not invalidate contents")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	// 8 KB cache, 4 KB working set swept repeatedly: only cold misses.
	c := mustNew(t, Config{Name: "t", Size: 8192, Line: 64, Ways: 4, Latency: 1})
	for round := 0; round < 10; round++ {
		for addr := uint64(0); addr < 4096; addr += 64 {
			c.Access(addr)
		}
	}
	if m := c.Stats().Misses; m != 4096/64 {
		t.Errorf("misses = %d, want %d cold misses only", m, 4096/64)
	}
}

func TestWorkingSetExceedsCapacityThrashes(t *testing.T) {
	// 512B cache (8 lines), 4 KB cyclic sweep with LRU: every access misses
	// (classic LRU worst case for a cyclic pattern larger than capacity).
	c := small(t, LRU)
	total := 0
	for round := 0; round < 5; round++ {
		for addr := uint64(0); addr < 4096; addr += 64 {
			c.Access(addr)
			total++
		}
	}
	if m := c.Stats().Misses; m != uint64(total) {
		t.Errorf("misses = %d, want %d (full thrash)", m, total)
	}
}

func TestPLRUBasic(t *testing.T) {
	c := mustNew(t, Config{Name: "t", Size: 1024, Line: 64, Ways: 4, Latency: 1, Policy: PLRU})
	// 4 sets. Set 0 addresses: multiples of 4*64 = 256.
	addrs := []uint64{0, 256, 512, 768}
	for _, a := range addrs {
		c.Access(a)
	}
	for _, a := range addrs {
		if !c.Contains(a) {
			t.Errorf("addr %d missing after fill", a)
		}
	}
	// Fill a 5th line: some line must be evicted, set stays at 4 lines.
	c.Access(1024)
	resident := 0
	for _, a := range append(addrs, 1024) {
		if c.Contains(a) {
			resident++
		}
	}
	if resident != 4 {
		t.Errorf("resident = %d, want 4", resident)
	}
	if !c.Contains(1024) {
		t.Error("newly filled line must be resident")
	}
}

func TestPLRUVictimIsNotMostRecent(t *testing.T) {
	c := mustNew(t, Config{Name: "t", Size: 512, Line: 64, Ways: 8, Latency: 1, Policy: PLRU})
	// Single set (512/(64*8) = 1). Fill 8 ways, touch way of addr 0 last.
	for i := uint64(0); i < 8; i++ {
		c.Access(i * 64)
	}
	c.Access(0) // most recently used
	c.Access(8 * 64)
	if !c.Contains(0) {
		t.Error("PLRU evicted the most recently used line")
	}
}

func TestRandomPolicyDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		c := mustNew(t, Config{Name: "t", Size: 512, Line: 64, Ways: 2, Latency: 1, Policy: Random, Seed: seed})
		var hits []bool
		for i := 0; i < 200; i++ {
			hits = append(hits, c.Access(uint64(i%6)*256))
		}
		return hits
	}
	a1, a2 := run(1), run(1)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed produced different behavior")
		}
	}
}

func TestNextLinePrefetch(t *testing.T) {
	c := mustNew(t, Config{Name: "t", Size: 8192, Line: 64, Ways: 4, Latency: 1, NextLinePrefetch: true})
	c.Access(0) // miss; prefetches line 1
	if !c.Contains(64) {
		t.Error("next line not prefetched")
	}
	if c.Access(64) == false {
		t.Error("prefetched line should hit")
	}
	s := c.Stats()
	if s.Prefetches != 1 {
		t.Errorf("prefetches = %d, want 1", s.Prefetches)
	}
	if s.Misses != 1 {
		t.Errorf("misses = %d; prefetch must not count as demand miss", s.Misses)
	}
	// Sequential sweep with prefetch should roughly halve demand misses.
	c2 := mustNew(t, Config{Name: "t", Size: 512, Line: 64, Ways: 2, Latency: 1, NextLinePrefetch: true})
	for addr := uint64(0); addr < 64*1024; addr += 64 {
		c2.Access(addr)
	}
	ratio := c2.Stats().MissRatio()
	if ratio > 0.55 {
		t.Errorf("sequential miss ratio with prefetch = %v, want ~0.5", ratio)
	}
}

func TestMissRatio(t *testing.T) {
	if (Stats{}).MissRatio() != 0 {
		t.Error("empty stats miss ratio should be 0")
	}
	s := Stats{Accesses: 4, Misses: 1}
	if s.MissRatio() != 0.25 {
		t.Errorf("ratio = %v", s.MissRatio())
	}
}

func TestHierarchyAccessPath(t *testing.T) {
	l1 := mustNew(t, Config{Name: "L1", Size: 512, Line: 64, Ways: 2, Latency: 2})
	l2 := mustNew(t, Config{Name: "L2", Size: 4096, Line: 64, Ways: 4, Latency: 10})
	h := NewHierarchy(l1, l2)
	if h.LLC() != l2 {
		t.Error("LLC should be the last level")
	}

	r := h.Access(0)
	if !r.Miss || r.HitLevel != -1 || r.Latency != 12 {
		t.Errorf("cold access = %+v", r)
	}
	r = h.Access(0)
	if r.Miss || r.HitLevel != 0 || r.Latency != 2 {
		t.Errorf("L1 hit = %+v", r)
	}
	// Evict line 0 from tiny L1 (set 0 holds multiples of 256) but keep in L2.
	h.Access(256)
	h.Access(512)
	r = h.Access(0)
	if r.Miss || r.HitLevel != 1 || r.Latency != 12 {
		t.Errorf("L2 hit = %+v", r)
	}
	st := h.Stats()
	if st.Accesses != 5 {
		t.Errorf("hierarchy accesses = %d", st.Accesses)
	}
	if st.LLCMisses != 3 {
		t.Errorf("LLC misses = %d, want 3 (cold 0, cold 256, cold 512)", st.LLCMisses)
	}
}

func TestHierarchySharedLevel(t *testing.T) {
	shared := mustNew(t, Config{Name: "LLC", Size: 8192, Line: 64, Ways: 4, Latency: 20})
	h1 := NewHierarchy(mustNew(t, Config{Name: "L1", Size: 512, Line: 64, Ways: 2, Latency: 1}), shared)
	h2 := NewHierarchy(mustNew(t, Config{Name: "L1", Size: 512, Line: 64, Ways: 2, Latency: 1}), shared)
	h1.Access(0) // fills shared
	r := h2.Access(0)
	if r.Miss {
		t.Error("second core should hit the shared LLC")
	}
	if r.HitLevel != 1 {
		t.Errorf("hit level = %d, want 1", r.HitLevel)
	}
}

func TestHierarchyFlushAndReset(t *testing.T) {
	l1 := mustNew(t, Config{Name: "L1", Size: 512, Line: 64, Ways: 2, Latency: 1})
	h := NewHierarchy(l1)
	h.Access(0)
	h.Flush()
	if l1.Contains(0) {
		t.Error("flush did not propagate")
	}
	h.ResetStats()
	if h.Stats().Accesses != 0 || l1.Stats().Accesses != 0 {
		t.Error("reset did not propagate")
	}
}

func TestEmptyHierarchy(t *testing.T) {
	h := NewHierarchy()
	if h.LLC() != nil {
		t.Error("empty hierarchy LLC should be nil")
	}
	r := h.Access(0)
	if !r.Miss {
		t.Error("empty hierarchy access should miss")
	}
}

// Property: for any address sequence, hits+misses == accesses and the cache
// never reports more resident lines than its capacity.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(addrs []uint16, policySel uint8) bool {
		pol := Policy(policySel % 3)
		c, err := New(Config{Name: "p", Size: 2048, Line: 64, Ways: 4, Latency: 1, Policy: pol, Seed: 42})
		if err != nil {
			return false
		}
		hits := uint64(0)
		for _, a := range addrs {
			if c.Access(uint64(a)) {
				hits++
			}
		}
		s := c.Stats()
		if s.Accesses != uint64(len(addrs)) || s.Misses != s.Accesses-hits {
			return false
		}
		// Count resident lines among all possible lines in the address space.
		resident := 0
		for line := uint64(0); line < (1<<16)/64+2; line++ {
			if c.Contains(line * 64) {
				resident++
			}
		}
		return resident <= 2048/64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: immediately re-accessing any address is always a hit, for every
// policy.
func TestRehitProperty(t *testing.T) {
	f := func(addrs []uint32, policySel uint8) bool {
		pol := Policy(policySel % 3)
		c, err := New(Config{Name: "p", Size: 4096, Line: 64, Ways: 4, Latency: 1, Policy: pol, Seed: 7})
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Access(uint64(a))
			if !c.Access(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || PLRU.String() != "plru" || Random.String() != "random" {
		t.Error("policy strings wrong")
	}
	if Policy(9).String() != "unknown" {
		t.Error("unknown policy string")
	}
}

func TestInvalidate(t *testing.T) {
	c := small(t, LRU)
	c.Access(0)
	if !c.Invalidate(32) { // same line as 0
		t.Error("Invalidate missed a resident line")
	}
	if c.Contains(0) {
		t.Error("line survived invalidation")
	}
	if c.Invalidate(0) {
		t.Error("double invalidation reported a copy")
	}
	// Counters untouched.
	if s := c.Stats(); s.Accesses != 1 || s.Misses != 1 {
		t.Errorf("stats changed: %+v", s)
	}
	// Next access misses again (a coherence miss).
	if c.Access(0) {
		t.Error("post-invalidation access should miss")
	}
}

func TestHierarchyInvalidate(t *testing.T) {
	l1 := mustNew(t, Config{Name: "L1", Size: 512, Line: 64, Ways: 2, Latency: 2})
	l2 := mustNew(t, Config{Name: "L2", Size: 4096, Line: 64, Ways: 4, Latency: 10})
	h := NewHierarchy(l1, l2)
	h.Access(0)
	if !h.Invalidate(0) {
		t.Error("hierarchy invalidate missed")
	}
	if l1.Contains(0) || l2.Contains(0) {
		t.Error("copy survived in some level")
	}
	if h.Invalidate(0) {
		t.Error("no copies should remain")
	}
}
