package sampler

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); !errors.Is(err, ErrBadWindow) {
		t.Errorf("err = %v", err)
	}
	s, err := New(100)
	if err != nil || s.WindowCycles() != 100 {
		t.Errorf("New: %v", err)
	}
}

func TestNewMicros(t *testing.T) {
	// 5 us at 2.66 GHz = 13300 cycles (the paper's Intel NUMA setting).
	s, err := NewMicros(5, 2.66)
	if err != nil {
		t.Fatal(err)
	}
	if s.WindowCycles() != 13300 {
		t.Errorf("window = %d cycles, want 13300", s.WindowCycles())
	}
}

func TestRecordBinning(t *testing.T) {
	s, _ := New(100)
	s.Record(0)
	s.Record(99)
	s.Record(100)
	s.Record(250)
	w := s.Windows()
	if len(w) != 3 {
		t.Fatalf("windows = %v", w)
	}
	if w[0] != 2 || w[1] != 1 || w[2] != 1 {
		t.Errorf("windows = %v", w)
	}
	if s.Total() != 4 {
		t.Errorf("total = %d", s.Total())
	}
}

func TestInteriorEmptyWindowsKept(t *testing.T) {
	s, _ := New(10)
	s.Record(5)
	s.Record(95)
	w := s.Windows()
	if len(w) != 10 {
		t.Fatalf("windows = %v", w)
	}
	empty := 0
	for _, c := range w {
		if c == 0 {
			empty++
		}
	}
	if empty != 8 {
		t.Errorf("empty windows = %d, want 8", empty)
	}
}

func TestNonEmptyFraction(t *testing.T) {
	s, _ := New(10)
	if s.NonEmptyFraction() != 0 {
		t.Error("empty sampler fraction should be 0")
	}
	s.Record(5)
	s.Record(15)
	s.Record(95) // windows 0,1,9 non-empty of 10
	if f := s.NonEmptyFraction(); f != 0.3 {
		t.Errorf("fraction = %v, want 0.3", f)
	}
}

func TestHook(t *testing.T) {
	s, _ := New(50)
	hook := s.Hook()
	hook(10, 3)
	hook(60, 1)
	if s.Total() != 2 || len(s.Windows()) != 2 {
		t.Errorf("hook did not record: %v", s.Windows())
	}
}

func TestPadTo(t *testing.T) {
	s, _ := New(10)
	s.Record(5)
	s.PadTo(100) // windows 0..9
	if len(s.Windows()) != 10 {
		t.Errorf("windows = %d, want 10", len(s.Windows()))
	}
	if f := s.NonEmptyFraction(); f != 0.1 {
		t.Errorf("fraction = %v, want 0.1", f)
	}
	// Padding never shrinks, and boundary cycles round up correctly.
	s.PadTo(50)
	if len(s.Windows()) != 10 {
		t.Error("PadTo shrank the series")
	}
	s.PadTo(101) // cycle 101 belongs to window 10
	if len(s.Windows()) != 11 {
		t.Errorf("windows = %d, want 11", len(s.Windows()))
	}
	s.PadTo(0)
	if len(s.Windows()) != 11 {
		t.Error("PadTo(0) should be a no-op")
	}
}

func TestReset(t *testing.T) {
	s, _ := New(10)
	s.Record(5)
	s.Reset()
	if s.Total() != 0 || len(s.Windows()) != 0 {
		t.Error("reset incomplete")
	}
	s.Record(5)
	if s.Total() != 1 {
		t.Error("sampler unusable after reset")
	}
}

// Property: total equals the sum of window counts for any record sequence.
func TestTotalConservationProperty(t *testing.T) {
	f := func(times []uint16) bool {
		s, _ := New(64)
		for _, tm := range times {
			s.Record(uint64(tm))
		}
		var sum uint64
		for _, c := range s.Windows() {
			sum += c
		}
		return sum == s.Total() && s.Total() == uint64(len(times))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
