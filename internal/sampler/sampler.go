// Package sampler implements the paper's fine-grained measurement tool
// (section III-B2): it counts last-level cache misses per fixed window of
// simulated time — the paper samples every five microseconds — producing
// the time series from which burstiness is analyzed. In simulation the
// sampler is exact and intrusion-free (the paper reports <3% perturbation
// for its hardware sampler).
package sampler

import "errors"

// DefaultWindowMicros is the paper's sampling period.
const DefaultWindowMicros = 5

// Sampler accumulates per-window off-chip request counts.
type Sampler struct {
	windowCycles uint64
	counts       []uint64
	lastTime     uint64
	total        uint64
}

// ErrBadWindow is returned for a zero-length window.
var ErrBadWindow = errors.New("sampler: window must be positive")

// New creates a sampler with the given window length in cycles.
func New(windowCycles uint64) (*Sampler, error) {
	if windowCycles == 0 {
		return nil, ErrBadWindow
	}
	return &Sampler{windowCycles: windowCycles}, nil
}

// NewMicros creates a sampler with a window of micros microseconds on a
// machine clocked at clockGHz.
func NewMicros(micros float64, clockGHz float64) (*Sampler, error) {
	cycles := uint64(micros * clockGHz * 1000)
	return New(cycles)
}

// WindowCycles returns the window length in cycles.
func (s *Sampler) WindowCycles() uint64 { return s.windowCycles }

// Record notes one off-chip request at the given simulated time. Times must
// be non-decreasing (the simulator's event order guarantees this).
func (s *Sampler) Record(now uint64) {
	idx := int(now / s.windowCycles)
	for len(s.counts) <= idx {
		s.counts = append(s.counts, 0)
	}
	s.counts[idx]++
	s.total++
	if now > s.lastTime {
		s.lastTime = now
	}
}

// Hook adapts the sampler to the simulator's MissHook signature.
func (s *Sampler) Hook() func(now uint64, core int) {
	return func(now uint64, _ int) { s.Record(now) }
}

// Windows returns the per-window miss counts, including empty interior
// windows. The slice is the sampler's own storage; callers must not modify
// it while sampling continues.
func (s *Sampler) Windows() []uint64 { return s.counts }

// Total returns the total recorded misses.
func (s *Sampler) Total() uint64 { return s.total }

// NonEmptyFraction returns the fraction of windows containing at least one
// miss — near 1.0 for the saturated, non-bursty traffic of large problem
// sizes, small for the sparse bursts of cache-resident runs.
func (s *Sampler) NonEmptyFraction() float64 {
	if len(s.counts) == 0 {
		return 0
	}
	nonEmpty := 0
	for _, c := range s.counts {
		if c > 0 {
			nonEmpty++
		}
	}
	return float64(nonEmpty) / float64(len(s.counts))
}

// PadTo extends the window series with empty windows up to the given
// simulated end time (typically the run's makespan), so quiet trailing
// phases count toward the busy-window fraction.
func (s *Sampler) PadTo(endCycles uint64) {
	if endCycles == 0 {
		return
	}
	idx := int((endCycles - 1) / s.windowCycles)
	for len(s.counts) <= idx {
		s.counts = append(s.counts, 0)
	}
}

// Reset clears all recorded samples.
func (s *Sampler) Reset() {
	s.counts = s.counts[:0]
	s.lastTime = 0
	s.total = 0
}
