// Package model is the serving layer's analytical fast path: it fits the
// paper's M/M/1-based contention regression (equations (5)–(11), see
// internal/core) from a handful of cached simulation anchor points and
// then answers capacity-planning queries — ω(n), per-controller
// utilization, predicted makespan — from the closed form in microseconds,
// falling back to full simulation through experiments.Runner whenever the
// fit does not exist or is not trustworthy for the requested point.
//
// The tier contract, top to bottom:
//
//   - Analytical answers are derived, never measured: once a (machine,
//     program, class, scale) pair has a fit, any core count is answered
//     without simulating. docs/MODEL.md derives every reported quantity
//     from the fitted (μ/r, L/r) pair and maps each equation to the code.
//
//   - The model declines rather than guesses. Analytical answers are
//     refused — and the query falls through to simulation — when no fit
//     exists yet (DeclineNoFit), when the single-socket 1/C(n) regression
//     fit poorly (DeclineLowR2, threshold Predictor.MinR2), when the fit's
//     own anchor points are not reproduced within Predictor.MaxResidual
//     (DeclineResidual), or when the requested core count sits at or past
//     the fitted saturation point μ/L where the M/M/1 closed form diverges
//     (DeclineSaturated).
//
//   - Simulation results self-improve the tier. Every fallback runs
//     through experiments.Runner, so it lands in the content-addressed run
//     cache (and the NDJSON journal when one is attached). After each
//     fallback the predictor checks whether the anchor plan for that pair
//     is now fully cached and, if so, fits — queries that kept missing
//     migrate to the fast path without any dedicated warm-up traffic.
//
// # Concurrency contract
//
// A Predictor is safe for concurrent use by any number of goroutines; it
// is designed to sit under an HTTP handler serving many clients:
//
//   - The fit table is guarded by a read-write mutex: Analytical takes
//     only the read lock, so fast-path queries never serialize behind one
//     another or behind a fit in progress.
//
//   - Simulation fallbacks inherit every guarantee of experiments.Runner
//     (singleflight dedup, bounded worker pool, context-first
//     cancellation, journal persistence): concurrent cold queries for the
//     same key cost one simulation.
//
//   - Fitting is idempotent and deterministic: anchors are deterministic
//     simulation results, so concurrent Warm/refit calls for the same key
//     write identical entries and the last writer wins harmlessly.
//
// All fields of Predictor must be set before the first call; later
// mutation is racy by design (matching experiments.Runner).
package model
