package model_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/workload"
)

func mustSpec(t *testing.T, name string) machine.Spec {
	t.Helper()
	spec, err := machine.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestConfigHashStable pins the content address: identical coordinates
// hash identically, any coordinate change re-hashes, and the output is
// 64 lowercase hex characters (a SHA-256).
func TestConfigHashStable(t *testing.T) {
	key := experiments.RunKey{Machine: "IntelUMA8", Program: "CG", Class: "W", Cores: 4, Scale: 0.1}
	h1 := model.ConfigHash(key)
	h2 := model.ConfigHash(key)
	if h1 != h2 {
		t.Fatalf("same key hashed differently: %s vs %s", h1, h2)
	}
	if len(h1) != 64 || strings.ToLower(h1) != h1 {
		t.Fatalf("ConfigHash not 64-char lowercase hex: %q", h1)
	}
	for _, other := range []experiments.RunKey{
		{Machine: "IntelNUMA24", Program: "CG", Class: "W", Cores: 4, Scale: 0.1},
		{Machine: "IntelUMA8", Program: "EP", Class: "W", Cores: 4, Scale: 0.1},
		{Machine: "IntelUMA8", Program: "CG", Class: "C", Cores: 4, Scale: 0.1},
		{Machine: "IntelUMA8", Program: "CG", Class: "W", Cores: 5, Scale: 0.1},
		{Machine: "IntelUMA8", Program: "CG", Class: "W", Cores: 4, Scale: 0.25},
	} {
		if model.ConfigHash(other) == h1 {
			t.Errorf("distinct key %+v collided with %+v", other, key)
		}
	}
}

// TestDeclineReasons walks the analytical tier's refusal ladder: no fit,
// then a fit rejected by each confidence bound in turn.
func TestDeclineReasons(t *testing.T) {
	if testing.Short() {
		t.Skip("fits anchors by simulation")
	}
	spec := mustSpec(t, "IntelUMA8")
	r := experiments.NewRunner(workload.Tuning{RefScale: 0.05})
	p := model.New(r)

	if _, reason := p.Analytical(spec, "CG", "W", 4); reason != model.DeclineNoFit {
		t.Fatalf("before Warm: reason = %q, want %q", reason, model.DeclineNoFit)
	}
	if _, reason := p.Analytical(spec, "CG", "W", 0); reason != model.DeclineNoFit {
		t.Fatalf("cores out of range: reason = %q, want %q", reason, model.DeclineNoFit)
	}

	info, err := p.Warm(context.Background(), spec, "CG", "W")
	if err != nil {
		t.Fatal(err)
	}
	if p.FitCount() != 1 {
		t.Fatalf("FitCount = %d after Warm, want 1", p.FitCount())
	}
	if len(info.Anchors) < 2 {
		t.Fatalf("fit used %v anchors, want at least 2", info.Anchors)
	}

	// An impossible R² bound turns every answer into a low_r2 decline.
	p.MinR2 = 2
	if _, reason := p.Analytical(spec, "CG", "W", 4); reason != model.DeclineLowR2 {
		t.Errorf("MinR2=2: reason = %q, want %q", reason, model.DeclineLowR2)
	}
	p.MinR2 = -1 // disable

	// A negative residual bound rejects even a perfect fit.
	p.MaxResidual = -1
	if _, reason := p.Analytical(spec, "CG", "W", 4); reason != model.DeclineResidual {
		t.Errorf("MaxResidual=-1: reason = %q, want %q", reason, model.DeclineResidual)
	}
	p.MaxResidual = 1e9 // disable

	pred, reason := p.Analytical(spec, "CG", "W", 4)
	if reason != "" {
		t.Fatalf("with checks disabled: declined %q", reason)
	}
	if pred.Tier != model.TierAnalytical {
		t.Errorf("tier = %q, want %q", pred.Tier, model.TierAnalytical)
	}
	if pred.Fit == nil {
		t.Error("analytical answer carries no FitInfo")
	}
	if pred.ConfigHash == "" {
		t.Error("analytical answer carries no ConfigHash")
	}
	if pred.Cycles <= 0 || pred.BaselineCycles <= 0 {
		t.Errorf("non-positive cycles: C(n)=%g C(1)=%g", pred.Cycles, pred.BaselineCycles)
	}
	if got := pred.MakespanCycles; math.Abs(got-pred.Cycles/4) > 1e-9*pred.Cycles {
		t.Errorf("analytical makespan = %g, want C(n)/n = %g", got, pred.Cycles/4)
	}
	if len(pred.MCUtilization) == 0 {
		t.Error("analytical answer has no MC utilization")
	}
	for i, u := range pred.MCUtilization {
		if u < 0 || u > 1 {
			t.Errorf("MCUtilization[%d] = %g outside [0,1]", i, u)
		}
	}
}

// TestPredictBadCores checks the range error both tiers share.
func TestPredictBadCores(t *testing.T) {
	spec := mustSpec(t, "IntelUMA8")
	p := model.New(experiments.NewRunner(workload.Tuning{RefScale: 0.05}))
	for _, cores := range []int{0, -3, spec.TotalCores() + 1} {
		_, err := p.Predict(context.Background(), spec, "CG", "W", cores)
		if err == nil || !strings.Contains(err.Error(), "cores out of machine range") {
			t.Errorf("cores=%d: err = %v, want ErrBadCores", cores, err)
		}
	}
}

// TestSelfImprovement exercises the fallback-to-fast-path migration: cold
// queries run on the simulation tier, and once the fallbacks have filled
// the anchor plan in the runner cache, the predictor fits it and answers
// the next query analytically — no Warm call anywhere.
func TestSelfImprovement(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	spec := mustSpec(t, "IntelUMA8")
	r := experiments.NewRunner(workload.Tuning{RefScale: 0.05})
	p := model.New(r)
	p.MinR2 = -1
	p.MaxResidual = 1e9
	ctx := context.Background()

	// Anchors for IntelUMA8 are {1, 4, 5}. The first cold query measures
	// C(4) and its C(1) baseline — two of three anchors.
	pred, err := p.Predict(ctx, spec, "CG", "W", 4)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Tier != model.TierSimulation {
		t.Fatalf("cold query tier = %q, want simulation", pred.Tier)
	}
	if p.FitCount() != 0 {
		t.Fatalf("fit appeared with anchors missing: FitCount = %d", p.FitCount())
	}

	// The second cold query measures C(5), completing the plan; Predict's
	// refit hook should fit the pair from cache without new simulations.
	if _, err := p.Predict(ctx, spec, "CG", "W", 5); err != nil {
		t.Fatal(err)
	}
	if p.FitCount() != 1 {
		t.Fatalf("anchor plan complete but FitCount = %d, want 1", p.FitCount())
	}

	cached := p.CachedRuns()
	pred, err = p.Predict(ctx, spec, "CG", "W", 3)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Tier != model.TierAnalytical {
		t.Errorf("post-fit query tier = %q, want analytical", pred.Tier)
	}
	if p.CachedRuns() != cached {
		t.Errorf("analytical answer ran simulations: cache grew %d -> %d", cached, p.CachedRuns())
	}
}

// TestAnalyticalAccuracy is the acceptance check: on IntelUMA8 the fitted
// model's C(n) stays within the paper's error band of the simulator's
// measurements at the core counts the fit never saw. The paper reports
// 5–14% average model error (Table V); we require the mean relative error
// over all non-anchor points ≤ 10% and every point ≤ 20%.
func TestAnalyticalAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep at scale 0.1")
	}
	spec := mustSpec(t, "IntelUMA8")
	r := experiments.NewRunner(workload.Tuning{RefScale: 0.1})
	p := model.New(r)
	ctx := context.Background()

	info, err := p.Warm(ctx, spec, "CG", "C")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fit: anchors=%v r2=%.4f residual=%.4f saturation=%.2f",
		info.Anchors, info.R2, info.Residual, info.SaturationCores)

	anchors := make(map[int]bool)
	for _, n := range info.Anchors {
		anchors[n] = true
	}
	var sum float64
	var count int
	for n := 1; n <= spec.TotalCores(); n++ {
		if anchors[n] {
			continue
		}
		pred, reason := p.Analytical(spec, "CG", "C", n)
		if reason != "" {
			t.Fatalf("analytical tier declined n=%d: %s", n, reason)
		}
		res, err := r.Run(ctx, spec, "CG", "C", n)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(pred.Cycles-float64(res.TotalCycles)) / float64(res.TotalCycles)
		t.Logf("n=%d: model C(n)=%.0f sim C(n)=%d rel=%.3f", n, pred.Cycles, res.TotalCycles, rel)
		if rel > 0.20 {
			t.Errorf("n=%d: relative error %.1f%% exceeds 20%%", n, 100*rel)
		}
		sum += rel
		count++
	}
	if mean := sum / float64(count); mean > 0.10 {
		t.Errorf("mean relative error %.1f%% over %d points exceeds 10%%", 100*mean, count)
	}
}

// BenchmarkAnalytical measures the fast path after warm-up; the
// acceptance bar is well under a millisecond per answer.
func BenchmarkAnalytical(b *testing.B) {
	spec, err := machine.ByName("IntelUMA8")
	if err != nil {
		b.Fatal(err)
	}
	r := experiments.NewRunner(workload.Tuning{RefScale: 0.05})
	p := model.New(r)
	p.MinR2 = -1
	p.MaxResidual = 1e9
	if _, err := p.Warm(context.Background(), spec, "CG", "W"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, reason := p.Analytical(spec, "CG", "W", 1+i%spec.TotalCores()); reason != "" {
			b.Fatalf("declined: %s", reason)
		}
	}
}
