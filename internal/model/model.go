package model

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Tier names which backend produced a Prediction.
type Tier string

const (
	// TierAnalytical marks an answer computed from the fitted closed form
	// without running a simulation.
	TierAnalytical Tier = "analytical"
	// TierSimulation marks an answer measured by a full simulation run
	// (possibly served from the runner's content-addressed cache).
	TierSimulation Tier = "simulation"
)

// DeclineReason explains why the analytical tier refused a query and the
// predictor fell back to simulation. The empty string means it answered.
type DeclineReason string

const (
	// DeclineNoFit: no anchor fit exists yet for this
	// (machine, program, class, scale) pair.
	DeclineNoFit DeclineReason = "no_fit"
	// DeclineLowR2: the single-socket 1/C(n) regression fit worse than
	// Predictor.MinR2 — the workload does not behave like the M/M/1 model
	// (the paper's Table IV shows this for EP and x264), so closed-form
	// answers would be guesses.
	DeclineLowR2 DeclineReason = "low_r2"
	// DeclineResidual: the fitted model fails to reproduce its own anchor
	// measurements within Predictor.MaxResidual relative error.
	DeclineResidual DeclineReason = "high_residual"
	// DeclineSaturated: the requested core count is at or beyond the
	// fitted saturation point μ/L, where the M/M/1 closed form diverges.
	DeclineSaturated DeclineReason = "saturated"
)

// Default confidence bounds for the analytical tier. MinR2 mirrors the
// paper's Table IV reading — contended programs fit 1/C(n) with R² well
// above 0.95, while EP/x264 fall below it — and MaxResidual matches the
// paper's 5–14% model-error band: a fit that cannot reproduce its own
// anchors within 10% has no business extrapolating between them.
const (
	DefaultMinR2       = 0.95
	DefaultMaxResidual = 0.10
)

// ErrBadCores reports a requested core count outside 1..TotalCores.
var ErrBadCores = errors.New("model: cores out of machine range")

// FitInfo summarizes one fitted analytical model, for responses and logs.
type FitInfo struct {
	// Anchors are the core counts of the measurement plan the fit used
	// (core.PaperInputs for the machine's geometry).
	Anchors []int
	// R2 is the goodness-of-fit of the single-socket 1/C(n) regression.
	R2 float64
	// Residual is the maximum relative error of the fitted C(n) over the
	// anchor measurements themselves.
	Residual float64
	// SaturationCores is the fitted μ/L — the core count at which the
	// modeled memory system saturates.
	SaturationCores float64
}

// Prediction is one answered contention query.
type Prediction struct {
	// Machine, Program, Class, Cores and Scale echo the resolved query.
	Machine string
	Program string
	Class   workload.Class
	Cores   int
	Scale   float64
	// Omega is the predicted degree of memory contention
	// ω(n) = (C(n) − C(1)) / C(1), the paper's equation (4).
	Omega float64
	// Cycles is C(n): total cycles summed over threads.
	Cycles float64
	// BaselineCycles is C(1), the contention-free baseline normalizing ω.
	BaselineCycles float64
	// MakespanCycles is the predicted wall-clock duration of the run in
	// cycles. The simulation tier reports the measured makespan; the
	// analytical tier approximates it as C(n)/n (total cycles spread
	// evenly over the active cores — exact under the paper's protocol of
	// threads pinned round-robin on n cores; see docs/MODEL.md §4).
	MakespanCycles float64
	// MCUtilization has one entry per memory controller. The simulation
	// tier measures channel busy fraction; the analytical tier derives
	// ρ = kL/μ per controller from the fitted queue parameters, capped
	// at 1 (see docs/MODEL.md §3).
	MCUtilization []float64
	// Tier names the backend that produced the answer.
	Tier Tier
	// Fit carries the fit summary for analytical answers, nil otherwise.
	Fit *FitInfo
	// ConfigHash is the content address of the (machine, program, class,
	// cores, scale) coordinate — the same key the runner cache and the
	// NDJSON journal use, hashed canonically (ConfigHash).
	ConfigHash string
}

// fitKey addresses one fitted model.
type fitKey struct {
	machine string
	program string
	class   workload.Class
	scale   float64
}

// fitEntry is one stored fit with its precomputed confidence stats.
type fitEntry struct {
	model core.Model
	info  FitInfo
}

// Predictor answers contention queries analytically when a trustworthy
// fit exists and by full simulation otherwise. See doc.go for the tier
// and concurrency contracts. Configure the exported fields before first
// use; the zero values select the documented defaults.
type Predictor struct {
	// MinR2 is the minimum single-socket regression R² for the analytical
	// tier to answer. Zero means DefaultMinR2; negative disables the
	// check (tests force the analytical path with MinR2 = -1).
	MinR2 float64
	// MaxResidual is the maximum relative error of the fit over its own
	// anchors. Zero means DefaultMaxResidual; values >= 1e9 effectively
	// disable the check.
	MaxResidual float64
	// Opts tunes the core.Fit regression (e.g. Homogeneous).
	Opts core.Options
	// Tracer, when non-nil, receives model.fit and model.decline events.
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, counts fits (model_fits_total) and declines
	// (model_declines_total).
	Metrics *telemetry.Registry

	runner *experiments.Runner

	mu   sync.RWMutex
	fits map[fitKey]fitEntry
}

// New returns a Predictor backed by the given runner. The runner supplies
// the simulation fallback, the content-addressed result cache the anchors
// are fitted from, and (when attached) the NDJSON persistence journal.
func New(r *experiments.Runner) *Predictor {
	return &Predictor{runner: r, fits: make(map[fitKey]fitEntry)}
}

// Scale returns the workload scale of the backing runner. Every cache
// key, fit and prediction of this predictor is at this fidelity.
func (p *Predictor) Scale() float64 { return p.runner.Tuning.RefScale }

// FitCount returns the number of (machine, program, class) pairs with a
// fitted analytical model.
func (p *Predictor) FitCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.fits)
}

// CachedRuns returns the number of simulation results in the backing
// runner's content-addressed cache.
func (p *Predictor) CachedRuns() int { return p.runner.CacheLen() }

// minR2 resolves the configured threshold.
func (p *Predictor) minR2() float64 {
	if p.MinR2 == 0 {
		return DefaultMinR2
	}
	return p.MinR2
}

// maxResidual resolves the configured threshold.
func (p *Predictor) maxResidual() float64 {
	if p.MaxResidual == 0 {
		return DefaultMaxResidual
	}
	return p.MaxResidual
}

// key builds the content address of one query against this predictor's
// scale.
func (p *Predictor) key(spec machine.Spec, program string, class workload.Class, cores int) experiments.RunKey {
	return p.runner.KeyFor(spec, program, class, cores)
}

// ConfigHash returns the canonical content address of one run
// coordinate: the SHA-256 of the key's canonical JSON encoding (fixed
// field order, shared with the persistent cache and journal entries).
// Identical queries hash identically across processes and restarts.
func ConfigHash(key experiments.RunKey) string {
	b, err := json.Marshal(key)
	if err != nil {
		// RunKey is a fixed struct of scalars; Marshal cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Analytical answers the query from the fitted closed form, or declines
// with the reason. It never simulates, never blocks on the runner, and
// costs one read-locked map lookup plus O(sockets) arithmetic — the
// microsecond path. An empty DeclineReason means the Prediction is valid.
func (p *Predictor) Analytical(spec machine.Spec, program string, class workload.Class, cores int) (Prediction, DeclineReason) {
	if cores < 1 || cores > spec.TotalCores() {
		// Range errors are caught properly by Predict; analytically this
		// is simply not answerable.
		return Prediction{}, DeclineNoFit
	}
	entry, gate := p.lookupFit(spec, program, class)
	if gate != "" {
		return Prediction{}, p.decline(gate, spec, program, class, cores)
	}
	return p.analyticalAt(entry, spec, program, class, cores)
}

// lookupFit resolves the pair's stored fit and applies the fit-level
// confidence gates (existence, R², residual). An empty DeclineReason
// means the entry is trustworthy; the per-point saturation check stays
// in analyticalAt.
func (p *Predictor) lookupFit(spec machine.Spec, program string, class workload.Class) (fitEntry, DeclineReason) {
	p.mu.RLock()
	entry, ok := p.fits[fitKey{spec.Name, program, class, p.Scale()}]
	p.mu.RUnlock()
	if !ok {
		return fitEntry{}, DeclineNoFit
	}
	if entry.info.R2 < p.minR2() {
		return entry, DeclineLowR2
	}
	if entry.info.Residual > p.maxResidual() {
		return entry, DeclineResidual
	}
	return entry, ""
}

// analyticalAt evaluates one core count against an already-gated fit
// entry — the shared tail of Analytical and AnalyticalCurve, so a curve
// point and a single query at the same coordinate are computed by the
// same arithmetic.
func (p *Predictor) analyticalAt(entry fitEntry, spec machine.Spec, program string, class workload.Class, cores int) (Prediction, DeclineReason) {
	cn := entry.model.C(cores)
	if math.IsInf(cn, 0) || cn <= 0 {
		return Prediction{}, p.decline(DeclineSaturated, spec, program, class, cores)
	}
	info := entry.info
	return Prediction{
		Machine:        spec.Name,
		Program:        program,
		Class:          class,
		Cores:          cores,
		Scale:          p.Scale(),
		Omega:          entry.model.Omega(cores),
		Cycles:         cn,
		BaselineCycles: entry.model.C1,
		MakespanCycles: cn / float64(cores),
		MCUtilization:  analyticalMCUtil(spec, entry.model.Single, cores),
		Tier:           TierAnalytical,
		Fit:            &info,
		ConfigHash:     ConfigHash(p.key(spec, program, class, cores)),
	}, ""
}

// AnalyticalCurve evaluates the fitted closed form at every requested
// core count with a single fit lookup — the whole-curve counterpart of
// Analytical, for serving ω(n) sweeps. It returns parallel slices:
// point i is answered iff reasons[i] is empty. The fit-level gates
// (no_fit, low_r2, high_residual) decline every point alike; saturation
// declines per point, so a curve can mix tiers only past the fitted
// μ/L. Like Analytical, it never simulates and never blocks on the
// runner.
func (p *Predictor) AnalyticalCurve(spec machine.Spec, program string, class workload.Class, cores []int) ([]Prediction, []DeclineReason) {
	preds := make([]Prediction, len(cores))
	reasons := make([]DeclineReason, len(cores))
	entry, gate := p.lookupFit(spec, program, class)
	for i, n := range cores {
		if n < 1 || n > spec.TotalCores() {
			reasons[i] = DeclineNoFit
			continue
		}
		if gate != "" {
			reasons[i] = p.decline(gate, spec, program, class, n)
			continue
		}
		preds[i], reasons[i] = p.analyticalAt(entry, spec, program, class, n)
	}
	return preds, reasons
}

// decline records one analytical refusal on the telemetry sinks and
// returns the reason unchanged.
func (p *Predictor) decline(reason DeclineReason, spec machine.Spec, program string, class workload.Class, cores int) DeclineReason {
	if p.Metrics != nil {
		p.Metrics.Counter("model_declines_total").Inc()
	}
	if p.Tracer.Enabled() {
		p.Tracer.Emit("model.decline",
			"machine", spec.Name, "program", program, "class", string(class),
			"cores", cores, "reason", string(reason))
	}
	return reason
}

// Predict answers the query: analytically when the fit allows it, by full
// simulation otherwise. The simulation path runs C(n) and — for the ω
// baseline — C(1) through the runner (cached, deduplicated, journaled)
// and then opportunistically fits the pair if its anchor plan is now
// fully cached, so repeated cold queries migrate to the fast path.
// Cancelling ctx aborts a fallback wherever it is; the analytical path
// never blocks.
func (p *Predictor) Predict(ctx context.Context, spec machine.Spec, program string, class workload.Class, cores int) (Prediction, error) {
	if cores < 1 || cores > spec.TotalCores() {
		return Prediction{}, fmt.Errorf("%w: %d on %s (1..%d)", ErrBadCores, cores, spec.Name, spec.TotalCores())
	}
	if pred, reason := p.Analytical(spec, program, class, cores); reason == "" {
		return pred, nil
	}
	res, err := p.runner.Run(ctx, spec, program, class, cores)
	if err != nil {
		return Prediction{}, err
	}
	base, err := p.runner.Run(ctx, spec, program, class, 1)
	if err != nil {
		return Prediction{}, err
	}
	p.refitFromCache(ctx, spec, program, class)
	return p.simPrediction(spec, program, class, cores, res, base), nil
}

// simPrediction assembles a simulation-tier Prediction from a measured
// run and its single-core baseline — the shared tail of Predict and
// PredictStream, so a streamed curve point and a single query at the
// same coordinate carry identical values.
func (p *Predictor) simPrediction(spec machine.Spec, program string, class workload.Class, cores int, res, base sim.Result) Prediction {
	return Prediction{
		Machine:        spec.Name,
		Program:        program,
		Class:          class,
		Cores:          cores,
		Scale:          p.Scale(),
		Omega:          core.Omega(float64(res.TotalCycles), float64(base.TotalCycles)),
		Cycles:         float64(res.TotalCycles),
		BaselineCycles: float64(base.TotalCycles),
		MakespanCycles: float64(res.Makespan),
		MCUtilization:  simMCUtil(spec, res),
		Tier:           TierSimulation,
		ConfigHash:     ConfigHash(p.key(spec, program, class, cores)),
	}
}

// PredictStream answers many simulation-tier core counts of one
// (machine, program, class) pair through the runner's worker pool,
// invoking fn once per index in completion order — cache hits first,
// cold runs as they finish. The single-core ω baseline is run (or
// fetched from cache) before the batch so each point can be assembled
// the moment its own run settles. fn is called from one goroutine, never
// concurrently, and exactly once per index: failed and canceled points
// carry the error. After the batch settles the pair is opportunistically
// refitted from cache, so a served curve migrates the pair to the
// analytical tier just like N individual Predict calls would.
func (p *Predictor) PredictStream(ctx context.Context, spec machine.Spec, program string, class workload.Class, cores []int, fn func(i int, pred Prediction, err error)) {
	valid := make([]int, 0, len(cores))
	for i, n := range cores {
		if n < 1 || n > spec.TotalCores() {
			fn(i, Prediction{}, fmt.Errorf("%w: %d on %s (1..%d)", ErrBadCores, n, spec.Name, spec.TotalCores()))
			continue
		}
		valid = append(valid, i)
	}
	if len(valid) == 0 {
		return
	}
	base, err := p.runner.Run(ctx, spec, program, class, 1)
	if err != nil {
		for _, i := range valid {
			fn(i, Prediction{}, err)
		}
		return
	}
	items := make([]experiments.RunItem, len(valid))
	for j, i := range valid {
		items[j] = experiments.RunItem{Spec: spec, Program: program, Class: class, Cores: cores[i]}
	}
	for sr := range p.runner.RunStream(ctx, items) {
		i := valid[sr.Index]
		if sr.Err != nil {
			fn(i, Prediction{}, sr.Err)
			continue
		}
		fn(i, p.simPrediction(spec, program, class, cores[i], sr.Res, base), nil)
	}
	p.refitFromCache(ctx, spec, program, class)
}

// Warm fits the analytical model for one (machine, program, class) pair
// by running its anchor plan — core.PaperInputs for the geometry, a
// handful of runs — through the runner (cache hits and journal replays
// are free) and storing the fit. It returns the fit summary; serving
// starts declining or answering per the confidence rules immediately.
func (p *Predictor) Warm(ctx context.Context, spec machine.Spec, program string, class workload.Class) (FitInfo, error) {
	plan := core.PaperInputs(experiments.ModelKindFor(spec), spec.Sockets, spec.CoresPerSocket)
	meas, err := p.runner.Sweep(ctx, spec, program, class, plan)
	if err != nil {
		return FitInfo{}, err
	}
	return p.fit(spec, program, class, plan, meas)
}

// refitFromCache fits the pair if no fit exists yet and every anchor of
// its plan is already in the runner's cache. It never simulates; it is
// the self-improvement hook Predict calls after each fallback. When the
// context carries a request span, the attempt is recorded as a
// "model.refit" child span (with a fitted attribute) so traceview can
// show which request paid for a background refit.
func (p *Predictor) refitFromCache(ctx context.Context, spec machine.Spec, program string, class workload.Class) {
	var span telemetry.Span
	if p.Tracer.Enabled() {
		if sc, ok := telemetry.SpanFromContext(ctx); ok {
			span = p.Tracer.StartSpan(sc, "model.refit")
		}
	}
	fitted := false
	defer func() { span.End("fitted", fitted) }()

	k := fitKey{spec.Name, program, class, p.Scale()}
	p.mu.RLock()
	_, done := p.fits[k]
	p.mu.RUnlock()
	if done {
		return
	}
	plan := core.PaperInputs(experiments.ModelKindFor(spec), spec.Sockets, spec.CoresPerSocket)
	meas := make([]core.Measurement, 0, len(plan))
	for _, n := range plan {
		res, ok := p.runner.Cached(p.key(spec, program, class, n))
		if !ok {
			return
		}
		meas = append(meas, core.Measurement{
			Cores:     n,
			Cycles:    float64(res.TotalCycles),
			LLCMisses: float64(res.LLCMisses),
		})
	}
	// Errors here mean the cached anchors cannot support a fit (e.g. a
	// degenerate workload); the pair simply stays on the simulation tier.
	_, err := p.fit(spec, program, class, plan, meas)
	fitted = err == nil
}

// fit runs the core regression over anchor measurements, computes the
// confidence stats and stores the entry.
func (p *Predictor) fit(spec machine.Spec, program string, class workload.Class, plan []int, meas []core.Measurement) (FitInfo, error) {
	kind := experiments.ModelKindFor(spec)
	m, err := core.Fit(kind, spec.Sockets, spec.CoresPerSocket, meas, p.Opts)
	if err != nil {
		return FitInfo{}, err
	}
	residual := 0.0
	for _, mm := range meas {
		pred := m.C(mm.Cores)
		if math.IsInf(pred, 0) {
			residual = math.Inf(1)
			break
		}
		if rel := math.Abs(pred-mm.Cycles) / mm.Cycles; rel > residual {
			residual = rel
		}
	}
	info := FitInfo{
		Anchors:         append([]int(nil), plan...),
		R2:              m.Single.R2,
		Residual:        residual,
		SaturationCores: m.Single.SaturationCores(),
	}
	p.mu.Lock()
	p.fits[fitKey{spec.Name, program, class, p.Scale()}] = fitEntry{model: m, info: info}
	p.mu.Unlock()
	if p.Metrics != nil {
		p.Metrics.Counter("model_fits_total").Inc()
	}
	if p.Tracer.Enabled() {
		p.Tracer.Emit("model.fit",
			"machine", spec.Name, "program", program, "class", string(class),
			"anchors", len(plan), "r2", info.R2, "residual", info.Residual,
			"saturation_cores", info.SaturationCores)
	}
	return info, nil
}

// coresOnSocket returns how many of the first n fill-first cores land on
// socket s (mirrors the activation order internal/core models).
func coresOnSocket(n, coresPerSocket, s int) int {
	lo := s * coresPerSocket
	if n <= lo {
		return 0
	}
	m := n - lo
	if m > coresPerSocket {
		m = coresPerSocket
	}
	return m
}

// analyticalMCUtil derives per-controller utilization from the fitted
// M/M/1 parameters: a controller fed by k active cores runs at
// ρ = kL/μ = k·(L/r)/(μ/r) — the r(n) normalization cancels. UMA
// machines report their one shared controller; NUMA machines report each
// socket's controllers fed by that socket's active cores, split evenly
// when a socket has several. Values cap at 1 (beyond saturation the open
// queue has no steady state).
func analyticalMCUtil(spec machine.Spec, sf core.SingleFit, n int) []float64 {
	lOverMu := 0.0
	if sf.MuOverR > 0 {
		lOverMu = sf.LOverR / sf.MuOverR
	}
	if spec.UMA() {
		return []float64{clamp01(float64(n) * lOverMu)}
	}
	util := make([]float64, 0, spec.Sockets*spec.MCsPerSocket)
	for s := 0; s < spec.Sockets; s++ {
		k := coresOnSocket(n, spec.CoresPerSocket, s)
		per := float64(k) * lOverMu / float64(spec.MCsPerSocket)
		for mc := 0; mc < spec.MCsPerSocket; mc++ {
			util = append(util, clamp01(per))
		}
	}
	return util
}

// simMCUtil computes measured per-controller utilization: channel busy
// cycles over makespan × channels.
func simMCUtil(spec machine.Spec, res sim.Result) []float64 {
	if res.Makespan == 0 {
		return nil
	}
	channels := float64(spec.MC.Channels)
	if channels <= 0 {
		channels = 1
	}
	util := make([]float64, len(res.MCStats))
	for i, st := range res.MCStats {
		util[i] = clamp01(float64(st.BusyCycles) / (float64(res.Makespan) * channels))
	}
	return util
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
