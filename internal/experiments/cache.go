package experiments

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/sim"
)

// Persistent run cache: full-fidelity sweeps cost minutes, and different
// figures share runs (the CG.C sweep feeds Fig. 3, Fig. 5 and Table IV).
// SaveCache/LoadCache let cmd/experiments carry the cache across
// invocations so iterating on one artifact never re-simulates another's
// runs.
//
// Both methods are safe to call concurrently with running experiments:
// they lock the cache map only, not the worker pool. SaveCache snapshots
// completed runs — simulations still in flight at save time are simply
// not persisted (call it after the batch APIs return for a full
// snapshot). Because results are deterministic for a given cache version,
// merging a loaded cache can never change what an experiment reports,
// only skip work.

// cacheEntry is the serialized form of one run.
type cacheEntry struct {
	Key    RunKey     `json:"key"`
	Result sim.Result `json:"result"`
}

// cacheFile is the on-disk format, versioned so stale caches from older
// workload generators are discarded rather than misused.
type cacheFile struct {
	Version int          `json:"version"`
	Entries []cacheEntry `json:"entries"`
}

// cacheVersion must change whenever workloads, machines or the simulator
// change in a way that alters results.
const cacheVersion = 3

// SaveCache writes the runner's cached results to path.
func (r *Runner) SaveCache(path string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := cacheFile{Version: cacheVersion}
	for k, v := range r.cache {
		f.Entries = append(f.Entries, cacheEntry{Key: k, Result: v})
	}
	data, err := json.Marshal(f)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadCache merges previously saved results into the runner. A missing
// file is not an error; a version mismatch discards the file's contents.
// It returns the number of entries loaded.
func (r *Runner) LoadCache(path string) (int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var f cacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("experiments: corrupt cache %s: %w", path, err)
	}
	if f.Version != cacheVersion {
		return 0, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range f.Entries {
		r.cache[e.Key] = e.Result
	}
	return len(f.Entries), nil
}

// CacheLen returns the number of cached runs.
func (r *Runner) CacheLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}
