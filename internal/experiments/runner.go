package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Runner executes, deduplicates and caches simulation runs. Sweeps for
// different experiments share runs (e.g. the CG.C sweep feeds Fig. 3,
// Fig. 5 and Table IV), so the cache cuts total runtime substantially.
//
// A Runner is safe for concurrent use. Cached runs are served without
// re-simulating; concurrent requests for the same not-yet-cached run block
// on a single in-flight simulation (singleflight) instead of duplicating
// it. At most Jobs simulations execute at once. Every batch API takes a
// context.Context: cancellation propagates into queued work (waiting for a
// worker slot), coalesced waits, and the simulator's own event loop. See
// doc.go for the full concurrency and fault contract.
type Runner struct {
	// Tuning scales workload iteration counts (1.0 for full fidelity).
	Tuning workload.Tuning
	// Progress, when non-nil, receives one line per served run with a
	// completed/submitted counter, an outcome annotation — [sim] for a
	// fresh simulation, [dedup] for a singleflight-coalesced wait, [cache]
	// for a cache hit, [resumed] for a hit served from a resume journal —
	// and, for sim and dedup, the wall-clock duration. Writes are
	// serialized by the Runner; the writer itself need not be
	// goroutine-safe.
	Progress io.Writer
	// Jobs bounds the number of simulations executing concurrently.
	// Zero or negative means runtime.GOMAXPROCS(0). Set it before the
	// first run; later changes are ignored.
	Jobs int
	// Tracer, when non-nil, receives one "runner.span" event per served
	// run, splitting wall-clock time into worker-queue wait and execute
	// time and carrying the same sim|dedup|cache|resumed outcome as
	// Progress, plus "runner.canceled", "runner.panic" and
	// "runner.resume" lifecycle events.
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, counts served runs by outcome
	// (runner_sim_total, runner_dedup_total, runner_cache_total,
	// runner_resumed_total), cancellations and panics
	// (runner_canceled_total, runner_panic_total), journal write failures
	// (runner_journal_errors_total), and feeds the runner_execute_ms
	// histogram.
	Metrics *telemetry.Registry
	// FaultFn, when non-nil, is consulted at the named fault points with
	// the run key; a non-nil return aborts that step with the returned
	// error, and a panic inside FaultFn propagates exactly like a panic in
	// the simulation itself. It exists for tests to deterministically
	// inject worker panics, cancellations and journal-write failures —
	// production code leaves it nil.
	FaultFn func(point FaultPoint, key RunKey) error

	mu       sync.Mutex
	cache    map[RunKey]sim.Result
	inflight map[RunKey]*inflightRun
	sem      chan struct{}
	// resumed marks cache keys loaded from a resume journal that have not
	// yet been served; the first hit on such a key reports [resumed] (and
	// runner_resumed_total) instead of [cache], so a resumed sweep's logs
	// account for every journal entry actually used.
	resumed map[RunKey]bool
	journal *journal

	// progMu guards the progress counters and serializes Progress writes.
	progMu    sync.Mutex
	submitted int // simulations started (cache misses claimed)
	completed int // simulations finished

	// simulate is the underlying run function; tests override it to count
	// and fake executions. nil means (*Runner).simulateRun.
	simulate func(ctx context.Context, spec machine.Spec, program string, class workload.Class, cores int) (sim.Result, error)
}

// FaultPoint names a place where Runner.FaultFn can inject a failure.
type FaultPoint uint8

const (
	// FaultBeforeSim fires in the worker goroutine just before the
	// simulation runs. Returning an error fails the run; panicking
	// exercises the worker panic isolation.
	FaultBeforeSim FaultPoint = iota
	// FaultJournalWrite fires before a journal append. Returning an error
	// simulates a journal write failure (which is non-fatal: the run still
	// succeeds, the entry is simply not persisted).
	FaultJournalWrite
)

// ErrWorkerPanic is the sentinel a recovered worker panic matches via
// errors.Is. The concrete error is always a *WorkerPanicError.
var ErrWorkerPanic = errors.New("experiments: worker panicked")

// WorkerPanicError reports a panic recovered inside a simulation worker.
// The panic is confined to its run: other workers continue, the runner
// stays usable, and batch APIs preserve the completed runs' results.
type WorkerPanicError struct {
	// Key identifies the run whose worker panicked.
	Key RunKey
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack at the panic site.
	Stack []byte
}

// Error implements error.
func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("experiments: worker panicked running %s %s.%s n=%d: %v",
		e.Key.Machine, e.Key.Program, e.Key.Class, e.Key.Cores, e.Value)
}

// Is reports a match against the ErrWorkerPanic sentinel.
func (e *WorkerPanicError) Is(target error) bool { return target == ErrWorkerPanic }

// inflightRun is one in-flight simulation that duplicate requesters wait
// on. done is closed after res/err are set.
type inflightRun struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// RunKey identifies one cached simulation: program.class on a machine at
// one active-core count under one workload scale. It is the cache key,
// the resume-journal key and the fault-injection coordinate.
type RunKey struct {
	Machine string         `json:"machine"`
	Program string         `json:"program"`
	Class   workload.Class `json:"class"`
	Cores   int            `json:"cores"`
	Scale   float64        `json:"scale"`
}

// RunItem identifies one simulation of a measurement plan: program.class
// on a machine at one active-core count.
type RunItem struct {
	Spec    machine.Spec
	Program string
	Class   workload.Class
	Cores   int
}

// NewRunner returns a Runner with the given workload tuning.
func NewRunner(tune workload.Tuning) *Runner {
	return &Runner{
		Tuning:   tune,
		cache:    make(map[RunKey]sim.Result),
		inflight: make(map[RunKey]*inflightRun),
	}
}

// workers returns the semaphore bounding concurrent simulations, creating
// it from Jobs on first use.
func (r *Runner) workers() chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sem == nil {
		jobs := r.Jobs
		if jobs <= 0 {
			jobs = runtime.GOMAXPROCS(0)
		}
		r.sem = make(chan struct{}, jobs)
	}
	return r.sem
}

// Run simulates program.class on the machine with the given number of
// active cores (threads fixed at the machine's total cores, per the
// paper's protocol), caching results. Concurrent calls for the same key
// share one simulation. Cancelling ctx aborts the call wherever it is —
// waiting for a worker slot, waiting on a coalesced run, or mid-simulation
// (the sim event loop polls ctx every sim.DefaultCancelEvery events).
func (r *Runner) Run(ctx context.Context, spec machine.Spec, program string, class workload.Class, cores int) (sim.Result, error) {
	key := RunKey{Machine: spec.Name, Program: program, Class: class, Cores: cores, Scale: r.Tuning.RefScale}

	c := r.claim(key)
	if c.outcome != "" {
		r.report(c.outcome, spec, program, class, cores, 0, 0, c.res)
		return c.res, nil
	}
	if !c.owner {
		// Another goroutine is already simulating this key: wait for it
		// rather than duplicating the run or blocking the whole cache.
		return r.waitShared(ctx, key, c.fl, spec, program, class, cores)
	}
	fl := c.fl

	fl.res, fl.err = r.execute(ctx, key, spec, program, class, cores)

	r.settle(key, fl)
	close(fl.done)
	if fl.err == nil {
		r.appendJournal(key, fl.res)
	}
	return fl.res, fl.err
}

// runClaim is what one Run call found under the lock: a finished result
// (outcome non-empty), an in-flight run to wait on, or — with owner set —
// a freshly registered run this call must execute and settle.
type runClaim struct {
	res     sim.Result
	outcome string
	fl      *inflightRun
	owner   bool
}

// claim performs the lock-held cache and in-flight lookup for one key,
// registering a new in-flight run when this call is first.
func (r *Runner) claim(key RunKey) runClaim {
	r.mu.Lock()
	defer r.mu.Unlock()
	if res, ok := r.cache[key]; ok {
		outcome := outcomeCache
		if r.resumed[key] {
			delete(r.resumed, key)
			outcome = outcomeResumed
		}
		return runClaim{res: res, outcome: outcome}
	}
	if fl, ok := r.inflight[key]; ok {
		return runClaim{fl: fl}
	}
	fl := &inflightRun{done: make(chan struct{})}
	if r.inflight == nil {
		r.inflight = make(map[RunKey]*inflightRun)
	}
	r.inflight[key] = fl
	return runClaim{fl: fl, owner: true}
}

// settle publishes a finished owner run: cache the result on success and
// retire the in-flight entry. The caller closes fl.done after this
// returns, so waiters always observe the settled state.
func (r *Runner) settle(key RunKey, fl *inflightRun) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if fl.err == nil {
		r.cache[key] = fl.res
	}
	delete(r.inflight, key)
}

// waitShared blocks on another caller's in-flight simulation of key
// until it settles or ctx is canceled.
func (r *Runner) waitShared(ctx context.Context, key RunKey, fl *inflightRun, spec machine.Spec, program string, class workload.Class, cores int) (sim.Result, error) {
	dspan := r.startSpanDedupWait(ctx)
	start := time.Now()
	select {
	case <-fl.done:
	case <-ctx.Done():
		dspan.End("canceled", true)
		r.noteCanceled(ctx, key, "dedup-wait")
		return sim.Result{}, fmt.Errorf("experiments: run %s %s.%s n=%d: %w",
			key.Machine, key.Program, key.Class, key.Cores, ctx.Err())
	}
	dspan.End()
	if fl.err == nil {
		r.report(outcomeDedup, spec, program, class, cores, time.Since(start), 0, fl.res)
	}
	return fl.res, fl.err
}

// Run outcome annotations for Progress lines, tracer spans and metrics.
const (
	outcomeSim     = "sim"     // fresh simulation executed by this call
	outcomeDedup   = "dedup"   // waited on another caller's in-flight run
	outcomeCache   = "cache"   // served from the in-memory result cache
	outcomeResumed = "resumed" // served from a resume journal (first hit)
)

// execute performs one simulation under the worker-pool bound and reports
// progress. Worker panics (including panics from FaultFn) are confined to
// this run and surface as *WorkerPanicError.
func (r *Runner) execute(ctx context.Context, key RunKey, spec machine.Spec, program string, class workload.Class, cores int) (sim.Result, error) {
	enqueued := time.Now()
	qspan := r.startSpanQueueWait(ctx)
	sem := r.workers()
	select {
	case sem <- struct{}{}:
	case <-ctx.Done():
		qspan.End("canceled", true)
		r.noteCanceled(ctx, key, "queue-wait")
		return sim.Result{}, fmt.Errorf("experiments: run %s %s.%s n=%d: %w",
			key.Machine, key.Program, key.Class, key.Cores, ctx.Err())
	}
	qspan.End()
	defer func() { <-sem }()
	queueWait := time.Since(enqueued)

	r.progMu.Lock()
	r.submitted++
	r.progMu.Unlock()

	start := time.Now()
	xspan := r.startSpanExecute(ctx)
	res, err := r.invoke(ctx, key, spec, program, class, cores)
	if err == nil {
		xspan.End("machine", key.Machine, "program", key.Program,
			"class", string(key.Class), "cores", key.Cores)
	} else {
		xspan.End("machine", key.Machine, "program", key.Program,
			"class", string(key.Class), "cores", key.Cores, "error", err.Error())
	}

	r.progMu.Lock()
	r.completed++
	r.progMu.Unlock()
	switch {
	case err == nil:
		r.report(outcomeSim, spec, program, class, cores, queueWait, time.Since(start), res)
	case errors.Is(err, ErrWorkerPanic):
		r.notePanic(key, err)
	case errors.Is(err, sim.ErrCanceled) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		r.noteCanceled(ctx, key, "simulate")
	}
	return res, err
}

// Request-scoped span helpers: when the tracer is on AND the caller's
// context carries a telemetry.SpanContext (the serving path does; batch
// sweeps do not), the phases of one run — dedup wait, worker-queue wait,
// execute — become child spans of the caller's request so cmd/traceview
// can show where a slow predict spent its time. Off either condition they
// return the zero Span, whose End is a no-op.
func (r *Runner) startSpanDedupWait(ctx context.Context) telemetry.Span {
	if !r.Tracer.Enabled() {
		return telemetry.Span{}
	}
	sc, ok := telemetry.SpanFromContext(ctx)
	if !ok {
		return telemetry.Span{}
	}
	return r.Tracer.StartSpan(sc, "runner.dedup_wait")
}

func (r *Runner) startSpanQueueWait(ctx context.Context) telemetry.Span {
	if !r.Tracer.Enabled() {
		return telemetry.Span{}
	}
	sc, ok := telemetry.SpanFromContext(ctx)
	if !ok {
		return telemetry.Span{}
	}
	return r.Tracer.StartSpan(sc, "runner.queue_wait")
}

func (r *Runner) startSpanExecute(ctx context.Context) telemetry.Span {
	if !r.Tracer.Enabled() {
		return telemetry.Span{}
	}
	sc, ok := telemetry.SpanFromContext(ctx)
	if !ok {
		return telemetry.Span{}
	}
	return r.Tracer.StartSpan(sc, "runner.execute")
}

// invoke runs the simulation body with panic isolation: a panic anywhere
// below — the fault hook, workload construction or the simulator — is
// recovered into a *WorkerPanicError carrying the stack, leaving every
// other worker (and the runner itself) untouched.
func (r *Runner) invoke(ctx context.Context, key RunKey, spec machine.Spec, program string, class workload.Class, cores int) (res sim.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res = sim.Result{}
			err = &WorkerPanicError{Key: key, Value: v, Stack: debug.Stack()}
		}
	}()
	if f := r.FaultFn; f != nil {
		if ferr := f(FaultBeforeSim, key); ferr != nil {
			return sim.Result{}, ferr
		}
	}
	simulate := r.simulate
	if simulate == nil {
		simulate = r.simulateRun
	}
	return simulate(ctx, spec, program, class, cores)
}

// noteCanceled records one canceled run on the tracer and metrics. When
// the context carries a request span, its trace ID is attached so a 499
// in the server log is joinable to the cancellation checkpoint that
// observed it.
func (r *Runner) noteCanceled(ctx context.Context, key RunKey, where string) {
	if r.Metrics != nil {
		r.Metrics.Counter("runner_canceled_total").Inc()
	}
	if r.Tracer.Enabled() {
		if sc, ok := telemetry.SpanFromContext(ctx); ok {
			r.Tracer.Emit("runner.canceled",
				"machine", key.Machine, "program", key.Program, "class", string(key.Class),
				"cores", key.Cores, "where", where, "trace", sc.Trace.String())
			return
		}
		r.Tracer.Emit("runner.canceled",
			"machine", key.Machine, "program", key.Program, "class", string(key.Class),
			"cores", key.Cores, "where", where)
	}
}

// notePanic records one recovered worker panic on the tracer, metrics and
// the progress stream.
func (r *Runner) notePanic(key RunKey, err error) {
	if r.Metrics != nil {
		r.Metrics.Counter("runner_panic_total").Inc()
	}
	if r.Tracer.Enabled() {
		r.Tracer.Emit("runner.panic",
			"machine", key.Machine, "program", key.Program, "class", string(key.Class),
			"cores", key.Cores, "error", err.Error())
	}
	r.Progressf("WARN worker panic %s %s.%s n=%d: %v\n",
		key.Machine, key.Program, key.Class, key.Cores, err)
}

// report fans one served run out to the optional sinks: a Progress line
// annotated with the outcome, a "runner.span" tracer event splitting
// worker-queue wait from execute time, and outcome counters plus an
// execute-time histogram on Metrics. For dedup the wait parameter is the
// time spent blocked on the coalesced run; cache and resumed hits carry
// no timings.
func (r *Runner) report(outcome string, spec machine.Spec, program string, class workload.Class, cores int, wait, exec time.Duration, res sim.Result) {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	if r.Metrics != nil {
		// One literal per outcome keeps every metric name greppable
		// (enforced by simcheck's tracelint).
		switch outcome {
		case outcomeSim:
			r.Metrics.Counter("runner_sim_total").Inc()
			r.Metrics.Histogram("runner_execute_ms", 1, 10, 100, 1000, 10000).Observe(ms(exec))
		case outcomeDedup:
			r.Metrics.Counter("runner_dedup_total").Inc()
		case outcomeCache:
			r.Metrics.Counter("runner_cache_total").Inc()
		case outcomeResumed:
			r.Metrics.Counter("runner_resumed_total").Inc()
		}
	}
	if r.Tracer.Enabled() {
		r.Tracer.Emit("runner.span",
			"machine", spec.Name, "program", program, "class", string(class),
			"cores", cores, "outcome", outcome,
			"queue_wait_ms", ms(wait), "execute_ms", ms(exec))
	}

	r.progMu.Lock()
	defer r.progMu.Unlock()
	if r.Progress == nil {
		return
	}
	if outcome == outcomeCache || outcome == outcomeResumed {
		fmt.Fprintf(r.Progress, "[%d/%d] run %s %s.%s n=%d [%s]: C=%d misses=%d\n",
			r.completed, r.submitted, spec.Name, program, class, cores, outcome,
			res.TotalCycles, res.LLCMisses)
		return
	}
	fmt.Fprintf(r.Progress, "[%d/%d] run %s %s.%s n=%d [%s]: C=%d misses=%d (%.0fms)\n",
		r.completed, r.submitted, spec.Name, program, class, cores, outcome,
		res.TotalCycles, res.LLCMisses, ms(wait+exec))
}

// simulateRun is the real simulation backend of Run.
func (r *Runner) simulateRun(ctx context.Context, spec machine.Spec, program string, class workload.Class, cores int) (sim.Result, error) {
	wl, err := workload.NewTuned(program, class, r.Tuning)
	if err != nil {
		return sim.Result{}, err
	}
	threads := spec.TotalCores()
	return sim.Run(ctx, sim.Config{Spec: spec, Threads: threads, Cores: cores}, wl.Streams(threads))
}

// RunConfig executes one simulation with an explicit sim.Config, outside
// the cache and singleflight layers (variant machines share a preset name,
// and hooks are not part of the cache key) but still bounded by the worker
// pool. The config's Threads selects the stream count; zero defaults to
// the machine's total cores.
func (r *Runner) RunConfig(ctx context.Context, cfg sim.Config, program string, class workload.Class) (sim.Result, error) {
	wl, err := workload.NewTuned(program, class, r.Tuning)
	if err != nil {
		return sim.Result{}, err
	}
	threads := cfg.Threads
	if threads == 0 {
		threads = cfg.Spec.TotalCores()
	}
	sem := r.workers()
	select {
	case sem <- struct{}{}:
	case <-ctx.Done():
		return sim.Result{}, fmt.Errorf("experiments: run %s %s.%s: %w",
			cfg.Spec.Name, program, class, ctx.Err())
	}
	defer func() { <-sem }()
	return sim.Run(ctx, cfg, wl.Streams(threads))
}

// RunAll submits a whole measurement plan at once and collects results in
// plan order. Up to Jobs simulations run concurrently; duplicate items —
// within the plan or against other in-flight work — are coalesced by the
// singleflight layer. It always returns the results slice: on failure the
// completed items keep their results (failed slots are zero), alongside
// the first error in plan order, reported after all items settle so
// retries observe a quiescent runner. A worker panic fails only its own
// item; every other item still completes.
func (r *Runner) RunAll(ctx context.Context, items []RunItem) ([]sim.Result, error) {
	results := make([]sim.Result, len(items))
	errs := make([]error, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i int, it RunItem) {
			defer wg.Done()
			results[i], errs[i] = r.Run(ctx, it.Spec, it.Program, it.Class, it.Cores)
		}(i, it)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// StreamResult is one completed item of a RunStream batch: the item's
// index in the submitted slice, and the result or error of its run.
type StreamResult struct {
	// Index is the position of the completed item in the RunStream
	// items slice.
	Index int
	// Res is the simulation result; zero when Err is non-nil.
	Res sim.Result
	// Err is the item's failure (cancellation included), nil on success.
	Err error
}

// RunStream submits a batch like RunAll but delivers each result the
// moment its simulation settles, in completion order — cache hits and
// coalesced duplicates arrive first, cold runs as the worker pool
// finishes them. Every submitted item yields exactly one StreamResult
// (failed and canceled items carry Err), then the channel closes. The
// caller must drain the channel; cancelling ctx fails the remaining
// items promptly, so draining after cancel is cheap.
func (r *Runner) RunStream(ctx context.Context, items []RunItem) <-chan StreamResult {
	out := make(chan StreamResult)
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i int, it RunItem) {
			defer wg.Done()
			res, err := r.Run(ctx, it.Spec, it.Program, it.Class, it.Cores)
			//simcheck:allow(chanlint) RunStream's contract is that the caller drains out; a ctx.Done arm here would drop settled frames whose admission tokens the curve handler releases per frame, and cancel already fails remaining items promptly
			out <- StreamResult{Index: i, Res: res, Err: err}
		}(i, it)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// KeyFor returns the cache key this runner uses for one simulation: the
// (machine, program, class, cores) coordinate plus the runner's workload
// scale. It is the content address of a run — the persistent cache, the
// resume journal and the serving layer's config hashes all key on it.
func (r *Runner) KeyFor(spec machine.Spec, program string, class workload.Class, cores int) RunKey {
	return RunKey{Machine: spec.Name, Program: program, Class: class, Cores: cores, Scale: r.Tuning.RefScale}
}

// Cached returns the cached result for key, if any, without triggering a
// simulation. It observes completed runs only — an in-flight simulation
// for the key reports false until it finishes. The analytical tier
// (internal/model) uses it to fit from anchor points that are already
// paid for without ever scheduling new work.
func (r *Runner) Cached(key RunKey) (sim.Result, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	res, ok := r.cache[key]
	return res, ok
}

// Measure converts a run into a model measurement.
func (r *Runner) Measure(ctx context.Context, spec machine.Spec, program string, class workload.Class, cores int) (core.Measurement, error) {
	res, err := r.Run(ctx, spec, program, class, cores)
	if err != nil {
		return core.Measurement{}, err
	}
	return measurementOf(cores, res), nil
}

func measurementOf(cores int, res sim.Result) core.Measurement {
	return core.Measurement{
		Cores:     cores,
		Cycles:    float64(res.TotalCycles),
		LLCMisses: float64(res.LLCMisses),
	}
}

// Sweep measures program.class at each core count. The runs execute
// concurrently (bounded by Jobs); the measurements come back in coreCounts
// order and are identical to a serial sweep's.
func (r *Runner) Sweep(ctx context.Context, spec machine.Spec, program string, class workload.Class, coreCounts []int) ([]core.Measurement, error) {
	return r.SweepAsync(ctx, spec, program, class, coreCounts)()
}

// SweepAsync starts measuring program.class at each core count without
// blocking and returns a wait function. The wait function blocks until
// every run settles and returns the measurements in coreCounts order; it
// may be called any number of times. Overlapping async sweeps share runs
// through the cache and singleflight layers. Cancelling ctx aborts the
// sweep's unfinished runs; completed runs stay cached (and journaled).
func (r *Runner) SweepAsync(ctx context.Context, spec machine.Spec, program string, class workload.Class, coreCounts []int) func() ([]core.Measurement, error) {
	items := make([]RunItem, len(coreCounts))
	for i, n := range coreCounts {
		items[i] = RunItem{Spec: spec, Program: program, Class: class, Cores: n}
	}
	type outcome struct {
		meas []core.Measurement
		err  error
	}
	ch := make(chan outcome, 1)
	//simcheck:allow(leaklint) terminates when RunAll settles, which cancel guarantees; the outcome channel is buffered(1) so the final send never parks
	go func() {
		results, err := r.RunAll(ctx, items)
		if err != nil {
			ch <- outcome{err: err}
			return
		}
		meas := make([]core.Measurement, len(results))
		for i, res := range results {
			meas[i] = measurementOf(coreCounts[i], res)
		}
		ch <- outcome{meas: meas}
	}()
	var once sync.Once
	var out outcome
	return func() ([]core.Measurement, error) {
		once.Do(func() { out = <-ch })
		return out.meas, out.err
	}
}

// Progressf reports non-run progress (per-figure milestones) through the
// same serialized Progress writer the runs use.
func (r *Runner) Progressf(format string, args ...any) {
	r.progMu.Lock()
	defer r.progMu.Unlock()
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, format, args...)
	}
}

// Completed returns the number of simulations finished and started so far
// (cache hits and singleflight waiters are not counted).
func (r *Runner) Completed() (completed, submitted int) {
	r.progMu.Lock()
	defer r.progMu.Unlock()
	return r.completed, r.submitted
}

// FullSweepCounts returns 1..totalCores.
func FullSweepCounts(spec machine.Spec) []int {
	counts := make([]int, spec.TotalCores())
	for i := range counts {
		counts[i] = i + 1
	}
	return counts
}

// CoarseSweepCounts returns a cheaper sweep: every step-th core count plus
// the per-socket boundary points the figures hinge on (1, c, c+1, ...,
// total).
func CoarseSweepCounts(spec machine.Spec, step int) []int {
	if step < 1 {
		step = 1
	}
	want := map[int]bool{1: true, spec.TotalCores(): true}
	for n := step; n <= spec.TotalCores(); n += step {
		want[n] = true
	}
	c := spec.CoresPerSocket
	for s := 1; s < spec.Sockets; s++ {
		want[s*c] = true
		want[s*c+1] = true
	}
	var counts []int
	for n := 1; n <= spec.TotalCores(); n++ {
		if want[n] {
			counts = append(counts, n)
		}
	}
	return counts
}

// ModelKindFor maps a machine spec to the model variant.
func ModelKindFor(spec machine.Spec) core.Kind {
	if spec.UMA() {
		return core.UMA
	}
	return core.NUMA
}

// FitFromPlan fits the analytical model using the paper's measurement plan
// for the machine.
func (r *Runner) FitFromPlan(ctx context.Context, spec machine.Spec, program string, class workload.Class, opts core.Options) (core.Model, []int, error) {
	kind := ModelKindFor(spec)
	plan := core.PaperInputs(kind, spec.Sockets, spec.CoresPerSocket)
	meas, err := r.Sweep(ctx, spec, program, class, plan)
	if err != nil {
		return core.Model{}, nil, err
	}
	model, err := core.Fit(kind, spec.Sockets, spec.CoresPerSocket, meas, opts)
	if err != nil {
		return core.Model{}, nil, err
	}
	return model, plan, nil
}
