// Package experiments regenerates the paper's evaluation artifacts — Table
// II, Fig. 3, Table III, Fig. 4, Fig. 5, Fig. 6 and Table IV — by running
// the workloads (internal/workload) on the simulated machines
// (internal/machine + internal/sim), fitting the analytical model
// (internal/core) from the paper's measurement plans, and rendering the
// same rows and series the paper reports.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Runner executes and caches simulation runs. Sweeps for different
// experiments share runs (e.g. the CG.C sweep feeds Fig. 3, Fig. 5 and
// Table IV), so the cache cuts total runtime substantially.
type Runner struct {
	// Tuning scales workload iteration counts (1.0 for full fidelity).
	Tuning workload.Tuning
	// Progress, when non-nil, receives one line per executed run.
	Progress io.Writer

	mu    sync.Mutex
	cache map[runKey]sim.Result
}

type runKey struct {
	Machine string         `json:"machine"`
	Program string         `json:"program"`
	Class   workload.Class `json:"class"`
	Cores   int            `json:"cores"`
	Scale   float64        `json:"scale"`
}

// NewRunner returns a Runner with the given workload tuning.
func NewRunner(tune workload.Tuning) *Runner {
	return &Runner{Tuning: tune, cache: make(map[runKey]sim.Result)}
}

// Run simulates program.class on the machine with the given number of
// active cores (threads fixed at the machine's total cores, per the
// paper's protocol), caching results.
func (r *Runner) Run(spec machine.Spec, program string, class workload.Class, cores int) (sim.Result, error) {
	key := runKey{Machine: spec.Name, Program: program, Class: class, Cores: cores, Scale: r.Tuning.RefScale}
	r.mu.Lock()
	if res, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	wl, err := workload.NewTuned(program, class, r.Tuning)
	if err != nil {
		return sim.Result{}, err
	}
	threads := spec.TotalCores()
	res, err := sim.Run(sim.Config{Spec: spec, Threads: threads, Cores: cores}, wl.Streams(threads))
	if err != nil {
		return sim.Result{}, err
	}
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, "run %s %s.%s n=%d: C=%d misses=%d\n",
			spec.Name, program, class, cores, res.TotalCycles, res.LLCMisses)
	}
	r.mu.Lock()
	r.cache[key] = res
	r.mu.Unlock()
	return res, nil
}

// Measure converts a run into a model measurement.
func (r *Runner) Measure(spec machine.Spec, program string, class workload.Class, cores int) (core.Measurement, error) {
	res, err := r.Run(spec, program, class, cores)
	if err != nil {
		return core.Measurement{}, err
	}
	return core.Measurement{
		Cores:     cores,
		Cycles:    float64(res.TotalCycles),
		LLCMisses: float64(res.LLCMisses),
	}, nil
}

// Sweep measures program.class at each core count.
func (r *Runner) Sweep(spec machine.Spec, program string, class workload.Class, coreCounts []int) ([]core.Measurement, error) {
	var meas []core.Measurement
	for _, n := range coreCounts {
		m, err := r.Measure(spec, program, class, n)
		if err != nil {
			return nil, err
		}
		meas = append(meas, m)
	}
	return meas, nil
}

// FullSweepCounts returns 1..totalCores.
func FullSweepCounts(spec machine.Spec) []int {
	counts := make([]int, spec.TotalCores())
	for i := range counts {
		counts[i] = i + 1
	}
	return counts
}

// CoarseSweepCounts returns a cheaper sweep: every step-th core count plus
// the per-socket boundary points the figures hinge on (1, c, c+1, ...,
// total).
func CoarseSweepCounts(spec machine.Spec, step int) []int {
	if step < 1 {
		step = 1
	}
	want := map[int]bool{1: true, spec.TotalCores(): true}
	for n := step; n <= spec.TotalCores(); n += step {
		want[n] = true
	}
	c := spec.CoresPerSocket
	for s := 1; s < spec.Sockets; s++ {
		want[s*c] = true
		want[s*c+1] = true
	}
	var counts []int
	for n := 1; n <= spec.TotalCores(); n++ {
		if want[n] {
			counts = append(counts, n)
		}
	}
	return counts
}

// ModelKindFor maps a machine spec to the model variant.
func ModelKindFor(spec machine.Spec) core.Kind {
	if spec.UMA() {
		return core.UMA
	}
	return core.NUMA
}

// FitFromPlan fits the analytical model using the paper's measurement plan
// for the machine.
func (r *Runner) FitFromPlan(spec machine.Spec, program string, class workload.Class, opts core.Options) (core.Model, []int, error) {
	kind := ModelKindFor(spec)
	plan := core.PaperInputs(kind, spec.Sockets, spec.CoresPerSocket)
	meas, err := r.Sweep(spec, program, class, plan)
	if err != nil {
		return core.Model{}, nil, err
	}
	model, err := core.Fit(kind, spec.Sockets, spec.CoresPerSocket, meas, opts)
	if err != nil {
		return core.Model{}, nil, err
	}
	return model, plan, nil
}
