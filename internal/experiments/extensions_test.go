package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestOversubscription(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped in -short mode")
	}
	r := NewRunner(workload.Tuning{RefScale: 0.02})
	spec := machine.IntelUMA8()
	points, err := r.Oversubscription(context.Background(), spec, "CG", workload.W)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Threads != 8 || points[2].Threads != 32 {
		t.Errorf("thread counts = %d, %d", points[0].Threads, points[2].Threads)
	}
	// The total work is fixed (the problem is partitioned among however
	// many threads exist), so total cycles must stay in the same ballpark
	// while the run completes at every factor.
	for i, p := range points {
		if p.TotalCycles == 0 || p.Makespan == 0 {
			t.Errorf("point %d empty: %+v", i, p)
		}
	}
	if points[2].TotalCycles > 3*points[0].TotalCycles {
		t.Errorf("4x oversubscription inflated cycles unreasonably: %d vs %d",
			points[2].TotalCycles, points[0].TotalCycles)
	}
	var buf bytes.Buffer
	RenderOversubscription(&buf, spec, "CG", workload.C, points)
	if !strings.Contains(buf.String(), "Oversubscription") {
		t.Error("render incomplete")
	}
}

func TestSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped in -short mode")
	}
	r := NewRunner(workload.Tuning{RefScale: 0.1})
	spec := machine.IntelUMA8()
	points, err := r.Sensitivity(context.Background(), spec, "CG", workload.W)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 7 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Label != "baseline" {
		t.Errorf("first variant = %q", points[0].Label)
	}
	var buf bytes.Buffer
	RenderSensitivity(&buf, spec, "CG", workload.W, points)
	if !strings.Contains(buf.String(), "baseline") {
		t.Error("render incomplete")
	}
}

func TestSpeedupStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped in -short mode")
	}
	r := NewRunner(workload.Tuning{RefScale: 0.1})
	spec := machine.IntelUMA8()
	d, err := r.SpeedupStudy(context.Background(), spec, "CG", workload.B, []int{1, 2, 4, 5, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Measured) != 5 || len(d.Predicted) != 5 {
		t.Fatalf("lengths = %d, %d", len(d.Measured), len(d.Predicted))
	}
	// S(1) = 1 on both sides.
	if d.Measured[0] != 1 || d.Predicted[0] != 1 {
		t.Errorf("S(1) = %v / %v", d.Measured[0], d.Predicted[0])
	}
	if d.OptimalCores < 1 || d.OptimalCores > 8 {
		t.Errorf("optimal cores = %d", d.OptimalCores)
	}
	var buf bytes.Buffer
	RenderSpeedup(&buf, d)
	if !strings.Contains(buf.String(), "optimum") {
		t.Error("render incomplete")
	}
}

func TestDatFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped in -short mode")
	}
	dir := t.TempDir()
	fig3 := Fig3Data{
		Machine: "TestMach",
		Cores:   []int{1, 2},
		Total:   []float64{10, 20},
		Stall:   []float64{4, 12},
		Work:    []float64{6, 8},
		Misses:  []float64{5, 5},
	}
	if err := WriteFig3Dat(dir, fig3); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3_TestMach.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "1 10 4 6 5") {
		t.Errorf("fig3 dat = %q", data)
	}

	// Fig5-style file through the real pipeline on the tiny tune.
	r := NewRunner(workload.Tuning{RefScale: 0.05})
	fig, err := r.Fig5(context.Background(), machine.IntelUMA8(), []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteModelFigDat(dir, "fig5", fig); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(filepath.Join(dir, "fig5_IntelUMA8.dat"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2+3 { // two comment lines + three points
		t.Errorf("fig5 dat lines = %d:\n%s", len(lines), data)
	}

	// Fig4 CCDF files.
	series := []Fig4Series{{
		Program: "CG", Class: workload.S,
	}}
	series[0].Analysis.CCDF = []stats.CCDFPoint{{X: 1, P: 0.5}, {X: 10, P: 0.1}, {X: 100, P: 0}}
	if err := WriteFig4Dat(dir, series); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(filepath.Join(dir, "fig4_CG_S.dat"))
	if err != nil {
		t.Fatal(err)
	}
	// Zero-probability final point excluded (log plot).
	if strings.Contains(string(data), "100 ") {
		t.Errorf("fig4 dat should drop zero-probability points:\n%s", data)
	}
	if !strings.Contains(string(data), "10 0.1") {
		t.Errorf("fig4 dat missing point:\n%s", data)
	}
}

func TestDatFilesBadDir(t *testing.T) {
	if err := WriteFig3Dat("/nonexistent-dir-xyz", Fig3Data{Machine: "m"}); err == nil {
		t.Error("bad directory accepted")
	}
}

func TestWriteJSON(t *testing.T) {
	dir := t.TempDir()
	d := TableIIData{Cells: []TableIICell{
		{Machine: "M", Program: "CG", Size: workload.C, Cores: 8, Omega: 2.5},
	}}
	if err := WriteJSON(dir, "tableII", d); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "tableII.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"Omega": 2.5`) {
		t.Errorf("json = %s", data)
	}
	if err := WriteBundle(dir, Bundle{TableII: &d}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "results.json")); err != nil {
		t.Error("bundle not written")
	}
	if err := WriteJSON("/nonexistent-dir-xyz", "x", d); err == nil {
		t.Error("bad dir accepted")
	}
}

func TestWhiteBoxStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped in -short mode")
	}
	r := NewRunner(workload.Tuning{RefScale: 0.1})
	spec := machine.IntelUMA8()
	d, err := r.WhiteBoxStudy(context.Background(), spec, "CG", workload.B, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.WhiteBox) != 3 {
		t.Fatalf("points = %d", len(d.WhiteBox))
	}
	if d.WhiteBox[0] != 0 {
		t.Errorf("whitebox omega(1) = %v", d.WhiteBox[0])
	}
	// Qualitative agreement: both sides must show growth from 1 to 8 cores.
	if d.Measured[2] <= 0.1 || d.WhiteBox[2] <= 0.1 {
		t.Errorf("expected contention at 8 cores: measured %v whitebox %v",
			d.Measured[2], d.WhiteBox[2])
	}
	// CG has a substantial dependent fraction (the gathers).
	if d.DepFraction < 0.1 {
		t.Errorf("dep fraction = %v", d.DepFraction)
	}
	var buf bytes.Buffer
	RenderWhiteBox(&buf, d)
	if !strings.Contains(buf.String(), "White-box") {
		t.Error("render incomplete")
	}
}

func TestRunnerPersistentCache(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.json")
	r1 := NewRunner(workload.Tuning{RefScale: 0.05})
	spec := machine.IntelUMA8()
	res1, err := r1.Run(context.Background(), spec, "CG", workload.W, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.SaveCache(path); err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner(workload.Tuning{RefScale: 0.05})
	n, err := r2.LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || r2.CacheLen() != 1 {
		t.Fatalf("loaded %d entries", n)
	}
	// The cached run is served without simulation and matches exactly.
	// Poison r2's tuning so an actual re-simulation would error out: a
	// cache hit must bypass workload construction entirely... instead,
	// prove the hit by checking the runner does not grow its cache.
	res2, err := r2.Run(context.Background(), spec, "CG", workload.W, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res1.TotalCycles != res2.TotalCycles || res1.LLCMisses != res2.LLCMisses {
		t.Error("cached result differs")
	}
	if r2.CacheLen() != 1 {
		t.Errorf("cache grew to %d entries — the loaded key did not match", r2.CacheLen())
	}

	// Missing file: no error, zero entries.
	r3 := NewRunner(workload.Tuning{})
	if n, err := r3.LoadCache(filepath.Join(dir, "missing.json")); err != nil || n != 0 {
		t.Errorf("missing file: n=%d err=%v", n, err)
	}
	// Corrupt file: error.
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r3.LoadCache(path); err == nil {
		t.Error("corrupt cache accepted")
	}
	// Version mismatch: silently discarded.
	if err := os.WriteFile(path, []byte(`{"version":1,"entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := r3.LoadCache(path); err != nil || n != 0 {
		t.Errorf("old version: n=%d err=%v", n, err)
	}
}
