package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// JSON export: every experiment's data structure serializes to a
// machine-readable file, so external analysis (plotting notebooks,
// regression dashboards) can consume the reproduction without parsing the
// textual tables.

// WriteJSON marshals v with indentation into dir/name.json.
func WriteJSON(dir, name string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(filepath.Join(dir, name+".json"), data, 0o644)
}

// Bundle collects every artifact of a full reproduction run for one
// machine set, for single-file export.
type Bundle struct {
	// TableII holds the normalized cycle-increase cells.
	TableII *TableIIData `json:"tableII,omitempty"`
	// Fig3 holds the per-machine cycle series.
	Fig3 []Fig3Data `json:"fig3,omitempty"`
	// TableIII holds the problem-size inventory.
	TableIII []ProblemSize `json:"tableIII,omitempty"`
	// Fig4 holds the burstiness series.
	Fig4 []Fig4Series `json:"fig4,omitempty"`
	// Fig5 and Fig6 hold the model validations.
	Fig5 []ModelFig `json:"fig5,omitempty"`
	Fig6 []ModelFig `json:"fig6,omitempty"`
	// TableIV holds the linearity cells.
	TableIV []TableIVCell `json:"tableIV,omitempty"`
	// Speedup holds the speedup studies.
	Speedup []SpeedupData `json:"speedup,omitempty"`
}

// WriteBundle marshals the bundle into dir/results.json.
func WriteBundle(dir string, b Bundle) error {
	return WriteJSON(dir, "results", b)
}
