package experiments

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// countingSim installs a fake simulation backend on r that records how
// many times each key executes and returns a deterministic result derived
// from the key. It returns the per-key counter map (guarded by mu).
func countingSim(r *Runner, delay time.Duration) (counts map[RunKey]*int64, mu *sync.Mutex) {
	counts = make(map[RunKey]*int64)
	mu = &sync.Mutex{}
	r.simulate = func(_ context.Context, spec machine.Spec, program string, class workload.Class, cores int) (sim.Result, error) {
		key := RunKey{Machine: spec.Name, Program: program, Class: class, Cores: cores, Scale: r.Tuning.RefScale}
		mu.Lock()
		c, ok := counts[key]
		if !ok {
			c = new(int64)
			counts[key] = c
		}
		mu.Unlock()
		atomic.AddInt64(c, 1)
		if delay > 0 {
			time.Sleep(delay)
		}
		if program == "bad" {
			return sim.Result{}, fmt.Errorf("experiments: no such program")
		}
		return sim.Result{
			MachineName: spec.Name,
			Cores:       cores,
			TotalCycles: uint64(1000 * cores),
			LLCMisses:   uint64(10 * cores),
		}, nil
	}
	return counts, mu
}

// TestSingleflightDedup drives many goroutines through overlapping sweeps
// and asserts exactly one underlying simulation per distinct key.
func TestSingleflightDedup(t *testing.T) {
	r := NewRunner(quickTune)
	r.Jobs = 8
	counts, mu := countingSim(r, 2*time.Millisecond)
	spec := machine.IntelUMA8()

	// Overlapping sweeps: every goroutine shares counts {1,2,4} and adds
	// one private count, so both duplicate and unique keys are in flight.
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := r.Sweep(context.Background(), spec, "CG", workload.W, []int{1, 2, 4, 1 + g%8}); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(counts) == 0 {
		t.Fatal("no simulations executed")
	}
	for key, c := range counts {
		if n := atomic.LoadInt64(c); n != 1 {
			t.Errorf("key %+v simulated %d times, want 1", key, n)
		}
	}
}

// TestDoubleSimulateRaceRegression pins the historical bug where the cache
// check unlocked before simulating: two goroutines missing the same key
// both executed the run. The singleflight layer must coalesce them.
func TestDoubleSimulateRaceRegression(t *testing.T) {
	r := NewRunner(quickTune)
	r.Jobs = 4
	counts, mu := countingSim(r, 10*time.Millisecond)
	spec := machine.IntelUMA8()

	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]sim.Result, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, err := r.Run(context.Background(), spec, "CG", workload.W, 2)
			if err != nil {
				t.Error(err)
			}
			results[i] = res
		}(i)
	}
	close(start)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(counts) != 1 {
		t.Fatalf("distinct keys executed = %d, want 1", len(counts))
	}
	for key, c := range counts {
		if n := atomic.LoadInt64(c); n != 1 {
			t.Errorf("key %+v simulated %d times, want exactly 1", key, n)
		}
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Error("racing goroutines observed different results")
	}
}

// TestConcurrentMatchesSerial checks the determinism contract end to end
// on the real simulator: a parallel runner must produce results identical
// to a serial one, for Run, Sweep and RunAll alike.
func TestConcurrentMatchesSerial(t *testing.T) {
	spec := machine.IntelUMA8()
	counts := []int{1, 2, 4, 8}

	serial := NewRunner(quickTune)
	serial.Jobs = 1
	wantMeas, err := serial.Sweep(context.Background(), spec, "CG", workload.W, counts)
	if err != nil {
		t.Fatal(err)
	}

	parallel := NewRunner(quickTune)
	parallel.Jobs = 8
	// Submit the sweep twice concurrently plus the raw plan, all at once.
	w1 := parallel.SweepAsync(context.Background(), spec, "CG", workload.W, counts)
	w2 := parallel.SweepAsync(context.Background(), spec, "CG", workload.W, counts)
	plan := make([]RunItem, len(counts))
	for i, n := range counts {
		plan[i] = RunItem{Spec: spec, Program: "CG", Class: workload.W, Cores: n}
	}
	results, err := parallel.RunAll(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	got1, err := w1()
	if err != nil {
		t.Fatal(err)
	}
	got2, err := w2()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(wantMeas, got1) || !reflect.DeepEqual(got1, got2) {
		t.Errorf("parallel sweep differs from serial:\nserial  %+v\nparallel %+v", wantMeas, got1)
	}
	for i, n := range counts {
		res, err := serial.Run(context.Background(), spec, "CG", workload.W, n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, results[i]) {
			t.Errorf("RunAll[%d] (n=%d) differs from serial Run", i, n)
		}
	}
}

// TestRunAllOrderAndErrors checks plan-order results and deterministic
// error reporting (first failure in plan order).
func TestRunAllOrderAndErrors(t *testing.T) {
	r := NewRunner(quickTune)
	r.Jobs = 4
	countingSim(r, 0)
	spec := machine.IntelUMA8()

	plan := []RunItem{
		{Spec: spec, Program: "CG", Class: workload.W, Cores: 4},
		{Spec: spec, Program: "CG", Class: workload.W, Cores: 1},
		{Spec: spec, Program: "CG", Class: workload.W, Cores: 4}, // duplicate
	}
	results, err := r.RunAll(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Cores != 4 || results[1].Cores != 1 || results[2].Cores != 4 {
		t.Errorf("results out of plan order: %+v", results)
	}
	if !reflect.DeepEqual(results[0], results[2]) {
		t.Error("duplicate plan items returned different results")
	}

	plan = append(plan, RunItem{Spec: spec, Program: "bad", Class: workload.W, Cores: 1})
	if _, err := r.RunAll(context.Background(), plan); err == nil {
		t.Error("RunAll swallowed an item error")
	}
}

// TestProgressConcurrent checks that the progress writer sees one whole
// line per executed run (no interleaving) with the completed/total counter.
func TestProgressConcurrent(t *testing.T) {
	r := NewRunner(quickTune)
	r.Jobs = 8
	countingSim(r, time.Millisecond)
	var buf bytes.Buffer
	r.Progress = &buf
	spec := machine.IntelUMA8()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := r.Run(context.Background(), spec, "CG", workload.W, 1+g); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("progress lines = %d, want 8:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "[") || !strings.Contains(line, "run IntelUMA8") {
			t.Errorf("malformed progress line: %q", line)
		}
	}
	if !strings.Contains(buf.String(), "[8/8]") {
		t.Errorf("final completed/total counter missing:\n%s", buf.String())
	}
	completed, submitted := r.Completed()
	if completed != 8 || submitted != 8 {
		t.Errorf("counters = %d/%d, want 8/8", completed, submitted)
	}
}

// TestRunConfigBounded checks the uncached path still honors the Jobs
// bound (no more than Jobs simulations at once).
func TestRunConfigBounded(t *testing.T) {
	r := NewRunner(workload.Tuning{RefScale: 0.02})
	r.Jobs = 2
	spec := machine.IntelUMA8()

	var active, peak int64
	var mu sync.Mutex
	// Wrap via the cached path, which shares the same semaphore.
	r.simulate = func(context.Context, machine.Spec, string, workload.Class, int) (sim.Result, error) {
		mu.Lock()
		active++
		if active > peak {
			peak = active
		}
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		mu.Lock()
		active--
		mu.Unlock()
		return sim.Result{}, nil
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Distinct keys so every call truly executes.
			if _, err := r.Run(context.Background(), spec, "CG", workload.W, 1+g); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if peak > 2 {
		t.Errorf("peak concurrent simulations = %d, want <= Jobs=2", peak)
	}
}

// BenchmarkRunnerMatrix measures a multi-figure style run matrix (fresh
// runner per iteration, so nothing is cached) at several worker-pool
// widths. On a 4+-core host jobs=4 should cut wall-clock time by >=2x
// versus jobs=1; on a single-core host the times converge.
func BenchmarkRunnerMatrix(b *testing.B) {
	spec := machine.IntelUMA8()
	plan := make([]RunItem, 0, 16)
	for _, prog := range []string{"EP", "IS", "CG", "SP"} {
		for _, n := range []int{1, 2, 4, 8} {
			plan = append(plan, RunItem{Spec: spec, Program: prog, Class: workload.W, Cores: n})
		}
	}
	for _, jobs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := NewRunner(workload.Tuning{RefScale: 0.05})
				r.Jobs = jobs
				if _, err := r.RunAll(context.Background(), plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
