package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/burst"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/memctrl"
	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Table II: normalized increase in number of cycles for small (W) and large
// (C) problem sizes at half and all cores on each machine.
// ---------------------------------------------------------------------------

// TableIICell is one entry of Table II: ω(n) for a program/size on one
// machine at one core count.
type TableIICell struct {
	Machine string
	Program string
	Size    workload.Class
	Cores   int
	Omega   float64
}

// TableIIData holds the full table.
type TableIIData struct {
	Cells []TableIICell
}

// tableIIPrograms lists the five HPC dwarfs in the paper's row order.
var tableIIPrograms = []string{"EP", "IS", "FT", "CG", "SP"}

// TableII measures the normalized cycle increase ω(n) = (C(n)-C(1))/C(1)
// for the five dwarfs at small (W) and large (C) sizes, with n at half and
// all cores of each machine. The whole machine×size×program×cores matrix
// is one measurement plan, submitted at once and executed with up to Jobs
// concurrent simulations.
func (r *Runner) TableII(ctx context.Context, specs []machine.Spec) (TableIIData, error) {
	// cellAt maps each output cell to its run and 1-core baseline in the
	// plan, so results assemble in the paper's row order regardless of
	// execution interleaving.
	type cellAt struct {
		cell            TableIICell
		baseIdx, runIdx int
	}
	var plan []RunItem
	var cells []cellAt
	for _, spec := range specs {
		half := spec.TotalCores() / 2
		all := spec.TotalCores()
		for _, size := range []workload.Class{workload.W, workload.C} {
			for _, prog := range tableIIPrograms {
				baseIdx := len(plan)
				plan = append(plan, RunItem{Spec: spec, Program: prog, Class: size, Cores: 1})
				for _, n := range []int{half, all} {
					cells = append(cells, cellAt{
						cell:    TableIICell{Machine: spec.Name, Program: prog, Size: size, Cores: n},
						baseIdx: baseIdx,
						runIdx:  len(plan),
					})
					plan = append(plan, RunItem{Spec: spec, Program: prog, Class: size, Cores: n})
				}
			}
		}
	}
	results, err := r.RunAll(ctx, plan)
	if err != nil {
		return TableIIData{}, err
	}
	var data TableIIData
	for _, c := range cells {
		c.cell.Omega = core.Omega(
			float64(results[c.runIdx].TotalCycles),
			float64(results[c.baseIdx].TotalCycles))
		data.Cells = append(data.Cells, c.cell)
	}
	return data, nil
}

// Cell finds an entry.
func (d TableIIData) Cell(machineName, program string, size workload.Class, cores int) (TableIICell, bool) {
	for _, c := range d.Cells {
		if c.Machine == machineName && c.Program == program && c.Size == size && c.Cores == cores {
			return c, true
		}
	}
	return TableIICell{}, false
}

// ---------------------------------------------------------------------------
// Fig. 3: CG.C total/stall/work cycles and LLC misses vs number of cores.
// ---------------------------------------------------------------------------

// Fig3Data is the four series of Fig. 3 for one machine.
type Fig3Data struct {
	Machine string
	Cores   []int
	Total   []float64
	Stall   []float64
	Work    []float64
	Misses  []float64
}

// Fig3 sweeps CG.C over the given core counts on one machine, submitting
// the sweep as one concurrent plan.
func (r *Runner) Fig3(ctx context.Context, spec machine.Spec, coreCounts []int) (Fig3Data, error) {
	plan := make([]RunItem, len(coreCounts))
	for i, n := range coreCounts {
		plan[i] = RunItem{Spec: spec, Program: "CG", Class: workload.C, Cores: n}
	}
	results, err := r.RunAll(ctx, plan)
	if err != nil {
		return Fig3Data{}, err
	}
	d := Fig3Data{Machine: spec.Name, Cores: coreCounts}
	for _, res := range results {
		d.Total = append(d.Total, float64(res.TotalCycles))
		d.Stall = append(d.Stall, float64(res.StallCycles))
		d.Work = append(d.Work, float64(res.WorkCycles))
		d.Misses = append(d.Misses, float64(res.LLCMisses))
	}
	return d, nil
}

// ---------------------------------------------------------------------------
// Table III: problem-size descriptions for CG and x264.
// ---------------------------------------------------------------------------

// ProblemSize is one row of Table III.
type ProblemSize struct {
	Program     string
	Class       workload.Class
	Description string
	Footprint   uint64
}

// TableIII returns the problem-size inventory for CG and x264 (the
// burstiness study's subjects), including the scaled footprints actually
// simulated.
func TableIII() ([]ProblemSize, error) {
	var rows []ProblemSize
	for _, prog := range []string{"CG", "x264"} {
		for _, class := range workload.ClassesFor(prog) {
			w, err := workload.New(prog, class)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ProblemSize{
				Program:     prog,
				Class:       class,
				Description: w.Description(),
				Footprint:   w.FootprintBytes(),
			})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fig. 4: burstiness of off-chip memory traffic (CCDF of burst sizes) for
// CG and x264 across problem sizes, on the Intel NUMA machine with all
// cores active.
// ---------------------------------------------------------------------------

// Fig4Series is the burstiness profile of one program+class.
type Fig4Series struct {
	Program  string
	Class    workload.Class
	Analysis burst.Analysis
	Verdict  burst.Verdict
}

// Fig4 runs each program+class with the 5 µs LLC-miss sampler attached and
// analyzes burst sizes. The paper uses 24 threads on 24 cores of the Intel
// NUMA machine. Sampled runs are not cacheable (the miss hook is not part
// of the cache key), but the nine subjects still execute concurrently
// under the worker-pool bound and the series come back in the paper's
// order.
func (r *Runner) Fig4(ctx context.Context, spec machine.Spec) ([]Fig4Series, error) {
	subjects := []struct {
		program string
		classes []workload.Class
	}{
		{"CG", []workload.Class{workload.S, workload.W, workload.A, workload.B, workload.C}},
		{"x264", []workload.Class{workload.SimSmall, workload.SimMedium, workload.SimLarge, workload.Native}},
	}
	type subject struct {
		program string
		class   workload.Class
	}
	var order []subject
	for _, subj := range subjects {
		for _, class := range subj.classes {
			order = append(order, subject{subj.program, class})
		}
	}
	series := make([]Fig4Series, len(order))
	err := parallelEach(len(order), func(i int) error {
		subj := order[i]
		s, err := r.runSampled(ctx, spec, subj.program, subj.class)
		if err != nil {
			return err
		}
		a, err := burst.Analyze(s.Windows())
		if errors.Is(err, burst.ErrNoTraffic) {
			// Fully cached run: report an empty bursty profile.
			series[i] = Fig4Series{Program: subj.program, Class: subj.class, Verdict: burst.Bursty}
			return nil
		}
		if err != nil {
			return err
		}
		series[i] = Fig4Series{
			Program:  subj.program,
			Class:    subj.class,
			Analysis: a,
			Verdict:  a.Classify(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return series, nil
}

// parallelEach runs fn(0..n-1) concurrently and returns the first error in
// index order after all calls settle. The worker-pool bound applies inside
// fn's simulations, not here, so waiters cost nothing.
func parallelEach(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runSampled executes one run with the paper's 5 µs sampler attached.
// Sampled runs are not cached (the hook is not part of the cache key) but
// still count against the worker-pool bound via RunConfig.
func (r *Runner) runSampled(ctx context.Context, spec machine.Spec, program string, class workload.Class) (*sampler.Sampler, error) {
	// The paper samples every 5 µs of real-machine time. Our machines and
	// problem classes are scaled down by machine.CacheScale, which
	// compresses phase durations by roughly the same factor, so the
	// equivalent sampling window scales with them.
	micros := float64(sampler.DefaultWindowMicros) / machine.CacheScale
	s, err := sampler.NewMicros(micros, spec.ClockGHz)
	if err != nil {
		return nil, err
	}
	threads := spec.TotalCores()
	res, err := r.RunConfig(ctx, sim.Config{
		Spec:     spec,
		Threads:  threads,
		Cores:    threads,
		MissHook: s.Hook(),
	}, program, class)
	if err != nil {
		return nil, err
	}
	// Count quiet trailing windows toward the busy fraction.
	s.PadTo(res.Makespan)
	return s, nil
}

// ---------------------------------------------------------------------------
// Fig. 5 / Fig. 6: measured vs modeled degree of contention ω(n) for a
// high-contention program (CG.C) and a low-contention one (EP.C).
// ---------------------------------------------------------------------------

// ModelFig is one machine's measured-vs-modeled ω(n) comparison.
type ModelFig struct {
	Machine    string
	Program    string
	Class      workload.Class
	InputPlan  []int // core counts used to fit the model
	Validation core.Validation
	Model      core.Model
}

// ModelVsMeasurement fits the model from the paper's input plan and
// validates it against a measured sweep. The fit-plan runs and the
// validation sweep are submitted together, so they overlap (and share
// their common core counts) instead of executing back to back.
func (r *Runner) ModelVsMeasurement(ctx context.Context, spec machine.Spec, program string, class workload.Class, coreCounts []int, opts core.Options) (ModelFig, error) {
	kind := ModelKindFor(spec)
	plan := core.PaperInputs(kind, spec.Sockets, spec.CoresPerSocket)
	fitWait := r.SweepAsync(ctx, spec, program, class, plan)
	sweepWait := r.SweepAsync(ctx, spec, program, class, coreCounts)
	fitMeas, err := fitWait()
	if err != nil {
		return ModelFig{}, err
	}
	model, err := core.Fit(kind, spec.Sockets, spec.CoresPerSocket, fitMeas, opts)
	if err != nil {
		return ModelFig{}, err
	}
	sweep, err := sweepWait()
	if err != nil {
		return ModelFig{}, err
	}
	v, err := core.Validate(model, sweep)
	if err != nil {
		return ModelFig{}, err
	}
	return ModelFig{
		Machine:    spec.Name,
		Program:    program,
		Class:      class,
		InputPlan:  plan,
		Validation: v,
		Model:      model,
	}, nil
}

// Fig5 is the high-contention validation (CG.C).
func (r *Runner) Fig5(ctx context.Context, spec machine.Spec, coreCounts []int) (ModelFig, error) {
	return r.ModelVsMeasurement(ctx, spec, "CG", workload.C, coreCounts, core.Options{})
}

// Fig6 is the low-contention validation (EP.C).
func (r *Runner) Fig6(ctx context.Context, spec machine.Spec, coreCounts []int) (ModelFig, error) {
	return r.ModelVsMeasurement(ctx, spec, "EP", workload.C, coreCounts, core.Options{})
}

// ---------------------------------------------------------------------------
// Table IV: goodness-of-fit R² for the linearity of 1/C(n).
// ---------------------------------------------------------------------------

// TableIVCell is one R² entry.
type TableIVCell struct {
	Machine string
	Program string
	Class   workload.Class
	R2      float64
}

// tableIVSubjects lists the paper's Table IV columns.
var tableIVSubjects = []struct {
	Program string
	Class   workload.Class
}{
	{"EP", workload.C},
	{"IS", workload.C},
	{"FT", workload.B},
	{"CG", workload.C},
	{"SP", workload.C},
	{"x264", workload.Native},
}

// TableIV computes the 1/C(n) linearity R² over n = 1..4 on UMA machines
// and n = 1..12 on NUMA machines, as in the paper. All machine×program
// sweeps are submitted up front and collected in table order.
func (r *Runner) TableIV(ctx context.Context, specs []machine.Spec) ([]TableIVCell, error) {
	type pending struct {
		cell TableIVCell
		wait func() ([]core.Measurement, error)
	}
	var waits []pending
	for _, spec := range specs {
		upTo := 12
		if spec.UMA() {
			upTo = 4
		}
		if upTo > spec.CoresPerSocket {
			upTo = spec.CoresPerSocket
		}
		var counts []int
		for n := 1; n <= upTo; n++ {
			counts = append(counts, n)
		}
		for _, subj := range tableIVSubjects {
			waits = append(waits, pending{
				cell: TableIVCell{Machine: spec.Name, Program: subj.Program, Class: subj.Class},
				wait: r.SweepAsync(ctx, spec, subj.Program, subj.Class, counts),
			})
		}
	}
	var cells []TableIVCell
	for _, p := range waits {
		meas, err := p.wait()
		if err != nil {
			return nil, err
		}
		r2, err := core.LinearityR2(meas)
		if err != nil {
			return nil, err
		}
		p.cell.R2 = r2
		cells = append(cells, p.cell)
	}
	return cells, nil
}

// ---------------------------------------------------------------------------
// Ablation A: AMD NUMA fitted with the homogeneous-interconnect assumption
// (three inputs / single ρ) vs the full heterogeneous fit.
// ---------------------------------------------------------------------------

// AblationInputsResult compares the two fits.
type AblationInputsResult struct {
	Machine           string
	HeterogeneousMRE  float64
	HomogeneousMRE    float64
	HeterogeneousRhos []float64
	HomogeneousRhos   []float64
}

// AblationInputs reproduces the paper's observation that assuming
// homogeneous interconnect latencies on the AMD machine degrades accuracy.
func (r *Runner) AblationInputs(ctx context.Context, spec machine.Spec, coreCounts []int) (AblationInputsResult, error) {
	het, err := r.ModelVsMeasurement(ctx, spec, "CG", workload.C, coreCounts, core.Options{})
	if err != nil {
		return AblationInputsResult{}, err
	}
	hom, err := r.ModelVsMeasurement(ctx, spec, "CG", workload.C, coreCounts, core.Options{Homogeneous: true})
	if err != nil {
		return AblationInputsResult{}, err
	}
	return AblationInputsResult{
		Machine:           spec.Name,
		HeterogeneousMRE:  het.Validation.MeanRelErr,
		HomogeneousMRE:    hom.Validation.MeanRelErr,
		HeterogeneousRhos: het.Model.Rho,
		HomogeneousRhos:   hom.Model.Rho,
	}, nil
}

// ---------------------------------------------------------------------------
// Ablation B: memory-controller service discipline (FCFS vs FR-FCFS).
// ---------------------------------------------------------------------------

// AblationControllerResult compares contention under the two disciplines.
type AblationControllerResult struct {
	Machine   string
	OmegaFCFS float64
	OmegaFR   float64
	AvgWaitFC float64
	AvgWaitFR float64
	RowHitFC  float64
	RowHitFR  float64
	CoresUsed int
}

// AblationController runs CG.C at full core count under both disciplines
// (the paper lists service discipline among the model extensions).
func (r *Runner) AblationController(ctx context.Context, spec machine.Spec) (AblationControllerResult, error) {
	runBoth := func(disc memctrl.Discipline) (base, full sim.Result, err error) {
		s := spec
		s.MC.Discipline = disc
		threads := s.TotalCores()
		for _, cores := range []int{1, threads} {
			res, rerr := r.RunConfig(ctx, sim.Config{Spec: s, Threads: threads, Cores: cores}, "CG", workload.C)
			if rerr != nil {
				return base, full, rerr
			}
			if cores == 1 {
				base = res
			} else {
				full = res
			}
		}
		return base, full, nil
	}

	fcBase, fcFull, err := runBoth(memctrl.FCFS)
	if err != nil {
		return AblationControllerResult{}, err
	}
	frBase, frFull, err := runBoth(memctrl.FRFCFS)
	if err != nil {
		return AblationControllerResult{}, err
	}
	res := AblationControllerResult{
		Machine:   spec.Name,
		OmegaFCFS: core.Omega(float64(fcFull.TotalCycles), float64(fcBase.TotalCycles)),
		OmegaFR:   core.Omega(float64(frFull.TotalCycles), float64(frBase.TotalCycles)),
		CoresUsed: spec.TotalCores(),
	}
	res.AvgWaitFC, res.RowHitFC = mcAverages(fcFull)
	res.AvgWaitFR, res.RowHitFR = mcAverages(frFull)
	return res, nil
}

func mcAverages(res sim.Result) (avgWait, rowHit float64) {
	var wait, served, hits float64
	for _, mc := range res.MCStats {
		wait += float64(mc.TotalWait)
		served += float64(mc.Requests)
		hits += float64(mc.RowHits)
	}
	if served == 0 {
		return 0, 0
	}
	return wait / served, hits / served
}

// ---------------------------------------------------------------------------
// Ablation C: open M/M/1 model vs closed machine-repairman baseline.
// ---------------------------------------------------------------------------

// AblationClosedResult compares the fitted open-queue model against a
// closed-network baseline on the same measurements.
type AblationClosedResult struct {
	Machine   string
	OpenMRE   float64
	ClosedMRE float64
}

// AblationClosedModel fits both model families within one socket of the
// machine and compares their fit quality over the full single-socket sweep.
// The closed model self-throttles and cannot reproduce the hockey-stick
// growth, which is why the paper's open M/M/1 wins for contended programs.
func (r *Runner) AblationClosedModel(ctx context.Context, spec machine.Spec, program string, class workload.Class) (AblationClosedResult, error) {
	c := spec.CoresPerSocket
	var counts []int
	for n := 1; n <= c; n++ {
		counts = append(counts, n)
	}
	sweep, err := r.Sweep(ctx, spec, program, class, counts)
	if err != nil {
		return AblationClosedResult{}, err
	}
	// Open model from the paper's two-point plan.
	openFit, err := core.FitSingle([]core.Measurement{sweep[0], sweep[len(sweep)-1]})
	if err != nil {
		return AblationClosedResult{}, err
	}
	// Closed baseline: calibrate think time and service rate from the same
	// two points, assuming C_closed(n) = r * Rresp(n) + W where the
	// response grows linearly to saturation — equivalently interpolate the
	// two points linearly in n (the closed network's saturated regime).
	c1 := sweep[0].Cycles
	cN := sweep[len(sweep)-1].Cycles
	closedC := func(n int) float64 {
		return c1 + (cN-c1)*float64(n-1)/float64(c-1)
	}
	var openPred, closedPred, obs []float64
	for _, m := range sweep {
		openPred = append(openPred, openFit.C(m.Cores))
		closedPred = append(closedPred, closedC(m.Cores))
		obs = append(obs, m.Cycles)
	}
	res := AblationClosedResult{Machine: spec.Name}
	if res.OpenMRE, err = meanRelErr(openPred, obs); err != nil {
		return AblationClosedResult{}, err
	}
	if res.ClosedMRE, err = meanRelErr(closedPred, obs); err != nil {
		return AblationClosedResult{}, err
	}
	return res, nil
}

func meanRelErr(pred, obs []float64) (float64, error) {
	var sum float64
	for i := range pred {
		if obs[i] == 0 {
			continue
		}
		d := pred[i] - obs[i]
		if d < 0 {
			d = -d
		}
		sum += d / obs[i]
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("experiments: no predictions")
	}
	return sum / float64(len(pred)), nil
}
