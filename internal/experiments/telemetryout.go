package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/viz"
)

// WriteTelemetryArtifacts writes the observability artifacts of one
// observed run into dir: <name>.timeline.dat, the sampled time series as
// one gnuplot-ready table (column order per RunTelemetry.Series), and
// <name>.metrics.prom, a Prometheus text-format snapshot of reg. Either
// input may be nil to skip its artifact. It returns the paths written.
func WriteTelemetryArtifacts(dir, name string, rt *sim.RunTelemetry, reg *telemetry.Registry) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var files []string
	if rt != nil {
		path := filepath.Join(dir, name+".timeline.dat")
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		err = telemetry.WriteTimelineDat(f, rt.Series()...)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("telemetry timeline %s: %w", path, err)
		}
		files = append(files, path)
	}
	if reg != nil {
		path := filepath.Join(dir, name+".metrics.prom")
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		err = reg.WritePrometheus(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("telemetry metrics %s: %w", path, err)
		}
		files = append(files, path)
	}
	return files, nil
}

// UtilizationChart renders the per-controller utilization time series of
// one observed run as an ASCII chart (cycles on x, utilization on y) — the
// terminal-friendly view of the .dat timeline.
func UtilizationChart(rt *sim.RunTelemetry, title string) *viz.Chart {
	ch := &viz.Chart{Title: title, XLabel: "cycles", YLabel: "util"}
	for _, s := range rt.MCUtil {
		x, y := s.XY()
		ch.Add(viz.Series{Name: s.Name, X: x, Y: y})
	}
	for _, s := range rt.BusUtil {
		x, y := s.XY()
		ch.Add(viz.Series{Name: s.Name, X: x, Y: y})
	}
	return ch
}
