package experiments

import (
	"context"
	"errors"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestRunStreamDeliversAll checks every item arrives exactly once with
// its original index, and that the results match a sequential Run of the
// same specs (the stream path shares the cache and singleflight).
func TestRunStreamDeliversAll(t *testing.T) {
	r := NewRunner(quickTune)
	spec := machine.IntelUMA8()
	items := []RunItem{
		{Spec: spec, Program: "CG", Class: workload.W, Cores: 1},
		{Spec: spec, Program: "CG", Class: workload.W, Cores: 2},
		{Spec: spec, Program: "CG", Class: workload.W, Cores: 3},
		{Spec: spec, Program: "EP", Class: workload.W, Cores: 2},
	}

	got := make(map[int]sim.Result)
	for sr := range r.RunStream(context.Background(), items) {
		if sr.Err != nil {
			t.Fatalf("item %d: %v", sr.Index, sr.Err)
		}
		if _, dup := got[sr.Index]; dup {
			t.Fatalf("item %d delivered twice", sr.Index)
		}
		got[sr.Index] = sr.Res
	}
	if len(got) != len(items) {
		t.Fatalf("delivered %d results, want %d", len(got), len(items))
	}
	for i, it := range items {
		want, err := r.Run(context.Background(), it.Spec, it.Program, it.Class, it.Cores)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].TotalCycles != want.TotalCycles {
			t.Errorf("item %d: streamed %d cycles, sequential %d", i, got[i].TotalCycles, want.TotalCycles)
		}
	}
}

// TestRunStreamCanceled checks a canceled context still delivers one
// terminal result per item (carrying the cancellation) and closes the
// channel — a curve request that vanishes must not leak goroutines or
// strand the drain loop.
func TestRunStreamCanceled(t *testing.T) {
	r := NewRunner(quickTune)
	spec := machine.IntelUMA8()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := []RunItem{
		{Spec: spec, Program: "CG", Class: workload.W, Cores: 1},
		{Spec: spec, Program: "CG", Class: workload.W, Cores: 2},
	}
	n := 0
	for sr := range r.RunStream(ctx, items) {
		n++
		if sr.Err == nil {
			t.Errorf("item %d: nil error under canceled context", sr.Index)
		} else if !errors.Is(sr.Err, sim.ErrCanceled) && !errors.Is(sr.Err, context.Canceled) {
			t.Errorf("item %d: err = %v, want cancellation", sr.Index, sr.Err)
		}
	}
	if n != len(items) {
		t.Errorf("delivered %d results, want %d (one terminal result per item)", n, len(items))
	}
}

// TestRunStreamUnknownWorkload checks per-item errors flow through the
// stream without poisoning the other items.
func TestRunStreamUnknownWorkload(t *testing.T) {
	r := NewRunner(quickTune)
	spec := machine.IntelUMA8()
	items := []RunItem{
		{Spec: spec, Program: "CG", Class: workload.W, Cores: 1},
		{Spec: spec, Program: "NOPE", Class: workload.W, Cores: 1},
	}
	errs := make(map[int]error)
	for sr := range r.RunStream(context.Background(), items) {
		errs[sr.Index] = sr.Err
	}
	if errs[0] != nil {
		t.Errorf("item 0: %v, want success", errs[0])
	}
	if errs[1] == nil {
		t.Error("item 1: nil error for unknown program")
	}
}
