package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestWorkerPanicIsolated injects a panic into exactly one run of a plan
// and verifies the contract: that run fails with *WorkerPanicError (stack
// attached), every other run completes normally, partial results are
// preserved in RunAll's slice, and the runner stays usable afterwards.
func TestWorkerPanicIsolated(t *testing.T) {
	r := NewRunner(quickTune)
	r.Jobs = 4
	var traceBuf bytes.Buffer
	r.Tracer = telemetry.NewTracer(&traceBuf)
	r.Metrics = telemetry.NewRegistry()
	spec := machine.IntelUMA8()
	r.FaultFn = func(point FaultPoint, key RunKey) error {
		if point == FaultBeforeSim && key.Cores == 3 {
			panic("injected: worker blew up")
		}
		return nil
	}

	plan := []RunItem{
		{Spec: spec, Program: "CG", Class: workload.W, Cores: 1},
		{Spec: spec, Program: "CG", Class: workload.W, Cores: 2},
		{Spec: spec, Program: "CG", Class: workload.W, Cores: 3}, // panics
		{Spec: spec, Program: "CG", Class: workload.W, Cores: 4},
	}
	results, err := r.RunAll(context.Background(), plan)
	if err == nil {
		t.Fatal("RunAll swallowed the injected panic")
	}
	if !errors.Is(err, ErrWorkerPanic) {
		t.Errorf("errors.Is(err, ErrWorkerPanic) = false for %v", err)
	}
	var wp *WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("err is %T, want *WorkerPanicError", err)
	}
	if wp.Key.Cores != 3 {
		t.Errorf("panic attributed to cores=%d, want 3", wp.Key.Cores)
	}
	if !strings.Contains(string(wp.Stack), "invoke") {
		t.Errorf("panic stack does not reach the worker frame:\n%s", wp.Stack)
	}
	// Partial results: every non-panicking slot completed.
	if len(results) != len(plan) {
		t.Fatalf("results len = %d, want %d", len(results), len(plan))
	}
	for i, res := range results {
		if i == 2 {
			if res.TotalCycles != 0 {
				t.Errorf("panicked slot has a result: %+v", res)
			}
			continue
		}
		if res.TotalCycles == 0 {
			t.Errorf("slot %d (cores=%d) did not complete", i, plan[i].Cores)
		}
	}
	// The panic is observable: tracer event and metric.
	if !strings.Contains(traceBuf.String(), "runner.panic") {
		t.Error("no runner.panic trace event emitted")
	}
	if got := r.Metrics.Counter("runner_panic_total").Value(); got != 1 {
		t.Errorf("runner_panic_total = %d, want 1", got)
	}

	// The runner survives: clearing the fault and retrying the failed key
	// succeeds (the error was never cached).
	r.FaultFn = nil
	if _, err := r.Run(context.Background(), spec, "CG", workload.W, 3); err != nil {
		t.Fatalf("runner unusable after panic: %v", err)
	}
}

// TestMidSweepCancelThenResume is the kill-and-resume contract end to
// end: a sweep canceled mid-flight journals its completed runs; a fresh
// runner attached to the same journal replays them (annotated [resumed],
// counted in runner_resumed_total), re-simulates only the remainder, and
// produces measurements identical to an uninterrupted sweep's.
func TestMidSweepCancelThenResume(t *testing.T) {
	spec := machine.IntelUMA8()
	counts := []int{1, 2, 3, 4, 5, 6}
	journalPath := filepath.Join(t.TempDir(), "sweep.journal")

	// Reference: uninterrupted sweep.
	ref := NewRunner(quickTune)
	ref.Jobs = 2
	wantMeas, err := ref.Sweep(context.Background(), spec, "CG", workload.W, counts)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted sweep: cancel after the third completed simulation.
	r1 := NewRunner(quickTune)
	r1.Jobs = 1 // serial, so "cancel after 3" is deterministic
	if _, _, err := r1.AttachJournal(journalPath); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	r1.FaultFn = func(point FaultPoint, key RunKey) error {
		if point == FaultBeforeSim && done.Add(1) > 3 {
			cancel()
		}
		return nil
	}
	_, err = r1.Sweep(ctx, spec, "CG", workload.W, counts)
	if err == nil {
		t.Fatal("canceled sweep returned nil error")
	}
	if !errors.Is(err, context.Canceled) && !errors.Is(err, sim.ErrCanceled) {
		t.Errorf("sweep error %v is neither context.Canceled nor sim.ErrCanceled", err)
	}
	if err := r1.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	entries, skipped, ok := parseJournal(data)
	if !ok || skipped != 0 {
		t.Fatalf("journal unparsable: ok=%v skipped=%d", ok, skipped)
	}
	if len(entries) == 0 || len(entries) >= len(counts) {
		t.Fatalf("journaled %d runs, want a strict subset of %d", len(entries), len(counts))
	}

	// Resume: a new runner (fresh process in real life) replays the
	// journal and finishes the sweep.
	r2 := NewRunner(quickTune)
	r2.Jobs = 2
	var progress bytes.Buffer
	r2.Progress = &progress
	r2.Metrics = telemetry.NewRegistry()
	resumed, skipped, err := r2.AttachJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != len(entries) || skipped != 0 {
		t.Fatalf("AttachJournal resumed=%d skipped=%d, want %d/0", resumed, skipped, len(entries))
	}
	gotMeas, err := r2.Sweep(context.Background(), spec, "CG", workload.W, counts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotMeas, wantMeas) {
		t.Errorf("resumed sweep diverged:\n got %+v\nwant %+v", gotMeas, wantMeas)
	}
	if got := r2.Metrics.Counter("runner_resumed_total").Value(); got != uint64(resumed) {
		t.Errorf("runner_resumed_total = %d, want %d", got, resumed)
	}
	if !strings.Contains(progress.String(), "[resumed]") {
		t.Errorf("no [resumed] annotation in progress output:\n%s", progress.String())
	}
	// Only the remainder was re-simulated.
	completed, _ := r2.Completed()
	if completed != len(counts)-resumed {
		t.Errorf("resumed sweep simulated %d runs, want %d", completed, len(counts)-resumed)
	}
	if err := r2.CloseJournal(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalCorruptLineSkipped verifies torn-write recovery: a journal
// with one corrupt line and one truncated line loads the intact entries,
// reports the damaged ones as skipped with a warning, and the affected
// runs re-simulate to the same results.
func TestJournalCorruptLineSkipped(t *testing.T) {
	spec := machine.IntelUMA8()
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "sweep.journal")

	// Build a complete journal of three runs.
	r1 := NewRunner(quickTune)
	if _, _, err := r1.AttachJournal(journalPath); err != nil {
		t.Fatal(err)
	}
	want, err := r1.Sweep(context.Background(), spec, "CG", workload.W, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	// Damage it: corrupt the middle entry, truncate the final one
	// mid-line (what a kill during the last append leaves behind).
	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	if len(lines) != 4 { // header + 3 entries
		t.Fatalf("journal has %d lines, want 4", len(lines))
	}
	lines[2] = []byte(`{"key":BROKEN`)
	lines[3] = lines[3][:len(lines[3])/2]
	if err := os.WriteFile(journalPath, append(bytes.Join(lines, []byte("\n")), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := NewRunner(quickTune)
	var progress bytes.Buffer
	r2.Progress = &progress
	resumed, skipped, err := r2.AttachJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 || skipped != 2 {
		t.Fatalf("resumed=%d skipped=%d, want 1/2", resumed, skipped)
	}
	if !strings.Contains(progress.String(), "WARN journal") {
		t.Errorf("no warning for skipped lines:\n%s", progress.String())
	}
	got, err := r2.Sweep(context.Background(), spec, "CG", workload.W, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-repair sweep diverged:\n got %+v\nwant %+v", got, want)
	}
	completed, _ := r2.Completed()
	if completed != 2 {
		t.Errorf("re-simulated %d runs, want 2 (the damaged entries)", completed)
	}
	if err := r2.CloseJournal(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalWriteFailureNonFatal injects journal append failures and
// verifies the sweep still succeeds — persistence is best-effort — while
// the failures are counted and warned about.
func TestJournalWriteFailureNonFatal(t *testing.T) {
	spec := machine.IntelUMA8()
	r := NewRunner(quickTune)
	var progress bytes.Buffer
	r.Progress = &progress
	r.Metrics = telemetry.NewRegistry()
	if _, _, err := r.AttachJournal(filepath.Join(t.TempDir(), "sweep.journal")); err != nil {
		t.Fatal(err)
	}
	r.FaultFn = func(point FaultPoint, key RunKey) error {
		if point == FaultJournalWrite {
			return fmt.Errorf("injected: disk full")
		}
		return nil
	}
	if _, err := r.Sweep(context.Background(), spec, "CG", workload.W, []int{1, 2}); err != nil {
		t.Fatalf("journal failure killed the sweep: %v", err)
	}
	if got := r.Metrics.Counter("runner_journal_errors_total").Value(); got != 2 {
		t.Errorf("runner_journal_errors_total = %d, want 2", got)
	}
	if !strings.Contains(progress.String(), "WARN journal write failed") {
		t.Errorf("no journal-failure warning:\n%s", progress.String())
	}
	if err := r.CloseJournal(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalStaleVersionRestarted verifies that a journal written by a
// different cache version is discarded, not resumed.
func TestJournalStaleVersionRestarted(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "sweep.journal")
	stale := fmt.Sprintf("{\"version\":%d}\n{\"key\":{\"machine\":\"bogus\",\"program\":\"CG\",\"class\":\"W\",\"cores\":1,\"scale\":0.05},\"result\":{}}\n",
		cacheVersion+1)
	if err := os.WriteFile(journalPath, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(quickTune)
	resumed, skipped, err := r.AttachJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 || skipped != 0 {
		t.Errorf("stale journal resumed=%d skipped=%d, want 0/0", resumed, skipped)
	}
	if err := r.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	// The file was restarted with the current version header.
	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("{\"version\":%d}\n", cacheVersion); string(data) != want {
		t.Errorf("restarted journal = %q, want %q", data, want)
	}
}

// TestRunCanceledInQueue verifies the queue-wait cancellation point: with
// a saturated worker pool, a canceled caller returns promptly with the
// context error and runner_canceled_total is incremented.
func TestRunCanceledInQueue(t *testing.T) {
	r := NewRunner(quickTune)
	r.Jobs = 1
	r.Metrics = telemetry.NewRegistry()
	block := make(chan struct{})
	release := make(chan struct{})
	r.simulate = func(context.Context, machine.Spec, string, workload.Class, int) (sim.Result, error) {
		close(block)
		<-release
		return sim.Result{TotalCycles: 1}, nil
	}
	spec := machine.IntelUMA8()
	go r.Run(context.Background(), spec, "CG", workload.W, 1)
	<-block // the only worker slot is now held

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.Run(ctx, spec, "CG", workload.W, 2)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("queued run returned %v, want context.Canceled", err)
	}
	if got := r.Metrics.Counter("runner_canceled_total").Value(); got != 1 {
		t.Errorf("runner_canceled_total = %d, want 1", got)
	}
	close(release)
}
