package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/sim"
)

// Sweep checkpoint/resume: the journal is an append-only NDJSON file of
// completed run results, written as the sweep progresses so a killed
// sweep loses at most the runs still in flight. Restarting with the same
// journal path replays every journaled result into the cache before any
// simulation starts; the sweep then re-simulates only the remainder and
// produces byte-identical artifacts to an uninterrupted run, because
// sim.Result round-trips exactly through JSON and results are
// deterministic per cache version.
//
// Format (one JSON value per line):
//
//	{"version":3}                 — header; the version is cacheVersion,
//	                                shared with the persistent cache so
//	                                both invalidate together
//	{"key":{...},"result":{...}}  — one completed run (cacheEntry shape)
//
// Each entry is appended with a single O_APPEND write of the whole line,
// so concurrent workers never interleave bytes and a kill can only ever
// truncate the final line. A truncated or corrupt line fails JSON
// parsing on load and is skipped with a warning — that run is simply
// re-simulated. A version-mismatched journal is discarded and restarted
// rather than resumed, so stale results can never leak into artifacts.

// journal is the open journal file. Appends are serialized by mu and
// flushed with a single Write, making each line atomic with respect to
// kills.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// AttachJournal opens (creating if absent) the resume journal at path,
// replays its entries into the run cache, and arms journaling so every
// subsequent fresh simulation appends its result. It returns the number
// of entries resumed and the number of corrupt or truncated lines
// skipped (each skipped line is also reported as a warning on Progress
// and as a journal.skip trace event). Runs served from replayed entries
// are annotated [resumed] instead of [cache].
//
// A journal whose version does not match the current cacheVersion is
// truncated and restarted — resuming across simulator versions would
// poison artifacts with stale results.
func (r *Runner) AttachJournal(path string) (resumed, skipped int, err error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return 0, 0, err
	}
	fresh := os.IsNotExist(err) || len(data) == 0

	entries, skipped, versionOK := parseJournal(data)
	if !fresh && !versionOK {
		r.Progressf("WARN journal %s has a stale version; restarting it\n", path)
		fresh, entries, skipped = true, nil, 0
	}

	flags := os.O_WRONLY | os.O_CREATE | os.O_APPEND
	if fresh {
		flags = os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return 0, 0, err
	}
	if fresh {
		header, _ := json.Marshal(struct {
			Version int `json:"version"`
		}{cacheVersion})
		if _, err := f.Write(append(header, '\n')); err != nil {
			f.Close()
			return 0, 0, fmt.Errorf("experiments: journal header: %w", err)
		}
	}

	r.mu.Lock()
	if r.resumed == nil {
		r.resumed = make(map[RunKey]bool)
	}
	for _, e := range entries {
		r.cache[e.Key] = e.Result
		r.resumed[e.Key] = true
	}
	if r.journal != nil {
		r.journal.f.Close()
	}
	r.journal = &journal{f: f, path: path}
	r.mu.Unlock()

	if skipped > 0 {
		r.Progressf("WARN journal %s: skipped %d corrupt/truncated line(s); those runs will be re-simulated\n",
			path, skipped)
	}
	if r.Metrics != nil && skipped > 0 {
		r.Metrics.Counter("runner_journal_skipped_total").Add(uint64(skipped))
	}
	if r.Tracer.Enabled() {
		r.Tracer.Emit("runner.resume", "journal", path, "resumed", len(entries), "skipped", skipped)
	}
	return len(entries), skipped, nil
}

// parseJournal decodes journal bytes into entries, counting undecodable
// lines (corruption, or the torn final line of a killed run). versionOK
// reports whether the header line matched cacheVersion.
func parseJournal(data []byte) (entries []cacheEntry, skipped int, versionOK bool) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	first := true
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var hdr struct {
				Version int `json:"version"`
			}
			if json.Unmarshal(line, &hdr) != nil || hdr.Version != cacheVersion {
				return nil, 0, false
			}
			versionOK = true
			continue
		}
		var e cacheEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Key.Machine == "" {
			skipped++
			continue
		}
		entries = append(entries, e)
	}
	return entries, skipped, versionOK
}

// appendJournal persists one completed run if a journal is attached.
// Failures are non-fatal by design — a full disk must not kill a sweep
// that can still finish in memory — and are surfaced as a Progress
// warning plus runner_journal_errors_total.
func (r *Runner) appendJournal(key RunKey, res sim.Result) {
	r.mu.Lock()
	j := r.journal
	r.mu.Unlock()
	if j == nil {
		return
	}
	err := func() error {
		if f := r.FaultFn; f != nil {
			if ferr := f(FaultJournalWrite, key); ferr != nil {
				return ferr
			}
		}
		line, err := json.Marshal(cacheEntry{Key: key, Result: res})
		if err != nil {
			return err
		}
		j.mu.Lock()
		defer j.mu.Unlock()
		_, err = j.f.Write(append(line, '\n'))
		return err
	}()
	if err != nil {
		if r.Metrics != nil {
			r.Metrics.Counter("runner_journal_errors_total").Inc()
		}
		if r.Tracer.Enabled() {
			r.Tracer.Emit("runner.journal_error",
				"machine", key.Machine, "program", key.Program,
				"cores", key.Cores, "error", err.Error())
		}
		r.Progressf("WARN journal write failed for %s %s.%s n=%d: %v\n",
			key.Machine, key.Program, key.Class, key.Cores, err)
	}
}

// CloseJournal flushes and detaches the resume journal, if any. Safe to
// call when none is attached.
func (r *Runner) CloseJournal() error {
	r.mu.Lock()
	j := r.journal
	r.journal = nil
	r.mu.Unlock()
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
