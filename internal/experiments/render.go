package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/machine"
	"repro/internal/workload"
)

// RenderTableII prints the table in the paper's layout: programs by rows
// (grouped by size), machines by column pairs (half cores, all cores).
func RenderTableII(w io.Writer, d TableIIData, specs []machine.Spec) {
	fmt.Fprintln(w, "Table II: Normalized increase in number of cycles, (C(n)-C(1))/C(1)")
	header := fmt.Sprintf("%-8s %-4s", "Program", "Size")
	for _, spec := range specs {
		header += fmt.Sprintf(" | %-9s n=%-3d n=%-3d", trimName(spec.Name), spec.TotalCores()/2, spec.TotalCores())
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, size := range []workload.Class{workload.W, workload.C} {
		for _, prog := range tableIIPrograms {
			line := fmt.Sprintf("%-8s %-4s", prog, size)
			for _, spec := range specs {
				half, all := spec.TotalCores()/2, spec.TotalCores()
				ch, _ := d.Cell(spec.Name, prog, size, half)
				ca, _ := d.Cell(spec.Name, prog, size, all)
				line += fmt.Sprintf(" | %-9s %6.2f %6.2f", "", ch.Omega, ca.Omega)
			}
			fmt.Fprintln(w, line)
		}
	}
}

func trimName(name string) string {
	if len(name) > 9 {
		return name[:9]
	}
	return name
}

// RenderFig3 prints the four series of Fig. 3 as a table over core counts.
func RenderFig3(w io.Writer, d Fig3Data) {
	fmt.Fprintf(w, "Fig. 3 (%s): CG.C — varying the number of cores\n", d.Machine)
	fmt.Fprintf(w, "%6s %16s %16s %16s %14s\n", "cores", "total cycles", "stall cycles", "work cycles", "LLC misses")
	for i, n := range d.Cores {
		fmt.Fprintf(w, "%6d %16.0f %16.0f %16.0f %14.0f\n",
			n, d.Total[i], d.Stall[i], d.Work[i], d.Misses[i])
	}
}

// RenderTableIII prints the problem-size inventory.
func RenderTableIII(w io.Writer, rows []ProblemSize) {
	fmt.Fprintln(w, "Table III: Problem size description for CG and x264 (simulated scale)")
	fmt.Fprintf(w, "%-10s %-10s %14s\n", "Program", "Class", "Footprint")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-10s %14s\n", r.Program, r.Class, fmtBytes(r.Footprint))
	}
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// RenderFig4 prints the burstiness profiles: per series, the CCDF summary,
// tail fit and classification.
func RenderFig4(w io.Writer, series []Fig4Series) {
	fmt.Fprintln(w, "Fig. 4: Burstiness of off-chip memory traffic (5us windows, all cores)")
	fmt.Fprintf(w, "%-8s %-10s %9s %10s %10s %8s %8s %8s  %s\n",
		"Program", "Class", "bursts", "lines", "maxBurst", "busy%", "tailA", "tailR2", "verdict")
	for _, s := range series {
		a := s.Analysis
		fmt.Fprintf(w, "%-8s %-10s %9d %10d %10d %8.1f %8.2f %8.2f  %s\n",
			s.Program, s.Class, a.Bursts, a.TotalLines, a.MaxLines,
			100*a.NonEmptyFraction, a.Tail.Alpha, a.Tail.R2, s.Verdict)
	}
}

// RenderFig4CCDF prints the raw CCDF points of one series (the paper's
// log-log plot data).
func RenderFig4CCDF(w io.Writer, s Fig4Series, maxPoints int) {
	fmt.Fprintf(w, "CCDF for %s.%s: P(burst lines > x)\n", s.Program, s.Class)
	pts := s.Analysis.CCDF
	step := 1
	if maxPoints > 0 && len(pts) > maxPoints {
		step = len(pts) / maxPoints
	}
	for i := 0; i < len(pts); i += step {
		fmt.Fprintf(w, "%12.0f %12.6g\n", pts[i].X, pts[i].P)
	}
}

// RenderModelFig prints the measured-vs-modeled ω(n) comparison (Fig. 5 and
// Fig. 6).
func RenderModelFig(w io.Writer, f ModelFig, figName string) {
	fmt.Fprintf(w, "%s (%s): %s.%s — measured vs modeled degree of contention\n",
		figName, f.Machine, f.Program, f.Class)
	fmt.Fprintf(w, "model inputs: C(n) at n=%v; mean rel err %.1f%% (max %.1f%%)\n",
		f.InputPlan, 100*f.Validation.MeanRelErr, 100*f.Validation.MaxRelErr)
	fmt.Fprintf(w, "%6s %12s %12s\n", "cores", "measured ω", "model ω")
	for i, n := range f.Validation.Cores {
		fmt.Fprintf(w, "%6d %12.3f %12.3f\n", n, f.Validation.Measured[i], f.Validation.Modeled[i])
	}
}

// RenderTableIV prints the goodness-of-fit table.
func RenderTableIV(w io.Writer, cells []TableIVCell, specs []machine.Spec) {
	fmt.Fprintln(w, "Table IV: Colinearity goodness-of-fit R² for 1/C(n)")
	header := fmt.Sprintf("%-12s", "System")
	for _, subj := range tableIVSubjects {
		header += fmt.Sprintf(" %10s", fmt.Sprintf("%s.%s", subj.Program, subj.Class))
	}
	fmt.Fprintln(w, header)
	for _, spec := range specs {
		line := fmt.Sprintf("%-12s", spec.Name)
		for _, subj := range tableIVSubjects {
			val := "-"
			for _, c := range cells {
				if c.Machine == spec.Name && c.Program == subj.Program && c.Class == subj.Class {
					val = fmt.Sprintf("%.2f", c.R2)
					break
				}
			}
			line += fmt.Sprintf(" %10s", val)
		}
		fmt.Fprintln(w, line)
	}
}

// RenderAblationInputs prints the homogeneous-vs-heterogeneous comparison.
func RenderAblationInputs(w io.Writer, a AblationInputsResult) {
	fmt.Fprintf(w, "Ablation (inputs, %s): heterogeneous ρ fit MRE %.1f%% vs homogeneous %.1f%%\n",
		a.Machine, 100*a.HeterogeneousMRE, 100*a.HomogeneousMRE)
	fmt.Fprintf(w, "  heterogeneous ρ per socket: %v\n", a.HeterogeneousRhos)
	fmt.Fprintf(w, "  homogeneous ρ:              %v\n", a.HomogeneousRhos)
}

// RenderAblationController prints the service-discipline comparison.
func RenderAblationController(w io.Writer, a AblationControllerResult) {
	fmt.Fprintf(w, "Ablation (MC discipline, %s, n=%d): ω FCFS %.2f vs FR-FCFS %.2f\n",
		a.Machine, a.CoresUsed, a.OmegaFCFS, a.OmegaFR)
	fmt.Fprintf(w, "  avg MC wait: FCFS %.1f cyc (row hit %.0f%%) vs FR-FCFS %.1f cyc (row hit %.0f%%)\n",
		a.AvgWaitFC, 100*a.RowHitFC, a.AvgWaitFR, 100*a.RowHitFR)
}

// RenderAblationClosed prints the open-vs-closed model comparison.
func RenderAblationClosed(w io.Writer, a AblationClosedResult) {
	fmt.Fprintf(w, "Ablation (queueing model, %s): open M/M/1 MRE %.1f%% vs closed/linear %.1f%%\n",
		a.Machine, 100*a.OpenMRE, 100*a.ClosedMRE)
}
