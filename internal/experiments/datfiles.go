package experiments

import (
	"fmt"
	"os"
	"path/filepath"
)

// Dat-file writers: gnuplot-ready whitespace-separated series for each
// figure, so the paper's plots can be regenerated graphically:
//
//	plot "fig5_IntelNUMA24.dat" u 1:2 w lp t "measured", "" u 1:3 w lp t "model"

// WriteFig3Dat writes the four Fig. 3 series (cores, total, stall, work,
// misses).
func WriteFig3Dat(dir string, d Fig3Data) error {
	path := filepath.Join(dir, "fig3_"+d.Machine+".dat")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "# cores totalCycles stallCycles workCycles llcMisses")
	for i, n := range d.Cores {
		fmt.Fprintf(f, "%d %.0f %.0f %.0f %.0f\n", n, d.Total[i], d.Stall[i], d.Work[i], d.Misses[i])
	}
	return nil
}

// WriteModelFigDat writes a Fig. 5/6 comparison (cores, measured ω, model ω).
func WriteModelFigDat(dir, figName string, fig ModelFig) error {
	path := filepath.Join(dir, fmt.Sprintf("%s_%s.dat", figName, fig.Machine))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# %s.%s on %s; inputs %v; MRE %.3f\n",
		fig.Program, fig.Class, fig.Machine, fig.InputPlan, fig.Validation.MeanRelErr)
	fmt.Fprintln(f, "# cores measuredOmega modelOmega")
	for i, n := range fig.Validation.Cores {
		fmt.Fprintf(f, "%d %.4f %.4f\n", n, fig.Validation.Measured[i], fig.Validation.Modeled[i])
	}
	return nil
}

// WriteFig4Dat writes one CCDF per series (x = burst lines, y = P(>x)),
// matching the paper's log-log plot.
func WriteFig4Dat(dir string, series []Fig4Series) error {
	for _, s := range series {
		path := filepath.Join(dir, fmt.Sprintf("fig4_%s_%s.dat", s.Program, s.Class))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "# %s.%s: %s (busy %.1f%%)\n",
			s.Program, s.Class, s.Verdict, 100*s.Analysis.NonEmptyFraction)
		fmt.Fprintln(f, "# burstLines P(>x)")
		for _, pt := range s.Analysis.CCDF {
			if pt.P > 0 {
				fmt.Fprintf(f, "%.0f %.8g\n", pt.X, pt.P)
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
