package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestRunOutcomeAnnotations checks that Progress lines carry the
// sim|dedup|cache outcome, that each served run emits a runner.span trace
// event with the same outcome, and that the Metrics registry counts them.
func TestRunOutcomeAnnotations(t *testing.T) {
	r := NewRunner(quickTune)
	r.Jobs = 2
	countingSim(r, 20*time.Millisecond)
	var buf, traceBuf bytes.Buffer
	r.Progress = &buf
	r.Tracer = telemetry.NewTracer(&traceBuf)
	r.Metrics = telemetry.NewRegistry()
	spec := machine.IntelUMA8()

	// First call executes; a concurrent duplicate keyed the same coalesces
	// onto it (dedup); a call after completion is a cache hit.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := r.Run(context.Background(), spec, "CG", workload.W, 2); err != nil {
			t.Error(err)
		}
	}()
	waitFor(t, func() bool {
		_, submitted := r.Completed()
		return submitted == 1
	})
	if _, err := r.Run(context.Background(), spec, "CG", workload.W, 2); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := r.Run(context.Background(), spec, "CG", workload.W, 2); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	for _, want := range []string{"[sim]", "[dedup]", "[cache]"} {
		if strings.Count(out, want) != 1 {
			t.Errorf("progress output has %d %q lines, want 1:\n%s",
				strings.Count(out, want), want, out)
		}
	}

	byOutcome := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(traceBuf.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if ev["event"] != "runner.span" || ev["machine"] != "IntelUMA8" {
			t.Errorf("unexpected trace event: %v", ev)
		}
		byOutcome[ev["outcome"].(string)]++
		if ev["outcome"] == "sim" && ev["execute_ms"].(float64) <= 0 {
			t.Errorf("sim span has no execute time: %v", ev)
		}
	}
	if byOutcome["sim"] != 1 || byOutcome["dedup"] != 1 || byOutcome["cache"] != 1 {
		t.Errorf("span outcomes = %v, want one of each", byOutcome)
	}

	snap := r.Metrics.Snapshot()
	for _, name := range []string{"runner_sim_total", "runner_dedup_total", "runner_cache_total"} {
		if snap[name] != 1 {
			t.Errorf("%s = %v, want 1", name, snap[name])
		}
	}
	if snap["runner_execute_ms_count"] != 1 {
		t.Errorf("runner_execute_ms_count = %v, want 1", snap["runner_execute_ms_count"])
	}
}

// TestTelemetryDeterministicAcrossJobs pins the observability half of the
// runner's determinism contract: observed runs launched concurrently
// produce byte-identical sampled time series whether one or eight
// simulations execute at once.
func TestTelemetryDeterministicAcrossJobs(t *testing.T) {
	spec := machine.IntelUMA8()
	timelines := func(jobs int) string {
		r := NewRunner(workload.Tuning{RefScale: 0.02})
		r.Jobs = jobs
		bufs := make([]bytes.Buffer, 4)
		var wg sync.WaitGroup
		for i := range bufs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cfg := sim.Config{Spec: spec, Cores: 2 * (i + 1),
					Observe: &sim.ObserveConfig{Interval: 2000}}
				res, err := r.RunConfig(context.Background(), cfg, "CG", workload.W)
				if err != nil {
					t.Error(err)
					return
				}
				if err := telemetry.WriteTimelineDat(&bufs[i], res.Telemetry.Series()...); err != nil {
					t.Error(err)
				}
			}(i)
		}
		wg.Wait()
		var all strings.Builder
		for i := range bufs {
			all.Write(bufs[i].Bytes())
		}
		return all.String()
	}
	serial := timelines(1)
	parallel := timelines(8)
	if serial == "" || serial != parallel {
		t.Errorf("sampled time series differ between -jobs 1 and -jobs 8:\nserial %d bytes, parallel %d bytes",
			len(serial), len(parallel))
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRunnerRequestScopedSpans checks that when the caller's context
// carries a telemetry.SpanContext (the serving path), one run emits
// runner.queue_wait and runner.execute span.end records parented under
// the request span, and that a context without one emits no span records.
func TestRunnerRequestScopedSpans(t *testing.T) {
	r := NewRunner(quickTune)
	r.Jobs = 1
	countingSim(r, time.Millisecond)
	var traceBuf bytes.Buffer
	r.Tracer = telemetry.NewTracer(&traceBuf)
	spec := machine.IntelUMA8()

	parent := telemetry.DeriveSpanContext(99, 1)
	ctx := telemetry.ContextWithSpan(context.Background(), parent)
	if _, err := r.Run(ctx, spec, "CG", workload.W, 2); err != nil {
		t.Fatal(err)
	}

	spans := map[string]map[string]any{}
	for _, line := range strings.Split(strings.TrimSpace(traceBuf.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if ev["event"] == "span.end" {
			spans[ev["name"].(string)] = ev
		}
	}
	for _, name := range []string{"runner.queue_wait", "runner.execute"} {
		ev, ok := spans[name]
		if !ok {
			t.Fatalf("missing %s span in trace:\n%s", name, traceBuf.String())
		}
		if ev["trace"] != parent.Trace.String() {
			t.Errorf("%s trace = %v, want %s", name, ev["trace"], parent.Trace)
		}
		if ev["parent"] != parent.Span.String() {
			t.Errorf("%s parent = %v, want %s", name, ev["parent"], parent.Span)
		}
	}
	if ev := spans["runner.execute"]; ev["program"] != "CG" || ev["cores"] != float64(2) {
		t.Errorf("runner.execute attrs = %v", ev)
	}

	// Without a span in the context (batch sweeps), no span records.
	traceBuf.Reset()
	if _, err := r.Run(context.Background(), spec, "CG", workload.W, 3); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(traceBuf.String(), "span.end") {
		t.Errorf("span records emitted without a request span:\n%s", traceBuf.String())
	}
}
