// Package experiments regenerates the paper's evaluation artifacts — Table
// II, Fig. 3, Table III, Fig. 4, Fig. 5, Fig. 6 and Table IV — by running
// the workloads (internal/workload) on the simulated machines
// (internal/machine + internal/sim), fitting the analytical model
// (internal/core) from the paper's measurement plans, and rendering the
// same rows and series the paper reports.
//
// # Runner concurrency contract
//
// Runner is the package's execution engine, and it is safe for concurrent
// use by any number of goroutines. Its guarantees:
//
//   - Thread safety: every exported method may be called concurrently.
//     The result cache, the in-flight run table and the progress counters
//     are guarded independently, so cache hits never wait behind running
//     simulations.
//
//   - Deduplication (singleflight): a run is identified by its key
//     (machine, program, class, cores, scale). Concurrent requests for the
//     same not-yet-cached key block on one underlying simulation; exactly
//     one sim.Run executes per key for the lifetime of the Runner, no
//     matter how many goroutines race on it. This also closes the classic
//     check-unlock-simulate-relock window in which two goroutines that
//     both miss the cache would each simulate.
//
//   - Bounded parallelism: at most Jobs simulations (default
//     runtime.GOMAXPROCS(0)) execute at any moment. Excess submissions
//     queue on a semaphore; waiters on an in-flight duplicate do not hold
//     worker slots, so dedup never deadlocks the pool.
//
//   - Determinism: sim.Run is a pure function of its configuration, so a
//     Runner returns bit-identical sim.Result values regardless of Jobs,
//     submission order, or interleaving. Batch APIs (RunAll, Sweep,
//     SweepAsync) return results in plan order, and on error report the
//     first failure in plan order — never a races-dependent one.
//
//   - Progress: the Progress writer receives one line per executed
//     simulation with a completed/submitted counter and per-run timing.
//     Writes are serialized by the Runner, so an os.File or bytes.Buffer
//     is fine as-is.
//
// # Cancellation, resume and fault isolation
//
// Every batch API is context-first. Cancelling the context aborts a call
// at whichever of its three blocking points it has reached — waiting for
// a worker slot, waiting on a coalesced in-flight run, or inside the
// simulator's event loop (which polls ctx.Done() every
// sim.DefaultCancelEvery events, so cancellation latency is bounded).
// Runs that completed before the cancellation stay cached and journaled;
// RunAll always returns its results slice so callers keep the partial
// results.
//
//   - Resume journal: AttachJournal arms an append-only NDJSON journal
//     (see journal.go for the format) that records every fresh simulation
//     as it completes. Re-attaching the same journal replays completed
//     runs into the cache — annotated [resumed] — so a killed sweep
//     restarted with the same plan re-simulates only the remainder and
//     produces byte-identical artifacts (results are deterministic and
//     round-trip exactly through JSON). Corrupt or truncated lines (a
//     kill can tear at most the final line) are skipped with a warning
//     and re-simulated.
//
//   - Panic isolation: a panic in a simulation worker — or in the
//     FaultFn test hook — is recovered into a *WorkerPanicError carrying
//     the stack and confined to its own run; other workers, the cache and
//     the pool are unaffected, and the failed key can be retried.
//
//   - Fault injection: Runner.FaultFn, when set, is consulted at
//     FaultBeforeSim and FaultJournalWrite with the run key, letting
//     tests deterministically inject panics, cancellations and journal
//     write failures. Production code leaves it nil.
//
// Each table/figure driver builds its whole measurement plan up front and
// submits it through RunAll/SweepAsync, so independent runs overlap up to
// the Jobs bound while shared runs (e.g. the CG.C sweep feeding Fig. 3,
// Fig. 5 and Table IV) execute once. Sampled or variant-machine runs that
// cannot be cached (Fig. 4's miss hook, the sensitivity study's mutated
// specs) go through RunConfig, which bypasses the cache but still respects
// the worker-pool bound.
package experiments
