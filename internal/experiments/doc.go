// Package experiments regenerates the paper's evaluation artifacts — Table
// II, Fig. 3, Table III, Fig. 4, Fig. 5, Fig. 6 and Table IV — by running
// the workloads (internal/workload) on the simulated machines
// (internal/machine + internal/sim), fitting the analytical model
// (internal/core) from the paper's measurement plans, and rendering the
// same rows and series the paper reports.
//
// # Runner concurrency contract
//
// Runner is the package's execution engine, and it is safe for concurrent
// use by any number of goroutines. Its guarantees:
//
//   - Thread safety: every exported method may be called concurrently.
//     The result cache, the in-flight run table and the progress counters
//     are guarded independently, so cache hits never wait behind running
//     simulations.
//
//   - Deduplication (singleflight): a run is identified by its key
//     (machine, program, class, cores, scale). Concurrent requests for the
//     same not-yet-cached key block on one underlying simulation; exactly
//     one sim.Run executes per key for the lifetime of the Runner, no
//     matter how many goroutines race on it. This also closes the classic
//     check-unlock-simulate-relock window in which two goroutines that
//     both miss the cache would each simulate.
//
//   - Bounded parallelism: at most Jobs simulations (default
//     runtime.GOMAXPROCS(0)) execute at any moment. Excess submissions
//     queue on a semaphore; waiters on an in-flight duplicate do not hold
//     worker slots, so dedup never deadlocks the pool.
//
//   - Determinism: sim.Run is a pure function of its configuration, so a
//     Runner returns bit-identical sim.Result values regardless of Jobs,
//     submission order, or interleaving. Batch APIs (RunAll, Sweep,
//     SweepAsync) return results in plan order, and on error report the
//     first failure in plan order — never a races-dependent one.
//
//   - Progress: the Progress writer receives one line per executed
//     simulation with a completed/submitted counter and per-run timing.
//     Writes are serialized by the Runner, so an os.File or bytes.Buffer
//     is fine as-is.
//
// Each table/figure driver builds its whole measurement plan up front and
// submits it through RunAll/SweepAsync, so independent runs overlap up to
// the Jobs bound while shared runs (e.g. the CG.C sweep feeding Fig. 3,
// Fig. 5 and Table IV) execute once. Sampled or variant-machine runs that
// cannot be cached (Fig. 4's miss hook, the sensitivity study's mutated
// specs) go through RunConfig, which bypasses the cache but still respects
// the worker-pool bound.
package experiments
