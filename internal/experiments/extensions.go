package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Oversubscription study: the paper attributes part of its measurement
// variability to oversubscription effects (ratio of threads to cores,
// section V, citing Iancu et al.). This experiment pins the core count and
// varies the thread count instead.
// ---------------------------------------------------------------------------

// OversubPoint is one measurement of the oversubscription study.
type OversubPoint struct {
	Threads     int
	Factor      float64 // threads / cores
	TotalCycles uint64
	SyncStall   uint64
	Makespan    uint64
}

// Oversubscription runs program.class on all cores of the machine with
// thread counts of 1x, 2x and 4x the cores. The three factors execute
// concurrently (thread count is not part of the run cache key, so these
// go through the uncached RunConfig path).
func (r *Runner) Oversubscription(ctx context.Context, spec machine.Spec, program string, class workload.Class) ([]OversubPoint, error) {
	cores := spec.TotalCores()
	factors := []int{1, 2, 4}
	points := make([]OversubPoint, len(factors))
	err := parallelEach(len(factors), func(i int) error {
		threads := cores * factors[i]
		res, err := r.RunConfig(ctx, sim.Config{Spec: spec, Threads: threads, Cores: cores}, program, class)
		if err != nil {
			return err
		}
		points[i] = OversubPoint{
			Threads:     threads,
			Factor:      float64(factors[i]),
			TotalCycles: res.TotalCycles,
			SyncStall:   res.SyncStallCycles,
			Makespan:    res.Makespan,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// RenderOversubscription prints the study.
func RenderOversubscription(w io.Writer, spec machine.Spec, program string, class workload.Class, points []OversubPoint) {
	fmt.Fprintf(w, "Oversubscription (%s, %s.%s, %d cores): threads vs cost\n",
		spec.Name, program, class, spec.TotalCores())
	fmt.Fprintf(w, "%8s %8s %16s %16s %14s\n", "threads", "factor", "total cycles", "sync stall", "makespan")
	for _, p := range points {
		fmt.Fprintf(w, "%8d %8.0fx %16d %16d %14d\n",
			p.Threads, p.Factor, p.TotalCycles, p.SyncStall, p.Makespan)
	}
}

// ---------------------------------------------------------------------------
// Sensitivity analysis: how the contention factor responds to the machine
// parameters the white-box model exposes (MSHRs, hop latency, channels) —
// the knobs the paper's conclusions say an extended model should cover.
// ---------------------------------------------------------------------------

// SensitivityPoint is ω at full cores for one machine variant.
type SensitivityPoint struct {
	Label string
	Omega float64
}

// Sensitivity measures program.class contention at full core count across
// parameter variants of the base machine.
func (r *Runner) Sensitivity(ctx context.Context, spec machine.Spec, program string, class workload.Class) ([]SensitivityPoint, error) {
	variants := []struct {
		label  string
		mutate func(*machine.Spec)
	}{
		{"baseline", func(*machine.Spec) {}},
		{"MSHRs/2", func(s *machine.Spec) { s.MSHRs = max(1, s.MSHRs/2) }},
		{"MSHRsx2", func(s *machine.Spec) { s.MSHRs *= 2 }},
		{"channels+1", func(s *machine.Spec) { s.MC.Channels++ }},
		{"hopx2", func(s *machine.Spec) { s.HopLatency *= 2 }},
		{"FCFS", func(s *machine.Spec) { s.MC.Discipline = 0 }},
		{"prefetch", func(s *machine.Spec) {
			// Next-line prefetch at the last level.
			s.Levels[len(s.Levels)-1].NextLinePrefetch = true
		}},
	}
	points := make([]SensitivityPoint, len(variants))
	err := parallelEach(len(variants), func(i int) error {
		s := spec
		// A Spec copy still shares the Levels backing array; clone it so a
		// mutator writing a level (prefetch) can't race the other variants'
		// concurrent reads.
		s.Levels = append([]machine.CacheLevel(nil), spec.Levels...)
		variants[i].mutate(&s)
		omega, err := r.omegaFullMachine(ctx, s, program, class)
		if err != nil {
			return err
		}
		points[i] = SensitivityPoint{Label: variants[i].label, Omega: omega}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// omegaFullMachine measures ω(totalCores) directly (bypassing the cache:
// variant machines share a name with the baseline). The base and full runs
// execute concurrently under the worker-pool bound.
func (r *Runner) omegaFullMachine(ctx context.Context, spec machine.Spec, program string, class workload.Class) (float64, error) {
	threads := spec.TotalCores()
	var base, full sim.Result
	err := parallelEach(2, func(i int) error {
		cores := 1
		if i == 1 {
			cores = threads
		}
		res, err := r.RunConfig(ctx, sim.Config{Spec: spec, Threads: threads, Cores: cores}, program, class)
		if err != nil {
			return err
		}
		if i == 0 {
			base = res
		} else {
			full = res
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return core.Omega(float64(full.TotalCycles), float64(base.TotalCycles)), nil
}

// RenderSensitivity prints the variants.
func RenderSensitivity(w io.Writer, spec machine.Spec, program string, class workload.Class, points []SensitivityPoint) {
	fmt.Fprintf(w, "Sensitivity (%s, %s.%s, n=%d): ω under parameter variants\n",
		spec.Name, program, class, spec.TotalCores())
	for _, p := range points {
		fmt.Fprintf(w, "  %-12s ω = %6.2f\n", p.Label, p.Omega)
	}
}

// ---------------------------------------------------------------------------
// Speedup analysis (the companion work [26]): measured and model-predicted
// speedup curves, optimum core count.
// ---------------------------------------------------------------------------

// SpeedupData compares measured and predicted speedups.
type SpeedupData struct {
	Machine      string
	Program      string
	Class        workload.Class
	Cores        []int
	Measured     []float64
	Predicted    []float64
	OptimalCores int
	OptimalS     float64
}

// SpeedupStudy fits the contention model from the paper's input plan and
// compares predicted speedups n/(1+ω(n)) against the measured sweep.
func (r *Runner) SpeedupStudy(ctx context.Context, spec machine.Spec, program string, class workload.Class, coreCounts []int) (SpeedupData, error) {
	sweepWait := r.SweepAsync(ctx, spec, program, class, coreCounts)
	model, _, err := r.FitFromPlan(ctx, spec, program, class, core.Options{})
	if err != nil {
		return SpeedupData{}, err
	}
	sweep, err := sweepWait()
	if err != nil {
		return SpeedupData{}, err
	}
	d := SpeedupData{Machine: spec.Name, Program: program, Class: class}
	d.Measured = core.SpeedupFromMeasurements(sweep)
	for _, m := range sweep {
		d.Cores = append(d.Cores, m.Cores)
		d.Predicted = append(d.Predicted, model.Speedup(m.Cores))
	}
	d.OptimalCores, d.OptimalS = model.OptimalCores(spec.TotalCores())
	return d, nil
}

// RenderSpeedup prints the comparison.
func RenderSpeedup(w io.Writer, d SpeedupData) {
	fmt.Fprintf(w, "Speedup (%s, %s.%s): measured vs model; model optimum %d cores (S=%.1f)\n",
		d.Machine, d.Program, d.Class, d.OptimalCores, d.OptimalS)
	fmt.Fprintf(w, "%6s %12s %12s\n", "cores", "measured S", "model S")
	for i, n := range d.Cores {
		fmt.Fprintf(w, "%6d %12.2f %12.2f\n", n, d.Measured[i], d.Predicted[i])
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// White-box model validation: the §VI extension predicts contention from
// machine parameters plus a 1-core profile — no regression fitting. Compare
// it against the measured sweep and the fitted model.
// ---------------------------------------------------------------------------

// WhiteBoxData compares white-box predictions against measurement.
type WhiteBoxData struct {
	Machine     string
	Program     string
	Class       workload.Class
	Cores       []int
	Measured    []float64 // measured omega
	WhiteBox    []float64 // white-box omega
	MeanRelErr  float64   // on C(n)
	DepFraction float64
	ProfileWork uint64
	ProfileMiss uint64
}

// WhiteBoxStudy builds the workload profile from the 1-core run and
// validates the parameter-derived model over the sweep.
func (r *Runner) WhiteBoxStudy(ctx context.Context, spec machine.Spec, program string, class workload.Class, coreCounts []int) (WhiteBoxData, error) {
	sweepWait := r.SweepAsync(ctx, spec, program, class, coreCounts)
	base, err := r.Run(ctx, spec, program, class, 1)
	if err != nil {
		return WhiteBoxData{}, err
	}
	dep := depFraction(program, class, r.Tuning)
	profile := core.ProfileFromCounters(base.WorkCycles, base.LLCMisses, dep)
	wb, err := core.NewWhiteBox(spec, profile)
	if err != nil {
		return WhiteBoxData{}, err
	}
	sweep, err := sweepWait()
	if err != nil {
		return WhiteBoxData{}, err
	}
	d := WhiteBoxData{
		Machine: spec.Name, Program: program, Class: class,
		DepFraction: dep, ProfileWork: base.WorkCycles, ProfileMiss: base.LLCMisses,
	}
	var relSum float64
	var c1 float64
	for _, m := range sweep {
		if m.Cores == 1 {
			c1 = m.Cycles
		}
	}
	for _, m := range sweep {
		d.Cores = append(d.Cores, m.Cores)
		d.Measured = append(d.Measured, core.Omega(m.Cycles, c1))
		d.WhiteBox = append(d.WhiteBox, wb.Omega(m.Cores))
		pred := wb.C(m.Cores)
		diff := pred - m.Cycles
		if diff < 0 {
			diff = -diff
		}
		relSum += diff / m.Cycles
	}
	d.MeanRelErr = relSum / float64(len(sweep))
	return d, nil
}

// depFraction measures the dependent-reference fraction of a workload by
// draining one thread's stream.
func depFraction(program string, class workload.Class, tune workload.Tuning) float64 {
	wl, err := workload.NewTuned(program, class, workload.Tuning{RefScale: tune.RefScale * 0.25})
	if err != nil {
		return 0
	}
	s := wl.Streams(1)[0]
	var refs, deps float64
	for {
		ref, ok := s.Next()
		if !ok {
			break
		}
		refs++
		if ref.Dep {
			deps++
		}
	}
	if refs == 0 {
		return 0
	}
	return deps / refs
}

// RenderWhiteBox prints the comparison.
func RenderWhiteBox(w io.Writer, d WhiteBoxData) {
	fmt.Fprintf(w, "White-box model (%s, %s.%s): parameter-derived, no fitting; MRE %.1f%%\n",
		d.Machine, d.Program, d.Class, 100*d.MeanRelErr)
	fmt.Fprintf(w, "profile: W=%d cycles, r=%d misses, dep fraction %.2f\n",
		d.ProfileWork, d.ProfileMiss, d.DepFraction)
	fmt.Fprintf(w, "%6s %12s %12s\n", "cores", "measured ω", "whitebox ω")
	for i, n := range d.Cores {
		fmt.Fprintf(w, "%6d %12.3f %12.3f\n", n, d.Measured[i], d.WhiteBox[i])
	}
}
