package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

// quickTune keeps test runs fast while preserving access patterns.
var quickTune = workload.Tuning{RefScale: 0.05}

func TestRunnerCaching(t *testing.T) {
	r := NewRunner(quickTune)
	spec := machine.IntelUMA8()
	res1, err := r.Run(context.Background(), spec, "CG", workload.W, 2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.Run(context.Background(), spec, "CG", workload.W, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res1.TotalCycles != res2.TotalCycles {
		t.Error("cached run differs")
	}
	if len(r.cache) != 1 {
		t.Errorf("cache entries = %d", len(r.cache))
	}
}

func TestRunnerUnknownWorkload(t *testing.T) {
	r := NewRunner(quickTune)
	if _, err := r.Run(context.Background(), machine.IntelUMA8(), "nope", workload.C, 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestSweepAndMeasure(t *testing.T) {
	r := NewRunner(quickTune)
	spec := machine.IntelUMA8()
	meas, err := r.Sweep(context.Background(), spec, "CG", workload.W, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(meas) != 3 {
		t.Fatalf("measurements = %d", len(meas))
	}
	for i, m := range meas {
		if m.Cycles <= 0 || m.LLCMisses <= 0 {
			t.Errorf("measurement %d = %+v", i, m)
		}
	}
}

func TestSweepCounts(t *testing.T) {
	spec := machine.AMDNUMA48()
	full := FullSweepCounts(spec)
	if len(full) != 48 || full[0] != 1 || full[47] != 48 {
		t.Errorf("full sweep = %v", full)
	}
	coarse := CoarseSweepCounts(spec, 6)
	// Must contain the socket boundaries 12,13,24,25,36,37 and endpoints.
	want := map[int]bool{1: true, 12: true, 13: true, 24: true, 25: true, 36: true, 37: true, 48: true}
	have := map[int]bool{}
	for _, n := range coarse {
		have[n] = true
	}
	for n := range want {
		if !have[n] {
			t.Errorf("coarse sweep missing %d: %v", n, coarse)
		}
	}
	if len(coarse) >= len(full) {
		t.Error("coarse sweep not smaller than full")
	}
	if got := CoarseSweepCounts(spec, 0); len(got) != 48 {
		t.Errorf("step 0 should clamp to 1, got %d points", len(got))
	}
}

func TestModelKindFor(t *testing.T) {
	if ModelKindFor(machine.IntelUMA8()) != core.UMA {
		t.Error("UMA kind wrong")
	}
	if ModelKindFor(machine.IntelNUMA24()) != core.NUMA {
		t.Error("NUMA kind wrong")
	}
}

func TestTableIII(t *testing.T) {
	rows, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	// 5 CG classes + 4 x264 classes.
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	RenderTableIII(&buf, rows)
	if !strings.Contains(buf.String(), "CG") || !strings.Contains(buf.String(), "native") {
		t.Error("render missing entries")
	}
}

func TestFig3SmallMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped in -short mode")
	}
	r := NewRunner(quickTune)
	spec := machine.IntelUMA8()
	d, err := r.Fig3(context.Background(), spec, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Total) != 3 {
		t.Fatalf("series length = %d", len(d.Total))
	}
	// Total = work + stall at every point.
	for i := range d.Total {
		if d.Total[i] != d.Work[i]+d.Stall[i] {
			t.Errorf("point %d: total %v != work %v + stall %v", i, d.Total[i], d.Work[i], d.Stall[i])
		}
	}
	// Paper observation 1: total cycles grow with cores for CG.C.
	if d.Total[2] <= d.Total[0] {
		t.Errorf("no contention growth: %v", d.Total)
	}
	// Paper observation 3: work cycles and misses roughly constant (<25%
	// deviation across the sweep).
	for i := 1; i < 3; i++ {
		if rel := relDiff(d.Work[i], d.Work[0]); rel > 0.25 {
			t.Errorf("work cycles vary too much: %v", d.Work)
		}
		if rel := relDiff(d.Misses[i], d.Misses[0]); rel > 0.25 {
			t.Errorf("misses vary too much: %v", d.Misses)
		}
	}
	var buf bytes.Buffer
	RenderFig3(&buf, d)
	if !strings.Contains(buf.String(), "CG.C") {
		t.Error("render missing title")
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

func TestFig5UMA(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped in -short mode")
	}
	r := NewRunner(quickTune)
	spec := machine.IntelUMA8()
	fig, err := r.Fig5(context.Background(), spec, []int{1, 2, 4, 5, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.InputPlan) != 3 {
		t.Errorf("input plan = %v", fig.InputPlan)
	}
	if len(fig.Validation.Cores) != 5 {
		t.Errorf("validation points = %d", len(fig.Validation.Cores))
	}
	// ω(1) must be ~0 on both sides.
	if fig.Validation.Measured[0] != 0 {
		t.Errorf("measured ω(1) = %v", fig.Validation.Measured[0])
	}
	var buf bytes.Buffer
	RenderModelFig(&buf, fig, "Fig. 5")
	if !strings.Contains(buf.String(), "measured") {
		t.Error("render incomplete")
	}
}

func TestTableIIRender(t *testing.T) {
	// Render path only (tiny data, no simulation).
	d := TableIIData{Cells: []TableIICell{
		{Machine: "IntelUMA8", Program: "EP", Size: workload.W, Cores: 4, Omega: 0.01},
		{Machine: "IntelUMA8", Program: "EP", Size: workload.W, Cores: 8, Omega: 0.02},
	}}
	var buf bytes.Buffer
	RenderTableII(&buf, d, []machine.Spec{machine.IntelUMA8()})
	out := buf.String()
	if !strings.Contains(out, "EP") || !strings.Contains(out, "0.01") {
		t.Errorf("render = %s", out)
	}
	if _, ok := d.Cell("IntelUMA8", "EP", workload.W, 4); !ok {
		t.Error("cell lookup failed")
	}
	if _, ok := d.Cell("x", "EP", workload.W, 4); ok {
		t.Error("bogus cell found")
	}
}

func TestFig4SmallMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped in -short mode")
	}
	// Run Fig.4's sampling path on the UMA machine (cheapest) with tiny
	// tuning: verifies sampler wiring and burst analysis end to end.
	r := NewRunner(workload.Tuning{RefScale: 0.02})
	series, err := r.Fig4(context.Background(), machine.IntelUMA8())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 9 {
		t.Fatalf("series = %d", len(series))
	}
	var buf bytes.Buffer
	RenderFig4(&buf, series)
	if !strings.Contains(buf.String(), "verdict") {
		t.Error("render incomplete")
	}
	// CCDF rendering of the largest class.
	for _, s := range series {
		if s.Program == "CG" && s.Class == workload.C {
			var b2 bytes.Buffer
			RenderFig4CCDF(&b2, s, 50)
			if len(b2.String()) == 0 {
				t.Error("empty CCDF output")
			}
		}
	}
}

func TestAblationClosedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy; skipped in -short mode")
	}
	r := NewRunner(quickTune)
	res, err := r.AblationClosedModel(context.Background(), machine.IntelUMA8(), "CG", workload.C)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderAblationClosed(&buf, res)
	if !strings.Contains(buf.String(), "M/M/1") {
		t.Error("render incomplete")
	}
}
