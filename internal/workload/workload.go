// Package workload implements the parallel programs of the paper's
// benchmark set as memory-reference generators: the six NPB-style HPC
// dwarfs the paper profiled — EP (embarrassingly parallel), IS (bucket
// sort), FT (3D FFT), CG (conjugate-gradient sparse solver), SP
// (pentadiagonal solver), MG (multigrid) — and four PARSEC applications —
// x264 (video encoding), streamcluster (online clustering), canneal
// (annealing-based routing) and fluidanimate (SPH fluid simulation). The
// paper's tables show the Table I subset (EP, IS, FT, CG, SP, x264).
//
// Each kernel implements the real algorithm's traversal order over its data
// structures and emits, per thread, the stream of memory references and
// interleaved work cycles that the traversal performs. What the simulator
// then measures — miss rates, memory-level parallelism, burstiness and
// contention — emerges from those access patterns rather than being
// scripted. Two properties set each program's contention level: how much
// of its footprint misses the LLC, and how much memory-level parallelism
// its misses have. SP's affine plane-strided sweeps miss most and issue at
// full MSHR parallelism (highest contention); FT's dimension passes are
// similar but lighter; CG mixes dependent sparse gathers with streaming
// (moderate); IS serializes through data-dependent histogram and rank
// lookups (moderate despite heavy traffic); canneal is a pure dependent
// pointer chase; EP, x264 and streamcluster are compute- or cache-friendly
// (lowest) — reproducing the paper's ordering.
//
// Iterative kernels end each iteration with barrier coherence traffic and
// a Sync rendezvous (see emitBarrier), which keeps threads in lockstep and
// produces the clustered, heavy-tailed bursts that make small problem
// sizes bursty (paper Fig. 4).
//
// Problem classes follow the NPB letters (S, W, A, B, C) plus the PARSEC
// input names. Capacities are scaled down by the same factor as the
// machine presets' caches (machine.CacheScale), preserving the
// footprint:LLC ratios that put each class in the paper's cached /
// borderline / thrashing regime.
package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// Class identifies a problem size. NPB letters for the dwarfs; PARSEC
// input names for x264.
type Class string

// NPB problem classes and PARSEC input sizes.
const (
	S Class = "S"
	W Class = "W"
	A Class = "A"
	B Class = "B"
	C Class = "C"

	SimSmall  Class = "simsmall"
	SimMedium Class = "simmedium"
	SimLarge  Class = "simlarge"
	Native    Class = "native"
)

// Tuning adjusts simulation cost without changing a workload's memory
// character.
type Tuning struct {
	// RefScale multiplies iteration counts; 0 means 1.0. Tests use small
	// values for speed; experiments use 1.0.
	RefScale float64
}

func (t Tuning) scale(n int) int {
	f := t.RefScale
	if f == 0 {
		f = 1
	}
	s := int(float64(n) * f)
	if s < 1 {
		s = 1
	}
	return s
}

// Workload produces per-thread reference streams for one program+class.
type Workload interface {
	// Name returns the program name ("CG", "SP", "x264", ...).
	Name() string
	// Class returns the problem class.
	Class() Class
	// Description summarizes the parallel kernel (paper Table I).
	Description() string
	// FootprintBytes returns the total data footprint.
	FootprintBytes() uint64
	// Streams returns one reference stream per thread. Streams are
	// deterministic for a given (name, class, threads).
	Streams(threads int) []trace.Stream
}

// ctor builds a workload for a class.
type ctor struct {
	classes []Class
	build   func(Class, Tuning) (Workload, error)
	desc    string
}

var registry = map[string]ctor{}

// register is called from each kernel's init.
func register(name, desc string, classes []Class, build func(Class, Tuning) (Workload, error)) {
	registry[name] = ctor{classes: classes, build: build, desc: desc}
}

// New constructs a workload by program name and class with default tuning.
func New(name string, class Class) (Workload, error) {
	return NewTuned(name, class, Tuning{})
}

// NewTuned constructs a workload with explicit tuning.
func NewTuned(name string, class Class, tune Tuning) (Workload, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown program %q (have %v)", name, Names())
	}
	valid := false
	for _, cl := range c.classes {
		if cl == class {
			valid = true
			break
		}
	}
	if !valid {
		return nil, fmt.Errorf("workload: program %s has no class %q (have %v)", name, class, c.classes)
	}
	return c.build(class, tune)
}

// Names lists registered program names sorted alphabetically.
func Names() []string {
	var names []string
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ClassesFor returns the classes supported by a program.
func ClassesFor(name string) []Class {
	c, ok := registry[name]
	if !ok {
		return nil
	}
	return append([]Class(nil), c.classes...)
}

// Describe returns the Table I style one-liner for a program.
func Describe(name string) string {
	return registry[name].desc
}

// Array bases: each logical array lives in its own 64 GB region so arrays
// never alias and NUMA page homing follows whichever thread touches a page
// first.
const regionBits = 36

// base returns the byte address where array id begins.
func base(id int) uint64 { return uint64(id+1) << regionBits }

// partition splits n items across threads, returning the [lo, hi) range of
// thread t. The remainder spreads over the first threads, matching OpenMP
// static scheduling.
func partition(n, threads, t int) (lo, hi int) {
	q, r := n/threads, n%threads
	lo = t*q + min(t, r)
	hi = lo + q
	if t < r {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// seedFor derives a deterministic per-thread seed.
func seedFor(name string, class Class, thread int) int64 {
	h := int64(1469598103934665603)
	for _, b := range []byte(name + ":" + string(class)) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return h ^ int64(thread)*2654435761
}

// barrierRegion is the shared address region used by emitBarrier.
const barrierRegion = 62

// emitBarrier models the off-chip traffic of an iteration barrier plus
// reduction: cross-socket coherence transfers of shared lines (flags,
// reduction partials, false-shared neighbors). The simulator has no
// invalidation protocol, so the coherence misses are modeled as accesses to
// lines that rotate every iteration — each transfer becomes a real off-chip
// request (see DESIGN.md, substitutions). The number of lines transferred
// varies heavy-tailed per iteration — identically for every thread, so
// threads emitting the same per-iteration work stay in natural lockstep the
// way a real barrier would hold them. This per-iteration variation is what
// gives cache-resident problem sizes their long-tailed burst-size
// distribution (paper Fig. 4); for large problem sizes the barrier traffic
// is negligible against the streaming misses.
func emitBarrier(emit func(trace.Ref) bool, thread, iter int) bool {
	h := xorshift64(uint64(iter)*0x9E3779B97F4A7C15 + 1)
	// u in (0, 1]; lines ~ u^(-0.85)/4, clamped: a heavy-tailed burst size
	// whose volume stays small against the compute phase of one iteration.
	u := float64(h%1_000_000+1) / 1_000_000
	lines := int(math.Pow(u, -0.85) / 4)
	if lines < 1 {
		lines = 1
	}
	if lines > 96 {
		lines = 96
	}
	// Rotating shared lines: distinct per (iteration, thread) so every
	// transfer reaches memory, like an invalidation-induced refill.
	start := (uint64(iter)*16384 + uint64(thread)*512) % (1 << 20)
	for l := 0; l < lines; l++ {
		addr := base(barrierRegion) + ((start+uint64(l))%(1<<20))*64
		if !emit(trace.Ref{Addr: addr, Kind: trace.Load, Dep: l == lines-1, Work: 2}) {
			return false
		}
	}
	// Rendezvous: the thread blocks here until all threads arrive.
	return emit(trace.Ref{Sync: true, Work: 20})
}
