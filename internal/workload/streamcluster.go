package workload

import (
	"fmt"

	"repro/internal/trace"
)

// scParams sizes the streamcluster kernel per class, following the PARSEC
// input sets: points of dim 4-byte coordinates arriving in blocks, clustered
// against k candidate centers.
type scParams struct {
	points  int
	dim     int
	centers int
	passes  int // evaluation passes over the block (pgain iterations)
}

var scClasses = map[Class]scParams{
	SimSmall:  {points: 4 << 10, dim: 32, centers: 10, passes: 4},
	SimMedium: {points: 8 << 10, dim: 32, centers: 10, passes: 6},
	SimLarge:  {points: 16 << 10, dim: 32, centers: 15, passes: 8},
	Native:    {points: 64 << 10, dim: 32, centers: 20, passes: 8},
}

// sc is PARSEC's streamcluster: online k-median clustering of streaming
// points. Each pass reads every point (sequential, high MLP) and computes
// distances to the cache-resident centers — a compute-per-byte ratio high
// enough that, like x264, its large working set produces only moderate
// off-chip traffic. One of the four PARSEC programs the paper profiled.
type sc struct {
	class Class
	p     scParams
	tune  Tuning
}

func init() {
	register("streamcluster", "Online clustering: k-median of streaming points",
		[]Class{SimSmall, SimMedium, SimLarge, Native},
		func(class Class, tune Tuning) (Workload, error) {
			p, ok := scClasses[class]
			if !ok {
				return nil, fmt.Errorf("workload streamcluster: no class %q", class)
			}
			return &sc{class: class, p: p, tune: tune}, nil
		})
}

func (s *sc) Name() string        { return "streamcluster" }
func (s *sc) Class() Class        { return s.class }
func (s *sc) Description() string { return Describe("streamcluster") }

// FootprintBytes covers the point block, per-point assignment costs, and
// the centers.
func (s *sc) FootprintBytes() uint64 {
	return uint64(s.p.points)*uint64(s.p.dim)*4 + // coordinates
		uint64(s.p.points)*8 + // cost/assignment per point
		uint64(s.p.centers)*uint64(s.p.dim)*4
}

const (
	scPoints = iota
	scCosts
	scCenters
)

// Streams partitions the point block across threads. Each pass streams the
// thread's points (dim coordinates each), computes distances against every
// center (resident; one representative load per center), and updates the
// point's cost record; passes are separated by barriers, as pgain's
// evaluate-and-commit phases are in the real program.
func (s *sc) Streams(threads int) []trace.Stream {
	passes := s.tune.scale(s.p.passes)
	p := s.p
	streams := make([]trace.Stream, threads)
	pointBytes := uint64(p.dim) * 4
	for t := 0; t < threads; t++ {
		tt := t
		lo, hi := partition(p.points, threads, t)
		streams[t] = trace.Gen(func(emit func(trace.Ref) bool) {
			for pass := 0; pass < passes; pass++ {
				for pt := lo; pt < hi; pt++ {
					// Stream the point's coordinates line by line.
					baseAddr := base(scPoints) + uint64(pt)*pointBytes
					for off := uint64(0); off < pointBytes; off += 64 {
						if !emit(trace.Ref{Addr: baseAddr + off, Kind: trace.Load, Work: 6}) {
							return
						}
					}
					// Distance to each candidate center: centers stay
					// cache-resident; the distance computation dominates.
					for c := 0; c < p.centers; c++ {
						addr := base(scCenters) + uint64(c)*pointBytes
						if !emit(trace.Ref{Addr: addr, Kind: trace.Load, Work: uint32(3 * p.dim)}) {
							return
						}
					}
					// Update the point's best cost (read-modify-write).
					costAddr := base(scCosts) + uint64(pt)*8
					if !emit(trace.Ref{Addr: costAddr, Kind: trace.Store, Work: 2}) {
						return
					}
				}
				if !emitBarrier(emit, tt, pass) {
					return
				}
			}
		})
	}
	return streams
}
