package workload

import (
	"fmt"

	"repro/internal/trace"
)

// ftParams sizes the 3D FFT per class: a grid of nx*ny*nz complex values
// (16 bytes) double-buffered between two arrays.
type ftParams struct {
	nx, ny, nz int
	iterations int
}

var ftClasses = map[Class]ftParams{
	S: {nx: 16, ny: 16, nz: 16, iterations: 40},
	W: {nx: 32, ny: 16, nz: 16, iterations: 16},
	A: {nx: 32, ny: 32, nz: 32, iterations: 3},
	B: {nx: 64, ny: 32, nz: 32, iterations: 2},
	C: {nx: 64, ny: 64, nz: 32, iterations: 2},
}

// ft is the spectral-methods dwarf: a 3D fast Fourier transform applied
// dimension by dimension. The x-dimension pass streams sequentially, while
// the y and z passes stride by a row and a plane respectively — for grids
// beyond the LLC almost every strided access misses, but the butterflies
// within a pass are independent, so MLP stays high and contention lands
// between IS and SP, as the paper measures.
type ft struct {
	class Class
	p     ftParams
	tune  Tuning
}

func init() {
	register("FT", "Spectral methods: fast Fourier transform",
		[]Class{S, W, A, B, C},
		func(class Class, tune Tuning) (Workload, error) {
			p, ok := ftClasses[class]
			if !ok {
				return nil, fmt.Errorf("workload FT: no class %q", class)
			}
			return &ft{class: class, p: p, tune: tune}, nil
		})
}

func (f *ft) Name() string        { return "FT" }
func (f *ft) Class() Class        { return f.class }
func (f *ft) Description() string { return Describe("FT") }

// FootprintBytes covers the two complex grid buffers.
func (f *ft) FootprintBytes() uint64 {
	cells := uint64(f.p.nx) * uint64(f.p.ny) * uint64(f.p.nz)
	return cells * 16 * 2
}

const (
	ftU0 = iota
	ftU1
)

// cellAddr returns the address of grid cell (x, y, z) in array arr, with x
// contiguous.
func (f *ft) cellAddr(arr int, x, y, z int) uint64 {
	idx := uint64(z)*uint64(f.p.nx)*uint64(f.p.ny) + uint64(y)*uint64(f.p.nx) + uint64(x)
	return base(arr) + idx*16
}

// Streams splits the transform lines of each pass across threads, as the
// OpenMP NPB FT does. Each iteration runs the three dimensional passes
// (read from one buffer, write the other) followed by the evolve sweep.
func (f *ft) Streams(threads int) []trace.Stream {
	iters := f.tune.scale(f.p.iterations)
	streams := make([]trace.Stream, threads)
	p := f.p
	for t := 0; t < threads; t++ {
		tt := t
		streams[t] = trace.Gen(func(emit func(trace.Ref) bool) {
			src, dst := ftU0, ftU1
			// Per-element butterfly work: the transform along a length-n
			// line does n log n work over n elements.
			logN := func(n int) uint32 {
				w := uint32(1)
				for n > 1 {
					n >>= 1
					w++
				}
				return 2 * w
			}
			for it := 0; it < iters; it++ {
				// --- x-dimension pass: lines are (y, z) pairs. ---
				lines := p.ny * p.nz
				lo, hi := partition(lines, threads, tt)
				wx := logN(p.nx)
				for l := lo; l < hi; l++ {
					y, z := l%p.ny, l/p.ny
					for x := 0; x < p.nx; x++ {
						if !emit(trace.Ref{Addr: f.cellAddr(src, x, y, z), Kind: trace.Load, Work: wx}) {
							return
						}
					}
					for x := 0; x < p.nx; x++ {
						if !emit(trace.Ref{Addr: f.cellAddr(dst, x, y, z), Kind: trace.Store, Work: 1}) {
							return
						}
					}
				}
				src, dst = dst, src
				// --- y-dimension pass: lines are (x, z) pairs; stride nx. ---
				lines = p.nx * p.nz
				lo, hi = partition(lines, threads, tt)
				wy := logN(p.ny)
				for l := lo; l < hi; l++ {
					x, z := l%p.nx, l/p.nx
					for y := 0; y < p.ny; y++ {
						if !emit(trace.Ref{Addr: f.cellAddr(src, x, y, z), Kind: trace.Load, Work: wy}) {
							return
						}
					}
					for y := 0; y < p.ny; y++ {
						if !emit(trace.Ref{Addr: f.cellAddr(dst, x, y, z), Kind: trace.Store, Work: 1}) {
							return
						}
					}
				}
				src, dst = dst, src
				// --- z-dimension pass: lines are (x, y) pairs; stride
				// nx*ny (a whole plane). ---
				lines = p.nx * p.ny
				lo, hi = partition(lines, threads, tt)
				wz := logN(p.nz)
				for l := lo; l < hi; l++ {
					x, y := l%p.nx, l/p.nx
					for z := 0; z < p.nz; z++ {
						if !emit(trace.Ref{Addr: f.cellAddr(src, x, y, z), Kind: trace.Load, Work: wz}) {
							return
						}
					}
					for z := 0; z < p.nz; z++ {
						if !emit(trace.Ref{Addr: f.cellAddr(dst, x, y, z), Kind: trace.Store, Work: 1}) {
							return
						}
					}
				}
				src, dst = dst, src
				// --- evolve: pointwise multiply, sequential sweep over the
				// thread's share of cells. ---
				cells := p.nx * p.ny * p.nz
				clo, chi := partition(cells, threads, tt)
				for i := clo; i < chi; i++ {
					if !emit(trace.Ref{Addr: base(src) + uint64(i)*16, Kind: trace.Load, Work: 2}) {
						return
					}
					if !emit(trace.Ref{Addr: base(src) + uint64(i)*16, Kind: trace.Store, Work: 0}) {
						return
					}
				}
				// Iteration barrier + checksum reduction.
				if !emitBarrier(emit, tt, it) {
					return
				}
			}
		})
	}
	return streams
}
