package workload

import (
	"fmt"

	"repro/internal/trace"
)

// x264Params sizes the H.264-style encoder per class, mirroring the PARSEC
// input sets (paper Table III) scaled by machine.CacheScale: the sim*
// inputs share one small resolution with growing frame counts; native has a
// much larger frame.
type x264Params struct {
	width, height int // luma plane in bytes (1 byte/pixel)
	frames        int
	candidates    int // motion-search positions per macroblock
}

var x264Classes = map[Class]x264Params{
	SimSmall:  {width: 160, height: 96, frames: 8, candidates: 8},
	SimMedium: {width: 160, height: 96, frames: 24, candidates: 8},
	SimLarge:  {width: 160, height: 96, frames: 64, candidates: 8},
	Native:    {width: 960, height: 544, frames: 8, candidates: 8},
}

// x264 is the PARSEC video encoder: per 16x16 macroblock, it loads the
// current block, runs a diamond motion search over candidate positions in
// the reference frame, and writes the encoded block. Reference-frame rows
// are shared between neighboring candidates and macroblocks, so even the
// native input — whose frames far exceed the LLC — touches each line only
// about once per frame: a large working set with few misses, the paper's
// explanation for x264's low contention.
type x264 struct {
	class Class
	p     x264Params
	tune  Tuning
}

func init() {
	register("x264", "Video encoding using H264 codec",
		[]Class{SimSmall, SimMedium, SimLarge, Native},
		func(class Class, tune Tuning) (Workload, error) {
			p, ok := x264Classes[class]
			if !ok {
				return nil, fmt.Errorf("workload x264: no class %q", class)
			}
			return &x264{class: class, p: p, tune: tune}, nil
		})
}

func (x *x264) Name() string        { return "x264" }
func (x *x264) Class() Class        { return x.class }
func (x *x264) Description() string { return Describe("x264") }

// FootprintBytes covers the reference frame, current frame, output plane
// and one in-flight input frame.
func (x *x264) FootprintBytes() uint64 {
	return uint64(x.p.width) * uint64(x.p.height) * 4
}

const (
	x264Ref = iota
	x264Cur
	x264Out
	x264Input
)

// pixAddr returns the address of pixel (px, py) in plane arr.
func (x *x264) pixAddr(arr, px, py int) uint64 {
	return base(arr) + uint64(py)*uint64(x.p.width) + uint64(px)
}

// diamond is the small-diamond candidate offset pattern around the
// co-located macroblock, extended by seeded pseudo-random refinements.
var diamond = [][2]int{{0, 0}, {-16, 0}, {16, 0}, {0, -16}, {0, 16}, {-8, -8}, {8, 8}, {-8, 8}, {8, -8}, {-24, 0}, {24, 0}, {0, -24}}

// Streams partitions macroblock rows across threads per frame (x264's
// wavefront-style intra-frame parallelism). For every macroblock: load the
// 16 current-frame rows, evaluate `candidates` positions (16 reference rows
// each, independent loads — SAD has full MLP), then store 16 output rows.
func (x *x264) Streams(threads int) []trace.Stream {
	frames := x.tune.scale(x.p.frames)
	p := x.p
	mbCols := p.width / 16
	mbRows := p.height / 16
	streams := make([]trace.Stream, threads)
	for t := 0; t < threads; t++ {
		tt := t
		seed := uint64(seedFor("x264", x.class, t)) | 1
		streams[t] = trace.Gen(func(emit func(trace.Ref) bool) {
			rng := seed
			frameBytes := uint64(p.width) * uint64(p.height)
			for f := 0; f < frames; f++ {
				// Per-frame encoding activity: the fraction of macroblocks
				// with enough motion to need fresh input data varies from
				// frame to frame (P-frames copy most blocks; scene changes
				// touch everything), which spreads the per-frame input
				// bursts over a wide size range — the source of x264's
				// bursty traffic in paper Fig. 4.
				fh := xorshift64(uint64(f)*0x9E3779B97F4A7C15 + 17)
				activity := 10 + fh%86 // percent of active macroblocks
				lo, hi := partition(mbRows, threads, tt)
				// Frame load: before encoding starts, each thread streams
				// the active portion of its slice of the incoming frame
				// from memory (fresh addresses — a ring of input buffers),
				// a contiguous burst whose size varies with the frame's
				// activity. This is the frame-copy phase of the real
				// encoder and the source of x264's bursty traffic for the
				// cache-resident sim* inputs (paper Fig. 4b).
				inBase := base(x264Input) + uint64(f)*frameBytes
				sliceLo := uint64(lo) * 16 * uint64(p.width)
				sliceBytes := uint64(hi-lo) * 16 * uint64(p.width)
				loadBytes := sliceBytes * activity / 100
				for off := uint64(0); off < loadBytes; off += 64 {
					if !emit(trace.Ref{Addr: inBase + sliceLo + off, Kind: trace.Load, Work: 1}) {
						return
					}
				}
				for mby := lo; mby < hi; mby++ {
					for mbx := 0; mbx < mbCols; mbx++ {
						bx, by := mbx*16, mby*16
						// Load the current macroblock (one row = 16 bytes,
						// so rows share cache lines with neighbors).
						for r := 0; r < 16; r++ {
							if !emit(trace.Ref{Addr: x.pixAddr(x264Cur, bx, by+r), Kind: trace.Load, Work: 2}) {
								return
							}
						}
						// Motion search over candidate positions.
						for c := 0; c < p.candidates; c++ {
							var dx, dy int
							if c < len(diamond) {
								dx, dy = diamond[c][0], diamond[c][1]
							} else {
								rng = xorshift64(rng)
								dx = int(rng%33) - 16
								dy = int((rng>>8)%33) - 16
							}
							cx, cy := clamp(bx+dx, 0, p.width-16), clamp(by+dy, 0, p.height-16)
							for r := 0; r < 16; r++ {
								if !emit(trace.Ref{Addr: x.pixAddr(x264Ref, cx, cy+r), Kind: trace.Load, Work: 3}) {
									return
								}
							}
						}
						// Write the encoded block.
						for r := 0; r < 16; r++ {
							if !emit(trace.Ref{Addr: x.pixAddr(x264Out, bx, by+r), Kind: trace.Store, Work: 2}) {
								return
							}
						}
					}
				}
				// Frame boundary: threads synchronize before the next frame.
				if !emit(trace.Ref{Sync: true, Work: 20}) {
					return
				}
			}
		})
	}
	return streams
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
