package workload

import (
	"testing"

	"repro/internal/trace"
)

// benchStreams measures reference-generation throughput per kernel.
func benchStreams(b *testing.B, name string, class Class) {
	w, err := NewTuned(name, class, Tuning{RefScale: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	produced := 0
	for produced < b.N {
		streams := w.Streams(4)
		for _, s := range streams {
			for produced < b.N {
				if _, ok := s.Next(); !ok {
					break
				}
				produced++
			}
		}
		trace.StopAll(streams...)
	}
}

func BenchmarkCGStream(b *testing.B)   { benchStreams(b, "CG", C) }
func BenchmarkSPStream(b *testing.B)   { benchStreams(b, "SP", C) }
func BenchmarkISStream(b *testing.B)   { benchStreams(b, "IS", C) }
func BenchmarkFTStream(b *testing.B)   { benchStreams(b, "FT", C) }
func BenchmarkEPStream(b *testing.B)   { benchStreams(b, "EP", C) }
func BenchmarkX264Stream(b *testing.B) { benchStreams(b, "x264", Native) }
