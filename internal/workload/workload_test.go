package workload

import (
	"testing"

	"repro/internal/trace"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{"CG", "EP", "FT", "IS", "MG", "SP", "canneal", "fluidanimate", "streamcluster", "x264"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("names[%d] = %q, want %q", i, names[i], w)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("nope", C); err == nil {
		t.Error("unknown program accepted")
	}
	if _, err := New("CG", "XXL"); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := New("x264", C); err == nil {
		t.Error("NPB class accepted for x264")
	}
	if _, err := New("CG", Native); err == nil {
		t.Error("PARSEC class accepted for CG")
	}
}

func TestClassesFor(t *testing.T) {
	if got := ClassesFor("CG"); len(got) != 5 {
		t.Errorf("CG classes = %v", got)
	}
	if got := ClassesFor("x264"); len(got) != 4 {
		t.Errorf("x264 classes = %v", got)
	}
	if got := ClassesFor("nope"); got != nil {
		t.Errorf("unknown program classes = %v", got)
	}
}

func TestDescribe(t *testing.T) {
	for _, name := range Names() {
		if Describe(name) == "" {
			t.Errorf("%s has no description", name)
		}
	}
}

func TestPartition(t *testing.T) {
	// Coverage and disjointness for several shapes.
	for _, tc := range []struct{ n, threads int }{
		{10, 3}, {7, 7}, {5, 8}, {100, 1}, {0, 4},
	} {
		covered := 0
		prevHi := 0
		for th := 0; th < tc.threads; th++ {
			lo, hi := partition(tc.n, tc.threads, th)
			if lo != prevHi {
				t.Errorf("n=%d t=%d: thread %d starts at %d, want %d", tc.n, tc.threads, th, lo, prevHi)
			}
			if hi < lo {
				t.Errorf("negative range: [%d,%d)", lo, hi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.n {
			t.Errorf("n=%d threads=%d: covered %d", tc.n, tc.threads, covered)
		}
	}
	// Balance: ranges differ by at most one.
	minSz, maxSz := 1<<30, 0
	for th := 0; th < 7; th++ {
		lo, hi := partition(100, 7, th)
		if hi-lo < minSz {
			minSz = hi - lo
		}
		if hi-lo > maxSz {
			maxSz = hi - lo
		}
	}
	if maxSz-minSz > 1 {
		t.Errorf("imbalance: %d..%d", minSz, maxSz)
	}
}

func TestSeedForDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for _, name := range []string{"CG", "EP"} {
		for _, class := range []Class{S, C} {
			for th := 0; th < 4; th++ {
				s := seedFor(name, Class(class), th)
				if seen[s] {
					t.Errorf("duplicate seed for %s.%s thread %d", name, class, th)
				}
				seen[s] = true
			}
		}
	}
}

// drain counts refs and validates basic stream invariants.
func drain(t *testing.T, s trace.Stream) (n int, deps int, stores int) {
	t.Helper()
	for {
		r, ok := s.Next()
		if !ok {
			return
		}
		n++
		if r.Dep {
			deps++
		}
		if r.Kind == trace.Store {
			stores++
		}
	}
}

func TestEveryWorkloadProducesStreams(t *testing.T) {
	tune := Tuning{RefScale: 0.05}
	for _, name := range Names() {
		for _, class := range ClassesFor(name) {
			w, err := NewTuned(name, class, tune)
			if err != nil {
				t.Fatalf("%s.%s: %v", name, class, err)
			}
			if w.Name() != name || w.Class() != class {
				t.Errorf("%s.%s: identity mismatch", name, class)
			}
			if w.FootprintBytes() == 0 {
				t.Errorf("%s.%s: zero footprint", name, class)
			}
			streams := w.Streams(3)
			if len(streams) != 3 {
				t.Fatalf("%s.%s: %d streams", name, class, len(streams))
			}
			total := 0
			for i, s := range streams {
				n, _, _ := drain(t, s)
				if n == 0 {
					t.Errorf("%s.%s: thread %d empty", name, class, i)
				}
				total += n
			}
			if total < 100 {
				t.Errorf("%s.%s: only %d refs total", name, class, total)
			}
		}
	}
}

func TestStreamsDeterministic(t *testing.T) {
	tune := Tuning{RefScale: 0.05}
	for _, name := range []string{"CG", "IS", "x264"} {
		classes := ClassesFor(name)
		w1, _ := NewTuned(name, classes[0], tune)
		w2, _ := NewTuned(name, classes[0], tune)
		s1 := w1.Streams(2)
		s2 := w2.Streams(2)
		for th := 0; th < 2; th++ {
			r1 := trace.Collect(s1[th], 5000)
			r2 := trace.Collect(s2[th], 5000)
			if len(r1) != len(r2) {
				t.Fatalf("%s: lengths differ", name)
			}
			for i := range r1 {
				if r1[i] != r2[i] {
					t.Fatalf("%s thread %d ref %d: %+v vs %+v", name, th, i, r1[i], r2[i])
				}
			}
			trace.StopAll(s1[th], s2[th])
		}
	}
}

func TestFootprintOrdering(t *testing.T) {
	// Footprints must grow monotonically with class for the NPB dwarfs.
	for _, name := range []string{"CG", "IS", "FT", "SP", "MG"} {
		var prev uint64
		for _, class := range []Class{S, W, A, B, C} {
			w, err := New(name, class)
			if err != nil {
				t.Fatal(err)
			}
			fp := w.FootprintBytes()
			if fp <= prev {
				t.Errorf("%s.%s footprint %d not > previous %d", name, class, fp, prev)
			}
			prev = fp
		}
	}
	// x264 native must dwarf the sim inputs.
	small, _ := New("x264", SimSmall)
	native, _ := New("x264", Native)
	if native.FootprintBytes() < 10*small.FootprintBytes() {
		t.Error("x264 native footprint should be much larger than simsmall")
	}
}

func TestClassRegimesVsLLC(t *testing.T) {
	// The scaled class design: W fits in a 768 KB socket LLC for the
	// low-contention programs, while C exceeds it severalfold for the
	// high-contention ones.
	const llc = 768 << 10
	for _, name := range []string{"CG", "FT", "SP"} {
		w, _ := New(name, W)
		if w.FootprintBytes() > llc {
			t.Errorf("%s.W footprint %d exceeds LLC", name, w.FootprintBytes())
		}
		c, _ := New(name, C)
		if c.FootprintBytes() < 4*llc {
			t.Errorf("%s.C footprint %d not >> LLC", name, c.FootprintBytes())
		}
	}
}

func TestCGGatherIsDependent(t *testing.T) {
	w, _ := NewTuned("CG", S, Tuning{RefScale: 0.2})
	s := w.Streams(1)[0]
	_, deps, stores := drain(t, s)
	if deps == 0 {
		t.Error("CG should contain dependent gathers")
	}
	if stores == 0 {
		t.Error("CG should contain stores")
	}
}

func TestDependentFractionOrdering(t *testing.T) {
	// CG's gathers are address-dependent (pointer-indirect), while SP's
	// affine sweeps are fully independent: CG must have a higher dependent
	// fraction than SP, which is what puts CG below SP in contention.
	frac := func(name string) float64 {
		w, err := NewTuned(name, W, Tuning{RefScale: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		n, deps, _ := drain(t, w.Streams(1)[0])
		return float64(deps) / float64(n)
	}
	spFrac := frac("SP")
	cgFrac := frac("CG")
	// SP's only dependent refs are the per-iteration barrier reductions.
	if spFrac > 0.02 {
		t.Errorf("SP dep fraction = %.3f, want ~0 (affine addresses)", spFrac)
	}
	if cgFrac <= 0.1 {
		t.Errorf("CG dep fraction = %.2f, want substantial", cgFrac)
	}
	if cgFrac <= 5*spFrac {
		t.Errorf("CG dep fraction %.3f should dwarf SP's %.3f", cgFrac, spFrac)
	}
}

func TestEPMostlyWork(t *testing.T) {
	w, _ := NewTuned("EP", C, Tuning{RefScale: 0.05})
	s := w.Streams(1)[0]
	var refs, work uint64
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		refs++
		work += uint64(r.Work)
	}
	if work < refs*50 {
		t.Errorf("EP work/ref = %d, want compute-dominated (>50)", work/refs)
	}
}

func TestX264AddressesInBounds(t *testing.T) {
	w, _ := NewTuned("x264", SimSmall, Tuning{RefScale: 1})
	p := x264Classes[SimSmall]
	planeSize := uint64(p.width * p.height)
	for _, s := range w.Streams(2) {
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			if r.Sync {
				continue
			}
			region := int(r.Addr>>regionBits) - 1
			off := r.Addr & ((1 << regionBits) - 1)
			switch region {
			case x264Ref, x264Cur, x264Out:
				if off >= planeSize {
					t.Fatalf("plane %d offset %d beyond plane size %d", region, off, planeSize)
				}
			case x264Input:
				// The input is a ring of per-frame buffers.
				if off >= planeSize*uint64(p.frames) {
					t.Fatalf("input offset %d beyond %d frames", off, p.frames)
				}
			default:
				t.Fatalf("unexpected region %d", region)
			}
		}
	}
}

func TestTuningScale(t *testing.T) {
	if (Tuning{}).scale(100) != 100 {
		t.Error("zero RefScale should mean 1.0")
	}
	if (Tuning{RefScale: 0.5}).scale(100) != 50 {
		t.Error("scale wrong")
	}
	if (Tuning{RefScale: 0.001}).scale(100) != 1 {
		t.Error("scale should clamp to 1")
	}
}

func TestCGRowLenRange(t *testing.T) {
	avg := 10
	for row := 0; row < 10000; row++ {
		rl := cgRowLen(row, avg)
		if rl < avg/2 || rl > 3*avg/2 {
			t.Fatalf("row %d len %d outside [%d,%d]", row, rl, avg/2, 3*avg/2)
		}
	}
}

func TestBaseRegionsDisjoint(t *testing.T) {
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if base(i)>>regionBits == base(j)>>regionBits {
				t.Fatalf("regions %d and %d collide", i, j)
			}
		}
	}
}

// regionOf extracts the array id of an address.
func regionOf(addr uint64) int { return int(addr>>regionBits) - 1 }

func TestFTAddressesInBounds(t *testing.T) {
	w, _ := NewTuned("FT", S, Tuning{RefScale: 0.2})
	p := ftClasses[S]
	cells := uint64(p.nx) * uint64(p.ny) * uint64(p.nz)
	for _, s := range w.Streams(2) {
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			if r.Sync {
				continue
			}
			region := regionOf(r.Addr)
			off := r.Addr & ((1 << regionBits) - 1)
			switch region {
			case ftU0, ftU1:
				if off >= cells*16 {
					t.Fatalf("FT offset %d beyond grid (%d cells)", off, cells)
				}
			case barrierRegion:
				// coherence lines
			default:
				t.Fatalf("unexpected FT region %d", region)
			}
		}
	}
}

func TestSPAddressesInBounds(t *testing.T) {
	w, _ := NewTuned("SP", S, Tuning{RefScale: 0.2})
	p := spClasses[S]
	cells := uint64(p.n) * uint64(p.n) * uint64(p.n)
	for _, s := range w.Streams(3) {
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			if r.Sync {
				continue
			}
			region := regionOf(r.Addr)
			off := r.Addr & ((1 << regionBits) - 1)
			switch region {
			case spU, spRHS, spLHS:
				if off >= cells*spCellBytes {
					t.Fatalf("SP offset %d beyond grid", off)
				}
			case barrierRegion:
			default:
				t.Fatalf("unexpected SP region %d", region)
			}
		}
	}
}

func TestMGAddressesWithinLevels(t *testing.T) {
	w, _ := NewTuned("MG", S, Tuning{RefScale: 0.2})
	p := mgClasses[S]
	for _, s := range w.Streams(2) {
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			if r.Sync {
				continue
			}
			region := regionOf(r.Addr)
			if region == barrierRegion {
				continue
			}
			if region != mgU && region != mgR {
				t.Fatalf("unexpected MG region %d", region)
			}
			// Level index packs into bits 32+; the finest level's grid plus
			// one plane of stencil slack bounds each level's extent.
			level := int((r.Addr >> 32) & 0xf)
			if level >= p.levels {
				t.Fatalf("MG level %d beyond %d", level, p.levels)
			}
			n := uint64(p.n >> level)
			off := r.Addr & ((1 << 32) - 1)
			limit := (n*n*n + n*n) * 8 // grid + one plane of stencil overrun
			if off >= limit {
				t.Fatalf("MG level %d offset %d beyond %d", level, off, limit)
			}
		}
	}
}

func TestStreamclusterAddressesInBounds(t *testing.T) {
	w, _ := NewTuned("streamcluster", SimSmall, Tuning{RefScale: 0.5})
	p := scClasses[SimSmall]
	pointBytes := uint64(p.dim) * 4
	for _, s := range w.Streams(2) {
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			if r.Sync {
				continue
			}
			region := regionOf(r.Addr)
			off := r.Addr & ((1 << regionBits) - 1)
			switch region {
			case scPoints:
				if off >= uint64(p.points)*pointBytes {
					t.Fatalf("points offset %d out of range", off)
				}
			case scCosts:
				if off >= uint64(p.points)*8 {
					t.Fatalf("costs offset %d out of range", off)
				}
			case scCenters:
				if off >= uint64(p.centers)*pointBytes {
					t.Fatalf("centers offset %d out of range", off)
				}
			case barrierRegion:
			default:
				t.Fatalf("unexpected streamcluster region %d", region)
			}
		}
	}
}

func TestCGAddressesInBounds(t *testing.T) {
	w, _ := NewTuned("CG", S, Tuning{RefScale: 0.1})
	p := cgClasses[S]
	// Upper bound on nnz: 3*avg/2 per row.
	maxNNZ := uint64(p.rows) * uint64(3*p.nnzPerRow/2+1)
	for _, s := range w.Streams(2) {
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			if r.Sync {
				continue
			}
			region := regionOf(r.Addr)
			off := r.Addr & ((1 << regionBits) - 1)
			switch region {
			case cgAVal:
				if off >= maxNNZ*8 {
					t.Fatalf("aVal offset %d out of range", off)
				}
			case cgACol:
				if off >= maxNNZ*4 {
					t.Fatalf("aCol offset %d out of range", off)
				}
			case cgVecX, cgVecP, cgVecQ, cgVecR, cgVecZ:
				if off >= uint64(p.rows)*8 {
					t.Fatalf("vector region %d offset %d out of range", region, off)
				}
			case barrierRegion:
			default:
				t.Fatalf("unexpected CG region %d", region)
			}
		}
	}
}

func TestCannealIsDependencyDominated(t *testing.T) {
	w, _ := NewTuned("canneal", SimSmall, Tuning{RefScale: 0.25})
	n, deps, stores := drain(t, w.Streams(2)[0])
	if n == 0 || stores == 0 {
		t.Fatalf("refs=%d stores=%d", n, stores)
	}
	if frac := float64(deps) / float64(n); frac < 0.6 {
		t.Errorf("canneal dep fraction = %.2f, want pointer-chase dominated (>0.6)", frac)
	}
}

func TestCannealAddressesInBounds(t *testing.T) {
	w, _ := NewTuned("canneal", SimSmall, Tuning{RefScale: 0.25})
	p := cannealClasses[SimSmall]
	for _, s := range w.Streams(2) {
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			if r.Sync {
				continue
			}
			region := regionOf(r.Addr)
			off := r.Addr & ((1 << regionBits) - 1)
			switch region {
			case cannealNetlist:
				if off >= uint64(p.elements)*64 {
					t.Fatalf("netlist offset %d out of range", off)
				}
			case barrierRegion:
			default:
				t.Fatalf("unexpected canneal region %d", region)
			}
		}
	}
}

func TestFluidanimateAddressesInBounds(t *testing.T) {
	w, _ := NewTuned("fluidanimate", SimSmall, Tuning{RefScale: 0.25})
	p := fluidClasses[SimSmall]
	cells := uint64(p.nx) * uint64(p.ny) * uint64(p.nz)
	var deps int
	for _, s := range w.Streams(3) {
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			if r.Sync {
				continue
			}
			if r.Dep {
				deps++
			}
			region := regionOf(r.Addr)
			off := r.Addr & ((1 << regionBits) - 1)
			switch region {
			case fluidCells:
				if off >= cells*fluidCellBytes {
					t.Fatalf("cell offset %d beyond grid", off)
				}
			case barrierRegion:
			default:
				t.Fatalf("unexpected fluidanimate region %d", region)
			}
		}
	}
}

func TestPARSECFootprintsGrowWithInput(t *testing.T) {
	for _, name := range []string{"canneal", "fluidanimate", "streamcluster", "x264"} {
		var prev uint64
		for _, class := range []Class{SimSmall, SimMedium, SimLarge, Native} {
			w, err := New(name, class)
			if err != nil {
				t.Fatal(err)
			}
			fp := w.FootprintBytes()
			if fp < prev {
				t.Errorf("%s.%s footprint %d shrank from %d", name, class, fp, prev)
			}
			prev = fp
		}
	}
}
