package workload

import (
	"fmt"

	"repro/internal/trace"
)

// fluidParams sizes the SPH fluid simulation per class: a 3D grid of cells
// (each holding a handful of particles, 128 bytes of state per cell here)
// swept with neighbour interactions each frame.
type fluidParams struct {
	nx, ny, nz int
	frames     int
}

var fluidClasses = map[Class]fluidParams{
	SimSmall:  {nx: 16, ny: 16, nz: 16, frames: 12},
	SimMedium: {nx: 24, ny: 24, nz: 16, frames: 12},
	SimLarge:  {nx: 32, ny: 32, nz: 24, frames: 10},
	Native:    {nx: 64, ny: 64, nz: 32, frames: 6},
}

// fluid is PARSEC's fluidanimate: smoothed-particle hydrodynamics on a
// uniform cell grid. Each frame sweeps the cells; a cell interacts with its
// face neighbours (affine addresses, independent loads — decent MLP), and
// frames are separated by barriers. Its footprint grows to several times
// the LLC at native size, giving FT-like streaming contention with a
// per-frame phase structure.
type fluid struct {
	class Class
	p     fluidParams
	tune  Tuning
}

func init() {
	register("fluidanimate", "SPH fluid simulation: grid-neighbour particle sweeps",
		[]Class{SimSmall, SimMedium, SimLarge, Native},
		func(class Class, tune Tuning) (Workload, error) {
			p, ok := fluidClasses[class]
			if !ok {
				return nil, fmt.Errorf("workload fluidanimate: no class %q", class)
			}
			return &fluid{class: class, p: p, tune: tune}, nil
		})
}

func (f *fluid) Name() string        { return "fluidanimate" }
func (f *fluid) Class() Class        { return f.class }
func (f *fluid) Description() string { return Describe("fluidanimate") }

const fluidCellBytes = 128

// FootprintBytes covers the cell-state grid.
func (f *fluid) FootprintBytes() uint64 {
	cells := uint64(f.p.nx) * uint64(f.p.ny) * uint64(f.p.nz)
	return cells * fluidCellBytes
}

const fluidCells = 0

// cellAddr returns the state address of cell (x, y, z).
func (f *fluid) cellAddr(x, y, z int) uint64 {
	idx := uint64(z)*uint64(f.p.nx)*uint64(f.p.ny) + uint64(y)*uint64(f.p.nx) + uint64(x)
	return base(fluidCells) + idx*fluidCellBytes
}

// Streams partitions the grid by z-slabs (fluidanimate's spatial
// decomposition). Each frame has two passes — density and force — each
// visiting every cell of the thread's slab and its six face neighbours,
// then a barrier.
func (f *fluid) Streams(threads int) []trace.Stream {
	frames := f.tune.scale(f.p.frames)
	p := f.p
	streams := make([]trace.Stream, threads)
	for t := 0; t < threads; t++ {
		tt := t
		zlo, zhi := partition(p.nz, threads, t)
		streams[t] = trace.Gen(func(emit func(trace.Ref) bool) {
			sweep := func() bool {
				for z := zlo; z < zhi; z++ {
					for y := 0; y < p.ny; y++ {
						for x := 0; x < p.nx; x++ {
							// Own cell: load + store.
							if !emit(trace.Ref{Addr: f.cellAddr(x, y, z), Kind: trace.Load, Work: 6}) {
								return false
							}
							// Face neighbours in y and z reach other rows
							// and planes (the x neighbours share the cache
							// line with the own cell).
							if y+1 < p.ny {
								if !emit(trace.Ref{Addr: f.cellAddr(x, y+1, z), Kind: trace.Load, Work: 3}) {
									return false
								}
							}
							if z+1 < p.nz {
								if !emit(trace.Ref{Addr: f.cellAddr(x, y, z+1), Kind: trace.Load, Work: 3}) {
									return false
								}
							}
							if !emit(trace.Ref{Addr: f.cellAddr(x, y, z), Kind: trace.Store, Work: 4}) {
								return false
							}
						}
					}
				}
				return true
			}
			for frame := 0; frame < frames; frame++ {
				// Density pass, then force pass, each globally synchronized.
				if !sweep() {
					return
				}
				if !emitBarrier(emit, tt, 2*frame) {
					return
				}
				if !sweep() {
					return
				}
				if !emitBarrier(emit, tt, 2*frame+1) {
					return
				}
			}
		})
	}
	return streams
}
