package workload

import (
	"fmt"

	"repro/internal/trace"
)

// spParams sizes the pentadiagonal solver per class: an n^3 grid with five
// solution components per cell (40 bytes), plus right-hand-side and
// factorization workspace of the same shape.
type spParams struct {
	n          int
	iterations int
}

var spClasses = map[Class]spParams{
	S: {n: 8, iterations: 60},
	W: {n: 14, iterations: 20},
	A: {n: 20, iterations: 4},
	B: {n: 30, iterations: 2},
	C: {n: 40, iterations: 2},
}

// sp is the structured-grid dwarf: an ADI pentadiagonal solver that sweeps
// the 3D grid along all three dimensions every iteration (paper section V:
// "the pentadiagonal solver SP accesses memories along all dimensions of a
// 3D space; such complex data access patterns lead to large number of cache
// misses"). The y and z sweeps stride by a row and a plane, so for grids
// beyond the LLC almost every access misses; the addresses are affine, so
// the misses issue at full memory-level parallelism and saturate the
// memory controllers. SP is the paper's highest-contention program.
type sp struct {
	class Class
	p     spParams
	tune  Tuning
}

func init() {
	register("SP", "Structured grid: pentadiagonal solver",
		[]Class{S, W, A, B, C},
		func(class Class, tune Tuning) (Workload, error) {
			p, ok := spClasses[class]
			if !ok {
				return nil, fmt.Errorf("workload SP: no class %q", class)
			}
			return &sp{class: class, p: p, tune: tune}, nil
		})
}

func (s *sp) Name() string        { return "SP" }
func (s *sp) Class() Class        { return s.class }
func (s *sp) Description() string { return Describe("SP") }

// FootprintBytes covers solution, RHS and factorization arrays: three n^3
// grids of 40-byte cells.
func (s *sp) FootprintBytes() uint64 {
	cells := uint64(s.p.n) * uint64(s.p.n) * uint64(s.p.n)
	return cells * 40 * 3
}

const (
	spU = iota
	spRHS
	spLHS
)

const spCellBytes = 40

// cellAddr returns the address of cell (x, y, z) in array arr, with x
// contiguous.
func (s *sp) cellAddr(arr, x, y, z int) uint64 {
	n := uint64(s.p.n)
	idx := uint64(z)*n*n + uint64(y)*n + uint64(x)
	return base(arr) + idx*spCellBytes
}

// Streams reproduces the SP iteration: compute_rhs (sequential streaming),
// then x_solve, y_solve and z_solve, each a forward elimination followed by
// back substitution along every grid line of that dimension, partitioned
// across threads by line.
func (s *sp) Streams(threads int) []trace.Stream {
	iters := s.tune.scale(s.p.iterations)
	n := s.p.n
	streams := make([]trace.Stream, threads)
	for t := 0; t < threads; t++ {
		tt := t
		streams[t] = trace.Gen(func(emit func(trace.Ref) bool) {
			// solveLine emits the accesses of the pentadiagonal recurrence
			// along one grid line: forward elimination reading LHS and
			// updating RHS, then back substitution updating U. The
			// computation is a serial recurrence, but the ADDRESSES are
			// affine in the line index, so the loads are issued
			// independently (the core/prefetcher runs ahead) — SP floods
			// the memory system with strided misses at full memory-level
			// parallelism, which is exactly why the paper measures it as
			// the highest-contention program. cellAt maps the 1D line
			// position to a cell address in the given array.
			solveLine := func(cellAt func(arr, i int) uint64) bool {
				for i := 0; i < n; i++ {
					if !emit(trace.Ref{Addr: cellAt(spLHS, i), Kind: trace.Load, Work: 5}) {
						return false
					}
					if !emit(trace.Ref{Addr: cellAt(spRHS, i), Kind: trace.Store, Work: 3}) {
						return false
					}
				}
				// Back substitution, reverse order.
				for i := n - 1; i >= 0; i-- {
					if !emit(trace.Ref{Addr: cellAt(spRHS, i), Kind: trace.Load, Work: 4}) {
						return false
					}
					if !emit(trace.Ref{Addr: cellAt(spU, i), Kind: trace.Store, Work: 2}) {
						return false
					}
				}
				return true
			}
			for it := 0; it < iters; it++ {
				// --- compute_rhs: sequential sweep of the whole grid. ---
				cells := n * n * n
				clo, chi := partition(cells, threads, tt)
				for i := clo; i < chi; i++ {
					if !emit(trace.Ref{Addr: base(spU) + uint64(i)*spCellBytes, Kind: trace.Load, Work: 3}) {
						return
					}
					if !emit(trace.Ref{Addr: base(spRHS) + uint64(i)*spCellBytes, Kind: trace.Store, Work: 2}) {
						return
					}
				}
				// --- x_solve: lines along x (contiguous). ---
				lines := n * n
				lo, hi := partition(lines, threads, tt)
				for l := lo; l < hi; l++ {
					y, z := l%n, l/n
					if !solveLine(func(arr, i int) uint64 { return s.cellAddr(arr, i, y, z) }) {
						return
					}
				}
				// --- y_solve: lines along y (stride n cells). ---
				lo, hi = partition(lines, threads, tt)
				for l := lo; l < hi; l++ {
					x, z := l%n, l/n
					if !solveLine(func(arr, i int) uint64 { return s.cellAddr(arr, x, i, z) }) {
						return
					}
				}
				// --- z_solve: lines along z (stride n^2 cells — a plane). ---
				lo, hi = partition(lines, threads, tt)
				for l := lo; l < hi; l++ {
					x, y := l%n, l/n
					if !solveLine(func(arr, i int) uint64 { return s.cellAddr(arr, x, y, i) }) {
						return
					}
				}
				// ADI iteration barrier + residual reduction.
				if !emitBarrier(emit, tt, it) {
					return
				}
			}
		})
	}
	return streams
}
