package workload

import (
	"fmt"

	"repro/internal/trace"
)

// cannealParams sizes the simulated-annealing netlist router per class:
// Elements netlist nodes of 64 bytes each, Moves swap evaluations per
// thread per temperature step.
type cannealParams struct {
	elements int
	moves    int
	steps    int
}

var cannealClasses = map[Class]cannealParams{
	SimSmall:  {elements: 8 << 10, moves: 2000, steps: 4},
	SimMedium: {elements: 16 << 10, moves: 4000, steps: 6},
	SimLarge:  {elements: 32 << 10, moves: 6000, steps: 8},
	Native:    {elements: 128 << 10, moves: 8000, steps: 8},
}

// canneal is PARSEC's cache-aware simulated annealing for chip routing: a
// swap evaluation loads two random netlist elements and chases their net
// pointers to compute the routing-cost delta. Almost every access is a
// data-dependent pointer dereference over a multi-megabyte netlist — the
// archetypal low-MLP random-access program, the opposite extreme from SP's
// affine streams. Contention stays moderate despite heavy traffic because
// the dependent chain self-throttles each thread.
type canneal struct {
	class Class
	p     cannealParams
	tune  Tuning
}

func init() {
	register("canneal", "Simulated annealing: pointer-chasing netlist routing",
		[]Class{SimSmall, SimMedium, SimLarge, Native},
		func(class Class, tune Tuning) (Workload, error) {
			p, ok := cannealClasses[class]
			if !ok {
				return nil, fmt.Errorf("workload canneal: no class %q", class)
			}
			return &canneal{class: class, p: p, tune: tune}, nil
		})
}

func (c *canneal) Name() string        { return "canneal" }
func (c *canneal) Class() Class        { return c.class }
func (c *canneal) Description() string { return Describe("canneal") }

// FootprintBytes covers the 64-byte netlist elements.
func (c *canneal) FootprintBytes() uint64 {
	return uint64(c.p.elements) * 64
}

const cannealNetlist = 0

// Streams runs per-thread annealing moves: each move picks two pseudo-
// random elements (dependent loads — the address comes from the RNG state
// and the element's net pointers), follows two neighbour pointers from
// each, and commits the swap with two stores. Temperature steps end with a
// barrier, as the real program's synchronized temperature updates do.
func (c *canneal) Streams(threads int) []trace.Stream {
	steps := c.tune.scale(c.p.steps)
	p := c.p
	streams := make([]trace.Stream, threads)
	for t := 0; t < threads; t++ {
		tt := t
		seed := uint64(seedFor("canneal", c.class, t)) | 1
		streams[t] = trace.Gen(func(emit func(trace.Ref) bool) {
			rng := seed
			elem := func() uint64 {
				rng = xorshift64(rng)
				return base(cannealNetlist) + (rng%uint64(p.elements))*64
			}
			for step := 0; step < steps; step++ {
				for move := 0; move < p.moves; move++ {
					// Load both swap candidates.
					for pick := 0; pick < 2; pick++ {
						if !emit(trace.Ref{Addr: elem(), Kind: trace.Load, Dep: true, Work: 3}) {
							return
						}
						// Chase two of the element's net pointers.
						for hop := 0; hop < 2; hop++ {
							if !emit(trace.Ref{Addr: elem(), Kind: trace.Load, Dep: true, Work: 2}) {
								return
							}
						}
					}
					// Commit the swap (stores drain via the write buffer).
					if !emit(trace.Ref{Addr: elem(), Kind: trace.Store, Work: 4}) {
						return
					}
					if !emit(trace.Ref{Addr: elem(), Kind: trace.Store, Work: 4}) {
						return
					}
				}
				// Temperature update: synchronized across threads.
				if !emitBarrier(emit, tt, step) {
					return
				}
			}
		})
	}
	return streams
}
