package workload

import (
	"fmt"

	"repro/internal/trace"
)

// epParams sizes the embarrassingly parallel kernel per class: EP generates
// batches of Gaussian random pairs with essentially no shared data — its
// per-thread state is a handful of cache lines, so off-chip traffic is
// limited to rare result flushes regardless of class.
type epParams struct {
	iterations int // random pairs per thread
	tableBytes uint64
	flushEvery int // iterations between result-buffer flushes
	flushLines int // cache lines written per flush
}

var epClasses = map[Class]epParams{
	S: {iterations: 4000, tableBytes: 4 << 10, flushEvery: 256, flushLines: 16},
	W: {iterations: 12000, tableBytes: 4 << 10, flushEvery: 256, flushLines: 16},
	A: {iterations: 24000, tableBytes: 8 << 10, flushEvery: 256, flushLines: 16},
	B: {iterations: 40000, tableBytes: 8 << 10, flushEvery: 256, flushLines: 16},
	C: {iterations: 60000, tableBytes: 16 << 10, flushEvery: 256, flushLines: 16},
}

// ep is the embarrassingly parallel dwarf: long stretches of computation on
// register/cache-resident state, with periodic result flushes that produce
// small bursts of off-chip stores. The paper's low-contention reference
// case (Fig. 6).
type ep struct {
	class Class
	p     epParams
	tune  Tuning
}

func init() {
	register("EP", "Embarrassingly parallel: low data dependency, low memory",
		[]Class{S, W, A, B, C},
		func(class Class, tune Tuning) (Workload, error) {
			p, ok := epClasses[class]
			if !ok {
				return nil, fmt.Errorf("workload EP: no class %q", class)
			}
			return &ep{class: class, p: p, tune: tune}, nil
		})
}

func (e *ep) Name() string        { return "EP" }
func (e *ep) Class() Class        { return e.class }
func (e *ep) Description() string { return Describe("EP") }

// FootprintBytes counts the per-thread tables (for a nominal machine-sized
// thread count of 48) and the global result area.
func (e *ep) FootprintBytes() uint64 {
	const nominalThreads = 48
	flushes := uint64(e.p.iterations/e.p.flushEvery + 1)
	return nominalThreads * (e.p.tableBytes + flushes*uint64(e.p.flushLines)*64)
}

const (
	epTable = iota
	epResults
)

// Streams gives each thread an independent random-pair loop: Work-heavy
// iterations touching a small resident table, with a burst of result-line
// stores every flushEvery iterations.
func (e *ep) Streams(threads int) []trace.Stream {
	iters := e.tune.scale(e.p.iterations)
	streams := make([]trace.Stream, threads)
	for t := 0; t < threads; t++ {
		seed := uint64(seedFor("EP", e.class, t)) | 1
		tableBase := base(epTable) + uint64(t)<<24 // distinct table per thread
		resultBase := base(epResults) + uint64(t)<<24
		tableMask := e.p.tableBytes - 1 // tableBytes is a power of two
		p := e.p
		streams[t] = trace.Gen(func(emit func(trace.Ref) bool) {
			rng := seed
			nextResult := resultBase
			for i := 0; i < iters; i++ {
				// The random-pair computation: ~100 cycles of arithmetic
				// plus one table lookup that stays cache-resident.
				rng = xorshift64(rng)
				off := (rng & tableMask) &^ 7
				if !emit(trace.Ref{Addr: tableBase + off, Kind: trace.Load, Work: 100}) {
					return
				}
				if (i+1)%p.flushEvery == 0 {
					// Flush accumulated results: a short burst of streaming
					// stores to fresh lines.
					for l := 0; l < p.flushLines; l++ {
						if !emit(trace.Ref{Addr: nextResult, Kind: trace.Store, Work: 1}) {
							return
						}
						nextResult += 64
					}
				}
			}
		})
	}
	return streams
}
