package workload

import (
	"fmt"

	"repro/internal/trace"
)

// cgParams sizes the conjugate-gradient solver per class. Rows follow the
// NPB CG geometry (paper Table III) scaled by machine.CacheScale so the
// footprint:LLC ratios land in the same regimes: S and W cache-resident, A
// around the LLC, B and C thrashing.
type cgParams struct {
	rows       int // matrix dimension N
	nnzPerRow  int // average nonzeros per row
	iterations int
}

var cgClasses = map[Class]cgParams{
	S: {rows: 1024, nnzPerRow: 8, iterations: 60},
	W: {rows: 2048, nnzPerRow: 8, iterations: 20},
	A: {rows: 8192, nnzPerRow: 10, iterations: 4},
	B: {rows: 49152, nnzPerRow: 12, iterations: 2},
	C: {rows: 131072, nnzPerRow: 14, iterations: 2},
}

// cg is the sparse linear algebra dwarf: power iteration with a
// conjugate-gradient style sparse matrix-vector product at its heart. Its
// memory signature is the paper's "moderate contention" case: streaming
// reads of the matrix values (independent, high MLP) interleaved with
// dependent random gathers of the x vector (low MLP), plus streaming vector
// updates.
type cg struct {
	class Class
	p     cgParams
	tune  Tuning
}

func init() {
	register("CG", "Sparse linear algebra: data with many 0 values",
		[]Class{S, W, A, B, C},
		func(class Class, tune Tuning) (Workload, error) {
			p, ok := cgClasses[class]
			if !ok {
				return nil, fmt.Errorf("workload CG: no class %q", class)
			}
			return &cg{class: class, p: p, tune: tune}, nil
		})
}

func (c *cg) Name() string        { return "CG" }
func (c *cg) Class() Class        { return c.class }
func (c *cg) Description() string { return Describe("CG") }

// FootprintBytes covers the CSR matrix (8-byte values, 4-byte column
// indices) and five N-length solution/direction vectors.
func (c *cg) FootprintBytes() uint64 {
	nnz := uint64(c.p.rows) * uint64(c.p.nnzPerRow)
	return nnz*12 + uint64(c.p.rows)*5*8
}

// Array ids within the workload's address space.
const (
	cgAVal = iota
	cgACol
	cgVecX
	cgVecP
	cgVecQ
	cgVecR
	cgVecZ
)

// rowLen returns the deterministic nonzero count of a row: a hash spreads
// rows between 50% and 150% of the average, like NPB's randomly generated
// sparse structure.
func cgRowLen(row, avg int) int {
	h := uint64(row)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	h ^= h >> 29
	spread := int(h % uint64(avg+1)) // 0..avg
	return avg/2 + spread            // avg/2 .. 3avg/2
}

// xorshift64 is the per-row column-index generator: cheap, deterministic,
// and reproducible across iterations (the matrix structure is fixed).
func xorshift64(s uint64) uint64 {
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	return s
}

// Streams partitions the rows statically across threads (OpenMP static
// schedule) and replays the CG iteration structure per thread:
//
//	for it in iterations:
//	  q = A*p        (stream aVal/aCol, gather p[col], store q)
//	  vector phase   (four streaming sweeps over the thread's slices)
func (c *cg) Streams(threads int) []trace.Stream {
	iters := c.tune.scale(c.p.iterations)
	streams := make([]trace.Stream, threads)
	for t := 0; t < threads; t++ {
		tt := t
		lo, hi := partition(c.p.rows, threads, t)
		n := uint64(c.p.rows)
		avg := c.p.nnzPerRow
		streams[t] = trace.Gen(func(emit func(trace.Ref) bool) {
			// Precompute the thread's starting nonzero offset so aVal/aCol
			// addresses are globally consistent.
			startNNZ := uint64(0)
			for r := 0; r < lo; r++ {
				startNNZ += uint64(cgRowLen(r, avg))
			}
			for it := 0; it < iters; it++ {
				// --- SpMV: q[i] = sum_j A[i,j] * p[col[i,j]] ---
				k := startNNZ
				for row := lo; row < hi; row++ {
					rl := cgRowLen(row, avg)
					seed := uint64(row)*0xBF58476D1CE4E5B9 + 1
					for j := 0; j < rl; j++ {
						// Column index: fixed pseudo-random structure.
						seed = xorshift64(seed)
						col := seed % n
						// Stream the matrix value (independent, 2-cycle FMA).
						if !emit(trace.Ref{Addr: base(cgAVal) + k*8, Kind: trace.Load, Work: 2}) {
							return
						}
						// Stream the column index (packed int32).
						if !emit(trace.Ref{Addr: base(cgACol) + k*4, Kind: trace.Load, Work: 0}) {
							return
						}
						// Gather p[col]: address depends on the index load.
						if !emit(trace.Ref{Addr: base(cgVecP) + col*8, Kind: trace.Load, Dep: true, Work: 0}) {
							return
						}
						k++
					}
					// Store the accumulated q[row].
					if !emit(trace.Ref{Addr: base(cgVecQ) + uint64(row)*8, Kind: trace.Store, Work: 2}) {
						return
					}
				}
				// --- Vector phase: z += alpha p; r -= alpha q; rho = r.r;
				// p = r + beta p --- four streaming sweeps over the
				// thread's slice.
				for _, sweep := range [][2]int{
					{cgVecZ, cgVecP}, {cgVecR, cgVecQ}, {cgVecR, cgVecR}, {cgVecP, cgVecR},
				} {
					for i := lo; i < hi; i++ {
						if !emit(trace.Ref{Addr: base(sweep[1]) + uint64(i)*8, Kind: trace.Load, Work: 1}) {
							return
						}
						if !emit(trace.Ref{Addr: base(sweep[0]) + uint64(i)*8, Kind: trace.Store, Work: 1}) {
							return
						}
					}
				}
				// Iteration barrier + dot-product reductions.
				if !emitBarrier(emit, tt, it) {
					return
				}
			}
		})
	}
	return streams
}
