package workload

import (
	"fmt"

	"repro/internal/trace"
)

// mgParams sizes the multigrid kernel per class: the finest grid is n^3
// 8-byte cells; the V-cycle adds coarser grids of 1/8 the size each.
type mgParams struct {
	n          int // finest grid dimension (power of two)
	levels     int // V-cycle depth
	iterations int
}

var mgClasses = map[Class]mgParams{
	S: {n: 16, levels: 3, iterations: 40},
	W: {n: 32, levels: 4, iterations: 12},
	A: {n: 48, levels: 4, iterations: 3},
	B: {n: 64, levels: 5, iterations: 2},
	C: {n: 96, levels: 5, iterations: 2},
}

// mg is the multigrid dwarf (NPB MG): V-cycles over a hierarchy of 3D
// grids. The smoother is a 27-point stencil — affine neighbor loads with
// full memory-level parallelism — applied at every level, so the fine-grid
// sweeps stream like FT's passes while the coarse grids are cache-resident.
// MG is one of the six NPB programs the paper profiled; its contention
// falls between FT and CG.
type mg struct {
	class Class
	p     mgParams
	tune  Tuning
}

func init() {
	register("MG", "Structured grid: multigrid V-cycle on a 3D mesh",
		[]Class{S, W, A, B, C},
		func(class Class, tune Tuning) (Workload, error) {
			p, ok := mgClasses[class]
			if !ok {
				return nil, fmt.Errorf("workload MG: no class %q", class)
			}
			return &mg{class: class, p: p, tune: tune}, nil
		})
}

func (m *mg) Name() string        { return "MG" }
func (m *mg) Class() Class        { return m.class }
func (m *mg) Description() string { return Describe("MG") }

// FootprintBytes sums the grid hierarchy (u and r arrays per level).
func (m *mg) FootprintBytes() uint64 {
	var total uint64
	n := m.p.n
	for l := 0; l < m.p.levels && n >= 2; l++ {
		cells := uint64(n) * uint64(n) * uint64(n)
		total += cells * 8 * 2
		n /= 2
	}
	return total
}

const (
	mgU = iota // solution grids, one region per level (level packed in bits)
	mgR        // residual grids
)

// gridBase returns the base address of array arr at V-cycle level l. Levels
// are spaced 4 GB apart inside the array's region.
func mgGridBase(arr, level int) uint64 {
	return base(arr) + uint64(level)<<32
}

// Streams partitions each level's planes across threads. One iteration is
// a V-cycle: smooth+restrict down the hierarchy, then prolongate+smooth
// back up, with a barrier after each iteration.
func (m *mg) Streams(threads int) []trace.Stream {
	iters := m.tune.scale(m.p.iterations)
	p := m.p
	streams := make([]trace.Stream, threads)
	for t := 0; t < threads; t++ {
		tt := t
		streams[t] = trace.Gen(func(emit func(trace.Ref) bool) {
			// smooth sweeps level l's grid with a 27-point stencil: for
			// each cell, loads of the three adjacent planes (affine) and a
			// store of the updated cell.
			smooth := func(level, n int) bool {
				cells := n * n * n
				plane := uint64(n) * uint64(n) * 8
				lo, hi := partition(cells, threads, tt)
				ub := mgGridBase(mgU, level)
				rb := mgGridBase(mgR, level)
				for i := lo; i < hi; i++ {
					addr := ub + uint64(i)*8
					// Stencil: own cell, the plane above and below (the
					// row/column neighbors share cache lines with the
					// central load and are omitted).
					if !emit(trace.Ref{Addr: addr, Kind: trace.Load, Work: 4}) {
						return false
					}
					if !emit(trace.Ref{Addr: addr + plane, Kind: trace.Load, Work: 2}) {
						return false
					}
					if addr >= ub+plane {
						if !emit(trace.Ref{Addr: addr - plane, Kind: trace.Load, Work: 2}) {
							return false
						}
					}
					if !emit(trace.Ref{Addr: rb + uint64(i)*8, Kind: trace.Store, Work: 3}) {
						return false
					}
				}
				return true
			}
			// transfer moves data between level l and l+1 (restrict) or
			// back (prolongate): a strided read of the fine grid and a
			// sequential write of the coarse one, or vice versa.
			transfer := func(fineLevel, fineN int, down bool) bool {
				coarseN := fineN / 2
				cells := coarseN * coarseN * coarseN
				lo, hi := partition(cells, threads, tt)
				fb := mgGridBase(mgR, fineLevel)
				cb := mgGridBase(mgR, fineLevel+1)
				for i := lo; i < hi; i++ {
					// The coarse cell (x,y,z) maps to fine (2x,2y,2z).
					x := i % coarseN
					y := (i / coarseN) % coarseN
					z := i / (coarseN * coarseN)
					fi := uint64(2*z)*uint64(fineN)*uint64(fineN) + uint64(2*y)*uint64(fineN) + uint64(2*x)
					if down {
						if !emit(trace.Ref{Addr: fb + fi*8, Kind: trace.Load, Work: 3}) {
							return false
						}
						if !emit(trace.Ref{Addr: cb + uint64(i)*8, Kind: trace.Store, Work: 1}) {
							return false
						}
					} else {
						if !emit(trace.Ref{Addr: cb + uint64(i)*8, Kind: trace.Load, Work: 1}) {
							return false
						}
						if !emit(trace.Ref{Addr: fb + fi*8, Kind: trace.Store, Work: 3}) {
							return false
						}
					}
				}
				return true
			}
			for it := 0; it < iters; it++ {
				// Down-sweep: smooth then restrict at each level.
				n := p.n
				for l := 0; l < p.levels-1 && n >= 4; l++ {
					if !smooth(l, n) || !transfer(l, n, true) {
						return
					}
					n /= 2
				}
				// Bottom solve: a few smoothing passes on the coarsest grid.
				for pass := 0; pass < 2; pass++ {
					if !smooth(p.levels-1, n) {
						return
					}
				}
				// Up-sweep: prolongate then smooth.
				for l := p.levels - 2; l >= 0; l-- {
					fineN := p.n >> l
					if fineN < 4 {
						continue
					}
					if !transfer(l, fineN, false) {
						return
					}
					if !smooth(l, fineN) {
						return
					}
				}
				if !emitBarrier(emit, tt, it) {
					return
				}
			}
		})
	}
	return streams
}
