package workload

import (
	"fmt"

	"repro/internal/trace"
)

// isParams sizes the integer-sort kernel per class. As in NPB IS, the
// ranking histogram spans the key range, so from class W upward it exceeds
// the LLC together with the key arrays.
type isParams struct {
	keys       int // number of 4-byte keys
	keyRange   int // histogram entries (NPB's Bmax)
	iterations int
}

var isClasses = map[Class]isParams{
	S: {keys: 16 << 10, keyRange: 8 << 10, iterations: 40},
	W: {keys: 128 << 10, keyRange: 128 << 10, iterations: 6},
	A: {keys: 256 << 10, keyRange: 256 << 10, iterations: 4},
	B: {keys: 512 << 10, keyRange: 512 << 10, iterations: 2},
	C: {keys: 1 << 20, keyRange: 1 << 20, iterations: 2},
}

// is is the parallel sorting dwarf: NPB's bucket/counting sort on integers.
// Its traffic mixes streaming key reads (independent, 16 keys per line)
// with histogram increments and ranked scatter stores whose ADDRESSES come
// from key values — genuinely data-dependent accesses with little
// memory-level parallelism. The dependent portion self-throttles, which is
// why the paper measures only moderate contention growth for IS despite
// its large footprint.
type is struct {
	class Class
	p     isParams
	tune  Tuning
}

func init() {
	register("IS", "Parallel sorting: bucket sort on integers",
		[]Class{S, W, A, B, C},
		func(class Class, tune Tuning) (Workload, error) {
			p, ok := isClasses[class]
			if !ok {
				return nil, fmt.Errorf("workload IS: no class %q", class)
			}
			return &is{class: class, p: p, tune: tune}, nil
		})
}

func (w *is) Name() string        { return "IS" }
func (w *is) Class() Class        { return w.class }
func (w *is) Description() string { return Describe("IS") }

// FootprintBytes covers input keys, output keys and the key-range
// histogram.
func (w *is) FootprintBytes() uint64 {
	return uint64(w.p.keys)*4*2 + uint64(w.p.keyRange)*4
}

const (
	isKeys = iota
	isHist
	isOutput
)

// Streams partitions the key array statically. Each iteration has the
// three phases of NPB IS: count (stream keys, bump the key's histogram
// entry), rank (prefix-sum sweep over the histogram), and permute (stream
// keys again, store each at its rank), followed by the iteration barrier.
func (w *is) Streams(threads int) []trace.Stream {
	iters := w.tune.scale(w.p.iterations)
	streams := make([]trace.Stream, threads)
	for t := 0; t < threads; t++ {
		tt := t
		lo, hi := partition(w.p.keys, threads, t)
		seed := uint64(seedFor("IS", w.class, t)) | 1
		p := w.p
		keys := uint64(p.keys)
		streams[t] = trace.Gen(func(emit func(trace.Ref) bool) {
			for it := 0; it < iters; it++ {
				// --- Count phase: load key (with the shift/mask work of
				// key extraction), then increment its histogram entry. The
				// entry LOAD is address-dependent on the key; the store to
				// the same line drains through the write buffer. ---
				rng := seed
				for i := lo; i < hi; i++ {
					if !emit(trace.Ref{Addr: base(isKeys) + uint64(i)*4, Kind: trace.Load, Work: 4}) {
						return
					}
					rng = xorshift64(rng)
					entry := rng % uint64(p.keyRange)
					if !emit(trace.Ref{Addr: base(isHist) + entry*4, Kind: trace.Load, Dep: true, Work: 1}) {
						return
					}
					if !emit(trace.Ref{Addr: base(isHist) + entry*4, Kind: trace.Store, Work: 1}) {
						return
					}
				}
				// --- Rank phase: prefix-sum sweep over the thread's share
				// of the histogram (independent streaming). ---
				hlo, hhi := partition(p.keyRange, threads, tt)
				for b := hlo; b < hhi; b++ {
					if !emit(trace.Ref{Addr: base(isHist) + uint64(b)*4, Kind: trace.Load, Work: 1}) {
						return
					}
				}
				// --- Permute phase: reload keys; each key's destination
				// comes from a rank lookup through the histogram (an
				// address-dependent load), then the key is scattered into
				// the output through the write buffer. ---
				rng = seed
				for i := lo; i < hi; i++ {
					if !emit(trace.Ref{Addr: base(isKeys) + uint64(i)*4, Kind: trace.Load, Work: 4}) {
						return
					}
					rng = xorshift64(rng)
					entry := rng % uint64(p.keyRange)
					if !emit(trace.Ref{Addr: base(isHist) + entry*4, Kind: trace.Load, Dep: true, Work: 1}) {
						return
					}
					// The store serializes through the bucket pointer's
					// read-modify-write (key_buff_ptr[key]++ in NPB IS).
					pos := rng % keys
					if !emit(trace.Ref{Addr: base(isOutput) + pos*4, Kind: trace.Store, Dep: true, Work: 1}) {
						return
					}
				}
				if !emitBarrier(emit, tt, it) {
					return
				}
			}
		})
	}
	return streams
}
