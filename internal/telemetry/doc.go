// Package telemetry is the simulator's observability layer: a metrics
// registry (counters, gauges, windowed histograms) with Prometheus-text
// and expvar export, simulated-time series for the in-run sampler, and a
// structured NDJSON run tracer built on log/slog.
//
// The package is deliberately independent of the simulator packages so it
// can sit below all of them: internal/sim drives the sampler from its
// event loop, internal/experiments traces runner spans, internal/model
// and internal/server count fits, declines and requests, and the CLIs
// export snapshots. Everything here obeys two contracts:
//
//   - Zero cost when off. Every integration point is behind a nil check
//     (a nil *Tracer, a nil *Registry, a nil sampling config), so a run
//     with telemetry disabled executes the exact pre-telemetry hot path.
//     The sim package pins this with allocation tests.
//
//   - Deterministic output. Metric exposition is sorted by name and the
//     tracer suppresses wall-clock timestamps by default, so identical
//     simulations produce byte-identical artifacts — which lets the
//     golden tests pin telemetry output exactly like any other artifact.
//
// # Registry concurrency contract
//
// A Registry and every instrument it hands out are safe for concurrent
// use by any number of goroutines:
//
//   - Counters and gauges are single atomic words; Inc/Add/Set/Value
//     never take a lock and never allocate after the instrument exists.
//
//   - Instrument lookup (Counter/Gauge/Histogram by name) is a
//     mutex-guarded map access returning a stable pointer: the first call
//     for a name creates the instrument, every later call — from any
//     goroutine — returns the same one. Callers on hot paths should look
//     up once and hold the pointer.
//
//   - Histograms serialize Observe under a per-instrument mutex; bounds
//     are fixed at creation, so observation never resizes anything.
//
//   - WritePrometheus takes a point-in-time snapshot under the registry
//     lock and writes families sorted by name; concurrent updates during
//     a scrape are each either fully included or fully excluded.
//
// # Tracer concurrency contract
//
// A *Tracer is nil-safe — Enabled() on a nil receiver reports false, so
// call sites guard a whole Emit with one branch and pay nothing when
// tracing is off. A non-nil Tracer serializes writes through its slog
// handler: concurrent Emits interleave as whole NDJSON lines, never as
// partial records. Event names are compile-time literals in the
// registered namespaces (enforced by the tracelint analyzer), so the
// trace surface stays greppable and golden-testable.
package telemetry
