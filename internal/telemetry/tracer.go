package telemetry

import (
	"io"
	"log/slog"
	"time"
)

// Tracer emits structured run events as NDJSON (one JSON object per
// line) through a log/slog JSON handler. Events carry an "event" name
// plus caller-supplied attributes; the built-in wall-clock timestamp is
// suppressed so that identical simulations produce byte-identical traces
// (wall-clock durations, when wanted, are passed as explicit attributes
// by callers that accept nondeterministic output, e.g. runner spans).
//
// A nil *Tracer is valid and ignores every call — the zero-cost-when-off
// contract: integration points do a single nil check and emit nothing.
// A non-nil Tracer serializes concurrent emitters through the handler's
// own locking (slog handlers lock around each record write).
type Tracer struct {
	log *slog.Logger

	// Span support (span.go). epoch anchors the tracer's monotonic
	// timebase; clock returns the offset from it (replaceable in tests
	// for byte-deterministic span records); ids generates span/trace IDs.
	epoch time.Time
	clock func() time.Duration
	ids   *IDSource
}

// NewTracer returns a tracer writing NDJSON events to w. Wall-clock
// timestamps are stripped from every record and the message key is
// renamed to "event".
func NewTracer(w io.Writer) *Tracer {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) != 0 {
				return a
			}
			switch a.Key {
			case slog.TimeKey, slog.LevelKey:
				// Drop wall-clock time and level: trace events are named by
				// "event" and ordered by file position, and determinism is
				// part of the artifact contract.
				return slog.Attr{}
			case slog.MessageKey:
				a.Key = "event"
			}
			return a
		},
	})
	t := &Tracer{log: slog.New(h), epoch: time.Now(), ids: NewIDSource()}
	t.clock = func() time.Duration { return time.Since(t.epoch) }
	return t
}

// SeedIDs switches the tracer to a deterministic ID sequence for the
// given seed (see SeededIDSource). Call before the first StartSpan; it is
// not synchronized with concurrent span starts.
func (t *Tracer) SeedIDs(seed int64) {
	if t == nil {
		return
	}
	t.ids = SeededIDSource(seed)
}

// now returns the monotonic offset from the tracer epoch.
func (t *Tracer) now() time.Duration { return t.clock() }

// Enabled reports whether events will be recorded (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records one event with the given attributes. args follow slog
// conventions (alternating key, value). A nil tracer ignores the call.
func (t *Tracer) Emit(event string, args ...any) {
	if t == nil {
		return
	}
	t.log.Info(event, args...)
}
