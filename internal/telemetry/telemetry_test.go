package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_total")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4", c.Value())
	}
	if r.Counter("runs_total") != c {
		t.Error("Counter should return the same instance per name")
	}
	g := r.Gauge("queue_depth")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Errorf("gauge = %v, want 2.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Errorf("sum = %v, want 556.5", h.Sum())
	}
	_, counts, _, _, _ := h.snapshot()
	// 0.5 and 1 land in le=1; 5 in le=10; 50 in le=100; 500 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], w)
		}
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("util").Set(0.85)
	h := r.Histogram("wait_cycles", 10, 100)
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var first string
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.String()
			continue
		}
		if buf.String() != first {
			t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", first, buf.String())
		}
	}
	want := `# TYPE a_total counter
a_total 1
# TYPE b_total counter
b_total 2
# TYPE util gauge
util 0.85
# TYPE wait_cycles histogram
wait_cycles_bucket{le="10"} 1
wait_cycles_bucket{le="100"} 2
wait_cycles_bucket{le="+Inf"} 3
wait_cycles_sum 5055
wait_cycles_count 3
`
	if first != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", first, want)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h", 10).Observe(float64(i % 20))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestTimeSeries(t *testing.T) {
	s := NewTimeSeries("mc0.occupancy", "requests", 4)
	for i := uint64(1); i <= 4; i++ {
		s.Append(i*100, float64(i))
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	if s.Mean() != 2.5 {
		t.Errorf("mean = %v, want 2.5", s.Mean())
	}
	if s.Max() != 4 {
		t.Errorf("max = %v, want 4", s.Max())
	}
	x, y := s.XY()
	if x[2] != 300 || y[2] != 3 {
		t.Errorf("XY()[2] = (%v, %v), want (300, 3)", x[2], y[2])
	}
}

func TestWriteTimelineDat(t *testing.T) {
	a := NewTimeSeries("a", "", 2)
	b := NewTimeSeries("b", "", 2)
	a.Append(100, 1)
	a.Append(200, 0.25)
	b.Append(100, 2)
	b.Append(200, 3)
	var buf bytes.Buffer
	if err := WriteTimelineDat(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	want := "# cycles a b\n100 1 2\n200 0.25 3\n"
	if buf.String() != want {
		t.Errorf("timeline = %q, want %q", buf.String(), want)
	}

	// Ragged series must be rejected, not silently misaligned.
	b.Append(300, 4)
	if err := WriteTimelineDat(io.Discard, a, b); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestTracerNDJSONDeterministic(t *testing.T) {
	emit := func() string {
		var buf bytes.Buffer
		tr := NewTracer(&buf)
		tr.Emit("run.start", "machine", "IntelUMA8", "cores", 4)
		tr.Emit("run.end", "makespan", uint64(12345), "offchip", 17)
		return buf.String()
	}
	first := emit()
	if emit() != first {
		t.Fatal("tracer output not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(first), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2:\n%s", len(lines), first)
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if ev["event"] != "run.start" || ev["machine"] != "IntelUMA8" {
		t.Errorf("unexpected event: %v", ev)
	}
	if _, hasTime := ev["time"]; hasTime {
		t.Error("wall-clock time leaked into trace output")
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Emit("anything", "k", "v") // must not panic
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runs_total").Add(7)
	addr, stop, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d\n%s", path, resp.StatusCode, body)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "runs_total 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "telemetry") {
		t.Errorf("/debug/vars missing telemetry var:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ missing index:\n%s", body)
	}
}

func TestHistogramQuantile(t *testing.T) {
	// Uniform 1..100 over bounds 10,20,...,100: every bucket holds 10
	// observations, so linear interpolation is exact at every rank.
	uniform := NewHistogram(10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
	for v := 1; v <= 100; v++ {
		uniform.Observe(float64(v))
	}
	// Sparse: a gap bucket between two occupied ones.
	sparse := NewHistogram(1, 2, 3, 4)
	for i := 0; i < 10; i++ {
		sparse.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		sparse.Observe(3.5)
	}
	// Overflow: everything in +Inf clamps to the top finite bound.
	over := NewHistogram(1, 2)
	over.Observe(99)

	cases := []struct {
		name string
		h    *Histogram
		q    float64
		want float64
	}{
		{"uniform p50", uniform, 0.50, 50},
		{"uniform p90", uniform, 0.90, 90},
		{"uniform p99", uniform, 0.99, 99},
		{"uniform p10", uniform, 0.10, 10},
		{"uniform p0 clamps", uniform, 0, 0},
		{"uniform p100", uniform, 1, 100},
		{"sparse p25 interpolates first bucket", sparse, 0.25, 0.5},
		{"sparse p75 lands past the gap", sparse, 0.75, 3.5},
		{"overflow clamps to top bound", over, 0.99, 2},
	}
	for _, c := range cases {
		if got := c.h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Quantile(%v) = %v, want %v", c.name, c.q, got, c.want)
		}
	}
	if got := NewHistogram(1, 2).Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram Quantile = %v, want NaN", got)
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_ms", 1, 10)
	h.ObserveExemplar(0.5, "aaaa")
	h.ObserveExemplar(0.9, "bbbb") // slower: replaces aaaa in le=1
	h.ObserveExemplar(0.2, "cccc") // faster: kept out
	h.ObserveExemplar(50, "dddd")  // +Inf bucket
	h.Observe(5)                   // no exemplar for le=10

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE req_ms histogram
req_ms_bucket{le="1"} 3 # {trace_id="bbbb"} 0.9
req_ms_bucket{le="10"} 4
req_ms_bucket{le="+Inf"} 5 # {trace_id="dddd"} 50
req_ms_sum 56.6
req_ms_count 5
`
	if buf.String() != want {
		t.Errorf("exposition with exemplars:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestExemplarFreeHistogramRendersUnchanged(t *testing.T) {
	plain, tagged := NewRegistry(), NewRegistry()
	plain.Histogram("h", 1, 2).Observe(1.5)
	tagged.Histogram("h", 1, 2).ObserveExemplar(1.5, "")
	var a, b bytes.Buffer
	if err := plain.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := tagged.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("empty-trace ObserveExemplar changed output:\n%s\nvs\n%s", a.String(), b.String())
	}
}
