package telemetry

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"sync"
	"time"
)

// Request-scoped span tracing layered on the nil-safe Tracer.
//
// A Span brackets one unit of work inside a request (admission wait, model
// predict, sim execute, ...). Spans form a tree: every span carries the
// 128-bit trace ID of its request plus its own 64-bit span ID, and records
// its parent's span ID so offline tools (cmd/traceview) can reconstruct the
// waterfall. Each span emits exactly one "span.end" NDJSON record when it
// ends — there is no separate start record, so a crashed request simply has
// a truncated tree rather than dangling opens.
//
// Timestamps are monotonic offsets (microseconds) from the owning Tracer's
// epoch, not wall-clock times: offsets from two different tracers (e.g. the
// loadgen client and the simserved server) are NOT comparable; only
// durations are. Tools that merge files must treat each file as its own
// timebase.
//
// The zero-cost-when-off contract extends to spans: StartSpan on a nil
// Tracer returns the zero Span, and End on the zero Span is a no-op.

// TraceID is a 128-bit request identifier, shared by every span of one
// request across processes (propagated via the W3C traceparent header).
type TraceID [16]byte

// SpanID is a 64-bit identifier for one span within a trace.
type SpanID [8]byte

// String returns the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String returns the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is all zeros (invalid per W3C trace-context).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is all zeros (invalid per W3C trace-context).
func (id SpanID) IsZero() bool { return id == SpanID{} }

// SpanContext identifies one span within one trace. It is the unit of
// propagation: the parent half travels in the traceparent header and in
// context.Context values.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether both halves are nonzero.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// Traceparent renders the context as a W3C traceparent header value,
// version 00 with the sampled flag set:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
func (sc SpanContext) Traceparent() string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = hex.AppendEncode(b, sc.Trace[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, sc.Span[:])
	b = append(b, "-01"...)
	return string(b)
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// version except ff, requires nonzero trace and span IDs, and ignores the
// trace flags. ok is false for anything malformed (including the empty
// string, so callers can pass r.Header.Get straight in).
func ParseTraceparent(s string) (sc SpanContext, ok bool) {
	// version(2) - traceid(32) - spanid(16) - flags(2)
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if s[0:2] == "ff" {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Trace[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Span[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sc, for propagating the
// current span across API layers (server handler → runner → checkpoints).
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the span context stored by ContextWithSpan.
// ok is false when none is present or it is invalid.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, sc.Valid()
}

// IDSource generates trace and span IDs. It is safe for concurrent use.
// The zero value is not usable; construct with NewIDSource or
// SeededIDSource.
type IDSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewIDSource returns an ID source seeded from the OS entropy pool.
func NewIDSource() *IDSource {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// The entropy pool is effectively infallible on supported
		// platforms; fall back to a fixed seed rather than panic in a
		// telemetry path.
		return SeededIDSource(1)
	}
	return SeededIDSource(int64(binary.LittleEndian.Uint64(b[:])))
}

// SeededIDSource returns an ID source producing a deterministic ID
// sequence for the given seed — the hook behind same-seed byte-identical
// span output in tests and golden artifacts.
func SeededIDSource(seed int64) *IDSource {
	return &IDSource{rng: rand.New(rand.NewSource(seed))}
}

// TraceID returns a new nonzero 128-bit trace ID.
func (s *IDSource) TraceID() TraceID {
	var id TraceID
	s.mu.Lock()
	binary.BigEndian.PutUint64(id[0:8], s.rng.Uint64())
	binary.BigEndian.PutUint64(id[8:16], s.rng.Uint64())
	s.mu.Unlock()
	if id.IsZero() {
		id[15] = 1
	}
	return id
}

// SpanID returns a new nonzero 64-bit span ID.
func (s *IDSource) SpanID() SpanID {
	var id SpanID
	s.mu.Lock()
	binary.BigEndian.PutUint64(id[:], s.rng.Uint64())
	s.mu.Unlock()
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

// splitmix64 is the finalizer from Vigna's SplitMix64 — a cheap bijective
// mixer used to derive well-spread IDs from (seed, sequence) pairs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSpanContext deterministically derives a root span context from a
// (seed, sequence) pair. The load generator uses this so that the trace ID
// of request #n under seed s is reproducible across runs — rerunning a
// schedule regenerates the same IDs, and two runs are distinguished by
// their seeds. Distinct (seed, seq) pairs map to distinct contexts with
// overwhelming probability (SplitMix64 is bijective per stream).
func DeriveSpanContext(seed, seq int64) SpanContext {
	var sc SpanContext
	x := splitmix64(uint64(seed)) ^ splitmix64(uint64(seq)*0x9e3779b97f4a7c15+0x85ebca6b)
	binary.BigEndian.PutUint64(sc.Trace[0:8], splitmix64(x))
	binary.BigEndian.PutUint64(sc.Trace[8:16], splitmix64(x+1))
	binary.BigEndian.PutUint64(sc.Span[:], splitmix64(x+2))
	if sc.Trace.IsZero() {
		sc.Trace[15] = 1
	}
	if sc.Span.IsZero() {
		sc.Span[7] = 1
	}
	return sc
}

// Span is one timed, named segment of a trace. The zero Span is valid and
// inert (End is a no-op) — the off-path value returned by a nil Tracer.
type Span struct {
	t      *Tracer
	name   string
	sc     SpanContext
	parent SpanID
	start  time.Duration
}

// Context returns the span's own context, for starting children or
// propagating via ContextWithSpan / Traceparent.
func (s Span) Context() SpanContext { return s.sc }

// Active reports whether the span will emit a record on End.
func (s Span) Active() bool { return s.t != nil }

// StartSpan starts a span as a child of parent. An invalid (zero) parent
// starts a new root trace with a fresh trace ID; a parent with a valid
// trace but zero span ID joins that trace as a root span (the server does
// this when a client sent a traceparent header: the client's span becomes
// the parent). On a nil Tracer it returns the zero Span. name must be a
// literal dotted identifier in a registered namespace (tracelint enforces
// this at vet time).
func (t *Tracer) StartSpan(parent SpanContext, name string) Span {
	if t == nil {
		return Span{}
	}
	sc := SpanContext{Trace: parent.Trace, Span: t.ids.SpanID()}
	if sc.Trace.IsZero() {
		sc.Trace = t.ids.TraceID()
	}
	return Span{t: t, name: name, sc: sc, parent: parent.Span, start: t.now()}
}

// StartSpanAt starts a root span with exactly the given context instead of
// generating IDs — the load generator's hook for pre-derived deterministic
// IDs (DeriveSpanContext). On a nil Tracer it returns the zero Span.
func (t *Tracer) StartSpanAt(sc SpanContext, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, sc: sc, start: t.now()}
}

// End emits the span's single "span.end" record: name, trace/span/parent
// IDs, start/end microsecond offsets from the tracer epoch, plus any extra
// attributes (slog key-value convention). End on the zero Span is a no-op.
func (s Span) End(args ...any) {
	if s.t == nil {
		return
	}
	end := s.t.now()
	kv := make([]any, 0, 12+len(args))
	kv = append(kv,
		"name", s.name,
		"trace", s.sc.Trace.String(),
		"span", s.sc.Span.String(),
	)
	if !s.parent.IsZero() {
		kv = append(kv, "parent", s.parent.String())
	}
	kv = append(kv,
		"start_us", offsetUs(s.start),
		"end_us", offsetUs(end),
	)
	kv = append(kv, args...)
	s.t.log.Info("span.end", kv...)
}

// offsetUs renders a monotonic offset as fractional microseconds: span
// timings need sub-µs resolution (the analytical tier answers in ~1.5 µs)
// but µs-scale readability in the NDJSON.
func offsetUs(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}
