package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// StartDebugServer serves live-inspection endpoints for long sweeps on
// addr (e.g. "localhost:6060"):
//
//	/metrics      Prometheus text exposition of reg (404 when reg is nil)
//	/debug/vars   expvar JSON, including the registry under "telemetry"
//	/debug/pprof  the standard pprof index (profile, heap, goroutine, ...)
//
// It returns the listener's resolved address (useful with port 0) and a
// shutdown function. The server runs on its own goroutine and uses its
// own mux, so importing this package does not pollute
// http.DefaultServeMux.
func StartDebugServer(addr string, reg *Registry) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	if reg != nil {
		publishExpvar(reg)
	}
	srv := &http.Server{Handler: mux}
	//simcheck:allow(leaklint) Serve returns when the listener is closed via the returned srv.Close hook
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

// publishExpvar exposes the registry snapshot as the expvar "telemetry"
// variable. Publishing the same name twice panics in expvar, so the
// variable is registered once and later registries are appended to the
// snapshot set.
var (
	expvarMu   sync.Mutex
	expvarRegs []*Registry
)

func publishExpvar(reg *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if len(expvarRegs) == 0 {
		expvar.Publish("telemetry", expvar.Func(func() any {
			expvarMu.Lock()
			regs := append([]*Registry(nil), expvarRegs...)
			expvarMu.Unlock()
			merged := map[string]float64{}
			for _, r := range regs {
				for k, v := range r.Snapshot() {
					merged[k] = v
				}
			}
			return merged
		}))
	}
	expvarRegs = append(expvarRegs, reg)
}
