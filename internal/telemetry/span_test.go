package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	src := SeededIDSource(7)
	sc := SpanContext{Trace: src.TraceID(), Span: src.SpanID()}
	h := sc.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("malformed traceparent %q", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span
		"00-4bf92f3577b34da6a3ce929d0e0eXXXX-00f067aa0ba902b7-01", // non-hex
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", s)
		}
	}
	good := "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"
	if _, ok := ParseTraceparent(good); !ok {
		t.Errorf("ParseTraceparent(%q) rejected, want accept (future version, flags ignored)", good)
	}
}

func TestSpanContextPropagation(t *testing.T) {
	ctx := context.Background()
	if _, ok := SpanFromContext(ctx); ok {
		t.Fatal("empty context reported a span")
	}
	src := SeededIDSource(3)
	sc := SpanContext{Trace: src.TraceID(), Span: src.SpanID()}
	got, ok := SpanFromContext(ContextWithSpan(ctx, sc))
	if !ok || got != sc {
		t.Fatalf("got %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestDeriveSpanContextDeterministicAndDistinct(t *testing.T) {
	a := DeriveSpanContext(42, 0)
	if a != DeriveSpanContext(42, 0) {
		t.Fatal("same (seed, seq) gave different contexts")
	}
	if !a.Valid() {
		t.Fatal("derived context invalid")
	}
	seen := map[TraceID]bool{}
	for seq := int64(0); seq < 1000; seq++ {
		for _, seed := range []int64{1, 2, 42} {
			id := DeriveSpanContext(seed, seq).Trace
			if seen[id] {
				t.Fatalf("trace ID collision at seed=%d seq=%d", seed, seq)
			}
			seen[id] = true
		}
	}
}

// deterministicTracer pins both ID generation and the clock so span
// output is byte-comparable across runs.
func deterministicTracer(buf *bytes.Buffer, seed int64) *Tracer {
	tr := NewTracer(buf)
	tr.SeedIDs(seed)
	tick := time.Duration(0)
	tr.clock = func() time.Duration {
		tick += 10 * time.Microsecond
		return tick
	}
	return tr
}

func emitSampleSpans(seed int64) string {
	var buf bytes.Buffer
	tr := deterministicTracer(&buf, seed)
	root := tr.StartSpan(SpanContext{}, "server.request")
	parse := tr.StartSpan(root.Context(), "server.parse")
	parse.End("ok", true)
	sim := tr.StartSpan(root.Context(), "server.sim")
	sim.End()
	root.End("status", 200, "tier", "analytical")
	return buf.String()
}

func TestSpanOutputSameSeedDeterministic(t *testing.T) {
	a, b := emitSampleSpans(11), emitSampleSpans(11)
	if a != b {
		t.Fatalf("same-seed span output differs:\n%s\nvs\n%s", a, b)
	}
	if c := emitSampleSpans(12); c == a {
		t.Fatal("different seeds produced identical span IDs")
	}
}

func TestSpanTreeStructure(t *testing.T) {
	out := emitSampleSpans(5)
	type rec struct {
		Event   string  `json:"event"`
		Name    string  `json:"name"`
		Trace   string  `json:"trace"`
		Span    string  `json:"span"`
		Parent  string  `json:"parent"`
		StartUs float64 `json:"start_us"`
		EndUs   float64 `json:"end_us"`
	}
	var recs []rec
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		var r rec
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Children end before the root (emission order), all share one trace.
	byName := map[string]rec{}
	for _, r := range recs {
		if r.Event != "span.end" {
			t.Fatalf("event = %q, want span.end", r.Event)
		}
		byName[r.Name] = r
	}
	root, parse, sim := byName["server.request"], byName["server.parse"], byName["server.sim"]
	if root.Parent != "" {
		t.Fatalf("root has parent %q", root.Parent)
	}
	if len(root.Trace) != 32 || len(root.Span) != 16 {
		t.Fatalf("ID widths: trace %q span %q", root.Trace, root.Span)
	}
	for _, child := range []rec{parse, sim} {
		if child.Trace != root.Trace {
			t.Fatalf("child trace %q != root trace %q", child.Trace, root.Trace)
		}
		if child.Parent != root.Span {
			t.Fatalf("child parent %q != root span %q", child.Parent, root.Span)
		}
		if child.EndUs < child.StartUs {
			t.Fatalf("child ends (%v) before it starts (%v)", child.EndUs, child.StartUs)
		}
	}
	if !(root.StartUs < parse.StartUs && parse.EndUs <= root.EndUs) {
		t.Fatalf("child [%v,%v] not within root [%v,%v]",
			parse.StartUs, parse.EndUs, root.StartUs, root.EndUs)
	}
}

func TestSpanJoinsClientTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := deterministicTracer(&buf, 9)
	client := DeriveSpanContext(7, 3)
	root := tr.StartSpan(client, "server.request")
	if got := root.Context().Trace; got != client.Trace {
		t.Fatalf("server root trace %s, want client trace %s", got, client.Trace)
	}
	root.End()
	if !strings.Contains(buf.String(), `"parent":"`+client.Span.String()+`"`) {
		t.Fatalf("server root should record client span as parent:\n%s", buf.String())
	}
}

func TestNilTracerSpansNoop(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan(SpanContext{}, "server.request")
	if sp.Active() {
		t.Fatal("nil tracer returned an active span")
	}
	sp.End("k", 1) // must not panic
	tr.StartSpanAt(DeriveSpanContext(1, 1), "load.request").End()
	tr.SeedIDs(4)
}

func TestSpanZeroAllocWhenOff(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan(SpanContext{}, "server.request")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer StartSpan/End allocates %.1f/op, want 0", allocs)
	}
}
