package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as a float64. The
// zero value is ready to use; all methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: each bucket counts observations <= its upper bound, plus an
// implicit +Inf bucket). Bounds must be sorted ascending. Methods are
// safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	total  uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.counts[sort.SearchFloat64s(h.bounds, v)]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Registry is a named collection of metrics. The zero value is ready to
// use; registration and export are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later bounds are ignored for an existing name).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns every scalar metric (counters and gauges, histograms
// as _count/_sum pairs) as a name->value map, for expvar publishing.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+2*len(r.histograms))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = h.Sum()
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, sorted by metric name so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(histograms) {
		bounds, counts, sum, total := histograms[name].snapshot()
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := uint64(0)
		for i, b := range bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum); err != nil {
				return err
			}
		}
		cum += counts[len(bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, cum, name, formatFloat(sum), name, total); err != nil {
			return err
		}
	}
	return nil
}

// snapshot copies the histogram state for export.
func (h *Histogram) snapshot() (bounds []float64, counts []uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bounds, append([]uint64(nil), h.counts...), h.sum, h.total
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatFloat renders a float without trailing-zero noise ("0.85", "12",
// "2.333333"), keeping exposition output stable across platforms.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
