package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as a float64. The
// zero value is ready to use; all methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: each bucket counts observations <= its upper bound, plus an
// implicit +Inf bucket). Bounds must be sorted ascending. Methods are
// safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	total  uint64
	// exemplars holds, per bucket, the trace ID of the slowest observation
	// recorded via ObserveExemplar. Allocated lazily so histograms that
	// never see exemplars (tracing off) pay nothing and render unchanged.
	exemplars []exemplar
}

// exemplar ties a bucket's worst observation to the trace that caused it,
// in the spirit of OpenMetrics exemplars: a metrics scrape answers "which
// request was that" without joining logs by hand.
type exemplar struct {
	trace string
	value float64
	set   bool
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.counts[sort.SearchFloat64s(h.bounds, v)]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// ObserveExemplar records one sample and, when trace is nonempty, attaches
// it as the bucket's exemplar if it is the slowest observation that bucket
// has seen. With an empty trace it is equivalent to Observe.
func (h *Histogram) ObserveExemplar(v float64, trace string) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
	if trace != "" {
		if h.exemplars == nil {
			h.exemplars = make([]exemplar, len(h.counts))
		}
		if e := &h.exemplars[i]; !e.set || v >= e.value {
			*e = exemplar{trace: trace, value: v, set: true}
		}
	}
	h.mu.Unlock()
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket containing the target rank, the standard
// fixed-bucket estimate (Prometheus histogram_quantile). Values below the
// first bound interpolate from zero, so the estimate assumes non-negative
// observations. Observations in the +Inf bucket clamp to the highest
// finite bound. An empty histogram returns NaN.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 || len(h.bounds) == 0 {
		return math.NaN()
	}
	rank := q * float64(h.total)
	if rank < 0 {
		rank = 0
	}
	if rank > float64(h.total) {
		rank = float64(h.total)
	}
	cum := 0.0
	for i, b := range h.bounds {
		next := cum + float64(h.counts[i])
		if next >= rank && h.counts[i] > 0 {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := rank - cum
			if frac < 0 {
				// rank landed in a preceding empty bucket; clamp to this
				// bucket's lower edge.
				frac = 0
			}
			return lower + (b-lower)*frac/float64(h.counts[i])
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Registry is a named collection of metrics. The zero value is ready to
// use; registration and export are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later bounds are ignored for an existing name).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns every scalar metric (counters and gauges, histograms
// as _count/_sum pairs) as a name->value map, for expvar publishing.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+2*len(r.histograms))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = h.Sum()
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, sorted by metric name so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(histograms) {
		bounds, counts, sum, total, exemplars := histograms[name].snapshot()
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := uint64(0)
		for i, b := range bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n",
				name, formatFloat(b), cum, exemplarSuffix(exemplars, i)); err != nil {
				return err
			}
		}
		cum += counts[len(bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n%s_sum %s\n%s_count %d\n",
			name, cum, exemplarSuffix(exemplars, len(bounds)), name, formatFloat(sum), name, total); err != nil {
			return err
		}
	}
	return nil
}

// exemplarSuffix renders an OpenMetrics-style exemplar annotation for one
// bucket line, or "" when the bucket has none — histograms fed only by
// Observe render byte-identically to the pre-exemplar format.
func exemplarSuffix(exemplars []exemplar, i int) string {
	if i >= len(exemplars) || !exemplars[i].set {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s", exemplars[i].trace, formatFloat(exemplars[i].value))
}

// snapshot copies the histogram state for export.
func (h *Histogram) snapshot() (bounds []float64, counts []uint64, sum float64, total uint64, exemplars []exemplar) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bounds, append([]uint64(nil), h.counts...), h.sum, h.total, append([]exemplar(nil), h.exemplars...)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// formatFloat renders a float without trailing-zero noise ("0.85", "12",
// "2.333333"), keeping exposition output stable across platforms.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
