package telemetry

import (
	"errors"
	"fmt"
	"io"
)

// TimeSeries is one sampled quantity over simulated time: a name, a unit
// and parallel (cycle, value) slices. The in-run sampler appends to it
// from the simulation's own event loop, so it needs no locking — one
// simulation runs on one goroutine — and appends amortize to well under
// one allocation per sample, the bound the telemetry alloc test pins.
type TimeSeries struct {
	// Name identifies the series ("mc0.occupancy", "core3.stall_frac").
	Name string
	// Unit documents the value dimension ("requests", "fraction").
	Unit string
	// T holds the sample times in simulated cycles, strictly increasing.
	T []uint64
	// V holds the sampled values, parallel to T.
	V []float64
}

// NewTimeSeries returns an empty series with capacity for hint samples.
func NewTimeSeries(name, unit string, hint int) *TimeSeries {
	return &TimeSeries{
		Name: name,
		Unit: unit,
		T:    make([]uint64, 0, hint),
		V:    make([]float64, 0, hint),
	}
}

// Append records one sample at simulated time t.
func (s *TimeSeries) Append(t uint64, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *TimeSeries) Len() int { return len(s.T) }

// Mean returns the arithmetic mean of the sampled values (0 if empty).
func (s *TimeSeries) Mean() float64 {
	if len(s.V) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.V {
		sum += v
	}
	return sum / float64(len(s.V))
}

// Max returns the largest sampled value (0 if empty).
func (s *TimeSeries) Max() float64 {
	max := 0.0
	for i, v := range s.V {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// XY returns the series as float64 x/y slices, the shape internal/viz
// charts consume.
func (s *TimeSeries) XY() (x, y []float64) {
	x = make([]float64, len(s.T))
	for i, t := range s.T {
		x[i] = float64(t)
	}
	return x, append([]float64(nil), s.V...)
}

// ErrRaggedSeries is returned by WriteTimelineDat when the series were
// not sampled on a common clock.
var ErrRaggedSeries = errors.New("telemetry: series have differing sample times")

// WriteTimelineDat renders series sampled on a common clock as a
// gnuplot-ready whitespace-separated table: one row per sample time, one
// column per series, with a header naming the columns. All series must
// have identical sample times (the in-run sampler guarantees this).
func WriteTimelineDat(w io.Writer, series ...*TimeSeries) error {
	if len(series) == 0 {
		return nil
	}
	n := series[0].Len()
	if _, err := fmt.Fprint(w, "# cycles"); err != nil {
		return err
	}
	for _, s := range series {
		if s.Len() != n {
			return fmt.Errorf("%w: %s has %d samples, %s has %d",
				ErrRaggedSeries, series[0].Name, n, s.Name, s.Len())
		}
		if _, err := fmt.Fprintf(w, " %s", s.Name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		t := series[0].T[i]
		if _, err := fmt.Fprintf(w, "%d", t); err != nil {
			return err
		}
		for _, s := range series {
			if s.T[i] != t {
				return fmt.Errorf("%w: %s sample %d at t=%d, %s at t=%d",
					ErrRaggedSeries, series[0].Name, i, t, s.Name, s.T[i])
			}
			if _, err := fmt.Fprintf(w, " %.6g", s.V[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
