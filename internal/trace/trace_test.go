package trace

import (
	"testing"
	"testing/quick"
)

func TestFromSliceAndCollect(t *testing.T) {
	refs := []Ref{
		{Addr: 0, Kind: Load, Work: 1},
		{Addr: 64, Kind: Store, Work: 2},
		{Addr: 128, Kind: Load, Dep: true},
	}
	got := Collect(FromSlice(refs), 0)
	if len(got) != 3 {
		t.Fatalf("collected %d refs", len(got))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("ref %d = %+v, want %+v", i, got[i], refs[i])
		}
	}
	// Exhausted stream keeps returning false.
	s := FromSlice(refs)
	Collect(s, 0)
	if _, ok := s.Next(); ok {
		t.Error("exhausted stream returned a ref")
	}
}

func TestCollectMax(t *testing.T) {
	s := StrideSpec{Count: 100, Stride: 8}.Stream()
	got := Collect(s, 10)
	if len(got) != 10 {
		t.Errorf("Collect(max=10) returned %d", len(got))
	}
}

func TestCount(t *testing.T) {
	if n := Count(StrideSpec{Count: 57, Stride: 64}.Stream()); n != 57 {
		t.Errorf("Count = %d, want 57", n)
	}
	if n := Count(FromSlice(nil)); n != 0 {
		t.Errorf("Count(empty) = %d", n)
	}
}

func TestStrideAddresses(t *testing.T) {
	sp := StrideSpec{Base: 1000, Stride: 64, Count: 4, Kind: Store, Work: 3}
	refs := Collect(sp.Stream(), 0)
	want := []uint64{1000, 1064, 1128, 1192}
	for i, w := range want {
		if refs[i].Addr != w {
			t.Errorf("addr %d = %d, want %d", i, refs[i].Addr, w)
		}
		if refs[i].Kind != Store || refs[i].Work != 3 {
			t.Errorf("ref %d metadata wrong: %+v", i, refs[i])
		}
	}
}

func TestConcatAndRepeat(t *testing.T) {
	a := StrideSpec{Base: 0, Stride: 8, Count: 2}
	b := StrideSpec{Base: 100, Stride: 8, Count: 3}
	refs := Collect(Concat(a.Maker(), b.Maker()), 0)
	if len(refs) != 5 {
		t.Fatalf("concat length = %d", len(refs))
	}
	if refs[2].Addr != 100 {
		t.Errorf("first b ref addr = %d", refs[2].Addr)
	}

	reps := Collect(Repeat(3, a.Maker()), 0)
	if len(reps) != 6 {
		t.Fatalf("repeat length = %d", len(reps))
	}
	if reps[2].Addr != 0 || reps[3].Addr != 8 {
		t.Errorf("repeat did not restart: %+v", reps)
	}
}

func TestRepeatZero(t *testing.T) {
	if n := Count(Repeat(0, StrideSpec{Count: 5}.Maker())); n != 0 {
		t.Errorf("Repeat(0) produced %d refs", n)
	}
}

func TestLimit(t *testing.T) {
	s := Limit(StrideSpec{Count: 100, Stride: 8}.Stream(), 7)
	if n := Count(s); n != 7 {
		t.Errorf("Limit = %d refs", n)
	}
	s = Limit(StrideSpec{Count: 3, Stride: 8}.Stream(), 10)
	if n := Count(s); n != 3 {
		t.Errorf("Limit beyond length = %d refs", n)
	}
}

func TestInterleave(t *testing.T) {
	a := StrideSpec{Base: 0, Stride: 8, Count: 2}.Stream()
	b := StrideSpec{Base: 1000, Stride: 8, Count: 4}.Stream()
	refs := Collect(Interleave(a, b), 0)
	if len(refs) != 6 {
		t.Fatalf("interleave length = %d", len(refs))
	}
	wantAddrs := []uint64{0, 1000, 8, 1008, 1016, 1024}
	for i, w := range wantAddrs {
		if refs[i].Addr != w {
			t.Errorf("interleave[%d] = %d, want %d", i, refs[i].Addr, w)
		}
	}
}

func TestCounting(t *testing.T) {
	var n int64
	s := Counting(StrideSpec{Count: 9, Stride: 8}.Stream(), &n)
	Count(s)
	if n != 9 {
		t.Errorf("counter = %d, want 9", n)
	}
}

func TestRandomSpecBoundsAndDeterminism(t *testing.T) {
	sp := RandomSpec{Base: 4096, Size: 8192, Align: 64, Count: 500, Seed: 11}
	refs1 := Collect(sp.Stream(), 0)
	refs2 := Collect(sp.Stream(), 0)
	if len(refs1) != 500 {
		t.Fatalf("count = %d", len(refs1))
	}
	for i, r := range refs1 {
		if r.Addr < 4096 || r.Addr >= 4096+8192 {
			t.Fatalf("ref %d addr %d out of bounds", i, r.Addr)
		}
		if r.Addr%64 != 0 {
			t.Fatalf("ref %d addr %d not aligned", i, r.Addr)
		}
		if refs2[i] != r {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, r, refs2[i])
		}
	}
}

func TestRandomSpecZeroSize(t *testing.T) {
	if n := Count(RandomSpec{Count: 5}.Stream()); n != 0 {
		t.Errorf("zero-size random produced %d refs", n)
	}
}

func TestGatherAddresses(t *testing.T) {
	sp := GatherSpec{Base: 1 << 20, ElemSize: 8, Idx: []uint32{0, 5, 2}, Kind: Load, Dep: true}
	refs := Collect(sp.Stream(), 0)
	want := []uint64{1 << 20, 1<<20 + 40, 1<<20 + 16}
	for i, w := range want {
		if refs[i].Addr != w {
			t.Errorf("gather[%d] = %d, want %d", i, refs[i].Addr, w)
		}
		if !refs[i].Dep {
			t.Errorf("gather[%d] should be dependent", i)
		}
	}
}

func TestChaseVisitsAllNodes(t *testing.T) {
	sp := ChaseSpec{Base: 0, NodeSize: 64, Nodes: 16, Count: 16, Seed: 5}
	refs := Collect(sp.Stream(), 0)
	if len(refs) != 16 {
		t.Fatalf("chase count = %d", len(refs))
	}
	seen := map[uint64]bool{}
	for _, r := range refs {
		if !r.Dep {
			t.Fatal("chase refs must be dependent")
		}
		if r.Addr%64 != 0 || r.Addr >= 16*64 {
			t.Fatalf("bad chase addr %d", r.Addr)
		}
		seen[r.Addr] = true
	}
	// A single cycle through all nodes visits each exactly once in 16 steps.
	if len(seen) != 16 {
		t.Errorf("chase visited %d distinct nodes, want 16", len(seen))
	}
}

func TestChaseEmpty(t *testing.T) {
	if n := Count(ChaseSpec{Nodes: 0, Count: 5}.Stream()); n != 0 {
		t.Errorf("empty chase produced %d refs", n)
	}
}

func TestGenStream(t *testing.T) {
	s := Gen(func(emit func(Ref) bool) {
		for i := 0; i < 10000; i++ {
			if !emit(Ref{Addr: uint64(i) * 64}) {
				return
			}
		}
	})
	refs := Collect(s, 0)
	if len(refs) != 10000 {
		t.Fatalf("gen produced %d refs", len(refs))
	}
	for i, r := range refs {
		if r.Addr != uint64(i)*64 {
			t.Fatalf("gen ref %d addr %d", i, r.Addr)
		}
	}
}

func TestGenStreamStopEarly(t *testing.T) {
	produced := make(chan int, 1)
	s := Gen(func(emit func(Ref) bool) {
		n := 0
		for i := 0; i < 1_000_000; i++ {
			if !emit(Ref{Addr: uint64(i)}) {
				break
			}
			n++
		}
		produced <- n
	})
	// Consume a few then stop.
	for i := 0; i < 10; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatal("stream ended early")
		}
	}
	StopAll(s)
	n := <-produced
	if n >= 1_000_000 {
		t.Errorf("generator ran to completion despite Stop (produced %d)", n)
	}
	// After stop the stream reports exhaustion.
	if _, ok := s.Next(); ok {
		t.Error("stopped stream yielded a ref")
	}
	// Stop is idempotent.
	StopAll(s)
}

func TestWorkSpec(t *testing.T) {
	refs := Collect(WorkSpec{Scratch: 128, Cycles: 1000}.Stream(), 0)
	if len(refs) != 1 || refs[0].Work != 1000 || refs[0].Addr != 128 {
		t.Errorf("work spec refs = %+v", refs)
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Error("Kind.String mismatch")
	}
	if Kind(9).String() != "unknown" {
		t.Error("unknown kind string")
	}
}

// Property: Concat length equals sum of part lengths.
func TestConcatLengthProperty(t *testing.T) {
	f := func(counts []uint8) bool {
		var makers []Maker
		want := 0
		for i, c := range counts {
			if i >= 8 {
				break
			}
			n := int(c % 50)
			want += n
			makers = append(makers, StrideSpec{Count: n, Stride: 8}.Maker())
		}
		return Count(Concat(makers...)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Repeat(n, m) yields n times the refs of one instance of m.
func TestRepeatLengthProperty(t *testing.T) {
	f := func(n, c uint8) bool {
		reps := int(n % 10)
		cnt := int(c % 30)
		m := StrideSpec{Count: cnt, Stride: 4}.Maker()
		return Count(Repeat(reps, m)) == reps*cnt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
