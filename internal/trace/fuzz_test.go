package trace

import (
	"bytes"
	"testing"
)

// encodeRefs is a test helper building a valid binary trace.
func encodeRefs(t testing.TB, refs []Ref) []byte {
	var buf bytes.Buffer
	if _, err := Write(&buf, FromSlice(refs)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzTraceRoundTrip feeds arbitrary bytes to the trace decoder. Two
// properties must hold for every input: decoding never panics (malformed
// data terminates the stream with ErrBadTrace at worst), and whatever
// references do decode survive a Write -> NewReader round trip exactly —
// the encoder must be able to represent anything the decoder can produce.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("RMTR"))
	f.Add([]byte{'R', 'M', 'T', 'R', 1, 0, 0, 0})
	f.Add([]byte{'R', 'M', 'T', 'R', 2, 0, 0, 0})                   // wrong version
	f.Add([]byte{'R', 'M', 'T', 'R', 1, 0, 0, 0, 0x07, 0xFF})       // truncated varint
	f.Add([]byte{'R', 'M', 'T', 'R', 1, 0, 0, 0, 0xFF, 0x00, 0x00}) // junk flags
	f.Add(encodeRefs(f, []Ref{
		{Addr: 4096, Work: 3},
		{Addr: 4160, Work: 0, Kind: Store},
		{Addr: 64, Dep: true},
		{Sync: true, Work: 50},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // header rejected; nothing more to check
		}
		var refs []Ref
		for len(refs) < 1<<16 {
			r, ok := s.Next()
			if !ok {
				break
			}
			refs = append(refs, r)
		}

		reenc := encodeRefs(t, refs)
		s2, err := NewReader(bytes.NewReader(reenc))
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
		for i, want := range refs {
			got, ok := s2.Next()
			if !ok {
				t.Fatalf("re-encoded trace ends at ref %d of %d", i, len(refs))
			}
			if got != want {
				t.Fatalf("ref %d: round trip %+v -> %+v", i, want, got)
			}
		}
		if _, ok := s2.Next(); ok {
			t.Fatalf("re-encoded trace has more than %d refs", len(refs))
		}
		if rep, ok := s2.(ErrorReporter); ok && rep.Err() != nil {
			t.Fatalf("re-encoded trace error: %v", rep.Err())
		}
		// Determinism: encoding the same refs twice is byte-identical.
		if again := encodeRefs(t, refs); !bytes.Equal(reenc, again) {
			t.Fatal("encoding is not deterministic")
		}
	})
}
