package trace

import "math/rand"

// StrideSpec describes a regular strided sweep over a memory region:
// Count references starting at Base, advancing Stride bytes each time, each
// preceded by Work computation cycles.
type StrideSpec struct {
	Base   uint64
	Stride uint64
	Count  int
	Kind   Kind
	Dep    bool
	Work   uint32
}

// Stream returns a fresh stream over the spec.
func (sp StrideSpec) Stream() Stream {
	return &strideStream{spec: sp}
}

// Maker returns a Maker for the spec.
func (sp StrideSpec) Maker() Maker {
	return func() Stream { return sp.Stream() }
}

type strideStream struct {
	spec StrideSpec
	i    int
}

func (s *strideStream) Next() (Ref, bool) {
	if s.i >= s.spec.Count {
		return Ref{}, false
	}
	r := Ref{
		Addr: s.spec.Base + uint64(s.i)*s.spec.Stride,
		Kind: s.spec.Kind,
		Dep:  s.spec.Dep,
		Work: s.spec.Work,
	}
	s.i++
	return r, true
}

// RandomSpec describes uniformly random accesses within [Base, Base+Size).
// Addresses are aligned to Align bytes (0 means byte-aligned). Each stream
// created from the spec uses its own rand source seeded with Seed, so
// repeated runs are reproducible.
type RandomSpec struct {
	Base  uint64
	Size  uint64
	Align uint64
	Count int
	Kind  Kind
	Dep   bool
	Work  uint32
	Seed  int64
}

// Stream returns a fresh stream over the spec.
func (sp RandomSpec) Stream() Stream {
	return &randomStream{spec: sp, rng: rand.New(rand.NewSource(sp.Seed))}
}

// Maker returns a Maker for the spec.
func (sp RandomSpec) Maker() Maker {
	return func() Stream { return sp.Stream() }
}

type randomStream struct {
	spec RandomSpec
	rng  *rand.Rand
	i    int
}

func (s *randomStream) Next() (Ref, bool) {
	if s.i >= s.spec.Count || s.spec.Size == 0 {
		return Ref{}, false
	}
	off := uint64(s.rng.Int63n(int64(s.spec.Size)))
	if s.spec.Align > 1 {
		off -= off % s.spec.Align
	}
	s.i++
	return Ref{
		Addr: s.spec.Base + off,
		Kind: s.spec.Kind,
		Dep:  s.spec.Dep,
		Work: s.spec.Work,
	}, true
}

// GatherSpec describes indexed accesses data[Idx[i]] over an element array
// at Base with ElemSize-byte elements — the access pattern of sparse matrix
// kernels (CG) and bucket sort (IS). Gathers are dependent loads by nature
// (the address comes from the index load), which GatherSpec models with
// Dep=true on every reference unless overridden.
type GatherSpec struct {
	Base     uint64
	ElemSize uint64
	Idx      []uint32
	Kind     Kind
	Dep      bool
	Work     uint32
}

// Stream returns a fresh stream over the spec. The index slice is shared,
// not copied.
func (sp GatherSpec) Stream() Stream {
	return &gatherStream{spec: sp}
}

// Maker returns a Maker for the spec.
func (sp GatherSpec) Maker() Maker {
	return func() Stream { return sp.Stream() }
}

type gatherStream struct {
	spec GatherSpec
	i    int
}

func (s *gatherStream) Next() (Ref, bool) {
	if s.i >= len(s.spec.Idx) {
		return Ref{}, false
	}
	idx := s.spec.Idx[s.i]
	s.i++
	return Ref{
		Addr: s.spec.Base + uint64(idx)*s.spec.ElemSize,
		Kind: s.spec.Kind,
		Dep:  s.spec.Dep,
		Work: s.spec.Work,
	}, true
}

// ChaseSpec describes a pointer chase: Count dependent loads whose addresses
// form a pseudo-random permutation cycle over a region of Nodes elements of
// NodeSize bytes starting at Base. Every load is dependent — the archetype
// of zero memory-level parallelism.
type ChaseSpec struct {
	Base     uint64
	NodeSize uint64
	Nodes    int
	Count    int
	Work     uint32
	Seed     int64
}

// Stream returns a fresh stream over the spec. The permutation is computed
// once per stream.
func (sp ChaseSpec) Stream() Stream {
	rng := rand.New(rand.NewSource(sp.Seed))
	perm := rng.Perm(sp.Nodes)
	// Build next-pointers forming a single cycle through the permutation.
	next := make([]int32, sp.Nodes)
	for i := 0; i < sp.Nodes; i++ {
		next[perm[i]] = int32(perm[(i+1)%sp.Nodes])
	}
	start := 0
	if sp.Nodes > 0 {
		start = perm[0]
	}
	return &chaseStream{spec: sp, next: next, cur: int32(start)}
}

// Maker returns a Maker for the spec.
func (sp ChaseSpec) Maker() Maker {
	return func() Stream { return sp.Stream() }
}

type chaseStream struct {
	spec ChaseSpec
	next []int32
	cur  int32
	i    int
}

func (s *chaseStream) Next() (Ref, bool) {
	if s.i >= s.spec.Count || s.spec.Nodes == 0 {
		return Ref{}, false
	}
	addr := s.spec.Base + uint64(s.cur)*s.spec.NodeSize
	s.cur = s.next[s.cur]
	s.i++
	return Ref{Addr: addr, Kind: Load, Dep: true, Work: s.spec.Work}, true
}

// WorkSpec emits no memory references but represents pure computation; it
// is expressed as a single reference-free marker via a zero-count stream
// plus work attached to the next real reference. Because the Stream
// interface carries work on references, WorkSpec instead yields a single
// load to a scratch address with the accumulated work. Scratch is chosen by
// the caller to be cache-resident so it never reaches off-chip memory.
type WorkSpec struct {
	Scratch uint64
	Cycles  uint32
}

// Stream returns the single-reference stream.
func (sp WorkSpec) Stream() Stream {
	return FromSlice([]Ref{{Addr: sp.Scratch, Kind: Load, Work: sp.Cycles}})
}

// Maker returns a Maker for the spec.
func (sp WorkSpec) Maker() Maker {
	return func() Stream { return sp.Stream() }
}
