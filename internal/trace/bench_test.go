package trace

import "testing"

func BenchmarkStrideStream(b *testing.B) {
	b.ReportAllocs()
	s := StrideSpec{Stride: 64, Count: 1 << 30}.Stream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Next(); !ok {
			b.Fatal("exhausted")
		}
	}
}

func BenchmarkGenStream(b *testing.B) {
	s := Gen(func(emit func(Ref) bool) {
		for i := uint64(0); ; i++ {
			if !emit(Ref{Addr: i * 64, Work: 1}) {
				return
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Next(); !ok {
			b.Fatal("exhausted")
		}
	}
	b.StopTimer()
	StopAll(s)
}
