// Package trace defines memory-reference streams: the interface between the
// workload kernels (which emit per-thread sequences of computation and
// memory accesses) and the multicore simulator (which executes them against
// a cache hierarchy and memory controllers).
//
// A reference models one memory instruction together with the computation
// that precedes it: "execute Work cycles, then issue a Load/Store at Addr".
// The Dep flag distinguishes dependent loads (the core cannot retire past
// them until the data returns — e.g. a pointer chase or an indexed gather)
// from independent accesses that can overlap with further execution while an
// MSHR is available (streaming reads, stores drained through a write
// buffer). The mix of dependent and independent references is what gives a
// workload its memory-level parallelism, and in turn the super-linear growth
// of contention the paper measures.
package trace

// Kind distinguishes loads from stores.
type Kind uint8

const (
	// Load is a read access.
	Load Kind = iota
	// Store is a write access.
	Store
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return "unknown"
	}
}

// Ref is one memory reference preceded by Work cycles of computation, or —
// when Sync is set — a barrier rendezvous point.
type Ref struct {
	// Addr is the byte address accessed (ignored for Sync refs).
	Addr uint64
	// Kind is Load or Store.
	Kind Kind
	// Dep marks a dependent access: the issuing core stalls until the data
	// returns before executing anything further.
	Dep bool
	// Sync marks a barrier: after retiring Work cycles, the thread blocks
	// until every thread of the program has reached the same barrier
	// ordinal. No memory access is performed. Threads that finish their
	// stream count as having arrived at all remaining barriers.
	Sync bool
	// Work is the number of computation cycles the core retires before
	// issuing this reference (for Sync, before arriving at the barrier).
	Work uint32
}

// Stream produces a sequence of references. Next returns the next reference
// and true, or a zero Ref and false when the stream is exhausted. Streams
// are single-consumer and not safe for concurrent use.
type Stream interface {
	Next() (Ref, bool)
}

// Maker constructs a fresh Stream positioned at its beginning. Workload
// phases are expressed as Makers so they can be repeated and concatenated.
type Maker func() Stream

// sliceStream iterates over a materialized reference slice.
type sliceStream struct {
	refs []Ref
	pos  int
}

// FromSlice returns a Stream over a materialized slice of references. The
// slice is not copied; the caller must not mutate it while streaming.
func FromSlice(refs []Ref) Stream {
	return &sliceStream{refs: refs}
}

func (s *sliceStream) Next() (Ref, bool) {
	if s.pos >= len(s.refs) {
		return Ref{}, false
	}
	r := s.refs[s.pos]
	s.pos++
	return r, true
}

// Collect drains a stream into a slice, up to max references (max <= 0
// means unbounded). Intended for tests and small inspection tasks, not for
// full workload traces.
func Collect(s Stream, max int) []Ref {
	var out []Ref
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		r, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Count drains a stream and returns the number of references it produced.
func Count(s Stream) int {
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			return n
		}
		n++
	}
}

// concatStream chains sub-streams end to end.
type concatStream struct {
	makers []Maker
	cur    Stream
	idx    int
}

// Concat returns a Stream that plays each maker's stream in order.
func Concat(makers ...Maker) Stream {
	return &concatStream{makers: makers}
}

func (c *concatStream) Next() (Ref, bool) {
	for {
		if c.cur == nil {
			if c.idx >= len(c.makers) {
				return Ref{}, false
			}
			c.cur = c.makers[c.idx]()
			c.idx++
		}
		if r, ok := c.cur.Next(); ok {
			return r, true
		}
		c.cur = nil
	}
}

// Repeat returns a Stream that plays maker's stream n times in sequence.
func Repeat(n int, maker Maker) Stream {
	return &repeatStream{n: n, maker: maker}
}

type repeatStream struct {
	maker Maker
	cur   Stream
	n     int
	done  int
}

func (r *repeatStream) Next() (Ref, bool) {
	for {
		if r.cur == nil {
			if r.done >= r.n {
				return Ref{}, false
			}
			r.cur = r.maker()
			r.done++
		}
		if ref, ok := r.cur.Next(); ok {
			return ref, true
		}
		r.cur = nil
	}
}

// Limit returns a Stream that truncates s after max references.
func Limit(s Stream, max int) Stream {
	return &limitStream{s: s, left: max}
}

type limitStream struct {
	s    Stream
	left int
}

func (l *limitStream) Next() (Ref, bool) {
	if l.left <= 0 {
		return Ref{}, false
	}
	r, ok := l.s.Next()
	if !ok {
		return Ref{}, false
	}
	l.left--
	return r, true
}

// Interleave round-robins references from several streams until all are
// exhausted, modeling a thread alternating between data structures.
func Interleave(streams ...Stream) Stream {
	return &interleaveStream{streams: streams}
}

type interleaveStream struct {
	streams []Stream
	next    int
}

func (it *interleaveStream) Next() (Ref, bool) {
	for tries := 0; tries < len(it.streams); tries++ {
		i := it.next
		it.next = (it.next + 1) % len(it.streams)
		if it.streams[i] == nil {
			continue
		}
		if r, ok := it.streams[i].Next(); ok {
			return r, true
		}
		it.streams[i] = nil
	}
	return Ref{}, false
}

// counting wraps a stream and counts the references it yields.
type counting struct {
	s Stream
	n *int64
}

// Counting wraps s so that every yielded reference increments *n.
func Counting(s Stream, n *int64) Stream {
	return &counting{s: s, n: n}
}

func (c *counting) Next() (Ref, bool) {
	r, ok := c.s.Next()
	if ok {
		*c.n++
	}
	return r, ok
}

// Gen adapts a push-style generator function into a pull-style Stream using
// a bounded buffer refilled on demand. The generator is invoked lazily in
// chunks: gen receives an emit callback and must return when emit reports
// false. This supports kernels whose access patterns are easiest to express
// as straight-line code (e.g. nested loops over a grid).
func Gen(gen func(emit func(Ref) bool)) Stream {
	g := &genStream{
		ch:   make(chan []Ref, 4),
		stop: make(chan struct{}),
	}
	//simcheck:allow(detlint) generator goroutine hands chunks over a synchronized channel; the consumer sees refs in emit order regardless of scheduling
	go func() {
		defer close(g.ch)
		buf := make([]Ref, 0, genChunk)
		flush := func() bool {
			if len(buf) == 0 {
				return true
			}
			chunk := make([]Ref, len(buf))
			copy(chunk, buf)
			buf = buf[:0]
			select {
			case g.ch <- chunk:
				return true
			case <-g.stop:
				return false
			}
		}
		gen(func(r Ref) bool {
			buf = append(buf, r)
			if len(buf) == genChunk {
				return flush()
			}
			select {
			case <-g.stop:
				return false
			default:
				return true
			}
		})
		flush()
	}()
	return g
}

const genChunk = 4096

type genStream struct {
	ch    chan []Ref
	stop  chan struct{}
	chunk []Ref
	pos   int
	done  bool
}

func (g *genStream) Next() (Ref, bool) {
	for {
		if g.pos < len(g.chunk) {
			r := g.chunk[g.pos]
			g.pos++
			return r, true
		}
		if g.done {
			return Ref{}, false
		}
		chunk, ok := <-g.ch
		if !ok {
			g.done = true
			return Ref{}, false
		}
		g.chunk, g.pos = chunk, 0
	}
}

// Stop terminates the backing generator goroutine of a Gen stream early.
// It is safe to call multiple times and on fully drained streams.
func (g *genStream) Stop() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	// Drain so the producer is never blocked on send.
	for range g.ch {
	}
	g.done = true
	g.chunk = nil
}

// Stopper is implemented by streams holding background resources.
type Stopper interface {
	Stop()
}

// StopAll stops every stream that implements Stopper.
func StopAll(streams ...Stream) {
	for _, s := range streams {
		if st, ok := s.(Stopper); ok {
			st.Stop()
		}
	}
}
