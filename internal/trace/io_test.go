package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func roundtrip(t *testing.T, refs []Ref) []Ref {
	t.Helper()
	var buf bytes.Buffer
	n, err := Write(&buf, FromSlice(refs))
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if n != len(refs) {
		t.Fatalf("wrote %d of %d refs", n, len(refs))
	}
	s, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	out := Collect(s, 0)
	if er, ok := s.(ErrorReporter); ok && er.Err() != nil {
		t.Fatalf("reader error: %v", er.Err())
	}
	return out
}

func TestRoundtripBasic(t *testing.T) {
	refs := []Ref{
		{Addr: 4096, Kind: Load, Work: 3},
		{Addr: 4160, Kind: Store, Dep: true, Work: 0},
		{Addr: 64, Kind: Load, Work: 1 << 20}, // backwards delta, big work
		{Sync: true, Work: 20},
		{Addr: 1 << 40, Kind: Load},
	}
	got := roundtrip(t, refs)
	if len(got) != len(refs) {
		t.Fatalf("got %d refs", len(got))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("ref %d = %+v, want %+v", i, got[i], refs[i])
		}
	}
}

func TestRoundtripEmpty(t *testing.T) {
	got := roundtrip(t, nil)
	if len(got) != 0 {
		t.Errorf("empty trace decoded %d refs", len(got))
	}
}

func TestSequentialTraceIsCompact(t *testing.T) {
	// Sequential 64-byte strides must cost ~3 bytes per reference.
	refs := Collect(StrideSpec{Stride: 64, Count: 10000, Work: 2}.Stream(), 0)
	var buf bytes.Buffer
	if _, err := Write(&buf, FromSlice(refs)); err != nil {
		t.Fatal(err)
	}
	perRef := float64(buf.Len()-8) / float64(len(refs))
	if perRef > 4 {
		t.Errorf("encoding = %.1f bytes/ref, want <= 4", perRef)
	}
}

func TestNewReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("garbage header accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte{'R', 'M', 'T', 'R', 99, 0, 0, 0})); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestTruncatedTraceReportsError(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Write(&buf, FromSlice([]Ref{{Addr: 1 << 33, Work: 7}})); err != nil {
		t.Fatal(err)
	}
	// Chop mid-record (flags byte survives, varint truncated).
	data := buf.Bytes()[:buf.Len()-2]
	s, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Next(); ok {
		t.Error("truncated record decoded")
	}
	if er := s.(ErrorReporter); er.Err() == nil {
		t.Error("truncation not reported")
	}
}

// Property: any reference sequence survives a roundtrip bit-exactly.
func TestRoundtripProperty(t *testing.T) {
	f := func(raw []uint32, kinds []bool, works []uint16) bool {
		var refs []Ref
		for i, a := range raw {
			r := Ref{Addr: uint64(a) * 7}
			if i < len(kinds) && kinds[i] {
				r.Kind = Store
				r.Dep = true
			}
			if i < len(works) {
				r.Work = uint32(works[i])
			}
			refs = append(refs, r)
		}
		var buf bytes.Buffer
		if _, err := Write(&buf, FromSlice(refs)); err != nil {
			return false
		}
		s, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got := Collect(s, 0)
		if len(got) != len(refs) {
			return false
		}
		for i := range refs {
			if got[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// A recorded workload trace must replay identically.
func TestWorkloadTraceReplay(t *testing.T) {
	sp := StrideSpec{Base: 1 << 30, Stride: 192, Count: 5000, Kind: Store, Work: 9}
	var buf bytes.Buffer
	if _, err := Write(&buf, sp.Stream()); err != nil {
		t.Fatal(err)
	}
	replayed, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := sp.Stream()
	for i := 0; ; i++ {
		a, okA := orig.Next()
		b, okB := replayed.Next()
		if okA != okB {
			t.Fatalf("length mismatch at %d", i)
		}
		if !okA {
			break
		}
		if a != b {
			t.Fatalf("ref %d: %+v vs %+v", i, a, b)
		}
	}
}
