package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format: a compact, streamable encoding of reference streams
// so traces can be recorded once and replayed against different machine
// configurations (or diffed between versions of a workload generator).
//
// Layout: an 8-byte header ("RMTR" magic, version, reserved), then one
// record per reference: a flags byte (kind/dep/sync), the address as a
// zig-zag varint delta against the previous address, and the work cycles
// as a varint. Sequential patterns therefore cost ~3 bytes per reference.

var traceMagic = [4]byte{'R', 'M', 'T', 'R'}

const traceVersion = 1

const (
	flagStore = 1 << 0
	flagDep   = 1 << 1
	flagSync  = 1 << 2
)

// ErrBadTrace is returned when decoding fails structurally.
var ErrBadTrace = errors.New("trace: malformed trace data")

// Write drains stream s into w in the binary trace format, returning the
// number of references written.
func Write(w io.Writer, s Stream) (int, error) {
	bw := bufio.NewWriter(w)
	header := make([]byte, 8)
	copy(header, traceMagic[:])
	header[4] = traceVersion
	if _, err := bw.Write(header); err != nil {
		return 0, err
	}
	var buf [2 * binary.MaxVarintLen64]byte
	var prevAddr uint64
	count := 0
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		var flags byte
		if r.Kind == Store {
			flags |= flagStore
		}
		if r.Dep {
			flags |= flagDep
		}
		if r.Sync {
			flags |= flagSync
		}
		if err := bw.WriteByte(flags); err != nil {
			return count, err
		}
		delta := int64(r.Addr - prevAddr)
		n := binary.PutVarint(buf[:], delta)
		n += binary.PutUvarint(buf[n:], uint64(r.Work))
		if _, err := bw.Write(buf[:n]); err != nil {
			return count, err
		}
		prevAddr = r.Addr
		count++
	}
	return count, bw.Flush()
}

// reader decodes the binary format as a Stream.
type reader struct {
	br       *bufio.Reader
	prevAddr uint64
	err      error
	done     bool
}

// NewReader returns a Stream decoding the binary trace format from r. A
// decoding error terminates the stream; check Err afterwards.
func NewReader(r io.Reader) (Stream, error) {
	br := bufio.NewReader(r)
	header := make([]byte, 8)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, fmt.Errorf("%w: short header", ErrBadTrace)
	}
	if [4]byte{header[0], header[1], header[2], header[3]} != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	if header[4] != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, header[4])
	}
	return &reader{br: br}, nil
}

func (r *reader) Next() (Ref, bool) {
	if r.done {
		return Ref{}, false
	}
	flags, err := r.br.ReadByte()
	if err != nil {
		r.done = true
		if err != io.EOF {
			r.err = err
		}
		return Ref{}, false
	}
	delta, err := binary.ReadVarint(r.br)
	if err != nil {
		r.done = true
		r.err = fmt.Errorf("%w: truncated address", ErrBadTrace)
		return Ref{}, false
	}
	work, err := binary.ReadUvarint(r.br)
	if err != nil {
		r.done = true
		r.err = fmt.Errorf("%w: truncated work", ErrBadTrace)
		return Ref{}, false
	}
	r.prevAddr += uint64(delta)
	ref := Ref{
		Addr: r.prevAddr,
		Work: uint32(work),
		Dep:  flags&flagDep != 0,
		Sync: flags&flagSync != 0,
	}
	if flags&flagStore != 0 {
		ref.Kind = Store
	}
	return ref, true
}

// Err reports a decoding error encountered by a NewReader stream (nil on
// clean EOF).
func (r *reader) Err() error { return r.err }

// ErrorReporter is implemented by streams that can fail mid-iteration.
type ErrorReporter interface {
	Err() error
}
