package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleFit shows the paper's workflow: measure C(n) at the input-plan
// core counts, fit the model, and predict contention everywhere else.
func ExampleFit() {
	// Measurements on a two-socket, 12-cores-per-socket NUMA machine at
	// the paper's Intel NUMA input plan {1, 2, 12, 13}.
	meas := []core.Measurement{
		{Cores: 1, Cycles: 1.0e9, LLCMisses: 2e6},
		{Cores: 2, Cycles: 1.05e9, LLCMisses: 2e6},
		{Cores: 12, Cycles: 2.0e9, LLCMisses: 2e6},
		{Cores: 13, Cycles: 2.1e9, LLCMisses: 2e6},
	}
	model, err := core.Fit(core.NUMA, 2, 12, meas, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("omega(12) = %.2f\n", model.Omega(12))
	fmt.Printf("omega(24) = %.2f\n", model.Omega(24))
	// Output:
	// omega(12) = 1.00
	// omega(24) = 3.11
}

// ExampleOmega computes the degree of memory contention from two runs.
func ExampleOmega() {
	c1 := 1.0e9  // total cycles on one core
	c24 := 4.3e9 // total cycles on 24 cores
	fmt.Printf("omega = %.1f\n", core.Omega(c24, c1))
	// Output:
	// omega = 3.3
}

// ExampleModel_OptimalCores finds the speedup-maximizing core count.
func ExampleModel_OptimalCores() {
	meas := []core.Measurement{
		{Cores: 1, Cycles: 1.0e9, LLCMisses: 2e6},
		{Cores: 8, Cycles: 4.0e9, LLCMisses: 2e6},
	}
	model, err := core.Fit(core.NUMA, 1, 16, meas, core.Options{})
	if err != nil {
		panic(err)
	}
	cores, speedup := model.OptimalCores(16)
	fmt.Printf("best: %d cores (S = %.1f)\n", cores, speedup)
	// Output:
	// best: 5 cores (S = 2.9)
}
