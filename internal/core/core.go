// Package core implements the paper's contribution: an analytical queueing
// model of off-chip memory contention in multicore systems (section IV).
//
// The model relates the total cycles C(n) a parallel program needs on n
// active cores to the number of cores and the problem size:
//
//	C(n) = W(n) + B(n) + M(n)                            (1)
//	M(n) = C(n) - C(1)                                   (2)
//	ω(n) = (C(n) - C(1)) / C(1)   degree of contention   (4)
//
// Within one processor, large problem sizes produce non-bursty memory
// traffic (section III), so the memory controller is modeled as an M/M/1
// queue with per-core arrival rate L and service rate μ:
//
//	C(n) = r(n) / (μ - nL)                               (6)
//
// which makes 1/C(n) linear in n — the property Table IV tests — and lets
// μ and L be recovered by linear regression from as few as two measurement
// runs. Across processors the model decomposes hierarchically:
//
//	UMA:  C(n) = C(c) + C(n-c) + ΔC                      (8)
//	NUMA: C(n) = C(c) + r(n)·ρ·(n-c)                     (11)
//
// where c is the cores per processor, ΔC captures the extra load on the
// shared controller, and ρ is the average per-core remote-access stall —
// "an average weighted to the number of memory requests to each of the
// remote memories" — fitted by regression over every remote measurement
// point, so machines with several interconnect latency classes (the AMD
// system) are modeled accurately. Restricting the fit to the first remote
// point is the paper's degraded "homogeneous interconnect" variant
// (Options.Homogeneous). Both composition rules are implemented with the
// proportional access split that equation (10) derives; see the DESIGN.md
// appendix for why the literal forms cannot track the measurements.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Measurement is one profiling run: total cycles and LLC misses observed
// with a given number of active cores.
type Measurement struct {
	// Cores is the number of active cores n.
	Cores int
	// Cycles is C(n), summed over threads.
	Cycles float64
	// LLCMisses is r(n).
	LLCMisses float64
}

// Omega computes the degree of memory contention ω(n) (definition 1):
// (C(n) - C(1)) / C(1). Negative values indicate positive cache effects.
func Omega(cn, c1 float64) float64 {
	if c1 == 0 {
		return math.NaN()
	}
	return (cn - c1) / c1
}

// Errors returned by the fitting functions.
var (
	ErrTooFewMeasurements = errors.New("core: need at least two single-socket measurements")
	ErrNoBaseline         = errors.New("core: need a measurement at n=1")
	ErrBadGeometry        = errors.New("core: invalid machine geometry")
)

// SingleFit is the fitted single-processor M/M/1 model: 1/C(n) regressed
// on n gives intercept μ/r and slope -L/r.
type SingleFit struct {
	// MuOverR and LOverR are the normalized queue parameters (μ/r, L/r).
	MuOverR float64
	LOverR  float64
	// R2 is the goodness-of-fit of the 1/C(n) linearity (Table IV).
	R2 float64
	// N is the number of measurements used.
	N int
}

// C predicts the single-processor cycle count at n cores: r/(μ-nL).
// Beyond the saturation point μ/L the M/M/1 model diverges and C returns
// +Inf.
func (f SingleFit) C(n int) float64 {
	den := f.MuOverR - f.LOverR*float64(n)
	if den <= 0 {
		return math.Inf(1)
	}
	return 1 / den
}

// SaturationCores returns μ/L: the core count at which the modeled
// controller saturates.
func (f SingleFit) SaturationCores() float64 {
	if f.LOverR <= 0 {
		return math.Inf(1)
	}
	return f.MuOverR / f.LOverR
}

// FitSingle fits the M/M/1 parameters from measurements taken within one
// processor (n from 1 to cores-per-socket), per equation (6).
func FitSingle(meas []Measurement) (SingleFit, error) {
	if len(meas) < 2 {
		return SingleFit{}, ErrTooFewMeasurements
	}
	var xs, ys []float64
	for _, m := range meas {
		if m.Cycles <= 0 {
			return SingleFit{}, fmt.Errorf("core: non-positive cycles at n=%d", m.Cores)
		}
		xs = append(xs, float64(m.Cores))
		ys = append(ys, 1/m.Cycles)
	}
	fit, err := stats.FitLinear(xs, ys)
	if err != nil {
		return SingleFit{}, err
	}
	return SingleFit{
		MuOverR: fit.Intercept,
		LOverR:  -fit.Slope,
		R2:      fit.R2,
		N:       len(meas),
	}, nil
}

// LinearityR2 returns the Table IV statistic: the R² of regressing 1/C(n)
// on n over the given measurements.
func LinearityR2(meas []Measurement) (float64, error) {
	f, err := FitSingle(meas)
	if err != nil {
		return 0, err
	}
	return f.R2, nil
}

// Kind distinguishes the multi-processor extension used.
type Kind uint8

const (
	// UMA uses equation (8) with the fitted ΔC term.
	UMA Kind = iota
	// NUMA uses equation (11) with per-socket ρ terms.
	NUMA
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == UMA {
		return "UMA"
	}
	return "NUMA"
}

// Model is the full fitted machine model.
type Model struct {
	// Kind selects the multiprocessor extension.
	Kind Kind
	// Sockets and CoresPerSocket give the machine geometry.
	Sockets        int
	CoresPerSocket int
	// Single is the single-processor M/M/1 fit.
	Single SingleFit
	// DeltaCPerCore is the fitted UMA ΔC per core activated beyond the
	// first processor.
	DeltaCPerCore float64
	// Rho holds the fitted NUMA per-core remote stall terms: Rho[k] applies
	// to cores on socket k+1 (socket indices 1..Sockets-1).
	Rho []float64
	// RefMisses is the r(n) used to convert ρ terms to cycles (the paper
	// holds r(n) constant).
	RefMisses float64
	// C1 is the modeled baseline C(1) used for ω.
	C1 float64
}

// coresOnSocket returns how many of the first n fill-first cores land on
// socket s.
func coresOnSocket(n, coresPerSocket, s int) int {
	lo := s * coresPerSocket
	if n <= lo {
		return 0
	}
	m := n - lo
	if m > coresPerSocket {
		m = coresPerSocket
	}
	return m
}

// C predicts the total cycles at n active cores under fill-processor-first
// activation.
func (m Model) C(n int) float64 {
	c := m.CoresPerSocket
	if n <= c {
		return m.Single.C(n)
	}
	switch m.Kind {
	case UMA:
		// Equation (8) with the proportional-split reading the paper's own
		// NUMA derivation (equation 10) uses: memory accesses divide
		// proportionally among sockets, so a socket running k of the n
		// cores contributes (k/n)·C(k) through its private bus, and ΔC
		// accounts for the extra load on the shared memory controller.
		total := 0.0
		for s := 0; s < m.Sockets; s++ {
			if k := coresOnSocket(n, c, s); k > 0 {
				total += float64(k) / float64(n) * m.Single.C(k)
			}
		}
		return total + m.DeltaCPerCore*float64(n-c)
	default: // NUMA
		// Equation (11) in the form equation (10) derives it: memory
		// accesses divide proportionally among the active sockets, so the
		// local component of a socket running k of n cores is (k/n)·C(k),
		// and each remote socket adds r·ρ_s per core activated on it.
		total := 0.0
		for s := 0; s < m.Sockets; s++ {
			if k := coresOnSocket(n, c, s); k > 0 {
				total += float64(k) / float64(n) * m.Single.C(k)
			}
		}
		for s := 1; s < m.Sockets; s++ {
			if k := coresOnSocket(n, c, s); k > 0 {
				total += m.RefMisses * m.rhoFor(s) * float64(k)
			}
		}
		return total
	}
}

// rhoFor returns the ρ of socket s (1-based remote sockets), falling back
// to the last fitted value when a socket has no dedicated measurement.
func (m Model) rhoFor(s int) float64 {
	idx := s - 1
	if idx < len(m.Rho) {
		return m.Rho[idx]
	}
	if len(m.Rho) > 0 {
		return m.Rho[len(m.Rho)-1]
	}
	return 0
}

// Omega predicts the degree of contention ω(n).
func (m Model) Omega(n int) float64 {
	return Omega(m.C(n), m.C1)
}

// Curve evaluates ω(n) for n = 1..maxCores.
func (m Model) Curve(maxCores int) []float64 {
	out := make([]float64, maxCores)
	for n := 1; n <= maxCores; n++ {
		out[n-1] = m.Omega(n)
	}
	return out
}

// Options tunes the fitting procedure.
type Options struct {
	// Homogeneous forces a single ρ for every remote socket — the paper's
	// reduced-input variant that degrades AMD accuracy from ~5% to ~25%
	// relative error.
	Homogeneous bool
}

// splitMeasurements partitions measurements into single-socket inputs
// (n <= c) and per-remote-socket inputs, sorted by core count.
func splitMeasurements(meas []Measurement, c int, sockets int) (single []Measurement, remote [][]Measurement) {
	remote = make([][]Measurement, sockets-1)
	sorted := append([]Measurement(nil), meas...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Cores < sorted[j].Cores })
	for _, m := range sorted {
		if m.Cores <= c {
			single = append(single, m)
			continue
		}
		s := (m.Cores - 1) / c // socket index of the last activated core
		if s >= 1 && s < sockets {
			remote[s-1] = append(remote[s-1], m)
		}
	}
	return single, remote
}

// refMisses averages the observed LLC misses (r(n) is treated as constant).
func refMisses(meas []Measurement) float64 {
	var sum float64
	var n int
	for _, m := range meas {
		if m.LLCMisses > 0 {
			sum += m.LLCMisses
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Fit builds the full model from measurement runs on a machine with the
// given geometry. Measurements with n <= coresPerSocket feed the M/M/1
// regression; measurements beyond feed ΔC (UMA) or the per-socket ρ terms
// (NUMA). The paper's input plans (section V) are:
//
//	Intel UMA:  C(1), C(4), C(5)
//	Intel NUMA: C(1), C(2), C(12), C(13)
//	AMD NUMA:   C(1), C(12), C(13), C(25), C(37)
func Fit(kind Kind, sockets, coresPerSocket int, meas []Measurement, opts Options) (Model, error) {
	if sockets < 1 || coresPerSocket < 1 {
		return Model{}, ErrBadGeometry
	}
	single, remote := splitMeasurements(meas, coresPerSocket, sockets)
	sf, err := FitSingle(single)
	if err != nil {
		return Model{}, err
	}
	m := Model{
		Kind:           kind,
		Sockets:        sockets,
		CoresPerSocket: coresPerSocket,
		Single:         sf,
		RefMisses:      refMisses(meas),
		C1:             sf.C(1),
	}
	c := coresPerSocket
	switch kind {
	case UMA:
		// Regress observed ΔC through the origin on (n-c), against the
		// proportional-split base.
		var xs, ys []float64
		for _, socketMeas := range remote {
			for _, mm := range socketMeas {
				base := 0.0
				for s := 0; s < sockets; s++ {
					if k := coresOnSocket(mm.Cores, c, s); k > 0 {
						base += float64(k) / float64(mm.Cores) * sf.C(k)
					}
				}
				xs = append(xs, float64(mm.Cores-c))
				ys = append(ys, mm.Cycles-base)
			}
		}
		if len(xs) > 0 {
			fit, ferr := stats.FitLinearThroughOrigin(xs, ys)
			if ferr == nil {
				m.DeltaCPerCore = fit.Slope
			}
		}
	default: // NUMA
		if m.RefMisses <= 0 {
			return Model{}, errors.New("core: NUMA fit needs LLC miss counts")
		}
		// ρ is "derived from linear regression" and, on machines with
		// several interconnect latency classes, is "an average weighted to
		// the number of memory requests to each of the remote memories"
		// (section IV): regress the remote residual
		//   C(n) - proportional local base = r · ρ · (n - c)
		// through the origin over the remote measurement points. The
		// Homogeneous option reproduces the paper's reduced three-input
		// variant — only the first remote activation point is used, which
		// cannot observe the farther latency classes and degrades AMD
		// accuracy (the paper reports ~5% -> ~25%).
		var xs, ys []float64
		for _, socketMeas := range remote {
			for _, mm := range socketMeas {
				base := 0.0
				for ps := 0; ps < sockets; ps++ {
					if k := coresOnSocket(mm.Cores, c, ps); k > 0 {
						base += float64(k) / float64(mm.Cores) * sf.C(k)
					}
				}
				xs = append(xs, m.RefMisses*float64(mm.Cores-c))
				ys = append(ys, mm.Cycles-base)
				if opts.Homogeneous {
					break
				}
			}
			if opts.Homogeneous && len(xs) > 0 {
				break
			}
		}
		if len(xs) > 0 {
			fit, ferr := stats.FitLinearThroughOrigin(xs, ys)
			if ferr == nil {
				for s := 1; s < sockets; s++ {
					m.Rho = append(m.Rho, fit.Slope)
				}
			}
		}
	}
	return m, nil
}

// Validation compares model predictions against a measured sweep.
type Validation struct {
	// Cores lists the evaluated core counts.
	Cores []int
	// Measured and Modeled are ω(n) at each core count.
	Measured []float64
	Modeled  []float64
	// MeanRelErr and MaxRelErr compare modeled to measured C(n) (the
	// paper's 5-14% metric).
	MeanRelErr float64
	MaxRelErr  float64
}

// Validate evaluates the model against a full measured sweep. The measured
// C(1) normalizes the measured ω; the model's own C(1) normalizes its ω.
func Validate(m Model, sweep []Measurement) (Validation, error) {
	if len(sweep) == 0 {
		return Validation{}, ErrTooFewMeasurements
	}
	sorted := append([]Measurement(nil), sweep...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Cores < sorted[j].Cores })
	var c1 float64
	for _, mm := range sorted {
		if mm.Cores == 1 {
			c1 = mm.Cycles
			break
		}
	}
	if c1 == 0 {
		return Validation{}, ErrNoBaseline
	}
	v := Validation{}
	var pred, obs []float64
	for _, mm := range sorted {
		v.Cores = append(v.Cores, mm.Cores)
		v.Measured = append(v.Measured, Omega(mm.Cycles, c1))
		v.Modeled = append(v.Modeled, m.Omega(mm.Cores))
		p := m.C(mm.Cores)
		if !math.IsInf(p, 0) {
			pred = append(pred, p)
			obs = append(obs, mm.Cycles)
		}
	}
	var err error
	v.MeanRelErr, err = stats.MeanRelativeError(pred, obs)
	if err != nil {
		return Validation{}, err
	}
	v.MaxRelErr, err = stats.MaxRelativeError(pred, obs)
	if err != nil {
		return Validation{}, err
	}
	return v, nil
}

// PaperInputs returns the measurement core counts the paper uses for each
// machine geometry (section V): {1, c, c+1} for UMA; {1, 2, c, c+1} for
// two-socket NUMA; {1, c, c+1, 2c+1, 3c+1} for four-socket NUMA.
//
// Deviation from the paper: for two-socket NUMA machines a fifth run at the
// full machine (2c) is added, mirroring the five-run AMD plan. With a
// single remote point the ρ regression cannot see past the
// capacity-relief dip that the simulated testbed shows when the second
// controller comes online; the extra point anchors the remote trend (the
// paper's real machine showed a much smaller dip, so four runs sufficed
// there).
func PaperInputs(kind Kind, sockets, coresPerSocket int) []int {
	c := coresPerSocket
	switch {
	case kind == UMA:
		return []int{1, c, c + 1}
	case sockets == 2:
		return []int{1, 2, c, c + 1, 2 * c}
	default:
		inputs := []int{1, c}
		for s := 1; s < sockets; s++ {
			inputs = append(inputs, s*c+1)
		}
		return inputs
	}
}
