package core

import (
	"math"
	"testing"
)

// fittedTestModel builds a model with a known contention curve.
func fittedTestModel(t *testing.T) Model {
	t.Helper()
	r, mu, l := 1e6, 0.02, 0.002
	meas := synthSingle(r, mu, l, []int{1, 4})
	f, err := FitSingle(meas)
	if err != nil {
		t.Fatal(err)
	}
	return Model{
		Kind: NUMA, Sockets: 1, CoresPerSocket: 8,
		Single: f, C1: f.C(1), RefMisses: r,
	}
}

func TestSpeedupIdentity(t *testing.T) {
	m := fittedTestModel(t)
	if s := m.Speedup(1); math.Abs(s-1) > 1e-9 {
		t.Errorf("S(1) = %v, want 1", s)
	}
	// S(n) = n/(1+omega(n)) by definition.
	for n := 2; n <= 8; n++ {
		want := float64(n) / (1 + m.Omega(n))
		if got := m.Speedup(n); math.Abs(got-want) > 1e-9 {
			t.Errorf("S(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestSpeedupBelowLinearUnderContention(t *testing.T) {
	m := fittedTestModel(t)
	for n := 2; n <= 8; n++ {
		if s := m.Speedup(n); s >= float64(n) {
			t.Errorf("S(%d) = %v should be sublinear under contention", n, s)
		}
	}
}

func TestOptimalCoresPeaksBeforeSaturation(t *testing.T) {
	// mu/L = 10: the M/M/1 model diverges at n=10, so speedup must peak
	// strictly before that.
	r, mu, l := 1e6, 0.02, 0.002
	f, err := FitSingle(synthSingle(r, mu, l, []int{1, 4}))
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Kind: NUMA, Sockets: 1, CoresPerSocket: 16, Single: f, C1: f.C(1), RefMisses: r}
	cores, speedup := m.OptimalCores(16)
	if cores >= 10 {
		t.Errorf("optimal cores = %d, must be below the saturation point 10", cores)
	}
	if speedup <= 1 {
		t.Errorf("optimal speedup = %v", speedup)
	}
	// The optimum really is a maximum.
	for n := 1; n <= 16; n++ {
		if s := m.Speedup(n); s > speedup+1e-9 {
			t.Errorf("S(%d) = %v exceeds reported optimum %v", n, s, speedup)
		}
	}
}

func TestSpeedupCurveLength(t *testing.T) {
	m := fittedTestModel(t)
	curve := m.SpeedupCurve(8)
	if len(curve) != 8 {
		t.Fatalf("curve length %d", len(curve))
	}
	if curve[0] != m.Speedup(1) || curve[7] != m.Speedup(8) {
		t.Error("curve endpoints wrong")
	}
}

func TestEfficientCores(t *testing.T) {
	m := fittedTestModel(t)
	// Threshold 1.0 keeps only n=1 (contention starts immediately).
	if got := m.EfficientCores(8, 1.0); got != 1 {
		t.Errorf("EfficientCores(1.0) = %d, want 1", got)
	}
	// A loose threshold admits more cores, monotonically.
	loose := m.EfficientCores(8, 0.3)
	tight := m.EfficientCores(8, 0.7)
	if loose < tight {
		t.Errorf("loose threshold %d < tight %d", loose, tight)
	}
}

func TestSpeedupFromMeasurements(t *testing.T) {
	sweep := []Measurement{
		{Cores: 1, Cycles: 100},
		{Cores: 2, Cycles: 120},
		{Cores: 4, Cycles: 200},
	}
	s := SpeedupFromMeasurements(sweep)
	want := []float64{1, 2 * 100.0 / 120, 4 * 100.0 / 200}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-12 {
			t.Errorf("s[%d] = %v, want %v", i, s[i], want[i])
		}
	}
	if SpeedupFromMeasurements([]Measurement{{Cores: 2, Cycles: 5}}) != nil {
		t.Error("missing baseline should return nil")
	}
}
