package core

import "testing"

func BenchmarkFitNUMA(b *testing.B) {
	meas := []Measurement{
		{Cores: 1, Cycles: 1e9, LLCMisses: 1e6},
		{Cores: 12, Cycles: 2.2e9, LLCMisses: 1e6},
		{Cores: 13, Cycles: 2.3e9, LLCMisses: 1e6},
		{Cores: 25, Cycles: 2.9e9, LLCMisses: 1e6},
		{Cores: 37, Cycles: 3.4e9, LLCMisses: 1e6},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(NUMA, 4, 12, meas, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelCurve(b *testing.B) {
	m, err := Fit(NUMA, 4, 12, []Measurement{
		{Cores: 1, Cycles: 1e9, LLCMisses: 1e6},
		{Cores: 12, Cycles: 2.2e9, LLCMisses: 1e6},
		{Cores: 13, Cycles: 2.3e9, LLCMisses: 1e6},
	}, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Curve(48)
	}
}
