package core

import (
	"errors"
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// synthSingle generates exact M/M/1 measurements C(n) = r/(mu - n*L).
func synthSingle(r, mu, l float64, cores []int) []Measurement {
	var meas []Measurement
	for _, n := range cores {
		meas = append(meas, Measurement{
			Cores:     n,
			Cycles:    r / (mu - float64(n)*l),
			LLCMisses: r,
		})
	}
	return meas
}

func TestOmega(t *testing.T) {
	if Omega(200, 100) != 1 {
		t.Error("omega(2x) should be 1")
	}
	if Omega(100, 100) != 0 {
		t.Error("omega(same) should be 0")
	}
	if Omega(50, 100) != -0.5 {
		t.Error("cache speedup omega should be negative")
	}
	if !math.IsNaN(Omega(1, 0)) {
		t.Error("zero baseline should give NaN")
	}
}

func TestFitSingleExactRecovery(t *testing.T) {
	r, mu, l := 1e6, 0.01, 0.0009
	meas := synthSingle(r, mu, l, []int{1, 4})
	f, err := FitSingle(meas)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.MuOverR, mu/r, 1e-12) {
		t.Errorf("mu/r = %v, want %v", f.MuOverR, mu/r)
	}
	if !almostEqual(f.LOverR, l/r, 1e-12) {
		t.Errorf("L/r = %v, want %v", f.LOverR, l/r)
	}
	if !almostEqual(f.R2, 1, 1e-9) {
		t.Errorf("R2 = %v", f.R2)
	}
	// Interpolation and extrapolation reproduce the generator.
	for n := 1; n <= 10; n++ {
		want := r / (mu - float64(n)*l)
		if !almostEqual(f.C(n), want, want*1e-9) {
			t.Errorf("C(%d) = %v, want %v", n, f.C(n), want)
		}
	}
}

func TestFitSingleSaturation(t *testing.T) {
	f, err := FitSingle(synthSingle(1e6, 0.01, 0.0009, []int{1, 4, 8}))
	if err != nil {
		t.Fatal(err)
	}
	// mu/L = 11.11: the model must diverge at n=12.
	if !almostEqual(f.SaturationCores(), 11.111, 0.01) {
		t.Errorf("saturation = %v", f.SaturationCores())
	}
	if !math.IsInf(f.C(12), 1) {
		t.Errorf("C beyond saturation = %v, want +Inf", f.C(12))
	}
}

func TestFitSingleErrors(t *testing.T) {
	if _, err := FitSingle(nil); !errors.Is(err, ErrTooFewMeasurements) {
		t.Errorf("err = %v", err)
	}
	if _, err := FitSingle([]Measurement{{Cores: 1, Cycles: 0}, {Cores: 2, Cycles: 1}}); err == nil {
		t.Error("zero cycles accepted")
	}
}

func TestLinearityR2DetectsNonLinear(t *testing.T) {
	// Perfect M/M/1 data: R2 = 1.
	r2, err := LinearityR2(synthSingle(1e6, 0.01, 0.0005, []int{1, 2, 3, 4, 5, 6}))
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.9999 {
		t.Errorf("M/M/1 linearity R2 = %v", r2)
	}
	// Flat C(n) (no contention, bursty EP-like): 1/C is constant; our R2
	// convention yields 1 only for exact constants, so perturb slightly —
	// the regression should fit poorly relative to the variance.
	var meas []Measurement
	for n := 1; n <= 8; n++ {
		c := 1e9 * (1 + 0.01*math.Sin(float64(n)*2.1))
		meas = append(meas, Measurement{Cores: n, Cycles: c, LLCMisses: 1e5})
	}
	r2b, err := LinearityR2(meas)
	if err != nil {
		t.Fatal(err)
	}
	if r2b > 0.9 {
		t.Errorf("oscillating data R2 = %v, want low", r2b)
	}
}

func TestFitUMAExact(t *testing.T) {
	// Ground truth: the proportional-split UMA composition with
	// ΔC = 5e8 per extra core.
	r, mu, l := 1e6, 0.02, 0.002
	delta := 5e8
	cTrue := func(n int) float64 {
		c := 4
		single := func(k int) float64 { return r / (mu - float64(k)*l) }
		if n <= c {
			return single(n)
		}
		k2 := n - c
		return float64(c)/float64(n)*single(c) +
			float64(k2)/float64(n)*single(k2) + delta*float64(k2)
	}
	var meas []Measurement
	for _, n := range []int{1, 4, 5} { // the paper's UMA input plan
		meas = append(meas, Measurement{Cores: n, Cycles: cTrue(n), LLCMisses: r})
	}
	m, err := Fit(UMA, 2, 4, meas, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.DeltaCPerCore, delta, delta*1e-9) {
		t.Errorf("delta = %v, want %v", m.DeltaCPerCore, delta)
	}
	for n := 1; n <= 8; n++ {
		want := cTrue(n)
		if !almostEqual(m.C(n), want, want*1e-9) {
			t.Errorf("C(%d) = %v, want %v", n, m.C(n), want)
		}
	}
}

func TestFitNUMAExactTwoSocket(t *testing.T) {
	// Ground truth per equation (11) with c=12, rho=3e2.
	r, mu, l := 1e6, 0.03, 0.002
	rho := 3e2
	single := func(k int) float64 { return r / (mu - float64(k)*l) }
	cTrue := func(n int) float64 {
		if n <= 12 {
			return single(n)
		}
		k2 := n - 12
		return 12.0/float64(n)*single(12) + float64(k2)/float64(n)*single(k2) +
			r*rho*float64(k2)
	}
	var meas []Measurement
	for _, n := range []int{1, 2, 12, 13} { // the paper's Intel NUMA plan
		meas = append(meas, Measurement{Cores: n, Cycles: cTrue(n), LLCMisses: r})
	}
	m, err := Fit(NUMA, 2, 12, meas, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rho) != 1 || !almostEqual(m.Rho[0], rho, rho*1e-9) {
		t.Errorf("rho = %v, want [%v]", m.Rho, rho)
	}
	for n := 1; n <= 24; n++ {
		want := cTrue(n)
		if !almostEqual(m.C(n), want, want*1e-9) {
			t.Errorf("C(%d) = %v, want %v", n, m.C(n), want)
		}
	}
}

func TestFitNUMAFourSocketSharedRho(t *testing.T) {
	// AMD-like geometry: c=12, four sockets, one true remote-stall rate.
	// The regression over the paper's five-point plan must recover it and
	// predict the whole 48-core sweep exactly.
	r, mu, l := 1e6, 0.03, 0.002
	rho := 4e2
	single := func(k int) float64 { return r / (mu - float64(k)*l) }
	cTrue := func(n int) float64 {
		total := 0.0
		for s := 0; s < 4; s++ {
			if k := coresOnSocket(n, 12, s); k > 0 {
				total += float64(k) / float64(n) * single(k)
			}
		}
		if n > 12 {
			total += r * rho * float64(n-12)
		}
		return total
	}
	var meas []Measurement
	for _, n := range []int{1, 12, 13, 25, 37} { // the paper's AMD plan
		meas = append(meas, Measurement{Cores: n, Cycles: cTrue(n), LLCMisses: r})
	}
	m, err := Fit(NUMA, 4, 12, meas, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rho) != 3 {
		t.Fatalf("rho = %v", m.Rho)
	}
	for i := range m.Rho {
		if !almostEqual(m.Rho[i], rho, rho*1e-9) {
			t.Errorf("rho[%d] = %v, want %v", i, m.Rho[i], rho)
		}
	}
	for n := 1; n <= 48; n++ {
		want := cTrue(n)
		if !almostEqual(m.C(n), want, want*1e-6) {
			t.Errorf("C(%d) = %v, want %v", n, m.C(n), want)
		}
	}
}

func TestHomogeneousAblationDegradesHeterogeneousMachine(t *testing.T) {
	// Heterogeneous ground truth: the remote-stall rate grows with each
	// socket (farther interconnect hops). The full five-point regression
	// averages over all latency classes; the paper's reduced three-input
	// variant (Homogeneous) sees only the nearest class and must be worse.
	r, mu, l := 1e6, 0.03, 0.002
	rhos := []float64{2e2, 5e2, 9e2}
	single := func(k int) float64 { return r / (mu - float64(k)*l) }
	cTrue := func(n int) float64 {
		total := 0.0
		for s := 0; s < 4; s++ {
			if k := coresOnSocket(n, 12, s); k > 0 {
				total += float64(k) / float64(n) * single(k)
			}
		}
		for s := 1; s < 4; s++ {
			if k := coresOnSocket(n, 12, s); k > 0 {
				total += r * rhos[s-1] * float64(k)
			}
		}
		return total
	}
	var meas, sweep []Measurement
	for _, n := range []int{1, 12, 13, 25, 37} {
		meas = append(meas, Measurement{Cores: n, Cycles: cTrue(n), LLCMisses: r})
	}
	for n := 1; n <= 48; n++ {
		sweep = append(sweep, Measurement{Cores: n, Cycles: cTrue(n), LLCMisses: r})
	}
	het, err := Fit(NUMA, 4, 12, meas, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hom, err := Fit(NUMA, 4, 12, meas, Options{Homogeneous: true})
	if err != nil {
		t.Fatal(err)
	}
	vHet, err := Validate(het, sweep)
	if err != nil {
		t.Fatal(err)
	}
	vHom, err := Validate(hom, sweep)
	if err != nil {
		t.Fatal(err)
	}
	// Both validations must at least produce finite errors.
	if vHom.MeanRelErr <= 0 || vHet.MeanRelErr < 0 {
		t.Fatalf("validation errors: hom %v het %v", vHom.MeanRelErr, vHet.MeanRelErr)
	}
	// The reduced fit sees only the nearest latency class, so its error
	// compounds toward the far sockets: over the last socket (n >= 37,
	// where all latency classes are active) it must be strictly worse.
	var homFar, hetFar float64
	for n := 37; n <= 48; n++ {
		truth := cTrue(n)
		homFar += math.Abs(hom.C(n)-truth) / truth
		hetFar += math.Abs(het.C(n)-truth) / truth
	}
	if homFar <= hetFar {
		t.Errorf("homogeneous far-socket error %v not worse than full fit %v",
			homFar/12, hetFar/12)
	}
}

func TestValidateBaselineRequired(t *testing.T) {
	m := Model{Kind: NUMA, Sockets: 2, CoresPerSocket: 2, C1: 1}
	if _, err := Validate(m, []Measurement{{Cores: 3, Cycles: 5}}); !errors.Is(err, ErrNoBaseline) {
		t.Errorf("err = %v", err)
	}
	if _, err := Validate(m, nil); !errors.Is(err, ErrTooFewMeasurements) {
		t.Errorf("err = %v", err)
	}
}

func TestCurve(t *testing.T) {
	f, _ := FitSingle(synthSingle(1e6, 0.02, 0.001, []int{1, 4}))
	m := Model{Kind: NUMA, Sockets: 1, CoresPerSocket: 8, Single: f, C1: f.C(1), RefMisses: 1e6}
	curve := m.Curve(8)
	if len(curve) != 8 {
		t.Fatalf("curve length %d", len(curve))
	}
	if curve[0] != 0 {
		t.Errorf("omega(1) = %v, want 0", curve[0])
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Errorf("omega not monotone under pure M/M/1: %v", curve)
			break
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(NUMA, 0, 4, nil, Options{}); !errors.Is(err, ErrBadGeometry) {
		t.Errorf("err = %v", err)
	}
	// NUMA needs miss counts.
	meas := []Measurement{{Cores: 1, Cycles: 10}, {Cores: 2, Cycles: 12}, {Cores: 3, Cycles: 15}}
	if _, err := Fit(NUMA, 2, 2, meas, Options{}); err == nil {
		t.Error("NUMA fit without misses accepted")
	}
}

func TestCoresOnSocket(t *testing.T) {
	cases := []struct{ n, c, s, want int }{
		{5, 4, 0, 4}, {5, 4, 1, 1}, {4, 4, 1, 0},
		{13, 12, 0, 12}, {13, 12, 1, 1}, {25, 12, 2, 1}, {48, 12, 3, 12},
	}
	for _, tc := range cases {
		if got := coresOnSocket(tc.n, tc.c, tc.s); got != tc.want {
			t.Errorf("coresOnSocket(%d,%d,%d) = %d, want %d", tc.n, tc.c, tc.s, got, tc.want)
		}
	}
}

func TestPaperInputs(t *testing.T) {
	if got := PaperInputs(UMA, 2, 4); !equalInts(got, []int{1, 4, 5}) {
		t.Errorf("UMA inputs = %v", got)
	}
	if got := PaperInputs(NUMA, 2, 12); !equalInts(got, []int{1, 2, 12, 13, 24}) {
		t.Errorf("Intel NUMA inputs = %v", got)
	}
	if got := PaperInputs(NUMA, 4, 12); !equalInts(got, []int{1, 12, 13, 25, 37}) {
		t.Errorf("AMD inputs = %v", got)
	}
}

func TestKindString(t *testing.T) {
	if UMA.String() != "UMA" || NUMA.String() != "NUMA" {
		t.Error("kind strings wrong")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
