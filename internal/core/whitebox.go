package core

import (
	"errors"
	"math"

	"repro/internal/machine"
)

// The white-box model is the extension the paper sketches in its
// conclusions: "the model can be extended, at the expense of higher
// modeling cost, to factor in bus speed and bandwidth, memory size and
// bandwidth, number of memory channels, service-discipline of memory
// controllers, among others." Instead of fitting μ and L by regression from
// measurement runs, it derives them from the machine description
// (internal/machine) and a compact workload profile, so it can predict
// contention for configurations that have never been measured (e.g. the
// capacity-planning and custom-machine examples).
//
// The derivation treats each active memory controller as a multi-channel
// queue fed by the active cores of its socket. A core sustains up to
// Profile.MLP outstanding misses, so the system is a closed queueing
// network; the model solves the per-socket fixed point
//
//	λ = min(demand, capacity), R = service·(1 + q(λ))
//
// with q the M/M/c queue length at the observed utilization, and converts
// the per-miss response time into cycles: C(n) = W + r·R(n)/MLP_eff.

// Profile characterizes a workload for the white-box model.
type Profile struct {
	// WorkCycles is W: total computation cycles, independent of n.
	WorkCycles float64
	// Misses is r(n): total off-chip requests, treated as constant.
	Misses float64
	// DepFraction is the fraction of misses that are dependent loads
	// (pointer-chasing gathers); they cap the effective memory-level
	// parallelism.
	DepFraction float64
	// RowHitRatio estimates the DRAM row-buffer hit ratio (0 defaults to
	// 0.3, a typical value for mixed streams).
	RowHitRatio float64
}

// ProfileFromCounters builds a Profile from a 1-core measurement plus the
// workload's dependent fraction (known from its construction or measured
// with a profiler).
func ProfileFromCounters(workCycles, misses uint64, depFraction float64) Profile {
	return Profile{
		WorkCycles:  float64(workCycles),
		Misses:      float64(misses),
		DepFraction: depFraction,
	}
}

// WhiteBox predicts contention from machine parameters and a workload
// profile, with no regression fitting.
type WhiteBox struct {
	Spec    machine.Spec
	Profile Profile
}

// ErrBadProfile is returned for non-positive profile quantities.
var ErrBadProfile = errors.New("core: invalid white-box profile")

// NewWhiteBox validates the inputs.
func NewWhiteBox(spec machine.Spec, p Profile) (*WhiteBox, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if p.WorkCycles < 0 || p.Misses <= 0 || p.DepFraction < 0 || p.DepFraction > 1 {
		return nil, ErrBadProfile
	}
	return &WhiteBox{Spec: spec, Profile: p}, nil
}

// serviceCycles returns the mean DRAM service time per request from the
// controller configuration and the profile's row-hit ratio.
func (w *WhiteBox) serviceCycles() float64 {
	rh := w.Profile.RowHitRatio
	if rh == 0 {
		rh = 0.3
	}
	return rh*float64(w.Spec.MC.HitLatency) + (1-rh)*float64(w.Spec.MC.MissLatency)
}

// mlpEff returns the effective memory-level parallelism per core: dependent
// misses serialize (MLP 1), independent ones overlap up to the MSHR count.
func (w *WhiteBox) mlpEff() float64 {
	d := w.Profile.DepFraction
	m := float64(w.Spec.MSHRs)
	// Harmonic blend: a stream alternating dependent and independent misses
	// has throughput limited by the dependent fraction.
	return 1 / (d/1 + (1-d)/m)
}

// baseLatency is the no-contention round trip of one miss: cache traversal
// plus DRAM service (local access).
func (w *WhiteBox) baseLatency() float64 {
	var traversal float64
	for _, lvl := range w.Spec.Levels {
		traversal += float64(lvl.Latency)
	}
	var bus float64
	if w.Spec.Bus != nil {
		bus = float64(w.Spec.Bus.Occupancy)
	}
	return traversal + bus + w.serviceCycles()
}

// mmcResponse returns the open M/M/c response time of an s-cycle service,
// c-channel station at arrival rate lambda (requests/cycle), or +Inf at or
// beyond capacity.
func mmcResponse(lambda, s float64, channels int) float64 {
	capacity := float64(channels) / s
	if lambda >= capacity {
		return math.Inf(1)
	}
	rho := lambda * s / float64(channels)
	// Erlang-C via the Erlang-B recurrence (cheap for small channel counts).
	a := lambda * s
	b := 1.0
	for k := 1; k <= channels; k++ {
		b = a * b / (float64(k) + a*b)
	}
	pWait := b / (1 - rho*(1-b))
	return s + pWait/(capacity-lambda)
}

// activeStations returns the number of active controllers and sockets for
// fill-first activation of n cores.
func (w *WhiteBox) activeStations(n int) (mcs, sockets int) {
	for s := 0; s < w.Spec.Sockets; s++ {
		if coresOnSocket(n, w.Spec.CoresPerSocket, s) > 0 {
			sockets++
		}
	}
	if w.Spec.UMA() {
		return 1, sockets
	}
	return sockets * w.Spec.MCsPerSocket, sockets
}

// rhs evaluates the response-time equation's right-hand side at candidate
// per-miss response time r: the no-queue path latency plus the queueing at
// the active stations under the issue rate n·mlp/r. It is decreasing in r.
func (w *WhiteBox) rhs(n int, r float64) float64 {
	spec := w.Spec
	mlp := w.mlpEff()
	svc := w.serviceCycles()
	activeMCs, activeSockets := w.activeStations(n)

	lambdaTotal := float64(n) * mlp / r
	respMC := mmcResponse(lambdaTotal/float64(activeMCs), svc, spec.MC.Channels)

	var respBus float64
	if spec.Bus != nil {
		respBus = mmcResponse(lambdaTotal/float64(activeSockets), float64(spec.Bus.Occupancy), 1)
	}

	var traversal float64
	for _, lvl := range spec.Levels {
		traversal += float64(lvl.Latency)
	}

	// Remote surcharge: with pages spread over active sockets, a fraction
	// (activeSockets-1)/activeSockets of accesses cross the interconnect
	// (NUMA only), out and back.
	remote := 0.0
	if !spec.UMA() && activeSockets > 1 {
		frac := float64(activeSockets-1) / float64(activeSockets)
		remote = frac * 2 * float64(spec.HopLatency) * w.avgHops()
	}
	return traversal + respBus + respMC + remote
}

// C predicts the total cycles at n active cores (fill-processor-first).
//
// Each core keeps mlp requests in flight, so the aggregate issue rate is
// λ = n·mlp/R — the closed-network feedback. The equilibrium response time
// solves R = rhs(R); since rhs is strictly decreasing in R, the root is
// unique and found by bracketed bisection. In the saturated regime this
// converges to R ≈ n·mlp/capacity, the linear-in-n growth the simulator
// measures, instead of diverging like the open-queue formula.
func (w *WhiteBox) C(n int) float64 {
	mlp := w.mlpEff()
	lo := w.baseLatency()
	hi := lo * 2
	for w.rhs(n, hi) > hi {
		hi *= 2
		if hi > 1e18 {
			break
		}
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if w.rhs(n, mid) > mid {
			lo = mid
		} else {
			hi = mid
		}
	}
	r := (lo + hi) / 2
	// Each miss occupies the thread for R/mlp effective cycles.
	return w.Profile.WorkCycles + w.Profile.Misses*r/mlp
}

// avgHops returns the mean hop count between distinct sockets' controllers
// under a uniform traffic mix, from the machine's interconnect links (1 for
// a direct link, up to 2 on the AMD partial mesh).
func (w *WhiteBox) avgHops() float64 {
	// The hop structure is part of machine.Spec only through Links; rebuild
	// the class counts cheaply: one hop for adjacent controllers, two
	// otherwise. A precise average needs the topology, so approximate with
	// 1.0 for two-socket machines and 1.33 for larger ones (the C8(1,2)
	// mean remote distance).
	if w.Spec.Sockets <= 2 {
		return 1.0
	}
	return 4.0 / 3.0
}

// Omega predicts the degree of contention from the white-box C(n).
func (w *WhiteBox) Omega(n int) float64 {
	return Omega(w.C(n), w.C(1))
}

// Curve evaluates ω(n) for n = 1..maxCores.
func (w *WhiteBox) Curve(maxCores int) []float64 {
	out := make([]float64, maxCores)
	for n := 1; n <= maxCores; n++ {
		out[n-1] = w.Omega(n)
	}
	return out
}
