package core

// Speedup analysis: the authors' companion work ([26] in the paper) uses
// the contention model to determine the speedup of a parallel program and
// the core count that maximizes it. With C(n) the total cycles summed over
// threads and the threads balanced (the paper's protocol), the wall-clock
// time on n cores is approximately C(n)/n, so
//
//	S(n) = C(1) / (C(n)/n) = n / (1 + ω(n))
//
// — contention directly divides the ideal linear speedup. Saturating
// contention (ω growing faster than linearly in n) makes S(n) peak at a
// finite core count; these helpers locate that peak.

// Speedup predicts S(n) = n / (1 + ω(n)) from the fitted model.
func (m Model) Speedup(n int) float64 {
	om := m.Omega(n)
	den := 1 + om
	if den <= 0 {
		// Positive cache effects (ω < -1 cannot happen with positive
		// cycles; guard regardless).
		return float64(n)
	}
	return float64(n) / den
}

// SpeedupCurve evaluates S(n) for n = 1..maxCores.
func (m Model) SpeedupCurve(maxCores int) []float64 {
	out := make([]float64, maxCores)
	for n := 1; n <= maxCores; n++ {
		out[n-1] = m.Speedup(n)
	}
	return out
}

// OptimalCores returns the core count in 1..maxCores with the highest
// predicted speedup, and that speedup. When contention keeps growing slower
// than linearly the optimum is simply maxCores.
func (m Model) OptimalCores(maxCores int) (cores int, speedup float64) {
	cores, speedup = 1, m.Speedup(1)
	for n := 2; n <= maxCores; n++ {
		if s := m.Speedup(n); s > speedup {
			cores, speedup = n, s
		}
	}
	return cores, speedup
}

// EfficientCores returns the largest core count whose parallel efficiency
// S(n)/n stays at or above the threshold (e.g. 0.5): the practical
// operating point the companion work recommends.
func (m Model) EfficientCores(maxCores int, minEfficiency float64) int {
	best := 1
	for n := 1; n <= maxCores; n++ {
		if m.Speedup(n)/float64(n) >= minEfficiency {
			best = n
		}
	}
	return best
}

// SpeedupFromMeasurements computes measured speedups n/(1+ω(n)) from a
// sweep, for model validation. The measurement at n=1 is the baseline; core
// counts without a baseline return nil.
func SpeedupFromMeasurements(sweep []Measurement) []float64 {
	var c1 float64
	for _, m := range sweep {
		if m.Cores == 1 {
			c1 = m.Cycles
			break
		}
	}
	if c1 == 0 {
		return nil
	}
	out := make([]float64, len(sweep))
	for i, m := range sweep {
		out[i] = float64(m.Cores) * c1 / m.Cycles
	}
	return out
}
