package core

import (
	"errors"
	"testing"

	"repro/internal/machine"
)

func memBoundProfile() Profile {
	return Profile{
		WorkCycles:  5e6,
		Misses:      5e5,
		DepFraction: 0.0, // streaming, full MLP
	}
}

func TestNewWhiteBoxValidation(t *testing.T) {
	spec := machine.IntelNUMA24()
	if _, err := NewWhiteBox(spec, Profile{Misses: 0}); !errors.Is(err, ErrBadProfile) {
		t.Errorf("zero misses: err = %v", err)
	}
	if _, err := NewWhiteBox(spec, Profile{Misses: 1, DepFraction: 2}); !errors.Is(err, ErrBadProfile) {
		t.Errorf("bad dep fraction: err = %v", err)
	}
	bad := spec
	bad.MSHRs = 0
	if _, err := NewWhiteBox(bad, memBoundProfile()); err == nil {
		t.Error("invalid machine accepted")
	}
	if _, err := NewWhiteBox(spec, memBoundProfile()); err != nil {
		t.Errorf("valid inputs rejected: %v", err)
	}
}

func TestWhiteBoxMonotoneContention(t *testing.T) {
	w, err := NewWhiteBox(machine.IntelNUMA24(), memBoundProfile())
	if err != nil {
		t.Fatal(err)
	}
	// Contention within one socket grows monotonically with cores.
	prev := 0.0
	for n := 1; n <= 12; n++ {
		om := w.Omega(n)
		if om < prev-1e-9 {
			t.Errorf("omega(%d) = %v decreased from %v within a socket", n, om, prev)
		}
		prev = om
	}
	// Activating the second socket's controller relieves pressure: the
	// per-core growth rate right after the boundary is smaller than right
	// before it.
	before := w.Omega(12) - w.Omega(11)
	after := w.Omega(14) - w.Omega(13)
	if after > before {
		t.Errorf("growth after new MC (%v) should not exceed growth before (%v)", after, before)
	}
}

func TestWhiteBoxDependentLoadsReduceContentionGrowth(t *testing.T) {
	// Dependent (serialized) misses self-throttle: contention at full
	// machine must be lower than for the streaming profile — the SP vs IS
	// distinction.
	stream := memBoundProfile()
	dep := memBoundProfile()
	dep.DepFraction = 1.0
	ws, err := NewWhiteBox(machine.IntelNUMA24(), stream)
	if err != nil {
		t.Fatal(err)
	}
	wd, err := NewWhiteBox(machine.IntelNUMA24(), dep)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Omega(24) <= wd.Omega(24) {
		t.Errorf("streaming omega %v should exceed dependent omega %v",
			ws.Omega(24), wd.Omega(24))
	}
	// But the dependent baseline C(1) is slower.
	if wd.C(1) <= ws.C(1) {
		t.Errorf("dependent C(1) %v should exceed streaming C(1) %v", wd.C(1), ws.C(1))
	}
}

func TestWhiteBoxMoreChannelsLessContention(t *testing.T) {
	// The paper's conclusion: additional memory bandwidth reduces
	// contention. Double the channels, same workload.
	narrow := machine.IntelNUMA24()
	wide := machine.IntelNUMA24()
	wide.MC.Channels = 6
	wn, err := NewWhiteBox(narrow, memBoundProfile())
	if err != nil {
		t.Fatal(err)
	}
	ww, err := NewWhiteBox(wide, memBoundProfile())
	if err != nil {
		t.Fatal(err)
	}
	if ww.Omega(24) >= wn.Omega(24) {
		t.Errorf("wide machine omega %v should be below narrow %v",
			ww.Omega(24), wn.Omega(24))
	}
}

func TestWhiteBoxComputeBoundStaysFlat(t *testing.T) {
	// EP-like profile: heavy work, few misses -> omega ~ 0 at any n.
	p := Profile{WorkCycles: 1e9, Misses: 1e3, DepFraction: 0}
	w, err := NewWhiteBox(machine.AMDNUMA48(), p)
	if err != nil {
		t.Fatal(err)
	}
	if om := w.Omega(48); om > 0.05 {
		t.Errorf("compute-bound omega(48) = %v, want ~0", om)
	}
}

func TestWhiteBoxQualitativeAgreementWithFittedModel(t *testing.T) {
	// Both models should agree that the memory-bound profile saturates a
	// single socket: omega(12) well above 0.5 on the Intel NUMA machine.
	w, err := NewWhiteBox(machine.IntelNUMA24(), memBoundProfile())
	if err != nil {
		t.Fatal(err)
	}
	if om := w.Omega(12); om < 0.5 {
		t.Errorf("white-box omega(12) = %v, want substantial contention", om)
	}
	curve := w.Curve(24)
	if len(curve) != 24 || curve[0] != 0 {
		t.Errorf("curve = %v", curve[:3])
	}
}

func TestProfileFromCounters(t *testing.T) {
	p := ProfileFromCounters(1000, 50, 0.25)
	if p.WorkCycles != 1000 || p.Misses != 50 || p.DepFraction != 0.25 {
		t.Errorf("profile = %+v", p)
	}
}

func TestWhiteBoxUMABusSurcharge(t *testing.T) {
	// The UMA machine's per-socket bus adds to the base latency.
	w, err := NewWhiteBox(machine.IntelUMA8(), memBoundProfile())
	if err != nil {
		t.Fatal(err)
	}
	noBus := machine.IntelUMA8()
	noBus.Bus = nil
	w2, err := NewWhiteBox(noBus, memBoundProfile())
	if err != nil {
		t.Fatal(err)
	}
	if w.C(1) <= w2.C(1) {
		t.Error("bus occupancy should add to the uncontended latency")
	}
}
