package machine

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/memctrl"
)

// CacheScale is the uniform factor by which preset cache capacities are
// reduced relative to the physical parts, so whole-program simulations stay
// fast. Workload problem classes are scaled by the same factor (see
// internal/workload), preserving footprint:cache ratios.
const CacheScale = 16

// IntelUMA8 returns the paper's 8-core UMA machine: dual quad-core Intel
// Xeon E5320 (Clovertown, 1.86 GHz), one shared memory controller with
// dual-channel DDR2, per-socket front-side buses, and a socket-shared L2 as
// the last cache level. Physical 32 KB L1 / 4 MB per-socket L2 scale to
// 2 KB / 256 KB.
func IntelUMA8() Spec {
	return Spec{
		Name:           "IntelUMA8",
		Sockets:        2,
		CoresPerSocket: 4,
		ClockGHz:       1.86,
		Levels: []CacheLevel{
			{Config: cache.Config{Name: "L1", Size: 2 << 10, Line: 64, Ways: 8, Latency: 3}, Scope: PerCore},
			{Config: cache.Config{Name: "L2", Size: 256 << 10, Line: 64, Ways: 16, Latency: 14}, Scope: PerSocket},
		},
		MCsPerSocket: 0, // UMA: single shared controller
		MC: memctrl.Config{
			Channels:    2,
			Banks:       8,
			RowBytes:    2048,
			LineBytes:   64,
			HitLatency:  35,
			MissLatency: 110,
			Discipline:  memctrl.FCFS,
		},
		Bus:   &BusConfig{Occupancy: 12},
		MSHRs: 6,
	}
}

// IntelNUMA24 returns the paper's 24-core NUMA machine: dual six-core Intel
// Xeon X5650 (Westmere, 2.66 GHz) with two hardware threads per core
// counted as independent cores, one triple-channel DDR3 memory controller
// per socket, and two directly-linked NUMA nodes. Physical 12 MB L3 scales
// to 768 KB per socket.
func IntelNUMA24() Spec {
	return Spec{
		Name:           "IntelNUMA24",
		Sockets:        2,
		CoresPerSocket: 12,
		ClockGHz:       2.66,
		Levels: []CacheLevel{
			{Config: cache.Config{Name: "L1", Size: 2 << 10, Line: 64, Ways: 8, Latency: 4}, Scope: PerCore},
			{Config: cache.Config{Name: "L2", Size: 16 << 10, Line: 64, Ways: 8, Latency: 10}, Scope: PerCore},
			{Config: cache.Config{Name: "L3", Size: 768 << 10, Line: 64, Ways: 12, Latency: 38}, Scope: PerSocket},
		},
		MCsPerSocket: 1,
		MC: memctrl.Config{
			Channels:    3,
			Banks:       8,
			RowBytes:    2048,
			LineBytes:   64,
			HitLatency:  26,
			MissLatency: 80,
			Discipline:  memctrl.FRFCFS,
		},
		HopLatency:    60,
		LinkOccupancy: 40,
		Links:         [][2]int{{0, 1}},
		MSHRs:         10,
	}
}

// AMDNUMA48 returns the paper's 48-core NUMA machine: quad twelve-core AMD
// Opteron 6172 (Magny-Cours, 2.1 GHz) with two memory controllers per
// package — eight NUMA nodes in a partial mesh with direct, one-hop and
// two-hop latency classes (modeled as the circulant graph C8(1,2)).
// Physical 10 MB per-socket L3 scales to 640 KB.
func AMDNUMA48() Spec {
	links := circulantLinks(8, 1, 2)
	return Spec{
		Name:           "AMDNUMA48",
		Sockets:        4,
		CoresPerSocket: 12,
		ClockGHz:       2.1,
		Levels: []CacheLevel{
			{Config: cache.Config{Name: "L1", Size: 4 << 10, Line: 64, Ways: 2, Latency: 3}, Scope: PerCore},
			{Config: cache.Config{Name: "L2", Size: 32 << 10, Line: 64, Ways: 16, Latency: 12}, Scope: PerCore},
			{Config: cache.Config{Name: "L3", Size: 640 << 10, Line: 64, Ways: 10, Latency: 40}, Scope: PerSocket},
		},
		MCsPerSocket: 2,
		MC: memctrl.Config{
			Channels:    2,
			Banks:       8,
			RowBytes:    2048,
			LineBytes:   64,
			HitLatency:  28,
			MissLatency: 85,
			Discipline:  memctrl.FRFCFS,
		},
		HopLatency:    50,
		LinkOccupancy: 16,
		Links:         links,
		MSHRs:         8,
	}
}

// circulantLinks returns the undirected edge list of the circulant graph
// C_n(offsets...).
func circulantLinks(n int, offsets ...int) [][2]int {
	seen := map[[2]int]bool{}
	var links [][2]int
	for i := 0; i < n; i++ {
		for _, o := range offsets {
			a, b := i, (i+o)%n
			if a > b {
				a, b = b, a
			}
			key := [2]int{a, b}
			if !seen[key] {
				seen[key] = true
				links = append(links, key)
			}
		}
	}
	return links
}

// presets maps machine names to constructors.
var presets = map[string]func() Spec{
	"IntelUMA8":   IntelUMA8,
	"IntelNUMA24": IntelNUMA24,
	"AMDNUMA48":   AMDNUMA48,
}

// ByName returns the preset spec with the given name.
func ByName(name string) (Spec, error) {
	ctor, ok := presets[name]
	if !ok {
		return Spec{}, fmt.Errorf("machine: unknown preset %q (have %v)", name, Names())
	}
	return ctor(), nil
}

// Names lists available preset names in sorted order.
func Names() []string {
	var names []string
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the three paper machines in the order the paper presents
// them (UMA 8, Intel NUMA 24, AMD NUMA 48).
func All() []Spec {
	return []Spec{IntelUMA8(), IntelNUMA24(), AMDNUMA48()}
}
