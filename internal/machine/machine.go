// Package machine describes and instantiates the multicore systems of the
// paper's testbed (section III-A): an 8-core Intel UMA machine (dual Xeon
// E5320), a 24-core Intel NUMA machine (dual Xeon X5650, SMT counted as
// independent cores per the paper) and a 48-core AMD NUMA machine (quad
// Opteron 6172 with eight memory controllers).
//
// A Spec is a declarative description — sockets, cores, cache levels with
// per-core or per-socket scope, memory controllers, UMA front-side buses
// and the NUMA interconnect — and Build instantiates the simulation
// hardware (cache hierarchies, controllers, topology) against a
// discrete-event clock.
//
// Cache and DRAM sizes in the presets are uniformly scaled down from the
// physical parts (documented per preset) so that whole-program simulations
// complete quickly; the workload generator applies the same scale to its
// problem classes, preserving the footprint:cache ratios that determine the
// paper's contention regimes.
package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/interconnect"
	"repro/internal/memctrl"
)

// Scope says whether a cache level is replicated per core or shared by all
// cores of a socket.
type Scope uint8

const (
	// PerCore replicates the level for every core.
	PerCore Scope = iota
	// PerSocket shares one instance among all cores of a socket.
	PerSocket
)

// String implements fmt.Stringer.
func (s Scope) String() string {
	switch s {
	case PerCore:
		return "per-core"
	case PerSocket:
		return "per-socket"
	default:
		return "unknown"
	}
}

// CacheLevel is one level of the hierarchy plus its sharing scope.
type CacheLevel struct {
	cache.Config
	Scope Scope
}

// BusConfig describes the per-socket front-side bus of a UMA system: a
// single-server queue each request occupies for Occupancy cycles on its way
// to the shared memory controller.
type BusConfig struct {
	// Occupancy is the bus service time per request in cycles.
	Occupancy uint64
}

// Spec declares a machine.
type Spec struct {
	// Name identifies the machine in reports.
	Name string
	// Sockets is the number of processor packages.
	Sockets int
	// CoresPerSocket counts logical cores (hardware threads) per socket,
	// since each hardware thread issues memory requests independently.
	CoresPerSocket int
	// ClockGHz converts cycles to wall time (used by the 5 µs sampler).
	ClockGHz float64
	// Levels lists cache levels fastest-first.
	Levels []CacheLevel
	// MCsPerSocket is the number of local memory controllers per socket in
	// a NUMA machine, or 0 for a UMA machine with one shared controller.
	MCsPerSocket int
	// MC is the template configuration for every memory controller.
	MC memctrl.Config
	// Bus, when non-nil, places a per-socket front-side bus between each
	// socket and the shared controller (UMA machines only).
	Bus *BusConfig
	// HopLatency is the per-hop latency of the NUMA interconnect in cycles.
	HopLatency uint64
	// LinkOccupancy is the time in cycles a remote transfer occupies its
	// socket's interconnect link in each direction (QPI/HyperTransport
	// bandwidth); 0 disables link-bandwidth modeling.
	LinkOccupancy uint64
	// Links is the NUMA interconnect over memory-controller nodes;
	// ignored for UMA.
	Links [][2]int
	// MSHRs is the number of outstanding off-chip misses a core sustains
	// before stalling (memory-level parallelism).
	MSHRs int
	// SMT is the number of hardware threads per physical core (1 = none,
	// 2 = HyperThreading). Logical cores are enumerated physical-cores-
	// first within each socket (Linux convention), so with fill-first
	// activation the sibling threads activate in the second half of the
	// socket. Siblings share the physical core's issue bandwidth: while
	// both are active each retires work at SMTSlowdown times the cost.
	SMT int
	// SMTSlowdown is the per-thread work-cycle cost factor while the
	// sibling hardware thread is active; 0 defaults to 1.55 (two threads
	// together retire ~1.3x a single thread, each at ~65% speed).
	SMTSlowdown float64
}

// Validate checks structural consistency.
func (s Spec) Validate() error {
	if s.Sockets < 1 || s.CoresPerSocket < 1 {
		return fmt.Errorf("machine %s: need at least one socket and core", s.Name)
	}
	if len(s.Levels) == 0 {
		return fmt.Errorf("machine %s: need at least one cache level", s.Name)
	}
	if s.MCsPerSocket < 0 {
		return fmt.Errorf("machine %s: negative MCsPerSocket", s.Name)
	}
	if s.MSHRs < 1 {
		return fmt.Errorf("machine %s: MSHRs must be >= 1", s.Name)
	}
	if s.SMT > 1 {
		if s.SMT != 2 {
			return fmt.Errorf("machine %s: SMT must be 1 or 2", s.Name)
		}
		if s.CoresPerSocket%2 != 0 {
			return fmt.Errorf("machine %s: SMT=2 needs an even logical core count per socket", s.Name)
		}
	}
	if err := s.MC.Validate(); err != nil {
		return err
	}
	return nil
}

// UMA reports whether the machine has a single shared memory controller.
func (s Spec) UMA() bool { return s.MCsPerSocket == 0 }

// TotalCores returns Sockets*CoresPerSocket.
func (s Spec) TotalCores() int { return s.Sockets * s.CoresPerSocket }

// NumMCs returns the number of memory controllers (1 for UMA).
func (s Spec) NumMCs() int {
	if s.UMA() {
		return 1
	}
	return s.Sockets * s.MCsPerSocket
}

// SocketOf returns the socket index of a core under the fill-processor-
// first numbering the paper uses (cores 0..CoresPerSocket-1 on socket 0,
// and so on).
func (s Spec) SocketOf(core int) int { return core / s.CoresPerSocket }

// LocalMCs returns the indices of the memory controllers local to socket.
// For UMA every socket shares controller 0.
func (s Spec) LocalMCs(socket int) []int {
	if s.UMA() {
		return []int{0}
	}
	mcs := make([]int, s.MCsPerSocket)
	for i := range mcs {
		mcs[i] = socket*s.MCsPerSocket + i
	}
	return mcs
}

// SMTSibling returns the logical core sharing a physical core with the
// given core, or -1 when the machine has no SMT. With physical-cores-first
// enumeration, local id i pairs with i +/- CoresPerSocket/2.
func (s Spec) SMTSibling(core int) int {
	if s.SMT < 2 {
		return -1
	}
	sock := s.SocketOf(core)
	local := core - sock*s.CoresPerSocket
	half := s.CoresPerSocket / 2
	var sibling int
	if local < half {
		sibling = local + half
	} else {
		sibling = local - half
	}
	return sock*s.CoresPerSocket + sibling
}

// SMTSlowdownFactor returns the effective slowdown while siblings share.
func (s Spec) SMTSlowdownFactor() float64 {
	if s.SMTSlowdown > 0 {
		return s.SMTSlowdown
	}
	return 1.55
}

// SocketOfMC returns the socket owning a memory controller (0 for UMA).
func (s Spec) SocketOfMC(mc int) int {
	if s.UMA() {
		return 0
	}
	return mc / s.MCsPerSocket
}

// Machine is an instantiated system: per-core cache hierarchies wired to
// shared levels, memory controllers, optional UMA buses and the NUMA
// topology.
type Machine struct {
	Spec Spec
	// Hierarchies has one entry per core.
	Hierarchies []*cache.Hierarchy
	// Caches lists each distinct cache exactly once (for stats reset).
	Caches []*cache.Cache
	// MCs lists the memory controllers, indexed by MC/NUMA node id.
	MCs []*memctrl.Controller
	// Buses lists the per-socket UMA buses (nil entries for NUMA machines).
	Buses []*memctrl.Controller
	// LinkServers lists the per-socket interconnect link servers (empty
	// when LinkOccupancy is 0 or the machine is UMA). Each is a two-channel
	// queue approximating a full-duplex QPI/HT link.
	LinkServers []*memctrl.Controller
	// Topo is the interconnect over MC nodes (single node for UMA).
	Topo *interconnect.Topology
}

// Build instantiates the spec against the given clock.
func Build(spec Spec, clk memctrl.Clock) (*Machine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Spec: spec}

	// Shared levels: one instance per socket per shared level index.
	sharedBySocket := make([]map[int]*cache.Cache, spec.Sockets)
	for sock := range sharedBySocket {
		sharedBySocket[sock] = make(map[int]*cache.Cache)
	}
	for core := 0; core < spec.TotalCores(); core++ {
		sock := spec.SocketOf(core)
		var levels []*cache.Cache
		for li, lvl := range spec.Levels {
			switch lvl.Scope {
			case PerCore:
				cfg := lvl.Config
				cfg.Name = fmt.Sprintf("%s.core%d", lvl.Name, core)
				c, err := cache.New(cfg)
				if err != nil {
					return nil, err
				}
				m.Caches = append(m.Caches, c)
				levels = append(levels, c)
			case PerSocket:
				c, ok := sharedBySocket[sock][li]
				if !ok {
					cfg := lvl.Config
					cfg.Name = fmt.Sprintf("%s.socket%d", lvl.Name, sock)
					var err error
					c, err = cache.New(cfg)
					if err != nil {
						return nil, err
					}
					sharedBySocket[sock][li] = c
					m.Caches = append(m.Caches, c)
				}
				levels = append(levels, c)
			default:
				return nil, fmt.Errorf("machine %s: bad scope %d", spec.Name, lvl.Scope)
			}
		}
		m.Hierarchies = append(m.Hierarchies, cache.NewHierarchy(levels...))
	}

	// Memory controllers.
	for i := 0; i < spec.NumMCs(); i++ {
		cfg := spec.MC
		cfg.Name = fmt.Sprintf("MC%d", i)
		mc, err := memctrl.New(cfg, clk)
		if err != nil {
			return nil, err
		}
		m.MCs = append(m.MCs, mc)
	}

	// UMA per-socket buses, modeled as single-channel FCFS servers.
	if spec.Bus != nil {
		for sock := 0; sock < spec.Sockets; sock++ {
			cfg := memctrl.Config{
				Name:        fmt.Sprintf("bus%d", sock),
				Channels:    1,
				Banks:       1,
				RowBytes:    1 << 30, // every request "hits": constant occupancy
				LineBytes:   spec.MC.LineBytes,
				HitLatency:  spec.Bus.Occupancy,
				MissLatency: spec.Bus.Occupancy,
				Discipline:  memctrl.FCFS,
			}
			bus, err := memctrl.New(cfg, clk)
			if err != nil {
				return nil, err
			}
			m.Buses = append(m.Buses, bus)
		}
	}

	// NUMA link-bandwidth servers, one per socket.
	if !spec.UMA() && spec.LinkOccupancy > 0 {
		for sock := 0; sock < spec.Sockets; sock++ {
			cfg := memctrl.Config{
				Name:        fmt.Sprintf("link%d", sock),
				Channels:    2, // full duplex
				Banks:       1,
				RowBytes:    1 << 30, // constant occupancy
				LineBytes:   spec.MC.LineBytes,
				HitLatency:  spec.LinkOccupancy,
				MissLatency: spec.LinkOccupancy,
				Discipline:  memctrl.FCFS,
			}
			link, err := memctrl.New(cfg, clk)
			if err != nil {
				return nil, err
			}
			m.LinkServers = append(m.LinkServers, link)
		}
	}

	// Interconnect.
	var err error
	if spec.UMA() {
		m.Topo = interconnect.SingleNode(spec.Name)
	} else {
		m.Topo, err = interconnect.New(spec.Name, spec.NumMCs(), spec.Links, spec.HopLatency)
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// LLCOf returns the last-level cache serving the core.
func (m *Machine) LLCOf(core int) *cache.Cache {
	return m.Hierarchies[core].LLC()
}

// LLCMisses sums demand misses over the distinct last-level caches.
func (m *Machine) LLCMisses() uint64 {
	seen := map[*cache.Cache]bool{}
	var total uint64
	for core := range m.Hierarchies {
		llc := m.LLCOf(core)
		if llc != nil && !seen[llc] {
			seen[llc] = true
			total += llc.Stats().Misses
		}
	}
	return total
}

// ResetStats zeroes every cache, controller and bus counter.
func (m *Machine) ResetStats() {
	// Hierarchy reset also zeroes its levels; shared levels are zeroed more
	// than once, which is harmless.
	for _, h := range m.Hierarchies {
		h.ResetStats()
	}
	for _, mc := range m.MCs {
		mc.ResetStats()
	}
	for _, b := range m.Buses {
		b.ResetStats()
	}
	for _, l := range m.LinkServers {
		l.ResetStats()
	}
}

// CyclesPerMicrosecond converts the spec clock into cycles per µs, used by
// the 5 µs burstiness sampler.
func (m *Machine) CyclesPerMicrosecond() uint64 {
	return uint64(m.Spec.ClockGHz * 1000)
}
