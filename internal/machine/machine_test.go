package machine

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/eventq"
	"repro/internal/memctrl"
)

func testSpec() Spec {
	return Spec{
		Name:           "test",
		Sockets:        2,
		CoresPerSocket: 2,
		ClockGHz:       2.0,
		Levels: []CacheLevel{
			{Config: cache.Config{Name: "L1", Size: 1 << 10, Line: 64, Ways: 2, Latency: 2}, Scope: PerCore},
			{Config: cache.Config{Name: "L2", Size: 8 << 10, Line: 64, Ways: 4, Latency: 10}, Scope: PerSocket},
		},
		MCsPerSocket: 1,
		MC: memctrl.Config{
			Channels: 1, Banks: 2, RowBytes: 2048, LineBytes: 64,
			HitLatency: 20, MissLatency: 60, Discipline: memctrl.FCFS,
		},
		HopLatency: 50,
		Links:      [][2]int{{0, 1}},
		MSHRs:      4,
	}
}

func TestSpecValidate(t *testing.T) {
	good := testSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []func(*Spec){
		func(s *Spec) { s.Sockets = 0 },
		func(s *Spec) { s.CoresPerSocket = 0 },
		func(s *Spec) { s.Levels = nil },
		func(s *Spec) { s.MCsPerSocket = -1 },
		func(s *Spec) { s.MSHRs = 0 },
		func(s *Spec) { s.MC.Channels = 0 },
	}
	for i, mutate := range cases {
		s := testSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestSpecGeometry(t *testing.T) {
	s := testSpec()
	if s.TotalCores() != 4 {
		t.Errorf("total cores = %d", s.TotalCores())
	}
	if s.UMA() {
		t.Error("NUMA spec reported UMA")
	}
	if s.NumMCs() != 2 {
		t.Errorf("NumMCs = %d", s.NumMCs())
	}
	if s.SocketOf(0) != 0 || s.SocketOf(1) != 0 || s.SocketOf(2) != 1 || s.SocketOf(3) != 1 {
		t.Error("SocketOf wrong")
	}
	if got := s.LocalMCs(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("LocalMCs(1) = %v", got)
	}
	if s.SocketOfMC(1) != 1 {
		t.Error("SocketOfMC wrong")
	}

	u := IntelUMA8()
	if !u.UMA() || u.NumMCs() != 1 {
		t.Error("UMA geometry wrong")
	}
	if got := u.LocalMCs(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("UMA LocalMCs = %v", got)
	}
	if u.SocketOfMC(0) != 0 {
		t.Error("UMA SocketOfMC wrong")
	}
}

func TestBuildNUMAStructure(t *testing.T) {
	var q eventq.Queue
	m, err := Build(testSpec(), &q)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(m.Hierarchies) != 4 {
		t.Fatalf("hierarchies = %d", len(m.Hierarchies))
	}
	// 4 private L1s + 2 shared L2s.
	if len(m.Caches) != 6 {
		t.Errorf("distinct caches = %d, want 6", len(m.Caches))
	}
	if len(m.MCs) != 2 {
		t.Errorf("MCs = %d", len(m.MCs))
	}
	if len(m.Buses) != 0 {
		t.Errorf("NUMA machine should have no buses, got %d", len(m.Buses))
	}
	// Cores 0 and 1 share one L2; cores 2 and 3 share another.
	if m.LLCOf(0) != m.LLCOf(1) {
		t.Error("cores 0,1 should share L2")
	}
	if m.LLCOf(0) == m.LLCOf(2) {
		t.Error("cores on different sockets must not share L2")
	}
	if m.Topo.Nodes() != 2 || m.Topo.Hops(0, 1) != 1 {
		t.Error("topology wrong")
	}
}

func TestBuildUMAStructure(t *testing.T) {
	var q eventq.Queue
	m, err := Build(IntelUMA8(), &q)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(m.MCs) != 1 {
		t.Errorf("UMA MCs = %d", len(m.MCs))
	}
	if len(m.Buses) != 2 {
		t.Errorf("UMA buses = %d, want 2", len(m.Buses))
	}
	if m.Topo.Nodes() != 1 {
		t.Errorf("UMA topology nodes = %d", m.Topo.Nodes())
	}
	// 8 L1 + 2 L2 = 10 distinct caches.
	if len(m.Caches) != 10 {
		t.Errorf("distinct caches = %d, want 10", len(m.Caches))
	}
}

func TestBuildInvalid(t *testing.T) {
	var q eventq.Queue
	s := testSpec()
	s.MSHRs = 0
	if _, err := Build(s, &q); err == nil {
		t.Error("invalid spec built")
	}
	s = testSpec()
	s.Links = nil // disconnected 2-node NUMA graph
	if _, err := Build(s, &q); err == nil {
		t.Error("disconnected topology accepted")
	}
	s = testSpec()
	s.Levels[0].Size = 100 // invalid cache geometry
	if _, err := Build(s, &q); err == nil {
		t.Error("invalid cache accepted")
	}
}

func TestLLCMissesAggregation(t *testing.T) {
	var q eventq.Queue
	m, err := Build(testSpec(), &q)
	if err != nil {
		t.Fatal(err)
	}
	// Touch distinct lines through cores on both sockets.
	m.Hierarchies[0].Access(0)
	m.Hierarchies[0].Access(64)
	m.Hierarchies[2].Access(1 << 20)
	if got := m.LLCMisses(); got != 3 {
		t.Errorf("LLC misses = %d, want 3", got)
	}
	// A shared-LLC hit from the sibling core adds no miss.
	m.Hierarchies[1].Access(0)
	if got := m.LLCMisses(); got != 3 {
		t.Errorf("LLC misses after shared hit = %d, want 3", got)
	}
	m.ResetStats()
	if got := m.LLCMisses(); got != 0 {
		t.Errorf("LLC misses after reset = %d", got)
	}
}

func TestPresetsBuild(t *testing.T) {
	for _, spec := range All() {
		var q eventq.Queue
		m, err := Build(spec, &q)
		if err != nil {
			t.Errorf("%s: %v", spec.Name, err)
			continue
		}
		if len(m.Hierarchies) != spec.TotalCores() {
			t.Errorf("%s: %d hierarchies", spec.Name, len(m.Hierarchies))
		}
	}
}

func TestPresetGeometryMatchesPaper(t *testing.T) {
	u := IntelUMA8()
	if u.TotalCores() != 8 || u.NumMCs() != 1 {
		t.Error("IntelUMA8 geometry wrong")
	}
	in := IntelNUMA24()
	if in.TotalCores() != 24 || in.NumMCs() != 2 {
		t.Error("IntelNUMA24 geometry wrong")
	}
	amd := AMDNUMA48()
	if amd.TotalCores() != 48 || amd.NumMCs() != 8 {
		t.Error("AMDNUMA48 geometry wrong")
	}
	// AMD topology must expose three latency classes (paper Fig. 2b).
	var q eventq.Queue
	m, err := Build(amd, &q)
	if err != nil {
		t.Fatal(err)
	}
	if classes := m.Topo.LatencyClasses(); len(classes) != 3 {
		t.Errorf("AMD latency classes = %v", classes)
	}
	// Intel NUMA: two classes (direct, one hop).
	m2, err := Build(in, &q)
	if err != nil {
		t.Fatal(err)
	}
	if classes := m2.Topo.LatencyClasses(); len(classes) != 2 {
		t.Errorf("Intel NUMA latency classes = %v", classes)
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, err := ByName("IntelUMA8"); err != nil {
		t.Errorf("ByName: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
	names := Names()
	if len(names) != 3 {
		t.Errorf("names = %v", names)
	}
}

func TestCyclesPerMicrosecond(t *testing.T) {
	var q eventq.Queue
	m, _ := Build(IntelNUMA24(), &q)
	if got := m.CyclesPerMicrosecond(); got != 2660 {
		t.Errorf("cycles/us = %d, want 2660", got)
	}
}

func TestScopeString(t *testing.T) {
	if PerCore.String() != "per-core" || PerSocket.String() != "per-socket" || Scope(9).String() != "unknown" {
		t.Error("scope strings wrong")
	}
}

func TestLinkServersBuilt(t *testing.T) {
	var q eventq.Queue
	// NUMA preset with link bandwidth: one link server per socket.
	m, err := Build(IntelNUMA24(), &q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.LinkServers) != 2 {
		t.Errorf("link servers = %d, want 2", len(m.LinkServers))
	}
	// UMA machines have no interconnect links.
	mu, err := Build(IntelUMA8(), &q)
	if err != nil {
		t.Fatal(err)
	}
	if len(mu.LinkServers) != 0 {
		t.Errorf("UMA link servers = %d, want 0", len(mu.LinkServers))
	}
	// Disabling LinkOccupancy disables the servers.
	s := IntelNUMA24()
	s.LinkOccupancy = 0
	m2, err := Build(s, &q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.LinkServers) != 0 {
		t.Errorf("disabled link servers = %d, want 0", len(m2.LinkServers))
	}
}

func TestResetStatsCoversLinks(t *testing.T) {
	var q eventq.Queue
	m, err := Build(IntelNUMA24(), &q)
	if err != nil {
		t.Fatal(err)
	}
	m.LinkServers[0].Submit(0, func(bool) {})
	q.Run()
	m.ResetStats()
	if m.LinkServers[0].Stats().Requests != 0 {
		t.Error("link stats not reset")
	}
}
