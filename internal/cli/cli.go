// Package cli centralizes the flag surface and lifecycle wiring shared by
// the cmd/* drivers: machine/program/class selection, workload scale, the
// worker-pool bound, telemetry sinks (-trace-out, -debug-addr), the sweep
// resume journal (-resume), and signal-driven context cancellation.
//
// Before this package each driver re-declared the same flags with subtly
// different help strings and re-implemented the tracer/debug-server/cache
// plumbing; a new cross-cutting flag meant six edits. Now a flag lands
// here once and every driver picks it up by calling the matching
// register method.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Common holds the values of the shared flags a driver opted into. Zero
// value plus the Register* calls the driver needs, then flag.Parse, then
// the accessor/builder methods.
type Common struct {
	Machine   string
	Program   string
	Class     string
	Scale     float64
	Jobs      int
	Seed      int64
	Verbose   bool
	TraceOut  string
	DebugAddr string
	Resume    string
}

// RegisterMachine adds -machine restricted to a single preset.
func (c *Common) RegisterMachine(def string) {
	flag.StringVar(&c.Machine, "machine", def, "machine preset: "+strings.Join(machine.Names(), ", "))
}

// RegisterMachineAll adds -machine accepting a preset or 'all'.
func (c *Common) RegisterMachineAll(def string) {
	flag.StringVar(&c.Machine, "machine", def, "machine preset or 'all': "+strings.Join(machine.Names(), ", "))
}

// RegisterWorkload adds -program and -class.
func (c *Common) RegisterWorkload(defProgram, defClass string) {
	flag.StringVar(&c.Program, "program", defProgram, "program: "+strings.Join(workload.Names(), ", "))
	flag.StringVar(&c.Class, "class", defClass, "problem class (S W A B C for NPB; simsmall..native for x264)")
}

// RegisterScale adds -scale.
func (c *Common) RegisterScale() {
	flag.Float64Var(&c.Scale, "scale", 1.0, "workload iteration scale (lower = faster, noisier)")
}

// RegisterJobs adds -jobs.
func (c *Common) RegisterJobs() {
	flag.IntVar(&c.Jobs, "jobs", 0, "max concurrent simulations (0 = GOMAXPROCS); results are identical at any setting")
}

// RegisterSeed adds -seed: the deterministic-randomness root for drivers
// that generate seeded stochastic inputs (loadgen's arrival schedules).
// The same seed reproduces the same input byte-for-byte.
func (c *Common) RegisterSeed() {
	flag.Int64Var(&c.Seed, "seed", 1, "random seed; the same seed reproduces the same schedule exactly")
}

// RegisterVerbose adds -v.
func (c *Common) RegisterVerbose() {
	flag.BoolVar(&c.Verbose, "v", false, "log each simulation run with progress counter and timing")
}

// RegisterTelemetry adds -trace-out and -debug-addr.
func (c *Common) RegisterTelemetry() {
	flag.StringVar(&c.TraceOut, "trace-out", "", "write one NDJSON runner.span per served run (sim|dedup|cache|resumed) to this file")
	flag.StringVar(&c.DebugAddr, "debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
}

// RegisterTrace adds -trace-out alone, for drivers that emit trace events
// but run no debug server (loadgen).
func (c *Common) RegisterTrace() {
	flag.StringVar(&c.TraceOut, "trace-out", "", "write NDJSON trace events to this file")
}

// RegisterResume adds -resume: the append-only sweep journal that lets a
// killed run restart without re-simulating completed work.
func (c *Common) RegisterResume() {
	flag.StringVar(&c.Resume, "resume", "", "resume journal file: completed runs are appended as they finish and replayed on restart, so a killed sweep re-simulates only the remainder")
}

// Spec resolves -machine to a single preset.
func (c *Common) Spec() (machine.Spec, error) {
	return machine.ByName(c.Machine)
}

// Machines resolves -machine, accepting 'all'.
func (c *Common) Machines() ([]machine.Spec, error) {
	if c.Machine == "all" {
		return machine.All(), nil
	}
	spec, err := machine.ByName(c.Machine)
	if err != nil {
		return nil, err
	}
	return []machine.Spec{spec}, nil
}

// WorkloadClass returns -class as a workload.Class.
func (c *Common) WorkloadClass() workload.Class { return workload.Class(c.Class) }

// Tuning returns the workload tuning implied by -scale.
func (c *Common) Tuning() workload.Tuning { return workload.Tuning{RefScale: c.Scale} }

// SignalContext derives from parent a context canceled on SIGINT/SIGTERM,
// so Ctrl-C (or the CI resilience job's kill) propagates through the
// runner into every in-flight simulation instead of tearing the process
// down mid-write. A second signal falls back to the default handler and
// kills the process outright. Commands pass context.Background(); library
// code must not create root contexts (enforced by simcheck's ctxfirst).
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, syscall.SIGINT, syscall.SIGTERM)
}

// NewRunner builds an experiments.Runner wired from the registered flags:
// Jobs from -jobs, Progress from -v, an NDJSON tracer from -trace-out, a
// metrics registry plus debug HTTP server from -debug-addr, and the
// resume journal from -resume (replayed entries are logged to stderr).
// The returned cleanup closes what was opened; call it before exit.
func (c *Common) NewRunner() (*experiments.Runner, func(), error) {
	r := experiments.NewRunner(c.Tuning())
	r.Jobs = c.Jobs
	if c.Verbose {
		r.Progress = os.Stderr
	}
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	fail := func(err error) (*experiments.Runner, func(), error) {
		cleanup()
		return nil, nil, err
	}
	if c.TraceOut != "" {
		f, err := os.Create(c.TraceOut)
		if err != nil {
			return fail(err)
		}
		cleanups = append(cleanups, func() { f.Close() })
		r.Tracer = telemetry.NewTracer(f)
	}
	if c.DebugAddr != "" {
		r.Metrics = telemetry.NewRegistry()
		addr, stop, err := telemetry.StartDebugServer(c.DebugAddr, r.Metrics)
		if err != nil {
			return fail(err)
		}
		cleanups = append(cleanups, func() { stop() })
		fmt.Fprintf(os.Stderr, "debug server listening on %s\n", addr)
	}
	if c.Resume != "" {
		// The journal needs a Progress writer for its warnings even when
		// -v is off; skipped-line warnings must never be silent.
		if r.Progress == nil {
			r.Progress = os.Stderr
		}
		resumed, skipped, err := r.AttachJournal(c.Resume)
		if err != nil {
			return fail(err)
		}
		cleanups = append(cleanups, func() { r.CloseJournal() })
		if resumed > 0 || skipped > 0 {
			fmt.Fprintf(os.Stderr, "resume: replayed %d runs from %s (%d lines skipped)\n",
				resumed, c.Resume, skipped)
		}
	}
	return r, cleanup, nil
}

// OpenTracer opens -trace-out for a driver that needs a tracer without a
// Runner (loadgen's URL mode). A nil tracer (no -trace-out) is returned as
// (nil, cleanup, nil) — telemetry.Tracer methods are nil-safe. The cleanup
// closes the file; call it before exit.
func (c *Common) OpenTracer() (*telemetry.Tracer, func(), error) {
	if c.TraceOut == "" {
		return nil, func() {}, nil
	}
	f, err := os.Create(c.TraceOut)
	if err != nil {
		return nil, nil, err
	}
	return telemetry.NewTracer(f), func() { f.Close() }, nil
}

// Fatal prints "tool: err" and exits 1, the drivers' shared error exit.
// A cancellation (Ctrl-C or SIGTERM) exits 130 in the shell convention
// for interrupt death, which the CI resilience job keys on.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	if errors.Is(err, context.Canceled) || errors.Is(err, sim.ErrCanceled) {
		os.Exit(130)
	}
	os.Exit(1)
}

// Errorf is Fatal with formatting.
func Errorf(tool, format string, args ...any) {
	Fatal(tool, fmt.Errorf(format, args...))
}
