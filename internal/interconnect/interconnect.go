// Package interconnect models the memory interconnection networks of
// multiprocessor systems (paper Fig. 2): the links between memory
// controllers that remote off-chip requests traverse. A topology is an
// undirected graph over NUMA nodes; the latency of a remote access is the
// hop count between the requesting core's node and the memory's home node
// times the per-hop latency.
//
// The paper's two NUMA machines have, respectively, two directly-connected
// memory controllers (Intel Xeon X5650: direct and one-hop latencies) and
// eight controllers in a partial mesh (AMD Opteron 6172: direct, one-hop
// and two-hop latencies).
package interconnect

import (
	"fmt"
)

// Topology is an undirected interconnect graph over NUMA nodes with
// precomputed all-pairs hop counts.
type Topology struct {
	name       string
	n          int
	hops       [][]int
	hopLatency uint64
}

// New builds a topology of n nodes from an undirected link list and
// computes all-pairs hop distances by BFS. hopLatency is the extra latency
// in cycles charged per hop. The graph must be connected.
func New(name string, n int, links [][2]int, hopLatency uint64) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("interconnect %s: need at least one node", name)
	}
	adj := make([][]int, n)
	for _, l := range links {
		a, b := l[0], l[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, fmt.Errorf("interconnect %s: link %v out of range", name, l)
		}
		if a == b {
			return nil, fmt.Errorf("interconnect %s: self-link on node %d", name, a)
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	t := &Topology{name: name, n: n, hopLatency: hopLatency}
	t.hops = make([][]int, n)
	for src := 0; src < n; src++ {
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for i, d := range dist {
			if d < 0 {
				return nil, fmt.Errorf("interconnect %s: node %d unreachable from %d", name, i, src)
			}
		}
		t.hops[src] = dist
	}
	return t, nil
}

// SingleNode returns the degenerate one-node topology of a UMA system.
func SingleNode(name string) *Topology {
	t, _ := New(name, 1, nil, 0)
	return t
}

// FullMesh returns an n-node topology where every pair of distinct nodes is
// one hop apart.
func FullMesh(name string, n int, hopLatency uint64) (*Topology, error) {
	var links [][2]int
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			links = append(links, [2]int{a, b})
		}
	}
	return New(name, n, links, hopLatency)
}

// Ring returns an n-node ring topology.
func Ring(name string, n int, hopLatency uint64) (*Topology, error) {
	var links [][2]int
	for i := 0; i < n; i++ {
		links = append(links, [2]int{i, (i + 1) % n})
	}
	return New(name, n, links, hopLatency)
}

// Circulant returns the circulant graph C_n(offsets...): node i links to
// i±o (mod n) for each offset o. C_8(1,2) reproduces the AMD Opteron 6172
// partial mesh: 8 memory controllers with direct, one-hop and two-hop
// latency classes and HyperTransport-like degree 4.
func Circulant(name string, n int, hopLatency uint64, offsets ...int) (*Topology, error) {
	seen := map[[2]int]bool{}
	var links [][2]int
	for i := 0; i < n; i++ {
		for _, o := range offsets {
			if o <= 0 || o >= n {
				return nil, fmt.Errorf("interconnect %s: bad offset %d", name, o)
			}
			a, b := i, (i+o)%n
			if a > b {
				a, b = b, a
			}
			key := [2]int{a, b}
			if a != b && !seen[key] {
				seen[key] = true
				links = append(links, key)
			}
		}
	}
	return New(name, n, links, hopLatency)
}

// Name returns the topology name.
func (t *Topology) Name() string { return t.name }

// Nodes returns the number of NUMA nodes.
func (t *Topology) Nodes() int { return t.n }

// HopLatency returns the per-hop latency in cycles.
func (t *Topology) HopLatency() uint64 { return t.hopLatency }

// Hops returns the hop distance between nodes a and b (0 for a == b).
func (t *Topology) Hops(a, b int) int { return t.hops[a][b] }

// Latency returns the one-way interconnect latency between nodes a and b in
// cycles: Hops(a,b) * HopLatency.
func (t *Topology) Latency(a, b int) uint64 {
	return uint64(t.hops[a][b]) * t.hopLatency
}

// MaxHops returns the network diameter.
func (t *Topology) MaxHops() int {
	max := 0
	for a := 0; a < t.n; a++ {
		for b := 0; b < t.n; b++ {
			if t.hops[a][b] > max {
				max = t.hops[a][b]
			}
		}
	}
	return max
}

// LatencyClasses returns the sorted distinct hop counts between distinct
// node pairs — the paper's "direct, one hop, two hops" classes (excluding
// the a==b direct class for single-node topologies).
func (t *Topology) LatencyClasses() []int {
	present := map[int]bool{}
	for a := 0; a < t.n; a++ {
		for b := 0; b < t.n; b++ {
			present[t.hops[a][b]] = true
		}
	}
	var classes []int
	for h := 0; h <= t.MaxHops(); h++ {
		if present[h] {
			classes = append(classes, h)
		}
	}
	return classes
}
