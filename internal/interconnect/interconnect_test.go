package interconnect

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("t", 0, nil, 1); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New("t", 2, [][2]int{{0, 2}}, 1); err == nil {
		t.Error("out-of-range link accepted")
	}
	if _, err := New("t", 2, [][2]int{{1, 1}}, 1); err == nil {
		t.Error("self link accepted")
	}
	if _, err := New("t", 3, [][2]int{{0, 1}}, 1); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestSingleNode(t *testing.T) {
	s := SingleNode("uma")
	if s.Nodes() != 1 || s.Hops(0, 0) != 0 || s.Latency(0, 0) != 0 {
		t.Errorf("single node wrong: %+v", s)
	}
	if s.MaxHops() != 0 {
		t.Errorf("diameter = %d", s.MaxHops())
	}
	classes := s.LatencyClasses()
	if len(classes) != 1 || classes[0] != 0 {
		t.Errorf("classes = %v", classes)
	}
}

func TestTwoNodeDirect(t *testing.T) {
	// Intel NUMA: two MCs directly interconnected.
	top, err := New("intel", 2, [][2]int{{0, 1}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if top.Hops(0, 1) != 1 || top.Hops(1, 0) != 1 {
		t.Error("hop count wrong")
	}
	if top.Latency(0, 1) != 100 {
		t.Errorf("latency = %d", top.Latency(0, 1))
	}
	if top.Latency(0, 0) != 0 {
		t.Error("local latency must be 0")
	}
	classes := top.LatencyClasses()
	if len(classes) != 2 || classes[0] != 0 || classes[1] != 1 {
		t.Errorf("classes = %v", classes)
	}
}

func TestFullMesh(t *testing.T) {
	top, err := FullMesh("m", 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			want := 1
			if a == b {
				want = 0
			}
			if top.Hops(a, b) != want {
				t.Errorf("hops(%d,%d) = %d, want %d", a, b, top.Hops(a, b), want)
			}
		}
	}
}

func TestRing(t *testing.T) {
	top, err := Ring("r", 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if top.Hops(0, 3) != 3 {
		t.Errorf("opposite nodes = %d hops", top.Hops(0, 3))
	}
	if top.Hops(0, 5) != 1 {
		t.Errorf("wraparound = %d hops", top.Hops(0, 5))
	}
	if top.MaxHops() != 3 {
		t.Errorf("diameter = %d", top.MaxHops())
	}
}

func TestCirculantAMDShape(t *testing.T) {
	// C_8(1,2): the AMD partial mesh. Must have exactly three latency
	// classes (direct=0, one hop, two hops) and diameter 2.
	top, err := Circulant("amd", 8, 80, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if top.MaxHops() != 2 {
		t.Errorf("diameter = %d, want 2", top.MaxHops())
	}
	classes := top.LatencyClasses()
	if len(classes) != 3 {
		t.Errorf("latency classes = %v, want 3 classes", classes)
	}
	// Opposite node (distance 4 around the ring) reachable via two 2-chords.
	if top.Hops(0, 4) != 2 {
		t.Errorf("hops(0,4) = %d, want 2", top.Hops(0, 4))
	}
	if top.Hops(0, 2) != 1 {
		t.Errorf("hops(0,2) = %d, want 1 (chord)", top.Hops(0, 2))
	}
}

func TestCirculantBadOffset(t *testing.T) {
	if _, err := Circulant("x", 4, 1, 0); err == nil {
		t.Error("offset 0 accepted")
	}
	if _, err := Circulant("x", 4, 1, 4); err == nil {
		t.Error("offset n accepted")
	}
}

func TestAccessors(t *testing.T) {
	top, _ := New("named", 2, [][2]int{{0, 1}}, 7)
	if top.Name() != "named" || top.HopLatency() != 7 || top.Nodes() != 2 {
		t.Error("accessors wrong")
	}
}

// Property: hop distances are symmetric, zero on the diagonal, and obey the
// triangle inequality.
func TestMetricProperty(t *testing.T) {
	f := func(linkBits uint16, hopLat uint8) bool {
		// Build a random graph over 5 nodes from the bits, then force
		// connectivity with a spine.
		n := 5
		var links [][2]int
		for i := 0; i < n-1; i++ {
			links = append(links, [2]int{i, i + 1})
		}
		bit := 0
		for a := 0; a < n; a++ {
			for b := a + 2; b < n; b++ {
				if linkBits&(1<<uint(bit)) != 0 {
					links = append(links, [2]int{a, b})
				}
				bit++
			}
		}
		top, err := New("p", n, links, uint64(hopLat))
		if err != nil {
			return false
		}
		for a := 0; a < n; a++ {
			if top.Hops(a, a) != 0 {
				return false
			}
			for b := 0; b < n; b++ {
				if top.Hops(a, b) != top.Hops(b, a) {
					return false
				}
				for c := 0; c < n; c++ {
					if top.Hops(a, c) > top.Hops(a, b)+top.Hops(b, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
