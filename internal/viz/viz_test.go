package viz

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderBasicChart(t *testing.T) {
	var c Chart
	c.Title = "omega vs cores"
	c.XLabel = "cores"
	c.YLabel = "omega"
	c.Add(Series{Name: "measured", X: []float64{1, 2, 4, 8}, Y: []float64{0, 0.3, 1.0, 2.8}})
	c.Add(Series{Name: "model", X: []float64{1, 2, 4, 8}, Y: []float64{0, 0.2, 1.0, 2.2}})
	var buf bytes.Buffer
	c.Render(&buf)
	out := buf.String()
	for _, want := range []string{"omega vs cores", "measured", "model", "*", "o", "2.8", "cores"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The grid must have the requested default dimensions.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 16 rows + axis + xlabels + xylabel + 2 legend = 22
	if len(lines) != 22 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestRenderLogChart(t *testing.T) {
	var c Chart
	c.LogX = true
	c.LogY = true
	c.Add(Series{Name: "ccdf", X: []float64{1, 10, 100, 1000}, Y: []float64{1, 0.1, 0.01, 0.001}})
	var buf bytes.Buffer
	c.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "1e+03") && !strings.Contains(out, "1000") {
		t.Errorf("x max label missing:\n%s", out)
	}
	// A perfect power law renders as a diagonal: the marker must appear on
	// several distinct rows.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "*") && strings.Contains(line, "|") {
			rows++
		}
	}
	if rows < 3 {
		t.Errorf("power law occupies %d rows, want diagonal:\n%s", rows, out)
	}
}

func TestRenderDropsNonPositiveOnLog(t *testing.T) {
	var c Chart
	c.LogY = true
	c.Add(Series{Name: "s", X: []float64{1, 2}, Y: []float64{0, 10}}) // zero dropped
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "|") {
		t.Error("chart missing")
	}
}

func TestRenderEmpty(t *testing.T) {
	var c Chart
	c.LogY = true
	c.Add(Series{Name: "s", X: []float64{1}, Y: []float64{0}}) // nothing plottable
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "no plottable points") {
		t.Errorf("empty chart output: %q", buf.String())
	}
}

func TestConstantSeries(t *testing.T) {
	var c Chart
	c.Add(Series{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}})
	var buf bytes.Buffer
	c.Render(&buf) // must not divide by zero
	if !strings.Contains(buf.String(), "*") {
		t.Error("flat series not drawn")
	}
}

func TestOverlapMarker(t *testing.T) {
	var c Chart
	c.Width, c.Height = 10, 5
	c.Add(Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}})
	c.Add(Series{Name: "b", X: []float64{0, 1}, Y: []float64{0, 1}})
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "&") {
		t.Errorf("overlapping points should render '&':\n%s", buf.String())
	}
}
