// Package viz renders small ASCII charts for terminal output: the ω(n)
// curves of Fig. 5/6 and the log-log burst CCDFs of Fig. 4 become readable
// directly in the shell, without a plotting toolchain.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	Marker rune
}

// Chart is a fixed-size character-grid plot.
type Chart struct {
	// Width and Height are the plot area dimensions in characters
	// (excluding axes); defaults 60x16.
	Width, Height int
	// Title is printed above the chart.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// LogX plots x on a log10 scale (for CCDFs).
	LogX bool
	// LogY plots y on a log10 scale.
	LogY   bool
	series []Series
}

// Add appends a series; markers default to a rotation of distinct runes.
func (c *Chart) Add(s Series) {
	if s.Marker == 0 {
		markers := []rune{'*', 'o', '+', 'x', '#', '@'}
		s.Marker = markers[len(c.series)%len(markers)]
	}
	c.series = append(c.series, s)
}

// transform maps a value onto the axis scale, dropping non-plottable
// points (log of non-positive values).
func transform(v float64, log bool) (float64, bool) {
	if log {
		if v <= 0 {
			return 0, false
		}
		return math.Log10(v), true
	}
	return v, true
}

// Render draws the chart to w.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}

	// Bounds over all plottable points.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range c.series {
		for i := range s.X {
			x, okx := transform(s.X[i], c.LogX)
			y, oky := transform(s.Y[i], c.LogY)
			if !okx || !oky {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if !any {
		fmt.Fprintln(w, "(no plottable points)")
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for col := range grid[r] {
			grid[r][col] = ' '
		}
	}
	for _, s := range c.series {
		for i := range s.X {
			x, okx := transform(s.X[i], c.LogX)
			y, oky := transform(s.Y[i], c.LogY)
			if !okx || !oky {
				continue
			}
			col := int((x - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			if grid[row][col] == ' ' || grid[row][col] == s.Marker {
				grid[row][col] = s.Marker
			} else {
				grid[row][col] = '&' // overlap
			}
		}
	}

	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	yTop := axisLabel(maxY, c.LogY)
	yBot := axisLabel(minY, c.LogY)
	labelW := len(yTop)
	if len(yBot) > labelW {
		labelW = len(yBot)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", labelW)
		if r == 0 {
			label = fmt.Sprintf("%*s", labelW, yTop)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", labelW, yBot)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width))
	xLeft := axisLabel(minX, c.LogX)
	xRight := axisLabel(maxX, c.LogX)
	gap := width - len(xLeft) - len(xRight)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(w, "%s  %s%s%s\n", strings.Repeat(" ", labelW), xLeft, strings.Repeat(" ", gap), xRight)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(w, "%s  x: %s, y: %s\n", strings.Repeat(" ", labelW), c.XLabel, c.YLabel)
	}
	for _, s := range c.series {
		fmt.Fprintf(w, "%s  %c %s\n", strings.Repeat(" ", labelW), s.Marker, s.Name)
	}
}

// axisLabel formats an axis bound, undoing the log transform for display.
func axisLabel(v float64, log bool) string {
	if log {
		return fmt.Sprintf("%.3g", math.Pow(10, v))
	}
	return fmt.Sprintf("%.3g", v)
}
