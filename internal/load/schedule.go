package load

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/burst"
)

// Mode selects the arrival process of a schedule.
type Mode string

const (
	// ModeConst spaces arrivals evenly at 1/RPS — CV² = 0, the
	// least-bursty offered load possible.
	ModeConst Mode = "const"
	// ModePoisson draws exponential inter-arrival gaps at rate RPS —
	// CV² = 1, the M/M/1 model's own arrival assumption.
	ModePoisson Mode = "poisson"
	// ModeBurst modulates a Poisson process with a two-state phase chain
	// (MMPP-2): exponential phases alternate between a high and a low
	// rate whose ratio is the burst factor, keeping the mean rate at RPS.
	// CV² > 1, growing with the factor.
	ModeBurst Mode = "burst"
)

// ParseMode validates a -mode flag value.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeConst, ModePoisson, ModeBurst:
		return Mode(s), nil
	}
	return "", fmt.Errorf("load: unknown mode %q (const, poisson, burst)", s)
}

// ErrBadSchedule reports an invalid schedule configuration.
var ErrBadSchedule = errors.New("load: invalid schedule config")

// ScheduleConfig parameterizes an arrival schedule.
type ScheduleConfig struct {
	// Mode is the arrival process.
	Mode Mode
	// RPS is the mean offered rate in requests per second.
	RPS float64
	// Duration is the horizon; arrivals fall in [0, Duration).
	Duration time.Duration
	// Seed drives all randomness. The same (Mode, RPS, Duration, Seed,
	// Burst, Phase) produces a byte-identical schedule.
	Seed int64
	// Burst is the on/off rate ratio of ModeBurst (≥ 1; 1 degenerates to
	// Poisson). Ignored by the other modes.
	Burst float64
	// Phase is the mean phase length of ModeBurst's modulating chain.
	// Zero means Duration/8. Ignored by the other modes.
	Phase time.Duration
}

// validate checks the config, resolving nothing.
func (c ScheduleConfig) validate() error {
	if c.RPS <= 0 {
		return fmt.Errorf("%w: rps %g must be positive", ErrBadSchedule, c.RPS)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("%w: duration %s must be positive", ErrBadSchedule, c.Duration)
	}
	if _, err := ParseMode(string(c.Mode)); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSchedule, err)
	}
	if c.Mode == ModeBurst && c.Burst < 1 {
		return fmt.Errorf("%w: burst factor %g must be >= 1", ErrBadSchedule, c.Burst)
	}
	return nil
}

// Schedule generates the arrival offsets of the configured process:
// strictly non-decreasing durations in [0, Duration). It is pure — no
// clock reads, all randomness from Seed — so identical configs yield
// byte-identical schedules (the determinism the resume-style tests pin).
func Schedule(cfg ScheduleConfig) ([]time.Duration, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	horizon := cfg.Duration.Seconds()
	switch cfg.Mode {
	case ModeConst:
		n := int(cfg.RPS * horizon)
		if n < 1 {
			n = 1
		}
		gap := 1 / cfg.RPS
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = secondsToDuration(float64(i) * gap)
		}
		return out, nil
	case ModePoisson:
		rng := rand.New(rand.NewSource(cfg.Seed))
		var out []time.Duration
		for t := rng.ExpFloat64() / cfg.RPS; t < horizon; t += rng.ExpFloat64() / cfg.RPS {
			out = append(out, secondsToDuration(t))
		}
		return out, nil
	case ModeBurst:
		rng := rand.New(rand.NewSource(cfg.Seed))
		phase := cfg.Phase.Seconds()
		if phase <= 0 {
			phase = horizon / 8
		}
		// Rates chosen so the duty-cycle-weighted mean is exactly RPS and
		// the on/off ratio is the burst factor.
		hi := cfg.RPS * 2 * cfg.Burst / (cfg.Burst + 1)
		lo := cfg.RPS * 2 / (cfg.Burst + 1)
		var out []time.Duration
		t, on := 0.0, true
		phaseEnd := rng.ExpFloat64() * phase
		for {
			rate := lo
			if on {
				rate = hi
			}
			t += rng.ExpFloat64() / rate
			if t >= horizon {
				return out, nil
			}
			for t >= phaseEnd {
				on = !on
				phaseEnd += rng.ExpFloat64() * phase
			}
			out = append(out, secondsToDuration(t))
		}
	}
	// validate() rejected every other mode already.
	return nil, fmt.Errorf("%w: mode %q", ErrBadSchedule, cfg.Mode)
}

// ScheduleCV2 returns the squared coefficient of variation of the
// schedule's inter-arrival gaps — the "configured" burstiness the report
// prints next to the achieved one. Schedules too short to estimate (fewer
// than three arrivals) report as NaN-free 0 with ok=false.
func ScheduleCV2(schedule []time.Duration) (float64, bool) {
	offs := OffsetsSeconds(schedule)
	cv2, err := burst.CV2(burst.Interarrivals(offs))
	if err != nil {
		return 0, false
	}
	return cv2, true
}

// OffsetsSeconds converts schedule offsets to float seconds, the unit the
// burst estimators consume.
func OffsetsSeconds(schedule []time.Duration) []float64 {
	out := make([]float64, len(schedule))
	for i, d := range schedule {
		out[i] = d.Seconds()
	}
	return out
}

// secondsToDuration converts without the rounding surprises of
// time.Duration(f * 1e9) on large f.
func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
