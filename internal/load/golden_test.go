package load

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRecords is a fixed, hand-written request log that exercises every
// field of the NDJSON schema: success with tier, tenant, trace ID and
// config hash, a shed 429 (trace but no hash), a transport error, and a
// zero-value row.
func goldenRecords() []Record {
	return []Record{
		{Seq: 0, ScheduledMs: 0, SendMs: 0.25, FirstByteMs: 1.5, TotalMs: 1.75, Status: 200, Tier: "analytical", Tenant: "team-a",
			TraceID: "f1fcd330b93a197995b780e8a49e74d6", ConfigHash: "3f83e7c4a7f7c1fcbc2a4f9f6e3f1a10c9f1f60cfae92c9f4e01c3a2b5d67e8a"},
		{Seq: 1, ScheduledMs: 10, SendMs: 10.125, FirstByteMs: 42, TotalMs: 55.5, Status: 200, Tier: "simulation",
			TraceID: "9f3f12cb4a24e3d0c1db1c2f0e8b6a57"},
		{Seq: 2, ScheduledMs: 20, SendMs: 20.5, FirstByteMs: 0.5, TotalMs: 0.5, Status: 429, Tier: "", Tenant: "team-a",
			TraceID: "1b9aa2edc3f54490a17d11c1d0a2b3c4"},
		{Seq: 3, ScheduledMs: 30, SendMs: 30.0625, Status: 0, Error: "connection refused"},
		{Seq: 4},
	}
}

// TestNDJSONGolden pins the loadgen record wire format byte-for-byte:
// field names, field order, omitempty behavior, and number formatting.
// Downstream consumers (load_smoke.sh, notebook tooling) parse this; any
// schema change must be deliberate — rerun with -update to re-baseline.
func TestNDJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, goldenRecords()); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "records.golden.ndjson")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("NDJSON encoding drifted from golden schema.\ngot:\n%swant:\n%s\nIf the change is intentional, rerun with -update and document it in docs/LOADGEN.md.", got, want)
	}
}

// TestNDJSONRoundTrip checks each golden line is standalone-parseable JSON
// that decodes back to the original record — the property consumers rely on
// when streaming line-by-line.
func TestNDJSONRoundTrip(t *testing.T) {
	recs := goldenRecords()
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	if len(lines) != len(recs) {
		t.Fatalf("lines = %d, want %d", len(lines), len(recs))
	}
	for i, line := range lines {
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if r != recs[i] {
			t.Errorf("line %d round-trip: got %+v, want %+v", i, r, recs[i])
		}
	}
}
