package load

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/burst"
	"repro/internal/stats"
)

// Options parameterizes BuildReport.
type Options struct {
	// Window is the binning window for arrival characterization and the
	// M/M/1 fit. Zero means 1s.
	Window time.Duration
	// OfferedRPS is the configured mean rate, echoed into the report.
	OfferedRPS float64
	// ScheduleCV2 is the configured burstiness (ScheduleCV2 over the
	// schedule that drove the run).
	ScheduleCV2 float64
	// MinWindowSamples is the minimum completed requests a window needs
	// to contribute a latency point to the M/M/1 fit. Zero means 3.
	MinWindowSamples int
}

// MM1Fit is the per-tier fit of observed latency against the open-queue
// response-time curve T(λ) = 1/(μ−λ) — equivalently T = Ts/(1−ρ) with
// service time Ts = 1/μ and utilization ρ = λ/μ, the paper's eq (5)
// shape. μ is estimated from the per-window identity μ = 1/T + λ, exact
// under M/M/1, then the curve is evaluated back against every window.
type MM1Fit struct {
	// Windows is the number of latency points the fit used.
	Windows int
	// ServiceRate is the fitted μ in requests/second; ServiceMs = 1000/μ.
	ServiceRate float64
	ServiceMs   float64
	// PeakRho is the largest per-window utilization λ/μ observed.
	PeakRho float64
	// MeanRelErr and MaxRelErr compare observed window-mean latency with
	// the fitted curve over the windows below saturation (ρ ≤ 0.9).
	MeanRelErr float64
	MaxRelErr  float64
}

// TierStats summarizes one serving tier's completed (2xx) requests.
type TierStats struct {
	Count  int
	MeanMs float64
	P50Ms  float64
	P90Ms  float64
	P99Ms  float64
	MaxMs  float64
	// MM1 is nil when no window had enough samples to fit.
	MM1 *MM1Fit
}

// Report is the end-of-run analysis.
type Report struct {
	// Sent counts dispatched requests; OK the 2xx responses; Errors the
	// transport-level failures (status 0).
	Sent   int
	OK     int
	Errors int
	// ByStatus counts responses per HTTP status (0 = transport error).
	ByStatus map[int]int
	// ElapsedS spans first send to last send; AchievedRPS = Sent/ElapsedS.
	ElapsedS    float64
	OfferedRPS  float64
	AchievedRPS float64
	// ScheduleCV2 is the configured burstiness; ArrivalCV2 the achieved
	// one, measured over actual send times — the loadgen-side half of the
	// paper's Fig. 4 methodology.
	ScheduleCV2 float64
	ArrivalCV2  float64
	// Dispersion is the index of dispersion of windowed send counts and
	// Verdict the burst.Classify call on the same windows.
	Dispersion float64
	Verdict    string
	// Tiers maps X-Simserved-Tier values ("analytical", "simulation") to
	// their latency summaries and M/M/1 fits.
	Tiers map[string]TierStats
}

// ErrNoRecords reports an empty run.
var ErrNoRecords = errors.New("load: no records to analyze")

// BuildReport analyzes one run's records.
func BuildReport(records []Record, opt Options) (Report, error) {
	if len(records) == 0 {
		return Report{}, ErrNoRecords
	}
	window := opt.Window
	if window <= 0 {
		window = time.Second
	}
	rep := Report{
		Sent:        len(records),
		ByStatus:    make(map[int]int),
		OfferedRPS:  opt.OfferedRPS,
		ScheduleCV2: opt.ScheduleCV2,
		Tiers:       make(map[string]TierStats),
	}
	sends := make([]float64, 0, len(records))
	minSend, maxSend := math.Inf(1), math.Inf(-1)
	for _, r := range records {
		rep.ByStatus[r.Status]++
		switch {
		case r.Status == 0:
			rep.Errors++
		case r.Status >= 200 && r.Status < 300:
			rep.OK++
		}
		s := r.SendMs / 1000
		sends = append(sends, s)
		minSend = math.Min(minSend, s)
		maxSend = math.Max(maxSend, s)
	}
	rep.ElapsedS = maxSend - minSend
	if rep.ElapsedS > 0 {
		rep.AchievedRPS = float64(rep.Sent) / rep.ElapsedS
	}

	// Achieved arrival characterization: the same estimators the
	// simulator applies to miss streams, over actual send times.
	if cv2, err := burst.CV2(burst.Interarrivals(sends)); err == nil {
		rep.ArrivalCV2 = cv2
	}
	bins := burst.Bin(sends, window.Seconds())
	if iod, err := burst.IndexOfDispersion(bins); err == nil {
		rep.Dispersion = iod
	}
	if a, err := burst.Analyze(bins); err == nil {
		rep.Verdict = a.Classify().String()
	}

	for tier, recs := range byTier(records) {
		rep.Tiers[tier] = tierStats(recs, window, opt.MinWindowSamples)
	}
	return rep, nil
}

// byTier groups completed 2xx records by tier header.
func byTier(records []Record) map[string][]Record {
	out := make(map[string][]Record)
	for _, r := range records {
		if r.Status < 200 || r.Status >= 300 || r.Tier == "" {
			continue
		}
		out[r.Tier] = append(out[r.Tier], r)
	}
	return out
}

// tierStats summarizes one tier and fits its latency curve.
func tierStats(recs []Record, window time.Duration, minSamples int) TierStats {
	lat := make([]float64, len(recs))
	for i, r := range recs {
		lat[i] = r.TotalMs
	}
	ts := TierStats{
		Count:  len(recs),
		MeanMs: stats.Mean(lat),
		P50Ms:  stats.Percentile(lat, 50),
		P90Ms:  stats.Percentile(lat, 90),
		P99Ms:  stats.Percentile(lat, 99),
	}
	for _, l := range lat {
		if l > ts.MaxMs {
			ts.MaxMs = l
		}
	}
	ts.MM1 = fitMM1(recs, window, minSamples)
	return ts
}

// windowPoint is one (offered load, mean latency) observation.
type windowPoint struct {
	lambda float64 // requests/second arriving in the window
	meanT  float64 // mean response time, seconds
}

// fitMM1 estimates μ from per-window observations and scores the
// resulting ρ/(1−ρ) curve against them. Returns nil when no window has
// enough samples.
func fitMM1(recs []Record, window time.Duration, minSamples int) *MM1Fit {
	if minSamples <= 0 {
		minSamples = 3
	}
	winS := window.Seconds()
	byWin := make(map[int][]Record)
	for _, r := range recs {
		k := int(r.SendMs / 1000 / winS)
		byWin[k] = append(byWin[k], r)
	}
	var points []windowPoint
	for _, wr := range byWin {
		if len(wr) < minSamples {
			continue
		}
		sumT := 0.0
		for _, r := range wr {
			sumT += r.TotalMs / 1000
		}
		points = append(points, windowPoint{
			lambda: float64(len(wr)) / winS,
			meanT:  sumT / float64(len(wr)),
		})
	}
	if len(points) == 0 {
		return nil
	}
	sort.Slice(points, func(i, j int) bool { return points[i].lambda < points[j].lambda })

	// Per-window μ = 1/T + λ is exact under M/M/1; average the estimates.
	mu := 0.0
	for _, p := range points {
		if p.meanT <= 0 {
			return nil
		}
		mu += 1/p.meanT + p.lambda
	}
	mu /= float64(len(points))

	fit := &MM1Fit{
		Windows:     len(points),
		ServiceRate: mu,
		ServiceMs:   1000 / mu,
	}
	// Score the curve below saturation: at ρ near 1 the open queue has no
	// steady state and the observed transient tells us nothing about fit.
	n := 0
	for _, p := range points {
		rho := p.lambda / mu
		if rho > fit.PeakRho {
			fit.PeakRho = rho
		}
		if rho > 0.9 {
			continue
		}
		pred := 1 / (mu - p.lambda)
		rel := math.Abs(pred-p.meanT) / p.meanT
		fit.MeanRelErr += rel
		if rel > fit.MaxRelErr {
			fit.MaxRelErr = rel
		}
		n++
	}
	if n > 0 {
		fit.MeanRelErr /= float64(n)
	}
	return fit
}

// WriteText renders the report for a terminal, in the spirit of the
// repo's table artifacts: configured vs achieved arrivals first, then one
// block per tier with the latency summary and the M/M/1 fit verdict.
func (r Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "requests: sent=%d ok=%d errors=%d", r.Sent, r.OK, r.Errors)
	statuses := make([]int, 0, len(r.ByStatus))
	for s := range r.ByStatus {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	for _, s := range statuses {
		fmt.Fprintf(w, " [%d]=%d", s, r.ByStatus[s])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "rate: offered=%.1f rps achieved=%.1f rps over %.1fs\n",
		r.OfferedRPS, r.AchievedRPS, r.ElapsedS)
	fmt.Fprintf(w, "arrivals: configured CV²=%.3f achieved CV²=%.3f dispersion=%.3f verdict=%s\n",
		r.ScheduleCV2, r.ArrivalCV2, r.Dispersion, r.Verdict)
	tiers := make([]string, 0, len(r.Tiers))
	for t := range r.Tiers {
		tiers = append(tiers, t)
	}
	sort.Strings(tiers)
	for _, t := range tiers {
		ts := r.Tiers[t]
		fmt.Fprintf(w, "tier %-10s n=%-5d mean=%.2fms p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms\n",
			t, ts.Count, ts.MeanMs, ts.P50Ms, ts.P90Ms, ts.P99Ms, ts.MaxMs)
		if ts.MM1 == nil {
			fmt.Fprintf(w, "  mm1: not enough windowed samples to fit\n")
			continue
		}
		f := ts.MM1
		fmt.Fprintf(w, "  mm1: μ=%.1f req/s (service %.3fms) peak ρ=%.3f fit err mean=%.1f%% max=%.1f%% over %d windows\n",
			f.ServiceRate, f.ServiceMs, f.PeakRho, 100*f.MeanRelErr, 100*f.MaxRelErr, f.Windows)
	}
}
