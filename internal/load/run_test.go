package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/telemetry"
)

// stubConfigHash is the config-hash header every stub response echoes.
const stubConfigHash = "deadbeef"

// stubServer fakes simserved's predict surface: instant 200s with tier and
// config-hash headers, an optional per-request delay, and an in-flight
// high-water mark to observe open-loop concurrency. It records the last
// traceparent header it saw.
type stubServer struct {
	delay     time.Duration
	inflight  atomic.Int64
	peak      atomic.Int64
	lastTrace atomic.Value // string: last traceparent header
}

func (s *stubServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	cur := s.inflight.Add(1)
	defer s.inflight.Add(-1)
	for {
		old := s.peak.Load()
		if cur <= old || s.peak.CompareAndSwap(old, cur) {
			break
		}
	}
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-r.Context().Done():
			return
		}
	}
	s.lastTrace.Store(r.Header.Get(api.HeaderTraceparent))
	w.Header().Set(api.HeaderTier, "analytical")
	w.Header().Set(api.HeaderConfigHash, stubConfigHash)
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(`{"omega":0.1}`))
}

func TestRunEmptySchedule(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); !errors.Is(err, ErrNoSchedule) {
		t.Fatalf("err = %v, want ErrNoSchedule", err)
	}
}

// TestRunOpenLoop drives a fast stub at 500 rps and checks the complete,
// ordered record log: every scheduled request fired, got its tier header,
// and was dispatched close to its schedule slot.
func TestRunOpenLoop(t *testing.T) {
	stub := &stubServer{}
	ts := httptest.NewServer(stub)
	defer ts.Close()

	sched, err := Schedule(ScheduleConfig{Mode: ModePoisson, RPS: 500, Duration: 400 * time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const seed = 11
	recs, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Body:     []byte(`{"machine":"IntelUMA8","program":"CG","class":"W","cores":2}`),
		Schedule: sched,
		Conns:    8,
		Tenant:   "team-a",
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(sched) {
		t.Fatalf("records = %d, want %d", len(recs), len(sched))
	}
	seenTraces := make(map[string]bool, len(recs))
	for i, r := range recs {
		if r.Seq != i {
			t.Fatalf("records not ordered by seq: %d at %d", r.Seq, i)
		}
		if r.Status != http.StatusOK {
			t.Errorf("seq %d: status %d (%s)", i, r.Status, r.Error)
		}
		if r.Tier != "analytical" {
			t.Errorf("seq %d: tier %q", i, r.Tier)
		}
		if r.Tenant != "team-a" {
			t.Errorf("seq %d: tenant %q", i, r.Tenant)
		}
		if r.ConfigHash != stubConfigHash {
			t.Errorf("seq %d: config_hash %q, want %q", i, r.ConfigHash, stubConfigHash)
		}
		if want := telemetry.DeriveSpanContext(seed, int64(i)).Trace.String(); r.TraceID != want {
			t.Errorf("seq %d: trace_id %q, want derived %q", i, r.TraceID, want)
		}
		if seenTraces[r.TraceID] {
			t.Errorf("seq %d: duplicate trace_id %q", i, r.TraceID)
		}
		seenTraces[r.TraceID] = true
		if r.TotalMs <= 0 || r.FirstByteMs <= 0 || r.FirstByteMs > r.TotalMs+0.001 {
			t.Errorf("seq %d: latencies first_byte=%g total=%g", i, r.FirstByteMs, r.TotalMs)
		}
		if lag := r.SendMs - r.ScheduledMs; lag < -1 || lag > 200 {
			t.Errorf("seq %d: dispatch lag %.2fms", i, lag)
		}
	}
	// The wire side: the stub saw a well-formed traceparent carrying one
	// of the derived contexts.
	last, _ := stub.lastTrace.Load().(string)
	sc, ok := telemetry.ParseTraceparent(last)
	if !ok {
		t.Fatalf("stub saw malformed traceparent %q", last)
	}
	if !seenTraces[sc.Trace.String()] {
		t.Errorf("traceparent trace %s not among logged trace IDs", sc.Trace)
	}
}

// TestRunClientSpans checks that with a tracer attached each request
// emits one load.request span whose context matches the derived trace ID
// in its record.
func TestRunClientSpans(t *testing.T) {
	stub := &stubServer{}
	ts := httptest.NewServer(stub)
	defer ts.Close()

	sched, err := Schedule(ScheduleConfig{Mode: ModeConst, RPS: 100, Duration: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := telemetry.NewTracer(&buf)
	recs, err := Run(context.Background(), Config{BaseURL: ts.URL, Schedule: sched, Seed: 5, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	spans := map[string]map[string]any{} // trace -> record
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if ev["event"] == "span.end" && ev["name"] == "load.request" {
			spans[ev["trace"].(string)] = ev
		}
	}
	if len(spans) != len(recs) {
		t.Fatalf("load.request spans = %d, want %d", len(spans), len(recs))
	}
	for _, r := range recs {
		ev, ok := spans[r.TraceID]
		if !ok {
			t.Fatalf("no span for trace %s", r.TraceID)
		}
		if ev["status"] != float64(http.StatusOK) || ev["seq"] != float64(r.Seq) {
			t.Errorf("span attrs %v do not match record %+v", ev, r)
		}
		if ev["parent"] != nil {
			t.Errorf("load.request should be a root span, got parent %v", ev["parent"])
		}
	}
}

// TestRunIsOpenLoop pins the defining property: with a server delay far
// longer than the inter-arrival gap, dispatch does not wait for
// completions — many requests are in flight at once and every one fires.
func TestRunIsOpenLoop(t *testing.T) {
	stub := &stubServer{delay: 300 * time.Millisecond}
	ts := httptest.NewServer(stub)
	defer ts.Close()

	const n = 20
	sched, err := Schedule(ScheduleConfig{Mode: ModeConst, RPS: 100, Duration: n * 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	recs, err := Run(context.Background(), Config{BaseURL: ts.URL, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(recs) != n {
		t.Fatalf("records = %d, want %d", len(recs), n)
	}
	// Closed-loop behavior would serialize to n×delay = 6s; the open loop
	// overlaps everything into roughly schedule span + one delay.
	if elapsed > 2*time.Second {
		t.Errorf("run took %s — dispatch appears to wait for completions", elapsed)
	}
	if peak := stub.peak.Load(); peak < 5 {
		t.Errorf("peak in-flight %d, want >= 5 (open loop overlaps requests)", peak)
	}
}

// TestRunCancel checks mid-run cancellation: dispatch stops, the context
// error is surfaced, and the records dispatched so far come back.
func TestRunCancel(t *testing.T) {
	stub := &stubServer{}
	ts := httptest.NewServer(stub)
	defer ts.Close()

	sched, err := Schedule(ScheduleConfig{Mode: ModeConst, RPS: 20, Duration: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	recs, err := Run(ctx, Config{BaseURL: ts.URL, Schedule: sched})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if len(recs) == 0 || len(recs) >= len(sched) {
		t.Errorf("records = %d of %d, want a proper prefix", len(recs), len(sched))
	}
}
