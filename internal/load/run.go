package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"sort"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
)

// PredictPath is the endpoint the harness drives.
const PredictPath = "/v1/predict"

// Record is one NDJSON line of the request log. Field set and order are
// pinned by a golden test — downstream tooling (jq recipes in
// docs/LOADGEN.md, the CI artifact consumers) greps these names.
type Record struct {
	// Seq is the schedule index of the request.
	Seq int `json:"seq"`
	// ScheduledMs is the configured send offset from run start.
	ScheduledMs float64 `json:"scheduled_ms"`
	// SendMs is the actual send offset; SendMs−ScheduledMs is dispatch lag.
	SendMs float64 `json:"send_ms"`
	// FirstByteMs is the latency to the first response byte, and TotalMs
	// to the fully-read body. Both are 0 when the request errored before
	// any response arrived.
	FirstByteMs float64 `json:"first_byte_ms"`
	TotalMs     float64 `json:"total_ms"`
	// Status is the HTTP status, or 0 on transport error.
	Status int `json:"status"`
	// Tier echoes the X-Simserved-Tier response header ("" on errors).
	Tier string `json:"tier"`
	// Tenant echoes the X-Simserved-Tenant request header, when set.
	Tenant string `json:"tenant,omitempty"`
	// TraceID is the 128-bit trace ID (32 hex digits) sent in the W3C
	// traceparent header, derived deterministically from (Config.Seed,
	// Seq). It joins this record to the server's span log (cmd/traceview)
	// and to the X-Simserved-Trace response header.
	TraceID string `json:"trace_id,omitempty"`
	// ConfigHash echoes the X-Simserved-Config-Hash response header: the
	// content address of the answered query ("" on errors and non-2xx).
	ConfigHash string `json:"config_hash,omitempty"`
	// Error is the transport error, when any.
	Error string `json:"error,omitempty"`
}

// Config wires one open-loop run.
type Config struct {
	// BaseURL is the server under test, e.g. "http://localhost:8080".
	BaseURL string
	// Body is the POST /v1/predict payload sent on every request.
	Body []byte
	// Schedule holds the send offsets (see Schedule).
	Schedule []time.Duration
	// Tenant, when non-empty, is sent as X-Simserved-Tenant.
	Tenant string
	// Conns sizes the keep-alive connection pool. Zero means 4.
	Conns int
	// Client overrides the HTTP client (tests). Nil builds one from Conns.
	Client *http.Client
	// Seed derives each request's trace ID (with its Seq) via
	// telemetry.DeriveSpanContext, so a rerun of the same seeded schedule
	// regenerates the same trace IDs. Trace IDs are always derived and
	// logged; spans are only emitted when Tracer is set.
	Seed int64
	// Tracer, when non-nil, receives load.start and load.done events plus
	// one "load.request" client span per request, sharing the request's
	// derived trace ID so client and server waterfalls join.
	Tracer *telemetry.Tracer
}

// ErrNoSchedule reports a run with nothing to send.
var ErrNoSchedule = errors.New("load: empty schedule")

// Run drives the schedule open-loop: requests fire at their offsets
// regardless of how many are still in flight, so a slow server faces the
// configured offered load instead of throttling it. The returned records
// are ordered by Seq and complete — one per scheduled request, errors
// included. Cancelling ctx stops dispatching and aborts in-flight
// requests; the records dispatched so far are still returned, alongside
// the context's error.
func Run(ctx context.Context, cfg Config) ([]Record, error) {
	if len(cfg.Schedule) == 0 {
		return nil, ErrNoSchedule
	}
	client := cfg.Client
	if client == nil {
		conns := cfg.Conns
		if conns <= 0 {
			conns = 4
		}
		transport := &http.Transport{
			MaxIdleConns:        conns,
			MaxIdleConnsPerHost: conns,
		}
		client = &http.Client{Transport: transport}
		defer transport.CloseIdleConnections()
	}
	url := cfg.BaseURL + PredictPath
	if cfg.Tracer.Enabled() {
		cfg.Tracer.Emit("load.start",
			"url", url, "requests", len(cfg.Schedule), "tenant", cfg.Tenant, "seed", cfg.Seed)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		records = make([]Record, 0, len(cfg.Schedule))
	)
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	dispatched := 0
	var runErr error
dispatch:
	for i, off := range cfg.Schedule {
		// An open loop never waits on completions — only on the clock.
		// Late wake-ups fire immediately, so the full schedule is always
		// offered; dispatch lag is visible as SendMs−ScheduledMs.
		if wait := time.Until(start.Add(off)); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				runErr = ctx.Err()
				break dispatch
			case <-timer.C:
			}
		} else if err := ctx.Err(); err != nil {
			runErr = err
			break dispatch
		}
		dispatched++
		wg.Add(1)
		go func(seq int, scheduled time.Duration) {
			defer wg.Done()
			rec := fire(ctx, client, url, cfg, seq, scheduled, start)
			mu.Lock()
			records = append(records, rec)
			mu.Unlock()
		}(i, off)
	}
	wg.Wait()
	sort.Slice(records, func(i, j int) bool { return records[i].Seq < records[j].Seq })
	if cfg.Tracer.Enabled() {
		cfg.Tracer.Emit("load.done",
			"dispatched", dispatched, "elapsed_ms", float64(time.Since(start).Microseconds())/1000)
	}
	return records, runErr
}

// fire sends one request and measures it. Each request carries a
// deterministic traceparent derived from (cfg.Seed, seq); when the tracer
// is on, the client side is bracketed in a "load.request" span holding
// exactly that context, so the server's span tree hangs off it.
func fire(ctx context.Context, client *http.Client, url string, cfg Config, seq int, scheduled time.Duration, start time.Time) (rec Record) {
	sc := telemetry.DeriveSpanContext(cfg.Seed, int64(seq))
	rec = Record{
		Seq:         seq,
		ScheduledMs: durationMs(scheduled),
		Tenant:      cfg.Tenant,
		TraceID:     sc.Trace.String(),
	}
	// sent is assigned before client.Do; the trace callback fires during
	// Do, so the read is ordered after the write.
	var sent time.Time
	var firstByte time.Duration
	trace := &httptrace.ClientTrace{
		GotFirstResponseByte: func() { firstByte = time.Since(sent) },
	}
	req, err := http.NewRequestWithContext(httptrace.WithClientTrace(ctx, trace),
		http.MethodPost, url, bytes.NewReader(cfg.Body))
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.HeaderTraceparent, sc.Traceparent())
	if cfg.Tenant != "" {
		req.Header.Set(server.HeaderTenant, cfg.Tenant)
	}
	span := cfg.Tracer.StartSpanAt(sc, "load.request")
	defer func() { span.End("seq", rec.Seq, "status", rec.Status, "tier", rec.Tier) }()
	sent = time.Now()
	rec.SendMs = durationMs(sent.Sub(start))
	resp, err := client.Do(req)
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	_, copyErr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rec.TotalMs = durationMs(time.Since(sent))
	if firstByte > 0 {
		rec.FirstByteMs = durationMs(firstByte)
	} else {
		rec.FirstByteMs = rec.TotalMs
	}
	rec.Status = resp.StatusCode
	rec.Tier = resp.Header.Get(server.HeaderTier)
	if rec.Status >= 200 && rec.Status < 300 {
		rec.ConfigHash = resp.Header.Get(server.HeaderConfigHash)
	}
	if copyErr != nil {
		rec.Error = copyErr.Error()
	}
	return rec
}

// WriteNDJSON writes one JSON object per record, in input order.
func WriteNDJSON(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			return fmt.Errorf("load: record %d: %w", records[i].Seq, err)
		}
	}
	return bw.Flush()
}

// durationMs renders a duration as float milliseconds.
func durationMs(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
