package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/telemetry"
)

// Record is one NDJSON line of the request log. Field set and order are
// pinned by a golden test — downstream tooling (jq recipes in
// docs/LOADGEN.md, the CI artifact consumers) greps these names.
//
//simcheck:allow(apilint) Record is the harness's NDJSON log schema, not an HTTP wire type; its contract is the golden file, not internal/api.
type Record struct {
	// Seq is the schedule index of the request.
	Seq int `json:"seq"`
	// ScheduledMs is the configured send offset from run start.
	ScheduledMs float64 `json:"scheduled_ms"`
	// SendMs is the actual send offset; SendMs−ScheduledMs is dispatch lag.
	SendMs float64 `json:"send_ms"`
	// FirstByteMs is the latency to the first response byte, and TotalMs
	// to the fully-read body. Both are 0 when the request errored before
	// any response arrived.
	FirstByteMs float64 `json:"first_byte_ms"`
	TotalMs     float64 `json:"total_ms"`
	// Status is the HTTP status, or 0 on transport error.
	Status int `json:"status"`
	// Tier echoes the X-Simserved-Tier response header ("" on errors).
	// On curve point records it is the point's tier field instead.
	Tier string `json:"tier"`
	// Tenant echoes the X-Simserved-Tenant request header, when set.
	Tenant string `json:"tenant,omitempty"`
	// TraceID is the 128-bit trace ID (32 hex digits) sent in the W3C
	// traceparent header, derived deterministically from (Config.Seed,
	// Seq). It joins this record to the server's span log (cmd/traceview)
	// and to the X-Simserved-Trace response header.
	TraceID string `json:"trace_id,omitempty"`
	// ConfigHash echoes the X-Simserved-Config-Hash response header (the
	// point's config_hash field on curve point records): the content
	// address of the answered query ("" on errors and non-2xx).
	ConfigHash string `json:"config_hash,omitempty"`
	// Error is the transport error — or, on curve point records, the
	// point's error (shed, canceled, failed) — when any.
	Error string `json:"error,omitempty"`

	// Kind distinguishes curve-mode records: "curve" for the request
	// itself, "point" for each streamed curve point (sharing the
	// parent's Seq). Empty on predict-mode records, so the predict log
	// schema is byte-identical to before curve mode existed.
	Kind string `json:"kind,omitempty"`
	// Cores is the point's core count (curve point records only).
	Cores int `json:"cores,omitempty"`
	// PointMs is the offset from request send to the point's frame
	// arrival (curve point records only) — the per-point streaming
	// latency the batched mode cannot observe.
	PointMs float64 `json:"point_ms,omitempty"`
}

// Config wires one open-loop run.
type Config struct {
	// BaseURL is the server under test, e.g. "http://localhost:8080".
	BaseURL string
	// Body is the POST payload sent on every request (a predict body, or
	// a curve body when Curve is set).
	Body []byte
	// Curve switches the harness to the streaming curve endpoint: each
	// request POSTs Body to /v1/curve with Accept: application/x-ndjson
	// and logs one "curve" record per request plus one "point" record
	// per streamed frame.
	Curve bool
	// Schedule holds the send offsets (see Schedule).
	Schedule []time.Duration
	// Tenant, when non-empty, is sent as X-Simserved-Tenant.
	Tenant string
	// Conns sizes the keep-alive connection pool. Zero means 4.
	Conns int
	// Client overrides the HTTP client (tests). Nil builds one from Conns.
	Client *http.Client
	// Seed derives each request's trace ID (with its Seq) via
	// telemetry.DeriveSpanContext, so a rerun of the same seeded schedule
	// regenerates the same trace IDs. Trace IDs are always derived and
	// logged; spans are only emitted when Tracer is set.
	Seed int64
	// Tracer, when non-nil, receives load.start and load.done events plus
	// one "load.request" client span per request, sharing the request's
	// derived trace ID so client and server waterfalls join.
	Tracer *telemetry.Tracer
}

// ErrNoSchedule reports a run with nothing to send.
var ErrNoSchedule = errors.New("load: empty schedule")

// Run drives the schedule open-loop: requests fire at their offsets
// regardless of how many are still in flight, so a slow server faces the
// configured offered load instead of throttling it. The returned records
// are ordered by Seq and complete — one per scheduled request (plus one
// per streamed point in curve mode), errors included. Cancelling ctx
// stops dispatching and aborts in-flight requests; the records
// dispatched so far are still returned, alongside the context's error.
func Run(ctx context.Context, cfg Config) ([]Record, error) {
	if len(cfg.Schedule) == 0 {
		return nil, ErrNoSchedule
	}
	client := cfg.Client
	if client == nil {
		conns := cfg.Conns
		if conns <= 0 {
			conns = 4
		}
		transport := &http.Transport{
			MaxIdleConns:        conns,
			MaxIdleConnsPerHost: conns,
		}
		client = &http.Client{Transport: transport}
		defer transport.CloseIdleConnections()
	}
	url := cfg.BaseURL + api.PathPredict
	if cfg.Curve {
		url = cfg.BaseURL + api.PathCurve
	}
	if cfg.Tracer.Enabled() {
		cfg.Tracer.Emit("load.start",
			"url", url, "requests", len(cfg.Schedule), "tenant", cfg.Tenant, "seed", cfg.Seed)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		records = make([]Record, 0, len(cfg.Schedule))
	)
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	dispatched := 0
	var runErr error
dispatch:
	for i, off := range cfg.Schedule {
		// An open loop never waits on completions — only on the clock.
		// Late wake-ups fire immediately, so the full schedule is always
		// offered; dispatch lag is visible as SendMs−ScheduledMs.
		if wait := time.Until(start.Add(off)); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				runErr = ctx.Err()
				break dispatch
			case <-timer.C:
			}
		} else if err := ctx.Err(); err != nil {
			runErr = err
			break dispatch
		}
		dispatched++
		wg.Add(1)
		go func(seq int, scheduled time.Duration) {
			defer wg.Done()
			var recs []Record
			if cfg.Curve {
				recs = fireCurve(ctx, client, url, cfg, seq, scheduled, start)
			} else {
				recs = []Record{fire(ctx, client, url, cfg, seq, scheduled, start)}
			}
			mu.Lock()
			records = append(records, recs...)
			mu.Unlock()
		}(i, off)
	}
	wg.Wait()
	// Stable, so a request's point records keep their stream order
	// behind their parent record.
	sort.SliceStable(records, func(i, j int) bool { return records[i].Seq < records[j].Seq })
	if cfg.Tracer.Enabled() {
		cfg.Tracer.Emit("load.done",
			"dispatched", dispatched, "elapsed_ms", float64(time.Since(start).Microseconds())/1000)
	}
	return records, runErr
}

// fire sends one request and measures it. Each request carries a
// deterministic traceparent derived from (cfg.Seed, seq); when the tracer
// is on, the client side is bracketed in a "load.request" span holding
// exactly that context, so the server's span tree hangs off it.
func fire(ctx context.Context, client *http.Client, url string, cfg Config, seq int, scheduled time.Duration, start time.Time) (rec Record) {
	sc := telemetry.DeriveSpanContext(cfg.Seed, int64(seq))
	rec = Record{
		Seq:         seq,
		ScheduledMs: durationMs(scheduled),
		Tenant:      cfg.Tenant,
		TraceID:     sc.Trace.String(),
	}
	// sent is assigned before client.Do; the trace callback fires during
	// Do, so the read is ordered after the write.
	var sent time.Time
	var firstByte time.Duration
	trace := &httptrace.ClientTrace{
		GotFirstResponseByte: func() { firstByte = time.Since(sent) },
	}
	req, err := http.NewRequestWithContext(httptrace.WithClientTrace(ctx, trace),
		http.MethodPost, url, bytes.NewReader(cfg.Body))
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	req.Header.Set("Content-Type", api.ContentTypeJSON)
	req.Header.Set(api.HeaderTraceparent, sc.Traceparent())
	if cfg.Tenant != "" {
		req.Header.Set(api.HeaderTenant, cfg.Tenant)
	}
	span := cfg.Tracer.StartSpanAt(sc, "load.request")
	defer func() { span.End("seq", rec.Seq, "status", rec.Status, "tier", rec.Tier) }()
	sent = time.Now()
	rec.SendMs = durationMs(sent.Sub(start))
	resp, err := client.Do(req)
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	_, copyErr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rec.TotalMs = durationMs(time.Since(sent))
	if firstByte > 0 {
		rec.FirstByteMs = durationMs(firstByte)
	} else {
		rec.FirstByteMs = rec.TotalMs
	}
	rec.Status = resp.StatusCode
	rec.Tier = resp.Header.Get(api.HeaderTier)
	if rec.Status >= 200 && rec.Status < 300 {
		rec.ConfigHash = resp.Header.Get(api.HeaderConfigHash)
	}
	if copyErr != nil {
		rec.Error = copyErr.Error()
	}
	return rec
}

// fireCurve sends one streaming curve request, reading NDJSON frames as
// they arrive: the returned slice holds the parent "curve" record
// followed by one "point" record per streamed point, each stamped with
// its arrival offset (PointMs) — the measurement that shows analytical
// points landing while simulation points are still running.
func fireCurve(ctx context.Context, client *http.Client, url string, cfg Config, seq int, scheduled time.Duration, start time.Time) []Record {
	sc := telemetry.DeriveSpanContext(cfg.Seed, int64(seq))
	parent := Record{
		Seq:         seq,
		Kind:        "curve",
		ScheduledMs: durationMs(scheduled),
		Tenant:      cfg.Tenant,
		TraceID:     sc.Trace.String(),
	}
	var sent time.Time
	var firstByte time.Duration
	trace := &httptrace.ClientTrace{
		GotFirstResponseByte: func() { firstByte = time.Since(sent) },
	}
	req, err := http.NewRequestWithContext(httptrace.WithClientTrace(ctx, trace),
		http.MethodPost, url, bytes.NewReader(cfg.Body))
	if err != nil {
		parent.Error = err.Error()
		return []Record{parent}
	}
	req.Header.Set("Content-Type", api.ContentTypeJSON)
	req.Header.Set("Accept", api.ContentTypeNDJSON)
	req.Header.Set(api.HeaderTraceparent, sc.Traceparent())
	if cfg.Tenant != "" {
		req.Header.Set(api.HeaderTenant, cfg.Tenant)
	}
	span := cfg.Tracer.StartSpanAt(sc, "load.request")
	defer func() { span.End("seq", parent.Seq, "status", parent.Status, "tier", parent.Tier) }()
	sent = time.Now()
	parent.SendMs = durationMs(sent.Sub(start))
	resp, err := client.Do(req)
	if err != nil {
		parent.Error = err.Error()
		return []Record{parent}
	}
	defer resp.Body.Close()
	parent.Status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		var apiErr api.Error
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil {
			parent.Error = apiErr.Error
		}
		parent.TotalMs = durationMs(time.Since(sent))
		parent.FirstByteMs = parent.TotalMs
		return []Record{parent}
	}

	points := make([]Record, 0, 8)
	sc2 := bufio.NewScanner(resp.Body)
	sc2.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc2.Scan() {
		arrived := time.Since(sent)
		line := bytes.TrimSpace(sc2.Bytes())
		if len(line) == 0 {
			continue
		}
		var frame api.CurveFrame
		if err := json.Unmarshal(line, &frame); err != nil {
			parent.Error = fmt.Sprintf("bad frame: %v", err)
			break
		}
		if frame.Point != nil {
			points = append(points, Record{
				Seq:        seq,
				Kind:       "point",
				Cores:      frame.Point.Cores,
				Tier:       frame.Point.Tier,
				ConfigHash: frame.Point.ConfigHash,
				PointMs:    durationMs(arrived),
				Tenant:     cfg.Tenant,
				TraceID:    parent.TraceID,
				Error:      frame.Point.Error,
			})
		}
	}
	if err := sc2.Err(); err != nil && parent.Error == "" {
		parent.Error = err.Error()
	}
	parent.TotalMs = durationMs(time.Since(sent))
	if firstByte > 0 {
		parent.FirstByteMs = durationMs(firstByte)
	} else {
		parent.FirstByteMs = parent.TotalMs
	}
	return append([]Record{parent}, points...)
}

// WriteNDJSON writes one JSON object per record, in input order.
func WriteNDJSON(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			return fmt.Errorf("load: record %d: %w", records[i].Seq, err)
		}
	}
	return bw.Flush()
}

// durationMs renders a duration as float milliseconds.
func durationMs(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
