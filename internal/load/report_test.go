package load

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// mm1Records fabricates the request log of an ideal M/M/1 system: Poisson
// arrivals from a seeded schedule through a single FIFO server with
// exponential service at rate mu. No clocks, no HTTP — the closed-form
// ground truth the report's fit must recover.
func mm1Records(t *testing.T, schedule []time.Duration, mu float64, seed int64, tier string) []Record {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	records := make([]Record, len(schedule))
	serverFree := 0.0
	for i, off := range schedule {
		arr := off.Seconds()
		start := math.Max(arr, serverFree)
		done := start + rng.ExpFloat64()/mu
		serverFree = done
		totalMs := (done - arr) * 1000
		records[i] = Record{
			Seq:         i,
			ScheduledMs: arr * 1000,
			SendMs:      arr * 1000,
			FirstByteMs: totalMs,
			TotalMs:     totalMs,
			Status:      200,
			Tier:        tier,
		}
	}
	return records
}

// TestReportRecoversMM1 is the harness's self-validation: traffic that
// really is M/M/1 must fit the ρ/(1−ρ) curve tightly — fitted μ within
// 10% of truth, mean relative error well under the 25% CI gate — at both
// moderate and high utilization.
func TestReportRecoversMM1(t *testing.T) {
	const mu = 1000.0 // 1ms service time
	for _, rho := range []float64{0.3, 0.6} {
		lambda := rho * mu
		sched, err := Schedule(ScheduleConfig{
			Mode: ModePoisson, RPS: lambda, Duration: 20 * time.Second, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		cv2, _ := ScheduleCV2(sched)
		recs := mm1Records(t, sched, mu, 23, "analytical")
		rep, err := BuildReport(recs, Options{
			Window: time.Second, OfferedRPS: lambda, ScheduleCV2: cv2,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts, ok := rep.Tiers["analytical"]
		if !ok || ts.MM1 == nil {
			t.Fatalf("rho %.1f: no analytical fit in %+v", rho, rep.Tiers)
		}
		fit := ts.MM1
		if math.Abs(fit.ServiceRate-mu)/mu > 0.10 {
			t.Errorf("rho %.1f: fitted μ = %.1f, want %.0f±10%%", rho, fit.ServiceRate, mu)
		}
		if fit.MeanRelErr > 0.15 {
			t.Errorf("rho %.1f: mean fit error %.1f%%, want < 15%%", rho, 100*fit.MeanRelErr)
		}
		if math.Abs(fit.PeakRho-rho) > 0.2 {
			t.Errorf("rho %.1f: peak ρ = %.3f", rho, fit.PeakRho)
		}
		// The offered stream is Poisson: achieved burstiness must say so.
		if math.Abs(rep.ArrivalCV2-1) > 0.2 {
			t.Errorf("rho %.1f: achieved CV² = %.3f, want 1±0.2", rho, rep.ArrivalCV2)
		}
		// Only ~20 windows feed the dispersion estimate here (χ² noise of
		// ±0.3 at one sigma), so the bound is looser than the burst
		// package's many-window property test.
		if math.Abs(rep.Dispersion-1) > 0.5 {
			t.Errorf("rho %.1f: dispersion = %.3f, want 1±0.5", rho, rep.Dispersion)
		}
		if rep.Verdict != "non-bursty" {
			t.Errorf("rho %.1f: verdict = %q", rho, rep.Verdict)
		}
		// Mean latency must sit near the closed form 1/(μ−λ).
		wantMs := 1000 / (mu - lambda)
		if math.Abs(ts.MeanMs-wantMs)/wantMs > 0.2 {
			t.Errorf("rho %.1f: mean latency %.3fms, want %.3fms±20%%", rho, ts.MeanMs, wantMs)
		}
	}
}

// TestReportCountsAndText drives the bookkeeping paths: status counts,
// error classification, tier grouping, and the text rendering.
func TestReportCountsAndText(t *testing.T) {
	recs := []Record{
		{Seq: 0, SendMs: 0, TotalMs: 1, Status: 200, Tier: "analytical"},
		{Seq: 1, SendMs: 100, TotalMs: 50, Status: 200, Tier: "simulation"},
		{Seq: 2, SendMs: 200, TotalMs: 1, Status: 429, Tier: ""},
		{Seq: 3, SendMs: 300, Status: 0, Error: "connection refused"},
		{Seq: 4, SendMs: 2400, TotalMs: 2, Status: 200, Tier: "analytical"},
	}
	rep, err := BuildReport(recs, Options{Window: time.Second, OfferedRPS: 2, MinWindowSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 5 || rep.OK != 3 || rep.Errors != 1 {
		t.Errorf("sent/ok/errors = %d/%d/%d", rep.Sent, rep.OK, rep.Errors)
	}
	if rep.ByStatus[200] != 3 || rep.ByStatus[429] != 1 || rep.ByStatus[0] != 1 {
		t.Errorf("ByStatus = %v", rep.ByStatus)
	}
	if got := rep.Tiers["analytical"].Count; got != 2 {
		t.Errorf("analytical count = %d, want 2", got)
	}
	if got := rep.Tiers["simulation"].Count; got != 1 {
		t.Errorf("simulation count = %d, want 1", got)
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	out := sb.String()
	for _, frag := range []string{"sent=5", "tier analytical", "tier simulation", "CV²", "verdict="} {
		if !strings.Contains(out, frag) {
			t.Errorf("text report missing %q:\n%s", frag, out)
		}
	}

	if _, err := BuildReport(nil, Options{}); !errors.Is(err, ErrNoRecords) {
		t.Errorf("empty records err = %v, want ErrNoRecords", err)
	}
}
