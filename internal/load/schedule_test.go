package load

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"
)

func TestParseMode(t *testing.T) {
	for _, ok := range []string{"const", "poisson", "burst"} {
		if _, err := ParseMode(ok); err != nil {
			t.Errorf("ParseMode(%q): %v", ok, err)
		}
	}
	if _, err := ParseMode("uniform"); err == nil {
		t.Error("ParseMode(uniform) must fail")
	}
}

func TestScheduleValidation(t *testing.T) {
	cases := []ScheduleConfig{
		{Mode: ModePoisson, RPS: 0, Duration: time.Second},
		{Mode: ModePoisson, RPS: 10, Duration: 0},
		{Mode: "warp", RPS: 10, Duration: time.Second},
		{Mode: ModeBurst, RPS: 10, Duration: time.Second, Burst: 0.5},
	}
	for _, cfg := range cases {
		if _, err := Schedule(cfg); !errors.Is(err, ErrBadSchedule) {
			t.Errorf("Schedule(%+v) err = %v, want ErrBadSchedule", cfg, err)
		}
	}
}

func TestScheduleConst(t *testing.T) {
	sched, err := Schedule(ScheduleConfig{Mode: ModeConst, RPS: 10, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 10 {
		t.Fatalf("len = %d, want 10", len(sched))
	}
	for i, off := range sched {
		want := time.Duration(i) * 100 * time.Millisecond
		if diff := (off - want).Abs(); diff > time.Microsecond {
			t.Errorf("offset[%d] = %s, want %s", i, off, want)
		}
	}
	if cv2, ok := ScheduleCV2(sched); !ok || cv2 > 1e-9 {
		t.Errorf("const CV² = %v ok=%v, want ~0", cv2, ok)
	}
}

// TestScheduleDeterminism is the jobs-style determinism claim: the same
// seed yields an element-identical schedule, a different seed a different
// one. The NDJSON golden test pins the byte encoding separately.
func TestScheduleDeterminism(t *testing.T) {
	for _, mode := range []Mode{ModeConst, ModePoisson, ModeBurst} {
		cfg := ScheduleConfig{Mode: mode, RPS: 200, Duration: 5 * time.Second, Seed: 42, Burst: 8}
		a, err := Schedule(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		b, err := Schedule(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different schedules", mode)
		}
		if mode == ModeConst {
			continue
		}
		cfg.Seed = 43
		c, err := Schedule(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical schedules", mode)
		}
	}
}

// TestScheduleRates checks each mode offers the configured mean rate and
// the configured burstiness ordering: const CV² = 0 < poisson ≈ 1 < burst.
func TestScheduleRates(t *testing.T) {
	const rps, dur = 100.0, 30 * time.Second
	var cv2s []float64
	for _, mode := range []Mode{ModeConst, ModePoisson, ModeBurst} {
		// A short phase keeps the realized on/off duty cycle close to its
		// 50/50 expectation, so the mean-rate assertion is not dominated
		// by phase-sampling noise.
		sched, err := Schedule(ScheduleConfig{Mode: mode, RPS: rps, Duration: dur, Seed: 7, Burst: 10, Phase: 250 * time.Millisecond})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		rate := float64(len(sched)) / dur.Seconds()
		if math.Abs(rate-rps)/rps > 0.15 {
			t.Errorf("%s: mean rate %.1f, want %.0f±15%%", mode, rate, rps)
		}
		last := time.Duration(-1)
		for i, off := range sched {
			if off < last {
				t.Fatalf("%s: offsets not monotonic at %d", mode, i)
			}
			if off >= dur {
				t.Fatalf("%s: offset %s beyond horizon", mode, off)
			}
			last = off
		}
		cv2, ok := ScheduleCV2(sched)
		if !ok {
			t.Fatalf("%s: CV² not estimable", mode)
		}
		cv2s = append(cv2s, cv2)
	}
	if cv2s[0] > 1e-9 {
		t.Errorf("const CV² = %g, want 0", cv2s[0])
	}
	if math.Abs(cv2s[1]-1) > 0.2 {
		t.Errorf("poisson CV² = %.3f, want 1±0.2", cv2s[1])
	}
	if cv2s[2] < 1.5 {
		t.Errorf("burst CV² = %.3f, want > 1.5", cv2s[2])
	}
}
