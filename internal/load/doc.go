// Package load is the open-loop load-generation harness behind
// cmd/loadgen: it turns a configured arrival process into a deterministic
// request schedule, fires it at a simserved instance without waiting for
// responses (open loop — a slow server does not throttle the offered
// load), logs one NDJSON record per request, and closes the loop
// analytically: the achieved arrival stream is characterized with the
// same CV²/index-of-dispersion machinery (internal/burst) the simulator
// applies to miss streams, and observed latency vs offered load is fitted
// against the M/M/1 ρ/(1−ρ) curve the paper's contention model is built
// on (eqs 5–11), reporting the relative error per serving tier.
//
// The package splits into three stages, each usable alone:
//
//   - Schedule: seeded arrival-offset generation (constant, Poisson, or
//     MMPP-2 burst-modulated). Same seed ⇒ byte-identical schedule; the
//     schedule's own CV² is the "configured" burstiness the report
//     compares against.
//   - Run: the open-loop driver. One goroutine dispatches at schedule
//     offsets, one goroutine per in-flight request measures first-byte
//     and total latency (net/http/httptrace) and captures the
//     X-Simserved-Tier header. Config.Curve switches the harness to the
//     streaming curve endpoint: one NDJSON-streamed ω(n) sweep per
//     scheduled request, logging a "point" record per frame with its
//     arrival offset.
//   - BuildReport: bins send times into windows (burst.Bin), classifies
//     the achieved stream (burst.Analyze), and fits the per-tier mean
//     latency against T = 1/(μ−λ) — see docs/LOADGEN.md for how to read
//     the fit.
//
// Everything here is wall-clock territory by design — it measures a live
// server — so the package is deliberately outside detlint's deterministic
// core. The schedule stage, which feeds golden and determinism tests, is
// pure: no clock reads, all randomness from the caller's seed.
package load
