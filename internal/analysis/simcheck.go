// Package analysis hosts simcheck, the repository's go/analysis lint
// suite. Each subpackage implements one analyzer enforcing an invariant
// the paper artifacts depend on; cmd/simcheck wires them into a vettool.
// docs/ARCHITECTURE.md §8 maps each analyzer to the runtime test it
// backstops.
package analysis

import (
	goanalysis "golang.org/x/tools/go/analysis"

	"repro/internal/analysis/apilint"
	"repro/internal/analysis/chanlint"
	"repro/internal/analysis/ctxfirst"
	"repro/internal/analysis/detlint"
	"repro/internal/analysis/errlint"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/leaklint"
	"repro/internal/analysis/locklint"
	"repro/internal/analysis/tracelint"
)

// Analyzers returns the full simcheck suite in stable order.
func Analyzers() []*goanalysis.Analyzer {
	return []*goanalysis.Analyzer{
		detlint.Analyzer,
		hotpath.Analyzer,
		ctxfirst.Analyzer,
		tracelint.Analyzer,
		errlint.Analyzer,
		apilint.Analyzer,
		leaklint.Analyzer,
		locklint.Analyzer,
		chanlint.Analyzer,
	}
}
