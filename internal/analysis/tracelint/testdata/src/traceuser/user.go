// Package traceuser exercises tracelint against the fixture telemetry API.
package traceuser

import "telemetry"

const evRunStart = "run.start"

func seriesName(i int) string { return "dynamic" }

func Use(t *telemetry.Tracer, r *telemetry.Registry, dyn string) {
	t.Emit("runner.span")
	t.Emit("sim.sample", "mc", 0)
	t.Emit("eventq.resize")
	t.Emit(evRunStart) // named constant: as greppable as a literal
	t.Emit("server.request", "tier", "analytical")
	t.Emit("model.fit", "r2", 1.0)
	t.Emit("load.start", "rps", 100.0)
	t.Emit(dyn)          // want `event name is computed at run time`
	t.Emit("Runner.Span") // want `must match \(run\|runner\|sim\|eventq\|server\|model\|load\)`
	t.Emit("other.event") // want `must match \(run\|runner\|sim\|eventq\|server\|model\|load\)`

	r.Counter("runner_sim_total").Inc()
	r.Counter("runner_sim")       // want `must end in _total`
	r.Counter("runner-sim_total") // want `lower_snake_case`
	r.Counter("runner_" + dyn + "_total") // want `counter name is computed at run time`
	_ = r.Gauge("sim_mc0_util")
	_ = r.Gauge("simMcUtil") // want `must be lower_snake_case`
	_ = r.Histogram("runner_execute_ms", 1, 10)

	//simcheck:allow(tracelint) per-MC gauge family is indexed by controller id; prefix and suffix stay literal at this one site
	_ = r.Gauge(seriesName(0))
}
