// Package traceuser exercises tracelint against the fixture telemetry API.
package traceuser

import "telemetry"

const evRunStart = "run.start"

func seriesName(i int) string { return "dynamic" }

func Use(t *telemetry.Tracer, r *telemetry.Registry, dyn string) {
	t.Emit("runner.span")
	t.Emit("sim.sample", "mc", 0)
	t.Emit("eventq.resize")
	t.Emit(evRunStart) // named constant: as greppable as a literal
	t.Emit("server.request", "tier", "analytical")
	t.Emit("model.fit", "r2", 1.0)
	t.Emit("load.start", "rps", 100.0)
	t.Emit(dyn)           // want `event name is computed at run time`
	t.Emit("Runner.Span") // want `must match \(run\|runner\|sim\|eventq\|server\|model\|load\|span\)`
	t.Emit("other.event") // want `must match \(run\|runner\|sim\|eventq\|server\|model\|load\|span\)`

	r.Counter("runner_sim_total").Inc()
	r.Counter("runner_sim")               // want `must end in _total`
	r.Counter("runner-sim_total")         // want `lower_snake_case`
	r.Counter("runner_" + dyn + "_total") // want `counter name is computed at run time`
	_ = r.Gauge("sim_mc0_util")
	_ = r.Gauge("simMcUtil") // want `must be lower_snake_case`
	_ = r.Histogram("runner_execute_ms", 1, 10)

	//simcheck:allow(tracelint) per-MC gauge family is indexed by controller id; prefix and suffix stay literal at this one site
	_ = r.Gauge(seriesName(0))
}

type holder struct {
	root telemetry.Span
}

// Spans exercises the StartSpan rules: literal namespaced names, and every
// locally-held span must be ended in its function.
func Spans(t *telemetry.Tracer, h *holder, dyn string) telemetry.Span {
	parent := telemetry.SpanContext{}

	ok := t.StartSpan(parent, "server.request")
	defer ok.End("status", 200)

	explicit := t.StartSpan(ok.Context(), "runner.queue_wait")
	explicit.End()

	closed := t.StartSpan(parent, "sim.replay")
	defer func() { closed.End("done", true) }()

	bad := t.StartSpan(parent, dyn) // want `span name is computed at run time`
	bad.End()
	worse := t.StartSpan(parent, "Other.Name") // want `must match \(run\|runner\|sim\|eventq\|server\|model\|load\|span\)`
	worse.End()

	t.StartSpan(parent, "server.admit")       // want `started and immediately discarded`
	_ = t.StartSpanAt(parent, "load.request") // want `started and immediately discarded`

	leaked := t.StartSpan(parent, "model.refit") // want `span leaked is never ended in this function`
	_ = leaked

	//simcheck:allow(tracelint) handed to a goroutine that ends it; lifetime checked by its own test
	allowed := t.StartSpan(parent, "runner.execute")
	_ = allowed

	// Hand-offs are exempt: the owner ends them.
	h.root = t.StartSpan(parent, "server.sim")
	return t.StartSpan(parent, "server.respond")
}
