// Package telemetry is a tracelint fixture modeling the real
// internal/telemetry API surface (matched by package name).
package telemetry

type Tracer struct{}

func (*Tracer) Emit(event string, args ...interface{}) {}

type Counter struct{}

func (*Counter) Inc() {}

type Registry struct{}

func (*Registry) Counter(name string) *Counter                     { return &Counter{} }
func (*Registry) Gauge(name string) float64                        { return 0 }
func (*Registry) Histogram(name string, bounds ...float64) float64 { return 0 }
