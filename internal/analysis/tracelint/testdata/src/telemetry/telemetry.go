// Package telemetry is a tracelint fixture modeling the real
// internal/telemetry API surface (matched by package name).
package telemetry

type Tracer struct{}

func (*Tracer) Emit(event string, args ...interface{}) {}

type SpanContext struct{}

type Span struct{}

func (Span) End(args ...interface{}) {}
func (Span) Context() SpanContext    { return SpanContext{} }

func (*Tracer) StartSpan(parent SpanContext, name string) Span { return Span{} }
func (*Tracer) StartSpanAt(sc SpanContext, name string) Span   { return Span{} }

type Counter struct{}

func (*Counter) Inc() {}

type Registry struct{}

func (*Registry) Counter(name string) *Counter                     { return &Counter{} }
func (*Registry) Gauge(name string) float64                        { return 0 }
func (*Registry) Histogram(name string, bounds ...float64) float64 { return 0 }
