// Package tracelint implements the telemetry-naming analyzer of the
// simcheck suite.
//
// The NDJSON trace and Prometheus surfaces are golden-tested and meant to
// be grepped: every event and metric name must be a compile-time string
// literal in a registered namespace, so `grep -r '"runner.span"'` finds
// every producer and the golden files never see a name computed at run
// time. tracelint checks each call into internal/telemetry:
//
//   - Tracer.Emit's event name must be a literal matching
//     (run|runner|sim|eventq|server|model|load).lower_snake[.more] — the
//     namespaces registered in docs/ARCHITECTURE.md §6 (server and model
//     belong to the serving layer, §9; load to the load harness)
//   - Registry.Counter/Gauge/Histogram names must be literal
//     lower_snake_case; counters must end in _total (Prometheus
//     convention, keeps rate() queries honest)
//
// Families that genuinely need an index (per-MC gauges) carry a justified
// //simcheck:allow(tracelint) at the call site.
package tracelint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/simdir"
)

// Name is the analyzer name used in diagnostics and allow directives.
const Name = "tracelint"

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "require literal, namespaced event and metric names at every internal/telemetry call site",
	Run:  run,
}

var (
	eventRE  = regexp.MustCompile(`^(run|runner|sim|eventq|server|model|load)\.[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$`)
	metricRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)
)

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "telemetry" || pass.Pkg.Name() == "telemetry_test" {
		// The defining package unit-tests the registry mechanism with
		// placeholder names; namespace rules bind its consumers.
		return nil, nil
	}
	dir := simdir.Parse(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || !isTelemetryMethod(obj) || len(call.Args) == 0 {
				return true
			}
			switch obj.Name() {
			case "Emit":
				checkName(pass, dir, call.Args[0], "event", eventRE,
					"must match (run|runner|sim|eventq|server|model|load).lower_snake — the registered trace namespaces")
			case "Counter":
				checkName(pass, dir, call.Args[0], "counter", metricRE,
					"must be lower_snake_case ending in _total")
			case "Gauge", "Histogram":
				checkName(pass, dir, call.Args[0], strings.ToLower(obj.Name()), metricRE,
					"must be lower_snake_case")
			}
			return true
		})
	}
	return nil, nil
}

// isTelemetryMethod reports whether obj is a method of a type defined in
// a package named telemetry (matched by name so fixtures can model it).
func isTelemetryMethod(obj *types.Func) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Name() == "telemetry"
}

func checkName(pass *analysis.Pass, dir *simdir.Directives, arg ast.Expr, kind string, re *regexp.Regexp, rule string) {
	lit, ok := literalString(pass, arg)
	if !ok {
		dir.Report(pass, Name, arg.Pos(),
			"%s name is computed at run time; telemetry names must be string literals so the NDJSON/Prometheus surfaces stay greppable and golden-testable", kind)
		return
	}
	if !re.MatchString(lit) {
		dir.Report(pass, Name, arg.Pos(), "%s name %q %s", kind, lit, rule)
		return
	}
	if kind == "counter" && !strings.HasSuffix(lit, "_total") {
		dir.Report(pass, Name, arg.Pos(), "counter name %q must end in _total (Prometheus counter convention)", lit)
	}
}

// literalString unwraps a string literal or a named constant with a
// constant string value (constants are as greppable as literals).
func literalString(pass *analysis.Pass, arg ast.Expr) (string, bool) {
	if lit, ok := arg.(*ast.BasicLit); ok {
		s, err := strconv.Unquote(lit.Value)
		return s, err == nil
	}
	// A declared string constant keeps the name findable at its single
	// declaration site; accept it.
	switch arg.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return constant.StringVal(tv.Value), true
		}
	}
	return "", false
}
