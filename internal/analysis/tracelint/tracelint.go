// Package tracelint implements the telemetry-naming analyzer of the
// simcheck suite.
//
// The NDJSON trace and Prometheus surfaces are golden-tested and meant to
// be grepped: every event and metric name must be a compile-time string
// literal in a registered namespace, so `grep -r '"runner.span"'` finds
// every producer and the golden files never see a name computed at run
// time. tracelint checks each call into internal/telemetry:
//
//   - Tracer.Emit's event name must be a literal matching
//     (run|runner|sim|eventq|server|model|load|span).lower_snake[.more] —
//     the namespaces registered in docs/ARCHITECTURE.md §6 (server and
//     model belong to the serving layer, §9; load to the load harness;
//     span.end is the tracing record, docs/TRACING.md)
//   - Tracer.StartSpan/StartSpanAt span names are event names too: same
//     literal + namespace rule, so every span producer greps
//   - a started span must be ended: a StartSpan result that is discarded
//     outright, or bound to a local variable with no x.End(...) anywhere
//     in the enclosing function, is a span that never emits. Handing the
//     span off (field assignment, return value) is exempt — ownership
//     moved, the End lives elsewhere
//   - Registry.Counter/Gauge/Histogram names must be literal
//     lower_snake_case; counters must end in _total (Prometheus
//     convention, keeps rate() queries honest)
//
// Families that genuinely need an index (per-MC gauges) carry a justified
// //simcheck:allow(tracelint) at the call site.
package tracelint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/simdir"
)

// Name is the analyzer name used in diagnostics and allow directives.
const Name = "tracelint"

func init() { simdir.Register(Name) }

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "require literal, namespaced event and metric names at every internal/telemetry call site",
	Run:  run,
}

var (
	eventRE  = regexp.MustCompile(`^(run|runner|sim|eventq|server|model|load|span)\.[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$`)
	metricRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)
)

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "telemetry" || pass.Pkg.Name() == "telemetry_test" {
		// The defining package unit-tests the registry mechanism with
		// placeholder names; namespace rules bind its consumers.
		return nil, nil
	}
	dir := simdir.Parse(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || !isTelemetryMethod(obj) || len(call.Args) == 0 {
				return true
			}
			switch obj.Name() {
			case "Emit":
				checkName(pass, dir, call.Args[0], "event", eventRE,
					"must match (run|runner|sim|eventq|server|model|load|span).lower_snake — the registered trace namespaces")
			case "StartSpan", "StartSpanAt":
				if len(call.Args) >= 2 {
					checkName(pass, dir, call.Args[1], "span", eventRE,
						"must match (run|runner|sim|eventq|server|model|load|span).lower_snake — the registered trace namespaces")
				}
			case "Counter":
				checkName(pass, dir, call.Args[0], "counter", metricRE,
					"must be lower_snake_case ending in _total")
			case "Gauge", "Histogram":
				checkName(pass, dir, call.Args[0], strings.ToLower(obj.Name()), metricRE,
					"must be lower_snake_case")
			}
			return true
		})
		checkSpanLifetimes(pass, dir, f)
	}
	return nil, nil
}

// checkSpanLifetimes flags StartSpan/StartSpanAt results that can never be
// ended: discarded outright, or bound to a local variable with no
// x.End(...) anywhere in the enclosing function declaration (deferred
// closures included — the whole body is searched). Spans handed off via
// field assignment or return value are exempt; their End is the owner's
// responsibility.
func checkSpanLifetimes(pass *analysis.Pass, dir *simdir.Directives, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		// Every identifier that has .End called on it somewhere in the body.
		ended := make(map[types.Object]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "End" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					ended[obj] = true
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok && isStartSpanCall(pass, call) {
					dir.Report(pass, Name, call.Pos(),
						"span is started and immediately discarded; every started span must be ended or it never emits")
				}
			case *ast.AssignStmt:
				for i, rhs := range st.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isStartSpanCall(pass, call) || i >= len(st.Lhs) {
						continue
					}
					id, ok := st.Lhs[i].(*ast.Ident)
					if !ok {
						continue // field assign: ownership handed off
					}
					if id.Name == "_" {
						dir.Report(pass, Name, call.Pos(),
							"span is started and immediately discarded; every started span must be ended or it never emits")
						continue
					}
					obj := pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = pass.TypesInfo.Uses[id]
					}
					if obj != nil && !ended[obj] {
						dir.Report(pass, Name, id.Pos(),
							"span %s is never ended in this function; call %s.End(...) (defer is fine) or hand the span off", id.Name, id.Name)
					}
				}
			}
			return true
		})
	}
}

// isStartSpanCall reports whether call invokes Tracer.StartSpan or
// Tracer.StartSpanAt from a package named telemetry.
func isStartSpanCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !isTelemetryMethod(obj) {
		return false
	}
	return obj.Name() == "StartSpan" || obj.Name() == "StartSpanAt"
}

// isTelemetryMethod reports whether obj is a method of a type defined in
// a package named telemetry (matched by name so fixtures can model it).
func isTelemetryMethod(obj *types.Func) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Name() == "telemetry"
}

func checkName(pass *analysis.Pass, dir *simdir.Directives, arg ast.Expr, kind string, re *regexp.Regexp, rule string) {
	lit, ok := literalString(pass, arg)
	if !ok {
		dir.Report(pass, Name, arg.Pos(),
			"%s name is computed at run time; telemetry names must be string literals so the NDJSON/Prometheus surfaces stay greppable and golden-testable", kind)
		return
	}
	if !re.MatchString(lit) {
		dir.Report(pass, Name, arg.Pos(), "%s name %q %s", kind, lit, rule)
		return
	}
	if kind == "counter" && !strings.HasSuffix(lit, "_total") {
		dir.Report(pass, Name, arg.Pos(), "counter name %q must end in _total (Prometheus counter convention)", lit)
	}
}

// literalString unwraps a string literal or a named constant with a
// constant string value (constants are as greppable as literals).
func literalString(pass *analysis.Pass, arg ast.Expr) (string, bool) {
	if lit, ok := arg.(*ast.BasicLit); ok {
		s, err := strconv.Unquote(lit.Value)
		return s, err == nil
	}
	// A declared string constant keeps the name findable at its single
	// declaration site; accept it.
	switch arg.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return constant.StringVal(tv.Value), true
		}
	}
	return "", false
}
