package tracelint_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/tracelint"
)

func TestTracelint(t *testing.T) {
	analyzertest.Run(t, "testdata", tracelint.Analyzer, "traceuser")
}
