// Package analyzertest is a self-contained stand-in for
// golang.org/x/tools/go/analysis/analysistest, which is not part of the
// toolchain-vendored subset of x/tools this repository builds against.
//
// It loads fixture packages from a testdata/src tree, type-checks them
// with the source importer (std library) plus a testdata-local importer
// (fixture-to-fixture imports), runs one analyzer, and compares the
// diagnostics against `// want "regexp"` comments using the same
// line-anchored convention as analysistest:
//
//	rand.Intn(4) // want `process-global random source`
//
// Each diagnostic must match an unconsumed want on its line, and each
// want must be consumed by exactly one diagnostic.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each fixture package below dir/src and applies the analyzer,
// reporting mismatches against the // want comments through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	if len(a.Requires) != 0 {
		t.Fatalf("analyzer %s has Requires; analyzertest only supports self-contained analyzers", a.Name)
	}
	l := newLoader(filepath.Join(dir, "src"))
	for _, path := range pkgPaths {
		p, err := l.load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags := runAnalyzer(t, a, l.fset, p)
		checkDiagnostics(t, l.fset, p, diags)
	}
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	root  string
	fset  *token.FileSet
	cache map[string]*loadedPkg
	std   types.Importer
}

func newLoader(root string) *loader {
	l := &loader{root: root, fset: token.NewFileSet(), cache: make(map[string]*loadedPkg)}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	return l
}

// Import implements types.Importer: testdata-local fixture packages win,
// everything else falls through to the std source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(l.root, path)); err == nil && fi.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	p := &loadedPkg{pkg: pkg, files: files, info: info}
	l.cache[path] = p
	return p, nil
}

func runAnalyzer(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, p *loadedPkg) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      p.files,
		Pkg:        p.pkg,
		TypesInfo:  p.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   map[*analysis.Analyzer]interface{}{},
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ReadFile:   os.ReadFile,
	}
	if _, err := a.Run(pass); err != nil {
		t.Errorf("%s on %s: %v", a.Name, p.pkg.Path(), err)
	}
	return diags
}

// want is one expected-diagnostic marker.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				for _, pat := range splitPatterns(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns extracts the sequence of quoted ("..." or `...`) patterns
// after a want marker.
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				t.Errorf("%s: unterminated want pattern: %s", pos, s)
				return pats
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Errorf("%s: bad want pattern %s: %v", pos, s[:end+1], err)
				return pats
			}
			pats = append(pats, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Errorf("%s: unterminated want pattern: %s", pos, s)
				return pats
			}
			pats = append(pats, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Errorf("%s: want patterns must be quoted: %s", pos, s)
			return pats
		}
	}
	return pats
}

func checkDiagnostics(t *testing.T, fset *token.FileSet, p *loadedPkg, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, p.files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.used || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}
