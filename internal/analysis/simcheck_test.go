package analysis_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	simcheck "repro/internal/analysis"
)

// TestAnalyzerNamesAndDocs pins the suite composition: nine analyzers,
// stable names (the allow-directive grammar depends on them), docs set.
func TestAnalyzerNamesAndDocs(t *testing.T) {
	want := []string{"detlint", "hotpath", "ctxfirst", "tracelint", "errlint", "apilint", "leaklint", "locklint", "chanlint"}
	as := simcheck.Analyzers()
	if len(as) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(as), len(want))
	}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// TestSimcheckCleanOverRepo builds cmd/simcheck and runs it through
// `go vet -vettool` over the whole repository: the tree must be clean.
// This is the same gate `make lint` enforces.
func TestSimcheckCleanOverRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole tree; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	tool := filepath.Join(t.TempDir(), "simcheck")
	build := exec.Command("go", "build", "-o", tool, "./cmd/simcheck")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cmd/simcheck: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("simcheck found violations (the tree must vet clean):\n%s", out)
	}
}
