// Package other is outside chanlint's package scope: channel discipline
// is not checked here.
package other

// unguarded would be flagged inside internal/..., but this package is
// out of scope.
func unguarded(out chan int) {
	out <- 1
}

// doubleClose would be flagged too.
func doubleClose(ch chan int) {
	close(ch)
	close(ch)
}
