// Package server is a chanlint fixture standing in for the streaming
// layers, where every send needs an exit arm and closes live on the
// sending side.
package server

import "context"

// unguardedSend can park forever once the receiver is gone.
func unguardedSend(out chan int) {
	out <- 1 // want `unguarded send on out can block forever`
}

// guardedSend pairs the send with a shutdown arm: clean.
func guardedSend(ctx context.Context, out chan int) {
	select {
	case out <- 1:
	case <-ctx.Done():
		return
	}
}

// doneGuardedSend uses a done-named channel instead of a context: clean.
func doneGuardedSend(done chan struct{}, out chan int) {
	select {
	case out <- 1:
	case <-done:
		return
	}
}

// defaultSend is non-blocking by construction: clean.
func defaultSend(out chan int) {
	select {
	case out <- 1:
	default:
	}
}

// boundedSend goes to a constant-capacity buffer made right here: clean.
func boundedSend() chan int {
	ch := make(chan int, 1)
	ch <- 42
	return ch
}

// unbufferedSend makes the channel with no capacity and nobody drains
// it in this function.
func unbufferedSend() chan int {
	ch := make(chan int)
	ch <- 42 // want `unguarded send on ch can block forever`
	return ch
}

// localPipeline fills from a goroutine and visibly drains in the same
// declaration: clean.
func localPipeline() int {
	ch := make(chan int)
	go func() {
		ch <- compute()
	}()
	return <-ch
}

// fieldBounded proves identity tracking through struct fields: the
// constructor sizes the buffer, the method sends.
type sink struct {
	out chan int
}

func newSink() *sink {
	return &sink{out: make(chan int, 8)}
}

func (s *sink) push(v int) {
	s.out <- v
}

// closeReceivingSide drains the channel and then closes it from the
// consuming side.
func closeReceivingSide(ch chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	close(ch) // want `close of ch on its receiving side`
	return total
}

// closeSendingSide is the correct shape: the producer closes when done.
func closeSendingSide(n int) chan int {
	ch := make(chan int, 4)
	go func() {
		for i := 0; i < n; i++ {
			ch <- i
		}
		close(ch)
	}()
	return ch
}

// consumerGoroutine drains in a separate closure while the declaration
// body closes after producing: different closures, clean.
func consumerGoroutine(n int) {
	ch := make(chan int, 4)
	go func() {
		for v := range ch {
			use(v)
		}
	}()
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
}

// doubleClose runs two closes in sequence: the second panics.
func doubleClose(ch chan int) {
	close(ch)
	close(ch) // want `second close of ch on the same path`
}

// branchClose closes on mutually exclusive paths: clean.
func branchClose(ch chan int, early bool) {
	if early {
		close(ch)
	} else {
		close(ch)
	}
}

// allowedSend is a justified exception: the protocol guarantees a
// receiver the analyzer cannot see.
func allowedSend(out chan int) {
	//simcheck:allow(chanlint) caller contract: receiver is started before any producer per the stream protocol
	out <- 1
}

// allowedNoReason carries the marker with no justification.
func allowedNoReason(out chan int) {
	//simcheck:allow(chanlint) // want `needs a justification`
	out <- 1
}

func compute() int { return 7 }
func use(x int)    { _ = x }
