package chanlint_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/chanlint"
)

func TestChanlint(t *testing.T) {
	analyzertest.Run(t, "testdata", chanlint.Analyzer, "internal/server", "other")
}
