// Package chanlint implements the channel-discipline analyzer of the
// simcheck suite (conccheck member 3 of 3).
//
// Channels in the serving and load layers carry request results and
// stream frames; a send with no exit arm is a goroutine leak the moment
// a client disappears, and a misplaced close is a panic. Three rules:
//
//   - Guarded sends: every send must be the comm clause of a select
//     carrying a default or a shutdown receive (ctx.Done() or a
//     done/stop/quit-named channel), or go to a provably bounded channel
//     (made with a constant capacity in this package), or have its
//     receiver in the same function declaration (a local pipeline that
//     visibly drains what it fills).
//   - Close side: the function that receives from a channel must not
//     also close it — only the sending side knows when the stream ends.
//     Receives and closes in *different* closures of one declaration
//     (consumer goroutine vs. producing body) are fine.
//   - Double close: two closes of the same channel in one statement
//     list are sequentially reachable and the second panics.
//
// A site that is deliberately exempt carries
// //simcheck:allow(chanlint) <justification>.
package chanlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/simdir"
)

// Name is the analyzer name used in diagnostics and allow directives.
const Name = "chanlint"

func init() { simdir.Register(Name) }

// DefaultPackages matches the layers that stream results to clients:
// the server, the load harness, and the experiment runner feeding both.
const DefaultPackages = `(^|/)internal/(server|load|experiments)($|/)`

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "require select-guarded or provably bounded channel sends, forbid closing from the receiving side, and reject sequentially reachable double closes",
	Run:  run,
}

var pkgPattern string

func init() {
	Analyzer.Flags.StringVar(&pkgPattern, "pkgs", DefaultPackages,
		"regexp of package import paths whose channel discipline is checked")
}

func run(pass *analysis.Pass) (interface{}, error) {
	re, err := regexp.Compile(pkgPattern)
	if err != nil {
		return nil, err
	}
	if !re.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	dir := simdir.Parse(pass)
	bounded := boundedChans(pass)
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		guarded := guardedSends(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDecl(pass, dir, fd, bounded, guarded)
		}
	}
	return nil, nil
}

// chanIdent resolves the channel expression to its object — a local
// variable, package variable, or struct field — so the same channel is
// recognized across closures and methods. Returns nil for expressions
// with no stable identity (function results, map loads).
func chanIdent(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	switch e := e.(type) {
	case *ast.Ident:
		if o := pass.TypesInfo.Uses[e]; o != nil {
			return o
		}
		return pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok {
			return sel.Obj()
		}
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

// boundedChans collects channels made with a constant capacity anywhere
// in the package: `ch := make(chan T, 1)` and field assignments alike.
func boundedChans(pass *analysis.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(lhs, rhs ast.Expr) {
		if !makesBounded(pass, rhs) {
			return
		}
		if obj := chanIdent(pass, lhs); obj != nil {
			out[obj] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						record(n.Names[i], n.Values[i])
					}
				}
			case *ast.KeyValueExpr:
				record(n.Key, n.Value)
			}
			return true
		})
	}
	return out
}

// makesBounded reports whether e is make(chan T, c) with constant c.
func makesBounded(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if t := pass.TypesInfo.TypeOf(call.Args[0]); t == nil {
		return false
	} else if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[1]]
	return ok && tv.Value != nil
}

// guardedSends returns the send statements that are comm clauses of a
// select carrying a default or a shutdown receive arm.
func guardedSends(pass *analysis.Pass, f *ast.File) map[*ast.SendStmt]bool {
	out := map[*ast.SendStmt]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		exempt := false
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil || isShutdownRecv(pass, cc.Comm) {
				exempt = true
				break
			}
		}
		if !exempt {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					out[send] = true
				}
			}
		}
		return true
	})
	return out
}

var doneNameRE = regexp.MustCompile(`(?i)^(done|stop|quit|exit|closed|closing|shutdown)$`)

// isShutdownRecv reports whether the comm statement receives from a
// shutdown-flavored channel: <-ctx.Done(), or a done/stop/quit-named
// channel variable.
func isShutdownRecv(pass *analysis.Pass, comm ast.Stmt) bool {
	var recv ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		recv = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			recv = s.Rhs[0]
		}
	}
	un, ok := recv.(*ast.UnaryExpr)
	if !ok || un.Op != token.ARROW {
		return false
	}
	switch x := un.X.(type) {
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			if t := pass.TypesInfo.TypeOf(x); t != nil {
				_, isChan := t.Underlying().(*types.Chan)
				return isChan
			}
		}
	case *ast.Ident:
		return doneNameRE.MatchString(x.Name)
	case *ast.SelectorExpr:
		return doneNameRE.MatchString(x.Sel.Name)
	}
	return false
}

// checkDecl applies all three rules to one function declaration.
func checkDecl(pass *analysis.Pass, dir *simdir.Directives, fd *ast.FuncDecl, bounded map[types.Object]bool, guarded map[*ast.SendStmt]bool) {
	// Receivers anywhere in the declaration (its closures included)
	// exempt sends: the function visibly drains what it fills.
	declRecv := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := chanIdent(pass, n.X); obj != nil {
					declRecv[obj] = true
				}
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if obj := chanIdent(pass, n.X); obj != nil {
						declRecv[obj] = true
					}
				}
			}
		}
		return true
	})

	// Rule 1: guarded or bounded or locally drained sends.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		if guarded[send] {
			return true
		}
		obj := chanIdent(pass, send.Chan)
		if obj != nil && (bounded[obj] || declRecv[obj]) {
			return true
		}
		dir.Report(pass, Name, send.Pos(),
			"unguarded send on %s can block forever once the receiver is gone; select on ctx.Done()/shutdown, use a constant-capacity buffer, or receive in this function", types.ExprString(send.Chan))
		return true
	})

	// Rules 2 and 3 operate per closure: the declaration body and each
	// function literal are separate units.
	checkUnit(pass, dir, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkUnit(pass, dir, lit.Body)
		}
		return true
	})
}

// checkUnit enforces close-side and double-close rules within one
// closure, not descending into nested literals.
func checkUnit(pass *analysis.Pass, dir *simdir.Directives, body *ast.BlockStmt) {
	localRecv := map[types.Object]bool{}
	var closes []*ast.CallExpr
	var lists [][]ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := chanIdent(pass, n.X); obj != nil {
					localRecv[obj] = true
				}
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if obj := chanIdent(pass, n.X); obj != nil {
						localRecv[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					closes = append(closes, n)
				}
			}
		case *ast.BlockStmt:
			lists = append(lists, n.List)
		case *ast.CaseClause:
			lists = append(lists, n.Body)
		case *ast.CommClause:
			lists = append(lists, n.Body)
		}
		return true
	})

	// Rule 2: the closure that drains a channel must not close it.
	for _, c := range closes {
		if obj := chanIdent(pass, c.Args[0]); obj != nil && localRecv[obj] {
			dir.Report(pass, Name, c.Pos(),
				"close of %s on its receiving side; only the sender knows when the stream ends — close where the sends happen", types.ExprString(c.Args[0]))
		}
	}

	// Rule 3: two closes in one statement list run in sequence.
	for _, list := range lists {
		seen := map[types.Object]bool{}
		for _, s := range list {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "close" {
				continue
			}
			obj := chanIdent(pass, call.Args[0])
			if obj == nil {
				continue
			}
			if seen[obj] {
				dir.Report(pass, Name, call.Pos(),
					"second close of %s on the same path panics at runtime; close exactly once", types.ExprString(call.Args[0]))
			}
			seen[obj] = true
		}
	}
}
