// Package sim is a ctxfirst fixture standing in for an API package.
package sim

import "context"

func Run(ctx context.Context, n int) int { return n }

func BadOrder(n int, ctx context.Context) {} // want `takes context.Context as parameter 2`

func Library() {
	_ = context.Background() // want `context\.Background\(\) in library code`
}

func DoesWork(n int) int { // want `exported DoesWork does work \(calls Run, which takes a context.Context\)`
	return Run(context.TODO(), n) // want `context\.TODO\(\) in library code`
}

func GoodWork(ctx context.Context, n int) int {
	return Run(ctx, n)
}

// NewRenderer shapes data without touching context-taking callees: fine.
func NewRenderer(n int) int { return n * 2 }

type holder struct {
	ctx context.Context // want `struct field of type context.Context`
	n   int
}

func AllowedRoot() {
	//simcheck:allow(ctxfirst) designated root-context factory for signal wiring; callers own the scope
	_ = context.Background()
}
