// Command tool is a ctxfirst fixture: main packages may create root
// contexts.
package main

import "context"

func main() {
	_ = context.Background()
}
