// Package ctxfirst implements the context-discipline analyzer of the
// simcheck suite.
//
// PR 4 made the whole pipeline context-first: cancellation flows from the
// command line through experiments.Runner into the event loop, and
// kill-and-resume correctness depends on no library layer manufacturing
// its own root context. ctxfirst pins that shape:
//
//   - a function that takes a context.Context must take it as its FIRST
//     parameter (after the receiver)
//   - context.Background() / context.TODO() are forbidden outside cmd/*,
//     examples and _test.go files: a library that needs a context must be
//     handed one by its caller
//   - an exported function in the API packages (internal/experiments,
//     internal/sim, internal/cli, internal/model, internal/server) that
//     does work — calls something taking a context — must itself take a
//     context and forward it
//   - storing a context.Context in a struct field hides the caller's
//     cancellation scope and is flagged
//
// Pure data shaping (renderers, option constructors, accessors) takes no
// context and is untouched by these rules.
package ctxfirst

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/simdir"
)

// Name is the analyzer name used in diagnostics and allow directives.
const Name = "ctxfirst"

func init() { simdir.Register(Name) }

// DefaultAPIPackages are the packages whose exported surface must be
// context-first; Background/TODO and ctx-position checks apply to every
// non-main library package.
const DefaultAPIPackages = `(^|/)internal/(experiments|sim|cli|model|server)($|/)`

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "require context.Context as the first parameter of working APIs; forbid context.Background outside main packages",
	Run:  run,
}

var apiPattern string

func init() {
	Analyzer.Flags.StringVar(&apiPattern, "api", DefaultAPIPackages,
		"regexp of package import paths whose exported functions must be context-first")
}

func run(pass *analysis.Pass) (interface{}, error) {
	re, err := regexp.Compile(apiPattern)
	if err != nil {
		return nil, err
	}
	path := pass.Pkg.Path()
	isAPI := re.MatchString(path)
	isMainish := pass.Pkg.Name() == "main" ||
		strings.Contains(path, "/cmd/") || strings.HasPrefix(path, "cmd/") ||
		strings.Contains(path, "/examples/") || strings.HasPrefix(path, "examples/")

	dir := simdir.Parse(pass)
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, dir, n)
				if isAPI && n.Name.IsExported() {
					checkDoesWork(pass, dir, n)
				}
			case *ast.CallExpr:
				if !isMainish {
					checkBackground(pass, dir, n)
				}
			case *ast.StructType:
				if isAPI {
					checkStructFields(pass, dir, n)
				}
			}
			return true
		})
	}
	return nil, nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// checkSignature flags a context parameter in any position but the first.
func checkSignature(pass *analysis.Pass, dir *simdir.Directives, fn *ast.FuncDecl) {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	params := obj.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) && i != 0 {
			dir.Report(pass, Name, fn.Name.Pos(),
				"%s takes context.Context as parameter %d; the context must be the first parameter", fn.Name.Name, i+1)
		}
	}
}

// checkBackground flags context.Background()/TODO() in library code.
func checkBackground(pass *analysis.Pass, dir *simdir.Directives, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		dir.Report(pass, Name, call.Pos(),
			"context.%s() in library code breaks the cancellation chain; accept a context.Context from the caller instead (only cmd/*, examples and tests may create root contexts)", obj.Name())
	}
}

// checkDoesWork flags an exported API function that forwards into
// context-taking callees without accepting a context itself.
func checkDoesWork(pass *analysis.Pass, dir *simdir.Directives, fn *ast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	if p := sig.Params(); p.Len() > 0 && isContextType(p.At(0).Type()) {
		return // already context-first
	}
	var culprit *types.Func
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if culprit != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		csig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
		if !ok || csig.Params().Len() == 0 || !isContextType(csig.Params().At(0).Type()) {
			return true
		}
		if f, ok := calleeFunc(pass, call); ok {
			culprit = f
		}
		return true
	})
	if culprit != nil {
		dir.Report(pass, Name, fn.Name.Pos(),
			"exported %s does work (calls %s, which takes a context.Context) but does not take context.Context as its first parameter", fn.Name.Name, culprit.Name())
	}
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, ok := pass.TypesInfo.Uses[fun].(*types.Func)
		return f, ok
	case *ast.SelectorExpr:
		f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f, ok
	}
	return nil, false
}

// checkStructFields flags stored contexts.
func checkStructFields(pass *analysis.Pass, dir *simdir.Directives, st *ast.StructType) {
	for _, field := range st.Fields.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t != nil && isContextType(t) {
			dir.Report(pass, Name, field.Pos(),
				"struct field of type context.Context hides the caller's cancellation scope; pass the context per call instead")
		}
	}
}
