package detlint_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/detlint"
)

func TestDetlint(t *testing.T) {
	analyzertest.Run(t, "testdata", detlint.Analyzer, "internal/sim", "other")
}
