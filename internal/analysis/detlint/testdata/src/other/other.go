// Package other is outside the deterministic core: nothing is flagged.
package other

import "time"

func Fine() time.Time { return time.Now() }
