// Package sim is a detlint fixture standing in for the deterministic core.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func WallClock() int64 {
	t := time.Now() // want `time\.Now reads the wall clock`
	return t.Unix()
}

func Elapsed(t time.Time) int64 {
	return int64(time.Since(t)) // want `time\.Since reads the wall clock`
}

func GlobalRand() int {
	return rand.Intn(4) // want `process-global random source`
}

func SeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // explicitly seeded: fine
	return rng.Intn(4)
}

func send(ch chan int) { ch <- 1 }

func Spawn(ch chan int) {
	go send(ch) // want `goroutine launch in the deterministic core`
}

func SpawnAllowed(ch chan int) {
	//simcheck:allow(detlint) bounded generator goroutine with synchronized hand-off; order does not reach results
	go send(ch)
}

func SpawnNoReason(ch chan int) {
	//simcheck:allow(detlint) // want `needs a justification`
	go send(ch)
}

func MapAppendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside range over a map`
	}
	return keys
}

func MapAppendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted below: fine
	}
	sort.Strings(keys)
	return keys
}

func MapAppendLocal(m map[string]int) int {
	n := 0
	for k := range m {
		var parts []byte
		parts = append(parts, k...) // per-iteration slice: order never escapes
		n += len(parts)
	}
	return n
}

func MapPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over a map`
	}
}

type pusher struct{}

func (pusher) Push(int) {}

func MapPush(m map[string]int, p pusher) {
	for _, v := range m {
		p.Push(v) // want `Push inside range over a map`
	}
}

func MapSend(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send inside range over a map`
	}
}

func SliceAppend(xs []int) []int {
	var out []int
	for _, v := range xs {
		out = append(out, v) // slice iteration is ordered: fine
	}
	return out
}
