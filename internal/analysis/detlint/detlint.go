// Package detlint implements the determinism analyzer of the simcheck
// suite.
//
// The reproduction's headline guarantee — byte-identical artifacts at
// -jobs 1 and -jobs 8, kill-and-resume equality, golden-file stability —
// holds only if the simulation core is a pure function of its inputs.
// detlint rejects, at vet time, the constructs that historically break
// that purity:
//
//   - wall-clock reads (time.Now, time.Since) inside the model
//   - the global math/rand (and math/rand/v2) source, which is seeded
//     per-process; only explicitly seeded *rand.Rand values are allowed
//   - goroutine launches: the discrete-event core is single-threaded by
//     contract (concurrency lives in internal/experiments)
//   - iteration over a map that appends to an outer slice without a
//     following deterministic sort, or that pushes events / writes output
//     directly — Go randomizes map order, so any of these leak that
//     randomness into results
//
// A site that is deliberately exempt carries
// //simcheck:allow(detlint) <justification>.
package detlint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/simdir"
)

// Name is the analyzer name used in diagnostics and allow directives.
const Name = "detlint"

func init() { simdir.Register(Name) }

// DefaultPackages matches the deterministic simulation core: the
// discrete-event engine and every model package whose output feeds paper
// artifacts. internal/experiments, internal/cli and internal/telemetry are
// deliberately outside — they host the (checked-elsewhere) concurrency and
// wall-clock code.
const DefaultPackages = `(^|/)internal/(sim|eventq|memctrl|core|interconnect|cache|workload|counters|trace|machine|burst|mmq|stats|sampler)($|/)`

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "forbid nondeterminism (wall clock, global rand, goroutines, unsorted map iteration) in the simulation core",
	Run:  run,
}

var pkgPattern string

func init() {
	Analyzer.Flags.StringVar(&pkgPattern, "pkgs", DefaultPackages,
		"regexp of package import paths treated as the deterministic core")
}

// randConstructors are the math/rand functions that build explicitly
// seeded generators; everything else at package level uses the shared
// process-global source and is flagged.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	re, err := regexp.Compile(pkgPattern)
	if err != nil {
		return nil, err
	}
	if !re.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	dir := simdir.Parse(pass)
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // tests may use wall clock and ad-hoc randomness
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				dir.Report(pass, Name, n.Pos(),
					"goroutine launch in the deterministic core: the event loop is single-threaded by contract; move concurrency to internal/experiments or justify with //simcheck:allow(detlint)")
			case *ast.CallExpr:
				checkCall(pass, dir, n)
			case *ast.BlockStmt:
				checkMapRanges(pass, dir, n)
			}
			return true
		})
	}
	return nil, nil
}

// pkgFunc resolves call to a package-level function and returns its
// package path and name, or "", "".
func pkgFunc(pass *analysis.Pass, call *ast.CallExpr) (pkgPath, fn string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return "", ""
	}
	if recv := f.Type().(*types.Signature).Recv(); recv != nil {
		return "", "" // method call, e.g. (*rand.Rand).Intn — fine
	}
	return f.Pkg().Path(), f.Name()
}

func checkCall(pass *analysis.Pass, dir *simdir.Directives, call *ast.CallExpr) {
	path, name := pkgFunc(pass, call)
	switch path {
	case "time":
		if name == "Now" || name == "Since" || name == "Until" {
			dir.Report(pass, Name, call.Pos(),
				"time.%s reads the wall clock inside the deterministic core; simulated time must come from the event queue (eventq.Interface.Now)", name)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[name] {
			dir.Report(pass, Name, call.Pos(),
				"%s.%s uses the process-global random source; construct an explicitly seeded generator with rand.New(rand.NewSource(seed)) so runs replay byte-identically", pathBase(path), name)
		}
	}
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// checkMapRanges looks at every `for ... := range m` over a map inside the
// block and flags order-dependent side effects in its body. An append to a
// slice declared outside the loop is tolerated when a deterministic sort
// follows later in the same block; event pushes and output writes cannot
// be repaired after the fact and are always flagged.
func checkMapRanges(pass *analysis.Pass, dir *simdir.Directives, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok || !isMapType(pass.TypesInfo.TypeOf(rng.X)) {
			continue
		}
		sorted := sortFollows(pass, block.List[i+1:])
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, r := range n.Rhs {
					c, ok := r.(*ast.CallExpr)
					if !ok || !isBuiltin(pass, c, "append") {
						continue
					}
					if target := outerObject(pass, n.Lhs, rng); target != nil && !sorted {
						dir.Report(pass, Name, c.Pos(),
							"append to %q inside range over a map without a deterministic sort afterwards: map order is randomized, so the slice order (and anything derived from it) changes run to run", target.Name())
					}
				}
			case *ast.SendStmt:
				dir.Report(pass, Name, n.Pos(),
					"channel send inside range over a map: delivery order follows the randomized map order")
			case *ast.CallExpr:
				checkOrderSensitiveCall(pass, dir, n)
			}
			return true
		})
	}
}

// orderSensitiveMethods are callee names that schedule events or emit
// output — side effects whose order is observable in results.
var orderSensitiveMethods = map[string]bool{
	"Push": true, "Emit": true, "At": true, "After": true, "Schedule": true,
}

func checkOrderSensitiveCall(pass *analysis.Pass, dir *simdir.Directives, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if path, fn := pkgFunc(pass, call); path == "fmt" && (strings.HasPrefix(fn, "Print") || strings.HasPrefix(fn, "Fprint")) {
		dir.Report(pass, Name, call.Pos(),
			"fmt.%s inside range over a map writes output in randomized map order; collect keys, sort, then iterate", fn)
		return
	}
	if orderSensitiveMethods[name] {
		dir.Report(pass, Name, call.Pos(),
			"%s inside range over a map happens in randomized map order; collect and sort keys first", name)
	}
	if strings.HasPrefix(name, "Write") {
		if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil {
			if _, isFunc := obj.(*types.Func); isFunc {
				dir.Report(pass, Name, call.Pos(),
					"%s inside range over a map writes output in randomized map order; collect keys, sort, then iterate", name)
			}
		}
	}
}

// sortFollows reports whether any statement after the range performs a
// sort (sort.* or slices.Sort*), which re-establishes a deterministic
// order for accumulated values.
func sortFollows(pass *analysis.Pass, rest []ast.Stmt) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name := pkgFunc(pass, call)
			switch path {
			case "sort":
				found = true
			case "slices":
				if strings.Contains(name, "Sort") {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// outerObject returns the object assigned on the left-hand side when it
// was declared outside the range statement (so the accumulated order
// escapes the loop), or nil.
func outerObject(pass *analysis.Pass, lhs []ast.Expr, rng *ast.RangeStmt) types.Object {
	for _, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			continue
		}
		if obj.Pos() < rng.Pos() || obj.Pos() > rng.End() {
			return obj
		}
	}
	return nil
}
