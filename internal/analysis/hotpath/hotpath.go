// Package hotpath implements the allocation-discipline analyzer of the
// simcheck suite.
//
// The dispatch loop runs at 0 allocs/event (TestZeroAllocSteadyState);
// regressions there show up as an opaque allocation count. hotpath turns
// that runtime failure into a line-precise vet diagnostic: any function
// whose doc comment carries //simcheck:hotpath is checked for the
// constructs that make the Go compiler heap-allocate:
//
//   - function literals (closure capture allocates)
//   - fmt.* calls (variadic ...any boxes every argument)
//   - string concatenation (builds a new backing array)
//   - append (may grow the backing array; rings and high-water bucket
//     stores amortize this and carry a justified allow marker)
//   - make / new (direct allocations)
//   - implicit conversion of a concrete non-pointer value to an interface
//     type (boxes the value)
//
// Deliberately amortized sites carry //simcheck:allow(hotpath) with a
// justification, which keeps the zero-alloc argument auditable in source.
package hotpath

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/simdir"
)

// Name is the analyzer name used in diagnostics and allow directives.
const Name = "hotpath"

func init() { simdir.Register(Name) }

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "flag allocation-causing constructs inside //simcheck:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dir := simdir.Parse(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !simdir.IsHotpath(fn) {
				continue
			}
			checkBody(pass, dir, fn)
		}
	}
	return nil, nil
}

func checkBody(pass *analysis.Pass, dir *simdir.Directives, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			dir.Report(pass, Name, n.Pos(),
				"function literal in hot path allocates a closure per call; hoist it to a prebuilt field (see the engine's once-per-object callbacks)")
			return false // the literal itself is the diagnostic; don't cascade
		case *ast.BinaryExpr:
			checkConcat(pass, dir, n)
		case *ast.CallExpr:
			checkCall(pass, dir, n)
			checkCallConversions(pass, dir, n)
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if i < len(n.Lhs) {
					checkConversion(pass, dir, info.TypeOf(n.Lhs[i]), r)
				}
			}
		case *ast.ReturnStmt:
			res := fnResults(pass, fn)
			for i, r := range n.Results {
				if res != nil && i < res.Len() {
					checkConversion(pass, dir, res.At(i).Type(), r)
				}
			}
		}
		return true
	})
}

func fnResults(pass *analysis.Pass, fn *ast.FuncDecl) *types.Tuple {
	obj := pass.TypesInfo.Defs[fn.Name]
	if obj == nil {
		return nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Results()
}

func checkConcat(pass *analysis.Pass, dir *simdir.Directives, b *ast.BinaryExpr) {
	if b.Op.String() != "+" {
		return
	}
	t := pass.TypesInfo.TypeOf(b)
	if t == nil {
		return
	}
	if basic, ok := t.Underlying().(*types.Basic); !ok || basic.Info()&types.IsString == 0 {
		return
	}
	// Constant folding: a concatenation of constants never reaches runtime.
	if tv, ok := pass.TypesInfo.Types[b]; ok && tv.Value != nil {
		return
	}
	dir.Report(pass, Name, b.Pos(),
		"string concatenation in hot path allocates a new backing array every call")
}

func checkCall(pass *analysis.Pass, dir *simdir.Directives, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch fun.Name {
			case "append":
				dir.Report(pass, Name, call.Pos(),
					"append in hot path may grow the backing array; preallocate (high-water ring / free list) or justify with //simcheck:allow(hotpath)")
			case "make", "new":
				dir.Report(pass, Name, call.Pos(),
					"%s in hot path allocates; move construction to setup or a free list", fun.Name)
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			dir.Report(pass, Name, call.Pos(),
				"fmt.%s in hot path boxes every argument into ...any; format outside the dispatch loop", obj.Name())
		}
	}
}

// checkCallConversions flags concrete non-pointer arguments passed to
// interface parameters — the implicit boxing that shows up as one alloc
// per event in the steady-state test.
func checkCallConversions(pass *analysis.Pass, dir *simdir.Directives, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if ok && tv.IsType() {
		// Explicit conversion T(x).
		if len(call.Args) == 1 {
			checkConversion(pass, dir, tv.Type, call.Args[0])
		}
		return
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkConversion(pass, dir, pt, arg)
	}
}

// checkConversion reports arg when assigning it to target boxes a concrete
// non-pointer value into an interface.
func checkConversion(pass *analysis.Pass, dir *simdir.Directives, target types.Type, arg ast.Expr) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	at := pass.TypesInfo.TypeOf(arg)
	if at == nil {
		return
	}
	if basic, ok := at.Underlying().(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return
	}
	switch at.Underlying().(type) {
	case *types.Interface, *types.Pointer:
		return // already boxed / pointer payload needs no data allocation
	}
	dir.Report(pass, Name, arg.Pos(),
		"implicit conversion of concrete %s to interface %s in hot path boxes the value (one allocation per event)", at, target)
}
