// Package hot is a hotpath fixture modeling dispatch-loop functions.
package hot

import "fmt"

type item struct{ v int }

var sink interface{}

type ring struct {
	buf  []int
	head int
}

//simcheck:hotpath
func (r *ring) push(v int) {
	r.buf = append(r.buf, v) // want `append in hot path`
}

//simcheck:hotpath
func (r *ring) pushAllowed(v int) {
	r.buf = append(r.buf, v) //simcheck:allow(hotpath) amortized: high-water ring reuses its backing array across runs
}

//simcheck:hotpath
func logEvent() {
	fmt.Println() // want `fmt\.Println in hot path`
}

//simcheck:hotpath
func concat(a, b string) string {
	return a + b // want `string concatenation in hot path`
}

//simcheck:hotpath
func constConcat() string {
	return "a" + "b" // folded at compile time: fine
}

//simcheck:hotpath
func closure(n int) func() int {
	return func() int { return n } // want `function literal in hot path`
}

//simcheck:hotpath
func construct() *item {
	_ = make([]int, 4) // want `make in hot path allocates`
	return new(item)   // want `new in hot path allocates`
}

func consume(x interface{}) {}

//simcheck:hotpath
func boxArg(v int) {
	consume(v) // want `implicit conversion of concrete int to interface`
}

//simcheck:hotpath
func boxAssign(v item) {
	sink = v // want `implicit conversion of concrete hot\.item to interface`
}

//simcheck:hotpath
func pointerNoBox(p *item) {
	sink = p // pointer payload: no data allocation, fine
}

//simcheck:hotpath
func boxReturn(v int) interface{} {
	return v // want `implicit conversion of concrete int to interface`
}

//simcheck:hotpath
func passThrough(args []interface{}) {
	consume2(args...) // forwarding the slice: no per-element boxing
}

func consume2(xs ...interface{}) {}

// coldPath has every construct but no marker: nothing is flagged.
func coldPath(a, b string) string {
	_ = make([]int, 4)
	fmt.Println()
	sink = 1
	return a + b
}
