package apilint_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/apilint"
)

func TestApilint(t *testing.T) {
	analyzertest.Run(t, "testdata", apilint.Analyzer, "internal/server", "internal/api", "other")
}
