// Package server is an apilint fixture standing in for the serving
// stack, where json-tagged structs are banned.
package server

// predictRequest is a misplaced wire struct: json tags in a serving
// package.
type predictRequest struct { // want `struct predictRequest has json-tagged fields: wire structs belong in internal/api`
	Machine string `json:"machine"`
	Cores   int    `json:"cores,omitempty"`
}

// badTag is flagged twice: once as a misplaced wire struct, once for the
// camelCase tag name.
type badTag struct { // want `struct badTag has json-tagged fields`
	ConfigHash string `json:"configHash"` // want `json tag "configHash" is not lower snake_case`
}

// plain carries no json tags: an internal struct, not wire surface.
type plain struct {
	Machine string
	Cores   int
}

// ignored uses only the json:"-" opt-out, but the tag's presence still
// marks it as reaching for the wire.
type ignored struct { // want `struct ignored has json-tagged fields`
	Secret string `json:"-"`
}

// yamlOnly uses a non-json tag vocabulary: not apilint's business.
type yamlOnly struct {
	Machine string `yaml:"machine"`
}

//simcheck:allow(apilint) local log schema pinned by its own golden file, not an HTTP wire type
type allowedRecord struct {
	Seq       int     `json:"seq"`
	LatencyMs float64 `json:"latency_ms"`
}
