// Package api is an apilint fixture standing in for the wire package:
// json-tagged structs are at home here, but tag names must still be
// lower snake_case.
package api

// PredictRequest is a wire struct where it belongs: no diagnostic.
type PredictRequest struct {
	Machine string `json:"machine"`
	Cores   int    `json:"cores,omitempty"`
}

// BadVocabulary breaks the snake_case contract three ways.
type BadVocabulary struct {
	ConfigHash string `json:"configHash"`  // want `json tag "configHash" is not lower snake_case`
	MCs        int    `json:"MCs"`         // want `json tag "MCs" is not lower snake_case`
	Kebab      string `json:"kebab-case"`  // want `json tag "kebab-case" is not lower snake_case`
	Fine       string `json:"fine_name_2"` // snake_case: fine
	Skipped    string `json:"-"`           // opt-out: fine
}
