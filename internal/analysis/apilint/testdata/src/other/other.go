// Package other is outside the serving stack and the wire package:
// nothing is flagged.
package other

type record struct {
	Name string `json:"camelCase"`
}
