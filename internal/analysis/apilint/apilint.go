// Package apilint implements the wire-protocol analyzer of the simcheck
// suite.
//
// internal/api is the single home of the v1 HTTP wire contract: every
// JSON body the server writes or the clients decode, every header name,
// every path. The golden tests in internal/api pin those bytes; a
// json-tagged struct declared elsewhere in the serving stack is a wire
// type the goldens cannot see, and history says it drifts. apilint
// rejects, at vet time:
//
//   - struct type declarations with json-tagged fields inside the
//     serving packages (internal/server, internal/load) — wire structs
//     belong in internal/api where the golden tests cover them
//   - json tag names that are not lower snake_case, anywhere in the
//     serving packages or internal/api itself — the wire vocabulary is
//     snake_case by contract (docs/API.md)
//
// A struct that is deliberately exempt — a local schema whose contract
// is something other than the HTTP API, like the load harness's NDJSON
// log record — carries //simcheck:allow(apilint) <justification>.
package apilint

import (
	"go/ast"
	"reflect"
	"regexp"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/simdir"
)

// Name is the analyzer name used in diagnostics and allow directives.
const Name = "apilint"

func init() { simdir.Register(Name) }

// DefaultPackages matches the serving stack, where wire structs are
// banned: the HTTP server and the load-generation client.
const DefaultPackages = `(^|/)internal/(server|load)($|/)`

// DefaultTagPackages matches everywhere the snake_case tag rule applies:
// the serving stack plus the wire package itself.
const DefaultTagPackages = `(^|/)internal/(api|server|load)($|/)`

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "keep HTTP wire structs in internal/api and json tag names lower snake_case",
	Run:  run,
}

var (
	pkgPattern    string
	tagPkgPattern string
)

func init() {
	Analyzer.Flags.StringVar(&pkgPattern, "pkgs", DefaultPackages,
		"regexp of package import paths where json-tagged structs are banned")
	Analyzer.Flags.StringVar(&tagPkgPattern, "tagpkgs", DefaultTagPackages,
		"regexp of package import paths where json tag names must be lower snake_case")
}

// snakeRE is the wire vocabulary: lower snake_case, starting with a
// letter.
var snakeRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func run(pass *analysis.Pass) (interface{}, error) {
	banRE, err := regexp.Compile(pkgPattern)
	if err != nil {
		return nil, err
	}
	tagRE, err := regexp.Compile(tagPkgPattern)
	if err != nil {
		return nil, err
	}
	banned := banRE.MatchString(pass.Pkg.Path())
	tagged := tagRE.MatchString(pass.Pkg.Path())
	if !banned && !tagged {
		return nil, nil
	}
	dir := simdir.Parse(pass)
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // test fixtures and stubs are not wire surface
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			checkStruct(pass, dir, ts, st, banned, tagged)
			return true
		})
	}
	return nil, nil
}

// checkStruct inspects one struct declaration: in banned packages any
// json-tagged field makes the whole type a misplaced wire struct; in
// tag-checked packages every json tag name must be snake_case.
func checkStruct(pass *analysis.Pass, dir *simdir.Directives, ts *ast.TypeSpec, st *ast.StructType, banned, tagged bool) {
	reportedWire := false
	for _, field := range st.Fields.List {
		tag, ok := jsonTag(field)
		if !ok {
			continue
		}
		if banned && !reportedWire {
			reportedWire = true
			dir.Report(pass, Name, ts.Pos(),
				"struct %s has json-tagged fields: wire structs belong in internal/api where the golden tests pin their bytes", ts.Name.Name)
		}
		name := tag
		if i := strings.IndexByte(name, ','); i >= 0 {
			name = name[:i]
		}
		if name == "" || name == "-" {
			continue
		}
		if tagged && !snakeRE.MatchString(name) {
			dir.Report(pass, Name, field.Pos(),
				"json tag %q is not lower snake_case; the wire vocabulary is snake_case by contract", name)
		}
	}
}

// jsonTag extracts the json struct tag of a field, reporting whether one
// is present.
func jsonTag(field *ast.Field) (string, bool) {
	if field.Tag == nil {
		return "", false
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return "", false
	}
	return reflect.StructTag(raw).Lookup("json")
}
