package leaklint_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/leaklint"
)

func TestLeaklint(t *testing.T) {
	analyzertest.Run(t, "testdata", leaklint.Analyzer, "internal/server", "other")
}
