// Package other is outside leaklint's package scope: goroutines here are
// not lifecycle-checked, but allow-directive hygiene still runs — an
// unknown analyzer name is a diagnostic everywhere.
package other

// spin would be flagged inside internal/..., but this package is out of
// scope for the goroutine checks.
func spin() {
	go func() {
		for {
		}
	}()
}

// typoAllow names an analyzer the suite does not know: the directive
// suppresses nothing and must say so instead of passing silently.
func typoAllow() {
	//simcheck:allow(leeklint) misspelled on purpose // want `unknown analyzer "leeklint"`
	go func() {
		for {
		}
	}()
}
