// Package server is a leaklint fixture standing in for the concurrent
// serving layers, where every goroutine needs a provable shutdown path.
package server

import (
	"context"
	"sync"
)

// leakyWorker launches a goroutine with no shutdown construct at all.
func leakyWorker() {
	go func() { // want `goroutine has no provable shutdown path`
		for {
			work()
		}
	}()
}

// namedBody launches a named function: nothing about its shutdown is
// provable at the launch site.
func namedBody() {
	go work() // want `goroutine body is a named function`
}

// ctxGuarded selects on ctx.Done: clean.
func ctxGuarded(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				use(j)
			}
		}
	}()
}

// doneChan receives from a done-named channel: clean.
func doneChan(done chan struct{}) {
	go func() {
		<-done
	}()
}

// waitGroupPaired carries the classic Add/Done pairing: clean.
func waitGroupPaired(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// closerWait ends when the bounded group drains: clean.
func closerWait(wg *sync.WaitGroup, out chan int) {
	go func() {
		wg.Wait()
		close(out)
	}()
}

// rangeWorker drains a closable channel: clean.
func rangeWorker(jobs chan int) {
	go func() {
		for j := range jobs {
			use(j)
		}
	}()
}

// loopCapture references the loop variable instead of passing it.
func loopCapture(ctx context.Context, items []int) {
	for _, it := range items {
		go func() {
			<-ctx.Done()
			use(it) // want `captures loop variable "it" by reference`
		}()
	}
}

// loopParam passes the loop variable as an argument: clean.
func loopParam(ctx context.Context, items []int) {
	for _, it := range items {
		go func(it int) {
			<-ctx.Done()
			use(it)
		}(it)
	}
}

// forLoopCapture covers the classic three-clause loop too.
func forLoopCapture(ctx context.Context) {
	for i := 0; i < 4; i++ {
		go func() {
			<-ctx.Done()
			use(i) // want `captures loop variable "i" by reference`
		}()
	}
}

// capturedWrite assigns a captured local with no lock in the body.
func capturedWrite(ctx context.Context) int {
	total := 0
	go func() {
		<-ctx.Done()
		total = 7 // want `writes captured local "total" without synchronization`
	}()
	return total
}

// capturedIncrement races the same way.
func capturedIncrement(ctx context.Context) int {
	n := 0
	go func() {
		<-ctx.Done()
		n++ // want `writes captured local "n" without synchronization`
	}()
	return n
}

// guardedWrite holds a lock around the captured write: clean.
func guardedWrite(ctx context.Context, mu *sync.Mutex) int {
	total := 0
	go func() {
		<-ctx.Done()
		mu.Lock()
		total = 7
		mu.Unlock()
	}()
	return total
}

// localWrite assigns a variable declared inside the goroutine: clean.
func localWrite(ctx context.Context) {
	go func() {
		<-ctx.Done()
		n := 0
		n = n + 1
		use(n)
	}()
}

// allowedLeak is a justified exception: the goroutine ends when the
// listener closes, which the analyzer cannot see.
func allowedLeak() {
	//simcheck:allow(leaklint) serve loop exits when the listener is closed by shutdown
	go func() {
		for {
			work()
		}
	}()
}

// allowedNoReason carries the marker but no justification, which is its
// own diagnostic.
func allowedNoReason() {
	//simcheck:allow(leaklint) // want `needs a justification`
	go func() {
		for {
			work()
		}
	}()
}

func work()     {}
func use(x int) { _ = x }
