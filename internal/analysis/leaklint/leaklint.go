// Package leaklint implements the goroutine-lifecycle analyzer of the
// simcheck suite (conccheck member 1 of 3).
//
// The serving stack leaks goroutines in exactly the ways every Go server
// does: a worker launched without a shutdown path outlives its request,
// a loop variable captured by reference feeds every worker the last
// element, a captured local written from two goroutines races. The
// ROADMAP-item-3 concurrent event core will multiply the goroutine
// count, so the discipline is enforced at vet time: every `go`
// statement in the concurrent layers must carry a provable shutdown
// path —
//
//   - its body receives from a ctx.Done()-style channel (directly or in
//     a select), or from a done/stop/quit-named channel,
//   - or it is paired with a sync.WaitGroup: the body calls wg.Done()
//     (with the Add in the enclosing scope) or wg.Wait() (a closer
//     goroutine that ends when the bounded group drains),
//   - or it ranges over a channel (it ends when the producer closes),
//   - or it carries //simcheck:allow(leaklint) <justification>.
//
// Two capture hazards are flagged alongside: referencing an enclosing
// loop variable from the goroutine body instead of passing it as an
// argument (safe under Go ≥1.22 per-iteration semantics, but the suite
// requires the dependency to be explicit), and assigning to a captured
// local without a lock held in the body (a data race unless every other
// accessor is also synchronized — which the analyzer cannot see, so the
// write must be guarded or justified).
//
// leaklint also owns allow-directive hygiene for the whole suite: it
// runs over every package (the goroutine checks apply only inside
// -pkgs) and reports any //simcheck:allow naming an analyzer that is
// not registered, so a typo cannot silently suppress nothing.
package leaklint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/simdir"
)

// Name is the analyzer name used in diagnostics and allow directives.
const Name = "leaklint"

func init() { simdir.Register(Name) }

// DefaultPackages matches the concurrent layers grown by the serving
// PRs: everything that launches goroutines outside the deterministic
// core (which detlint forbids from launching any at all).
const DefaultPackages = `(^|/)internal/(server|load|experiments|telemetry|model)($|/)`

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "require a provable shutdown path for every goroutine in the concurrent layers; flag by-reference loop captures and unsynchronized captured writes",
	Run:  run,
}

var pkgPattern string

func init() {
	Analyzer.Flags.StringVar(&pkgPattern, "pkgs", DefaultPackages,
		"regexp of package import paths whose goroutines are lifecycle-checked")
}

// doneNameRE matches channel identifiers conventionally used as shutdown
// signals.
var doneNameRE = regexp.MustCompile(`(?i)^(done|stop|stopped|quit|exit|closed|closing|shutdown)$`)

func run(pass *analysis.Pass) (interface{}, error) {
	re, err := regexp.Compile(pkgPattern)
	if err != nil {
		return nil, err
	}
	dir := simdir.Parse(pass)
	// Directive hygiene runs everywhere, scoped checks only inside -pkgs.
	dir.ReportUnknown(pass)
	if !re.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // tests may leak for brevity; -race and t.Cleanup cover them
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, dir, fn.Body)
		}
	}
	return nil, nil
}

// checkFunc walks one function body looking for go statements, tracking
// the loop variables in scope at each.
func checkFunc(pass *analysis.Pass, dir *simdir.Directives, body *ast.BlockStmt) {
	var loopVars []types.Object
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			saved := len(loopVars)
			loopVars = append(loopVars, rangeVars(pass, n)...)
			ast.Inspect(n.Body, walk)
			loopVars = loopVars[:saved]
			return false
		case *ast.ForStmt:
			saved := len(loopVars)
			loopVars = append(loopVars, forVars(pass, n)...)
			if n.Body != nil {
				ast.Inspect(n.Body, walk)
			}
			loopVars = loopVars[:saved]
			return false
		case *ast.GoStmt:
			checkGo(pass, dir, n, loopVars)
			// Keep walking: the goroutine body may itself launch goroutines
			// or loop.
		}
		return true
	}
	ast.Inspect(body, walk)
}

// rangeVars returns the per-iteration variables a range statement
// declares or assigns.
func rangeVars(pass *analysis.Pass, rng *ast.RangeStmt) []types.Object {
	var vars []types.Object
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				vars = append(vars, obj)
			}
		}
	}
	return vars
}

// forVars returns the variables declared in a classic for's init clause.
func forVars(pass *analysis.Pass, f *ast.ForStmt) []types.Object {
	assign, ok := f.Init.(*ast.AssignStmt)
	if !ok {
		return nil
	}
	var vars []types.Object
	for _, l := range assign.Lhs {
		if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				vars = append(vars, obj)
			}
		}
	}
	return vars
}

// checkGo applies the three leak checks to one go statement.
func checkGo(pass *analysis.Pass, dir *simdir.Directives, g *ast.GoStmt, loopVars []types.Object) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		// The body is elsewhere; nothing about its shutdown is provable at
		// this launch site.
		dir.Report(pass, Name, g.Pos(),
			"goroutine body is a named function, so no shutdown path is provable at the launch site; wrap it in a func literal that selects on ctx.Done() or pairs with a WaitGroup, or justify with //simcheck:allow(leaklint)")
		return
	}
	if !hasShutdownPath(pass, lit.Body) {
		dir.Report(pass, Name, g.Pos(),
			"goroutine has no provable shutdown path: select on ctx.Done() (or a done/stop channel), pair it with sync.WaitGroup Add/Done, range over a closable channel, or justify with //simcheck:allow(leaklint)")
	}
	checkLoopCapture(pass, dir, g, lit, loopVars)
	checkCapturedWrites(pass, dir, lit)
}

// hasShutdownPath reports whether the goroutine body contains a
// construct that provably lets it exit.
func hasShutdownPath(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && isShutdownChan(pass, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(pass.TypesInfo.TypeOf(n.X)) {
				found = true
			}
		case *ast.CallExpr:
			if isWaitGroupCall(pass, n, "Done") || isWaitGroupCall(pass, n, "Wait") {
				found = true
			}
		}
		return !found
	})
	return found
}

// isShutdownChan reports whether a receive operand is a recognizable
// shutdown signal: the result of a Done()-style method (context.Context,
// custom lifecycles) or a channel named like one.
func isShutdownChan(pass *analysis.Pass, x ast.Expr) bool {
	switch x := x.(type) {
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return isChanType(pass.TypesInfo.TypeOf(x))
		}
	case *ast.Ident:
		return doneNameRE.MatchString(x.Name) && isChanType(pass.TypesInfo.TypeOf(x))
	case *ast.SelectorExpr:
		return doneNameRE.MatchString(x.Sel.Name) && isChanType(pass.TypesInfo.TypeOf(x))
	}
	return false
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isWaitGroupCall reports whether call is (*sync.WaitGroup).<method>.
func isWaitGroupCall(pass *analysis.Pass, call *ast.CallExpr, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return isSyncType(recv.Type(), "WaitGroup")
}

// isSyncType reports whether t is sync.<name> or *sync.<name>.
func isSyncType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// checkLoopCapture flags uses of an enclosing loop variable inside the
// goroutine body that were not passed through the call's arguments.
func checkLoopCapture(pass *analysis.Pass, dir *simdir.Directives, g *ast.GoStmt, lit *ast.FuncLit, loopVars []types.Object) {
	if len(loopVars) == 0 {
		return
	}
	captured := map[types.Object]bool{}
	for _, v := range loopVars {
		captured[v] = true
	}
	// Loop variables passed as call arguments are the sanctioned pattern.
	for _, arg := range g.Call.Args {
		if id, ok := arg.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				delete(captured, obj)
			}
		}
	}
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || !captured[obj] || reported[obj] {
			return true
		}
		reported[obj] = true
		dir.Report(pass, Name, id.Pos(),
			"goroutine captures loop variable %q by reference; pass it as an argument so the per-iteration dependency is explicit", obj.Name())
		return true
	})
}

// checkCapturedWrites flags plain assignments to variables declared
// outside the goroutine body when the body takes no lock: with nothing
// serializing them, two such goroutines (or the goroutine and its
// spawner) race.
func checkCapturedWrites(pass *analysis.Pass, dir *simdir.Directives, lit *ast.FuncLit) {
	if bodyTakesLock(pass, lit.Body) {
		return // coarse but honest: a lock in the body marks the writes as guarded
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested literal: its writes are its own problem
		}
		var targets []ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok.String() == ":=" {
				return true
			}
			targets = n.Lhs
		case *ast.IncDecStmt:
			targets = []ast.Expr{n.X}
		default:
			return true
		}
		for _, l := range targets {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if obj == nil || obj.Parent() == nil || obj.Pkg() == nil {
				continue
			}
			v, ok := obj.(*types.Var)
			if !ok || v.IsField() {
				continue
			}
			if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
				continue // declared inside the goroutine
			}
			if obj.Parent() == obj.Pkg().Scope() {
				continue // package-level state is detlint/design territory
			}
			dir.Report(pass, Name, id.Pos(),
				"goroutine writes captured local %q without synchronization; guard it with a mutex, send it over a channel, or justify with //simcheck:allow(leaklint)", obj.Name())
		}
		return true
	})
}

// bodyTakesLock reports whether the goroutine body calls Lock/RLock on a
// sync.Mutex/RWMutex anywhere.
func bodyTakesLock(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		recv := fn.Type().(*types.Signature).Recv()
		if recv != nil && (isSyncType(recv.Type(), "Mutex") || isSyncType(recv.Type(), "RWMutex")) {
			found = true
		}
		return !found
	})
	return found
}
