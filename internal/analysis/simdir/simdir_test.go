package simdir

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// newPass parses one source file and returns a minimal pass plus a
// pointer to the collected diagnostic messages.
func newPass(t *testing.T, src string) (*analysis.Pass, *[]string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var msgs []string
	pass := &analysis.Pass{
		Fset:   fset,
		Files:  []*ast.File{f},
		Report: func(d analysis.Diagnostic) { msgs = append(msgs, d.Message) },
	}
	return pass, &msgs
}

func TestParseAllowForms(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// want maps analyzer name -> justification for every Allow entry
		// Parse should produce, in order.
		want []Allow
	}{
		{
			name: "single analyzer",
			src:  "package p\n\n//simcheck:allow(locklint) held lock is private to this struct\nvar x int\n",
			want: []Allow{{Analyzer: "locklint", Justification: "held lock is private to this struct", Line: 3}},
		},
		{
			name: "multi-analyzer list expands to one entry per name",
			src:  "package p\n\n//simcheck:allow(leaklint,chanlint) drained by the caller per the RunStream contract\nvar x int\n",
			want: []Allow{
				{Analyzer: "leaklint", Justification: "drained by the caller per the RunStream contract", Line: 3},
				{Analyzer: "chanlint", Justification: "drained by the caller per the RunStream contract", Line: 3},
			},
		},
		{
			name: "multi-analyzer list tolerates spaces",
			src:  "package p\n\n//simcheck:allow(leaklint, locklint,\tchanlint) one reason for all three\nvar x int\n",
			want: []Allow{
				{Analyzer: "leaklint", Justification: "one reason for all three", Line: 3},
				{Analyzer: "locklint", Justification: "one reason for all three", Line: 3},
				{Analyzer: "chanlint", Justification: "one reason for all three", Line: 3},
			},
		},
		{
			name: "CRLF line endings leave no carriage return in the justification",
			src:  "package p\r\n\r\n//simcheck:allow(locklint) reason text\r\nvar x int\r\n",
			want: []Allow{{Analyzer: "locklint", Justification: "reason text", Line: 3}},
		},
		{
			name: "CRLF directive with empty justification stays empty",
			src:  "package p\r\n\r\n//simcheck:allow(locklint)\r\nvar x int\r\n",
			want: []Allow{{Analyzer: "locklint", Justification: "", Line: 3}},
		},
		{
			name: "trailing comment is not a justification",
			src:  "package p\n\n//simcheck:allow(locklint) real reason // not this part\nvar x int\n",
			want: []Allow{{Analyzer: "locklint", Justification: "real reason", Line: 3}},
		},
		{
			name: "directive on the same line as code",
			src:  "package p\n\nvar x = 1 //simcheck:allow(locklint) same-line marker\n",
			want: []Allow{{Analyzer: "locklint", Justification: "same-line marker", Line: 3}},
		},
		{
			name: "prose mentioning the grammar is not a directive",
			src:  "package p\n\n// use //simcheck:allow(locklint) to suppress\nvar x int\n",
			want: nil,
		},
		{
			name: "empty list item is dropped",
			src:  "package p\n\n//simcheck:allow(locklint,) reason\nvar x int\n",
			want: []Allow{{Analyzer: "locklint", Justification: "reason", Line: 3}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pass, _ := newPass(t, tc.src)
			d := Parse(pass)
			var got []Allow
			for _, file := range d.files() {
				for _, a := range d.allows[file] {
					got = append(got, Allow{Analyzer: a.Analyzer, Justification: a.Justification, Line: a.Line})
				}
			}
			if len(got) != len(tc.want) {
				t.Fatalf("parsed %d allow entries, want %d: %+v", len(got), len(tc.want), got)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("entry %d = %+v, want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestReportSuppression(t *testing.T) {
	reg := Register("faketestlint")
	t.Cleanup(func() { delete(known, reg) })

	t.Run("same-line directive suppresses", func(t *testing.T) {
		pass, msgs := newPass(t, "package p\n\nvar x = 1 //simcheck:allow(faketestlint) same line\n")
		d := Parse(pass)
		d.Report(pass, "faketestlint", pass.Files[0].Decls[0].Pos(), "should be suppressed")
		if len(*msgs) != 0 {
			t.Fatalf("diagnostics = %v, want none", *msgs)
		}
	})

	t.Run("line-above directive suppresses", func(t *testing.T) {
		pass, msgs := newPass(t, "package p\n\n//simcheck:allow(faketestlint) line above\nvar x = 1\n")
		d := Parse(pass)
		d.Report(pass, "faketestlint", pass.Files[0].Decls[0].Pos(), "should be suppressed")
		if len(*msgs) != 0 {
			t.Fatalf("diagnostics = %v, want none", *msgs)
		}
	})

	t.Run("directive for a different analyzer does not suppress", func(t *testing.T) {
		pass, msgs := newPass(t, "package p\n\n//simcheck:allow(faketestlint) wrong analyzer\nvar x = 1\n")
		d := Parse(pass)
		d.Report(pass, "otherlint", pass.Files[0].Decls[0].Pos(), "must surface")
		if len(*msgs) != 1 || (*msgs)[0] != "must surface" {
			t.Fatalf("diagnostics = %v, want [must surface]", *msgs)
		}
	})

	t.Run("empty justification is reported exactly once", func(t *testing.T) {
		pass, msgs := newPass(t, "package p\n\n//simcheck:allow(faketestlint)\nvar x = 1\n")
		d := Parse(pass)
		pos := pass.Files[0].Decls[0].Pos()
		d.Report(pass, "faketestlint", pos, "first")
		d.Report(pass, "faketestlint", pos, "second")
		if len(*msgs) != 1 || !strings.Contains((*msgs)[0], "needs a justification") {
			t.Fatalf("diagnostics = %v, want one needs-a-justification report", *msgs)
		}
	})
}

func TestReportUnknown(t *testing.T) {
	reg := Register("faketestlint")
	t.Cleanup(func() { delete(known, reg) })

	t.Run("unknown analyzer name is a diagnostic", func(t *testing.T) {
		pass, msgs := newPass(t, "package p\n\n//simcheck:allow(nosuchlint) typo of a real name\nvar x = 1\n")
		d := Parse(pass)
		d.ReportUnknown(pass)
		if len(*msgs) != 1 || !strings.Contains((*msgs)[0], `unknown analyzer "nosuchlint"`) {
			t.Fatalf("diagnostics = %v, want one unknown-analyzer report", *msgs)
		}
	})

	t.Run("registered names pass silently", func(t *testing.T) {
		pass, msgs := newPass(t, "package p\n\n//simcheck:allow(faketestlint) fine\nvar x = 1\n")
		d := Parse(pass)
		d.ReportUnknown(pass)
		if len(*msgs) != 0 {
			t.Fatalf("diagnostics = %v, want none", *msgs)
		}
	})

	t.Run("one unknown name in a multi-analyzer list is still caught", func(t *testing.T) {
		pass, msgs := newPass(t, "package p\n\n//simcheck:allow(faketestlint,nosuchlint) half right\nvar x = 1\n")
		d := Parse(pass)
		d.ReportUnknown(pass)
		if len(*msgs) != 1 || !strings.Contains((*msgs)[0], `"nosuchlint"`) {
			t.Fatalf("diagnostics = %v, want exactly the unknown half flagged", *msgs)
		}
	})
}
