// Package simdir parses the //simcheck:* source directives shared by the
// simcheck analyzer suite (internal/analysis/...).
//
// Two directives exist:
//
//	//simcheck:hotpath
//	    Placed in the doc comment of a function declaration, it marks the
//	    function as part of the zero-allocation dispatch hot path. The
//	    hotpath analyzer checks every construct inside such a function
//	    that can cause a heap allocation.
//
//	//simcheck:allow(<analyzer>) <justification>
//	    Placed on (or on the line directly above) a flagged line, it
//	    suppresses the named analyzer's diagnostic for that line. The
//	    justification text is mandatory: an allow marker without one is
//	    itself a diagnostic, so every suppression documents why the
//	    invariant is safe to break at that site.
package simdir

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// HotpathMarker is the directive that opts a function into hot-path
// allocation checking.
const HotpathMarker = "//simcheck:hotpath"

var allowRE = regexp.MustCompile(`^//simcheck:allow\(([a-zA-Z0-9_-]+)\)[ \t]*(.*)$`)

// Allow is one parsed //simcheck:allow directive.
type Allow struct {
	Analyzer      string    // analyzer name inside the parentheses
	Justification string    // trailing free text; empty is a violation
	Pos           token.Pos // position of the directive comment
	File          string
	Line          int

	used            bool
	reportedMissing bool
}

// Directives indexes every //simcheck:allow directive of the files of one
// analysis pass, keyed by file and line.
type Directives struct {
	allows map[string][]*Allow // filename -> directives, in file order
}

// Parse scans the comments of every file in the pass and returns the
// directive index for it.
func Parse(pass *analysis.Pass) *Directives {
	d := &Directives{allows: make(map[string][]*Allow)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := pass.Fset.Position(c.Slash)
				just := strings.TrimSpace(m[2])
				// A trailing comment is not a justification.
				if i := strings.Index(just, "//"); i >= 0 {
					just = strings.TrimSpace(just[:i])
				}
				d.allows[p.Filename] = append(d.allows[p.Filename], &Allow{
					Analyzer:      m[1],
					Justification: just,
					Pos:           c.Slash,
					File:          p.Filename,
					Line:          p.Line,
				})
			}
		}
	}
	return d
}

// lookup returns the allow directive covering (file, line) for the named
// analyzer: either a trailing comment on the same line or a comment on the
// line directly above.
func (d *Directives) lookup(analyzer, file string, line int) *Allow {
	for _, a := range d.allows[file] {
		if a.Analyzer != analyzer {
			continue
		}
		if a.Line == line || a.Line == line-1 {
			return a
		}
	}
	return nil
}

// Report emits the diagnostic unless an allow directive for the analyzer
// covers pos. A covering directive with an empty justification is reported
// once as its own violation — suppressions must say why.
func (d *Directives) Report(pass *analysis.Pass, analyzer string, pos token.Pos, format string, args ...any) {
	p := pass.Fset.Position(pos)
	if a := d.lookup(analyzer, p.Filename, p.Line); a != nil {
		a.used = true
		if a.Justification == "" && !a.reportedMissing {
			a.reportedMissing = true
			pass.Reportf(a.Pos, "simcheck:allow(%s) needs a justification after the marker explaining why this site is safe", analyzer)
		}
		return
	}
	pass.Reportf(pos, format, args...)
}

// IsHotpath reports whether the function declaration carries the
// //simcheck:hotpath marker in its doc comment.
func IsHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), HotpathMarker) {
			return true
		}
	}
	return false
}
