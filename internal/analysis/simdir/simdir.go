// Package simdir parses the //simcheck:* source directives shared by the
// simcheck analyzer suite (internal/analysis/...).
//
// Two directives exist:
//
//	//simcheck:hotpath
//	    Placed in the doc comment of a function declaration, it marks the
//	    function as part of the zero-allocation dispatch hot path. The
//	    hotpath analyzer checks every construct inside such a function
//	    that can cause a heap allocation.
//
//	//simcheck:allow(<analyzer>[,<analyzer>...]) <justification>
//	    Placed on (or on the line directly above) a flagged line, it
//	    suppresses the named analyzers' diagnostics for that line. The
//	    justification text is mandatory: an allow marker without one is
//	    itself a diagnostic, so every suppression documents why the
//	    invariant is safe to break at that site. Naming an analyzer the
//	    suite does not know is a diagnostic too (reported by leaklint,
//	    which runs on every package), so a typo cannot silently disable
//	    nothing.
package simdir

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// HotpathMarker is the directive that opts a function into hot-path
// allocation checking.
const HotpathMarker = "//simcheck:hotpath"

var allowRE = regexp.MustCompile(`^//simcheck:allow\(([a-zA-Z0-9_,\- \t]+)\)[ \t]*(.*)$`)

// known is the registry of analyzer names the suite ships. Every
// analyzer package calls Register(Name) at init, so any process that
// imports the suite (cmd/simcheck, the umbrella package, an analyzer's
// own test binary) knows at least the analyzers it runs.
var known = map[string]bool{}

// Register records an analyzer name as valid in allow directives. It is
// called from each analyzer package's init and returns the name so it
// can be used in a package-level var initializer.
func Register(name string) string {
	known[name] = true
	return name
}

// Known reports whether name is a registered analyzer name.
func Known(name string) bool { return known[name] }

// KnownNames returns the registered analyzer names, sorted.
func KnownNames() []string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Allow is one parsed //simcheck:allow directive entry. A directive
// naming several analyzers expands to one Allow per name, sharing the
// position and justification.
type Allow struct {
	Analyzer      string    // one analyzer name from the parenthesized list
	Justification string    // trailing free text; empty is a violation
	Pos           token.Pos // position of the directive comment
	File          string
	Line          int

	used            bool
	reportedMissing bool
}

// Directives indexes every //simcheck:allow directive of the files of one
// analysis pass, keyed by file and line.
type Directives struct {
	allows map[string][]*Allow // filename -> directives, in file order
}

// Parse scans the comments of every file in the pass and returns the
// directive index for it.
func Parse(pass *analysis.Pass) *Directives {
	d := &Directives{allows: make(map[string][]*Allow)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// CRLF sources leave the \r on the comment text; strip it
				// so the justification does not grow an invisible suffix.
				text := strings.TrimRight(c.Text, "\r")
				m := allowRE.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				p := pass.Fset.Position(c.Slash)
				just := strings.TrimSpace(m[2])
				// A trailing comment is not a justification.
				if i := strings.Index(just, "//"); i >= 0 {
					just = strings.TrimSpace(just[:i])
				}
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					d.allows[p.Filename] = append(d.allows[p.Filename], &Allow{
						Analyzer:      name,
						Justification: just,
						Pos:           c.Slash,
						File:          p.Filename,
						Line:          p.Line,
					})
				}
			}
		}
	}
	return d
}

// lookup returns the allow directive covering (file, line) for the named
// analyzer: either a trailing comment on the same line or a comment on the
// line directly above.
func (d *Directives) lookup(analyzer, file string, line int) *Allow {
	for _, a := range d.allows[file] {
		if a.Analyzer != analyzer {
			continue
		}
		if a.Line == line || a.Line == line-1 {
			return a
		}
	}
	return nil
}

// Report emits the diagnostic unless an allow directive for the analyzer
// covers pos. A covering directive with an empty justification is reported
// once as its own violation — suppressions must say why.
func (d *Directives) Report(pass *analysis.Pass, analyzer string, pos token.Pos, format string, args ...any) {
	p := pass.Fset.Position(pos)
	if a := d.lookup(analyzer, p.Filename, p.Line); a != nil {
		a.used = true
		if a.Justification == "" && !a.reportedMissing {
			a.reportedMissing = true
			pass.Reportf(a.Pos, "simcheck:allow(%s) needs a justification after the marker explaining why this site is safe", analyzer)
		}
		return
	}
	pass.Reportf(pos, format, args...)
}

// ReportUnknown flags every allow directive naming an analyzer absent
// from the registry: a misspelled name would otherwise be a silent no-op
// suppressing nothing while looking like a documented exception. Exactly
// one suite member (leaklint, which runs over every package) calls this,
// so the diagnostic appears once per directive.
func (d *Directives) ReportUnknown(pass *analysis.Pass) {
	for _, file := range d.files() {
		for _, a := range d.allows[file] {
			if !known[a.Analyzer] {
				pass.Reportf(a.Pos, "simcheck:allow names unknown analyzer %q (known: %s)",
					a.Analyzer, strings.Join(KnownNames(), ", "))
			}
		}
	}
}

// files returns the indexed filenames in sorted order so diagnostics are
// emitted deterministically.
func (d *Directives) files() []string {
	files := make([]string, 0, len(d.allows))
	for f := range d.allows {
		files = append(files, f)
	}
	sort.Strings(files)
	return files
}

// IsHotpath reports whether the function declaration carries the
// //simcheck:hotpath marker in its doc comment.
func IsHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), HotpathMarker) {
			return true
		}
	}
	return false
}
