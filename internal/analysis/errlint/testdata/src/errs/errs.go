// Package errs exercises errlint: sentinel and typed-error hygiene.
package errs

import "errors"

var ErrCanceled = errors.New("canceled")

type CanceledError struct{ drained int }

func (e *CanceledError) Error() string { return "canceled" }

// Is carries the one legitimate identity comparison.
func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

func Identity(err error) bool {
	return err == ErrCanceled // want `use errors\.Is\(err, ErrCanceled\)`
}

func NotIdentity(err error) bool {
	return err != ErrCanceled // want `use errors\.Is\(err, ErrCanceled\)`
}

func Good(err error) bool { return errors.Is(err, ErrCanceled) }

func NilCompare(err error) bool { return err == nil }

func Assert(err error) int {
	if ce, ok := err.(*CanceledError); ok { // want `use errors\.As`
		return ce.drained
	}
	return 0
}

func Switch(err error) int {
	switch e := err.(type) {
	case *CanceledError: // want `use errors\.As`
		return e.drained
	default:
		return 0
	}
}

func GoodAs(err error) int {
	var ce *CanceledError
	if errors.As(err, &ce) {
		return ce.drained
	}
	return 0
}

func Allowed(err error) bool {
	//simcheck:allow(errlint) exact-identity probe in the dedup cache; wrapped values must not match here
	return err == ErrCanceled
}
