// Package errlint implements the sentinel-error-hygiene analyzer of the
// simcheck suite.
//
// The pipeline's error surface is built on wrapping: sim.Run returns a
// *CanceledError that wraps ctx.Err() and Is-matches sim.ErrCanceled;
// experiments wraps worker panics the same way. Identity comparison and
// concrete type assertion silently stop matching the moment anyone adds a
// fmt.Errorf("...: %w", err) layer, so errlint enforces:
//
//   - comparisons against package-level Err* sentinels use errors.Is, not
//     == / != (the one exception is the sentinel's own Is method, which
//     is exactly where the identity comparison belongs)
//   - typed errors (*CanceledError, *WorkerPanicError, *ConfigError, and
//     any other pointer-to-struct *XxxError implementing error) are
//     retrieved with errors.As, never by type assertion or type switch
package errlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/simdir"
)

// Name is the analyzer name used in diagnostics and allow directives.
const Name = "errlint"

func init() { simdir.Register(Name) }

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "require errors.Is for Err* sentinels and errors.As for *XxxError types",
	Run:  run,
}

var (
	errorType  = types.Universe.Lookup("error").Type()
	errorIface = errorType.Underlying().(*types.Interface)
)

func run(pass *analysis.Pass) (interface{}, error) {
	dir := simdir.Parse(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if isErrorIsMethod(pass, n) {
					return false // target == ErrFoo inside Is() is the pattern itself
				}
			case *ast.BinaryExpr:
				checkComparison(pass, dir, n)
			case *ast.TypeAssertExpr:
				checkAssert(pass, dir, n)
			case *ast.TypeSwitchStmt:
				checkTypeSwitch(pass, dir, n)
				// Case clauses contain TypeAssertExpr-free types; the cases
				// are reported above, keep walking for nested expressions.
			}
			return true
		})
	}
	return nil, nil
}

// isErrorIsMethod matches `func (e *T) Is(target error) bool`.
func isErrorIsMethod(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || fn.Name.Name != "Is" {
		return false
	}
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	return sig.Params().Len() == 1 && types.Identical(sig.Params().At(0).Type(), errorType)
}

// sentinelObj returns the package-level Err* error variable behind expr,
// or nil.
func sentinelObj(pass *analysis.Pass, expr ast.Expr) types.Object {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") || len(v.Name()) < 4 {
		return nil
	}
	// Package-level variables have the package scope as parent.
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.Implements(v.Type(), errorIface) {
		return nil
	}
	return v
}

func checkComparison(pass *analysis.Pass, dir *simdir.Directives, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		if obj := sentinelObj(pass, side); obj != nil {
			dir.Report(pass, Name, b.Pos(),
				"comparing against sentinel %s with %s breaks once the error is wrapped; use errors.Is(err, %s)", obj.Name(), b.Op, obj.Name())
			return
		}
	}
}

// typedErrorName returns the *XxxError struct name if t is a pointer to a
// named struct type implementing error whose name ends in Error.
func typedErrorName(t types.Type) (string, bool) {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	name := named.Obj().Name()
	if !strings.HasSuffix(name, "Error") || name == "Error" {
		return "", false
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return "", false
	}
	if !types.Implements(ptr, errorIface) {
		return "", false
	}
	return name, true
}

func checkAssert(pass *analysis.Pass, dir *simdir.Directives, ta *ast.TypeAssertExpr) {
	if ta.Type == nil {
		return // x.(type) inside a type switch; handled there
	}
	t := pass.TypesInfo.TypeOf(ta.Type)
	if t == nil {
		return
	}
	if name, ok := typedErrorName(t); ok {
		dir.Report(pass, Name, ta.Pos(),
			"type assertion to *%s misses wrapped errors; use errors.As(err, &target)", name)
	}
}

func checkTypeSwitch(pass *analysis.Pass, dir *simdir.Directives, ts *ast.TypeSwitchStmt) {
	for _, clause := range ts.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, texpr := range cc.List {
			t := pass.TypesInfo.TypeOf(texpr)
			if t == nil {
				continue
			}
			if name, ok := typedErrorName(t); ok {
				dir.Report(pass, Name, texpr.Pos(),
					"type switch case *%s misses wrapped errors; use errors.As(err, &target)", name)
			}
		}
	}
}
