package errlint_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/errlint"
)

func TestErrlint(t *testing.T) {
	analyzertest.Run(t, "testdata", errlint.Analyzer, "errs")
}
