package locklint_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/locklint"
)

func TestLocklint(t *testing.T) {
	analyzertest.Run(t, "testdata", locklint.Analyzer, "internal/server", "other")
}
