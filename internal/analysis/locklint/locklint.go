// Package locklint implements the mutex-discipline analyzer of the
// simcheck suite (conccheck member 2 of 3).
//
// The serving stack's mutexes guard small state (admission counters,
// latency EWMAs, caches); the failure modes are the classic three, and
// each one is rejected at vet time:
//
//   - Unlock pairing: a Lock whose Unlock is not deferred is tolerated
//     only when the critical section is straight-line — the matching
//     Unlock appears later in the same block with no return or panic
//     reachable in between. Anything branchier must defer the Unlock
//     (or restructure into a small locked helper that can).
//   - Blocking under a lock: channel sends/receives (outside a select
//     with a default), selects without a default, net/http round trips,
//     Runner.Run*/Sweep* simulations, WaitGroup.Wait and time.Sleep
//     while a sync.Mutex/RWMutex is held serialize the server on its
//     slowest request — all flagged inside the lock region, whether the
//     region ends at the paired Unlock or (for deferred unlocks) at the
//     end of the function.
//   - Copied locks: a parameter or receiver whose non-pointer type
//     (transitively) contains a sync.Mutex/RWMutex/WaitGroup/Once/Cond
//     copies the lock state, so the copy guards nothing.
//
// A site that is deliberately exempt carries
// //simcheck:allow(locklint) <justification>.
package locklint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/simdir"
)

// Name is the analyzer name used in diagnostics and allow directives.
const Name = "locklint"

func init() { simdir.Register(Name) }

// DefaultPackages matches the concurrent layers, same set as leaklint:
// the serving stack and the packages it drives.
const DefaultPackages = `(^|/)internal/(server|load|experiments|telemetry|model)($|/)`

var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "enforce defer-or-straight-line Unlock pairing, forbid blocking operations under a mutex, and reject locks passed by value",
	Run:  run,
}

var pkgPattern string

func init() {
	Analyzer.Flags.StringVar(&pkgPattern, "pkgs", DefaultPackages,
		"regexp of package import paths whose mutex discipline is checked")
}

func run(pass *analysis.Pass) (interface{}, error) {
	re, err := regexp.Compile(pkgPattern)
	if err != nil {
		return nil, err
	}
	if !re.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	dir := simdir.Parse(pass)
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // the -race suite owns test-code locking
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunction(pass, dir, n.Recv, n.Type, n.Body)
				}
			case *ast.FuncLit:
				checkFunction(pass, dir, nil, n.Type, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// lockKey identifies one mutex within a function: the rendered receiver
// expression plus the read/write mode, so mu.Lock pairs with mu.Unlock
// and mu.RLock with mu.RUnlock.
type lockKey struct {
	expr string
	read bool
}

// lockCall classifies a call as Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex and returns its key.
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (key lockKey, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return key, false, false
	}
	var read bool
	switch sel.Sel.Name {
	case "Lock", "Unlock":
	case "RLock", "RUnlock":
		read = true
	default:
		return key, false, false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return key, false, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !(isSyncType(recv.Type(), "Mutex") || isSyncType(recv.Type(), "RWMutex")) {
		return key, false, false
	}
	return lockKey{expr: types.ExprString(sel.X), read: read},
		sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock", true
}

// checkFunction applies all three checks to one function (declaration or
// literal). Nested literals are analyzed on their own visit, so their
// statements are excluded here.
func checkFunction(pass *analysis.Pass, dir *simdir.Directives, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt) {
	checkByValueLocks(pass, dir, recv, ftype)
	deferred := deferredUnlocks(pass, body)
	for _, list := range statementLists(body) {
		checkList(pass, dir, list, deferred)
	}
}

// statementLists collects every statement list of the function body —
// blocks, case clauses, comm clauses — without descending into nested
// function literals.
func statementLists(body *ast.BlockStmt) [][]ast.Stmt {
	var lists [][]ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			lists = append(lists, n.List)
		case *ast.CaseClause:
			lists = append(lists, n.Body)
		case *ast.CommClause:
			lists = append(lists, n.Body)
		}
		return true
	})
	return lists
}

// deferredUnlocks returns the lock keys released by defer statements
// anywhere in the function: `defer mu.Unlock()` directly, or inside a
// deferred closure.
func deferredUnlocks(pass *analysis.Pass, body *ast.BlockStmt) map[lockKey]bool {
	out := map[lockKey]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested literal's defers run on its own exit
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if key, acquire, ok := lockCall(pass, d.Call); ok && !acquire {
			out[key] = true
			return true
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if key, acquire, ok := lockCall(pass, call); ok && !acquire {
						out[key] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// checkList scans one statement list for statement-level Lock calls and
// validates each lock region.
func checkList(pass *analysis.Pass, dir *simdir.Directives, list []ast.Stmt, deferred map[lockKey]bool) {
	for i, stmt := range list {
		expr, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := expr.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		key, acquire, ok := lockCall(pass, call)
		if !ok || !acquire {
			continue
		}
		if deferred[key] {
			// Deferred release: the lock is held until the function exits,
			// so the whole remainder of the list is the critical section.
			checkBlocking(pass, dir, key, list[i+1:])
			continue
		}
		// Find the matching statement-level release in this list.
		end := -1
		for j := i + 1; j < len(list); j++ {
			es, ok := list[j].(*ast.ExprStmt)
			if !ok {
				continue
			}
			c, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			k, acq, ok := lockCall(pass, c)
			if ok && !acq && k == key {
				end = j
				break
			}
		}
		if end < 0 {
			dir.Report(pass, Name, call.Pos(),
				"%s is locked here but released on some other path; defer the %s right after locking so every exit releases it", key.expr, unlockName(key))
			continue
		}
		region := list[i+1 : end]
		if pos, found := earlyExit(region); found {
			dir.Report(pass, Name, pos,
				"early exit inside the %s critical section can leave it locked (or hides a hand-unlocked branch); defer the %s or keep the section straight-line", key.expr, unlockName(key))
		}
		checkBlocking(pass, dir, key, region)
	}
}

func unlockName(key lockKey) string {
	if key.read {
		return "RUnlock"
	}
	return "Unlock"
}

// earlyExit reports the first return, panic, or goto nested anywhere in
// the statements — the constructs that can leave a straight-line lock
// region without reaching its Unlock.
func earlyExit(stmts []ast.Stmt) (token.Pos, bool) {
	var pos token.Pos
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				pos, found = n.Pos(), true
			case *ast.BranchStmt:
				if n.Tok == token.GOTO {
					pos, found = n.Pos(), true
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
					pos, found = n.Pos(), true
				}
			}
			return !found
		})
		if found {
			return pos, true
		}
	}
	return pos, false
}

// checkBlocking flags operations inside a lock region that can block
// indefinitely (or for a whole simulation) while the mutex is held.
func checkBlocking(pass *analysis.Pass, dir *simdir.Directives, key lockKey, stmts []ast.Stmt) {
	for _, s := range stmts {
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // runs later, lock may be gone by then
			case *ast.SelectStmt:
				if selectHasDefault(n) {
					// Non-blocking by construction: skip the comm headers,
					// still check the clause bodies.
					for _, c := range n.Body.List {
						if cc, ok := c.(*ast.CommClause); ok {
							for _, bs := range cc.Body {
								ast.Inspect(bs, walk)
							}
						}
					}
					return false
				}
				dir.Report(pass, Name, n.Pos(),
					"blocking select while %s is held; release the lock first or add a default case", key.expr)
				return false
			case *ast.SendStmt:
				dir.Report(pass, Name, n.Pos(),
					"channel send while %s is held can block every other holder; release the lock first", key.expr)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					dir.Report(pass, Name, n.Pos(),
						"channel receive while %s is held can block every other holder; release the lock first", key.expr)
				}
			case *ast.CallExpr:
				if msg := blockingCall(pass, n); msg != "" {
					dir.Report(pass, Name, n.Pos(),
						"%s while %s is held; release the lock before the slow operation", msg, key.expr)
				}
			}
			return true
		}
		ast.Inspect(s, walk)
	}
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCall classifies calls that are slow or unbounded by design:
// HTTP round trips, simulations through the experiments Runner,
// WaitGroup.Wait and time.Sleep.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		if isSyncType(recv.Type(), "WaitGroup") && fn.Name() == "Wait" {
			return "sync.WaitGroup.Wait"
		}
		if isHTTPClient(recv.Type()) {
			return "net/http client call " + fn.Name()
		}
		if isRunnerType(recv.Type()) && (strings.HasPrefix(fn.Name(), "Run") || strings.HasPrefix(fn.Name(), "Sweep") || fn.Name() == "Measure") {
			return "Runner." + fn.Name() + " simulation"
		}
		return ""
	}
	if pkg := fn.Pkg(); pkg != nil {
		if pkg.Path() == "net/http" {
			return "net/http." + fn.Name()
		}
		if pkg.Path() == "time" && fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	}
	return ""
}

func isHTTPClient(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Client"
}

// isRunnerType matches the experiments Runner by name so fixtures can
// stand in a local Runner without importing the real package.
func isRunnerType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Runner"
}

// checkByValueLocks flags parameters and receivers whose non-pointer
// type contains a lock.
func checkByValueLocks(pass *analysis.Pass, dir *simdir.Directives, recv *ast.FieldList, ftype *ast.FuncType) {
	lists := []*ast.FieldList{recv, ftype.Params}
	for _, fl := range lists {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if name := containedLock(t, map[types.Type]bool{}); name != "" {
				dir.Report(pass, Name, field.Pos(),
					"passing %s by value copies its %s; pass a pointer so the original lock still guards the state", types.TypeString(t, types.RelativeTo(pass.Pkg)), name)
			}
		}
	}
}

// lockTypeNames are the sync types whose value-copy is a bug.
var lockTypeNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

// containedLock returns the name of a sync lock type contained
// (transitively, by value) in t, or "".
func containedLock(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypeNames[obj.Name()] {
			return "sync." + obj.Name()
		}
		return containedLock(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := containedLock(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return containedLock(u.Elem(), seen)
	}
	return ""
}

// isSyncType reports whether t is sync.<name> or *sync.<name>.
func isSyncType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}
