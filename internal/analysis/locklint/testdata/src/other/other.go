// Package other is outside locklint's package scope: lock discipline is
// not checked here.
package other

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// lostLock would be flagged inside internal/..., but this package is out
// of scope.
func (c *counter) lostLock() {
	c.mu.Lock()
	c.n++
}

// byValue would be flagged too.
func byValue(c counter) int {
	return c.n
}
