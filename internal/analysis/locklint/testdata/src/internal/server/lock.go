// Package server is a locklint fixture standing in for the serving
// layers, where mutex regions must be deferred or straight-line and must
// never block.
package server

import (
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	n  int
}

// straightLine is the tolerated hand-unlocked shape: no branch can leave
// the region before the Unlock.
func (c *counter) straightLine() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// deferredUnlock may branch and return freely.
func (c *counter) deferredUnlock(limit int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n > limit {
		return limit
	}
	return c.n
}

// earlyReturn returns out of a hand-unlocked region: one path releases
// by hand, the analyzer demands defer instead.
func (c *counter) earlyReturn(limit int) int {
	c.mu.Lock()
	if c.n > limit {
		c.mu.Unlock()
		return limit // want `early exit inside the c.mu critical section`
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// lostLock never releases on this path at all.
func (c *counter) lostLock() {
	c.mu.Lock() // want `locked here but released on some other path`
	c.n++
}

// panicUnderLock can unwind without releasing.
func (c *counter) panicUnderLock() {
	c.mu.Lock()
	if c.n < 0 {
		panic("negative") // want `early exit inside the c.mu critical section`
	}
	c.mu.Unlock()
}

type rwstate struct {
	mu sync.RWMutex
	v  int
}

// readStraight pairs RLock with RUnlock: clean.
func (s *rwstate) readStraight() int {
	s.mu.RLock()
	v := s.v
	s.mu.RUnlock()
	return v
}

// readLost pairs RLock with nothing: the write Unlock does not match the
// read mode.
func (s *rwstate) readLost() int {
	s.mu.RLock() // want `locked here but released on some other path`
	v := s.v
	s.mu.Unlock()
	return v
}

// sendUnderLock blocks every other lock holder on a channel peer.
func (c *counter) sendUnderLock(out chan int) {
	c.mu.Lock()
	out <- c.n // want `channel send while c.mu is held`
	c.mu.Unlock()
}

// recvUnderDeferredLock blocks with the lock held to function exit.
func (c *counter) recvUnderDeferredLock(in chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = <-in // want `channel receive while c.mu is held`
}

// selectUnderLock parks the holder until a case fires.
func (c *counter) selectUnderLock(in chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want `blocking select while c.mu is held`
	case v := <-in:
		c.n = v
	}
}

// nonBlockingSelect has a default case: clean.
func (c *counter) nonBlockingSelect(out chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case out <- c.n:
	default:
	}
}

// sleepUnderLock serializes everyone on a timer.
func (c *counter) sleepUnderLock() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while c.mu is held`
	c.mu.Unlock()
}

// waitUnderLock holds the mutex across a WaitGroup settle.
func (c *counter) waitUnderLock(wg *sync.WaitGroup) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wg.Wait() // want `sync.WaitGroup.Wait while c.mu is held`
}

// Runner stands in for the experiments Runner: Run-prefixed methods on a
// type named Runner are whole-simulation calls.
type Runner struct{}

func (r *Runner) Run(n int) int { return n }

// simulateUnderLock runs a simulation while holding the admission lock.
func (c *counter) simulateUnderLock(r *Runner) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = r.Run(4) // want `Runner.Run simulation while c.mu is held`
}

// lockAfterRelease is clean: the slow call happens outside the
// straight-line region.
func (c *counter) lockAfterRelease(r *Runner) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	use(r.Run(n))
}

// byValueParam copies the lock with the struct.
func snapshot(c counter) int { // want `passing counter by value copies its sync.Mutex`
	return c.n
}

// byValueReceiver copies the lock on every call.
func (c counter) peek() int { // want `passing counter by value copies its sync.Mutex`
	return c.n
}

// pointerParam is the correct shape: clean.
func drain(c *counter) int {
	return c.n
}

// embedded locks are found transitively.
type wrapper struct {
	inner counter
}

func copyWrapper(w wrapper) { // want `passing wrapper by value copies its sync.Mutex`
	_ = w
}

// allowedSend is a justified exception: the receiver is guaranteed ready
// in a way the analyzer cannot see.
func (c *counter) allowedSend(out chan int) {
	c.mu.Lock()
	//simcheck:allow(locklint) receiver is a buffered channel drained by the caller before Lock
	out <- c.n
	c.mu.Unlock()
}

// allowedNoReason carries the marker with no justification.
func (c *counter) allowedNoReason(out chan int) {
	c.mu.Lock()
	//simcheck:allow(locklint) // want `needs a justification`
	out <- c.n
	c.mu.Unlock()
}

func use(x int) { _ = x }
