package sim

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestDeterminism: identical configurations must produce bit-identical
// results — the property that makes the experiment cache sound.
func TestDeterminism(t *testing.T) {
	run := func() Result {
		wl, err := workload.NewTuned("CG", workload.W, workload.Tuning{RefScale: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		spec := testSpec()
		res, err := Run(context.Background(), Config{Spec: spec, Threads: 4, Cores: 3}, wl.Streams(4))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalCycles != b.TotalCycles || a.StallCycles != b.StallCycles ||
		a.LLCMisses != b.LLCMisses || a.Makespan != b.Makespan {
		t.Errorf("non-deterministic results:\n%+v\n%+v", a, b)
	}
	for i := range a.PerThread {
		if a.PerThread[i] != b.PerThread[i] {
			t.Errorf("thread %d differs: %+v vs %+v", i, a.PerThread[i], b.PerThread[i])
		}
	}
}

// TestFillProcessorFirst: with n <= cores-per-socket, only socket 0's
// controller sees traffic; crossing the boundary activates the next one.
func TestFillProcessorFirst(t *testing.T) {
	spec := testSpec() // 2 sockets x 2 cores
	streams := func() []trace.Stream { return memBoundStreams(4, 50) }

	res, err := Run(context.Background(), Config{Spec: spec, Threads: 4, Cores: 2}, streams())
	if err != nil {
		t.Fatal(err)
	}
	if res.MCStats[1].Requests != 0 {
		t.Errorf("n=2: MC1 served %d requests, want 0", res.MCStats[1].Requests)
	}
	res, err = Run(context.Background(), Config{Spec: spec, Threads: 4, Cores: 3}, streams())
	if err != nil {
		t.Fatal(err)
	}
	if res.MCStats[1].Requests == 0 {
		t.Error("n=3: MC1 idle despite an active core on socket 1")
	}
}

// Property: for random (but valid) workload shapes, the fundamental counter
// identities hold and the run terminates.
func TestCounterIdentitiesProperty(t *testing.T) {
	f := func(seed int64, nThreads, nCores uint8, depBits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := testSpec()
		threads := int(nThreads%4) + 1
		cores := int(nCores)%spec.TotalCores() + 1

		var streams []trace.Stream
		var wantWork, wantRefs uint64
		for th := 0; th < threads; th++ {
			var refs []trace.Ref
			n := rng.Intn(300) + 1
			for i := 0; i < n; i++ {
				r := trace.Ref{
					Addr: uint64(rng.Intn(1 << 22)),
					Kind: trace.Kind(rng.Intn(2)),
					Dep:  depBits&1 != 0 && rng.Intn(3) == 0,
					Work: uint32(rng.Intn(20)),
				}
				wantWork += uint64(r.Work)
				wantRefs++
				refs = append(refs, r)
			}
			streams = append(streams, trace.FromSlice(refs))
		}
		res, err := Run(context.Background(), Config{Spec: spec, Threads: threads, Cores: cores}, streams)
		if err != nil || res.Aborted {
			return false
		}
		if res.TotalCycles != res.WorkCycles+res.StallCycles {
			return false
		}
		if res.WorkCycles != wantWork {
			return false
		}
		if res.Instructions != wantRefs+wantWork {
			return false
		}
		if res.OffChipRequests != res.LLCMisses {
			return false
		}
		if res.MemStallCycles > res.StallCycles {
			return false
		}
		// Conservation at the controllers: every off-chip request is
		// eventually served.
		var served uint64
		for _, mc := range res.MCStats {
			served += mc.Requests
		}
		return served == res.OffChipRequests
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: remote requests never exceed off-chip requests, and UMA
// machines never report remote traffic.
func TestRemoteBoundsProperty(t *testing.T) {
	f := func(seed int64, uma bool) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := testSpec()
		if uma {
			spec = umaSpec()
		}
		var streams []trace.Stream
		threads := spec.TotalCores()
		for th := 0; th < threads; th++ {
			var refs []trace.Ref
			for i := 0; i < 100; i++ {
				refs = append(refs, trace.Ref{
					Addr: uint64(rng.Intn(1 << 24)),
					Kind: trace.Load,
					Work: 1,
				})
			}
			streams = append(streams, trace.FromSlice(refs))
		}
		res, err := Run(context.Background(), Config{Spec: spec, Threads: threads, Cores: threads, Placement: Interleave}, streams)
		if err != nil {
			return false
		}
		if res.RemoteRequests > res.OffChipRequests {
			return false
		}
		if uma && res.RemoteRequests != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The makespan can never be shorter than any thread's finish time, and the
// last finish equals the interesting part of the makespan.
func TestFinishTimesWithinMakespan(t *testing.T) {
	spec := testSpec()
	res, err := Run(context.Background(), Config{Spec: spec, Threads: 4, Cores: 2}, memBoundStreams(4, 100))
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i, th := range res.PerThread {
		if th.Finish > res.Makespan {
			t.Errorf("thread %d finish %d beyond makespan %d", i, th.Finish, res.Makespan)
		}
		if th.Finish > last {
			last = th.Finish
		}
	}
	if last == 0 {
		t.Error("no finish times recorded")
	}
}
